/**
 * @file
 * Case study: Cooley-Tukey FFT on a vector machine with a cache.
 *
 * Shows both halves of the paper's FFT story:
 *
 *  1. the raw in-place radix-2 FFT uses power-of-two butterfly
 *     strides, the pathological case for a power-of-two cache;
 *  2. the blocked two-dimensional formulation keeps each row/column
 *     FFT inside the cache -- and with the prime mapping the blocking
 *     factor B2 needs no tuning at all ("optimization is guaranteed
 *     as long as the block size is less than the cache size").
 *
 *   ./fft_study [--points=N]
 */

#include <iostream>

#include "core/vcache.hh"

int
main(int argc, char **argv)
{
    using namespace vcache;

    ArgParser args("FFT access patterns through both caches");
    args.addFlag("points", "65536",
                 "transform size N (power of two)");
    args.parse(argc, argv);

    const std::uint64_t n = args.getUint("points");
    if (!isPowerOfTwo(n) || n < 4)
        vc_fatal("--points must be a power of two >= 4, got ", n);

    const AddressLayout layout(0, 13, 32);

    // Part 1: the raw in-place FFT (single 1-D pass).
    {
        const auto trace = generateFftButterflyTrace(0, n);
        DirectMappedCache direct(layout);
        PrimeMappedCache prime(layout);
        const auto ds = runTraceThroughCache(direct, trace);
        const auto ps = runTraceThroughCache(prime, trace);

        std::cout << "raw in-place " << n << "-point FFT (data "
                  << (n > 8192 ? "exceeds" : "fits") << " cache):\n";
        Table table({"cache", "miss%"});
        table.addRow("direct-mapped", 100.0 * ds.missRatio());
        table.addRow("prime-mapped", 100.0 * ps.missRatio());
        table.print(std::cout);
    }

    // Part 2: the blocked 2-D formulation, sweeping the row count B2.
    std::cout << "\nblocked 2-D FFT of the same " << n
              << " points (miss ratios, trace-driven):\n";
    Table table({"B1", "B2", "direct miss%", "prime miss%"});
    for (std::uint64_t b2 = 2; b2 * 2 <= n && b2 <= 8192; b2 *= 4) {
        const std::uint64_t b1 = n / b2;
        if (b1 < 2 || b1 > 8192)
            continue;
        const auto trace = generateFft2dTrace(Fft2dParams{b2, b1, 0});
        DirectMappedCache direct(layout);
        PrimeMappedCache prime(layout);
        const auto ds = runTraceThroughCache(direct, trace);
        const auto ps = runTraceThroughCache(prime, trace);
        table.addRow(b1, b2, 100.0 * ds.missRatio(),
                     100.0 * ps.missRatio());
    }
    table.print(std::cout);

    // Model predictions (cycles per point) for the same shapes.
    MachineParams machine = paperMachineM64();
    machine.memoryTime = 32;
    std::cout << "\nanalytic cycles/point (t_m = 32):\n";
    Table model({"B1", "B2", "MM", "CC-direct", "CC-prime"});
    for (std::uint64_t b2 = 2; b2 * 2 <= n && b2 <= 8192; b2 *= 4) {
        const std::uint64_t b1 = n / b2;
        if (b1 < 2 || b1 > 8192)
            continue;
        const FftShape shape{b1, b2};
        model.addRow(b1, b2, fftCyclesPerPointMm(machine, shape),
                     fftCyclesPerPointCc(machine, CacheScheme::Direct,
                                         shape),
                     fftCyclesPerPointCc(machine, CacheScheme::Prime,
                                         shape));
    }
    model.print(std::cout);
    return 0;
}
