/**
 * @file
 * Case study: blocked matrix multiply (the workload of Lam et al.
 * that motivates the paper's introduction).
 *
 * Generates the real access stream of a blocked n x n multiply for a
 * range of block sizes and reports, for each cache organisation, the
 * miss ratio and conflict share -- reproducing the observation that
 * the usable fraction of a conventional cache is small and erratic,
 * while the prime-mapped cache stays conflict-free.
 *
 *   ./blocked_matmul [--n=N] [--tm=N]
 */

#include <iostream>

#include "core/vcache.hh"

int
main(int argc, char **argv)
{
    using namespace vcache;

    ArgParser args("Blocked matrix multiply through four caches");
    args.addFlag("n", "128", "matrix dimension (power of two)");
    args.addFlag("tm", "32", "memory access time in cycles");
    args.parse(argc, argv);

    const std::uint64_t n = args.getUint("n");
    MachineParams machine = paperMachineM64();
    machine.memoryTime = args.getUint("tm");

    std::cout << "blocked " << n << "x" << n
              << " matrix multiply, 8K-word caches\n\n";

    Table table({"block b", "B=b^2", "cache use%", "direct miss%",
                 "direct conflict%", "4-way miss%", "prime miss%",
                 "prime conflict%"});

    for (std::uint64_t b = 8; b <= n && b * b <= 8192; b *= 2) {
        const auto trace = generateMatmulTrace(MatmulParams{n, b, 0});

        auto run = [&](Organization org, unsigned ways) {
            CacheConfig config;
            config.organization = org;
            config.indexBits = 13;
            config.associativity = ways;
            const auto cache = makeCache(config);
            const auto breakdown = classifyTrace(*cache, trace);
            const double miss = cache->stats().missRatio();
            const double conflict =
                cache->stats().misses
                    ? static_cast<double>(breakdown.conflict) /
                          static_cast<double>(cache->stats().misses)
                    : 0.0;
            return std::pair<double, double>{miss, conflict};
        };

        const auto [d_miss, d_conf] =
            run(Organization::DirectMapped, 1);
        const auto [a_miss, a_conf] =
            run(Organization::SetAssociative, 4);
        const auto [p_miss, p_conf] =
            run(Organization::PrimeMapped, 1);
        (void)a_conf;

        table.addRow(b, b * b,
                     100.0 * static_cast<double>(b * b) / 8192.0,
                     100.0 * d_miss, 100.0 * d_conf, 100.0 * a_miss,
                     100.0 * p_miss, 100.0 * p_conf);
    }
    table.print(std::cout);

    // Lam et al.'s headline observation: the *same* algorithm at the
    // same block size swings wildly with the leading dimension,
    // because lda sets how block columns align in the cache.  A
    // naive square blocking hurts the prime cache too once columns
    // wrap the modulus -- the cure is the Section-4 rule implemented
    // by examples/subblock_planner, which only the prime cache can
    // satisfy for arbitrary lda.
    std::cout << "\nleading-dimension sensitivity (b = 32, n = " << n
              << "):\n";
    Table lda_table({"lda", "direct miss%", "direct conflict%",
                     "prime miss%", "prime conflict%"});
    for (std::uint64_t lda : {n, std::uint64_t{1000},
                              std::uint64_t{1024},
                              std::uint64_t{2048}}) {
        if (lda < n)
            continue;
        const auto trace =
            generateMatmulTrace(MatmulParams{n, 32, 0, lda});
        auto classify = [&](Organization org) {
            CacheConfig config;
            config.organization = org;
            config.indexBits = 13;
            const auto cache = makeCache(config);
            const auto breakdown = classifyTrace(*cache, trace);
            const double conflict =
                cache->stats().misses
                    ? static_cast<double>(breakdown.conflict) /
                          static_cast<double>(cache->stats().misses)
                    : 0.0;
            return std::pair<double, double>{
                cache->stats().missRatio(), conflict};
        };
        const auto [dm, dc] = classify(Organization::DirectMapped);
        const auto [pm, pc] = classify(Organization::PrimeMapped);
        lda_table.addRow(lda, 100.0 * dm, 100.0 * dc, 100.0 * pm,
                         100.0 * pc);
    }
    lda_table.print(std::cout);

    // What the miss ratios cost in time, per the analytic model: one
    // matmul block pass is the VCM with R = b, P_ds = 1/b.
    std::cout << "\nanalytic cycles/result for the matmul-shaped VCM "
                 "(Section 3.1 mapping):\n";
    Table model({"block b", "MM", "CC-direct", "CC-prime"});
    for (std::uint64_t b = 8; b <= n && b * b <= 8192; b *= 2) {
        WorkloadParams w = paperWorkload();
        w.blockingFactor = static_cast<double>(b * b);
        w.reuseFactor = static_cast<double>(b);
        w.pDoubleStream = 1.0 / static_cast<double>(b);
        w.totalData = static_cast<double>(n * n);
        const auto p = compareMachines(machine, w);
        model.addRow(b, p.mm, p.direct, p.prime);
    }
    model.print(std::cout);
    return 0;
}
