/**
 * @file
 * Case study: a complete dense solver (LU factor + forward/back
 * substitution) running as vector programs.
 *
 * Solves A x = b for a diagonally dominant dense system, verifies x
 * against the known solution, then times the factorisation's access
 * trace on the three machines.  LU is the paper's second named
 * workload (Section 3.1 cites blocked LU with reuse 3b/2): the
 * factorisation re-reads the trailing matrix across eliminations, so
 * the cache's conflict behaviour shows directly -- especially when
 * the leading dimension is a power of two, which makes every column
 * of the trailing matrix alias in the direct-mapped cache.
 *
 *   ./lu_solver [--n=192] [--lda=0 (0 = n)] [--tm=32]
 */

#include <cmath>
#include <iostream>

#include "core/vcache.hh"

int
main(int argc, char **argv)
{
    using namespace vcache;

    ArgParser args("Dense LU solve as vector programs");
    args.addFlag("n", "72",
                 "unknowns (72*72 = 5184 words fits the 8K cache; "
                 "try 192 to see the capacity-bound regime where "
                 "only *blocking* -- the paper's premise -- can "
                 "help)");
    args.addFlag("lda", "0",
                 "leading dimension; 0 = n, 256/512/1024 show the "
                 "power-of-two alignment pathology");
    args.addFlag("tm", "32", "memory access time in cycles");
    args.parse(argc, argv);

    const std::uint64_t n = args.getUint("n");
    const std::uint64_t lda_flag = args.getUint("lda");
    const std::uint64_t lda = lda_flag ? lda_flag : n;
    if (lda < n)
        vc_fatal("--lda must be 0 or >= n");
    MachineParams machine = paperMachineM64();
    machine.memoryTime = args.getUint("tm");

    VectorMachine vm(machine.mvl, lda * n + n + 64);
    const Addr rhs = lda * n + 8;

    // Diagonally dominant A and b = A * x_star.
    Rng rng(2026);
    std::vector<double> x_star(n);
    for (std::uint64_t i = 0; i < n; ++i)
        x_star[i] = rng.uniformReal() * 2.0 - 1.0;
    for (std::uint64_t row = 0; row < n; ++row) {
        double b = 0.0;
        for (std::uint64_t col = 0; col < n; ++col) {
            double v = rng.uniformReal() - 0.5;
            if (row == col)
                v += static_cast<double>(n);
            vm.writeMem(row + col * lda, v);
            b += v * x_star[col];
        }
        vm.writeMem(rhs + row, b);
    }

    VectorProgram solve;
    emitLuFactor(solve, machine.mvl, 0, n, lda);
    emitForwardSolveUnitLower(solve, machine.mvl, 0, n, lda, rhs);
    emitBackSolveUpper(solve, machine.mvl, 0, n, lda, rhs);
    vm.run(solve);

    double worst = 0.0;
    for (std::uint64_t i = 0; i < n; ++i)
        worst = std::max(worst,
                         std::abs(vm.readMem(rhs + i) - x_star[i]));
    std::cout << "LU solve of " << n << "x" << n << " (lda = " << lda
              << "): " << solve.size() << " instructions, max |x - "
              << "x*| = " << worst << "\n"
              << (worst < 1e-8 ? "solution verified"
                               : "SOLUTION WRONG")
              << "; trace: " << vm.trace().size()
              << " vector operations, " << vm.scalarLoads()
              << " scalar-unit accesses\n\n";

    const auto chimes = analyzeChimes(solve, machine.mvl);
    std::cout << "chime analysis: " << chimes.convoys
              << " convoys, " << chimes.chimeCycles
              << " compute-bound cycles (" << chimes.memoryOps
              << " memory / " << chimes.arithmeticOps
              << " arithmetic vector instructions)\n\n";

    Table timing({"machine", "cycles", "cycles/result", "miss%"});
    const auto mm = simulateMm(machine, vm.trace());
    timing.addRow("MM (no cache)", mm.totalCycles,
                  mm.cyclesPerResult(), 0.0);
    for (const auto scheme :
         {CacheScheme::Direct, CacheScheme::Prime}) {
        const auto r = simulateCc(machine, scheme, vm.trace());
        timing.addRow(scheme == CacheScheme::Prime ? "CC prime"
                                                   : "CC direct",
                      r.totalCycles, r.cyclesPerResult(),
                      100.0 * r.missRatio());
    }
    timing.print(std::cout);

    const double footprint = static_cast<double>(n * n);
    std::cout << "\nworking set " << n << "^2 = " << footprint
              << " words vs 8191-line cache: "
              << (footprint <= 8191.0
                      ? "fits -- both caches run near one cycle per "
                        "element and far ahead of the\ncacheless "
                        "machine."
                      : "does NOT fit -- capacity misses dominate "
                        "and no mapping can help;\nthe paper's "
                        "answer is blocking (see "
                        "examples/subblock_planner and\n"
                        "bench/tab_subblock for choosing "
                        "conflict-free blocks).")
              << "\n";
    return 0;
}
