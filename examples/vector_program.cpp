/**
 * @file
 * Case study: real vector programs on the functional machine.
 *
 * Builds strip-mined SAXPY and blocked-matmul *programs* for the
 * paper's vector ISA, executes them on real data (verifying the
 * numerics against scalar references), then times the very access
 * trace the execution produced on all three machines.  One
 * instruction stream: correct answers and cycle counts.
 *
 *   ./vector_program [--n=4096] [--stride=1024] [--tm=32]
 */

#include <cmath>
#include <iostream>

#include "core/vcache.hh"

int
main(int argc, char **argv)
{
    using namespace vcache;

    ArgParser args("Vector programs: SAXPY and blocked matmul");
    args.addFlag("n", "4096", "SAXPY length");
    args.addFlag("stride", "1024",
                 "SAXPY stride in words (a matrix-row walk)");
    args.addFlag("tm", "32", "memory access time in cycles");
    args.addFlag("passes", "4",
                 "SAXPY repetitions (an iterative-solver shape; "
                 "reuse is where the caches separate)");
    args.parse(argc, argv);

    const std::uint64_t n = args.getUint("n");
    const auto stride = static_cast<std::int64_t>(args.getInt("stride"));
    MachineParams machine = paperMachineM64();
    machine.memoryTime = args.getUint("tm");

    // ---- SAXPY ---------------------------------------------------
    const std::uint64_t span =
        n * static_cast<std::uint64_t>(stride < 0 ? -stride : stride);
    VectorMachine vm(machine.mvl, 2 * span + 16);

    const Addr x_base = 0, y_base = span + 8;
    for (std::uint64_t i = 0; i < n; ++i) {
        vm.writeMem(x_base + i * static_cast<Addr>(stride),
                    0.25 * static_cast<double>(i));
        vm.writeMem(y_base + i * static_cast<Addr>(stride),
                    static_cast<double>(i));
    }

    const std::uint64_t passes = args.getUint("passes");
    VectorProgram saxpy;
    emitSaxpy(saxpy, machine.mvl, 3.0, x_base, stride, y_base, stride,
              n);
    for (std::uint64_t pass = 0; pass < passes; ++pass)
        vm.run(saxpy); // y <- 3x + y, repeated

    std::uint64_t wrong = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        const double expect =
            static_cast<double>(passes) * 3.0 *
                (0.25 * static_cast<double>(i)) +
            static_cast<double>(i);
        if (std::abs(vm.readMem(y_base +
                                i * static_cast<Addr>(stride)) -
                     expect) > 1e-9)
            ++wrong;
    }
    std::cout << "SAXPY (" << n << " elements, stride " << stride
              << ", " << passes << " passes): " << saxpy.size()
              << " instructions/pass, "
              << (wrong ? "NUMERIC MISMATCHES!" : "numerics verified")
              << "\n\n";

    Table timing({"machine", "cycles", "cycles/result", "miss%"});
    {
        const auto r = simulateMm(machine, vm.trace());
        timing.addRow("MM (no cache)", r.totalCycles,
                      r.cyclesPerResult(), 0.0);
        for (const auto scheme :
             {CacheScheme::Direct, CacheScheme::Prime}) {
            const auto c = simulateCc(machine, scheme, vm.trace());
            timing.addRow(scheme == CacheScheme::Prime ? "CC prime"
                                                       : "CC direct",
                          c.totalCycles, c.cyclesPerResult(),
                          100.0 * c.missRatio());
        }
    }
    timing.print(std::cout);

    // ---- blocked matmul -------------------------------------------
    const std::uint64_t dim = 64, blk = 16;
    VectorMachine mm(machine.mvl, 1u << 16);
    const Addr a_base = 0, b_base = 16384, c_base = 32768;
    for (std::uint64_t col = 0; col < dim; ++col)
        for (std::uint64_t row = 0; row < dim; ++row) {
            mm.writeMem(a_base + row + col * dim,
                        std::sin(0.01 * static_cast<double>(
                                            row + 3 * col)));
            mm.writeMem(b_base + row + col * dim,
                        std::cos(0.02 * static_cast<double>(
                                            2 * row + col)));
        }

    VectorProgram matmul;
    emitBlockedMatmul(matmul, machine.mvl, a_base, b_base, c_base,
                      dim, blk);
    mm.run(matmul);

    // Verify one full column against a scalar reference.
    wrong = 0;
    for (std::uint64_t row = 0; row < dim; ++row) {
        double expect = 0.0;
        for (std::uint64_t k = 0; k < dim; ++k)
            expect += mm.readMem(a_base + row + k * dim) *
                      mm.readMem(b_base + k + 5 * dim);
        if (std::abs(mm.readMem(c_base + row + 5 * dim) - expect) >
            1e-9)
            ++wrong;
    }
    std::cout << "\nblocked matmul (" << dim << "x" << dim << ", b = "
              << blk << "): " << matmul.size() << " instructions, "
              << (wrong ? "NUMERIC MISMATCHES!" : "numerics verified")
              << "\n\n";

    Table timing2({"machine", "cycles", "cycles/result", "miss%"});
    {
        const auto r = simulateMm(machine, mm.trace());
        timing2.addRow("MM (no cache)", r.totalCycles,
                       r.cyclesPerResult(), 0.0);
        for (const auto scheme :
             {CacheScheme::Direct, CacheScheme::Prime}) {
            const auto c = simulateCc(machine, scheme, mm.trace());
            timing2.addRow(scheme == CacheScheme::Prime ? "CC prime"
                                                        : "CC direct",
                           c.totalCycles, c.cyclesPerResult(),
                           100.0 * c.missRatio());
        }
    }
    timing2.print(std::cout);
    return 0;
}
