/**
 * @file
 * Quickstart: build a prime-mapped cache next to a direct-mapped one,
 * push a power-of-two-strided vector sweep through both, and watch
 * the conflict misses disappear.
 *
 *   ./quickstart [--stride=N] [--length=N] [--sweeps=N]
 */

#include <iostream>

#include "core/vcache.hh"

int
main(int argc, char **argv)
{
    using namespace vcache;

    ArgParser args(
        "Prime-mapped vs direct-mapped cache on one strided sweep");
    args.addFlag("stride", "512", "vector access stride in words");
    args.addFlag("length", "4096", "elements per sweep");
    args.addFlag("sweeps", "4", "how many times the vector is reused");
    args.parse(argc, argv);

    const auto stride = static_cast<std::int64_t>(args.getInt("stride"));
    const auto length = args.getUint("length");
    const auto sweeps = args.getUint("sweeps");

    // The paper's configuration: 8K-word cache, one word per line.
    // The direct-mapped cache has 2^13 = 8192 lines; the prime-mapped
    // cache gives one line up to make the count prime: 8191 = 2^13-1.
    const AddressLayout layout(/*offset_bits=*/0, /*index_bits=*/13);
    DirectMappedCache direct(layout);
    PrimeMappedCache prime(layout);

    // One strided vector, swept `sweeps` times (reuse is where caches
    // earn their keep in vector code).
    Trace trace;
    for (std::uint64_t s = 0; s < sweeps; ++s) {
        VectorOp op;
        op.first = VectorRef{0, stride, length};
        trace.push_back(op);
    }

    const auto direct_stats = runTraceThroughCache(direct, trace);
    const auto prime_stats = runTraceThroughCache(prime, trace);

    Table table({"cache", "accesses", "hits", "misses", "miss%"});
    table.addRow(direct.name(), direct_stats.accesses,
                 direct_stats.hits, direct_stats.misses,
                 100.0 * direct_stats.missRatio());
    table.addRow(prime.name(), prime_stats.accesses, prime_stats.hits,
                 prime_stats.misses, 100.0 * prime_stats.missRatio());
    table.print(std::cout);

    const auto coverage = sweepCoverage(
        8192, static_cast<std::uint64_t>(stride < 0 ? -stride
                                                    : stride));
    std::cout << "\nA stride-" << stride
              << " sweep touches only C/gcd(C, s) = " << coverage
              << " of the 8192 direct-mapped lines;\nmodulo the prime "
                 "8191 it touches "
              << sweepCoverage(8191, static_cast<std::uint64_t>(
                                         stride < 0 ? -stride : stride))
              << " lines -- every non-multiple of 8191 is "
                 "conflict-free.\n";

    // The index generation hardware (Figure 1): one c-bit end-around
    // carry addition per element, in parallel with the normal address
    // calculation.
    MersenneIndexGenerator gen(layout);
    gen.setStride(stride);
    gen.start(0);
    for (std::uint64_t i = 1; i < 100; ++i)
        gen.step();
    const auto cost = MersenneIndexGenerator::hardwareCost();
    std::cout << "\nFigure-1 address generator activity for 100 "
                 "elements: "
              << gen.stats().stepAdds << " step adds, "
              << gen.stats().startupAdds << " startup folds\n"
              << "extra hardware: " << cost.fullAdders
              << " full adder, " << cost.multiplexors
              << " multiplexors, " << cost.registers << " registers\n";
    return 0;
}
