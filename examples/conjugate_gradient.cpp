/**
 * @file
 * Case study: conjugate gradient on the vector machine.
 *
 * Solves the 1-D Poisson system A x = b (A = tridiag(-1, 2, -1))
 * with CG built entirely from vector programs: the matrix-vector
 * product is three shifted stride-1 streams (a stencil), the
 * reductions use the horizontal-sum instruction, and the scalar
 * recurrences (alpha, beta) run on the host -- the scalar unit of
 * the paper's machines.  Numerics are verified against the known
 * solution, then the accumulated access trace is timed on all three
 * machines.
 *
 * CG reuses x, r, p, q every iteration: exactly the blocked-reuse
 * pattern the paper says caches need.  With a power-of-two n the
 * four vectors sit power-of-two distances apart, and the direct-
 * mapped cache can alias them; the prime cache cannot.
 *
 *   ./conjugate_gradient [--n=2048] [--iters=64] [--tm=32]
 */

#include <cmath>
#include <iostream>

#include "core/vcache.hh"

namespace
{

using namespace vcache;

/** Vector layout: guard zero, n payload words, guard zero. */
struct Layout
{
    Addr x, r, p, q;
    std::uint64_t n;

    Addr
    pay(Addr base) const
    {
        return base + 1; // skip the guard word
    }
};

/** q <- A p  (A = tridiag(-1, 2, -1)), using the guard zeros. */
VectorProgram
matvecProgram(const Layout &l, std::uint64_t mvl)
{
    VectorProgram prog;
    for (std::uint64_t done = 0; done < l.n; done += mvl) {
        const std::uint64_t vl = std::min(mvl, l.n - done);
        prog.setVl(vl);
        const Addr pc = l.pay(l.p) + done;
        // v0 <- p, v1 <- 2 p.
        prog.loadV(0, pc, 1);
        prog.loadScalar(2.0);
        prog.mulSV(1, 0);
        // v2 <- p shifted left, v3 <- p shifted right (guards are 0).
        prog.loadPairV(2, pc - 1, 1, 3, pc + 1, 1);
        prog.addVV(4, 2, 3);
        // v5 <- (-1) * (p- + p+) + 2 p = A p.
        prog.loadScalar(-1.0);
        prog.mulAddSV(5, 4, 1);
        prog.storeV(5, l.pay(l.q) + done, 1);
    }
    return prog;
}

/** scalar <- dot(a, b). */
double
dot(VectorMachine &vm, const Layout &l, Addr a, Addr b)
{
    VectorProgram prog;
    emitDot(prog, vm.maxVectorLength(), l.pay(a), 1, l.pay(b), 1,
            l.n);
    vm.run(prog);
    return vm.scalarRegister();
}

/** y <- alpha * x + y (both payload vectors). */
void
axpy(VectorMachine &vm, const Layout &l, double alpha, Addr x, Addr y)
{
    VectorProgram prog;
    emitSaxpy(prog, vm.maxVectorLength(), alpha, l.pay(x), 1,
              l.pay(y), 1, l.n);
    vm.run(prog);
}

/** p <- r + beta * p. */
void
updateDirection(VectorMachine &vm, const Layout &l, double beta)
{
    VectorProgram prog;
    prog.loadScalar(beta);
    for (std::uint64_t done = 0; done < l.n;
         done += vm.maxVectorLength()) {
        const std::uint64_t vl =
            std::min(vm.maxVectorLength(), l.n - done);
        prog.setVl(vl);
        prog.loadPairV(0, l.pay(l.p) + done, 1, 1,
                       l.pay(l.r) + done, 1);
        prog.mulAddSV(2, 0, 1); // beta*p + r
        prog.storeV(2, l.pay(l.p) + done, 1);
    }
    vm.run(prog);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vcache;

    ArgParser args("Conjugate gradient built from vector programs");
    args.addFlag("n", "256", "unknowns");
    args.addFlag("iters", "300", "CG iteration cap (1-D Poisson "
                 "needs ~n of them)");
    args.addFlag("tm", "32", "memory access time in cycles");
    args.addFlag("layout", "aligned",
                 "buffer placement: 'compact' packs the four vectors "
                 "back to back; 'aligned' spaces them by multiples "
                 "of the cache size (64KB-aligned allocations), the "
                 "adversarial case for the direct-mapped cache");
    args.parse(argc, argv);

    const std::uint64_t n = args.getUint("n");
    const std::uint64_t iters = args.getUint("iters");
    MachineParams machine = paperMachineM64();
    machine.memoryTime = args.getUint("tm");

    // Four padded vectors.  "aligned" places them k * 8192 words
    // apart with k > n: every buffer lands on the same direct-mapped
    // frames (spacing == 0 mod 8192).  k must exceed the vector
    // length because k * 8192 == k (mod 8191): buffers exactly one
    // cache-size apart would alias in the *prime* cache too -- a
    // real deployment caveat for 64KB-aligned allocators.
    const std::uint64_t span = n + 2;
    const std::uint64_t spacing =
        args.getString("layout") == "compact"
            ? span
            : (n + 16) * 8192;
    if (args.getString("layout") != "compact" &&
        args.getString("layout") != "aligned")
        vc_fatal("--layout must be 'compact' or 'aligned'");
    Layout l{0, spacing, 2 * spacing, 3 * spacing, n};
    VectorMachine vm(machine.mvl, 3 * spacing + span + 8);

    // b = A * ones: 1 at both ends, 0 inside; start x = 0, r = b,
    // p = r.
    vm.writeMem(l.pay(l.r), 1.0);
    vm.writeMem(l.pay(l.r) + n - 1, 1.0);
    vm.writeMem(l.pay(l.p), 1.0);
    vm.writeMem(l.pay(l.p) + n - 1, 1.0);

    const auto matvec = matvecProgram(l, machine.mvl);

    double rr = dot(vm, l, l.r, l.r);
    std::uint64_t done_iters = 0;
    for (std::uint64_t k = 0; k < iters && rr > 1e-20; ++k) {
        vm.run(matvec); // q <- A p
        const double p_dot_q = dot(vm, l, l.p, l.q);
        const double alpha = rr / p_dot_q;
        axpy(vm, l, alpha, l.p, l.x);  // x += alpha p
        axpy(vm, l, -alpha, l.q, l.r); // r -= alpha q
        const double rr_new = dot(vm, l, l.r, l.r);
        updateDirection(vm, l, rr_new / rr); // p <- r + beta p
        rr = rr_new;
        ++done_iters;
    }

    // The exact solution of A x = A*ones is ones.
    double worst = 0.0;
    for (std::uint64_t i = 0; i < n; ++i)
        worst = std::max(worst,
                         std::abs(vm.readMem(l.pay(l.x) + i) - 1.0));

    std::cout << "CG on " << n << " unknowns: " << done_iters
              << " iterations, residual " << rr
              << ", max |x - 1| = " << worst << "\n"
              << (worst < 1e-6 ? "solution verified"
                               : "NOT CONVERGED (increase --iters)")
              << "; trace: " << vm.trace().size()
              << " vector operations\n\n";

    Table timing({"machine", "cycles", "cycles/result", "miss%"});
    const auto mm = simulateMm(machine, vm.trace());
    timing.addRow("MM (no cache)", mm.totalCycles,
                  mm.cyclesPerResult(), 0.0);
    for (const auto scheme :
         {CacheScheme::Direct, CacheScheme::Prime}) {
        const auto r = simulateCc(machine, scheme, vm.trace());
        timing.addRow(scheme == CacheScheme::Prime ? "CC prime"
                                                   : "CC direct",
                      r.totalCycles, r.cyclesPerResult(),
                      100.0 * r.missRatio());
    }
    timing.print(std::cout);
    return 0;
}
