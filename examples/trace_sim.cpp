/**
 * @file
 * Tool: trace-driven simulator for external workloads.
 *
 * Reads a text trace (see src/trace/loader.hh for the format), runs
 * it through a chosen cache organisation and the cycle-level CC
 * machine, and prints miss statistics and cycles per result.
 *
 *   ./trace_sim --trace=workload.txt [--org=prime] [--tm=32] ...
 *   ./trace_sim --demo=workload.txt      # write a sample trace
 */

#include <iostream>

#include "core/vcache.hh"

int
main(int argc, char **argv)
{
    using namespace vcache;

    ArgParser args("Trace-driven vector-cache simulator");
    args.addFlag("trace", "", "trace file to replay");
    args.addFlag("demo", "",
                 "write a demo trace to this path and exit");
    args.addFlag("org", "prime",
                 "cache organisation: direct, prime, xor, assoc, "
                 "full, prime-assoc");
    args.addFlag("c", "13", "cache index bits");
    args.addFlag("ways", "4", "associativity for --org=assoc");
    args.addFlag("tm", "32", "memory access time in cycles");
    args.addFlag("banks", "64", "number of interleaved banks");
    args.addFlag("config", "",
                 "INI experiment file ([machine]/[cache] sections, "
                 "see core/configio.hh); flags override it");
    args.addFlag("classify", "false",
                 "run the timed pass under the 3C classifier per "
                 "scheme and print compulsory/capacity/conflict "
                 "attribution with reuse-distance percentiles");
    addObsFlags(args);
    args.parse(argc, argv);

    if (const auto demo = args.getString("demo"); !demo.empty()) {
        // A small blocked-matmul trace as a format example.
        const auto trace =
            generateMatmulTrace(MatmulParams{32, 8, 0});
        saveTraceFile(demo, trace);
        std::cout << "wrote " << trace.size() << " records to " << demo
                  << "\n";
        return 0;
    }

    const auto path = args.getString("trace");
    if (path.empty())
        vc_fatal("--trace is required (or --demo to generate one)");
    const Trace trace = loadTraceFile(path);
    std::cout << "loaded " << trace.size() << " vector operations ("
              << totalElements(trace) << " element accesses)\n\n";

    // Config file first (if any); explicitly-passed flags override.
    CacheConfig config;
    config.organization = Organization::PrimeMapped;
    MachineParams machine = paperMachineM64();
    machine.memoryTime = 32;
    if (const auto cfg_path = args.getString("config");
        !cfg_path.empty()) {
        const auto kv = KeyValueConfig::parseFile(cfg_path);
        machine = machineFromConfig(kv);
        config = cacheFromConfig(kv);
        if (const auto unused = kv.unusedKeys(); !unused.empty())
            warn("config key '", unused.front(),
                 "' (and possibly others) was not recognised");
    }
    if (args.wasSet("org") || args.getString("config").empty())
        config.organization =
            parseOrganization(args.getString("org"));
    if (args.wasSet("c"))
        config.indexBits = static_cast<unsigned>(args.getUint("c"));
    if (args.wasSet("ways"))
        config.associativity =
            static_cast<unsigned>(args.getUint("ways"));

    // Functional pass: miss ratio and 3C breakdown, reported in the
    // uniform stats grammar.
    const auto cache = makeCache(config);
    const auto breakdown = classifyTrace(*cache, trace);
    std::cout << "cache: " << describe(config) << "\n";
    StatDump stats;
    {
        StatDump::Group g(stats, "cache");
        appendStats(stats, *cache);
        StatDump::Group g3c(stats, "misses");
        appendStats(stats, breakdown);
    }
    stats.print(std::cout);

    // Timed pass through the CC machine (direct/prime only).
    if (args.wasSet("tm") || args.getString("config").empty())
        machine.memoryTime = args.getUint("tm");
    if (args.wasSet("banks"))
        machine.bankBits = floorLog2(args.getUint("banks"));
    machine.cacheIndexBits = config.indexBits;

    std::cout << "\ncycle-level machine (t_m = " << machine.memoryTime
              << ", M = " << machine.banks() << "):\n";
    Table timing({"machine", "cycles", "cycles/result", "miss%"});
    const auto mm = simulateMm(machine, trace);
    timing.addRow("MM (no cache)", mm.totalCycles,
                  mm.cyclesPerResult(), 0.0);
    // --stats-out/--trace-out re-run the timed pass under a
    // TracingObserver per scheme; the printed table itself stays on
    // the zero-cost NullObserver path.
    ObsSession session(obsOptionsFromFlags(args));
    const bool classify = args.getBool("classify");
    StatDump forensics;
    for (const auto scheme :
         {CacheScheme::Direct, CacheScheme::Prime}) {
        const char *name = scheme == CacheScheme::Prime ? "CC prime"
                                                        : "CC direct";
        const auto r = simulateCc(machine, scheme, trace);
        timing.addRow(name, r.totalCycles, r.cyclesPerResult(),
                      100.0 * r.missRatio());
        if (session.enabled()) {
            auto &obs = session.observer(
                scheme == CacheScheme::Prime ? "cc_prime"
                                             : "cc_direct");
            simulateCc(machine, scheme, trace, obs);
        }
        if (classify) {
            // Timed-pass forensics: unlike the functional classifier
            // above, this attributes the misses the CC machine
            // actually takes, per (stride, operand) stream.
            ClassifyingObserver obs(scheme == CacheScheme::Prime
                                        ? "cc_prime"
                                        : "cc_direct");
            simulateCc(machine, scheme, trace, obs);
            obs.dumpTo(forensics);
        }
    }
    timing.print(std::cout);
    if (classify) {
        std::cout << "\ntimed-pass 3C attribution:\n";
        forensics.print(std::cout);
    }
    session.finish();
    return 0;
}
