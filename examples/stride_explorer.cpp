/**
 * @file
 * Tool: explore how a stride behaves in every cache organisation.
 *
 * For one stride (or a whole range), prints the line coverage and the
 * steady-state miss ratio of a re-swept vector in direct-mapped,
 * set-associative and prime-mapped caches -- the quickest way to see
 * why power-of-two strides are poison for power-of-two caches.
 *
 *   ./stride_explorer [--stride=0 for a sweep] [--length=4096]
 */

#include <iostream>

#include "core/vcache.hh"

namespace
{

using namespace vcache;

/** Miss ratio of the second sweep of a twice-swept strided vector. */
double
resweepMissRatio(Cache &cache, std::int64_t stride,
                 std::uint64_t length)
{
    Trace trace;
    VectorOp op;
    op.first = VectorRef{0, stride, length};
    trace.push_back(op);
    trace.push_back(op);
    const auto stats = runTraceThroughCache(cache, trace);
    const auto first_pass_misses =
        std::min<std::uint64_t>(stats.misses, length);
    return static_cast<double>(stats.misses - first_pass_misses) /
           static_cast<double>(length);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace vcache;

    ArgParser args("Per-stride cache behaviour explorer");
    args.addFlag("stride", "0",
                 "stride to inspect; 0 sweeps a canonical set");
    args.addFlag("length", "4096", "elements per sweep");
    args.parse(argc, argv);

    const auto length = args.getUint("length");
    std::vector<std::int64_t> strides;
    if (const auto s = args.getInt("stride"); s != 0) {
        strides.push_back(s);
    } else {
        strides = {1,    2,    3,    7,    8,   64,   100, 512,
                   1024, 2048, 4096, 8192, 8191, 16382, 12345};
    }

    const AddressLayout layout(0, 13, 32);
    std::cout << "8K-word caches; vector length " << length
              << ", swept twice (miss ratio of the re-sweep)\n\n";

    Table table({"stride", "direct coverage", "prime coverage",
                 "direct miss%", "4-way miss%", "full-LRU miss%",
                 "prime miss%"});

    for (const auto stride : strides) {
        const auto mag = static_cast<std::uint64_t>(
            stride < 0 ? -stride : stride);

        DirectMappedCache direct(layout);
        PrimeMappedCache prime(layout);
        SetAssociativeCache assoc(layout, 4,
                                  std::make_unique<LruPolicy>());
        const auto full = makeFullyAssociative(
            layout, std::make_unique<LruPolicy>());

        table.addRow(stride, sweepCoverage(8192, mag),
                     sweepCoverage(8191, mag),
                     100.0 * resweepMissRatio(direct, stride, length),
                     100.0 * resweepMissRatio(assoc, stride, length),
                     100.0 * resweepMissRatio(*full, stride, length),
                     100.0 * resweepMissRatio(prime, stride, length));
    }
    table.print(std::cout);

    std::cout << "\ncoverage = distinct cache lines touched before "
                 "the sweep repeats\n(C/gcd(C, s)); a re-sweep can "
                 "only hit on lines that survived.\n";
    return 0;
}
