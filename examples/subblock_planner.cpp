/**
 * @file
 * Tool: plan a conflict-free sub-block blocking for your matrix.
 *
 * Give it the leading dimension P of a column-major matrix and a
 * cache exponent c; it prints the paper's maximal conflict-free
 * (b1, b2), verifies it by enumeration, and shows what the same
 * blocking does to a direct-mapped cache.
 *
 *   ./subblock_planner --p=5000 [--c=13] [--b1=N --b2=N]
 */

#include <iostream>

#include "core/vcache.hh"

int
main(int argc, char **argv)
{
    using namespace vcache;

    ArgParser args("Conflict-free sub-block planner (Section 4)");
    args.addFlag("p", "5000",
                 "leading dimension of the column-major matrix");
    args.addFlag("c", "13",
                 "cache index bits (prime cache holds 2^c - 1 lines)");
    args.addFlag("b1", "0", "optional: check this b1 instead");
    args.addFlag("b2", "0", "optional: check this b2 instead");
    args.parse(argc, argv);

    const std::uint64_t p = args.getUint("p");
    const auto c = static_cast<unsigned>(args.getUint("c"));
    if (!isMersenneExponent(c))
        vc_fatal("2^", c, " - 1 is not a Mersenne prime; pick c from "
                 "{2,3,5,7,13,17,19,31}");
    const std::uint64_t lines = mersenne(c);

    MachineParams machine = paperMachineM32();
    machine.cacheIndexBits = c;

    std::uint64_t b1 = args.getUint("b1");
    std::uint64_t b2 = args.getUint("b2");
    if (b1 == 0 || b2 == 0) {
        const auto choice = chooseConflictFreeBlocking(p, lines);
        if (choice.b1 == 0)
            vc_fatal("P = ", p, " is a multiple of the cache size ",
                     lines, ": no conflict-free column blocking "
                     "exists; pad the leading dimension");
        b1 = choice.b1;
        b2 = choice.b2;
    }

    const SubblockChoice choice{b1, b2};
    const bool rule_ok = satisfiesConflictFreeRule(p, b1, b2, lines);
    const auto prime_conf =
        countSubblockConflicts(p, b1, b2, machine, CacheScheme::Prime);
    const auto direct_conf = countSubblockConflicts(
        p, b1, b2, machine, CacheScheme::Direct);

    std::cout << "matrix leading dimension P = " << p
              << ", prime cache of " << lines << " lines (c = " << c
              << ")\n\n";
    Table table({"quantity", "value"});
    table.addRow("sub-block b1 x b2",
                 std::to_string(b1) + " x " + std::to_string(b2));
    table.addRow("block elements", b1 * b2);
    table.addRow("cache utilisation %",
                 100.0 * choice.utilization(lines));
    table.addRow("paper rule satisfied", rule_ok ? "yes" : "no");
    table.addRow("prime-mapped self-conflicts (enumerated)",
                 prime_conf);
    table.addRow("direct-mapped self-conflicts (same blocking)",
                 direct_conf);
    table.print(std::cout);

    if (prime_conf == 0)
        std::cout << "\nThis block streams through the prime-mapped "
                     "cache with zero interference\nmisses -- every "
                     "reuse after the initial load is a hit.\n";
    else
        std::cout << "\nWARNING: this blocking is NOT conflict-free "
                     "(see DESIGN.md: the paper's\nrule is only "
                     "sufficient at the maximal b1).  Reduce b2 below "
                     "floor(C / (P mod C))\nor use the planner's "
                     "default choice.\n";
    return 0;
}
