/**
 * Gang-replay differential matrix: SimResults and cache statistics
 * must be bit-identical with the SIMD gang-probe replay on and off.
 *
 * Gang-off recovers the pre-gang element-at-a-time loops exactly (the
 * VCACHE_GANG=off escape hatch), so equality here proves the gang
 * path -- all-hit fast-forwarding in CcSimulator::stripLoop, the
 * MmSimulator gang bank-issue, and the sampling walkOp gang warming
 * -- never changes what is simulated, across every cache
 * organization, workload family (including double streams), prefetch
 * and non-blocking setting, bank mapping, and with observers
 * attached.  Runs under every backend the CI matrix forces via
 * VCACHE_SIMD, so the scalar and AVX2 gangs are both pinned.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/defaults.hh"
#include "obs/observer.hh"
#include "obs/tracing_observer.hh"
#include "sim/cc_sim.hh"
#include "sim/mm_sim.hh"
#include "sim/sampling.hh"
#include "trace/loader.hh"
#include "trace/multistride.hh"
#include "trace/source.hh"
#include "trace/vcm.hh"

namespace vcache
{
namespace
{

void
expectSameResult(const SimResult &got, const SimResult &want,
                 const std::string &label)
{
    EXPECT_EQ(got.totalCycles, want.totalCycles) << label;
    EXPECT_EQ(got.stallCycles, want.stallCycles) << label;
    EXPECT_EQ(got.results, want.results) << label;
    EXPECT_EQ(got.hits, want.hits) << label;
    EXPECT_EQ(got.misses, want.misses) << label;
    EXPECT_EQ(got.compulsoryMisses, want.compulsoryMisses) << label;
}

void
expectSameStats(const CacheStats &got, const CacheStats &want,
                const std::string &label)
{
    EXPECT_EQ(got.accesses, want.accesses) << label;
    EXPECT_EQ(got.reads, want.reads) << label;
    EXPECT_EQ(got.writes, want.writes) << label;
    EXPECT_EQ(got.hits, want.hits) << label;
    EXPECT_EQ(got.misses, want.misses) << label;
    EXPECT_EQ(got.evictions, want.evictions) << label;
    EXPECT_EQ(got.writebacks, want.writebacks) << label;
}

std::uint64_t
counterOf(const TracingObserver &obs, const std::string &name)
{
    const Counter *c = obs.registry().findCounter(name);
    EXPECT_NE(c, nullptr) << name;
    return c ? c->value : 0;
}

/** The same seven organizations the batched suite pins. */
std::vector<std::pair<std::string, CacheConfig>>
allSchemes()
{
    std::vector<std::pair<std::string, CacheConfig>> out;

    CacheConfig direct;
    out.emplace_back("direct", direct);

    CacheConfig prime;
    prime.organization = Organization::PrimeMapped;
    out.emplace_back("prime", prime);

    CacheConfig prime_assoc;
    prime_assoc.organization = Organization::PrimeSetAssociative;
    prime_assoc.associativity = 2;
    out.emplace_back("prime-assoc", prime_assoc);

    CacheConfig set_assoc;
    set_assoc.organization = Organization::SetAssociative;
    set_assoc.associativity = 4;
    out.emplace_back("set-assoc", set_assoc);

    CacheConfig xor_mapped;
    xor_mapped.organization = Organization::XorMapped;
    out.emplace_back("xor", xor_mapped);

    CacheConfig random_assoc;
    random_assoc.organization = Organization::SetAssociative;
    random_assoc.associativity = 4;
    random_assoc.replacement = ReplacementKind::Random;
    out.emplace_back("set-assoc-random", random_assoc);

    CacheConfig wide_lines;
    wide_lines.offsetBits = 2;
    out.emplace_back("direct-4word", wide_lines);

    return out;
}

/**
 * Double-stream, stride-0, negative-stride and gang-boundary shapes
 * (lengths around the 32-element CC gang and 16-element MM gang).
 */
const Trace &
gangEdgeTrace()
{
    static const Trace trace = [] {
        std::istringstream in(R"(# gang-replay differential trace
L 0 3 300
L 0 3 300
S 65536 1 300
L 0 3 300
D 0 1 256 131072 4 200
D 0 1 300 131072 4 120
L 100 0 64
L 9000 -3 500
L 4096 1 1
L 8192 7 31
L 8192 7 32
L 8192 7 33
L 8192 7 65
L 16384 8192 128
)");
        return loadTrace(in);
    }();
    return trace;
}

struct CcOutcome
{
    SimResult result;
    CacheStats stats;
    std::uint64_t prefetches;
};

CcOutcome
runCc(const CacheConfig &config, TraceSource &source, bool gang,
      bool prefetch, bool non_blocking)
{
    CcSimulator sim(paperMachineM32(), config);
    if (prefetch)
        sim.enablePrefetch(PrefetchPolicy::Stride, 2);
    sim.setNonBlockingMisses(non_blocking);
    sim.setEngine(SimEngine::Scalar);
    sim.setGangReplay(gang);
    source.reset();
    const SimResult result = sim.run(source);
    return {result, sim.cache().stats(), sim.prefetchesIssued()};
}

void
diffCc(const CacheConfig &config, TraceSource &source,
       const std::string &label)
{
    for (const bool prefetch : {false, true}) {
        for (const bool non_blocking : {false, true}) {
            const std::string tag = label +
                                    (prefetch ? "+prefetch" : "") +
                                    (non_blocking ? "+nonblock" : "");
            const CcOutcome off =
                runCc(config, source, false, prefetch, non_blocking);
            const CcOutcome on =
                runCc(config, source, true, prefetch, non_blocking);
            expectSameResult(on.result, off.result, tag);
            expectSameStats(on.stats, off.stats, tag);
            EXPECT_EQ(on.prefetches, off.prefetches) << tag;
        }
    }
}

TEST(GangReplayCc, VcmTrace)
{
    VcmParams p;
    p.blockingFactor = 512;
    p.reuseFactor = 6;
    p.blocks = 3;
    p.maxStride = 4096;
    VcmTraceSource source(p, 42);
    for (const auto &[name, config] : allSchemes())
        diffCc(config, source, "vcm/" + name);
}

TEST(GangReplayCc, MultistrideTrace)
{
    MultistrideTraceSource source(
        MultistrideParams{1024, 12, 0.25, 8192, 0, 3}, 7);
    for (const auto &[name, config] : allSchemes())
        diffCc(config, source, "multistride/" + name);
}

TEST(GangReplayCc, GangEdgeTrace)
{
    TraceVectorSource source(gangEdgeTrace());
    for (const auto &[name, config] : allSchemes())
        diffCc(config, source, "edges/" + name);
}

TEST(GangReplayCc, ConstantStrideStreams)
{
    for (const std::int64_t stride : {1, 3, 33, 8192}) {
        ConstantStrideSource source(64, stride, 1000, 25, true);
        for (const auto &[name, config] : allSchemes())
            diffCc(config, source,
                   "const-stride-" + std::to_string(stride) + "/" +
                       name);
    }
}

/**
 * Observers compile the gang path out (the hook sees every element),
 * so an instrumented gang-on run must equal the plain gang-off run
 * and the observer's counters must still reconcile.
 */
TEST(GangReplayCc, ObserversOnMatchesGangOff)
{
    TraceVectorSource source(gangEdgeTrace());
    for (const auto &[name, config] : allSchemes()) {
        const CcOutcome off = runCc(config, source, false, false,
                                    false);

        CcSimulator sim(paperMachineM32(), config);
        sim.setEngine(SimEngine::Scalar);
        sim.setGangReplay(true);
        TracingObserver traced("cc");
        source.reset();
        const SimResult got = sim.run(source, traced);
        expectSameResult(got, off.result, "observed/" + name);
        expectSameStats(sim.cache().stats(), off.stats,
                        "observed/" + name);
        EXPECT_EQ(counterOf(traced, "hits"), got.hits) << name;
    }
}

/** Machine variants covering every bank mapping the MM gang issues. */
std::vector<std::pair<std::string, MachineParams>>
mmMachines()
{
    std::vector<std::pair<std::string, MachineParams>> out;

    MachineParams base = paperMachineM32();
    out.emplace_back("m32-tm16", base);

    MachineParams fast = base;
    fast.memoryTime = 4;
    out.emplace_back("m32-tm4", fast);

    MachineParams few_banks = base;
    few_banks.bankBits = 3;
    few_banks.memoryTime = 64;
    out.emplace_back("m8-tm64", few_banks);

    MachineParams prime_banks = base;
    prime_banks.bankMapping = BankMapping::PrimeModulo;
    out.emplace_back("prime-banks", prime_banks);

    MachineParams skewed = base;
    skewed.bankMapping = BankMapping::Skewed;
    out.emplace_back("skewed-banks", skewed);

    MachineParams xor_banks = base;
    xor_banks.bankMapping = BankMapping::XorHash;
    out.emplace_back("xor-banks", xor_banks);

    return out;
}

void
diffMm(const MachineParams &machine, TraceSource &source,
       const std::string &label)
{
    MmSimulator off(machine);
    off.setEngine(SimEngine::Scalar);
    off.setGangReplay(false);
    source.reset();
    const SimResult want = off.run(source);

    MmSimulator on(machine);
    on.setEngine(SimEngine::Scalar);
    on.setGangReplay(true);
    source.reset();
    expectSameResult(on.run(source), want, label);
}

TEST(GangReplayMm, AllMappingsAndTraces)
{
    for (const auto &[mname, machine] : mmMachines()) {
        TraceVectorSource edges(gangEdgeTrace());
        diffMm(machine, edges, "edges/" + mname);

        MultistrideTraceSource multi(
            MultistrideParams{1024, 12, 0.25, 8192, 0, 3}, 7);
        diffMm(machine, multi, "multistride/" + mname);
    }
}

/**
 * Sampling's walkOp gang warming: estimates must be bit-identical
 * with gangWarm on and off (on mappings with inert read hits the
 * all-hit skip changes no state; elsewhere the flag is a no-op).
 */
TEST(GangReplaySampling, EstimatesUnchanged)
{
    const Trace trace = [] {
        ConstantStrideSource source(0, 3, 2048, 200, true);
        return materializeTrace(source);
    }();

    SamplingOptions on;
    on.seed = 5;
    on.gangWarm = true;
    SamplingOptions off = on;
    off.gangWarm = false;

    CacheConfig xor_mapped;
    xor_mapped.organization = Organization::XorMapped;
    const auto cc_on =
        sampleCc(paperMachineM32(), xor_mapped, trace, on);
    const auto cc_off =
        sampleCc(paperMachineM32(), xor_mapped, trace, off);
    ASSERT_TRUE(cc_on.ok());
    ASSERT_TRUE(cc_off.ok());
    EXPECT_EQ(cc_on.value().cyclesPerElement,
              cc_off.value().cyclesPerElement);
    EXPECT_EQ(cc_on.value().unitsMeasured,
              cc_off.value().unitsMeasured);
    EXPECT_EQ(cc_on.value().elementsMeasured,
              cc_off.value().elementsMeasured);
    expectSameResult(cc_on.value().detailedTotals,
                     cc_off.value().detailedTotals, "sampled-cc");

    // Direct-mapped: the inert-hit gang path engages for CC warming.
    CacheConfig direct;
    const auto d_on = sampleCc(paperMachineM32(), direct, trace, on);
    const auto d_off = sampleCc(paperMachineM32(), direct, trace, off);
    ASSERT_TRUE(d_on.ok());
    ASSERT_TRUE(d_off.ok());
    EXPECT_EQ(d_on.value().cyclesPerElement,
              d_off.value().cyclesPerElement);
    expectSameResult(d_on.value().detailedTotals,
                     d_off.value().detailedTotals, "sampled-cc-direct");

    MachineParams skewed = paperMachineM32();
    skewed.bankMapping = BankMapping::Skewed;
    const auto mm_on = sampleMm(skewed, trace, on);
    const auto mm_off = sampleMm(skewed, trace, off);
    ASSERT_TRUE(mm_on.ok());
    ASSERT_TRUE(mm_off.ok());
    EXPECT_EQ(mm_on.value().cyclesPerElement,
              mm_off.value().cyclesPerElement);
    expectSameResult(mm_on.value().detailedTotals,
                     mm_off.value().detailedTotals, "sampled-mm");
}

} // namespace
} // namespace vcache
