/**
 * Per-backend differential pins for the SIMD kernel layer.
 *
 * Every backend the host can run (forced via setActiveBackend, the
 * same hook the VCACHE_SIMD override uses) must be bit-identical to
 * the scalar reference forms: numtheory::modMersenne over exhaustive
 * 16-bit plus random 64-bit inputs, the stride/fold kernels against
 * their elementwise definitions, and the gang probes against the
 * caches' own containsLine across every shipped organization --
 * including the ~0 sentinel-tag edge cases the SoA layout introduces.
 */

#include "simd/kernels.hh"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cache/factory.hh"
#include "cache/tag_array.hh"
#include "numtheory/mersenne.hh"
#include "util/rng.hh"

namespace vcache
{
namespace
{

class PerBackend : public ::testing::TestWithParam<simd::Backend>
{
  protected:
    void
    SetUp() override
    {
        prev_ = simd::activeBackend();
        ASSERT_TRUE(simd::setActiveBackend(GetParam()));
    }

    void TearDown() override { simd::setActiveBackend(prev_); }

  private:
    simd::Backend prev_ = simd::Backend::Scalar;
};

std::string
backendSuiteName(const ::testing::TestParamInfo<simd::Backend> &info)
{
    return simd::backendName(info.param);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, PerBackend,
                         ::testing::ValuesIn(simd::availableBackends()),
                         backendSuiteName);

/** Scalar XOR fold of c-bit digits (XorMappedCache::hashIndex). */
std::uint64_t
refXorFold(std::uint64_t x, unsigned c)
{
    const std::uint64_t mask = (std::uint64_t{1} << c) - 1;
    std::uint64_t h = 0;
    while (x != 0) {
        h ^= x & mask;
        x >>= c;
    }
    return h;
}

/** Scalar skew fold (the skewed bank mapping's row rotation). */
std::uint64_t
refSkewFold(std::uint64_t x, unsigned bits)
{
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    return (x + (x >> bits)) & mask;
}

/** Interesting 64-bit inputs around every fold boundary. */
std::vector<std::uint64_t>
edgeInputs(unsigned c)
{
    const std::uint64_t m = (std::uint64_t{1} << c) - 1;
    std::vector<std::uint64_t> xs = {0,    1,     m - 1, m,
                                     m + 1, 2 * m, 2 * m + 1};
    for (unsigned shift = c; shift < 64; shift += c) {
        xs.push_back(m << shift);
        xs.push_back((m << shift) | m);
    }
    xs.push_back(~std::uint64_t{0});
    xs.push_back(~std::uint64_t{0} - 1);
    xs.push_back(std::uint64_t{1} << 63);
    return xs;
}

TEST_P(PerBackend, ModMersenneExhaustive16Bit)
{
    const simd::Kernels &k = simd::kernels();
    for (const unsigned c : {2u, 3u, 5u, 7u, 13u}) {
        std::uint64_t in[simd::kMaxGang];
        std::uint64_t out[simd::kMaxGang];
        for (std::uint64_t base = 0; base < (1u << 16);
             base += simd::kMaxGang) {
            for (unsigned i = 0; i < simd::kMaxGang; ++i)
                in[i] = base + i;
            k.modMersenneN(in, simd::kMaxGang, c, out);
            for (unsigned i = 0; i < simd::kMaxGang; ++i)
                ASSERT_EQ(out[i], modMersenne(in[i], c))
                    << "c=" << c << " x=" << in[i];
        }
    }
}

TEST_P(PerBackend, ModMersenneRandomAndEdge64Bit)
{
    const simd::Kernels &k = simd::kernels();
    Rng rng(20260807);
    for (const unsigned c : {2u, 5u, 13u, 16u, 31u}) {
        std::vector<std::uint64_t> xs = edgeInputs(c);
        for (int i = 0; i < 4096; ++i)
            xs.push_back(rng.next());
        std::uint64_t out[simd::kMaxGang];
        for (std::size_t at = 0; at < xs.size();
             at += simd::kMaxGang) {
            const unsigned n = static_cast<unsigned>(
                std::min<std::size_t>(simd::kMaxGang,
                                      xs.size() - at));
            k.modMersenneN(xs.data() + at, n, c, out);
            for (unsigned i = 0; i < n; ++i)
                ASSERT_EQ(out[i], modMersenne(xs[at + i], c))
                    << "c=" << c << " x=" << xs[at + i];
        }
    }
}

TEST_P(PerBackend, StrideLinesMatchesElementArithmetic)
{
    const simd::Kernels &k = simd::kernels();
    const std::uint64_t bases[] = {0, 64, 123456789,
                                   ~std::uint64_t{0} - 500};
    const std::int64_t strides[] = {0, 1, -1, 3, -7, 8192, -8192};
    for (const std::uint64_t base : bases) {
        for (const std::int64_t stride : strides) {
            for (const unsigned shift : {0u, 2u}) {
                for (const unsigned n : {1u, 5u, 32u}) {
                    std::uint64_t lines[simd::kMaxGang];
                    k.strideLines(base, stride, n, shift, lines);
                    for (unsigned i = 0; i < n; ++i) {
                        const std::uint64_t want =
                            (base +
                             static_cast<std::uint64_t>(stride) * i) >>
                            shift;
                        ASSERT_EQ(lines[i], want)
                            << "base=" << base << " stride=" << stride
                            << " shift=" << shift << " i=" << i;
                    }
                }
            }
        }
    }
}

TEST_P(PerBackend, FoldKernelsMatchScalarForms)
{
    const simd::Kernels &k = simd::kernels();
    Rng rng(7);
    for (const unsigned c : {2u, 5u, 13u, 16u}) {
        std::vector<std::uint64_t> xs = edgeInputs(c);
        for (int i = 0; i < 1024; ++i)
            xs.push_back(rng.next());
        const std::uint64_t mask = (std::uint64_t{1} << c) - 1;
        std::uint64_t out[simd::kMaxGang];
        for (std::size_t at = 0; at < xs.size();
             at += simd::kMaxGang) {
            const unsigned n = static_cast<unsigned>(
                std::min<std::size_t>(simd::kMaxGang,
                                      xs.size() - at));
            k.maskFrames(xs.data() + at, n, mask, out);
            for (unsigned i = 0; i < n; ++i)
                ASSERT_EQ(out[i], xs[at + i] & mask);
            k.xorFoldN(xs.data() + at, n, c, out);
            for (unsigned i = 0; i < n; ++i)
                ASSERT_EQ(out[i], refXorFold(xs[at + i], c))
                    << "c=" << c << " x=" << xs[at + i];
            k.skewFoldN(xs.data() + at, n, c, out);
            for (unsigned i = 0; i < n; ++i)
                ASSERT_EQ(out[i], refSkewFold(xs[at + i], c))
                    << "c=" << c << " x=" << xs[at + i];
        }
    }
}

TEST_P(PerBackend, GangProbeHonorsSentinelRule)
{
    const simd::Kernels &k = simd::kernels();
    constexpr std::uint64_t kEmpty = TagArray::kEmptyTag;
    std::vector<std::uint64_t> tags(64, kEmpty);
    tags[3] = 100;
    tags[7] = 0;
    tags[9] = kEmpty; // invalid frame: must never report a hit

    const std::uint64_t frames[] = {3, 3, 7, 9, 5, 7};
    const std::uint64_t lines[] = {100, 101, 0, kEmpty, kEmpty, 0};
    const std::uint32_t got =
        k.gangProbe(tags.data(), frames, lines, 6, kEmpty);
    // Hits: frame 3/line 100, frame 7/line 0 (twice).  Misses: wrong
    // line, sentinel-valued probe lines (even against an invalid
    // frame holding the sentinel), empty frame.
    EXPECT_EQ(got, 0b100101u);
}

/**
 * strideProbe (the fused hot path) must equal the composition of
 * strideLines + the selected index map + gangProbe, for every index
 * map, across wrap-around bases, negative strides and sentinel-valued
 * probe lines.
 */
TEST_P(PerBackend, StrideProbeMatchesDiscreteComposition)
{
    const simd::Kernels &k = simd::kernels();
    constexpr std::uint64_t kEmpty = TagArray::kEmptyTag;
    Rng rng(99);

    for (const simd::IndexMap map :
         {simd::IndexMap::Mask, simd::IndexMap::Mersenne,
          simd::IndexMap::XorFold}) {
        for (const unsigned bits : {5u, 13u}) {
            const auto frameOf = [&](std::uint64_t line) {
                const std::uint64_t m =
                    (std::uint64_t{1} << bits) - 1;
                switch (map) {
                case simd::IndexMap::Mask:
                    return line & m;
                case simd::IndexMap::Mersenne:
                    return modMersenne(line, bits);
                default:
                    return refXorFold(line, bits);
                }
            };
            std::vector<std::uint64_t> tags(std::uint64_t{1} << bits,
                                            kEmpty);

            const std::uint64_t bases[] = {
                0, 999, ~std::uint64_t{0} - 97,
                rng.next()};
            const std::int64_t strides[] = {0, 1, 3, -5, 8191};
            for (const std::uint64_t base : bases) {
                for (const std::int64_t stride : strides) {
                    for (const unsigned shift : {0u, 2u}) {
                        // Make roughly every other element resident.
                        for (unsigned i = 0; i < 32; i += 2) {
                            const std::uint64_t line =
                                (base +
                                 static_cast<std::uint64_t>(stride) *
                                     i) >>
                                shift;
                            if (line != kEmpty)
                                tags[frameOf(line)] = line;
                        }
                        for (const unsigned n : {1u, 7u, 32u}) {
                            std::uint64_t lines[simd::kMaxGang];
                            std::uint64_t frames[simd::kMaxGang];
                            k.strideLines(base, stride, n, shift,
                                          lines);
                            for (unsigned i = 0; i < n; ++i)
                                frames[i] = frameOf(lines[i]);
                            const std::uint32_t want = k.gangProbe(
                                tags.data(), frames, lines, n,
                                kEmpty);
                            const std::uint32_t got = k.strideProbe(
                                tags.data(), base, stride, n, shift,
                                map, bits, kEmpty);
                            ASSERT_EQ(got, want)
                                << simd::backendName(k.backend)
                                << " map="
                                << static_cast<int>(map)
                                << " bits=" << bits
                                << " base=" << base
                                << " stride=" << stride
                                << " shift=" << shift << " n=" << n;
                        }
                    }
                }
            }
        }
    }
}

/**
 * A probe line equal to the sentinel must miss even when its frame
 * holds the sentinel (an *invalid* frame), in both gang entry points.
 */
TEST_P(PerBackend, StrideProbeSentinelLineNeverHits)
{
    const simd::Kernels &k = simd::kernels();
    constexpr std::uint64_t kEmpty = TagArray::kEmptyTag;
    std::vector<std::uint64_t> tags(32, kEmpty);
    // base ~0, stride 0, shift 0: every line is the sentinel.
    const std::uint32_t got =
        k.strideProbe(tags.data(), ~std::uint64_t{0}, 0, 8, 0,
                      simd::IndexMap::Mask, 5, kEmpty);
    EXPECT_EQ(got, 0u);
}

/** The cache configurations the batched differential suite pins. */
std::vector<std::pair<std::string, CacheConfig>>
allSchemes()
{
    std::vector<std::pair<std::string, CacheConfig>> out;

    CacheConfig direct;
    direct.indexBits = 7;
    out.emplace_back("direct", direct);

    CacheConfig prime = direct;
    prime.organization = Organization::PrimeMapped;
    out.emplace_back("prime", prime);

    CacheConfig prime_assoc = direct;
    prime_assoc.organization = Organization::PrimeSetAssociative;
    prime_assoc.associativity = 2;
    out.emplace_back("prime-assoc", prime_assoc);

    CacheConfig set_assoc = direct;
    set_assoc.organization = Organization::SetAssociative;
    set_assoc.associativity = 4;
    out.emplace_back("set-assoc", set_assoc);

    CacheConfig xor_mapped = direct;
    xor_mapped.organization = Organization::XorMapped;
    out.emplace_back("xor", xor_mapped);

    CacheConfig random_assoc = set_assoc;
    random_assoc.replacement = ReplacementKind::Random;
    out.emplace_back("set-assoc-random", random_assoc);

    CacheConfig wide_lines = direct;
    wide_lines.offsetBits = 2;
    out.emplace_back("direct-4word", wide_lines);

    return out;
}

/**
 * Cache-level pin: the gang probes (probeHitMask and the fused
 * probeStrideHitMask) must agree bit-for-bit with the statically
 * bound scalar containsLine on every organization -- the associative
 * ones exercise the Cache base-class scalar defaults, the SoA ones
 * the dispatched kernels, and a resident sentinel-valued line (~0)
 * forces the documented scalar fallback.
 */
TEST_P(PerBackend, CacheProbesMatchContainsAcrossSchemes)
{
    for (const auto &[name, config] : allSchemes()) {
        auto cache = makeCache(config);
        const AddressLayout &layout = cache->addressLayout();

        // Warm with two interleaved strided sweeps so some probes hit
        // and the index maps wrap the table several times.
        for (std::uint64_t i = 0; i < 2000; ++i)
            cache->lookupAndFill(layout.lineAddress(i * 3));
        for (std::uint64_t i = 0; i < 500; ++i)
            cache->lookupAndFill(layout.lineAddress(1u << 20 | i));
        // The sentinel edge: line address ~0 resident.
        cache->lookupAndFill(~std::uint64_t{0});

        const std::uint64_t bases[] = {0, 3 * 1234,
                                       ~std::uint64_t{0} - 64};
        const std::int64_t strides[] = {1, 3, -3, 4096};
        for (const std::uint64_t base : bases) {
            for (const std::int64_t stride : strides) {
                const unsigned n = 32;
                std::uint64_t lines[simd::kMaxGang];
                std::uint32_t want = 0;
                for (unsigned i = 0; i < n; ++i) {
                    const Addr word =
                        base + static_cast<std::uint64_t>(stride) * i;
                    lines[i] = layout.lineAddress(word);
                    want |= static_cast<std::uint32_t>(
                                cache->containsLine(lines[i]))
                            << i;
                }
                EXPECT_EQ(cache->probeHitMask(lines, n), want)
                    << name << " base=" << base
                    << " stride=" << stride;
                EXPECT_EQ(cache->probeStrideHitMask(base, stride, n),
                          want)
                    << name << " base=" << base
                    << " stride=" << stride;
            }
        }
        // The resident sentinel line itself must report a hit through
        // every probe form.
        const std::uint64_t sent_line[] = {~std::uint64_t{0}};
        EXPECT_TRUE(cache->containsLine(sent_line[0])) << name;
        EXPECT_EQ(cache->probeHitMask(sent_line, 1), 1u) << name;
    }
}

TEST(SimdDispatch, BackendListAndOverrideRoundTrip)
{
    const auto backends = simd::availableBackends();
    ASSERT_FALSE(backends.empty());
    // Scalar is always available and always listed last.
    EXPECT_EQ(backends.back(), simd::Backend::Scalar);

    const simd::Backend prev = simd::activeBackend();
    for (const simd::Backend b : backends) {
        EXPECT_TRUE(simd::setActiveBackend(b));
        EXPECT_EQ(simd::activeBackend(), b);
        EXPECT_EQ(simd::kernels().backend, b);
        EXPECT_STREQ(simd::kernels().name, simd::backendName(b));
    }
    EXPECT_TRUE(simd::setActiveBackend(prev));

    simd::Backend parsed;
    EXPECT_TRUE(simd::parseBackend("scalar", parsed));
    EXPECT_EQ(parsed, simd::Backend::Scalar);
    EXPECT_TRUE(simd::parseBackend("avx2", parsed));
    EXPECT_EQ(parsed, simd::Backend::Avx2);
    EXPECT_TRUE(simd::parseBackend("neon", parsed));
    EXPECT_EQ(parsed, simd::Backend::Neon);
    EXPECT_FALSE(simd::parseBackend("sse9", parsed));
}

} // namespace
} // namespace vcache
