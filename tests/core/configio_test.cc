/** Tests for typed experiment configuration. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/configio.hh"
#include "core/defaults.hh"

namespace vcache
{
namespace
{

KeyValueConfig
parseText(const std::string &text)
{
    std::istringstream in(text);
    return KeyValueConfig::parse(in);
}

TEST(ConfigIo, MachineDefaultsArePaperValues)
{
    const auto c = parseText("");
    const auto m = machineFromConfig(c);
    const auto d = paperMachineM64();
    EXPECT_EQ(m.mvl, d.mvl);
    EXPECT_EQ(m.bankBits, d.bankBits);
    EXPECT_EQ(m.cacheIndexBits, d.cacheIndexBits);
}

TEST(ConfigIo, MachineOverrides)
{
    const auto c = parseText(
        "[machine]\n"
        "mvl = 128\n"
        "bank_bits = 5\n"
        "memory_time = 8\n"
        "cache_bits = 7\n"
        "startup_base = 10\n");
    const auto m = machineFromConfig(c);
    EXPECT_EQ(m.mvl, 128u);
    EXPECT_EQ(m.banks(), 32u);
    EXPECT_EQ(m.memoryTime, 8u);
    EXPECT_EQ(m.cacheIndexBits, 7u);
    EXPECT_DOUBLE_EQ(m.startupBase, 10.0);
    EXPECT_DOUBLE_EQ(m.startupTime(), 18.0);
}

TEST(ConfigIo, BankMapping)
{
    EXPECT_EQ(machineFromConfig(parseText("")).bankMapping,
              BankMapping::LowOrder);
    EXPECT_EQ(machineFromConfig(
                  parseText("[machine]\nbank_mapping = prime\n"))
                  .bankMapping,
              BankMapping::PrimeModulo);
    EXPECT_EQ(machineFromConfig(
                  parseText("[machine]\nbank_mapping = skewed\n"))
                  .bankMapping,
              BankMapping::Skewed);
}

TEST(ConfigIoDeathTest, BadBankMapping)
{
    EXPECT_EXIT(
        (void)machineFromConfig(
            parseText("[machine]\nbank_mapping = diagonal\n")),
        testing::ExitedWithCode(1), "bank_mapping");
}

TEST(ConfigIo, CacheSection)
{
    const auto c = parseText(
        "[cache]\n"
        "organization = assoc\n"
        "ways = 8\n"
        "replacement = fifo\n"
        "bits = 10\n"
        "line_words_log2 = 2\n");
    const auto cache = cacheFromConfig(c);
    EXPECT_EQ(cache.organization, Organization::SetAssociative);
    EXPECT_EQ(cache.associativity, 8u);
    EXPECT_EQ(cache.replacement, ReplacementKind::Fifo);
    EXPECT_EQ(cache.indexBits, 10u);
    EXPECT_EQ(cache.offsetBits, 2u);
}

TEST(ConfigIo, CacheBitsFallsBackToMachineCacheBits)
{
    const auto c = parseText("[machine]\ncache_bits = 7\n");
    EXPECT_EQ(cacheFromConfig(c).indexBits, 7u);
}

TEST(ConfigIo, WorkloadSection)
{
    const auto c = parseText(
        "[workload]\n"
        "blocking_factor = 512\n"
        "reuse_factor = 8\n"
        "p_double_stream = 0.5\n"
        "p_stride1 = 0.1\n"
        "total_data = 4096\n");
    const auto w = workloadFromConfig(c);
    EXPECT_DOUBLE_EQ(w.blockingFactor, 512.0);
    EXPECT_DOUBLE_EQ(w.reuseFactor, 8.0);
    EXPECT_DOUBLE_EQ(w.pDoubleStream, 0.5);
    EXPECT_DOUBLE_EQ(w.pStride1First, 0.1);
    EXPECT_DOUBLE_EQ(w.pStride1Second, 0.1); // follows p_stride1
    EXPECT_DOUBLE_EQ(w.totalData, 4096.0);
}

TEST(ConfigIo, ParseNames)
{
    EXPECT_EQ(parseOrganization("direct"), Organization::DirectMapped);
    EXPECT_EQ(parseOrganization("prime"), Organization::PrimeMapped);
    EXPECT_EQ(parseOrganization("prime-assoc"),
              Organization::PrimeSetAssociative);
    EXPECT_EQ(parseReplacement("random"), ReplacementKind::Random);
}

TEST(ConfigIoDeathTest, UnknownNames)
{
    EXPECT_EXIT((void)parseOrganization("hash"),
                testing::ExitedWithCode(1), "unknown cache");
    EXPECT_EXIT((void)parseReplacement("plru"),
                testing::ExitedWithCode(1), "unknown replacement");
}

} // namespace
} // namespace vcache
