/** Tests for the StatDump adapters. */

#include <gtest/gtest.h>

#include <sstream>

#include "cache/direct.hh"
#include "core/defaults.hh"
#include "core/reporting.hh"
#include "sim/runner.hh"
#include "trace/multistride.hh"

namespace vcache
{
namespace
{

std::string
render(const StatDump &dump)
{
    std::ostringstream os;
    dump.print(os);
    return os.str();
}

TEST(Reporting, CacheStatsFieldsAppear)
{
    DirectMappedCache cache(AddressLayout(0, 5, 32));
    cache.access(0, AccessType::Write);
    cache.access(0);
    cache.access(32); // evicts dirty line 0: writeback

    StatDump dump;
    StatDump::Group g(dump, "l1");
    appendStats(dump, cache);
    const auto out = render(dump);

    EXPECT_NE(out.find("l1.accesses  "), std::string::npos);
    EXPECT_NE(out.find("l1.writebacks"), std::string::npos);
    EXPECT_NE(out.find("l1.miss_ratio"), std::string::npos);
    EXPECT_NE(out.find("l1.utilization"), std::string::npos);
}

TEST(Reporting, SimResultFields)
{
    MachineParams m = paperMachineM32();
    const auto trace = generateMultistrideTrace(
        MultistrideParams{128, 4, 0.25, 64, 0, 2}, 9);
    const auto r = simulateCc(m, CacheScheme::Prime, trace);

    StatDump dump;
    appendStats(dump, r);
    const auto out = render(dump);
    EXPECT_NE(out.find("cycles_per_result"), std::string::npos);
    EXPECT_NE(out.find("compulsory_misses"), std::string::npos);
}

TEST(Reporting, BreakdownFields)
{
    MissBreakdown b;
    b.compulsory = 3;
    b.conflict = 4;
    StatDump dump;
    appendStats(dump, b);
    const auto out = render(dump);
    EXPECT_NE(out.find("compulsory  "), std::string::npos);
    EXPECT_NE(out.find("conflict"), std::string::npos);
}

TEST(Reporting, PrefetchAndIndexGenFields)
{
    StatDump dump;
    appendStats(dump, PrefetchStats{10, 7, 1});
    appendStats(dump, IndexGenStats{1, 2, 3});
    const auto out = render(dump);
    EXPECT_NE(out.find("accuracy"), std::string::npos);
    EXPECT_NE(out.find("step_adds"), std::string::npos);
}

} // namespace
} // namespace vcache
