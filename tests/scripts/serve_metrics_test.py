#!/usr/bin/env python3
"""Prometheus exposition round-trip test for the evaluation server.

Drives the real vcache_serve binary: evaluates a few points, fetches
the "metrics" verb, parses every line of the embedded Prometheus text
and cross-checks the values against the "stats" verb, then drains and
verifies the --metrics-out file is the same parseable exposition.

Usage: serve_metrics_test.py /path/to/vcache_serve
"""

import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import time

BANNER = re.compile(r"listening on 127\.0\.0\.1:(\d+)")
SAMPLE = re.compile(r"^(vcache_[a-z0-9_]+) (\d+)$")
TYPE_LINE = re.compile(r"^# TYPE (vcache_[a-z0-9_]+) counter$")


def start_server(binary, metrics_out, log_path):
    log = open(log_path, "w")
    proc = subprocess.Popen(
        [binary, "--port", "0", "--metrics-out", metrics_out],
        stdout=log,
        stderr=subprocess.STDOUT,
    )
    deadline = time.time() + 30
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server exited early: see {log_path}")
        with open(log_path) as contents:
            match = BANNER.search(contents.read())
        if match:
            return proc, int(match.group(1))
        time.sleep(0.05)
    raise RuntimeError(f"server never printed its port: {log_path}")


def rpc(port, obj):
    with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
        s.sendall(json.dumps(obj).encode() + b"\n")
        return json.loads(s.makefile("rb").readline().decode())


def parse_exposition(text):
    """Parse Prometheus 0.0.4 counter text into {metric: value}.

    Strict by design: every line must be either a well-formed # TYPE
    comment or a sample for the metric the comment announced.
    """
    if not text.endswith("\n"):
        raise AssertionError("exposition must end with a newline")
    values = {}
    announced = None
    for line in text.splitlines():
        typed = TYPE_LINE.match(line)
        if typed:
            announced = typed.group(1)
            continue
        sample = SAMPLE.match(line)
        if not sample:
            raise AssertionError(f"unparseable line: {line!r}")
        if sample.group(1) != announced:
            raise AssertionError(
                f"sample {sample.group(1)} does not follow its "
                f"# TYPE line ({announced})"
            )
        values[sample.group(1)] = int(sample.group(2))
        announced = None
    return values


def prometheus_name(counter):
    return "vcache_" + counter.replace(".", "_")


def main():
    binary = sys.argv[1]
    workdir = tempfile.mkdtemp(prefix="vcache_metrics_")
    metrics_out = os.path.join(workdir, "final.prom")
    proc, port = start_server(
        binary, metrics_out, os.path.join(workdir, "server.log")
    )

    for tm in (8, 16, 24):
        resp = rpc(port, {"op": "eval", "tm": tm, "sim": False})
        assert resp.get("ok") is True, resp

    envelope = rpc(port, {"op": "metrics"})
    assert envelope.get("ok") is True, envelope
    assert envelope.get("format") == "prometheus", envelope
    live = parse_exposition(envelope["text"])

    stats = rpc(port, {"op": "stats"})["counters"]
    assert set(live) == {prometheus_name(c) for c in stats}, (
        "metric set diverges from the stats verb"
    )
    # The stats RPC itself is one more connection/request, so those
    # two counters legitimately move between the snapshots.
    volatile = {"serve.connections", "serve.requests"}
    for counter, value in stats.items():
        if counter in volatile:
            continue
        name = prometheus_name(counter)
        assert live[name] == value, (
            f"{name}: metrics={live[name]} stats={value}"
        )
    assert live["vcache_serve_eval_ok"] == 3, live

    rpc(port, {"op": "shutdown"})
    proc.wait(timeout=30)

    with open(metrics_out) as f:
        final = parse_exposition(f.read())
    assert set(final) == set(live), "--metrics-out metric set differs"
    assert final["vcache_serve_eval_ok"] == 3, final

    print(f"OK: {len(live)} metrics round-tripped; "
          f"--metrics-out parsed with {len(final)} metrics")
    return 0


if __name__ == "__main__":
    sys.exit(main())
