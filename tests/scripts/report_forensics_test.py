#!/usr/bin/env python3
"""Unit tests for scripts/report_forensics.py.

Run directly or via ctest (registered in tests/CMakeLists.txt).  The
regression of record: the heatmap CSV's set column must be binned, not
truncated, so conflict mass in high-numbered sets still shades the
rendered map.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, os.pardir,
    "scripts", "report_forensics.py")


def forensics_stats(lane="cc_direct"):
    p = f"{lane}.forensics."
    return {
        p + "accesses": 1000,
        p + "misses_compulsory": 60,
        p + "misses_capacity": 10,
        p + "misses_conflict": 30,
        p + "streams.s1024_op0.accesses": 500,
        p + "streams.s1024_op0.conflict": 30,
        p + "streams.s1_op1.accesses": 500,
        p + "streams.s1_op1.conflict": 0,
        p + "reuse.p50": 16,
        p + "reuse.p99": 512,
        p + "reuse.fa_miss_ratio.cap_8": 1.0,
        p + "reuse.fa_miss_ratio.cap_1024": 0.25,
    }


def run_report(*argv):
    return subprocess.run(
        [sys.executable, SCRIPT, *argv],
        capture_output=True, text=True)


class ReportForensicsTest(unittest.TestCase):
    def test_stats_summary_renders_3c_and_curve(self):
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "stats.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump(forensics_stats(), f)
            proc = run_report("--stats", path)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("cc_direct", proc.stdout)
        self.assertIn("compulsory", proc.stdout)
        self.assertIn("conflict", proc.stdout)
        self.assertIn("stride   1024", proc.stdout)
        self.assertIn("p50 >= 16", proc.stdout)
        self.assertIn("0.2500", proc.stdout)

    def test_stats_without_forensics_keys_fails(self):
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "stats.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump({"cc_direct.hits": 5}, f)
            proc = run_report("--stats", path)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("forensics", proc.stderr)

    def test_heatmap_bins_high_sets_into_view(self):
        rows = ["observer,window,set,accesses,misses,conflict_misses",
                "cc_direct,0,0,10,1,0",
                # All conflict mass in the last of 8192 sets: must
                # still produce a shaded cell after binning to 8 cols.
                "cc_direct,0,8191,10,10,10"]
        with tempfile.TemporaryDirectory() as d:
            path = os.path.join(d, "heat.csv")
            with open(path, "w", encoding="utf-8") as f:
                f.write("\n".join(rows) + "\n")
            proc = run_report("--heatmap", path, "--width", "8")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("set-pressure heatmap", proc.stdout)
        row = next(line for line in proc.stdout.splitlines()
                   if line.strip().startswith("w0"))
        self.assertIn("@", row)

    def test_requires_an_input(self):
        proc = run_report()
        self.assertNotEqual(proc.returncode, 0)


if __name__ == "__main__":
    unittest.main()
