#!/usr/bin/env python3
"""Unit tests for scripts/validate_trace.py.

Run directly or via ctest (registered in tests/CMakeLists.txt).  The
regressions of record: a forensics conflict_evict instant missing its
numeric victim must fail validation, and --require-event must reject a
trace in which the named event never fired (the CI forensics run
relies on both).
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, os.pardir,
    "scripts", "validate_trace.py")


def meta(pid, tid, name):
    return {"ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
            "args": {"name": name}}


def instant(name, args, ts=10, pid=1, tid=0):
    return {"ph": "i", "s": "t", "ts": ts, "pid": pid, "tid": tid,
            "name": name, "cat": "forensics", "args": args}


def good_events():
    return [
        meta(1, 0, "cc_direct.forensics"),
        {"ph": "B", "ts": 0, "pid": 1, "tid": 0, "name": "vec_op"},
        instant("conflict_evict",
                {"evictor": 4096, "victim": 2048, "set": 5}),
        {"ph": "E", "ts": 20, "pid": 1, "tid": 0},
        {"ph": "C", "ts": 20, "pid": 1, "tid": 0, "name": "misses",
         "args": {"misses": 3}},
    ]


def run_validator(events, *extra_args):
    with tempfile.TemporaryDirectory() as d:
        path = os.path.join(d, "trace.json")
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"traceEvents": events}, f)
        return subprocess.run(
            [sys.executable, SCRIPT, path, *extra_args],
            capture_output=True, text=True)


class ValidateTraceTest(unittest.TestCase):
    def test_valid_forensics_trace_passes(self):
        proc = run_validator(good_events(),
                             "--require-event", "conflict_evict")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("OK", proc.stdout)

    def test_conflict_evict_missing_victim_fails(self):
        events = good_events()
        events[2] = instant("conflict_evict",
                            {"evictor": 4096, "set": 5})
        proc = run_validator(events)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("victim", proc.stderr)

    def test_conflict_evict_non_numeric_arg_fails(self):
        events = good_events()
        events[2] = instant(
            "conflict_evict",
            {"evictor": 4096, "victim": "0x800", "set": 5})
        proc = run_validator(events)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("victim", proc.stderr)

    def test_require_event_rejects_absent_name(self):
        events = [e for e in good_events()
                  if e.get("name") != "conflict_evict"]
        proc = run_validator(events,
                             "--require-event", "conflict_evict")
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("conflict_evict", proc.stderr)

    def test_unbalanced_slice_still_fails(self):
        events = good_events()[:-2]  # drop the "E" and the counter
        proc = run_validator(events)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("never closed", proc.stderr)


if __name__ == "__main__":
    unittest.main()
