#!/usr/bin/env python3
"""Tests for compare_bench.py, in particular the --summary-out JSON
that CI consumes instead of scraping stdout."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)),
    "..",
    "..",
    "scripts",
    "compare_bench.py",
)


def doc(rates, build_type="Release", backend="avx2"):
    return {
        "context": {
            "build_type": build_type,
            "simd_backend": backend,
        },
        "summary": rates,
    }


class CompareBenchTest(unittest.TestCase):
    def run_compare(self, baseline, current, extra=None):
        with tempfile.TemporaryDirectory() as tmp:
            base_path = os.path.join(tmp, "base.json")
            curr_path = os.path.join(tmp, "curr.json")
            summary_path = os.path.join(tmp, "summary.json")
            with open(base_path, "w") as f:
                json.dump(baseline, f)
            with open(curr_path, "w") as f:
                json.dump(current, f)
            result = subprocess.run(
                [
                    sys.executable,
                    SCRIPT,
                    base_path,
                    curr_path,
                    "--summary-out",
                    summary_path,
                ]
                + (extra or []),
                capture_output=True,
                text=True,
            )
            summary = None
            if os.path.exists(summary_path):
                with open(summary_path) as f:
                    summary = json.load(f)
            return result, summary

    def test_pass_writes_passing_summary(self):
        result, summary = self.run_compare(
            doc({"mm": 100.0, "cc": 50.0}),
            doc({"mm": 101.0, "cc": 50.0}),
        )
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertTrue(summary["passed"])
        self.assertEqual(summary["compared"], 2)
        self.assertEqual(summary["regressed"], [])
        self.assertEqual(summary["rates"]["mm"]["status"], "OK")
        self.assertAlmostEqual(
            summary["rates"]["mm"]["ratio"], 1.01
        )
        self.assertEqual(summary["build_type"], "Release")

    def test_regression_fails_and_is_named_in_summary(self):
        result, summary = self.run_compare(
            doc({"mm": 100.0, "cc": 50.0}),
            doc({"mm": 80.0, "cc": 50.0}),
        )
        self.assertEqual(result.returncode, 1)
        self.assertFalse(summary["passed"])
        self.assertEqual(summary["regressed"], ["mm"])
        self.assertEqual(
            summary["rates"]["mm"]["status"], "REGRESSION"
        )
        # The passing rate is still reported for dashboards.
        self.assertEqual(summary["rates"]["cc"]["status"], "OK")

    def test_tolerance_is_respected(self):
        result, summary = self.run_compare(
            doc({"mm": 100.0}),
            doc({"mm": 80.0}),
            extra=["--tolerance", "0.25"],
        )
        self.assertEqual(result.returncode, 0, result.stderr)
        self.assertTrue(summary["passed"])
        self.assertAlmostEqual(summary["tolerance"], 0.25)

    def test_no_shared_rates_is_a_failing_summary(self):
        result, summary = self.run_compare(
            doc({"mm": 100.0}), doc({"other": 50.0})
        )
        self.assertEqual(result.returncode, 1)
        self.assertFalse(summary["passed"])
        self.assertEqual(summary["compared"], 0)

    def test_build_type_mismatch_refused_before_summary(self):
        result, summary = self.run_compare(
            doc({"mm": 100.0}, build_type="Release"),
            doc({"mm": 100.0}, build_type="Debug"),
        )
        self.assertEqual(result.returncode, 1)
        self.assertIn("build_type mismatch", result.stderr)
        # Refused comparisons produce no summary at all: a stale
        # artifact must not look like a verdict.
        self.assertIsNone(summary)


if __name__ == "__main__":
    unittest.main()
