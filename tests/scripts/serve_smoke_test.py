#!/usr/bin/env python3
"""End-to-end crash-recovery smoke test for the evaluation server.

Drives the real vcache_serve binary through the full robustness
story: mixed valid/malformed load, kill -9 mid-operation, restart on
the same journal, and byte-identical answers afterwards.

Usage: serve_smoke_test.py /path/to/vcache_serve /path/to/replay_client.py
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import tempfile
import time

BANNER = re.compile(r"listening on 127\.0\.0\.1:(\d+)")


def start_server(binary, journal, log_path):
    log = open(log_path, "w")
    proc = subprocess.Popen(
        [
            binary,
            "--port",
            "0",
            "--memo-journal",
            journal,
            "--queue-depth",
            "512",
        ],
        stdout=log,
        stderr=subprocess.STDOUT,
    )
    deadline = time.time() + 30
    while time.time() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"server exited early: see {log_path}"
            )
        with open(log_path) as contents:
            match = BANNER.search(contents.read())
        if match:
            return proc, int(match.group(1))
        time.sleep(0.05)
    raise RuntimeError(f"server never printed its port: {log_path}")


def run_client(client, port, extra):
    cmd = [
        sys.executable,
        client,
        "--port",
        str(port),
        "--connections",
        "4",
        "--requests",
        "1000",
        "--profile",
        "mixed",
    ] + extra
    result = subprocess.run(cmd, capture_output=True, text=True)
    sys.stdout.write(result.stdout)
    sys.stderr.write(result.stderr)
    if result.returncode != 0:
        raise RuntimeError(f"replay client failed: {cmd}")
    return result.stdout


def rpc(port, obj):
    with socket.create_connection(("127.0.0.1", port), timeout=30) as s:
        s.sendall(json.dumps(obj).encode() + b"\n")
        return json.loads(s.makefile("rb").readline().decode())


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    binary, client = sys.argv[1], sys.argv[2]

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "memo.vcj")
        capture = os.path.join(tmp, "before.json")

        # Phase 1: mixed load (valid, malformed, duplicates) against a
        # fresh server; capture result bytes.  The client exits
        # non-zero on any protocol violation, so malformed lines
        # killing a connection (or the process) fails here.
        proc, port = start_server(
            binary, journal, os.path.join(tmp, "serve1.log")
        )
        run_client(client, port, ["--capture", capture])
        stats = rpc(port, {"op": "stats"})["counters"]
        if stats["serve.malformed"] == 0:
            raise RuntimeError(
                "mixed profile sent no malformed lines?"
            )
        if proc.poll() is not None:
            raise RuntimeError("server died under mixed load")

        # Phase 2: kill -9, no drain, no flush.  The journal keeps
        # whatever had been appended; a torn tail is expected.
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait()

        # Phase 3: restart on the same journal; answers must be
        # byte-identical to phase 1 for every key both runs saw.
        proc, port = start_server(
            binary, journal, os.path.join(tmp, "serve2.log")
        )
        run_client(client, port, ["--compare", capture])
        stats = rpc(port, {"op": "stats"})["counters"]
        if stats["memo.journal_loaded"] == 0:
            raise RuntimeError(
                "restart loaded nothing from the journal"
            )

        # Phase 4: graceful remote shutdown must drain cleanly.
        ack = rpc(port, {"op": "shutdown"})
        if ack.get("draining") is not True:
            raise RuntimeError(f"unexpected shutdown ack: {ack}")
        if proc.wait(timeout=30) != 0:
            raise RuntimeError("server exited non-zero on drain")

    print("serve smoke: mixed load, kill -9, heal, drain -- all ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
