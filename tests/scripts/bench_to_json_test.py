#!/usr/bin/env python3
"""Unit tests for scripts/bench_to_json.py.

Run directly or via ctest (registered in tests/CMakeLists.txt).  The
regression of record: a benchmark reporting real_time in a
non-nanosecond time_unit (e.g. ms) must be converted to ns, not stored
verbatim under the real_time_ns key.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), os.pardir, os.pardir,
    "scripts", "bench_to_json.py")


def run_script(raw: dict, out_dir: str):
    raw_path = os.path.join(out_dir, "raw.json")
    out_path = os.path.join(out_dir, "out.json")
    with open(raw_path, "w", encoding="utf-8") as f:
        json.dump(raw, f)
    proc = subprocess.run(
        [sys.executable, SCRIPT, raw_path, out_path],
        capture_output=True, text=True)
    result = None
    if os.path.exists(out_path):
        with open(out_path, encoding="utf-8") as f:
            result = json.load(f)
    return proc, result


def bench(name, rate, real_time, unit=None, run_type=None):
    entry = {"name": name, "items_per_second": rate,
             "real_time": real_time}
    if unit is not None:
        entry["time_unit"] = unit
    if run_type is not None:
        entry["run_type"] = run_type
    return entry


class BenchToJsonTest(unittest.TestCase):
    def test_ms_time_unit_converts_to_ns(self):
        raw = {
            "context": {"date": "2026-01-01"},
            "benchmarks": [
                # The ms benchmark of record: 2.5 ms must land as
                # 2.5e6 ns, not 2.5 "ns".
                bench("BM_Slow", 1000.0, 2.5, unit="ms"),
                bench("BM_Fast", 2e6, 512.0, unit="ns"),
                bench("BM_Default", 3e6, 128.0),  # no unit => ns
                bench("BM_Micro", 4e6, 9.5, unit="us"),
                bench("BM_Whole", 10.0, 1.25, unit="s"),
            ],
        }
        with tempfile.TemporaryDirectory() as d:
            proc, out = run_script(raw, d)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        items = out["benchmarks"]
        self.assertEqual(items["BM_Slow"]["real_time_ns"], 2.5e6)
        self.assertEqual(items["BM_Fast"]["real_time_ns"], 512.0)
        self.assertEqual(items["BM_Default"]["real_time_ns"], 128.0)
        self.assertEqual(items["BM_Micro"]["real_time_ns"], 9500.0)
        self.assertEqual(items["BM_Whole"]["real_time_ns"], 1.25e9)

    def test_unknown_time_unit_fails(self):
        raw = {"benchmarks": [bench("BM_X", 1.0, 1.0, unit="fortnights")]}
        with tempfile.TemporaryDirectory() as d:
            proc, _ = run_script(raw, d)
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("time_unit", proc.stderr)

    def test_aggregates_skipped_and_summary_keys_present(self):
        raw = {
            "benchmarks": [
                bench("BM_TimedCcSimulator/direct", 5e6, 1.0, unit="ms"),
                bench("BM_TimedCcSimulator/direct", 9e9, 1.0,
                      unit="ms", run_type="aggregate"),
                bench("BM_SampledMmSimulator/sampled", 8e8, 3.0),
                bench("BM_SampledMmSimulator/scalar", 1e8, 30.0),
            ],
        }
        with tempfile.TemporaryDirectory() as d:
            proc, out = run_script(raw, d)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        summary = out["summary"]
        # The plain run wins over the aggregate row.
        self.assertEqual(summary["cc_direct_elements_per_s"], 5e6)
        self.assertEqual(summary["mm_sampled_elements_per_s"], 8e8)
        self.assertEqual(summary["mm_sampled_scalar_elements_per_s"],
                         1e8)


if __name__ == "__main__":
    unittest.main()
