#!/usr/bin/env python3
"""Fault-tolerance probe for the evaluation server.

Drives requests at a server running with an injected fault plan
(serve.accept / serve.queue / serve.evaluate / serve.journal.append)
and asserts the robustness contract: individual requests or
connections may fail, but some traffic is always answered and the
stats verb still works afterwards -- i.e. the process survived.

Unlike replay_client.py this deliberately tolerates per-request
failures; with a tripped fault plan they are the expected outcome.

Usage: serve_fault_probe.py PORT LABEL
"""

import json
import socket
import sys


def main():
    port, label = int(sys.argv[1]), sys.argv[2]
    answered = faulted = 0
    for i in range(60):
        try:
            with socket.create_connection(
                ("127.0.0.1", port), timeout=30
            ) as sock:
                req = {
                    "op": "eval",
                    "id": f"f{i}",
                    "tm": 4 + i % 8,
                    "sim": False,
                }
                sock.sendall((json.dumps(req) + "\n").encode())
                line = sock.makefile("rb").readline()
                if not line:
                    # An accept fault closed the connection: that is
                    # the documented cost of that site.
                    faulted += 1
                    continue
                answered += 1
                if json.loads(line.decode()).get("ok") is False:
                    faulted += 1
        except OSError:
            faulted += 1
    assert answered > 0, f"{label}: nothing answered"

    with socket.create_connection(
        ("127.0.0.1", port), timeout=30
    ) as sock:
        sock.sendall(b'{"op":"stats"}\n')
        stats = json.loads(sock.makefile("rb").readline().decode())
    assert stats.get("ok") is True, f"{label}: stats verb failed"
    print(
        f"{label}: answered={answered} faulted={faulted} "
        "server alive"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
