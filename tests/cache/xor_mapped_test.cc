/** Tests for the XOR-hash-indexed cache. */

#include <gtest/gtest.h>

#include "cache/prime.hh"
#include "cache/xor_mapped.hh"

namespace vcache
{
namespace
{

AddressLayout
tinyLayout()
{
    return AddressLayout(0, 5, 32); // 32 lines
}

TEST(XorMapped, HashIsXorOfDigits)
{
    XorMappedCache cache(tinyLayout());
    EXPECT_EQ(cache.hashIndex(0), 0u);
    EXPECT_EQ(cache.hashIndex(5), 5u);
    // 32 + 5 = 0b100101: high digit 1 ^ low digit 5 = 4.
    EXPECT_EQ(cache.hashIndex(37), 4u);
    // Three digits: 1 ^ 2 ^ 3 = 0.
    EXPECT_EQ(cache.hashIndex((1ull << 10) | (2ull << 5) | 3), 0u);
}

TEST(XorMapped, BasicHitMiss)
{
    XorMappedCache cache(tinyLayout());
    EXPECT_FALSE(cache.access(7).hit);
    EXPECT_TRUE(cache.access(7).hit);
    EXPECT_TRUE(cache.contains(7));
    EXPECT_EQ(cache.numLines(), 32u);
}

TEST(XorMapped, PermutesButDoesNotSpreadCacheSizeStride)
{
    // Stride 32 (the line count): addresses 32k hash to k ^ (high
    // digits), a *permutation* of frames -- better than the
    // direct-mapped collapse onto frame 0, but a stride of 32*32
    // still collapses classes.
    XorMappedCache cache(tinyLayout());
    for (Addr a = 0; a < 32 * 32; a += 32)
        cache.access(a);
    for (Addr a = 0; a < 32 * 32; a += 32)
        EXPECT_TRUE(cache.access(a).hit) << a;
}

TEST(XorMapped, GfLinearityLeavesResidualConflicts)
{
    // XOR folding is linear over GF(2): addresses that differ by a
    // multiple of 2^(2c) = 1024 in the same digit pattern collide.
    // A sweep of 64 elements with stride 1024 touches only the
    // frames reachable by the third digit: the re-sweep thrashes.
    XorMappedCache xorc(tinyLayout());
    PrimeMappedCache prime(tinyLayout());
    for (int pass = 0; pass < 2; ++pass)
        for (Addr i = 0; i < 64; ++i) {
            xorc.access(i * 1024);
            prime.access(i * 1024);
        }
    // 1024 = 2^10: hash(i * 1024) = i ^ (i >> ...) stays within 32
    // frames; 64 > 32 lines collide.  The 31-line prime cache sees
    // stride 1024 mod 31 = 1: 64 > 31 also wraps, but spreads over
    // all 31 frames.
    EXPECT_LT(xorc.stats().hitRatio(), prime.stats().hitRatio() + 0.3);
    EXPECT_GT(xorc.stats().misses, 64u);
}

TEST(XorMapped, ResetAndUtilization)
{
    XorMappedCache cache(tinyLayout());
    cache.access(1);
    cache.access(2);
    EXPECT_DOUBLE_EQ(cache.utilization(), 2.0 / 32.0);
    cache.reset();
    EXPECT_EQ(cache.validLines(), 0u);
    EXPECT_EQ(cache.stats().accesses, 0u);
}

} // namespace
} // namespace vcache
