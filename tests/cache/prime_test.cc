/** Tests for the prime-mapped cache -- the paper's contribution. */

#include <gtest/gtest.h>

#include "cache/direct.hh"
#include "cache/prime.hh"
#include "numtheory/mersenne.hh"
#include "sim/runner.hh"
#include "trace/multistride.hh"

namespace vcache
{
namespace
{

AddressLayout
tinyLayout()
{
    return AddressLayout(0, 3, 32); // prime cache: 7 lines
}

AddressLayout
paperLayout()
{
    return AddressLayout(0, 13, 32); // prime cache: 8191 lines
}

TEST(PrimeMapped, Geometry)
{
    PrimeMappedCache cache(paperLayout());
    EXPECT_EQ(cache.numLines(), 8191u);
    EXPECT_EQ(cache.capacityWords(), 8191u);
}

TEST(PrimeMapped, ColdMissThenHit)
{
    PrimeMappedCache cache(tinyLayout());
    EXPECT_FALSE(cache.access(5).hit);
    EXPECT_TRUE(cache.access(5).hit);
}

TEST(PrimeMapped, ModuloPlacement)
{
    PrimeMappedCache cache(tinyLayout());
    cache.access(1);
    const auto out = cache.access(8); // 8 mod 7 == 1: conflict
    EXPECT_FALSE(out.hit);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedLine, 1u);
}

TEST(PrimeMapped, PowerOfTwoStrideDoesNotThrash)
{
    // The direct-mapped killer: stride 8 == cache-size of the 2^3
    // cache.  In the 7-line prime cache it cycles all 7 lines.
    PrimeMappedCache cache(tinyLayout());
    for (Addr a = 0; a < 7 * 8; a += 8)
        EXPECT_FALSE(cache.access(a).hit); // compulsory only
    for (Addr a = 0; a < 7 * 8; a += 8)
        EXPECT_TRUE(cache.access(a).hit) << "addr " << a;
}

class PrimeStrideSweep : public testing::TestWithParam<std::int64_t>
{
};

TEST_P(PrimeStrideSweep, ConflictFreeUnlessMultipleOfCacheSize)
{
    // Property (Section 2.3): a B-element sweep with stride s causes
    // no self-interference in the prime cache iff s mod 8191 != 0,
    // for any B <= 8191.
    const std::int64_t stride = GetParam();
    PrimeMappedCache cache(paperLayout());
    const std::uint64_t b = 4096;
    for (std::uint64_t i = 0; i < b; ++i)
        cache.access(static_cast<Addr>(stride) * i);
    for (std::uint64_t i = 0; i < b; ++i) {
        const bool hit =
            cache.access(static_cast<Addr>(stride) * i).hit;
        if (stride % 8191 == 0)
            EXPECT_FALSE(hit);
        else
            EXPECT_TRUE(hit) << "stride " << stride << " i " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Strides, PrimeStrideSweep,
    testing::Values(1, 2, 7, 8, 64, 512, 1024, 4096, 8192, 8190, 8191,
                    2 * 8191, 12345));

TEST(PrimeMapped, RowAndDiagonalBothConflictFree)
{
    // The introduction's argument: with leading dimension P, row
    // accesses (stride P) and diagonal accesses (stride P + 1) cannot
    // both be conflict-free in any power-of-two cache, but are in the
    // prime cache whenever neither stride is a multiple of 8191.
    PrimeMappedCache prime(paperLayout());
    const std::uint64_t p = 1024; // power-of-two leading dimension
    const std::uint64_t n = 2048;

    for (std::uint64_t i = 0; i < n; ++i)
        prime.access(p * i); // row sweep
    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_TRUE(prime.access(p * i).hit);

    prime.reset();
    for (std::uint64_t i = 0; i < n; ++i)
        prime.access((p + 1) * i); // diagonal sweep
    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_TRUE(prime.access((p + 1) * i).hit);

    // The direct-mapped cache fails the row sweep outright.
    DirectMappedCache direct(paperLayout());
    for (std::uint64_t i = 0; i < n; ++i)
        direct.access(p * i);
    std::uint64_t row_hits = 0;
    for (std::uint64_t i = 0; i < n; ++i)
        row_hits += direct.access(p * i).hit;
    // All 2048 rows fight over C/gcd(C,P) = 8 lines: total thrash.
    EXPECT_EQ(row_hits, 0u);
}

TEST(PrimeMapped, BeatsDirectOnRandomMultistride)
{
    const MultistrideParams params{1024, 64, 0.25, 8192, 0};
    const Trace trace = generateMultistrideTrace(params, 99);

    PrimeMappedCache prime(paperLayout());
    DirectMappedCache direct(paperLayout());
    const auto prime_stats = runTraceThroughCache(prime, trace);
    const auto direct_stats = runTraceThroughCache(direct, trace);

    EXPECT_LT(prime_stats.missRatio(), direct_stats.missRatio());
}

TEST(PrimeMapped, ResetRestoresColdCache)
{
    PrimeMappedCache cache(tinyLayout());
    cache.access(3);
    EXPECT_TRUE(cache.contains(3));
    cache.reset();
    EXPECT_FALSE(cache.contains(3));
    EXPECT_EQ(cache.validLines(), 0u);
}

TEST(PrimeMappedDeathTest, RejectsCompositeExponent)
{
    EXPECT_DEATH(PrimeMappedCache{AddressLayout(0, 11, 32)},
                 "Mersenne");
}

TEST(PrimeMapped, CompositeExponentWhenRelaxed)
{
    PrimeMappedCache cache(AddressLayout(0, 11, 32), false);
    EXPECT_EQ(cache.numLines(), 2047u);
}

} // namespace
} // namespace vcache
