/** Tests for 3C miss classification. */

#include <gtest/gtest.h>

#include "cache/classify.hh"
#include "cache/direct.hh"
#include "cache/prime.hh"

namespace vcache
{
namespace
{

TEST(MissClassifier, FirstTouchIsCompulsory)
{
    DirectMappedCache cache(AddressLayout(0, 3, 32));
    MissClassifier classifier(cache);
    for (Addr a = 0; a < 4; ++a)
        classifier.access(a);
    EXPECT_EQ(classifier.breakdown().compulsory, 4u);
    EXPECT_EQ(classifier.breakdown().capacity, 0u);
    EXPECT_EQ(classifier.breakdown().conflict, 0u);
}

TEST(MissClassifier, ConflictMissesDetected)
{
    // Two lines alias in the direct-mapped cache but fit in the
    // same-capacity fully-associative shadow: conflict misses.
    DirectMappedCache cache(AddressLayout(0, 3, 32));
    MissClassifier classifier(cache);
    classifier.access(0);
    classifier.access(8);  // evicts 0 (same frame), shadow keeps both
    classifier.access(0);  // miss in cache, hit in shadow -> conflict
    classifier.access(8);
    const auto &b = classifier.breakdown();
    EXPECT_EQ(b.compulsory, 2u);
    EXPECT_EQ(b.conflict, 2u);
    EXPECT_EQ(b.capacity, 0u);
}

TEST(MissClassifier, CapacityMissesDetected)
{
    // A sweep over 2x the cache size misses in the shadow LRU too.
    DirectMappedCache cache(AddressLayout(0, 3, 32));
    MissClassifier classifier(cache);
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 16; ++a)
            classifier.access(a);
    const auto &b = classifier.breakdown();
    EXPECT_EQ(b.compulsory, 16u);
    EXPECT_EQ(b.capacity, 16u);
    EXPECT_EQ(b.conflict, 0u);
}

TEST(MissClassifier, PrimeCacheRemovesConflictClass)
{
    // Stride 8 sweep, re-swept: all conflict misses in the 8-line
    // direct cache, none in the 7-line prime cache.
    DirectMappedCache direct(AddressLayout(0, 3, 32));
    MissClassifier direct_cls(direct);
    PrimeMappedCache prime(AddressLayout(0, 3, 32));
    MissClassifier prime_cls(prime);

    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 7 * 8; a += 8) {
            direct_cls.access(a);
            prime_cls.access(a);
        }

    EXPECT_EQ(direct_cls.breakdown().conflict, 7u);
    EXPECT_EQ(prime_cls.breakdown().conflict, 0u);
    EXPECT_EQ(prime_cls.breakdown().compulsory, 7u);
}

TEST(MissClassifier, TotalsMatchCacheMisses)
{
    DirectMappedCache cache(AddressLayout(0, 4, 32));
    MissClassifier classifier(cache);
    for (Addr a = 0; a < 100; ++a)
        classifier.access(a * 3);
    EXPECT_EQ(classifier.breakdown().total(), cache.stats().misses);
}

TEST(MissClassifier, ResetClearsAll)
{
    DirectMappedCache cache(AddressLayout(0, 3, 32));
    MissClassifier classifier(cache);
    classifier.access(0);
    classifier.reset();
    EXPECT_EQ(classifier.breakdown().total(), 0u);
    EXPECT_EQ(cache.stats().accesses, 0u);
    classifier.access(0);
    EXPECT_EQ(classifier.breakdown().compulsory, 1u);
}

} // namespace
} // namespace vcache
