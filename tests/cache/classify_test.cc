/** Tests for 3C miss classification. */

#include <algorithm>
#include <list>
#include <random>
#include <unordered_set>

#include <gtest/gtest.h>

#include "cache/classify.hh"
#include "cache/direct.hh"
#include "cache/prime.hh"

namespace vcache
{
namespace
{

/**
 * Reference shadow LRU: the std::list implementation the intrusive
 * ShadowLru replaced.  O(n) per access, kept here only to pin the
 * replacement's behaviour bit-identically.
 */
class ListShadowLru
{
  public:
    explicit ListShadowLru(std::uint64_t capacity) : cap(capacity) {}

    bool
    access(Addr line)
    {
        auto it = std::find(order.begin(), order.end(), line);
        if (it != order.end()) {
            order.splice(order.begin(), order, it);
            return true;
        }
        if (order.size() >= cap)
            order.pop_back();
        order.push_front(line);
        return false;
    }

  private:
    std::uint64_t cap;
    std::list<Addr> order;
};

/** A 3C classifier built on the reference list shadow. */
class ListClassifier
{
  public:
    explicit ListClassifier(Cache &cache)
        : target(cache), shadow(cache.numLines())
    {
    }

    void
    access(Addr word_addr)
    {
        const Addr line = target.addressLayout().lineAddress(word_addr);
        const AccessOutcome outcome = target.access(word_addr);
        const bool first_touch = seen.insert(line).second;
        const bool in_shadow = shadow.access(line);
        if (!outcome.hit) {
            if (first_touch)
                ++byClass.compulsory;
            else if (in_shadow)
                ++byClass.conflict;
            else
                ++byClass.capacity;
        }
    }

    const MissBreakdown &breakdown() const { return byClass; }

  private:
    Cache &target;
    ListShadowLru shadow;
    std::unordered_set<Addr> seen;
    MissBreakdown byClass;
};

TEST(MissClassifier, FirstTouchIsCompulsory)
{
    DirectMappedCache cache(AddressLayout(0, 3, 32));
    MissClassifier classifier(cache);
    for (Addr a = 0; a < 4; ++a)
        classifier.access(a);
    EXPECT_EQ(classifier.breakdown().compulsory, 4u);
    EXPECT_EQ(classifier.breakdown().capacity, 0u);
    EXPECT_EQ(classifier.breakdown().conflict, 0u);
}

TEST(MissClassifier, ConflictMissesDetected)
{
    // Two lines alias in the direct-mapped cache but fit in the
    // same-capacity fully-associative shadow: conflict misses.
    DirectMappedCache cache(AddressLayout(0, 3, 32));
    MissClassifier classifier(cache);
    classifier.access(0);
    classifier.access(8);  // evicts 0 (same frame), shadow keeps both
    classifier.access(0);  // miss in cache, hit in shadow -> conflict
    classifier.access(8);
    const auto &b = classifier.breakdown();
    EXPECT_EQ(b.compulsory, 2u);
    EXPECT_EQ(b.conflict, 2u);
    EXPECT_EQ(b.capacity, 0u);
}

TEST(MissClassifier, CapacityMissesDetected)
{
    // A sweep over 2x the cache size misses in the shadow LRU too.
    DirectMappedCache cache(AddressLayout(0, 3, 32));
    MissClassifier classifier(cache);
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 16; ++a)
            classifier.access(a);
    const auto &b = classifier.breakdown();
    EXPECT_EQ(b.compulsory, 16u);
    EXPECT_EQ(b.capacity, 16u);
    EXPECT_EQ(b.conflict, 0u);
}

TEST(MissClassifier, PrimeCacheRemovesConflictClass)
{
    // Stride 8 sweep, re-swept: all conflict misses in the 8-line
    // direct cache, none in the 7-line prime cache.
    DirectMappedCache direct(AddressLayout(0, 3, 32));
    MissClassifier direct_cls(direct);
    PrimeMappedCache prime(AddressLayout(0, 3, 32));
    MissClassifier prime_cls(prime);

    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 7 * 8; a += 8) {
            direct_cls.access(a);
            prime_cls.access(a);
        }

    EXPECT_EQ(direct_cls.breakdown().conflict, 7u);
    EXPECT_EQ(prime_cls.breakdown().conflict, 0u);
    EXPECT_EQ(prime_cls.breakdown().compulsory, 7u);
}

TEST(MissClassifier, TotalsMatchCacheMisses)
{
    DirectMappedCache cache(AddressLayout(0, 4, 32));
    MissClassifier classifier(cache);
    for (Addr a = 0; a < 100; ++a)
        classifier.access(a * 3);
    EXPECT_EQ(classifier.breakdown().total(), cache.stats().misses);
}

TEST(MissClassifier, ResetClearsAll)
{
    DirectMappedCache cache(AddressLayout(0, 3, 32));
    MissClassifier classifier(cache);
    classifier.access(0);
    classifier.reset();
    EXPECT_EQ(classifier.breakdown().total(), 0u);
    EXPECT_EQ(cache.stats().accesses, 0u);
    classifier.access(0);
    EXPECT_EQ(classifier.breakdown().compulsory, 1u);
}

TEST(ShadowLru, EvictsLeastRecent)
{
    ShadowLru lru(2);
    EXPECT_FALSE(lru.access(0x100));
    EXPECT_FALSE(lru.access(0x200));
    EXPECT_TRUE(lru.access(0x100));  // order now 100, 200
    EXPECT_FALSE(lru.access(0x300)); // evicts 200
    EXPECT_TRUE(lru.access(0x100));
    EXPECT_FALSE(lru.access(0x200));
    EXPECT_EQ(lru.size(), 2u);
}

TEST(ShadowLru, ClearForgetsResidents)
{
    ShadowLru lru(4);
    lru.access(1);
    lru.access(2);
    lru.clear();
    EXPECT_EQ(lru.size(), 0u);
    EXPECT_EQ(lru.capacity(), 4u);
    EXPECT_FALSE(lru.access(1));
}

TEST(ShadowLru, DeferredCapacity)
{
    ShadowLru lru;
    lru.setCapacity(1);
    EXPECT_FALSE(lru.access(7));
    EXPECT_FALSE(lru.access(8));
    EXPECT_FALSE(lru.access(7));
    EXPECT_EQ(lru.size(), 1u);
}

TEST(ShadowLru, MatchesListReference)
{
    // Randomized traffic with hot, warm, and cold regions exercises
    // hits at every recency depth plus evictions; the intrusive list
    // must agree with the std::list reference on every access.
    std::mt19937_64 rng(12345);
    ShadowLru lru(32);
    ListShadowLru ref(32);
    std::uniform_int_distribution<int> pick(0, 2);
    std::uniform_int_distribution<Addr> hot(0, 15), warm(0, 63),
        cold(0, 4095);
    for (int i = 0; i < 20000; ++i) {
        Addr line;
        switch (pick(rng)) {
          case 0: line = hot(rng); break;
          case 1: line = warm(rng); break;
          default: line = cold(rng); break;
        }
        ASSERT_EQ(lru.access(line), ref.access(line)) << "access " << i;
    }
}

TEST(MissClassifier, BreakdownMatchesListImplementation)
{
    // Satellite regression: the intrusive-list classifier must report
    // breakdowns bit-identical to the original std::list shadow on
    // mixed-stride traffic over direct and prime mappings.
    DirectMappedCache direct(AddressLayout(0, 5, 64));
    MissClassifier direct_cls(direct);
    DirectMappedCache direct_ref_cache(AddressLayout(0, 5, 64));
    ListClassifier direct_ref(direct_ref_cache);

    PrimeMappedCache prime(AddressLayout(0, 5, 64));
    MissClassifier prime_cls(prime);
    PrimeMappedCache prime_ref_cache(AddressLayout(0, 5, 64));
    ListClassifier prime_ref(prime_ref_cache);

    std::mt19937_64 rng(99);
    std::uniform_int_distribution<Addr> base(0, 1 << 14);
    const Addr strides[] = {1, 3, 32, 256, 1024};
    for (int block = 0; block < 64; ++block) {
        const Addr b = base(rng);
        const Addr s = strides[block % 5];
        for (int rep = 0; rep < 2; ++rep)
            for (Addr i = 0; i < 48; ++i) {
                const Addr a = b + i * s;
                direct_cls.access(a);
                direct_ref.access(a);
                prime_cls.access(a);
                prime_ref.access(a);
            }
    }

    EXPECT_EQ(direct_cls.breakdown().compulsory,
              direct_ref.breakdown().compulsory);
    EXPECT_EQ(direct_cls.breakdown().capacity,
              direct_ref.breakdown().capacity);
    EXPECT_EQ(direct_cls.breakdown().conflict,
              direct_ref.breakdown().conflict);
    EXPECT_EQ(prime_cls.breakdown().compulsory,
              prime_ref.breakdown().compulsory);
    EXPECT_EQ(prime_cls.breakdown().capacity,
              prime_ref.breakdown().capacity);
    EXPECT_EQ(prime_cls.breakdown().conflict,
              prime_ref.breakdown().conflict);
    EXPECT_GT(direct_cls.breakdown().total(), 0u);
}

} // namespace
} // namespace vcache
