/** Tests for the Fu & Patel-style prefetching front end. */

#include <gtest/gtest.h>

#include "cache/direct.hh"
#include "cache/prefetch.hh"
#include "cache/prime.hh"
#include "sim/runner.hh"
#include "trace/multistride.hh"

namespace vcache
{
namespace
{

AddressLayout
tinyLayout()
{
    return AddressLayout(0, 5, 32); // 32 lines
}

TEST(Prefetch, InsertDoesNotCountAsAccess)
{
    DirectMappedCache cache(tinyLayout());
    EXPECT_TRUE(cache.insert(5));
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_TRUE(cache.contains(5));
    EXPECT_FALSE(cache.insert(5)); // already resident
}

TEST(Prefetch, SequentialFetchesNextLines)
{
    DirectMappedCache cache(tinyLayout());
    PrefetchingCache front(cache, PrefetchPolicy::Sequential, 2);
    front.access(10); // miss -> prefetch 11, 12
    EXPECT_TRUE(cache.contains(11));
    EXPECT_TRUE(cache.contains(12));
    EXPECT_FALSE(cache.contains(13));
    EXPECT_EQ(front.prefetchStats().issued, 2u);
}

TEST(Prefetch, SequentialTurnsUnitStrideMissesIntoHits)
{
    DirectMappedCache cache(tinyLayout());
    PrefetchingCache front(cache, PrefetchPolicy::Sequential, 1);
    front.beginStream(1);
    for (Addr a = 0; a < 16; ++a)
        front.access(a);
    // Tagged prefetching keeps one line ahead: only the first access
    // misses.
    EXPECT_EQ(cache.stats().hits, 15u);
    EXPECT_EQ(front.prefetchStats().useful, 15u);
    // One prefetch (the 16th) is issued but never consumed.
    EXPECT_EQ(front.prefetchStats().issued, 16u);
}

TEST(Prefetch, SequentialUselessForLargeStrides)
{
    DirectMappedCache cache(tinyLayout());
    PrefetchingCache front(cache, PrefetchPolicy::Sequential, 1);
    front.beginStream(8);
    for (Addr a = 0; a < 16 * 8; a += 8)
        front.access(a);
    EXPECT_EQ(front.prefetchStats().useful, 0u);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(Prefetch, StrideSchemeFollowsAnnouncedStride)
{
    DirectMappedCache cache(tinyLayout());
    PrefetchingCache front(cache, PrefetchPolicy::Stride, 1);
    front.beginStream(5);
    for (Addr a = 0; a < 16 * 5; a += 5)
        front.access(a);
    // After the first miss every access hits its prefetched line.
    EXPECT_EQ(cache.stats().hits, 15u);
    EXPECT_EQ(front.prefetchStats().useful, 15u);
}

TEST(Prefetch, StrideSchemeCannotFixInterference)
{
    // The paper's argument: prefetching hides latency, not
    // *interference*.  Two interleaved stride-32 streams collapse
    // onto frame 0 of the 32-line direct-mapped cache; each stream's
    // prefetch evicts the other's next line, so nothing ever hits.
    DirectMappedCache cache(tinyLayout());
    PrefetchingCache front(cache, PrefetchPolicy::Stride, 1);
    front.beginStream(32);
    // 480 = 32 * 15: frame 0 again in the direct cache, but 15 lines
    // away (mod 31) in the prime cache, so the streams barely touch.
    const Addr second_base = 32 * 15;
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr i = 0; i < 16; ++i) {
            front.access(32 * i);
            front.access(second_base + 32 * i);
        }
    }
    EXPECT_EQ(cache.stats().hits, 0u);
    EXPECT_EQ(front.prefetchStats().useful, 0u);
    EXPECT_GT(front.prefetchStats().issued, 0u);

    // The prime cache needs no prefetching: stride 32 == 1 (mod 31)
    // spreads both streams, so the second pass mostly hits.
    PrimeMappedCache prime(tinyLayout());
    for (int pass = 0; pass < 2; ++pass) {
        for (Addr i = 0; i < 16; ++i) {
            prime.access(32 * i);
            prime.access(second_base + 32 * i);
        }
    }
    EXPECT_GT(prime.stats().hitRatio(), 0.4);
}

TEST(Prefetch, NonePolicyIsTransparent)
{
    DirectMappedCache cache(tinyLayout());
    PrefetchingCache front(cache, PrefetchPolicy::None, 1);
    for (Addr a = 0; a < 10; ++a)
        front.access(a);
    EXPECT_EQ(front.prefetchStats().issued, 0u);
    EXPECT_EQ(cache.stats().misses, 10u);
}

TEST(Prefetch, RunnerAnnouncesStrides)
{
    DirectMappedCache cache(AddressLayout(0, 13, 32));
    PrefetchingCache front(cache, PrefetchPolicy::Stride, 2);
    const auto trace = generateMultistrideTrace(
        MultistrideParams{256, 8, 0.25, 64, 0, 2}, 3);
    const auto stats = runTraceWithPrefetch(front, trace);
    EXPECT_EQ(stats.accesses, 256u * 16u);
    EXPECT_GT(front.prefetchStats().issued, 0u);
    EXPECT_GT(stats.hitRatio(), 0.5); // strides known -> mostly hits
}

TEST(Prefetch, ResetClearsEverything)
{
    DirectMappedCache cache(tinyLayout());
    PrefetchingCache front(cache, PrefetchPolicy::Sequential, 2);
    front.access(0);
    front.reset();
    EXPECT_EQ(front.prefetchStats().issued, 0u);
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_FALSE(cache.contains(1));
}

TEST(Prefetch, PolicyNames)
{
    EXPECT_STREQ(prefetchPolicyName(PrefetchPolicy::None), "none");
    EXPECT_STREQ(prefetchPolicyName(PrefetchPolicy::Sequential),
                 "sequential");
    EXPECT_STREQ(prefetchPolicyName(PrefetchPolicy::Stride), "stride");
}

} // namespace
} // namespace vcache
