/** Tests for declarative cache construction. */

#include <gtest/gtest.h>

#include "cache/factory.hh"

namespace vcache
{
namespace
{

TEST(CacheFactory, BuildsEveryOrganization)
{
    CacheConfig config;
    config.indexBits = 5;

    config.organization = Organization::DirectMapped;
    EXPECT_EQ(makeCache(config)->numLines(), 32u);

    config.organization = Organization::PrimeMapped;
    EXPECT_EQ(makeCache(config)->numLines(), 31u);

    config.organization = Organization::SetAssociative;
    config.associativity = 4;
    EXPECT_EQ(makeCache(config)->numLines(), 32u);

    config.organization = Organization::FullyAssociative;
    EXPECT_EQ(makeCache(config)->numLines(), 32u);
}

TEST(CacheFactory, HonoursLineSize)
{
    CacheConfig config;
    config.indexBits = 5;
    config.offsetBits = 2; // 4-word lines
    const auto cache = makeCache(config);
    EXPECT_EQ(cache->capacityWords(), 128u);
}

TEST(CacheFactory, Describe)
{
    CacheConfig config;
    config.indexBits = 13;
    config.organization = Organization::PrimeMapped;
    EXPECT_EQ(describe(config), "prime-mapped(8191 lines x 1 words)");

    config.organization = Organization::SetAssociative;
    config.associativity = 2;
    config.replacement = ReplacementKind::Fifo;
    EXPECT_NE(describe(config).find("2-way FIFO"), std::string::npos);
}

TEST(CacheFactory, Names)
{
    EXPECT_EQ(organizationName(Organization::DirectMapped),
              "direct-mapped");
    EXPECT_EQ(organizationName(Organization::PrimeMapped),
              "prime-mapped");
}

TEST(CacheFactory, RandomReplacementSeedIsDeterministic)
{
    CacheConfig config;
    config.indexBits = 4;
    config.organization = Organization::SetAssociative;
    config.associativity = 4;
    config.replacement = ReplacementKind::Random;
    config.rngSeed = 42;

    auto run = [&] {
        const auto cache = makeCache(config);
        for (Addr a = 0; a < 200; ++a)
            cache->access(a * 4);
        return cache->stats().hits;
    };
    EXPECT_EQ(run(), run());
}

// ---------------------------------------------------------------------
// Error-as-values: tryMakeCache turns geometry violations (which the
// constructors still assert on) into structured errors.
// ---------------------------------------------------------------------

TEST(CacheFactoryTry, ValidGeometryBuildsACache)
{
    CacheConfig config;
    config.indexBits = 5;
    config.organization = Organization::PrimeMapped;
    const auto cache = tryMakeCache(config);
    ASSERT_TRUE(cache.ok());
    EXPECT_EQ(cache.value()->numLines(), 31u);
}

TEST(CacheFactoryTry, RejectsBadAddressWidth)
{
    CacheConfig config;
    config.addressBits = 0;
    const auto cache = tryMakeCache(config);
    ASSERT_FALSE(cache.ok());
    EXPECT_EQ(cache.error().code, Errc::InvalidConfig);
}

TEST(CacheFactoryTry, RejectsFieldsWiderThanTheAddress)
{
    CacheConfig config;
    config.addressBits = 16;
    config.offsetBits = 8;
    config.indexBits = 10;
    const auto cache = tryMakeCache(config);
    ASSERT_FALSE(cache.ok());
    EXPECT_NE(cache.error().message.find("exceed"), std::string::npos);
}

TEST(CacheFactoryTry, PrimeOrganisationsNeedMersenneIndexWidths)
{
    CacheConfig config;
    config.indexBits = 6; // 2^6 - 1 = 63 is not prime
    config.organization = Organization::PrimeMapped;
    const auto cache = tryMakeCache(config);
    ASSERT_FALSE(cache.ok());
    EXPECT_NE(cache.error().message.find("Mersenne"),
              std::string::npos);

    config.organization = Organization::PrimeSetAssociative;
    config.associativity = 2;
    EXPECT_FALSE(tryMakeCache(config).ok());

    config.indexBits = 5; // 31 is prime
    EXPECT_TRUE(tryMakeCache(config).ok());
}

TEST(CacheFactoryTry, RejectsBadAssociativity)
{
    CacheConfig config;
    config.indexBits = 4;
    config.organization = Organization::SetAssociative;
    config.associativity = 0;
    EXPECT_FALSE(tryMakeCache(config).ok());

    // 3 ways do not divide 16 lines.
    config.associativity = 3;
    const auto cache = tryMakeCache(config);
    ASSERT_FALSE(cache.ok());
    EXPECT_NE(cache.error().message.find("divide"), std::string::npos);

    config.associativity = 4;
    EXPECT_TRUE(tryMakeCache(config).ok());
}

} // namespace
} // namespace vcache
