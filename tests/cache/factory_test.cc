/** Tests for declarative cache construction. */

#include <gtest/gtest.h>

#include "cache/factory.hh"

namespace vcache
{
namespace
{

TEST(CacheFactory, BuildsEveryOrganization)
{
    CacheConfig config;
    config.indexBits = 5;

    config.organization = Organization::DirectMapped;
    EXPECT_EQ(makeCache(config)->numLines(), 32u);

    config.organization = Organization::PrimeMapped;
    EXPECT_EQ(makeCache(config)->numLines(), 31u);

    config.organization = Organization::SetAssociative;
    config.associativity = 4;
    EXPECT_EQ(makeCache(config)->numLines(), 32u);

    config.organization = Organization::FullyAssociative;
    EXPECT_EQ(makeCache(config)->numLines(), 32u);
}

TEST(CacheFactory, HonoursLineSize)
{
    CacheConfig config;
    config.indexBits = 5;
    config.offsetBits = 2; // 4-word lines
    const auto cache = makeCache(config);
    EXPECT_EQ(cache->capacityWords(), 128u);
}

TEST(CacheFactory, Describe)
{
    CacheConfig config;
    config.indexBits = 13;
    config.organization = Organization::PrimeMapped;
    EXPECT_EQ(describe(config), "prime-mapped(8191 lines x 1 words)");

    config.organization = Organization::SetAssociative;
    config.associativity = 2;
    config.replacement = ReplacementKind::Fifo;
    EXPECT_NE(describe(config).find("2-way FIFO"), std::string::npos);
}

TEST(CacheFactory, Names)
{
    EXPECT_EQ(organizationName(Organization::DirectMapped),
              "direct-mapped");
    EXPECT_EQ(organizationName(Organization::PrimeMapped),
              "prime-mapped");
}

TEST(CacheFactory, RandomReplacementSeedIsDeterministic)
{
    CacheConfig config;
    config.indexBits = 4;
    config.organization = Organization::SetAssociative;
    config.associativity = 4;
    config.replacement = ReplacementKind::Random;
    config.rngSeed = 42;

    auto run = [&] {
        const auto cache = makeCache(config);
        for (Addr a = 0; a < 200; ++a)
            cache->access(a * 4);
        return cache->stats().hits;
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace vcache
