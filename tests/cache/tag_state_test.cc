/**
 * SoA tag-array serialization pins (guards PR 6 live-points).
 *
 * The structure-of-arrays TagArray must serialize byte-identically to
 * the old AoS frame vector's detail::appendFrameState encoding: both
 * the dense and the sparse form are pinned word-for-word against
 * hand-built blobs, every organization round-trips capture -> restore
 * -> capture exactly, the ~0 sentinel-resident edge survives, and a
 * sampling live-point journal written with the SIMD gang warming on
 * is byte-identical to one written with it off.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cache/factory.hh"
#include "core/defaults.hh"
#include "sim/sampling.hh"
#include "trace/source.hh"

namespace vcache
{
namespace
{

std::vector<std::uint64_t>
capture(const Cache &cache)
{
    std::vector<std::uint64_t> out;
    cache.captureState(out);
    return out;
}

/**
 * Two resident lines out of 16 frames: 3 + 3*2 = 9 < 2 + 2*16 = 34,
 * so the blob must take the sparse form, ascending frame index.
 */
TEST(TagState, SparseFormPinnedWordForWord)
{
    CacheConfig config;
    config.indexBits = 4;
    auto cache = makeCache(config);
    cache->lookupAndFill(0x23); // frame 0x23 & 15 = 3
    cache->lookupAndFill(0x51); // frame 1
    cache->setLineFlag(0x23, 0x2);

    const std::vector<std::uint64_t> want = {
        1,  // kFrameStateSparse
        16, // frames
        2,  // valid count
        1, 0x51, 0x0, 3, 0x23, 0x2,
    };
    EXPECT_EQ(capture(*cache), want);
}

/**
 * 15 of 16 frames valid: the sparse form would need 3 + 45 words, so
 * the dense form (2 + 32) wins.  Invalid frames serialize line word 0
 * and packed word 0 -- exactly what the old AoS layout's
 * default-constructed frame held.
 */
TEST(TagState, DenseFormPinnedWordForWord)
{
    CacheConfig config;
    config.indexBits = 4;
    auto cache = makeCache(config);
    for (std::uint64_t line = 0; line < 15; ++line)
        cache->lookupAndFill(line);
    cache->setLineFlag(7, 0x4);

    std::vector<std::uint64_t> want = {0, 16};
    for (std::uint64_t line = 0; line < 15; ++line) {
        want.push_back(line);
        want.push_back((line == 7 ? std::uint64_t{0x4} << 1 : 0) | 1);
    }
    want.push_back(0); // frame 15: invalid line serializes as 0
    want.push_back(0);
    EXPECT_EQ(capture(*cache), want);
}

std::vector<std::pair<std::string, CacheConfig>>
allSchemes()
{
    std::vector<std::pair<std::string, CacheConfig>> out;

    CacheConfig direct;
    out.emplace_back("direct", direct);

    CacheConfig prime;
    prime.organization = Organization::PrimeMapped;
    out.emplace_back("prime", prime);

    CacheConfig prime_assoc;
    prime_assoc.organization = Organization::PrimeSetAssociative;
    prime_assoc.associativity = 2;
    out.emplace_back("prime-assoc", prime_assoc);

    CacheConfig set_assoc;
    set_assoc.organization = Organization::SetAssociative;
    set_assoc.associativity = 4;
    out.emplace_back("set-assoc", set_assoc);

    CacheConfig xor_mapped;
    xor_mapped.organization = Organization::XorMapped;
    out.emplace_back("xor", xor_mapped);

    CacheConfig random_assoc;
    random_assoc.organization = Organization::SetAssociative;
    random_assoc.associativity = 4;
    random_assoc.replacement = ReplacementKind::Random;
    out.emplace_back("set-assoc-random", random_assoc);

    CacheConfig wide_lines;
    wide_lines.offsetBits = 2;
    out.emplace_back("direct-4word", wide_lines);

    return out;
}

TEST(TagState, CaptureRestoreCaptureIsExactAcrossSchemes)
{
    for (const auto &[name, config] : allSchemes()) {
        auto cache = makeCache(config);
        const AddressLayout &layout = cache->addressLayout();
        for (std::uint64_t i = 0; i < 5000; ++i)
            cache->lookupAndFill(layout.lineAddress(i * 7));
        cache->setLineFlag(layout.lineAddress(7), 0x2);
        cache->setLineFlag(layout.lineAddress(70), 0x1);

        const std::vector<std::uint64_t> blob = capture(*cache);
        auto fresh = makeCache(config);
        ASSERT_TRUE(fresh->restoreState(blob)) << name;
        EXPECT_EQ(capture(*fresh), blob) << name;

        for (std::uint64_t i = 0; i < 5000; i += 97) {
            const Addr line = layout.lineAddress(i * 7);
            EXPECT_EQ(fresh->containsLine(line),
                      cache->containsLine(line))
                << name << " line " << line;
        }
        EXPECT_EQ(fresh->validLines(), cache->validLines()) << name;
    }
}

/** The resident-~0 sentinel edge must survive a round trip. */
TEST(TagState, SentinelResidentLineRoundTrips)
{
    for (const auto &[name, config] : allSchemes()) {
        auto cache = makeCache(config);
        cache->lookupAndFill(~std::uint64_t{0});
        cache->lookupAndFill(12345);

        const std::vector<std::uint64_t> blob = capture(*cache);
        auto fresh = makeCache(config);
        ASSERT_TRUE(fresh->restoreState(blob)) << name;
        EXPECT_TRUE(fresh->containsLine(~std::uint64_t{0})) << name;
        const std::uint64_t sent[] = {~std::uint64_t{0}};
        EXPECT_EQ(fresh->probeHitMask(sent, 1), 1u) << name;
        EXPECT_EQ(capture(*fresh), blob) << name;
    }
}

TEST(TagState, RestoreRejectsMalformedBlobs)
{
    CacheConfig config;
    config.indexBits = 4;
    auto cache = makeCache(config);
    cache->lookupAndFill(3);
    std::vector<std::uint64_t> blob = capture(*cache);

    auto fresh = makeCache(config);
    // Truncated.
    std::vector<std::uint64_t> cut(blob.begin(), blob.end() - 1);
    EXPECT_FALSE(fresh->restoreState(cut));
    // Unknown discriminator.
    std::vector<std::uint64_t> bad = blob;
    bad[0] = 99;
    EXPECT_FALSE(fresh->restoreState(bad));
    // Sparse index out of range.
    ASSERT_EQ(blob[0], 1u);
    bad = blob;
    bad[3] = 16; // frames == 16, so 16 is one past the end
    EXPECT_FALSE(fresh->restoreState(bad));
    // A failed restore must not have corrupted the good path.
    EXPECT_TRUE(fresh->restoreState(blob));
    EXPECT_TRUE(fresh->containsLine(3));
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/**
 * Live-point journals capture cache state blobs mid-run; the file a
 * gang-warmed sampling pass writes must be byte-identical to the
 * element-walked one (PR 6's resume certificates depend on it).
 */
TEST(TagState, LivePointJournalBytesUnchangedByGangWarming)
{
    const Trace trace = [] {
        ConstantStrideSource source(0, 3, 2048, 120, true);
        return materializeTrace(source);
    }();

    SamplingOptions on;
    on.seed = 11;
    on.gangWarm = true;
    on.livePointJournal =
        ::testing::TempDir() + "tag_state_gang_on.journal";
    SamplingOptions off = on;
    off.gangWarm = false;
    off.livePointJournal =
        ::testing::TempDir() + "tag_state_gang_off.journal";

    CacheConfig xor_mapped;
    xor_mapped.organization = Organization::XorMapped;
    ASSERT_TRUE(
        sampleCc(paperMachineM32(), xor_mapped, trace, on).ok());
    ASSERT_TRUE(
        sampleCc(paperMachineM32(), xor_mapped, trace, off).ok());

    const std::string a = readFile(on.livePointJournal);
    const std::string b = readFile(off.livePointJournal);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace vcache
