/** Tests for the direct-mapped cache. */

#include <gtest/gtest.h>

#include "cache/direct.hh"

namespace vcache
{
namespace
{

AddressLayout
tinyLayout()
{
    return AddressLayout(0, 3, 32); // 8 lines, 1-word lines
}

TEST(DirectMapped, ColdMissThenHit)
{
    DirectMappedCache cache(tinyLayout());
    EXPECT_FALSE(cache.access(5).hit);
    EXPECT_TRUE(cache.access(5).hit);
    EXPECT_EQ(cache.stats().accesses, 2u);
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DirectMapped, ConflictingLinesEvict)
{
    DirectMappedCache cache(tinyLayout());
    cache.access(1);
    const auto out = cache.access(9); // 9 mod 8 == 1
    EXPECT_FALSE(out.hit);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedLine, 1u);
    EXPECT_FALSE(cache.access(1).hit); // 1 was displaced
}

TEST(DirectMapped, PowerOfTwoStrideThrashes)
{
    // Stride 8 over an 8-line cache: every access maps to line 0.
    DirectMappedCache cache(tinyLayout());
    for (Addr a = 0; a < 64; a += 8)
        EXPECT_FALSE(cache.access(a).hit);
    // Re-sweep: still all misses (the classic self-interference).
    for (Addr a = 0; a < 64; a += 8)
        EXPECT_FALSE(cache.access(a).hit);
    EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(DirectMapped, UnitStrideResweepHitsWhenFitting)
{
    DirectMappedCache cache(tinyLayout());
    for (Addr a = 0; a < 8; ++a)
        cache.access(a);
    for (Addr a = 0; a < 8; ++a)
        EXPECT_TRUE(cache.access(a).hit);
}

TEST(DirectMapped, ContainsDoesNotTouchState)
{
    DirectMappedCache cache(tinyLayout());
    cache.access(3);
    EXPECT_TRUE(cache.contains(3));
    EXPECT_FALSE(cache.contains(11));
    EXPECT_EQ(cache.stats().accesses, 1u);
}

TEST(DirectMapped, ResetClearsEverything)
{
    DirectMappedCache cache(tinyLayout());
    cache.access(3);
    cache.reset();
    EXPECT_EQ(cache.stats().accesses, 0u);
    EXPECT_EQ(cache.validLines(), 0u);
    EXPECT_FALSE(cache.contains(3));
}

TEST(DirectMapped, UtilizationAndGeometry)
{
    DirectMappedCache cache(tinyLayout());
    EXPECT_EQ(cache.numLines(), 8u);
    EXPECT_EQ(cache.capacityWords(), 8u);
    cache.access(0);
    cache.access(1);
    EXPECT_DOUBLE_EQ(cache.utilization(), 0.25);
}

TEST(DirectMapped, WiderLinesShareFrames)
{
    // 4-word lines: addresses 0..3 share one line.
    DirectMappedCache cache(AddressLayout(2, 3, 32));
    EXPECT_FALSE(cache.access(0).hit);
    EXPECT_TRUE(cache.access(1).hit);
    EXPECT_TRUE(cache.access(3).hit);
    EXPECT_FALSE(cache.access(4).hit); // next line
    EXPECT_EQ(cache.capacityWords(), 32u);
}

TEST(DirectMapped, WriteCountsSeparately)
{
    DirectMappedCache cache(tinyLayout());
    cache.access(0, AccessType::Write);
    cache.access(0, AccessType::Read);
    EXPECT_EQ(cache.stats().writes, 1u);
    EXPECT_EQ(cache.stats().reads, 1u);
}

TEST(DirectMapped, WritebackAccounting)
{
    DirectMappedCache cache(tinyLayout());
    cache.access(0, AccessType::Write); // dirty line 0
    cache.access(8);                    // evicts dirty 0 -> writeback
    EXPECT_EQ(cache.stats().writebacks, 1u);
    cache.access(16);                   // evicts clean 8 -> none
    EXPECT_EQ(cache.stats().writebacks, 1u);
    cache.access(16, AccessType::Write);
    cache.access(24);                   // dirty 16 out again
    EXPECT_EQ(cache.stats().writebacks, 2u);
}

TEST(DirectMapped, ReadingDirtyLineKeepsItDirty)
{
    DirectMappedCache cache(tinyLayout());
    cache.access(0, AccessType::Write);
    cache.access(0, AccessType::Read); // hit, still dirty
    cache.access(8);                   // eviction must write back
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(DirectMapped, ResetClearsDirtyState)
{
    DirectMappedCache cache(tinyLayout());
    cache.access(0, AccessType::Write);
    cache.reset();
    cache.access(0); // refill clean
    cache.access(8); // evict: no writeback
    EXPECT_EQ(cache.stats().writebacks, 0u);
}

TEST(DirectMapped, PrefetchEvictingDirtyLineWritesBack)
{
    DirectMappedCache cache(tinyLayout());
    cache.access(0, AccessType::Write);
    EXPECT_TRUE(cache.insert(8)); // prefetch displaces dirty 0
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

} // namespace
} // namespace vcache
