/**
 * Differential tests: each optimised cache implementation against a
 * deliberately naive reference model, over long random and structured
 * traffic.  If the tag-array code ever diverges from "index = f(line
 * address); one line per frame", these fail.
 */

#include <gtest/gtest.h>

#include <functional>
#include <map>

#include "cache/direct.hh"
#include "cache/prime.hh"
#include "cache/xor_mapped.hh"
#include "numtheory/mersenne.hh"
#include "util/rng.hh"

namespace vcache
{
namespace
{

/** Naive single-line-per-frame cache model over any index function. */
class ReferenceModel
{
  public:
    /**
     * @param index_fn word address -> frame number
     * @param line_bits W: words sharing a line (hit granularity)
     */
    template <typename IndexFn>
    ReferenceModel(IndexFn &&index_fn, unsigned line_bits)
        : indexOf(index_fn), w(line_bits)
    {
    }

    /** Returns hit?, mirroring Cache::access on word addresses. */
    bool
    access(Addr word)
    {
        const auto frame = indexOf(word);
        const Addr line = word >> w;
        const auto it = frames.find(frame);
        const bool hit = it != frames.end() && it->second == line;
        frames[frame] = line;
        return hit;
    }

  private:
    std::function<std::uint64_t(Addr)> indexOf;
    unsigned w;
    std::map<std::uint64_t, Addr> frames;
};

template <typename MakeCache, typename IndexFn>
void
differentialRun(MakeCache &&make, IndexFn &&index_fn,
                std::uint64_t seed, unsigned line_bits = 0)
{
    auto cache = make();
    ReferenceModel reference(index_fn, line_bits);
    Rng rng(seed);

    for (int i = 0; i < 50000; ++i) {
        Addr a;
        switch (rng.uniformInt(0, 2)) {
          case 0: // uniform random
            a = rng.uniformInt(0, 1u << 20);
            break;
          case 1: // strided walk
            a = rng.uniformInt(0, 64) +
                rng.uniformInt(0, 4096) * rng.uniformInt(1, 4096);
            break;
          default: // hot region
            a = rng.uniformInt(0, 300);
            break;
        }
        const bool hit = cache->access(a).hit;
        EXPECT_EQ(hit, reference.access(a))
            << "step " << i << " addr " << a;
    }
}

TEST(Differential, DirectMappedMatchesReference)
{
    const AddressLayout layout(0, 13, 32);
    differentialRun(
        [&] { return std::make_unique<DirectMappedCache>(layout); },
        [](Addr line) { return line & 8191; }, 1);
}

TEST(Differential, PrimeMappedMatchesReference)
{
    const AddressLayout layout(0, 13, 32);
    differentialRun(
        [&] { return std::make_unique<PrimeMappedCache>(layout); },
        [](Addr line) { return line % 8191; }, 2);
}

TEST(Differential, XorMappedMatchesReference)
{
    const AddressLayout layout(0, 13, 32);
    differentialRun(
        [&] { return std::make_unique<XorMappedCache>(layout); },
        [](Addr line) {
            std::uint64_t h = 0;
            for (Addr w = line; w != 0; w >>= 13)
                h ^= w & 8191;
            return h;
        },
        3);
}

TEST(Differential, PrimeMappedWithWideLines)
{
    // W = 2: the frame index is the residue of the *line* address.
    const AddressLayout layout(2, 13, 32);
    differentialRun(
        [&] { return std::make_unique<PrimeMappedCache>(layout); },
        [](Addr word) { return (word >> 2) % 8191; }, 4, 2);
}

} // namespace
} // namespace vcache
