/** Tests for the prime set-associative cache extension. */

#include <gtest/gtest.h>

#include "cache/factory.hh"
#include "cache/prime.hh"
#include "cache/prime_assoc.hh"

namespace vcache
{
namespace
{

std::unique_ptr<PrimeSetAssociativeCache>
makeTwoWay(unsigned index_bits)
{
    return std::make_unique<PrimeSetAssociativeCache>(
        AddressLayout(0, index_bits, 32), 2,
        std::make_unique<LruPolicy>());
}

TEST(PrimeSetAssoc, Geometry)
{
    const auto cache = makeTwoWay(13);
    EXPECT_EQ(cache->numSets(), 8191u);
    EXPECT_EQ(cache->associativity(), 2u);
    EXPECT_EQ(cache->numLines(), 16382u);
}

TEST(PrimeSetAssoc, AbsorbsModulusAliases)
{
    // Addresses a and a + 8191 share a set; the direct prime cache
    // thrashes on the alternation, two ways hold both.
    const auto cache = makeTwoWay(13);
    for (int r = 0; r < 4; ++r) {
        cache->access(5);
        cache->access(5 + 8191);
    }
    EXPECT_EQ(cache->stats().misses, 2u);
    EXPECT_EQ(cache->stats().hits, 6u);

    PrimeMappedCache direct_prime(AddressLayout(0, 13, 32));
    for (int r = 0; r < 4; ++r) {
        direct_prime.access(5);
        direct_prime.access(5 + 8191);
    }
    EXPECT_EQ(direct_prime.stats().hits, 0u);
}

TEST(PrimeSetAssoc, StillConflictFreeOnPowerOfTwoStrides)
{
    // The prime set count keeps the headline property.
    const auto cache = makeTwoWay(13);
    const std::uint64_t b = 8191;
    for (std::uint64_t i = 0; i < b; ++i)
        cache->access(1024 * i);
    for (std::uint64_t i = 0; i < b; ++i)
        EXPECT_TRUE(cache->access(1024 * i).hit) << i;
}

TEST(PrimeSetAssoc, LruEvictsWithinSet)
{
    const auto cache = makeTwoWay(3); // 7 sets, 2 ways
    cache->access(0);      // set 0
    cache->access(7);      // set 0
    cache->access(0);      // refresh
    const auto out = cache->access(14); // set 0: evict 7
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedLine, 7u);
    EXPECT_TRUE(cache->contains(0));
    EXPECT_FALSE(cache->contains(7));
}

TEST(PrimeSetAssoc, LruCannotFixCyclicWraparound)
{
    // The sub-block wraparound case (DESIGN.md note 9): P = 1024,
    // 64 x 64 block, up to 8 columns claim each set *cyclically*.
    // Section 2.1's argument -- "serial access to vectors dictates
    // against LRU" -- applies to the prime cache too: with more
    // cyclic claimants than ways, LRU evicts each line just before
    // its reuse, and 2-way associativity buys almost nothing.
    auto sweep = [](Cache &cache) {
        for (int pass = 0; pass < 2; ++pass)
            for (std::uint64_t c = 0; c < 64; ++c)
                for (std::uint64_t r = 0; r < 64; ++r)
                    cache.access(1024 * c + r);
        return cache.stats().misses;
    };

    PrimeMappedCache plain(AddressLayout(0, 13, 32));
    const auto plain_misses = sweep(plain);
    const auto assoc = makeTwoWay(13);
    const auto assoc_misses = sweep(*assoc);
    EXPECT_GT(assoc_misses, plain_misses * 9 / 10);
    EXPECT_LE(assoc_misses, plain_misses);
}

TEST(PrimeSetAssoc, FactoryBuildsIt)
{
    CacheConfig config;
    config.organization = Organization::PrimeSetAssociative;
    config.indexBits = 7;
    config.associativity = 4;
    const auto cache = makeCache(config);
    EXPECT_EQ(cache->numLines(), 127u * 4u);
    EXPECT_NE(describe(config).find("prime-set-associative"),
              std::string::npos);
    EXPECT_NE(describe(config).find("4-way"), std::string::npos);
}

TEST(PrimeSetAssocDeathTest, RejectsCompositeExponent)
{
    EXPECT_DEATH(PrimeSetAssociativeCache(
                     AddressLayout(0, 11, 32), 2,
                     std::make_unique<LruPolicy>()),
                 "Mersenne");
}

} // namespace
} // namespace vcache
