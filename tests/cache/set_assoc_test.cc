/** Tests for the set-associative cache and replacement policies. */

#include <gtest/gtest.h>

#include "cache/set_assoc.hh"

namespace vcache
{
namespace
{

std::unique_ptr<SetAssociativeCache>
makeLru(unsigned index_bits, unsigned ways)
{
    return std::make_unique<SetAssociativeCache>(
        AddressLayout(0, index_bits, 32), ways,
        std::make_unique<LruPolicy>());
}

TEST(SetAssoc, Geometry)
{
    const auto cache = makeLru(4, 4); // 16 lines, 4 sets
    EXPECT_EQ(cache->numLines(), 16u);
    EXPECT_EQ(cache->numSets(), 4u);
    EXPECT_EQ(cache->associativity(), 4u);
}

TEST(SetAssoc, AssociativityAbsorbsSmallConflicts)
{
    // 2-way, 4 sets: lines 0, 4 share set 0 and can coexist.
    const auto cache = makeLru(3, 2);
    cache->access(0);
    cache->access(4);
    EXPECT_TRUE(cache->access(0).hit);
    EXPECT_TRUE(cache->access(4).hit);
}

TEST(SetAssoc, LruEvictsLeastRecent)
{
    const auto cache = makeLru(3, 2); // 4 sets
    cache->access(0);  // set 0
    cache->access(4);  // set 0
    cache->access(0);  // refresh 0
    const auto out = cache->access(8); // set 0: evicts 4
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedLine, 4u);
    EXPECT_TRUE(cache->access(0).hit);
    EXPECT_FALSE(cache->access(4).hit);
}

TEST(SetAssoc, FifoIgnoresHits)
{
    SetAssociativeCache cache(AddressLayout(0, 3, 32), 2,
                              std::make_unique<FifoPolicy>());
    cache.access(0);
    cache.access(4);
    cache.access(0); // hit: FIFO order unchanged
    const auto out = cache.access(8);
    EXPECT_TRUE(out.evicted);
    EXPECT_EQ(out.evictedLine, 0u); // oldest fill, despite the hit
}

TEST(SetAssoc, RandomPolicyStaysInRange)
{
    SetAssociativeCache cache(AddressLayout(0, 4, 32), 4,
                              std::make_unique<RandomPolicy>(7));
    // Overfill each set several times; the policy assert catches any
    // out-of-range victim.
    for (Addr a = 0; a < 256; ++a)
        cache.access(a);
    EXPECT_EQ(cache.stats().accesses, 256u);
}

TEST(SetAssoc, SequentialSweepDefeatsLru)
{
    // Section 2.1: serial vector access dictates against LRU.  A
    // sweep one line longer than the cache evicts each line just
    // before its reuse: zero hits on the second pass.
    const auto cache = makeFullyAssociative(
        AddressLayout(0, 3, 32), std::make_unique<LruPolicy>());
    const Addr n = 9; // cache holds 8
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < n; ++a)
            cache->access(a);
    EXPECT_EQ(cache->stats().hits, 0u);
}

TEST(SetAssoc, FullyAssociativeHasOneSet)
{
    const auto cache = makeFullyAssociative(
        AddressLayout(0, 4, 32), std::make_unique<LruPolicy>());
    EXPECT_EQ(cache->numSets(), 1u);
    EXPECT_EQ(cache->associativity(), 16u);
    // Any 16 lines coexist regardless of address bits.
    for (Addr a = 0; a < 16; ++a)
        cache->access(a * 16);
    for (Addr a = 0; a < 16; ++a)
        EXPECT_TRUE(cache->access(a * 16).hit);
}

TEST(SetAssoc, ResetRestoresPolicyState)
{
    const auto cache = makeLru(3, 2);
    cache->access(0);
    cache->access(4);
    cache->reset();
    EXPECT_EQ(cache->validLines(), 0u);
    cache->access(8);
    EXPECT_TRUE(cache->contains(8));
    EXPECT_FALSE(cache->contains(0));
}

TEST(SetAssocDeathTest, WaysMustDivideLines)
{
    EXPECT_DEATH(SetAssociativeCache(AddressLayout(0, 3, 32), 3,
                                     std::make_unique<LruPolicy>()),
                 "divide");
}

TEST(ReplacementPolicy, Names)
{
    EXPECT_EQ(replacementName(ReplacementKind::Lru), "LRU");
    EXPECT_EQ(replacementName(ReplacementKind::Fifo), "FIFO");
    EXPECT_EQ(replacementName(ReplacementKind::Random), "Random");
}

} // namespace
} // namespace vcache
