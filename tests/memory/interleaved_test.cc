/** Tests for the interleaved-bank memory model. */

#include <gtest/gtest.h>

#include "memory/interleaved.hh"
#include "memory/sweep_model.hh"
#include "trace/access.hh"

namespace vcache
{
namespace
{

std::vector<Addr>
stridedAddrs(Addr base, std::uint64_t stride, std::uint64_t n)
{
    return expand(VectorRef{base, static_cast<std::int64_t>(stride), n});
}

TEST(InterleavedMemory, BankAssignment)
{
    InterleavedMemory mem(3, 4); // 8 banks
    EXPECT_EQ(mem.banks(), 8u);
    EXPECT_EQ(mem.bankOf(0), 0u);
    EXPECT_EQ(mem.bankOf(7), 7u);
    EXPECT_EQ(mem.bankOf(8), 0u);
    EXPECT_EQ(mem.bankOf(13), 5u);
}

TEST(InterleavedMemory, UnitStrideStreamsWithoutStalls)
{
    // t_m <= M: consecutive words hit distinct banks and the stream
    // never waits.
    InterleavedMemory mem(3, 8);
    const auto r = mem.streamAccess(stridedAddrs(0, 1, 64));
    EXPECT_EQ(r.stallCycles, 0u);
    EXPECT_EQ(r.finishCycle, 64u);
}

TEST(InterleavedMemory, SingleBankStrideSerialises)
{
    // Stride M: every access to bank 0, each waits t_m after the
    // first.
    InterleavedMemory mem(3, 5);
    const auto r = mem.streamAccess(stridedAddrs(0, 8, 10));
    EXPECT_EQ(r.stallCycles, 9u * 4u); // (t_m - 1) per later element
}

TEST(InterleavedMemory, StallsMatchSweepModel)
{
    // The simulated steady-state throughput must match the closed
    // form (t_m - V) * L / V for long streams.
    for (std::uint64_t stride : {1ull, 2ull, 4ull, 8ull, 16ull}) {
        InterleavedMemory mem(4, 12); // 16 banks, t_m = 12
        const std::uint64_t n = 4096;
        const auto r = mem.streamAccess(stridedAddrs(0, stride, n));
        const double model = sweepStallCycles(16, stride, n, 12);
        EXPECT_NEAR(static_cast<double>(r.stallCycles), model,
                    model * 0.02 + 16.0)
            << "stride " << stride;
    }
}

TEST(InterleavedMemory, IssueRespectsBusyBank)
{
    InterleavedMemory mem(2, 6); // 4 banks
    EXPECT_EQ(mem.issue(0, 0), 0u);
    EXPECT_EQ(mem.issue(4, 1), 6u); // same bank: wait until free
    EXPECT_EQ(mem.issue(1, 1), 1u); // different bank: immediate
}

TEST(InterleavedMemory, ResetFreesBanks)
{
    InterleavedMemory mem(2, 6);
    mem.issue(0, 0);
    mem.reset();
    EXPECT_EQ(mem.issue(0, 0), 0u);
}

TEST(SweepModel, BanksVisited)
{
    EXPECT_EQ(banksVisited(32, 1), 32u);
    EXPECT_EQ(banksVisited(32, 4), 8u);
    EXPECT_EQ(banksVisited(32, 12), 8u);
    EXPECT_EQ(banksVisited(32, 32), 1u);
}

TEST(SweepModel, NoStallWhenCoverageExceedsBusyTime)
{
    EXPECT_DOUBLE_EQ(sweepStallCycles(32, 1, 1000, 16), 0.0);
    EXPECT_DOUBLE_EQ(sweepStallCycles(32, 2, 1000, 16), 0.0);
}

TEST(SweepModel, StallFormula)
{
    // V = 4 banks, t_m = 16: each revisit waits 12 cycles.
    EXPECT_DOUBLE_EQ(sweepStallCycles(32, 8, 64, 16),
                     12.0 * 64.0 / 4.0);
    // Single-bank case degenerates to (t_m - 1) per element.
    EXPECT_DOUBLE_EQ(sweepStallCycles(32, 32, 64, 16), 15.0 * 64.0);
}

} // namespace
} // namespace vcache
