/** Tests for the pipelined bus model. */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "memory/bus.hh"

namespace vcache
{
namespace
{

TEST(PipelinedBus, OneTransferPerCycle)
{
    PipelinedBus bus("test");
    EXPECT_EQ(bus.reserve(0), 0u);
    EXPECT_EQ(bus.reserve(0), 1u); // must wait a cycle
    EXPECT_EQ(bus.reserve(0), 2u);
    EXPECT_EQ(bus.transfers(), 3u);
    EXPECT_EQ(bus.contentionCycles(), 3u);
}

TEST(PipelinedBus, NoContentionWhenSpaced)
{
    PipelinedBus bus("test");
    EXPECT_EQ(bus.reserve(0), 0u);
    EXPECT_EQ(bus.reserve(5), 5u);
    EXPECT_EQ(bus.contentionCycles(), 0u);
}

TEST(PipelinedBus, ReserveManyMatchesLoopOfReserve)
{
    // The closed form must agree with n individual reservations in
    // grant cycle, transfer count, contention and next-free state,
    // across randomized interleavings of arrival time and burst size.
    std::mt19937_64 rng(1234);
    PipelinedBus closed("closed");
    PipelinedBus looped("looped");
    Cycles clock = 0;
    for (int step = 0; step < 500; ++step) {
        clock += rng() % 7;
        const std::uint64_t n = rng() % 6;

        const Cycles want_first =
            std::max(clock, looped.nextFreeAt());
        for (std::uint64_t i = 0; i < n; ++i)
            looped.reserve(clock);

        EXPECT_EQ(closed.reserveMany(clock, n), want_first);
        EXPECT_EQ(closed.nextFreeAt(), looped.nextFreeAt());
        EXPECT_EQ(closed.transfers(), looped.transfers());
        EXPECT_EQ(closed.contentionCycles(),
                  looped.contentionCycles());
    }
}

TEST(PipelinedBus, ReserveManyZeroReservesNothing)
{
    PipelinedBus bus("test");
    bus.reserve(0);
    // n == 0 reports the hypothetical grant cycle without taking it.
    EXPECT_EQ(bus.reserveMany(0, 0), 1u);
    EXPECT_EQ(bus.reserveMany(5, 0), 5u);
    EXPECT_EQ(bus.transfers(), 1u);
    EXPECT_EQ(bus.nextFreeAt(), 1u);
    EXPECT_EQ(bus.contentionCycles(), 0u);
}

TEST(PipelinedBus, Reset)
{
    PipelinedBus bus("test");
    bus.reserve(0);
    bus.reserve(0);
    bus.reset();
    EXPECT_EQ(bus.reserve(0), 0u);
    EXPECT_EQ(bus.transfers(), 1u);
}

TEST(BusSet, TwoReadBusesDoubleThroughput)
{
    BusSet buses;
    // Four reads at cycle 0: two per bus, finishing by cycle 1.
    Cycles worst = 0;
    for (int i = 0; i < 4; ++i)
        worst = std::max(worst, buses.reserveRead(0));
    EXPECT_EQ(worst, 1u);
    EXPECT_EQ(buses.read0().transfers() + buses.read1().transfers(),
              4u);
}

TEST(BusSet, WriteBusIndependent)
{
    BusSet buses;
    buses.reserveRead(0);
    EXPECT_EQ(buses.reserveWrite(0), 0u);
}

TEST(BusSet, Reset)
{
    BusSet buses;
    buses.reserveRead(0);
    buses.reserveWrite(0);
    buses.reset();
    EXPECT_EQ(buses.read0().transfers(), 0u);
    EXPECT_EQ(buses.write().transfers(), 0u);
}

} // namespace
} // namespace vcache
