/** Tests for the pipelined bus model. */

#include <gtest/gtest.h>

#include "memory/bus.hh"

namespace vcache
{
namespace
{

TEST(PipelinedBus, OneTransferPerCycle)
{
    PipelinedBus bus("test");
    EXPECT_EQ(bus.reserve(0), 0u);
    EXPECT_EQ(bus.reserve(0), 1u); // must wait a cycle
    EXPECT_EQ(bus.reserve(0), 2u);
    EXPECT_EQ(bus.transfers(), 3u);
    EXPECT_EQ(bus.contentionCycles(), 3u);
}

TEST(PipelinedBus, NoContentionWhenSpaced)
{
    PipelinedBus bus("test");
    EXPECT_EQ(bus.reserve(0), 0u);
    EXPECT_EQ(bus.reserve(5), 5u);
    EXPECT_EQ(bus.contentionCycles(), 0u);
}

TEST(PipelinedBus, Reset)
{
    PipelinedBus bus("test");
    bus.reserve(0);
    bus.reserve(0);
    bus.reset();
    EXPECT_EQ(bus.reserve(0), 0u);
    EXPECT_EQ(bus.transfers(), 1u);
}

TEST(BusSet, TwoReadBusesDoubleThroughput)
{
    BusSet buses;
    // Four reads at cycle 0: two per bus, finishing by cycle 1.
    Cycles worst = 0;
    for (int i = 0; i < 4; ++i)
        worst = std::max(worst, buses.reserveRead(0));
    EXPECT_EQ(worst, 1u);
    EXPECT_EQ(buses.read0().transfers() + buses.read1().transfers(),
              4u);
}

TEST(BusSet, WriteBusIndependent)
{
    BusSet buses;
    buses.reserveRead(0);
    EXPECT_EQ(buses.reserveWrite(0), 0u);
}

TEST(BusSet, Reset)
{
    BusSet buses;
    buses.reserveRead(0);
    buses.reserveWrite(0);
    buses.reset();
    EXPECT_EQ(buses.read0().transfers(), 0u);
    EXPECT_EQ(buses.write().transfers(), 0u);
}

} // namespace
} // namespace vcache
