/** Tests for the skewed bank-storage scheme. */

#include <gtest/gtest.h>

#include "memory/interleaved.hh"
#include "trace/access.hh"

namespace vcache
{
namespace
{

std::vector<Addr>
stridedAddrs(Addr base, std::uint64_t stride, std::uint64_t n)
{
    return expand(VectorRef{base, static_cast<std::int64_t>(stride), n});
}

TEST(SkewedMemory, BankFunction)
{
    InterleavedMemory mem(3, 4, BankMapping::Skewed); // 8 banks
    // bank = (w + w/8) mod 8.
    EXPECT_EQ(mem.bankOf(0), 0u);
    EXPECT_EQ(mem.bankOf(7), 7u);
    EXPECT_EQ(mem.bankOf(8), 1u);  // row 1 rotates by one
    EXPECT_EQ(mem.bankOf(16), 2u); // row 2 rotates by two
    EXPECT_EQ(mem.bankOf(64), 0u); // full rotation after 8 rows
}

TEST(SkewedMemory, UnitStrideStillConflictFree)
{
    InterleavedMemory mem(4, 12, BankMapping::Skewed);
    const auto r = mem.streamAccess(stridedAddrs(0, 1, 1024));
    EXPECT_EQ(r.stallCycles, 0u);
}

TEST(SkewedMemory, FixesBankSizedStride)
{
    // Stride M is the low-order killer: all one bank.  The skew
    // rotates each row so a stride-M sweep walks all banks.
    const std::uint64_t n = 1024;

    InterleavedMemory low(4, 12, BankMapping::LowOrder);
    const auto low_r = low.streamAccess(stridedAddrs(0, 16, n));
    EXPECT_GT(low_r.stallCycles, 10000u);

    InterleavedMemory skew(4, 12, BankMapping::Skewed);
    const auto skew_r = skew.streamAccess(stridedAddrs(0, 16, n));
    EXPECT_EQ(skew_r.stallCycles, 0u);
}

TEST(SkewedMemory, NotUniformlyBetter)
{
    // Skewing has its own bad strides: s = M + 1 advances bank by
    // (M + 1) + 1 = M + 2 == 2 (mod M), halving the coverage that
    // low-order interleaving would enjoy.
    const std::uint64_t n = 2048;
    InterleavedMemory low(4, 12, BankMapping::LowOrder);
    InterleavedMemory skew(4, 12, BankMapping::Skewed);
    const auto s_low = low.streamAccess(stridedAddrs(0, 17, n));
    const auto s_skew = skew.streamAccess(stridedAddrs(0, 17, n));
    EXPECT_EQ(s_low.stallCycles, 0u); // gcd(17, 16) = 1: all banks
    EXPECT_GT(s_skew.stallCycles, 0u);
}

TEST(SkewedMemory, DefaultIsLowOrder)
{
    InterleavedMemory mem(3, 4);
    EXPECT_EQ(mem.bankMapping(), BankMapping::LowOrder);
    EXPECT_EQ(mem.bankOf(8), 0u);
}

TEST(XorHashMemory, OddStridesMayCollide)
{
    // XOR placement is pseudo-random: it fixes power-of-two strides
    // but gives up the perfect round-robin of odd strides.
    InterleavedMemory mem(4, 12, BankMapping::XorHash);
    const auto pow2 = mem.streamAccess(stridedAddrs(0, 16, 1024));
    EXPECT_LT(pow2.stallCycles, 2048u); // far below the 11k low-order
    mem.reset();
    const auto odd = mem.streamAccess(stridedAddrs(0, 15, 1024));
    EXPECT_GT(odd.stallCycles, 0u);
}

TEST(PrimeModuloMemory, UsesLargestPrimeBelowBudget)
{
    InterleavedMemory mem(6, 32, BankMapping::PrimeModulo);
    EXPECT_EQ(mem.banks(), 61u); // prevPrime(64)
    EXPECT_EQ(mem.bankOf(61), 0u);
    EXPECT_EQ(mem.bankOf(62), 1u);
}

TEST(PrimeModuloMemory, ConflictFreeForNonMultiples)
{
    // Every stride that is not a multiple of 61 visits all banks.
    InterleavedMemory mem(6, 32, BankMapping::PrimeModulo);
    for (std::uint64_t stride : {8ull, 16ull, 64ull, 63ull, 1024ull}) {
        mem.reset();
        const auto r = mem.streamAccess(stridedAddrs(0, stride, 2048));
        EXPECT_EQ(r.stallCycles, 0u) << "stride " << stride;
    }
    mem.reset();
    const auto bad = mem.streamAccess(stridedAddrs(0, 61, 2048));
    EXPECT_GT(bad.stallCycles, 2047u * 30u); // single-bank collapse
}

} // namespace
} // namespace vcache
