/**
 * @file
 * Memo-store tests: LRU and collision behaviour in memory, then the
 * crash-safety contract of the journal -- replay, torn-tail healing,
 * build-identity invalidation and compaction.
 */

#include "serve/memo.hh"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

using namespace vcache;
using namespace vcache::serve;

namespace
{

/** Self-deleting temp file path. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path(std::string(::testing::TempDir()) + name)
    {
        std::remove(path.c_str());
    }

    ~TempPath() { std::remove(path.c_str()); }

    const std::string path;
};

std::unique_ptr<MemoStore>
mustOpen(const MemoOptions &options)
{
    auto store = MemoStore::open(options);
    EXPECT_TRUE(store.ok())
        << (store.ok() ? "" : store.error().message);
    return store.ok() ? std::move(store.value()) : nullptr;
}

/** Journal line count (header + records). */
std::size_t
lineCount(const std::string &path)
{
    std::ifstream in(path);
    std::size_t n = 0;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            ++n;
    return n;
}

} // namespace

TEST(Memo, HitRequiresMatchingCanonical)
{
    auto store = mustOpen(MemoOptions{});
    ASSERT_TRUE(store);

    EXPECT_FALSE(store->lookup(1, "point-a"));
    store->insert(1, "point-a", "payload-a");
    const auto hit = store->lookup(1, "point-a");
    ASSERT_TRUE(hit);
    EXPECT_EQ(*hit, "payload-a");

    // Same 64-bit key, different canonical form: a hash collision
    // must miss (and be counted), never serve the wrong bytes.
    EXPECT_FALSE(store->lookup(1, "point-b"));
    store->insert(1, "point-b", "payload-b");
    EXPECT_EQ(*store->lookup(1, "point-a"), "payload-a");

    const MemoStats stats = store->stats();
    EXPECT_EQ(stats.hits, 2u);
    EXPECT_EQ(stats.misses, 2u);
    EXPECT_EQ(stats.inserts, 1u);
    EXPECT_EQ(stats.collisions, 2u); // one lookup, one insert
}

TEST(Memo, LruEvictsTheColdestEntry)
{
    MemoOptions options;
    options.maxEntries = 2;
    options.shards = 1;
    auto store = mustOpen(options);
    ASSERT_TRUE(store);

    store->insert(1, "a", "pa");
    store->insert(2, "b", "pb");
    ASSERT_TRUE(store->lookup(1, "a")); // refresh: now b is coldest
    store->insert(3, "c", "pc");

    EXPECT_TRUE(store->lookup(1, "a"));
    EXPECT_FALSE(store->lookup(2, "b"));
    EXPECT_TRUE(store->lookup(3, "c"));
    EXPECT_EQ(store->stats().evictions, 1u);
    EXPECT_EQ(store->size(), 2u);
}

TEST(Memo, ReinsertRefreshesInsteadOfDuplicating)
{
    MemoOptions options;
    options.maxEntries = 2;
    options.shards = 1;
    auto store = mustOpen(options);
    ASSERT_TRUE(store);

    store->insert(1, "a", "pa");
    store->insert(2, "b", "pb");
    store->insert(1, "a", "pa"); // refresh, not a new entry
    store->insert(3, "c", "pc"); // evicts b, not a

    EXPECT_TRUE(store->lookup(1, "a"));
    EXPECT_FALSE(store->lookup(2, "b"));
    EXPECT_EQ(store->size(), 2u);
}

TEST(Memo, JournalPersistsAcrossReopen)
{
    TempPath journal("memo_persist.vcj");
    MemoOptions options;
    options.journalPath = journal.path;
    options.label = "memo:test";
    {
        auto store = mustOpen(options);
        ASSERT_TRUE(store);
        store->insert(10, "canon-x", "payload-x");
        store->insert(11, "canon-y", "payload-y");
        ASSERT_TRUE(store->flush().ok());
    }
    auto reopened = mustOpen(options);
    ASSERT_TRUE(reopened);
    EXPECT_EQ(reopened->stats().journalLoaded, 2u);
    const auto hit = reopened->lookup(10, "canon-x");
    ASSERT_TRUE(hit);
    EXPECT_EQ(*hit, "payload-x");
}

TEST(Memo, TornTailIsHealedOnReopen)
{
    TempPath journal("memo_torn.vcj");
    MemoOptions options;
    options.journalPath = journal.path;
    options.label = "memo:test";
    {
        auto store = mustOpen(options);
        ASSERT_TRUE(store);
        store->insert(10, "canon-x", "payload-x");
        ASSERT_TRUE(store->flush().ok());
    }
    {
        // A kill -9 mid-append leaves a truncated last line.
        std::ofstream out(journal.path, std::ios::app);
        out << "{\"point\":11,\"status\":\"ok\",\"row\":[\"half";
    }
    auto reopened = mustOpen(options);
    ASSERT_TRUE(reopened);
    EXPECT_EQ(reopened->stats().journalLoaded, 1u);
    EXPECT_TRUE(reopened->lookup(10, "canon-x"));

    // The healed journal must accept new appends and survive another
    // reopen: the torn tail is gone for good.
    reopened->insert(12, "canon-z", "payload-z");
    ASSERT_TRUE(reopened->flush().ok());
    reopened.reset();
    auto again = mustOpen(options);
    ASSERT_TRUE(again);
    EXPECT_EQ(again->stats().journalLoaded, 2u);
    EXPECT_TRUE(again->lookup(12, "canon-z"));
}

TEST(Memo, ForeignIdentityJournalStartsCold)
{
    TempPath journal("memo_identity.vcj");
    MemoOptions options;
    options.journalPath = journal.path;
    options.label = "memo:build-a";
    {
        auto store = mustOpen(options);
        ASSERT_TRUE(store);
        store->insert(10, "canon-x", "payload-x");
        ASSERT_TRUE(store->flush().ok());
    }
    // A different build may produce different results: its memo must
    // not replay ours.
    options.label = "memo:build-b";
    auto reopened = mustOpen(options);
    ASSERT_TRUE(reopened);
    EXPECT_EQ(reopened->size(), 0u);
    EXPECT_EQ(reopened->stats().journalLoaded, 0u);
    EXPECT_EQ(reopened->stats().journalInvalidated, 1u);
    EXPECT_FALSE(reopened->lookup(10, "canon-x"));
}

TEST(Memo, GarbageJournalStartsColdInsteadOfFailing)
{
    TempPath journal("memo_garbage.vcj");
    {
        std::ofstream out(journal.path);
        out << "this has never been a checkpoint journal\n";
    }
    MemoOptions options;
    options.journalPath = journal.path;
    options.label = "memo:test";
    auto store = mustOpen(options);
    ASSERT_TRUE(store);
    EXPECT_EQ(store->size(), 0u);
    EXPECT_EQ(store->stats().journalInvalidated, 1u);
    // And it is usable: inserts persist through the rewritten file.
    store->insert(1, "a", "pa");
    ASSERT_TRUE(store->flush().ok());
    store.reset();
    auto reopened = mustOpen(options);
    ASSERT_TRUE(reopened);
    EXPECT_TRUE(reopened->lookup(1, "a"));
}

TEST(Memo, CompactionDropsDeadRecords)
{
    TempPath journal("memo_compact.vcj");
    MemoOptions options;
    options.journalPath = journal.path;
    options.label = "memo:test";
    options.maxEntries = 4;
    options.shards = 1;
    options.compactionSlack = 2;
    auto store = mustOpen(options);
    ASSERT_TRUE(store);

    // Many more inserts than capacity: most records die by eviction,
    // so the journal must eventually compact down to the live set.
    for (std::uint64_t i = 0; i < 64; ++i)
        store->insert(i, "c" + std::to_string(i),
                      "p" + std::to_string(i));
    ASSERT_TRUE(store->flush().ok());
    EXPECT_GE(store->stats().compactions, 1u);
    // Header plus at most slack * capacity records.
    EXPECT_LE(lineCount(journal.path),
              1 + options.compactionSlack * options.maxEntries);

    store.reset();
    auto reopened = mustOpen(options);
    ASSERT_TRUE(reopened);
    EXPECT_LE(reopened->size(), options.maxEntries);
    // The most recent insert survived compaction and replay.
    EXPECT_TRUE(reopened->lookup(63, "c63"));
}

TEST(Memo, InMemoryOnlyWhenNoJournalPath)
{
    auto store = mustOpen(MemoOptions{});
    ASSERT_TRUE(store);
    store->insert(1, "a", "pa");
    EXPECT_TRUE(store->flush().ok());
    EXPECT_EQ(store->stats().journalLoaded, 0u);
}
