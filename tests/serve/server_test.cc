/**
 * @file
 * End-to-end server tests over real loopback sockets: protocol
 * round-trips, cache hits, per-connection error isolation, load
 * shedding, deadline enforcement (including the epoch race with a
 * completing point), coalescing and graceful drain on SIGTERM.
 */

#include "serve/server.hh"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/registry.hh"

using namespace vcache;
using namespace vcache::serve;

namespace
{

/** Blocking line-oriented loopback client with a receive timeout. */
class TestClient
{
  public:
    explicit TestClient(std::uint16_t port)
    {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
        connected = ::connect(fd,
                              reinterpret_cast<sockaddr *>(&addr),
                              sizeof addr) == 0;
    }

    ~TestClient()
    {
        if (fd >= 0)
            ::close(fd);
    }

    bool ok() const { return connected; }

    void
    send(const std::string &line)
    {
        const std::string framed = line + "\n";
        ASSERT_EQ(::send(fd, framed.data(), framed.size(),
                         MSG_NOSIGNAL),
                  static_cast<ssize_t>(framed.size()));
    }

    /** Next response line; "" on timeout or closed connection. */
    std::string
    readLine(int timeoutMs = 30000)
    {
        for (;;) {
            const auto nl = buffer.find('\n');
            if (nl != std::string::npos) {
                std::string line = buffer.substr(0, nl);
                buffer.erase(0, nl + 1);
                return line;
            }
            pollfd pfd{fd, POLLIN, 0};
            if (::poll(&pfd, 1, timeoutMs) <= 0)
                return "";
            char chunk[4096];
            const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
            if (n <= 0)
                return "";
            buffer.append(chunk, static_cast<std::size_t>(n));
        }
    }

    std::string
    roundTrip(const std::string &line)
    {
        send(line);
        return readLine();
    }

  private:
    int fd = -1;
    bool connected = false;
    std::string buffer;
};

std::unique_ptr<EvalServer>
mustStart(ServerOptions options)
{
    auto server = EvalServer::start(options);
    EXPECT_TRUE(server.ok())
        << (server.ok() ? "" : server.error().message);
    return server.ok() ? std::move(server.value()) : nullptr;
}

/** The "result" fragment of an eval response (for byte compares). */
std::string
resultOf(const std::string &response)
{
    const auto at = response.find("\"result\":");
    return at == std::string::npos ? "" : response.substr(at);
}

bool
contains(const std::string &haystack, const std::string &needle)
{
    return haystack.find(needle) != std::string::npos;
}

/** A quick model-only request (microseconds to evaluate). */
std::string
modelReq(const std::string &id, std::uint64_t tm)
{
    return "{\"op\":\"eval\",\"id\":\"" + id +
           "\",\"tm\":" + std::to_string(tm) + ",\"sim\":false}";
}

/** A multi-second full-simulation request. */
std::string
slowReq(const std::string &id, std::uint64_t seed,
        const std::string &extra = "")
{
    return "{\"op\":\"eval\",\"id\":\"" + id +
           "\",\"B\":1048576,\"tm\":64,\"seed\":" +
           std::to_string(seed) + extra + "}";
}

} // namespace

TEST(Server, HelloHandshake)
{
    auto server = mustStart(ServerOptions{});
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    const std::string hello =
        client.roundTrip("{\"op\":\"hello\"}");
    EXPECT_TRUE(contains(hello, "\"ok\":true"));
    EXPECT_TRUE(contains(hello, "\"proto\":1"));
    EXPECT_TRUE(contains(hello, "\"identity\":\""));
}

TEST(Server, EvalThenCacheHitIsByteIdentical)
{
    auto server = mustStart(ServerOptions{});
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());

    const std::string first = client.roundTrip(modelReq("a", 16));
    ASSERT_TRUE(contains(first, "\"ok\":true")) << first;
    EXPECT_TRUE(contains(first, "\"cached\":false"));

    const std::string second = client.roundTrip(modelReq("b", 16));
    EXPECT_TRUE(contains(second, "\"cached\":true"));
    ASSERT_NE(resultOf(first), "");
    EXPECT_EQ(resultOf(first), resultOf(second));

    const auto stats = server->statsSnapshot();
    EXPECT_EQ(stats.at("memo.hits"), 1u);
    EXPECT_EQ(stats.at("memo.inserts"), 1u);
}

TEST(Server, MalformedRequestsNeverKillTheConnection)
{
    auto server = mustStart(ServerOptions{});
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());

    EXPECT_TRUE(contains(client.roundTrip("this is not json"),
                         "\"error\":\"InvalidConfig\""));
    EXPECT_TRUE(contains(client.roundTrip("{\"op\":\"warp\"}"),
                         "malformed request"));
    EXPECT_TRUE(contains(
        client.roundTrip("{\"op\":\"eval\",\"m\":99}"),
        "\"ok\":false"));
    // The same connection still serves valid requests afterwards.
    EXPECT_TRUE(contains(client.roundTrip(modelReq("ok", 8)),
                         "\"ok\":true"));
    EXPECT_EQ(server->statsSnapshot().at("serve.malformed"), 3u);
}

TEST(Server, InvalidConfigIsAnErrorResponse)
{
    auto server = mustStart(ServerOptions{});
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    // Parses fine (m <= 64) but fails validateEvalRequest.
    const std::string resp =
        client.roundTrip("{\"op\":\"eval\",\"m\":40}");
    EXPECT_TRUE(contains(resp, "\"ok\":false"));
    EXPECT_TRUE(contains(resp, "\"error\":\"InvalidConfig\""));
    EXPECT_TRUE(contains(resp, "bank_bits"));
}

TEST(Server, ShedsPastQueueCapacity)
{
    ServerOptions options;
    options.threads = 1;
    options.queueDepth = 1;
    options.retryAfterMs = 75;
    auto server = mustStart(options);
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());

    // Occupy the single worker for seconds, fill the depth-1 queue,
    // then everything else must shed instead of queueing unboundedly.
    client.send(slowReq("slow", 100));
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    for (int i = 0; i < 4; ++i)
        client.send(modelReq("q" + std::to_string(i), 8));

    std::size_t shed = 0;
    std::size_t answered = 0;
    for (int i = 0; i < 5; ++i) {
        const std::string resp = client.readLine();
        ASSERT_NE(resp, "") << "timed out waiting for response " << i;
        if (contains(resp, "\"error\":\"Overloaded\"")) {
            ++shed;
            EXPECT_TRUE(contains(resp, "\"retry_after_ms\":75"));
        } else {
            EXPECT_TRUE(contains(resp, "\"ok\":true")) << resp;
            ++answered;
        }
    }
    EXPECT_GE(shed, 3u);
    EXPECT_GE(answered, 2u); // the slow point and >=1 queued one
    EXPECT_EQ(server->statsSnapshot().at("serve.shed"), shed);
}

TEST(Server, DeadlineCancelsMidEvaluation)
{
    auto server = mustStart(ServerOptions{});
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());

    // A multi-second point with a 50ms deadline: the watchdog must
    // cancel it through the epoch token, well before completion.
    const auto start = std::chrono::steady_clock::now();
    const std::string resp = client.roundTrip(
        slowReq("dl", 200, ",\"deadline_ms\":50"));
    const auto elapsed =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
    EXPECT_TRUE(contains(resp, "\"error\":\"Timeout\"")) << resp;
    EXPECT_LT(elapsed.count(), 1500);

    // Epoch isolation: the worker's next point must be untouched by
    // the stale deadline.
    EXPECT_TRUE(contains(client.roundTrip(modelReq("after", 8)),
                         "\"ok\":true"));
    EXPECT_GE(server->statsSnapshot().at("serve.deadline_exceeded"),
              1u);
}

TEST(Server, GenerousDeadlineRacingCompletionDoesNotMisfire)
{
    // Many quick points, each with a deadline they comfortably beat:
    // the watchdog repeatedly sees deadlines from points that just
    // completed, and the epoch check must make every one a no-op.
    ServerOptions options;
    options.threads = 1; // one worker: every point reuses one token
    auto server = mustStart(options);
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());

    for (int i = 0; i < 25; ++i) {
        const std::string resp = client.roundTrip(
            "{\"op\":\"eval\",\"id\":\"r" + std::to_string(i) +
            "\",\"tm\":" + std::to_string(4 + i) +
            ",\"sim\":false,\"deadline_ms\":10000}");
        EXPECT_TRUE(contains(resp, "\"ok\":true")) << resp;
    }
    EXPECT_EQ(server->statsSnapshot().at("serve.deadline_exceeded"),
              0u);
}

TEST(Server, IdenticalInflightRequestsCoalesce)
{
    ServerOptions options;
    options.threads = 2;
    auto server = mustStart(options);
    ASSERT_TRUE(server);
    TestClient first(server->port());
    TestClient second(server->port());
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());

    // Identical slow points from two clients: the second must either
    // coalesce onto the in-flight computation or (if it arrives
    // after completion) hit the memo; either way exactly one
    // evaluation runs and the bytes match.
    first.send(slowReq("one", 300));
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    second.send(slowReq("two", 300));

    const std::string a = first.readLine();
    const std::string b = second.readLine();
    ASSERT_TRUE(contains(a, "\"ok\":true")) << a;
    ASSERT_TRUE(contains(b, "\"ok\":true")) << b;
    EXPECT_EQ(resultOf(a), resultOf(b));
    EXPECT_TRUE(contains(b, "\"coalesced\":true") ||
                contains(b, "\"cached\":true"));
    const auto stats = server->statsSnapshot();
    EXPECT_EQ(stats.at("memo.inserts"), 1u);
    EXPECT_EQ(stats.at("serve.coalesced") + stats.at("memo.hits"),
              1u);
}

TEST(Server, RemoteShutdownDrains)
{
    auto server = mustStart(ServerOptions{});
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    EXPECT_TRUE(contains(client.roundTrip("{\"op\":\"shutdown\"}"),
                         "\"draining\":true"));
    server->wait();
    EXPECT_TRUE(server->draining());
    // A fresh connection must be refused or immediately closed.
    TestClient late(server->port());
    if (late.ok()) {
        EXPECT_EQ(late.roundTrip("{\"op\":\"hello\"}"), "");
    }
}

TEST(Server, RemoteShutdownCanBeDisabled)
{
    ServerOptions options;
    options.allowRemoteShutdown = false;
    auto server = mustStart(options);
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    EXPECT_TRUE(contains(client.roundTrip("{\"op\":\"shutdown\"}"),
                         "\"ok\":false"));
    EXPECT_FALSE(server->draining());
}

TEST(Server, SigtermDrainsGracefully)
{
    ServerOptions options;
    options.handleSignals = true;
    auto server = mustStart(options);
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    // In-flight work completes before the drain finishes.
    EXPECT_TRUE(contains(client.roundTrip(modelReq("pre", 12)),
                         "\"ok\":true"));

    std::raise(SIGTERM);
    server->wait();
    EXPECT_TRUE(server->draining());
    EXPECT_EQ(server->statsSnapshot().at("serve.eval_ok"), 1u);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGINT, SIG_DFL);
}

TEST(Server, StatsPublishIntoARegistry)
{
    auto server = mustStart(ServerOptions{});
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    client.roundTrip(modelReq("a", 16));
    client.roundTrip(modelReq("b", 16));

    ObsRegistry registry;
    server->publishStats(registry);
    const auto *ok = registry.findCounter("serve.eval_ok");
    const auto *hits = registry.findCounter("memo.hits");
    ASSERT_NE(ok, nullptr);
    ASSERT_NE(hits, nullptr);
    EXPECT_EQ(ok->value, 2u);
    EXPECT_EQ(hits->value, 1u);

    // The stats verb reports the same counters over the wire.
    const std::string stats =
        client.roundTrip("{\"op\":\"stats\"}");
    EXPECT_TRUE(contains(stats, "\"serve.eval_ok\":2"));
    EXPECT_TRUE(contains(stats, "\"memo.hits\":1"));
}

TEST(Server, MetricsVerbCarriesPrometheusText)
{
    auto server = mustStart(ServerOptions{});
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    client.roundTrip(modelReq("a", 16));

    const std::string line =
        client.roundTrip("{\"op\":\"metrics\"}");
    EXPECT_TRUE(contains(line, "\"ok\":true")) << line;
    EXPECT_TRUE(contains(line, "\"format\":\"prometheus\""));
    EXPECT_TRUE(
        contains(line, "# TYPE vcache_serve_eval_ok counter"));
    EXPECT_TRUE(contains(line, "vcache_serve_eval_ok 1\\n"));
    EXPECT_TRUE(
        contains(line, "# TYPE vcache_memo_inserts counter"));
}

TEST(Server, CompatibleQueuedRequestsBatchWithIdenticalBytes)
{
    // Four distinct sim points sharing one workload key, admitted
    // while the single worker chews on a blocker: one wakeup must
    // drain them into a single batched evaluation, with responses
    // byte-identical to a batching-disabled server.
    const auto compatReq = [](std::size_t i) {
        return "{\"op\":\"eval\",\"id\":\"b" + std::to_string(i) +
               "\",\"B\":256,\"tm\":" + std::to_string(4 * (i + 1)) +
               ",\"seed\":7}";
    };

    std::vector<std::string> batched(4);
    {
        ServerOptions options;
        options.threads = 1;
        options.batchMax = 4;
        auto server = mustStart(options);
        ASSERT_TRUE(server);
        TestClient client(server->port());
        ASSERT_TRUE(client.ok());
        client.send(slowReq("blk", 77));
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        for (std::size_t i = 0; i < 4; ++i)
            client.send(compatReq(i));

        ASSERT_TRUE(contains(client.readLine(120000), "\"blk\""));
        for (std::size_t i = 0; i < 4; ++i) {
            batched[i] = client.readLine();
            ASSERT_TRUE(contains(batched[i], "\"ok\":true"))
                << batched[i];
            EXPECT_TRUE(contains(batched[i],
                                 "\"b" + std::to_string(i) + "\""));
        }
        const auto stats = server->statsSnapshot();
        EXPECT_EQ(stats.at("serve.batched"), 4u);
        EXPECT_EQ(stats.at("serve.batches"), 1u);
        EXPECT_EQ(stats.at("serve.batch_size_max"), 4u);
    }

    ServerOptions solo;
    solo.threads = 1;
    solo.batchMax = 1; // batching disabled
    auto server = mustStart(solo);
    ASSERT_TRUE(server);
    TestClient client(server->port());
    ASSERT_TRUE(client.ok());
    for (std::size_t i = 0; i < 4; ++i) {
        const std::string alone = client.roundTrip(compatReq(i));
        ASSERT_TRUE(contains(alone, "\"ok\":true")) << alone;
        EXPECT_EQ(resultOf(batched[i]), resultOf(alone)) << i;
    }
    EXPECT_EQ(server->statsSnapshot().at("serve.batches"), 0u);
}

TEST(Server, QueuePeakTracksConcurrentAdmits)
{
    // Regression for the queue_peak CAS loop: eight reader threads
    // admit concurrently while the lone worker is busy, so the peak
    // must reach the full backlog -- a torn read-modify-write would
    // under-report it.
    ServerOptions options;
    options.threads = 1;
    auto server = mustStart(options);
    ASSERT_TRUE(server);

    TestClient blocker(server->port());
    ASSERT_TRUE(blocker.ok());
    blocker.send(slowReq("blk", 78));
    std::this_thread::sleep_for(std::chrono::milliseconds(300));

    constexpr std::size_t kClients = 8;
    std::vector<std::unique_ptr<TestClient>> clients;
    for (std::size_t i = 0; i < kClients; ++i) {
        clients.push_back(
            std::make_unique<TestClient>(server->port()));
        ASSERT_TRUE(clients.back()->ok());
    }
    std::vector<std::thread> senders;
    for (std::size_t i = 0; i < kClients; ++i)
        senders.emplace_back([&, i] {
            clients[i]->send(modelReq("c" + std::to_string(i), 4 + i));
        });
    for (auto &t : senders)
        t.join();

    ASSERT_TRUE(contains(blocker.readLine(120000), "\"ok\":true"));
    for (auto &client : clients)
        EXPECT_TRUE(contains(client->readLine(120000), "\"ok\":true"));
    EXPECT_GE(server->statsSnapshot().at("serve.queue_peak"),
              kClients);
}

TEST(Server, MemoJournalSurvivesRestart)
{
    const std::string journal =
        std::string(::testing::TempDir()) + "server_restart.vcj";
    std::remove(journal.c_str());
    ServerOptions options;
    options.memo.journalPath = journal;
    options.memo.label = "memo:server-test";

    std::string first;
    {
        auto server = mustStart(options);
        ASSERT_TRUE(server);
        TestClient client(server->port());
        ASSERT_TRUE(client.ok());
        first = client.roundTrip(modelReq("a", 20));
        ASSERT_TRUE(contains(first, "\"ok\":true"));
        client.roundTrip("{\"op\":\"shutdown\"}");
        server->wait();
    }
    {
        auto server = mustStart(options);
        ASSERT_TRUE(server);
        TestClient client(server->port());
        ASSERT_TRUE(client.ok());
        const std::string again =
            client.roundTrip(modelReq("b", 20));
        EXPECT_TRUE(contains(again, "\"cached\":true")) << again;
        EXPECT_EQ(resultOf(first), resultOf(again));
    }
    std::remove(journal.c_str());
}
