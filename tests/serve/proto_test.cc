/**
 * @file
 * Wire-protocol unit tests: every malformed line must become a
 * structured error, every renderer must emit deterministic bytes.
 */

#include "serve/proto.hh"

#include <gtest/gtest.h>

#include "sim/evaluate.hh"
#include "util/buildinfo.hh"

using namespace vcache;
using namespace vcache::serve;

namespace
{

Request
mustParse(const std::string &line)
{
    auto parsed = parseRequest(line);
    EXPECT_TRUE(parsed.ok()) << line << " -> "
                             << (parsed.ok()
                                     ? ""
                                     : parsed.error().message);
    return parsed.ok() ? parsed.value() : Request{};
}

std::string
mustFail(const std::string &line)
{
    auto parsed = parseRequest(line);
    EXPECT_FALSE(parsed.ok()) << line << " unexpectedly parsed";
    if (parsed.ok())
        return "";
    EXPECT_EQ(parsed.error().code, Errc::InvalidConfig);
    return parsed.error().message;
}

} // namespace

TEST(ProtoParse, EvalWithNoFieldsIsThePaperPoint)
{
    const Request req = mustParse(R"({"op":"eval"})");
    EXPECT_EQ(req.verb, Verb::Eval);
    EXPECT_EQ(canonicalEvalRequest(req.eval),
              canonicalEvalRequest(EvalRequest{}));
    EXPECT_TRUE(req.id.empty());
    EXPECT_EQ(req.deadlineMs, 0u);
}

TEST(ProtoParse, EvalWithEveryField)
{
    const Request req = mustParse(
        R"({"op":"eval","id":"r-1","m":5,"tm":32,"B":512,)"
        R"("pds":0.25,"seed":42,"sim":true,"engine":"sampled",)"
        R"("ci":0.05,"deadline_ms":750})");
    EXPECT_EQ(req.id, "r-1");
    EXPECT_EQ(req.eval.bankBits, 5u);
    EXPECT_EQ(req.eval.memoryTime, 32u);
    EXPECT_EQ(req.eval.blockingFactor, 512u);
    EXPECT_DOUBLE_EQ(req.eval.pDoubleStream, 0.25);
    EXPECT_EQ(req.eval.seed, 42u);
    EXPECT_TRUE(req.eval.sim);
    EXPECT_EQ(req.eval.engine, SimEngine::Sampled);
    EXPECT_DOUBLE_EQ(req.eval.targetCi, 0.05);
    EXPECT_EQ(req.deadlineMs, 750u);
}

TEST(ProtoParse, NonEvalVerbs)
{
    EXPECT_EQ(mustParse(R"({"op":"hello"})").verb, Verb::Hello);
    EXPECT_EQ(mustParse(R"({"op":"stats"})").verb, Verb::Stats);
    EXPECT_EQ(mustParse(R"({"op":"metrics"})").verb, Verb::Metrics);
    EXPECT_EQ(mustParse(R"({"op":"shutdown"})").verb,
              Verb::Shutdown);
}

TEST(ProtoParse, FullRangeSeedSurvives)
{
    const Request req = mustParse(
        R"({"op":"eval","seed":18446744073709551615})");
    EXPECT_EQ(req.eval.seed, 18446744073709551615ull);
}

TEST(ProtoParse, DuplicateKeyLastWins)
{
    const Request req =
        mustParse(R"({"op":"eval","B":256,"B":512})");
    EXPECT_EQ(req.eval.blockingFactor, 512u);
}

TEST(ProtoParse, EscapedStringsDecode)
{
    const Request req =
        mustParse(R"({"op":"eval","id":"a\"b\\cA"})");
    EXPECT_EQ(req.id, "a\"b\\cA");
}

TEST(ProtoParse, MalformedLinesAreStructuredErrors)
{
    // None of these may parse; all must name the problem.
    mustFail("");
    mustFail("not json");
    mustFail("[1,2,3]");
    mustFail("{");
    mustFail(R"({"op":"eval"} trailing)");
    mustFail(R"({"op":"warp"})");
    mustFail(R"({"no_op_key":1})");
    mustFail(R"({"op":"eval","B":"big"})");
    mustFail(R"({"op":"eval","engine":"warp"})");
    mustFail(R"({"op":"eval","id":7})");
    // Unknown keys are rejected like unknown CLI flags: a typo must
    // never silently change an experiment.
    EXPECT_NE(mustFail(R"({"op":"eval","banks":64})").find("banks"),
              std::string::npos);
    // Non-eval verbs take no parameters at all.
    mustFail(R"({"op":"hello","m":6})");
}

TEST(ProtoParse, ImplausibleBankBitsRejected)
{
    mustFail(R"({"op":"eval","m":99})");
}

TEST(ProtoRender, FormatKeyIsZeroPaddedHex)
{
    EXPECT_EQ(formatKey(0), "0000000000000000");
    EXPECT_EQ(formatKey(0x1a2b), "0000000000001a2b");
    EXPECT_EQ(formatKey(0xffffffffffffffffull),
              "ffffffffffffffff");
}

TEST(ProtoRender, EvalOkEnvelope)
{
    EXPECT_EQ(renderEvalOk("r1", 0x2a, "{\"model\":{}}", true,
                           false),
              R"({"ok":true,"id":"r1","cached":true,)"
              R"("coalesced":false,"key":"000000000000002a",)"
              R"("result":{"model":{}}})");
}

TEST(ProtoRender, ErrorEscapesAndNamesTheCode)
{
    const std::string line = renderError(
        "x", makeError(Errc::Timeout, "a \"quoted\" deadline"));
    EXPECT_NE(line.find("\"error\":\"Timeout\""),
              std::string::npos);
    EXPECT_NE(line.find("a \\\"quoted\\\" deadline"),
              std::string::npos);
    EXPECT_NE(line.find("\"ok\":false"), std::string::npos);
}

TEST(ProtoRender, OverloadedCarriesRetryHint)
{
    const std::string line = renderOverloaded("r9", 125);
    EXPECT_NE(line.find("\"error\":\"Overloaded\""),
              std::string::npos);
    EXPECT_NE(line.find("\"retry_after_ms\":125"),
              std::string::npos);
    EXPECT_NE(line.find("\"id\":\"r9\""), std::string::npos);
}

TEST(ProtoRender, HelloCarriesBuildIdentity)
{
    const std::string line = renderHello();
    EXPECT_NE(line.find("\"proto\":1"), std::string::npos);
    EXPECT_NE(line.find(buildResultIdentity()), std::string::npos);
}

TEST(ProtoRender, StatsAreSortedByName)
{
    const std::string line =
        renderStats({{"b.two", 2}, {"a.one", 1}});
    const auto a = line.find("\"a.one\":1");
    const auto b = line.find("\"b.two\":2");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_LT(a, b);
}

TEST(ProtoRender, PrometheusTextMapsNamesAndValues)
{
    const std::string text = renderPrometheusText(
        {{"serve.eval_ok", 7}, {"memo.hits", 3}});
    EXPECT_EQ(text,
              "# TYPE vcache_memo_hits counter\n"
              "vcache_memo_hits 3\n"
              "# TYPE vcache_serve_eval_ok counter\n"
              "vcache_serve_eval_ok 7\n");
}

TEST(ProtoRender, MetricsEnvelopeEscapesTheText)
{
    const std::string line = renderMetrics({{"serve.requests", 1}});
    EXPECT_EQ(line.find("{\"ok\":true,\"op\":\"metrics\","
                        "\"format\":\"prometheus\",\"text\":\""),
              0u);
    // Newlines cross the wire escaped; the payload stays one line.
    EXPECT_EQ(line.find('\n'), std::string::npos);
    EXPECT_NE(line.find("vcache_serve_requests 1\\n"),
              std::string::npos);
}

TEST(ProtoRender, ModelOnlyPayloadHasNoSimFragment)
{
    EvalRequest req;
    req.sim = false;
    EvalResult result{};
    result.modelMm = 1.5;
    result.modelDirect = 2.5;
    result.modelPrime = 0.125;
    EXPECT_EQ(renderResultPayload(req, result),
              R"({"model":{"mm":1.5,"direct":2.5,)"
              R"("prime":0.125}})");
}

TEST(ProtoRender, ExactPayloadCarriesCounters)
{
    EvalRequest req; // sim=true, exact engine
    const auto evaluated = evaluatePoint(req);
    ASSERT_TRUE(evaluated.ok());
    const std::string payload =
        renderResultPayload(req, evaluated.value());
    EXPECT_NE(payload.find("\"sim\":{"), std::string::npos);
    EXPECT_NE(payload.find("\"counters\":{"), std::string::npos);
    EXPECT_NE(payload.find("\"hits\":"), std::string::npos);
    EXPECT_EQ(payload.find("\"ci\":{"), std::string::npos);
    // Determinism: rendering twice is byte-identical.
    EXPECT_EQ(payload,
              renderResultPayload(req, evaluated.value()));
}

TEST(ProtoRender, SampledPayloadCarriesCiNotCounters)
{
    EvalRequest req;
    req.engine = SimEngine::Sampled;
    req.targetCi = 0.2; // loose: keep the test fast
    const auto evaluated = evaluatePoint(req);
    ASSERT_TRUE(evaluated.ok());
    const std::string payload =
        renderResultPayload(req, evaluated.value());
    EXPECT_NE(payload.find("\"ci\":{"), std::string::npos);
    EXPECT_EQ(payload.find("\"counters\":{"), std::string::npos);
}
