/** Tests for the functional vector machine and program builders. */

#include <gtest/gtest.h>

#include <cmath>

#include "core/defaults.hh"
#include "util/rng.hh"
#include "sim/runner.hh"
#include "vpu/machine.hh"
#include "vpu/program.hh"

namespace vcache
{
namespace
{

TEST(VectorMachine, RegistersAndMemoryBasics)
{
    VectorMachine m(64, 1024);
    EXPECT_EQ(m.maxVectorLength(), 64u);
    EXPECT_EQ(m.memoryWords(), 1024u);
    m.writeMem(7, 3.5);
    EXPECT_DOUBLE_EQ(m.readMem(7), 3.5);
    EXPECT_DOUBLE_EQ(m.readMem(8), 0.0);
}

TEST(VectorMachine, LoadComputeStore)
{
    VectorMachine m(8, 64);
    for (Addr a = 0; a < 8; ++a) {
        m.writeMem(a, static_cast<double>(a));      // x
        m.writeMem(16 + a, 10.0 * static_cast<double>(a)); // y
    }

    VectorProgram p;
    p.setVl(8);
    p.loadV(0, 0, 1);
    p.loadV(1, 16, 1);
    p.addVV(2, 0, 1);
    p.storeV(2, 32, 1);
    m.run(p);

    for (Addr a = 0; a < 8; ++a)
        EXPECT_DOUBLE_EQ(m.readMem(32 + a), 11.0 * a);
}

TEST(VectorMachine, StridedAndScalarOps)
{
    VectorMachine m(4, 64);
    for (Addr a = 0; a < 16; ++a)
        m.writeMem(a, static_cast<double>(a));

    VectorProgram p;
    p.setVl(4);
    p.loadScalar(2.0);
    p.loadV(0, 1, 4); // {1, 5, 9, 13}
    p.mulSV(1, 0);    // {2, 10, 18, 26}
    p.addSV(2, 1);    // {4, 12, 20, 28}
    m.run(p);

    const auto &v2 = m.vectorRegister(2);
    EXPECT_DOUBLE_EQ(v2[0], 4.0);
    EXPECT_DOUBLE_EQ(v2[3], 28.0);
}

TEST(VectorMachine, TraceRecordsWhatExecutes)
{
    VectorMachine m(8, 256);
    VectorProgram p;
    p.setVl(8);
    p.loadPairV(0, 0, 1, 1, 100, 2);
    p.mulAddSV(2, 0, 1);
    p.storeV(2, 200, 1);
    m.run(p);

    const auto &t = m.trace();
    ASSERT_EQ(t.size(), 1u); // store attached to the pair load
    EXPECT_TRUE(t[0].doubleStream());
    EXPECT_EQ(t[0].first.base, 0u);
    EXPECT_EQ(t[0].second->stride, 2);
    ASSERT_TRUE(t[0].store.has_value());
    EXPECT_EQ(t[0].store->base, 200u);
    EXPECT_EQ(m.instructionsExecuted(), 4u);
}

TEST(VectorMachine, StandaloneStoreGetsOwnRecord)
{
    VectorMachine m(4, 64);
    VectorProgram p;
    p.setVl(4);
    p.loadV(0, 0, 1);
    p.storeV(0, 16, 1);
    p.storeV(0, 32, 1); // previous op already has a store
    m.run(p);
    ASSERT_EQ(m.trace().size(), 2u);
    EXPECT_EQ(m.trace()[1].first.length, 0u);
    ASSERT_TRUE(m.trace()[1].store.has_value());
    EXPECT_EQ(m.trace()[1].store->base, 32u);
}

TEST(VectorMachine, SaxpyMatchesReference)
{
    const std::uint64_t n = 500;
    const double a = 2.5;
    VectorMachine m(64, 4096);
    for (Addr i = 0; i < n; ++i) {
        m.writeMem(i, 0.5 * static_cast<double>(i));          // x
        m.writeMem(1000 + i, 1.0 - static_cast<double>(i));   // y
    }

    VectorProgram p;
    emitSaxpy(p, m.maxVectorLength(), a, 0, 1, 1000, 1, n);
    m.run(p);

    for (Addr i = 0; i < n; ++i) {
        const double expect =
            a * (0.5 * i) + (1.0 - static_cast<double>(i));
        EXPECT_DOUBLE_EQ(m.readMem(1000 + i), expect) << i;
    }
}

TEST(VectorMachine, StridedSaxpyMatchesReference)
{
    // SAXPY over a matrix row: stride = leading dimension.
    const std::uint64_t n = 64, lead = 100;
    VectorMachine m(64, 16384);
    for (Addr i = 0; i < n; ++i) {
        m.writeMem(i * lead, static_cast<double>(i));
        m.writeMem(7000 + i * lead, 100.0);
    }

    VectorProgram p;
    emitSaxpy(p, 64, -1.0, 0, static_cast<std::int64_t>(lead), 7000,
              static_cast<std::int64_t>(lead), n);
    m.run(p);

    for (Addr i = 0; i < n; ++i)
        EXPECT_DOUBLE_EQ(m.readMem(7000 + i * lead),
                         100.0 - static_cast<double>(i));
}

TEST(VectorMachine, DotProductMatchesReference)
{
    const std::uint64_t n = 300;
    VectorMachine m(64, 2048);
    double expect = 0.0;
    for (Addr i = 0; i < n; ++i) {
        const double x = 0.1 * static_cast<double>(i) - 3.0;
        const double y = 0.05 * static_cast<double>(i * i % 17);
        m.writeMem(i, x);
        m.writeMem(1024 + i, y);
        expect += x * y;
    }

    VectorProgram p;
    emitDot(p, 64, 0, 1, 1024, 1, n);
    m.run(p);
    EXPECT_NEAR(m.scalarRegister(), expect, 1e-9);
}

TEST(VectorMachine, StridedDotProduct)
{
    VectorMachine m(8, 256);
    // x = {1,1,1,1} at stride 3; y = {2,2,2,2} at stride 5.
    for (int i = 0; i < 4; ++i) {
        m.writeMem(3 * i, 1.0);
        m.writeMem(100 + 5 * i, 2.0);
    }
    VectorProgram p;
    emitDot(p, 8, 0, 3, 100, 5, 4);
    m.run(p);
    EXPECT_DOUBLE_EQ(m.scalarRegister(), 8.0);
}

TEST(VectorMachine, BlockedMatmulMatchesReference)
{
    const std::uint64_t n = 16, b = 4;
    VectorMachine m(64, 4096);
    const Addr base_a = 0, base_b = 256, base_c = 512;

    // A[i][j] = i + j, B[i][j] = i - j (column-major).
    for (std::uint64_t col = 0; col < n; ++col)
        for (std::uint64_t row = 0; row < n; ++row) {
            m.writeMem(base_a + row + col * n,
                       static_cast<double>(row + col));
            m.writeMem(base_b + row + col * n,
                       static_cast<double>(row) -
                           static_cast<double>(col));
        }

    VectorProgram p;
    emitBlockedMatmul(p, 64, base_a, base_b, base_c, n, b);
    m.run(p);

    for (std::uint64_t col = 0; col < n; ++col)
        for (std::uint64_t row = 0; row < n; ++row) {
            double expect = 0.0;
            for (std::uint64_t k = 0; k < n; ++k)
                expect += (static_cast<double>(row + k)) *
                          (static_cast<double>(k) -
                           static_cast<double>(col));
            EXPECT_DOUBLE_EQ(m.readMem(base_c + row + col * n),
                             expect)
                << "C(" << row << "," << col << ")";
        }
}

TEST(VectorMachine, MatmulTraceTimesFasterOnPrime)
{
    // The very trace the functional matmul produced, timed on the
    // direct- and prime-mapped machines with a pathological leading
    // dimension (the matrices are padded apart by powers of two).
    const std::uint64_t n = 64, b = 16;
    VectorMachine m(64, 1u << 16);
    VectorProgram p;
    emitBlockedMatmul(p, 64, 0, 16384, 32768, n, b);
    m.run(p);

    MachineParams machine = paperMachineM32();
    machine.memoryTime = 32;
    const auto direct =
        simulateCc(machine, CacheScheme::Direct, m.trace());
    const auto prime =
        simulateCc(machine, CacheScheme::Prime, m.trace());
    EXPECT_LE(prime.totalCycles, direct.totalCycles);
}

TEST(VectorMachine, ScalarRegisterOps)
{
    VectorMachine m(8, 64);
    m.writeMem(3, 4.0);
    VectorProgram p;
    p.loadScalarFromMem(3);
    p.recipScalar();  // 0.25
    p.negScalar();    // -0.25
    p.storeScalarToMem(10);
    m.run(p);
    EXPECT_DOUBLE_EQ(m.readMem(10), -0.25);
}

TEST(VectorMachineDeathTest, ReciprocalOfZeroPanics)
{
    VectorMachine m(8, 64);
    VectorProgram p;
    p.loadScalar(0.0);
    p.recipScalar();
    EXPECT_DEATH(m.run(p), "reciprocal of zero");
}

TEST(VectorMachine, LuFactorMatchesHostReference)
{
    // Diagonally dominant 20x20 system: no pivoting needed.
    const std::uint64_t n = 20, lda = 24;
    VectorMachine m(8, 1024); // MVL 8 forces strip-mining
    std::vector<std::vector<double>> ref(n, std::vector<double>(n));
    Rng rng(77);
    for (std::uint64_t col = 0; col < n; ++col)
        for (std::uint64_t row = 0; row < n; ++row) {
            double v = rng.uniformReal() - 0.5;
            if (row == col)
                v += static_cast<double>(n); // dominance
            ref[row][col] = v;
            m.writeMem(row + col * lda, v);
        }

    // Host reference LU (same algorithm, plain loops).
    for (std::uint64_t k = 0; k + 1 < n; ++k) {
        for (std::uint64_t i = k + 1; i < n; ++i)
            ref[i][k] /= ref[k][k];
        for (std::uint64_t j = k + 1; j < n; ++j)
            for (std::uint64_t i = k + 1; i < n; ++i)
                ref[i][j] -= ref[i][k] * ref[k][j];
    }

    VectorProgram p;
    emitLuFactor(p, m.maxVectorLength(), 0, n, lda);
    m.run(p);

    for (std::uint64_t col = 0; col < n; ++col)
        for (std::uint64_t row = 0; row < n; ++row)
            EXPECT_NEAR(m.readMem(row + col * lda), ref[row][col],
                        1e-9)
                << "(" << row << "," << col << ")";
}

TEST(VectorMachine, LuSolveRecoversKnownSolution)
{
    // Factor + forward + back solve must reproduce x* exactly
    // (within rounding) for a diagonally dominant system.
    const std::uint64_t n = 24, lda = 24;
    VectorMachine m(8, 2048);
    Rng rng(55);

    std::vector<double> x_star(n);
    for (std::uint64_t i = 0; i < n; ++i)
        x_star[i] = rng.uniformReal() * 4.0 - 2.0;

    // A and b = A x* in machine memory (b at address 1024).
    const Addr rhs = 1024;
    for (std::uint64_t row = 0; row < n; ++row) {
        double b = 0.0;
        for (std::uint64_t col = 0; col < n; ++col) {
            double v = rng.uniformReal() - 0.5;
            if (row == col)
                v += static_cast<double>(n);
            m.writeMem(row + col * lda, v);
            b += v * x_star[col];
        }
        m.writeMem(rhs + row, b);
    }

    VectorProgram solve;
    emitLuFactor(solve, m.maxVectorLength(), 0, n, lda);
    emitForwardSolveUnitLower(solve, m.maxVectorLength(), 0, n, lda,
                              rhs);
    emitBackSolveUpper(solve, m.maxVectorLength(), 0, n, lda, rhs);
    m.run(solve);

    for (std::uint64_t i = 0; i < n; ++i)
        EXPECT_NEAR(m.readMem(rhs + i), x_star[i], 1e-9) << "x[" << i
                                                         << "]";
}

TEST(VectorMachine, LuTraceStridesAreUnit)
{
    VectorMachine m(64, 4096);
    for (std::uint64_t i = 0; i < 16; ++i)
        m.writeMem(i + i * 16, 100.0);
    VectorProgram p;
    emitLuFactor(p, 64, 0, 16, 16);
    m.run(p);
    for (const auto &op : m.trace()) {
        EXPECT_EQ(op.first.stride, 1);
        if (op.second) {
            EXPECT_EQ(op.second->stride, 1);
        }
    }
    EXPECT_GT(m.scalarLoads(), 0u);
}

TEST(VectorMachine, ScalarLoadsBypassVectorTraceByDefault)
{
    VectorMachine m(8, 64);
    m.writeMem(5, 42.0);
    VectorProgram p;
    p.loadScalarFromMem(5);
    m.run(p);
    EXPECT_DOUBLE_EQ(m.scalarRegister(), 42.0);
    EXPECT_TRUE(m.trace().empty()); // separate scalar cache
    EXPECT_EQ(m.scalarLoads(), 1u);

    VectorMachine m2(8, 64);
    m2.writeMem(5, 42.0);
    m2.traceScalarLoads(true);
    m2.run(p);
    ASSERT_EQ(m2.trace().size(), 1u);
    EXPECT_EQ(m2.trace()[0].first.length, 1u);
}

TEST(VectorMachine, DisassemblyIsReadable)
{
    VectorProgram p;
    p.setVl(8);
    p.loadScalar(2.0);
    p.loadV(0, 100, 4);
    p.mulAddSV(2, 0, 1);
    const auto text = p.disassemble();
    EXPECT_NE(text.find("setvl   8"), std::string::npos);
    EXPECT_NE(text.find("vload   v0, [100 +4]"), std::string::npos);
    EXPECT_NE(text.find("vmadds"), std::string::npos);
}

TEST(VectorMachineDeathTest, OutOfRangeAccessPanics)
{
    VectorMachine m(8, 32);
    VectorProgram p;
    p.setVl(8);
    p.loadV(0, 30, 1); // 30..37 leaves the 32-word memory
    EXPECT_DEATH(m.run(p), "leaves");
}

TEST(VectorMachineDeathTest, BadRegisterPanics)
{
    VectorMachine m(8, 64, 4);
    VectorProgram p;
    p.setVl(4);
    p.loadV(7, 0, 1);
    EXPECT_DEATH(m.run(p), "does not exist");
}

TEST(VectorMachineDeathTest, BadVectorLengthPanics)
{
    VectorMachine m(8, 64);
    VectorProgram p;
    p.setVl(9);
    EXPECT_DEATH(m.run(p), "setvl");
}

} // namespace
} // namespace vcache
