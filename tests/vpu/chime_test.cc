/** Tests for the convoy/chime analyzer. */

#include <gtest/gtest.h>

#include "vpu/chime.hh"

namespace vcache
{
namespace
{

TEST(Chime, EmptyProgram)
{
    VectorProgram p;
    const auto a = analyzeChimes(p, 64);
    EXPECT_EQ(a.convoys, 0u);
    EXPECT_EQ(a.chimeCycles, 0u);
}

TEST(Chime, SaxpyStripIsThreeConvoys)
{
    // The classic H&P example: load-pair, multiply-add (depends on
    // the loads), store (depends on the multiply-add): 3 convoys.
    VectorProgram p;
    p.setVl(64);
    p.loadScalar(2.0);
    p.loadPairV(0, 0, 1, 1, 100, 1);
    p.mulAddSV(2, 0, 1);
    p.storeV(2, 100, 1);
    const auto a = analyzeChimes(p, 64);
    EXPECT_EQ(a.convoys, 3u);
    EXPECT_EQ(a.chimeCycles, 3u * 64u);
    EXPECT_EQ(a.memoryOps, 2u);
    EXPECT_EQ(a.arithmeticOps, 1u);
}

TEST(Chime, IndependentOpsShareAConvoy)
{
    // A load and an arithmetic op on unrelated registers co-issue.
    VectorProgram p;
    p.setVl(32);
    p.loadV(0, 0, 1);
    p.addVV(3, 4, 5);
    const auto a = analyzeChimes(p, 64);
    EXPECT_EQ(a.convoys, 1u);
    EXPECT_EQ(a.chimeCycles, 32u);
}

TEST(Chime, StructuralHazardSplitsMemoryOps)
{
    // Two loads cannot share the single memory unit.
    VectorProgram p;
    p.setVl(16);
    p.loadV(0, 0, 1);
    p.loadV(1, 100, 1);
    const auto a = analyzeChimes(p, 64);
    EXPECT_EQ(a.convoys, 2u);
}

TEST(Chime, DataHazardSplitsDependentArithmetic)
{
    VectorProgram p;
    p.setVl(16);
    p.loadV(0, 0, 1);
    p.mulSV(1, 0); // reads v0 written this convoy
    const auto a = analyzeChimes(p, 64);
    EXPECT_EQ(a.convoys, 2u);
}

TEST(Chime, SetVlChangesConvoyLength)
{
    VectorProgram p;
    p.setVl(16);
    p.loadV(0, 0, 1);
    p.setVl(64);
    p.loadV(1, 100, 1);
    const auto a = analyzeChimes(p, 64);
    EXPECT_EQ(a.convoys, 2u);
    EXPECT_EQ(a.chimeCycles, 16u + 64u);
    EXPECT_EQ(a.elementOps, 80u);
}

TEST(Chime, ScalarMemLoadCountsOneElement)
{
    VectorProgram p;
    p.setVl(64);
    p.loadScalarFromMem(5);
    const auto a = analyzeChimes(p, 64);
    EXPECT_EQ(a.memoryOps, 1u);
    EXPECT_EQ(a.elementOps, 1u);
    EXPECT_EQ(a.convoys, 1u);
    EXPECT_EQ(a.chimeCycles, 1u);
}

TEST(Chime, TwoMemoryPipesMergeLoadConvoys)
{
    VectorProgram p;
    p.setVl(16);
    p.loadV(0, 0, 1);
    p.loadV(1, 100, 1);
    EXPECT_EQ(analyzeChimes(p, 64).convoys, 2u);
    EXPECT_EQ(analyzeChimes(p, 64, ChimeUnits{2, 1}).convoys, 1u);
}

TEST(Chime, ExtraUnitsCannotBeatDataHazards)
{
    // A dependent chain stays serial however many pipes exist.
    VectorProgram p;
    p.setVl(16);
    p.loadV(0, 0, 1);
    p.mulSV(1, 0);
    p.addSV(2, 1);
    const auto wide = analyzeChimes(p, 64, ChimeUnits{4, 4});
    EXPECT_EQ(wide.convoys, 3u);
}

TEST(Chime, SaxpyProgramScalesWithLength)
{
    VectorProgram p;
    emitSaxpy(p, 64, 2.0, 0, 1, 10000, 1, 640);
    const auto a = analyzeChimes(p, 64);
    // 10 strips x 3 convoys.
    EXPECT_EQ(a.convoys, 30u);
    EXPECT_EQ(a.chimeCycles, 30u * 64u);
    // Chime time per element = 3: the T_elem floor of Equation (1)
    // once memory behaves (cache hits).
    EXPECT_DOUBLE_EQ(static_cast<double>(a.chimeCycles) / 640.0, 3.0);
}

} // namespace
} // namespace vcache
