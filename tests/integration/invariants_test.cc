/**
 * Randomised invariant checks: whatever the workload, every cache
 * organisation must keep its books straight.
 */

#include <gtest/gtest.h>

#include "cache/classify.hh"
#include "cache/factory.hh"
#include "sim/runner.hh"
#include "trace/multistride.hh"
#include "trace/vcm.hh"
#include "util/rng.hh"

namespace vcache
{
namespace
{

class AllOrganizations : public testing::TestWithParam<Organization>
{
};

TEST_P(AllOrganizations, StatsAreConsistentUnderRandomTraffic)
{
    CacheConfig config;
    config.organization = GetParam();
    config.indexBits = 7; // small cache: plenty of evictions
    config.associativity = 4;

    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const auto cache = makeCache(config);
        Rng rng(seed);
        std::uint64_t accesses = 0;
        for (int i = 0; i < 20000; ++i) {
            const Addr a = rng.uniformInt(0, 4096);
            const auto type = rng.bernoulli(0.3) ? AccessType::Write
                                                 : AccessType::Read;
            cache->access(a, type);
            ++accesses;
        }
        const auto &s = cache->stats();
        EXPECT_EQ(s.accesses, accesses);
        EXPECT_EQ(s.hits + s.misses, s.accesses);
        EXPECT_EQ(s.reads + s.writes, s.accesses);
        EXPECT_LE(s.evictions, s.misses);
        EXPECT_LE(s.writebacks, s.evictions);
        EXPECT_LE(s.writebacks, s.writes);
        EXPECT_LE(cache->validLines(), cache->numLines());
        // Valid lines = distinct fills that were not displaced:
        // misses - evictions.
        EXPECT_EQ(cache->validLines(), s.misses - s.evictions);
        EXPECT_GE(cache->utilization(), 0.0);
        EXPECT_LE(cache->utilization(), 1.0);
    }
}

TEST_P(AllOrganizations, ClassifierTotalsEqualMisses)
{
    CacheConfig config;
    config.organization = GetParam();
    config.indexBits = 7;
    config.associativity = 4;
    const auto cache = makeCache(config);

    const auto trace = generateMultistrideTrace(
        MultistrideParams{256, 24, 0.25, 128, 0, 3}, 17);
    const auto breakdown = classifyTrace(*cache, trace);
    EXPECT_EQ(breakdown.total(), cache->stats().misses);
    // Distinct lines touched equals the compulsory count.
    EXPECT_GT(breakdown.compulsory, 0u);
}

TEST_P(AllOrganizations, ResetIsEquivalentToFreshCache)
{
    CacheConfig config;
    config.organization = GetParam();
    config.indexBits = 7;
    config.associativity = 4;

    const auto trace = generateVcmTrace(
        []{
            VcmParams p;
            p.blockingFactor = 128;
            p.reuseFactor = 4;
            p.maxStride = 128;
            p.blocks = 2;
            return p;
        }(), 23);

    const auto fresh = makeCache(config);
    const auto fresh_stats = runTraceThroughCache(*fresh, trace);

    const auto reused = makeCache(config);
    runTraceThroughCache(*reused, trace);
    reused->reset();
    const auto reused_stats = runTraceThroughCache(*reused, trace);

    EXPECT_EQ(fresh_stats.hits, reused_stats.hits);
    EXPECT_EQ(fresh_stats.misses, reused_stats.misses);
    EXPECT_EQ(fresh_stats.writebacks, reused_stats.writebacks);
}

TEST_P(AllOrganizations, ContainsAgreesWithHits)
{
    CacheConfig config;
    config.organization = GetParam();
    config.indexBits = 7; // 127 is a Mersenne prime
    config.associativity = 2;
    const auto cache = makeCache(config);

    Rng rng(31);
    for (int i = 0; i < 5000; ++i) {
        const Addr a = rng.uniformInt(0, 512);
        const bool resident = cache->contains(a);
        const bool hit = cache->access(a).hit;
        EXPECT_EQ(resident, hit) << "address " << a;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Organizations, AllOrganizations,
    testing::Values(Organization::DirectMapped,
                    Organization::SetAssociative,
                    Organization::FullyAssociative,
                    Organization::PrimeMapped,
                    Organization::XorMapped,
                    Organization::PrimeSetAssociative),
    [](const testing::TestParamInfo<Organization> &param_info) {
        switch (param_info.param) {
          case Organization::DirectMapped:
            return std::string("Direct");
          case Organization::SetAssociative:
            return std::string("SetAssoc");
          case Organization::FullyAssociative:
            return std::string("Full");
          case Organization::PrimeMapped:
            return std::string("Prime");
          case Organization::XorMapped:
            return std::string("Xor");
          case Organization::PrimeSetAssociative:
            return std::string("PrimeAssoc");
        }
        return std::string("Unknown");
    });

} // namespace
} // namespace vcache
