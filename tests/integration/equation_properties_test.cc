/**
 * Property tests tying Equations (1)-(8) to the concrete machine
 * models: the closed forms must equal direct enumeration over the
 * stride distribution, and the per-stride conflict counts they are
 * built from must match what the real cache/memory objects do.
 */

#include <gtest/gtest.h>

#include "analytic/cc_model.hh"
#include "analytic/mm_model.hh"
#include "cache/direct.hh"
#include "cache/prime.hh"
#include "core/defaults.hh"
#include "memory/sweep_model.hh"
#include "numtheory/divisors.hh"
#include "numtheory/gcd.hh"
#include "sim/runner.hh"

namespace vcache
{
namespace
{

TEST(EquationProperties, MmSelfInterferenceEqualsStrideAverage)
{
    // I_s^M is exactly the expectation of the per-stride sweep stall
    // formula over the non-unit strides 2..M (the paper's bracket).
    for (unsigned bank_bits : {4u, 5u, 6u}) {
        for (std::uint64_t tm : {2ull, 5ull, 8ull, 13ull, 16ull}) {
            MachineParams m = paperMachineM32();
            m.bankBits = bank_bits;
            m.memoryTime = tm;
            const std::uint64_t banks = m.banks();
            if (tm >= banks)
                continue;

            double sum = 0.0;
            for (std::uint64_t s = 2; s <= banks; ++s)
                sum += sweepStallCycles(banks, s, m.mvl, tm);
            const double p1 = 0.25;
            const double expect =
                (1.0 - p1) / static_cast<double>(banks - 1) * sum;
            EXPECT_NEAR(selfInterferenceMmSum(m, p1), expect,
                        1e-9 * (1.0 + expect))
                << "M=" << banks << " tm=" << tm;
        }
    }
}

TEST(EquationProperties, CcSelfInterferenceEqualsStrideAverage)
{
    // I_s^C(B) is t_m times the expected overflow B - C/gcd(C, s)
    // over strides 2..C.
    MachineParams m = paperMachineM32();
    const std::uint64_t c = m.cacheLines(CacheScheme::Direct);
    for (double b : {64.0, 100.0, 1000.0, 4096.0, 8191.0}) {
        double sum = 0.0;
        for (std::uint64_t s = 2; s <= c; ++s) {
            const double coverage =
                static_cast<double>(c / gcd(c, s % c == 0 ? c : s % c));
            if (b > coverage)
                sum += b - coverage;
        }
        const double p1 = 0.25;
        const double expect = (1.0 - p1) /
                              static_cast<double>(c - 1) * sum *
                              static_cast<double>(m.memoryTime);
        EXPECT_NEAR(selfInterferenceDirectSum(m, b, p1), expect,
                    1e-6 * (1.0 + expect))
            << "B=" << b;
    }
}

class StrideConflicts : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(StrideConflicts, DirectSweepDisplacementsMatchCoverageFormula)
{
    // Equation (5)'s per-stride ingredient, measured on the real
    // cache: loading a B-element stride-s vector into the cold cache
    // displaces exactly B - C/gcd(C, s) of its own elements ("there
    // will be B - C/gcd(C, s1) self-interferences").
    const std::uint64_t s = GetParam();
    const std::uint64_t b = 4096;
    const AddressLayout layout(0, 13, 32);
    DirectMappedCache cache(layout);

    std::uint64_t displacements = 0;
    for (std::uint64_t i = 0; i < b; ++i)
        displacements += cache.access(s * i).evicted;

    const std::uint64_t coverage = sweepCoverage(8192, s);
    const std::uint64_t expect = b > coverage ? b - coverage : 0;
    EXPECT_EQ(displacements, expect) << "stride " << s;
}

TEST_P(StrideConflicts, PrimeSweepDisplacementsMatchEquation8Premise)
{
    // Equation (8)'s premise: only strides that are multiples of the
    // prime cache size self-interfere at all.
    const std::uint64_t s = GetParam();
    const std::uint64_t b = 4096;
    const AddressLayout layout(0, 13, 32);
    PrimeMappedCache cache(layout);

    std::uint64_t displacements = 0;
    for (std::uint64_t i = 0; i < b; ++i)
        displacements += cache.access(s * i).evicted;

    if (s % 8191 == 0)
        EXPECT_EQ(displacements, b - 1); // everything on one line
    else
        EXPECT_EQ(displacements, 0u) << "stride " << s;
}

INSTANTIATE_TEST_SUITE_P(
    Strides, StrideConflicts,
    testing::Values(1ull, 2ull, 3ull, 4ull, 8ull, 16ull, 64ull,
                    100ull, 512ull, 1024ull, 2048ull, 4096ull,
                    8191ull, 8192ull, 12345ull));

TEST(EquationProperties, BlockTimeMatchesMmSimulatorExactly)
{
    // Equation (1) with T_elem = 1 against the simulator on a
    // conflict-free unit-stride block: identical cycle counts.
    MachineParams m = paperMachineM32();
    for (std::uint64_t b : {64ull, 100ull, 1024ull, 4000ull}) {
        Trace trace;
        VectorOp op;
        op.first = VectorRef{0, 1, b};
        trace.push_back(op);
        const auto r = simulateMm(m, trace);
        EXPECT_DOUBLE_EQ(static_cast<double>(r.totalCycles),
                         blockTime(m, static_cast<double>(b), 1.0))
            << "B=" << b;
    }
}

TEST(EquationProperties, PrimeSelfInterferenceScalesWithBlock)
{
    // Equation (8) is linear in (B - 1).
    const MachineParams m = paperMachineM32();
    const double base = selfInterferencePrime(m, 2.0, 0.25);
    for (double b : {3.0, 11.0, 1001.0}) {
        EXPECT_NEAR(selfInterferencePrime(m, b, 0.25),
                    base * (b - 1.0), 1e-9 * b);
    }
}

} // namespace
} // namespace vcache
