/**
 * Integration tests: whole-stack scenarios wiring workload
 * generators, caches, memory, simulators and the analytic model
 * together, checking the paper's claims end to end.
 */

#include <gtest/gtest.h>

#include "core/vcache.hh"

namespace vcache
{
namespace
{

TEST(EndToEnd, VcmThroughAllThreeMachinesOrdersLikeTheModel)
{
    MachineParams machine = paperMachineM32();
    machine.memoryTime = 32;

    VcmParams p;
    p.blockingFactor = 2048;
    p.reuseFactor = 16;
    p.pDoubleStream = 0.0;
    p.maxStride = 8192;
    p.blocks = 4;

    RunningStats mm, direct, prime;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto cc_trace = generateVcmTrace(p, seed);
        direct.add(simulateCc(machine, CacheScheme::Direct, cc_trace)
                       .cyclesPerResult());
        prime.add(simulateCc(machine, CacheScheme::Prime, cc_trace)
                      .cyclesPerResult());

        VcmParams pm = p;
        pm.maxStride = machine.banks();
        mm.add(simulateMm(machine, generateVcmTrace(pm, seed))
                   .cyclesPerResult());
    }

    // The central ordering of the paper, measured not modelled.
    EXPECT_LT(prime.mean(), direct.mean());
    EXPECT_LT(prime.mean(), mm.mean());

    // And the model agrees on direction and rough magnitude.
    WorkloadParams w = paperWorkload();
    w.blockingFactor = 2048;
    w.reuseFactor = 16;
    w.pDoubleStream = 0.0;
    w.totalData = 4 * 2048;
    const auto model = compareMachines(machine, w);
    EXPECT_LT(model.prime, model.direct);
    EXPECT_NEAR(prime.mean(), model.prime, model.prime * 0.35);
}

TEST(EndToEnd, BlockedFftPrimeWinsInSimAndModel)
{
    MachineParams machine = paperMachineM64();
    machine.memoryTime = 32;

    const Fft2dParams shape{1024, 512, 0}; // b2=1024, b1=512
    const auto trace = generateFft2dTrace(shape);

    const auto direct = simulateCc(machine, CacheScheme::Direct, trace);
    const auto prime = simulateCc(machine, CacheScheme::Prime, trace);
    EXPECT_LT(prime.missRatio() * 3.0, direct.missRatio());
    EXPECT_LT(prime.totalCycles, direct.totalCycles);

    const FftShape model_shape{512, 1024};
    EXPECT_LT(fftCyclesPerPointCc(machine, CacheScheme::Prime,
                                  model_shape) *
                  1.5,
              fftCyclesPerPointCc(machine, CacheScheme::Direct,
                                  model_shape));
}

TEST(EndToEnd, SubblockPlannedBlockIsAllHitsOnReuse)
{
    // Plan a conflict-free block for an awkward leading dimension,
    // sweep it 4 times through the CC machine: only the first sweep
    // misses.
    const std::uint64_t lead = 10000;
    const auto choice = chooseConflictFreeBlocking(lead, 8191);
    ASSERT_GT(choice.b1, 0u);

    const SubblockParams sp{lead, choice.b1, choice.b2, 0, 4};
    const auto trace = generateSubblockTrace(sp);

    MachineParams machine = paperMachineM32();
    const auto r = simulateCc(machine, CacheScheme::Prime, trace);
    EXPECT_EQ(r.misses, choice.elements());
    EXPECT_EQ(r.compulsoryMisses, r.misses);
    EXPECT_EQ(r.hits, 3 * choice.elements());
}

TEST(EndToEnd, LuDecompositionPrimeNotWorse)
{
    const auto trace = generateLuTrace(LuParams{64, 16, 0});
    const AddressLayout layout(0, 13, 32);
    DirectMappedCache direct(layout);
    PrimeMappedCache prime(layout);
    const auto ds = runTraceThroughCache(direct, trace);
    const auto ps = runTraceThroughCache(prime, trace);
    EXPECT_LE(ps.missRatio(), ds.missRatio() * 1.05);
}

TEST(EndToEnd, PrefetchingDoesNotRescueTheDirectCache)
{
    // Fu & Patel prefetching on the direct-mapped cache vs the bare
    // prime-mapped cache, on the conflict-heavy FFT row phase.
    const auto trace = generateFft2dTrace(Fft2dParams{1024, 512, 0});
    const AddressLayout layout(0, 13, 32);

    DirectMappedCache direct(layout);
    PrefetchingCache front(direct, PrefetchPolicy::Stride, 2);
    const auto with_prefetch = runTraceWithPrefetch(front, trace);

    PrimeMappedCache prime(layout);
    const auto bare_prime = runTraceThroughCache(prime, trace);

    EXPECT_LT(bare_prime.missRatio(), with_prefetch.missRatio());
}

TEST(EndToEnd, TraceFileRoundTripPreservesSimulation)
{
    const auto original = generateMultistrideTrace(
        MultistrideParams{512, 16, 0.25, 4096, 0, 2}, 5);
    std::stringstream buffer;
    saveTrace(buffer, original);
    const auto loaded = loadTrace(buffer);

    MachineParams machine = paperMachineM32();
    const auto a = simulateCc(machine, CacheScheme::Prime, original);
    const auto b = simulateCc(machine, CacheScheme::Prime, loaded);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.misses, b.misses);
}

TEST(EndToEnd, HardwarePathMatchesFunctionalPrimeCache)
{
    // The Figure-1 incremental index generator and the prime cache's
    // functional index must agree along any strided walk -- the
    // hardware really implements the mapping the model assumes.
    const AddressLayout layout(0, 13, 32);
    MersenneIndexGenerator gen(layout);
    PrimeMappedCache cache(layout);

    Rng rng(2026);
    for (int trial = 0; trial < 20; ++trial) {
        const Addr base = rng.uniformInt(0, 1u << 24);
        const auto stride =
            static_cast<std::int64_t>(rng.uniformInt(1, 16384));
        gen.setStride(stride);
        std::uint64_t idx = gen.start(base);
        for (std::uint64_t i = 0; i < 500; ++i) {
            const Addr addr =
                base + static_cast<Addr>(stride) * i;
            EXPECT_EQ(idx, gen.indexOf(addr))
                << "trial " << trial << " i " << i;
            idx = gen.step();
        }
    }
}

TEST(EndToEnd, MissClassifierExplainsSchemeDifference)
{
    // The entire gap between the two schemes on the multistride
    // workload must be conflict misses: compulsory counts are equal
    // and capacity misses are comparable.
    const auto trace = generateMultistrideTrace(
        MultistrideParams{2048, 32, 0.25, 8192, 0, 4}, 11);
    const AddressLayout layout(0, 13, 32);

    DirectMappedCache direct(layout);
    PrimeMappedCache prime(layout);
    const auto db = classifyTrace(direct, trace);
    const auto pb = classifyTrace(prime, trace);

    EXPECT_EQ(db.compulsory, pb.compulsory);
    EXPECT_GT(db.conflict, 2 * pb.conflict);
}

} // namespace
} // namespace vcache
