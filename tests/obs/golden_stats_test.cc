/**
 * Golden render of the full stats pipeline: one small VCM run on both
 * mapping schemes, dumped through the StatDump grammar as aligned
 * text and as JSON, compared byte-for-byte against checked-in golden
 * files.  Any change to counter names, registration order, histogram
 * bucketing, interval rows or the renderers shows up here as a diff.
 *
 * To regenerate after an intentional change:
 *
 *     VCACHE_REGOLD=1 ./test_obs --gtest_filter='GoldenStats.*'
 *
 * and commit the rewritten tests/obs/golden_stats.{txt,json}.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/defaults.hh"
#include "obs/tracing_observer.hh"
#include "sim/cc_sim.hh"
#include "trace/vcm.hh"
#include "util/statdump.hh"

namespace vcache
{
namespace
{

StatDump
goldenDump()
{
    VcmParams p;
    p.blockingFactor = 256;
    p.reuseFactor = 4;
    p.blocks = 2;
    p.maxStride = 2048;
    const Trace trace = generateVcmTrace(p, 7);

    TracingConfig cfg;
    cfg.statsInterval = 2000;

    StatDump dump;
    for (const auto scheme :
         {CacheScheme::Direct, CacheScheme::Prime}) {
        TracingObserver obs(scheme == CacheScheme::Direct ? "cc_direct"
                                                          : "cc_prime",
                            cfg);
        CcSimulator sim(paperMachineM32(), scheme);
        sim.run(trace, obs);
        obs.dumpTo(dump);
    }
    return dump;
}

std::string
goldenPath(const char *leaf)
{
    return std::string(VCACHE_OBS_GOLDEN_DIR) + "/" + leaf;
}

void
checkAgainstGolden(const std::string &got, const char *leaf)
{
    const std::string path = goldenPath(leaf);
    if (std::getenv("VCACHE_REGOLD") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << path;
        out << got;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << path << " missing; run with VCACHE_REGOLD=1 to create it";
    std::ostringstream want;
    want << in.rdbuf();
    EXPECT_EQ(got, want.str()) << "golden mismatch: " << path;
}

TEST(GoldenStats, Text)
{
    std::ostringstream os;
    goldenDump().print(os);
    checkAgainstGolden(os.str(), "golden_stats.txt");
}

TEST(GoldenStats, Json)
{
    std::ostringstream os;
    goldenDump().printJson(os);
    checkAgainstGolden(os.str(), "golden_stats.json");
}

} // namespace
} // namespace vcache
