/**
 * Tests for the miss-forensics layer: the 3C ClassifyingObserver,
 * the exact reuse-distance profiler and the set-pressure heatmap.
 *
 * The golden claims are the paper's: on power-of-two strides the
 * prime mapping's conflict class is empty while the direct mapping
 * drowns in it, and a fully-associative cache reports zero conflicts
 * by construction (its shadow is itself).
 */

#include <algorithm>
#include <random>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "cache/factory.hh"
#include "core/defaults.hh"
#include "obs/forensics.hh"
#include "sim/runner.hh"
#include "trace/vcm.hh"

namespace vcache
{
namespace
{

/** The power-of-two-stride workload of the golden claims. */
Trace
powerOfTwoTrace()
{
    VcmParams p;
    p.blockingFactor = 2048;
    p.reuseFactor = 4;
    p.pDoubleStream = 0.0;
    p.blocks = 2;
    p.maxStride = 8192;
    p.fixedStride1 = 1024; // gcd(1024, 8191) == 1; gcd(1024, 8192) big
    return generateVcmTrace(p, 7);
}

TEST(Forensics, PrimeRemovesConflictsOnPowerOfTwoStrides)
{
    const Trace trace = powerOfTwoTrace();
    const MachineParams machine = paperMachineM64();

    ClassifyingObserver direct("cc_direct");
    simulateCc(machine, CacheScheme::Direct, trace, direct);
    ClassifyingObserver prime("cc_prime");
    simulateCc(machine, CacheScheme::Prime, trace, prime);

    // The prime mapping spreads stride 1024 across all 8191 frames:
    // no line of a block ever collides with another live one.
    EXPECT_EQ(prime.breakdown().conflict, 0u);

    // The direct mapping folds stride 1024 onto 8 frames: every
    // reuse pass thrashes, and conflicts dominate its misses.
    const MissBreakdown &d = direct.breakdown();
    EXPECT_GT(d.conflict, 0u);
    EXPECT_GT(d.conflict, d.compulsory);
    EXPECT_GT(d.conflict, d.capacity);
    EXPECT_GT(2 * d.conflict, d.total());
}

TEST(Forensics, FullyAssociativeHasZeroConflictByConstruction)
{
    const Trace trace = powerOfTwoTrace();
    MachineParams machine = paperMachineM64();
    CacheConfig config;
    config.organization = Organization::FullyAssociative;
    config.indexBits = machine.cacheIndexBits;

    ClassifyingObserver obs("cc_full");
    simulateCc(machine, config, trace, obs);

    // The shadow LRU *is* a fully-associative LRU of equal capacity:
    // whatever it holds, the cache holds, so no miss can be a
    // conflict.
    EXPECT_GT(obs.breakdown().total(), 0u);
    EXPECT_EQ(obs.breakdown().conflict, 0u);
}

TEST(Forensics, BreakdownTotalsMatchSimulatedMisses)
{
    const Trace trace = powerOfTwoTrace();
    const MachineParams machine = paperMachineM64();

    ClassifyingObserver obs("cc_direct");
    const SimResult r =
        simulateCc(machine, CacheScheme::Direct, trace, obs);

    EXPECT_EQ(obs.breakdown().total(), r.misses);
    const Counter *acc = obs.registry().findCounter("accesses");
    ASSERT_NE(acc, nullptr);
    EXPECT_EQ(acc->value, r.hits + r.misses);
}

TEST(Forensics, AttachingClassifierDoesNotPerturbTiming)
{
    const Trace trace = powerOfTwoTrace();
    const MachineParams machine = paperMachineM64();

    const SimResult plain =
        simulateCc(machine, CacheScheme::Prime, trace);
    ClassifyingObserver obs("cc_prime");
    const SimResult observed =
        simulateCc(machine, CacheScheme::Prime, trace, obs);

    EXPECT_EQ(plain.totalCycles, observed.totalCycles);
    EXPECT_EQ(plain.hits, observed.hits);
    EXPECT_EQ(plain.misses, observed.misses);
    EXPECT_EQ(plain.stallCycles, observed.stallCycles);
}

TEST(Forensics, StreamAttributionCoversAllMisses)
{
    VcmParams p;
    p.blockingFactor = 1024;
    p.reuseFactor = 4;
    p.pDoubleStream = 0.5; // exercise the second operand
    p.blocks = 2;
    p.maxStride = 8192;
    const Trace trace = generateVcmTrace(p, 11);

    ClassifyingObserver obs("cc_direct");
    simulateCc(paperMachineM64(), CacheScheme::Direct, trace, obs);

    std::uint64_t attributed = 0, accesses = 0;
    bool sawSecond = false;
    for (const auto &s : obs.streams()) {
        attributed += s.misses.total();
        accesses += s.accesses;
        if (s.operand == StreamOperand::Second)
            sawSecond = true;
    }
    EXPECT_EQ(attributed, obs.breakdown().total());
    const Counter *acc = obs.registry().findCounter("accesses");
    ASSERT_NE(acc, nullptr);
    EXPECT_EQ(accesses, acc->value);
    EXPECT_TRUE(sawSecond);
}

TEST(Forensics, ConflictEvictionInstantsReachTheTrace)
{
    const Trace trace = powerOfTwoTrace();
    std::ostringstream out;
    {
        TraceEventWriter writer(out);
        ClassifyingObserver obs("cc_direct", ForensicsConfig{},
                                &writer, 0);
        simulateCc(paperMachineM64(), CacheScheme::Direct, trace, obs);
        writer.finish();
    }
    const std::string json = out.str();
    EXPECT_NE(json.find("conflict_evict"), std::string::npos);
    EXPECT_NE(json.find("\"evictor\""), std::string::npos);
    EXPECT_NE(json.find("\"victim\""), std::string::npos);
}

// ---------------------------------------------------------------------
// ReuseDistanceProfiler
// ---------------------------------------------------------------------

TEST(ReuseDistance, KnownSequence)
{
    ReuseDistanceProfiler prof;
    prof.access(1); // cold
    prof.access(2); // cold
    prof.access(1); // one distinct line (2) since: distance 1
    prof.access(1); // immediate reuse: distance 0
    prof.access(2); // distance 1
    EXPECT_EQ(prof.coldAccesses(), 2u);
    EXPECT_EQ(prof.histogram().samples(), 3u);
    EXPECT_EQ(prof.histogram().bucket(0), 1u); // the distance-0 reuse
    EXPECT_EQ(prof.histogram().bucket(1), 2u); // the distance-1 reuses
}

TEST(ReuseDistance, SweepMissRatioCurve)
{
    // Two passes over 8 lines: 8 cold accesses, then 8 reuses at
    // stack distance 7.
    ReuseDistanceProfiler prof;
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 8; ++a)
            prof.access(a);
    EXPECT_EQ(prof.coldAccesses(), 8u);
    EXPECT_EQ(prof.histogram().samples(), 8u);
    EXPECT_EQ(prof.histogram().max(), 7u);
    // Capacity 8 holds the whole sweep: only cold misses remain.
    EXPECT_DOUBLE_EQ(prof.missRatioAtCapacity(8), 0.5);
    // Capacity 4 < distance 7: every reuse misses too.
    EXPECT_DOUBLE_EQ(prof.missRatioAtCapacity(4), 1.0);
    EXPECT_DOUBLE_EQ(prof.missRatioAtCapacity(0), 1.0);
}

TEST(ReuseDistance, MatchesNaiveStackDistance)
{
    // Randomized cross-check against an O(n^2) reference, with
    // enough distinct lines and reaccess churn to trigger both tree
    // growth and slot compaction.
    std::mt19937_64 rng(321);
    std::uniform_int_distribution<Addr> pick(0, 255);

    ReuseDistanceProfiler prof;
    std::vector<Addr> stack; // most recent first
    Log2Histogram expected;
    std::uint64_t expectedCold = 0;

    for (int i = 0; i < 5000; ++i) {
        const Addr line = pick(rng);
        const auto it = std::find(stack.begin(), stack.end(), line);
        if (it == stack.end()) {
            ++expectedCold;
        } else {
            expected.add(
                static_cast<std::uint64_t>(it - stack.begin()));
            stack.erase(it);
        }
        stack.insert(stack.begin(), line);
        prof.access(line);
    }

    EXPECT_EQ(prof.coldAccesses(), expectedCold);
    ASSERT_EQ(prof.histogram().samples(), expected.samples());
    for (std::size_t b = 0; b < Log2Histogram::kBuckets; ++b)
        EXPECT_EQ(prof.histogram().bucket(b), expected.bucket(b))
            << "bucket " << b;
}

TEST(ReuseDistance, PercentilesAtBucketResolution)
{
    ReuseDistanceProfiler prof;
    // 100 reuses at distance 0 and 1 reuse at distance ~64.
    for (int i = 0; i < 100; ++i) {
        prof.access(1);
    }
    for (Addr a = 10; a < 74; ++a)
        prof.access(a);
    prof.access(1);
    EXPECT_EQ(prof.percentile(0.50), 0u);
    EXPECT_EQ(prof.percentile(1.0), 64u);
}

// ---------------------------------------------------------------------
// SetHeatmap
// ---------------------------------------------------------------------

TEST(SetHeatmap, AccumulatesPerWindowCells)
{
    SetHeatmap heat(100);
    heat.begin(8);
    heat.record(10, 3, false, false);
    heat.record(20, 3, true, true);
    heat.record(150, 5, true, false);
    heat.finish(200);

    ASSERT_EQ(heat.cells().size(), 2u);
    const HeatCell &first = heat.cells()[0];
    EXPECT_EQ(first.window, 0u);
    EXPECT_EQ(first.set, 3u);
    EXPECT_EQ(first.accesses, 2u);
    EXPECT_EQ(first.misses, 1u);
    EXPECT_EQ(first.conflicts, 1u);
    const HeatCell &second = heat.cells()[1];
    EXPECT_EQ(second.window, 1u);
    EXPECT_EQ(second.set, 5u);
    EXPECT_EQ(second.accesses, 1u);
}

TEST(SetHeatmap, DisabledRecordsNothing)
{
    SetHeatmap heat;
    heat.begin(8);
    heat.record(10, 3, true, true);
    heat.finish(20);
    EXPECT_TRUE(heat.cells().empty());
    EXPECT_FALSE(heat.enabled());
}

TEST(SetHeatmap, CsvRowsCarryTheLabel)
{
    SetHeatmap heat(50);
    heat.begin(4);
    heat.record(0, 1, true, false);
    heat.finish(10);
    std::ostringstream os;
    heat.writeCsv(os, "cc_direct");
    EXPECT_EQ(os.str(), "cc_direct,0,1,1,1,0\n");
}

} // namespace
} // namespace vcache
