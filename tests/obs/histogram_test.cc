/** Tests for the log2-bucketed observability histogram. */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/histogram.hh"
#include "util/statdump.hh"

namespace vcache
{
namespace
{

TEST(Log2Histogram, BucketBoundaries)
{
    EXPECT_EQ(Log2Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Log2Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Log2Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Log2Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Log2Histogram::bucketOf(7), 3u);
    EXPECT_EQ(Log2Histogram::bucketOf(8), 4u);
    EXPECT_EQ(Log2Histogram::bucketOf(~std::uint64_t{0}), 64u);
}

TEST(Log2Histogram, BucketLabels)
{
    EXPECT_EQ(Log2Histogram::bucketLabel(0), "0");
    EXPECT_EQ(Log2Histogram::bucketLabel(1), "1");
    EXPECT_EQ(Log2Histogram::bucketLabel(2), "2-3");
    EXPECT_EQ(Log2Histogram::bucketLabel(3), "4-7");
    EXPECT_EQ(Log2Histogram::bucketLabel(4), "8-15");
}

TEST(Log2Histogram, AccumulatesMoments)
{
    Log2Histogram h;
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.usedBuckets(), 0u);

    h.add(0);
    h.add(1);
    h.add(5);
    h.add(6, 2); // weighted: two samples of value 6
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.sampleSum(), 18u);
    EXPECT_DOUBLE_EQ(h.mean(), 18.0 / 5.0);
    EXPECT_EQ(h.max(), 6u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(3), 3u); // 5 once, 6 twice
    EXPECT_EQ(h.usedBuckets(), 4u);
}

TEST(Log2Histogram, MergeAndClear)
{
    Log2Histogram a, b;
    a.add(3);
    b.add(100);
    b.add(1);
    a.merge(b);
    EXPECT_EQ(a.samples(), 3u);
    EXPECT_EQ(a.sampleSum(), 104u);
    EXPECT_EQ(a.max(), 100u);
    a.clear();
    EXPECT_EQ(a.samples(), 0u);
    EXPECT_EQ(a.max(), 0u);
    EXPECT_EQ(a.usedBuckets(), 0u);
}

TEST(Log2Histogram, DumpSkipsEmptyBuckets)
{
    Log2Histogram h;
    h.add(0);
    h.add(9);
    StatDump dump;
    {
        StatDump::Group g(dump, "occ");
        h.dumpTo(dump);
    }
    std::ostringstream os;
    dump.print(os);
    const auto out = os.str();
    EXPECT_NE(out.find("occ.samples"), std::string::npos);
    EXPECT_NE(out.find("occ.bucket_0"), std::string::npos);
    EXPECT_NE(out.find("occ.bucket_8-15"), std::string::npos);
    EXPECT_EQ(out.find("occ.bucket_1 "), std::string::npos);
    EXPECT_EQ(out.find("occ.bucket_2-3"), std::string::npos);
}

} // namespace
} // namespace vcache
