/** Tests for the interval-statistics accumulator. */

#include <gtest/gtest.h>

#include "obs/interval.hh"

namespace vcache
{
namespace
{

TEST(IntervalAccumulator, DisabledCollectsNothing)
{
    IntervalAccumulator acc(0);
    EXPECT_FALSE(acc.enabled());
    acc.begin(16);
    acc.record(5, 1, false, 0);
    acc.finish(100);
    EXPECT_TRUE(acc.rows().empty());
}

TEST(IntervalAccumulator, RollsFixedWindows)
{
    IntervalAccumulator acc(100);
    acc.begin(8);
    // Window [0, 100): 2 accesses, 1 miss, 10 stall cycles.
    acc.record(10, 0, false, 0);
    acc.record(50, 1, true, 10);
    // Window [100, 200): 1 access.
    acc.record(150, 1, false, 0);
    acc.finish(160);

    const auto &rows = acc.rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].startCycle, 0u);
    EXPECT_EQ(rows[0].endCycle, 100u);
    EXPECT_EQ(rows[0].accesses, 2u);
    EXPECT_EQ(rows[0].misses, 1u);
    EXPECT_EQ(rows[0].stallCycles, 10u);
    EXPECT_EQ(rows[0].setsTouched, 2u);
    EXPECT_DOUBLE_EQ(rows[0].missRatio(), 0.5);
    EXPECT_DOUBLE_EQ(rows[0].stallFraction(), 0.1);
    EXPECT_EQ(rows[1].startCycle, 100u);
    EXPECT_EQ(rows[1].accesses, 1u);
    EXPECT_EQ(rows[1].setsTouched, 1u);
}

TEST(IntervalAccumulator, FastForwardsQuietWindows)
{
    IntervalAccumulator acc(10);
    acc.begin(4);
    acc.record(1, 0, false, 0);
    // A long quiet gap: no empty windows should be materialized.
    acc.record(1005, 0, false, 0);
    acc.finish(1006);
    const auto &rows = acc.rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].startCycle, 0u);
    EXPECT_EQ(rows[1].startCycle, 1000u);
    EXPECT_EQ(rows[1].endCycle, 1006u);
}

TEST(IntervalAccumulator, OccupancyCountsPerSetAccesses)
{
    IntervalAccumulator acc(1000);
    acc.begin(8);
    for (int i = 0; i < 9; ++i)
        acc.record(static_cast<Cycles>(i), 3, false, 0); // hot set
    acc.record(20, 5, false, 0);                         // cold set
    acc.finish(21);
    const auto &rows = acc.rows();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].setsTouched, 2u);
    EXPECT_EQ(rows[0].occupancy.samples(), 2u);
    EXPECT_EQ(rows[0].occupancy.max(), 9u);
    // One set in bucket "1", one in "8-15".
    EXPECT_EQ(rows[0].occupancy.bucket(1), 1u);
    EXPECT_EQ(rows[0].occupancy.bucket(4), 1u);
}

TEST(IntervalAccumulator, PerSetCountsResetBetweenWindows)
{
    IntervalAccumulator acc(10);
    acc.begin(4);
    acc.record(1, 2, false, 0);
    acc.record(2, 2, false, 0);
    acc.record(11, 2, false, 0); // same set, next window
    acc.finish(12);
    const auto &rows = acc.rows();
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].occupancy.max(), 2u);
    EXPECT_EQ(rows[1].occupancy.max(), 1u);
}

TEST(IntervalAccumulator, BeginForgetsPreviousRun)
{
    IntervalAccumulator acc(10);
    acc.begin(4);
    acc.record(1, 0, true, 5);
    acc.finish(2);
    EXPECT_EQ(acc.rows().size(), 1u);
    acc.begin(4);
    EXPECT_TRUE(acc.rows().empty());
    acc.record(3, 1, false, 0);
    acc.finish(4);
    ASSERT_EQ(acc.rows().size(), 1u);
    EXPECT_EQ(acc.rows()[0].misses, 0u);
}

} // namespace
} // namespace vcache
