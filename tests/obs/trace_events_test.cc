/** Tests for the Chrome trace-event / Perfetto JSON writer. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/trace_events.hh"

namespace vcache
{
namespace
{

/** Count occurrences of a substring. */
std::size_t
countOf(const std::string &haystack, const std::string &needle)
{
    std::size_t count = 0;
    for (auto pos = haystack.find(needle); pos != std::string::npos;
         pos = haystack.find(needle, pos + 1))
        ++count;
    return count;
}

TEST(TraceEventWriter, EmitsWellFormedDocument)
{
    std::ostringstream os;
    {
        TraceEventWriter w(os);
        w.threadName(0, "cc_direct");
        w.beginDuration("vop", "vector_op", 10, 0,
                        "\"stride\":8,\"length\":64");
        w.instant("miss", "conflict_miss", 12, 0, "\"set\":5");
        w.counter("miss_ratio", 15, 0, 0.25);
        w.endDuration(20, 0);
        EXPECT_EQ(w.written(), 4u);
        EXPECT_EQ(w.dropped(), 0u);
    } // destructor finishes the document

    const auto out = os.str();
    EXPECT_EQ(out.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[",
                        0),
              0u);
    EXPECT_NE(out.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(out.find("\"ph\":\"M\""), std::string::npos);
    EXPECT_NE(out.find("\"args\":{\"stride\":8,\"length\":64}"),
              std::string::npos);
    EXPECT_NE(out.find("]}"), std::string::npos);
    // Balanced braces is a cheap well-formedness proxy (the python
    // validator in scripts/validate_trace.py does the real parse).
    EXPECT_EQ(countOf(out, "{"), countOf(out, "}"));
}

TEST(TraceEventWriter, CapDropsAndReports)
{
    std::ostringstream os;
    {
        TraceEventWriter w(os, 2);
        for (int i = 0; i < 5; ++i)
            w.instant("x", "e", static_cast<Cycles>(i), 0);
        // Metadata is exempt from the cap.
        w.threadName(0, "lane");
        EXPECT_EQ(w.written(), 2u);
        EXPECT_EQ(w.dropped(), 3u);
    }
    const auto out = os.str();
    // The cap is never silent: the dropped count rides in the trace.
    EXPECT_NE(out.find("dropped_events"), std::string::npos);
    EXPECT_NE(out.find("\"value\":3"), std::string::npos);
    EXPECT_NE(out.find("lane"), std::string::npos);
}

TEST(TraceEventWriter, FinishIsIdempotent)
{
    std::ostringstream os;
    TraceEventWriter w(os);
    w.instant("x", "e", 1, 0);
    w.finish();
    const auto len = os.str().size();
    w.finish();
    w.instant("x", "late", 2, 0); // dropped after finish
    EXPECT_EQ(os.str().size(), len);
    EXPECT_EQ(w.dropped(), 1u);
}

TEST(TraceEventWriter, EscapesStrings)
{
    EXPECT_EQ(TraceEventWriter::escape("a\"b\\c\nd"),
              "a\\\"b\\\\c\\nd");
    EXPECT_EQ(TraceEventWriter::escape(std::string(1, '\x01')),
              "\\u0001");
}

} // namespace
} // namespace vcache
