/**
 * The zero-cost contract, checked from the outside: instrumenting a
 * run must never change it.  Every simulator path is run twice --
 * plain (NullObserver) and with a TracingObserver riding along -- and
 * the SimResults must be bit-identical.  The observer's own counters
 * must then reconcile exactly with the SimResult it watched, and the
 * per-set miss histograms must separate the two mapping schemes (the
 * acceptance criterion for the traced direct-vs-prime VCM run).
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/defaults.hh"
#include "obs/observer.hh"
#include "obs/trace_events.hh"
#include "obs/tracing_observer.hh"
#include "sim/cc_sim.hh"
#include "sim/mm_sim.hh"
#include "trace/vcm.hh"

namespace vcache
{
namespace
{

/** Optional timing features layered on the plain simulator. */
enum class Mode
{
    Plain,
    Prefetch,    // stride prefetch, degree 2
    NonBlocking, // lockup-free misses
};

const Trace &
vcmTrace()
{
    VcmParams p;
    p.blockingFactor = 512;
    p.reuseFactor = 6;
    p.blocks = 3;
    p.maxStride = 4096;
    static const Trace trace = generateVcmTrace(p, 42);
    return trace;
}

CcSimulator
makeSim(CacheScheme scheme, Mode mode)
{
    CcSimulator sim(paperMachineM32(), scheme);
    if (mode == Mode::Prefetch)
        sim.enablePrefetch(PrefetchPolicy::Stride, 2);
    if (mode == Mode::NonBlocking)
        sim.setNonBlockingMisses(true);
    return sim;
}

void
expectSameResult(const SimResult &got, const SimResult &want)
{
    EXPECT_EQ(got.totalCycles, want.totalCycles);
    EXPECT_EQ(got.stallCycles, want.stallCycles);
    EXPECT_EQ(got.results, want.results);
    EXPECT_EQ(got.hits, want.hits);
    EXPECT_EQ(got.misses, want.misses);
    EXPECT_EQ(got.compulsoryMisses, want.compulsoryMisses);
}

std::uint64_t
counterValue(const TracingObserver &obs, const std::string &name)
{
    const Counter *c = obs.registry().findCounter(name);
    EXPECT_NE(c, nullptr) << name;
    return c ? c->value : 0;
}

/**
 * Plain run, NullObserver run and TracingObserver run of the same
 * workload must produce identical SimResults; the tracing counters
 * must add up to exactly what the SimResult reports.
 */
void
checkObserved(CacheScheme scheme, Mode mode)
{
    CcSimulator plain = makeSim(scheme, mode);
    const SimResult want = plain.run(vcmTrace());

    NullObserver null_obs;
    CcSimulator nulled = makeSim(scheme, mode);
    expectSameResult(nulled.run(vcmTrace(), null_obs), want);

    TracingObserver traced("cc");
    CcSimulator observed = makeSim(scheme, mode);
    const SimResult got = observed.run(vcmTrace(), traced);
    expectSameResult(got, want);
    EXPECT_EQ(observed.prefetchesIssued(), plain.prefetchesIssued());

    // Counter reconciliation: the observer saw every event exactly
    // once.
    EXPECT_EQ(counterValue(traced, "vector_ops"), vcmTrace().size());
    EXPECT_EQ(counterValue(traced, "hits"), want.hits);
    EXPECT_EQ(counterValue(traced, "misses_compulsory"),
              want.compulsoryMisses);
    EXPECT_EQ(counterValue(traced, "misses_compulsory") +
                  counterValue(traced, "misses_conflict") +
                  counterValue(traced, "misses_nonblocking"),
              want.misses);
    EXPECT_EQ(counterValue(traced, "prefetch_issues"),
              plain.prefetchesIssued());
    if (mode == Mode::NonBlocking) {
        EXPECT_EQ(counterValue(traced, "misses_conflict"), 0u);
    }
    // Every stall cycle is attributed: misses plus (with the
    // prefetcher on) waits for in-flight lines.
    EXPECT_EQ(counterValue(traced, "miss_stall_cycles") +
                  counterValue(traced, "prefetch_late_cycles"),
              want.stallCycles);
    // Per-set bookkeeping covers every demand access.
    EXPECT_EQ(traced.setAccessHistogram().sampleSum(),
              want.hits + want.misses);
    EXPECT_EQ(traced.setMissHistogram().sampleSum(), want.misses);
}

TEST(ObserverEquivalence, VcmDirect)
{
    checkObserved(CacheScheme::Direct, Mode::Plain);
}

TEST(ObserverEquivalence, VcmPrime)
{
    checkObserved(CacheScheme::Prime, Mode::Plain);
}

TEST(ObserverEquivalence, VcmPrefetchDirect)
{
    checkObserved(CacheScheme::Direct, Mode::Prefetch);
}

TEST(ObserverEquivalence, VcmPrefetchPrime)
{
    checkObserved(CacheScheme::Prime, Mode::Prefetch);
}

TEST(ObserverEquivalence, VcmNonBlockingDirect)
{
    checkObserved(CacheScheme::Direct, Mode::NonBlocking);
}

TEST(ObserverEquivalence, VcmNonBlockingPrime)
{
    checkObserved(CacheScheme::Prime, Mode::NonBlocking);
}

TEST(ObserverEquivalence, MmSimulatorUnchanged)
{
    MmSimulator plain(paperMachineM32());
    const SimResult want = plain.run(vcmTrace());

    TracingObserver traced("mm");
    MmSimulator observed(paperMachineM32());
    expectSameResult(observed.run(vcmTrace(), traced), want);
    EXPECT_EQ(counterValue(traced, "vector_ops"), vcmTrace().size());
}

/**
 * The acceptance-criteria artifact in miniature: the same VCM trace
 * through both schemes, and the per-set miss pile-up that direct
 * mapping suffers (the paper's self-interference) visible in the
 * observer's histograms while prime mapping spreads it flat.
 */
TEST(ObserverEquivalence, SchemesSeparateInSetHistograms)
{
    TracingObserver direct("cc_direct");
    {
        CcSimulator sim = makeSim(CacheScheme::Direct, Mode::Plain);
        sim.run(vcmTrace(), direct);
    }
    TracingObserver prime("cc_prime");
    {
        CcSimulator sim = makeSim(CacheScheme::Prime, Mode::Plain);
        sim.run(vcmTrace(), prime);
    }
    // Conflict misses concentrate on few sets under direct mapping;
    // prime mapping's whole point is that they do not.
    EXPECT_GT(direct.setMissHistogram().max(),
              prime.setMissHistogram().max());
}

/**
 * The event stream and interval windows are on-top features: enabling
 * them must not perturb the timing either, and the window rows must
 * tile the run.
 */
TEST(ObserverEquivalence, EventsAndWindowsDoNotPerturbTiming)
{
    CcSimulator plain = makeSim(CacheScheme::Direct, Mode::Plain);
    const SimResult want = plain.run(vcmTrace());

    std::ostringstream sink;
    SimResult got;
    {
        TraceEventWriter writer(sink);
        TracingConfig cfg;
        cfg.statsInterval = 1000;
        TracingObserver traced("cc_direct", cfg, &writer, 0);
        CcSimulator sim = makeSim(CacheScheme::Direct, Mode::Plain);
        got = sim.run(vcmTrace(), traced);
        expectSameResult(got, want);

        ASSERT_FALSE(traced.intervals().empty());
        std::uint64_t accesses = 0;
        for (const auto &row : traced.intervals()) {
            EXPECT_LT(row.startCycle, row.endCycle);
            accesses += row.accesses;
        }
        EXPECT_EQ(accesses, want.hits + want.misses);
        EXPECT_LE(traced.intervals().back().endCycle,
                  want.totalCycles);
    }
    EXPECT_NE(sink.str().find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(sink.str().find("cc_direct"), std::string::npos);
}

} // namespace
} // namespace vcache
