/** Tests for the named counter/histogram registry. */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/registry.hh"
#include "util/statdump.hh"

namespace vcache
{
namespace
{

TEST(ObsRegistry, FindOrCreateReturnsStableReferences)
{
    ObsRegistry reg;
    Counter &hits = reg.counter("hits", "demand hits");
    ++hits;
    hits += 4;
    // Re-registration finds the same instrument; the first
    // description wins.
    Counter &again = reg.counter("hits", "ignored");
    EXPECT_EQ(&hits, &again);
    EXPECT_EQ(hits.value, 5u);

    // Creating more instruments must not invalidate earlier refs.
    for (int i = 0; i < 100; ++i)
        reg.counter("c" + std::to_string(i), "");
    ++again;
    EXPECT_EQ(hits.value, 6u);
    EXPECT_EQ(reg.size(), 101u);
}

TEST(ObsRegistry, HistogramsLiveAlongsideCounters)
{
    ObsRegistry reg;
    Log2Histogram &h = reg.histogram("waits", "bank waits");
    h.add(3);
    EXPECT_EQ(&h, &reg.histogram("waits", ""));
    EXPECT_EQ(reg.histogram("waits", "").samples(), 1u);
}

TEST(ObsRegistry, DumpsInRegistrationOrder)
{
    ObsRegistry reg;
    reg.counter("zeta", "last alphabetically, first registered") += 1;
    reg.histogram("alpha", "").add(2);
    reg.counter("mid", "") += 3;

    StatDump dump;
    reg.dumpTo(dump);
    std::ostringstream os;
    dump.print(os);
    const auto out = os.str();
    const auto z = out.find("zeta");
    const auto a = out.find("alpha.samples");
    const auto m = out.find("\nmid");
    ASSERT_NE(z, std::string::npos);
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(m, std::string::npos);
    EXPECT_LT(z, a);
    EXPECT_LT(a, m);
}

TEST(ObsRegistry, ClearResetsValuesButKeepsRegistrations)
{
    ObsRegistry reg;
    Counter &c = reg.counter("c", "");
    Log2Histogram &h = reg.histogram("h", "");
    c += 7;
    h.add(7);
    reg.clear();
    EXPECT_EQ(c.value, 0u);
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(reg.size(), 2u);
    EXPECT_EQ(&c, &reg.counter("c", ""));
}

TEST(ObsRegistryDeathTest, KindMismatchPanics)
{
    ObsRegistry reg;
    reg.counter("x", "");
    EXPECT_DEATH(reg.histogram("x", ""), "different kind");
}

} // namespace
} // namespace vcache
