/**
 * Tests for the pure point-evaluation API shared by bench/sweep_grid
 * and the serving layer: default pinning against core/defaults,
 * canonical-form/key semantics, validation, engine equivalence and
 * cancellation.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/comparison.hh"
#include "core/defaults.hh"
#include "sim/evaluate.hh"

namespace vcache
{
namespace
{

TEST(EvaluateDefaults, MachineMatchesPaperM64)
{
    // evaluate.cc re-derives the paper machine instead of linking
    // core/defaults (layering); this pin breaks if they ever diverge.
    const MachineParams a = evalMachine(EvalRequest{});
    const MachineParams b = paperMachineM64();
    EXPECT_EQ(a.mvl, b.mvl);
    EXPECT_EQ(a.bankBits, b.bankBits);
    EXPECT_EQ(a.memoryTime, b.memoryTime);
    EXPECT_EQ(a.cacheIndexBits, b.cacheIndexBits);
    EXPECT_EQ(a.bankMapping, b.bankMapping);
    EXPECT_DOUBLE_EQ(a.startupBase, b.startupBase);
    EXPECT_DOUBLE_EQ(a.blockOverhead, b.blockOverhead);
    EXPECT_DOUBLE_EQ(a.stripOverhead, b.stripOverhead);
}

TEST(EvaluateDefaults, WorkloadMatchesPaperWorkload)
{
    const WorkloadParams a = evalWorkload(EvalRequest{});
    const WorkloadParams b = paperWorkload();
    EXPECT_DOUBLE_EQ(a.blockingFactor, b.blockingFactor);
    EXPECT_DOUBLE_EQ(a.reuseFactor, b.reuseFactor);
    EXPECT_DOUBLE_EQ(a.pDoubleStream, b.pDoubleStream);
    EXPECT_DOUBLE_EQ(a.pStride1First, b.pStride1First);
    EXPECT_DOUBLE_EQ(a.pStride1Second, b.pStride1Second);
    EXPECT_DOUBLE_EQ(a.totalData, b.totalData);
}

TEST(EvaluateModel, MatchesCompareMachines)
{
    EvalRequest req;
    req.bankBits = 5;
    req.memoryTime = 32;
    req.blockingFactor = 2048;
    req.sim = false;
    const auto result = evaluatePoint(req);
    ASSERT_TRUE(result.ok());

    MachineParams machine = paperMachineM64();
    machine.bankBits = 5;
    machine.memoryTime = 32;
    WorkloadParams wl = paperWorkload();
    wl.blockingFactor = 2048.0;
    wl.reuseFactor = 2048.0;
    const ThreeWayPoint p = compareMachines(machine, wl);
    EXPECT_EQ(result.value().modelMm, p.mm);
    EXPECT_EQ(result.value().modelDirect, p.direct);
    EXPECT_EQ(result.value().modelPrime, p.prime);

    // Model-only requests leave the simulator fields untouched.
    EXPECT_EQ(result.value().simMm, 0.0);
    EXPECT_EQ(result.value().mm.results, 0u);
}

TEST(EvaluateSim, AutoAndScalarAreBitIdentical)
{
    EvalRequest req;
    req.blockingFactor = 512;
    req.seed = 42;
    req.engine = SimEngine::Auto;
    const auto fast = evaluatePoint(req);
    req.engine = SimEngine::Scalar;
    const auto slow = evaluatePoint(req);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(fast.value().simMm, slow.value().simMm);
    EXPECT_EQ(fast.value().simDirect, slow.value().simDirect);
    EXPECT_EQ(fast.value().simPrime, slow.value().simPrime);
    EXPECT_EQ(fast.value().mm.totalCycles,
              slow.value().mm.totalCycles);
    EXPECT_EQ(fast.value().direct.misses, slow.value().direct.misses);
    EXPECT_EQ(fast.value().prime.misses, slow.value().prime.misses);
}

TEST(EvaluateSim, EqualRequestsYieldBitIdenticalResults)
{
    EvalRequest req;
    req.blockingFactor = 512;
    req.seed = 7;
    const auto a = evaluatePoint(req);
    const auto b = evaluatePoint(req);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value().simMm, b.value().simMm);
    EXPECT_EQ(a.value().simDirect, b.value().simDirect);
    EXPECT_EQ(a.value().simPrime, b.value().simPrime);
    EXPECT_EQ(a.value().modelMm, b.value().modelMm);
}

TEST(EvaluateSim, SampledReportsConfidenceIntervals)
{
    EvalRequest req;
    req.blockingFactor = 512;
    req.engine = SimEngine::Sampled;
    req.targetCi = 0.05;
    const auto result = evaluatePoint(req);
    ASSERT_TRUE(result.ok());
    EXPECT_GT(result.value().simMm, 0.0);
    EXPECT_GT(result.value().mmCi, 0.0);
    EXPECT_GT(result.value().directCi, 0.0);
    EXPECT_GT(result.value().primeCi, 0.0);
}

TEST(EvaluateValidate, RejectsOutOfRangeFields)
{
    auto expectInvalid = [](EvalRequest req, const char *field) {
        const auto v = validateEvalRequest(req);
        ASSERT_FALSE(v.ok()) << field;
        EXPECT_EQ(v.error().code, Errc::InvalidConfig) << field;
        EXPECT_NE(v.error().message.find(field), std::string::npos)
            << v.error().message;
        // evaluatePoint must agree with the standalone validator.
        EXPECT_FALSE(evaluatePoint(req).ok()) << field;
    };
    EvalRequest req;
    req.bankBits = 0;
    expectInvalid(req, "bank_bits");
    req = {};
    req.bankBits = 13;
    expectInvalid(req, "bank_bits");
    req = {};
    req.memoryTime = 0;
    expectInvalid(req, "t_m");
    req = {};
    req.blockingFactor = 0;
    expectInvalid(req, "B");
    req = {};
    req.blockingFactor = std::uint64_t{1} << 21;
    expectInvalid(req, "B");
    req = {};
    req.pDoubleStream = -0.1;
    expectInvalid(req, "p_ds");
    req = {};
    req.pDoubleStream = 1.5;
    expectInvalid(req, "p_ds");
    req = {};
    req.engine = SimEngine::Sampled;
    req.targetCi = 0.0;
    expectInvalid(req, "target_ci");
}

TEST(EvaluateValidate, TargetCiOnlyCheckedForSampled)
{
    EvalRequest req;
    req.targetCi = 0.0; // ignored by the exact engines
    EXPECT_TRUE(validateEvalRequest(req).ok());
}

TEST(EvaluateCanonical, ExactEnginesShareOneKey)
{
    EvalRequest req;
    req.engine = SimEngine::Auto;
    const std::string auto_form = canonicalEvalRequest(req);
    req.engine = SimEngine::Scalar;
    EXPECT_EQ(canonicalEvalRequest(req), auto_form);
    EXPECT_NE(auto_form.find("engine=exact"), std::string::npos);

    req.engine = SimEngine::Sampled;
    EXPECT_NE(canonicalEvalRequest(req), auto_form);
    EXPECT_NE(canonicalEvalRequest(req).find("ci="),
              std::string::npos);
}

TEST(EvaluateCanonical, EveryFieldChangesTheKey)
{
    const std::uint64_t base = evalRequestKey(EvalRequest{});
    EvalRequest req;
    req.bankBits = 5;
    EXPECT_NE(evalRequestKey(req), base);
    req = {};
    req.memoryTime = 8;
    EXPECT_NE(evalRequestKey(req), base);
    req = {};
    req.blockingFactor = 2048;
    EXPECT_NE(evalRequestKey(req), base);
    req = {};
    req.pDoubleStream = 0.25;
    EXPECT_NE(evalRequestKey(req), base);
    req = {};
    req.seed = 2;
    EXPECT_NE(evalRequestKey(req), base);
    req = {};
    req.sim = false;
    EXPECT_NE(evalRequestKey(req), base);
}

TEST(EvaluateCanonical, ModelOnlyKeyIgnoresSeedAndEngine)
{
    EvalRequest req;
    req.sim = false;
    req.seed = 1;
    const std::uint64_t key = evalRequestKey(req);
    req.seed = 999;
    EXPECT_EQ(evalRequestKey(req), key);
    req.engine = SimEngine::Sampled;
    EXPECT_EQ(evalRequestKey(req), key);
}

TEST(EvaluateCanonical, NearbyDoublesDoNotCollide)
{
    // The canonical form must render doubles round-trip, not at CSV
    // precision: these two differ only past the third decimal.
    EvalRequest a;
    a.pDoubleStream = 0.2;
    EvalRequest b;
    b.pDoubleStream = 0.2000001;
    EXPECT_NE(canonicalEvalRequest(a), canonicalEvalRequest(b));
}

TEST(EvaluateCanonical, Fnv1a64MatchesReferenceVectors)
{
    // Published FNV-1a test vectors.
    EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

TEST(EvaluateCancel, PreCancelledTokenStopsEvaluation)
{
    CancelToken cancel;
    cancel.requestCancel(CancelToken::Reason::Timeout);
    EvalRequest req;
    req.blockingFactor = 8192;
    const auto result = evaluatePoint(req, &cancel);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, Errc::Timeout);
}

TEST(EvaluateCancel, SampledHonoursCancellation)
{
    CancelToken cancel;
    cancel.requestCancel(CancelToken::Reason::Cancelled);
    EvalRequest req;
    req.engine = SimEngine::Sampled;
    const auto result = evaluatePoint(req, &cancel);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, Errc::Cancelled);
}

} // namespace
} // namespace vcache
