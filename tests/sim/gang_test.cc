/**
 * Differential tests for shared-trace evaluation: the gang CC runner
 * (sim/gang.hh) against solo simulateCc, and evaluateBatch
 * (sim/evaluate.hh) against per-point evaluatePoint.  The contract
 * under test is bit-identity -- batching is a scheduling optimization
 * and must never change a single counter or cycle.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/defaults.hh"
#include "sim/evaluate.hh"
#include "sim/gang.hh"
#include "sim/runner.hh"
#include "trace/multistride.hh"
#include "trace/source.hh"
#include "trace/vcm.hh"
#include "util/faultinject.hh"

namespace vcache
{
namespace
{

void
expectSameSim(const SimResult &a, const SimResult &b,
              const std::string &what)
{
    EXPECT_EQ(a.totalCycles, b.totalCycles) << what;
    EXPECT_EQ(a.stallCycles, b.stallCycles) << what;
    EXPECT_EQ(a.results, b.results) << what;
    EXPECT_EQ(a.hits, b.hits) << what;
    EXPECT_EQ(a.misses, b.misses) << what;
    EXPECT_EQ(a.compulsoryMisses, b.compulsoryMisses) << what;
}

void
expectSameEval(const EvalResult &a, const EvalResult &b,
               const std::string &what)
{
    EXPECT_EQ(a.modelMm, b.modelMm) << what;
    EXPECT_EQ(a.modelDirect, b.modelDirect) << what;
    EXPECT_EQ(a.modelPrime, b.modelPrime) << what;
    EXPECT_EQ(a.simMm, b.simMm) << what;
    EXPECT_EQ(a.simDirect, b.simDirect) << what;
    EXPECT_EQ(a.simPrime, b.simPrime) << what;
    EXPECT_EQ(a.mmCi, b.mmCi) << what;
    EXPECT_EQ(a.directCi, b.directCi) << what;
    EXPECT_EQ(a.primeCi, b.primeCi) << what;
    expectSameSim(a.mm, b.mm, what + " mm");
    expectSameSim(a.direct, b.direct, what + " direct");
    expectSameSim(a.prime, b.prime, what + " prime");
}

Trace
constantStrideTrace(std::int64_t stride, std::uint64_t n,
                    std::uint64_t repeats)
{
    Trace trace;
    for (std::uint64_t r = 0; r < repeats; ++r) {
        VectorOp op;
        op.first = VectorRef{0, stride, n};
        trace.push_back(op);
    }
    return trace;
}

std::vector<Trace>
traceMatrix()
{
    std::vector<Trace> traces;
    VcmParams vcm;
    vcm.blockingFactor = 512;
    vcm.blocks = 4;
    traces.push_back(generateVcmTrace(vcm, 42));
    MultistrideParams ms;
    traces.push_back(generateMultistrideTrace(ms, 7));
    traces.push_back(constantStrideTrace(3, 1024, 4));
    return traces;
}

TEST(GangCc, MatchesSoloAcrossSchemesTracesAndLanes)
{
    const std::uint64_t tms[] = {1, 4, 16, 64};
    for (const auto &trace : traceMatrix()) {
        for (CacheScheme scheme :
             {CacheScheme::Direct, CacheScheme::Prime}) {
            std::vector<GangLane> lanes;
            for (std::uint64_t tm : tms)
                lanes.push_back(GangLane{tm, nullptr});
            TraceVectorSource source(trace);
            MachineParams base = paperMachineM64();
            const auto gang =
                simulateCcGang(base, scheme, source, lanes);
            ASSERT_EQ(gang.size(), lanes.size());
            for (std::size_t i = 0; i < lanes.size(); ++i) {
                MachineParams solo = paperMachineM64();
                solo.memoryTime = lanes[i].memoryTime;
                const SimResult want =
                    simulateCc(solo, scheme, trace);
                ASSERT_TRUE(gang[i].ok());
                expectSameSim(gang[i].value(), want,
                              "tm=" +
                                  std::to_string(lanes[i].memoryTime));
            }
        }
    }
}

TEST(GangCc, BaseMemoryTimeIsIgnored)
{
    const Trace trace = constantStrideTrace(1, 512, 3);
    MachineParams base = paperMachineM32();
    base.memoryTime = 999; // must not leak into any lane
    const GangLane lane{16, nullptr};
    TraceVectorSource source(trace);
    const auto gang = simulateCcGang(base, CacheScheme::Prime, source,
                                     std::span(&lane, 1));
    MachineParams solo = paperMachineM32();
    solo.memoryTime = 16;
    ASSERT_EQ(gang.size(), 1u);
    ASSERT_TRUE(gang[0].ok());
    expectSameSim(gang[0].value(),
                  simulateCc(solo, CacheScheme::Prime, trace), "tm=16");
}

TEST(GangCc, EmptyLaneListReturnsEmpty)
{
    const Trace trace = constantStrideTrace(1, 64, 1);
    TraceVectorSource source(trace);
    const auto gang =
        simulateCcGang(paperMachineM32(), CacheScheme::Direct, source,
                       std::span<const GangLane>{});
    EXPECT_TRUE(gang.empty());
}

TEST(GangCc, CancelledLaneDoesNotDisturbNeighbours)
{
    const Trace trace = constantStrideTrace(2, 2048, 4);
    CancelToken dead;
    dead.requestCancel(CancelToken::Reason::Timeout);
    std::vector<GangLane> lanes = {
        {4, nullptr}, {16, &dead}, {64, nullptr}};
    TraceVectorSource source(trace);
    const auto gang = simulateCcGang(paperMachineM64(),
                                     CacheScheme::Direct, source, lanes);
    ASSERT_EQ(gang.size(), 3u);
    ASSERT_FALSE(gang[1].ok());
    EXPECT_EQ(gang[1].error().code, Errc::Timeout);
    for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
        MachineParams solo = paperMachineM64();
        solo.memoryTime = lanes[i].memoryTime;
        ASSERT_TRUE(gang[i].ok());
        expectSameSim(gang[i].value(),
                      simulateCc(solo, CacheScheme::Direct, trace),
                      "lane " + std::to_string(i));
    }
}

TEST(WorkloadKey, IgnoresTimingOnlyFields)
{
    EvalRequest a;
    a.memoryTime = 4;
    a.engine = SimEngine::Auto;
    EvalRequest b;
    b.memoryTime = 64;
    b.engine = SimEngine::Sampled;
    b.targetCi = 0.01;
    EXPECT_EQ(workloadKey(a), workloadKey(b));
}

TEST(WorkloadKey, SplitsOnEveryTraceParameter)
{
    const std::string base = workloadKey(EvalRequest{});
    EvalRequest req;
    req.bankBits = 5;
    EXPECT_NE(workloadKey(req), base);
    req = {};
    req.blockingFactor = 2048;
    EXPECT_NE(workloadKey(req), base);
    req = {};
    req.pDoubleStream = 0.25;
    EXPECT_NE(workloadKey(req), base);
    req = {};
    req.seed = 2;
    EXPECT_NE(workloadKey(req), base);
}

TEST(WorkloadKey, ModelOnlyRequestsShareOneKey)
{
    EvalRequest a;
    a.sim = false;
    EvalRequest b;
    b.sim = false;
    b.blockingFactor = 4096;
    b.seed = 9;
    EXPECT_EQ(workloadKey(a), workloadKey(b));
    EvalRequest c; // sim on: different key space entirely
    EXPECT_NE(workloadKey(a), workloadKey(c));
}

TEST(BatchEval, SharedWorkloadGridIsBitIdenticalToPointwise)
{
    std::vector<EvalRequest> reqs;
    for (std::uint64_t tm = 4; tm <= 32; tm += 4) {
        EvalRequest req;
        req.memoryTime = tm;
        req.blockingFactor = 512;
        req.seed = 42;
        reqs.push_back(req);
    }
    const auto batch = evaluateBatch(reqs);
    ASSERT_EQ(batch.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const auto solo = evaluatePoint(reqs[i]);
        ASSERT_TRUE(solo.ok());
        ASSERT_TRUE(batch[i].ok());
        expectSameEval(batch[i].value(), solo.value(),
                       "i=" + std::to_string(i));
    }
}

TEST(BatchEval, MixedGroupsEnginesAndModelOnlyInterleaved)
{
    std::vector<EvalRequest> reqs;
    // Group 1: m=6 B=512 seed=1, exact engines (Auto and Scalar mix).
    for (std::uint64_t tm : {8u, 24u}) {
        EvalRequest req;
        req.memoryTime = tm;
        req.blockingFactor = 512;
        req.seed = 1;
        req.engine = tm == 8 ? SimEngine::Auto : SimEngine::Scalar;
        reqs.push_back(req);
    }
    // Model-only point interleaved mid-batch.
    {
        EvalRequest req;
        req.sim = false;
        req.memoryTime = 32;
        reqs.push_back(req);
    }
    // Group 2: different workload (m=5 seed=2).
    for (std::uint64_t tm : {4u, 16u}) {
        EvalRequest req;
        req.bankBits = 5;
        req.memoryTime = tm;
        req.blockingFactor = 512;
        req.seed = 2;
        reqs.push_back(req);
    }
    // Sampled member of group 1's workload.
    {
        EvalRequest req;
        req.memoryTime = 16;
        req.blockingFactor = 512;
        req.seed = 1;
        req.engine = SimEngine::Sampled;
        req.targetCi = 0.05;
        reqs.push_back(req);
    }
    const auto batch = evaluateBatch(reqs);
    ASSERT_EQ(batch.size(), reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        const auto solo = evaluatePoint(reqs[i]);
        ASSERT_TRUE(solo.ok()) << i;
        ASSERT_TRUE(batch[i].ok()) << i;
        expectSameEval(batch[i].value(), solo.value(),
                       "i=" + std::to_string(i));
    }
}

TEST(BatchEval, InvalidRequestFailsAloneNeighboursUnharmed)
{
    std::vector<EvalRequest> reqs(3);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].memoryTime = 8 * (i + 1);
        reqs[i].blockingFactor = 512;
        reqs[i].seed = 3;
    }
    reqs[1].pDoubleStream = 2.0; // invalid
    const auto batch = evaluateBatch(reqs);
    ASSERT_EQ(batch.size(), 3u);
    ASSERT_FALSE(batch[1].ok());
    EXPECT_EQ(batch[1].error().code, Errc::InvalidConfig);
    for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
        const auto solo = evaluatePoint(reqs[i]);
        ASSERT_TRUE(solo.ok());
        ASSERT_TRUE(batch[i].ok());
        expectSameEval(batch[i].value(), solo.value(),
                       "i=" + std::to_string(i));
    }
}

TEST(BatchEval, PerRequestCancelIsIsolated)
{
    std::vector<EvalRequest> reqs(4);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].memoryTime = 4 * (i + 1);
        reqs[i].blockingFactor = 512;
        reqs[i].seed = 5;
    }
    CancelToken timeout;
    timeout.requestCancel(CancelToken::Reason::Timeout);
    CancelToken cancelled;
    cancelled.requestCancel(CancelToken::Reason::Cancelled);
    std::vector<const CancelToken *> cancels = {nullptr, &timeout,
                                                &cancelled, nullptr};
    const auto batch = evaluateBatch(reqs, cancels);
    ASSERT_EQ(batch.size(), 4u);
    ASSERT_FALSE(batch[1].ok());
    EXPECT_EQ(batch[1].error().code, Errc::Timeout);
    ASSERT_FALSE(batch[2].ok());
    EXPECT_EQ(batch[2].error().code, Errc::Cancelled);
    for (std::size_t i : {std::size_t{0}, std::size_t{3}}) {
        const auto solo = evaluatePoint(reqs[i]);
        ASSERT_TRUE(solo.ok());
        ASSERT_TRUE(batch[i].ok());
        expectSameEval(batch[i].value(), solo.value(),
                       "i=" + std::to_string(i));
    }
}

TEST(BatchEval, BatchWideCancelStopsEveryRequest)
{
    std::vector<EvalRequest> reqs(3);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].memoryTime = 8 * (i + 1);
        reqs[i].blockingFactor = 512;
    }
    CancelToken cancel;
    cancel.requestCancel(CancelToken::Reason::Timeout);
    const auto batch = evaluateBatch(reqs, {}, &cancel);
    ASSERT_EQ(batch.size(), 3u);
    for (const auto &r : batch) {
        ASSERT_FALSE(r.ok());
        EXPECT_EQ(r.error().code, Errc::Timeout);
    }
}

TEST(BatchEval, EmptyBatchReturnsEmpty)
{
    EXPECT_TRUE(evaluateBatch({}).empty());
}

TEST(BatchEval, ArmedFaultPlanMatchesPointwiseSiteForSite)
{
    if (!faults::kEnabled)
        GTEST_SKIP() << "fault-injection sites compiled out";
    // With a plan armed the batch engine must fall back to per-point
    // evaluation over the shared arena, so the memory.bank.issue hit
    // sequence -- and therefore which request the fault lands on --
    // is identical to a pointwise loop under the same plan.
    std::vector<EvalRequest> reqs(3);
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        reqs[i].memoryTime = 8 * (i + 1);
        reqs[i].blockingFactor = 256;
        reqs[i].seed = 11;
    }
    const char *spec = "memory.bank.issue=throw@every:100000";
    const auto plan = faults::parseFaultSpec(spec, 1);
    ASSERT_TRUE(plan.ok());

    faults::configureFaults(plan.value());
    const auto batch = evaluateBatch(reqs);
    faults::configureFaults(plan.value()); // reset trigger state
    std::vector<Expected<EvalResult>> solo;
    for (const auto &req : reqs)
        solo.push_back(evaluatePoint(req));
    faults::clearFaults();

    ASSERT_EQ(batch.size(), solo.size());
    for (std::size_t i = 0; i < solo.size(); ++i) {
        ASSERT_EQ(batch[i].ok(), solo[i].ok()) << i;
        if (batch[i].ok())
            expectSameEval(batch[i].value(), solo[i].value(),
                           "i=" + std::to_string(i));
        else
            EXPECT_EQ(batch[i].error().code, solo[i].error().code)
                << i;
    }
}

TEST(BatchEval, ArenaOverloadMatchesFreshEvaluation)
{
    EvalRequest req;
    req.blockingFactor = 512;
    req.seed = 13;
    const TraceArena arena = buildTraceArena(req);
    for (std::uint64_t tm : {4u, 32u}) {
        req.memoryTime = tm;
        const auto shared = evaluatePoint(req, arena, nullptr);
        const auto fresh = evaluatePoint(req);
        ASSERT_TRUE(shared.ok());
        ASSERT_TRUE(fresh.ok());
        expectSameEval(shared.value(), fresh.value(),
                       "tm=" + std::to_string(tm));
    }
}

} // namespace
} // namespace vcache
