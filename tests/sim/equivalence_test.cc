/**
 * Equivalence pins for the simulator fast paths.
 *
 * The CC simulator's per-element loop is monomorphized over the
 * concrete cache type and runs streamed workloads without
 * materializing traces.  These tests pin all of that against fixed
 * golden SimResults captured from the pre-optimization simulator, and
 * against the generic virtual-dispatch path (runVirtual), on the three
 * workload families the repo uses: VCM, multistride and FFT.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/defaults.hh"
#include "sim/cc_sim.hh"
#include "trace/fft.hh"
#include "trace/multistride.hh"
#include "trace/source.hh"
#include "trace/vcm.hh"

namespace vcache
{
namespace
{

/** Optional timing features layered on the plain simulator. */
enum class Mode
{
    Plain,
    Prefetch,    // stride prefetch, degree 2
    NonBlocking, // lockup-free misses
};

VcmParams
goldenVcmParams()
{
    VcmParams p;
    p.blockingFactor = 512;
    p.reuseFactor = 6;
    p.blocks = 3;
    p.maxStride = 4096;
    return p;
}

MultistrideParams
goldenMultistrideParams()
{
    return MultistrideParams{1024, 12, 0.25, 8192, 0, 3};
}

const Trace &
vcmTrace()
{
    static const Trace trace = generateVcmTrace(goldenVcmParams(), 42);
    return trace;
}

const Trace &
multistrideTrace()
{
    static const Trace trace =
        generateMultistrideTrace(goldenMultistrideParams(), 7);
    return trace;
}

const Trace &
fftTrace()
{
    static const Trace trace = generateFftButterflyTrace(5, 4096);
    return trace;
}

CcSimulator
makeSim(CacheScheme scheme, Mode mode)
{
    CcSimulator sim(paperMachineM32(), scheme);
    if (mode == Mode::Prefetch)
        sim.enablePrefetch(PrefetchPolicy::Stride, 2);
    if (mode == Mode::NonBlocking)
        sim.setNonBlockingMisses(true);
    return sim;
}

void
expectSameResult(const SimResult &got, const SimResult &want)
{
    EXPECT_EQ(got.totalCycles, want.totalCycles);
    EXPECT_EQ(got.stallCycles, want.stallCycles);
    EXPECT_EQ(got.results, want.results);
    EXPECT_EQ(got.hits, want.hits);
    EXPECT_EQ(got.misses, want.misses);
    EXPECT_EQ(got.compulsoryMisses, want.compulsoryMisses);
}

/**
 * Run `trace` through the devirtualized path and through the generic
 * virtual path, and check both against the pinned golden counters.
 */
void
checkGolden(CacheScheme scheme, Mode mode, const Trace &trace,
            const SimResult &want, std::uint64_t want_prefetches)
{
    CcSimulator fast = makeSim(scheme, mode);
    const SimResult got = fast.run(trace);
    expectSameResult(got, want);
    EXPECT_EQ(fast.prefetchesIssued(), want_prefetches);

    CcSimulator generic = makeSim(scheme, mode);
    const SimResult virt = generic.runVirtual(trace);
    expectSameResult(virt, want);
    EXPECT_EQ(generic.prefetchesIssued(), want_prefetches);
}

// Golden counters captured from the simulator before the fast paths
// existed (paperMachineM32; traces as built above).  Any change here
// is a behaviour change, not an optimization.

TEST(SimulatorGolden, VcmDirect)
{
    checkGolden(CacheScheme::Direct, Mode::Plain, vcmTrace(),
                {18054u, 1166u, 9216u, 7662u, 2166u, 2147u}, 0u);
}

TEST(SimulatorGolden, VcmPrime)
{
    checkGolden(CacheScheme::Prime, Mode::Plain, vcmTrace(),
                {18198u, 1326u, 9216u, 7652u, 2176u, 2147u}, 0u);
}

TEST(SimulatorGolden, MultistrideDirect)
{
    checkGolden(CacheScheme::Direct, Mode::Plain, multistrideTrace(),
                {76216u, 10416u, 36864u, 26167u, 10697u, 10226u}, 0u);
}

TEST(SimulatorGolden, MultistridePrime)
{
    checkGolden(CacheScheme::Prime, Mode::Plain, multistrideTrace(),
                {76792u, 11120u, 36864u, 26123u, 10741u, 10226u}, 0u);
}

TEST(SimulatorGolden, FftDirect)
{
    checkGolden(CacheScheme::Direct, Mode::Plain, fftTrace(),
                {311414u, 30720u, 24576u, 45056u, 4096u, 4096u}, 0u);
}

TEST(SimulatorGolden, FftPrime)
{
    checkGolden(CacheScheme::Prime, Mode::Plain, fftTrace(),
                {311414u, 30720u, 24576u, 45056u, 4096u, 4096u}, 0u);
}

TEST(SimulatorGolden, VcmPrefetchDirect)
{
    checkGolden(CacheScheme::Direct, Mode::Prefetch, vcmTrace(),
                {18911u, 2359u, 9216u, 9195u, 633u, 614u}, 2799u);
}

TEST(SimulatorGolden, VcmPrefetchPrime)
{
    checkGolden(CacheScheme::Prime, Mode::Prefetch, vcmTrace(),
                {19058u, 2522u, 9216u, 9185u, 643u, 614u}, 2819u);
}

TEST(SimulatorGolden, MultistrideNonBlockingDirect)
{
    checkGolden(CacheScheme::Direct, Mode::NonBlocking,
                multistrideTrace(),
                {68680u, 2880u, 36864u, 26167u, 10697u, 10226u}, 0u);
}

TEST(SimulatorGolden, MultistrideNonBlockingPrime)
{
    checkGolden(CacheScheme::Prime, Mode::NonBlocking,
                multistrideTrace(),
                {68552u, 2880u, 36864u, 26123u, 10741u, 10226u}, 0u);
}

/**
 * Streamed run (trace regenerated op by op from the source's RNG)
 * against the materialized run of the same workload, on both schemes
 * and with the prefetcher on, where the timing paths differ most.
 */
void
checkStreamedMatchesMaterialized(TraceSource &source,
                                 const Trace &trace, Mode mode)
{
    for (const auto scheme : {CacheScheme::Direct, CacheScheme::Prime}) {
        CcSimulator materialized = makeSim(scheme, mode);
        const SimResult want = materialized.run(trace);

        source.reset();
        CcSimulator streamed = makeSim(scheme, mode);
        const SimResult got = streamed.run(source);
        expectSameResult(got, want);
        EXPECT_EQ(streamed.prefetchesIssued(),
                  materialized.prefetchesIssued());
    }
}

TEST(StreamingEquivalence, Vcm)
{
    VcmTraceSource source(goldenVcmParams(), 42);
    checkStreamedMatchesMaterialized(source, vcmTrace(), Mode::Plain);
    checkStreamedMatchesMaterialized(source, vcmTrace(),
                                     Mode::Prefetch);
}

TEST(StreamingEquivalence, Multistride)
{
    MultistrideTraceSource source(goldenMultistrideParams(), 7);
    checkStreamedMatchesMaterialized(source, multistrideTrace(),
                                     Mode::Plain);
    checkStreamedMatchesMaterialized(source, multistrideTrace(),
                                     Mode::NonBlocking);
}

TEST(StreamingEquivalence, Fft)
{
    // FFT traces are deterministic; the streaming entry point sees
    // them through the materialized-trace adapter.
    TraceVectorSource source(fftTrace());
    checkStreamedMatchesMaterialized(source, fftTrace(), Mode::Plain);
}

} // namespace
} // namespace vcache
