/** Tests for the parallel sweep engine. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/comparison.hh"
#include "core/defaults.hh"
#include "obs/registry.hh"
#include "sim/sweep.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace vcache
{
namespace
{

SweepOptions
quiet(unsigned jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    return opts;
}

TEST(Sweep, ResultsIndexedByGridPosition)
{
    std::vector<int> grid;
    for (int i = 0; i < 100; ++i)
        grid.push_back(i);
    const auto results = sweepGrid(
        grid, [](const int &v, SweepWorker &) { return v * v; },
        quiet(4));
    ASSERT_EQ(results.size(), grid.size());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
}

TEST(Sweep, EmptyGrid)
{
    const std::vector<int> grid;
    SweepOutcome outcome;
    const auto results = sweepGrid(
        grid, [](const int &v, SweepWorker &) { return v; }, quiet(4),
        &outcome);
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(outcome.points, 0u);
    EXPECT_DOUBLE_EQ(outcome.pointsPerSecond(), 0.0);
}

TEST(Sweep, JobsClampedToPoints)
{
    std::vector<int> grid{1, 2};
    SweepOutcome outcome;
    sweepGrid(grid, [](const int &v, SweepWorker &) { return v; },
              quiet(16), &outcome);
    EXPECT_EQ(outcome.jobs, 2u);
}

TEST(Sweep, MergedStatsMatchSerialAccumulation)
{
    std::vector<int> grid;
    for (int i = 1; i <= 200; ++i)
        grid.push_back(i);

    RunningStats serial;
    for (int v : grid)
        serial.add(static_cast<double>(v));

    SweepOutcome outcome;
    sweepGrid(
        grid,
        [](const int &v, SweepWorker &w) {
            w.stats.add(static_cast<double>(v));
            return v;
        },
        quiet(4), &outcome);

    EXPECT_EQ(outcome.stats.count(), serial.count());
    EXPECT_DOUBLE_EQ(outcome.stats.min(), serial.min());
    EXPECT_DOUBLE_EQ(outcome.stats.max(), serial.max());
    EXPECT_NEAR(outcome.stats.mean(), serial.mean(), 1e-9);
    EXPECT_NEAR(outcome.stats.sum(), serial.sum(), 1e-6);
    EXPECT_NEAR(outcome.stats.variance(), serial.variance(), 1e-6);
}

/** Render one model grid as CSV with the given worker count. */
std::string
modelGridCsv(unsigned jobs)
{
    struct Point
    {
        std::uint64_t tm;
        std::uint64_t b;
    };
    std::vector<Point> grid;
    for (std::uint64_t tm = 4; tm <= 32; tm += 4)
        for (std::uint64_t b : {512ull, 1024ull, 2048ull})
            grid.push_back({tm, b});

    const auto rows = sweepGrid(
        grid,
        [](const Point &g, SweepWorker &) {
            MachineParams machine = paperMachineM32();
            machine.memoryTime = g.tm;
            WorkloadParams w = paperWorkload();
            w.blockingFactor = static_cast<double>(g.b);
            const auto p = compareMachines(machine, w);
            return std::vector<std::string>{
                Table::format(g.tm), Table::format(g.b),
                Table::format(p.mm), Table::format(p.direct),
                Table::format(p.prime)};
        },
        quiet(jobs));

    Table csv({"t_m", "B", "mm", "direct", "prime"});
    for (const auto &row : rows)
        csv.addRowStrings(row);
    std::ostringstream os;
    csv.printCsv(os);
    return os.str();
}

TEST(Sweep, CsvByteIdenticalAcrossWorkerCounts)
{
    const std::string serial = modelGridCsv(1);
    EXPECT_EQ(serial, modelGridCsv(2));
    EXPECT_EQ(serial, modelGridCsv(4));
    EXPECT_EQ(serial, modelGridCsv(7));
}

TEST(Sweep, RunSweepVisitsEveryIndexOnce)
{
    constexpr std::size_t kPoints = 300;
    std::vector<int> visits(kPoints, 0);
    const auto outcome = runSweep(
        kPoints,
        [&](std::size_t i, SweepWorker &) { ++visits[i]; },
        quiet(4));
    EXPECT_EQ(outcome.points, kPoints);
    for (std::size_t i = 0; i < kPoints; ++i)
        EXPECT_EQ(visits[i], 1) << "index " << i;
}

TEST(Sweep, TelemetryReportsPerWorkerProgress)
{
    auto sink = std::make_shared<std::ostringstream>();
    SweepOptions opts = quiet(3);
    opts.label = "grid \"q\"";
    opts.telemetry = sink;

    std::vector<int> grid;
    for (int i = 0; i < 50; ++i)
        grid.push_back(i);
    sweepGrid(grid, [](const int &v, SweepWorker &) { return v; },
              opts);

    std::istringstream lines(sink->str());
    std::string first, line, last;
    std::getline(lines, first);
    while (std::getline(lines, line))
        last = line;

    EXPECT_NE(first.find("\"event\":\"sweep_start\""),
              std::string::npos);
    EXPECT_NE(first.find("\"points\":50"), std::string::npos);
    EXPECT_NE(first.find("\"jobs\":3"), std::string::npos);
    // Quotes in the label must arrive escaped (valid JSON lines).
    EXPECT_NE(first.find("\"label\":\"grid \\\"q\\\"\""),
              std::string::npos);

    ASSERT_NE(last.find("\"event\":\"sweep_end\""), std::string::npos);
    // The per-worker counts account for every point exactly once.
    const auto open = last.find("\"workers\":[");
    ASSERT_NE(open, std::string::npos);
    const auto close = last.find(']', open);
    ASSERT_NE(close, std::string::npos);
    std::istringstream counts(
        last.substr(open + 11, close - open - 11));
    std::uint64_t total = 0, value = 0;
    std::size_t workers = 0;
    char comma = 0;
    while (counts >> value) {
        total += value;
        ++workers;
        counts >> comma;
    }
    EXPECT_EQ(workers, 3u);
    EXPECT_EQ(total, 50u);
}

TEST(Sweep, NoTelemetrySinkWritesNothing)
{
    // The default options leave the sink null; this mostly checks the
    // sweep does not trip on the absent stream.
    std::vector<int> grid{1, 2, 3};
    const auto results = sweepGrid(
        grid, [](const int &v, SweepWorker &) { return v + 1; },
        quiet(2));
    EXPECT_EQ(results[2], 4);
}

TEST(SweepFlags, RoundTripThroughArgParser)
{
    ArgParser args("test");
    addSweepFlags(args);
    std::vector<std::string> storage{"prog", "--jobs=3", "--seed=99",
                                     "--progress=false"};
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    args.parse(static_cast<int>(argv.size()), argv.data());

    const SweepOptions opts = sweepOptionsFromFlags(args, "label");
    EXPECT_EQ(opts.jobs, 3u);
    EXPECT_EQ(opts.seed, 99u);
    EXPECT_FALSE(opts.progress);
    EXPECT_EQ(opts.label, "label");
}

TEST(SweepFlagsDeathTest, ImplausibleJobsCountIsFatal)
{
    ArgParser args("test");
    addSweepFlags(args);
    std::vector<std::string> storage{"prog", "--jobs=1000000"};
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    args.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EXIT((void)sweepOptionsFromFlags(args),
                testing::ExitedWithCode(1), "out of range");
}

TEST(SweepFlags, RobustnessFlagsRoundTrip)
{
    ArgParser args("test");
    addSweepFlags(args);
    std::vector<std::string> storage{
        "prog",           "--retries=5",         "--backoff-ms=10",
        "--point-timeout=1.5", "--checkpoint=ck.jsonl", "--resume=true"};
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    args.parse(static_cast<int>(argv.size()), argv.data());

    const SweepOptions opts = sweepOptionsFromFlags(args, "label");
    EXPECT_EQ(opts.maxAttempts, 6u);
    EXPECT_DOUBLE_EQ(opts.backoffBaseMs, 10.0);
    EXPECT_DOUBLE_EQ(opts.pointTimeoutSeconds, 1.5);
    EXPECT_EQ(opts.checkpointPath, "ck.jsonl");
    EXPECT_TRUE(opts.resume);
    EXPECT_TRUE(opts.handleSignals);
}

TEST(SweepFlagsDeathTest, ResumeWithoutCheckpointIsFatal)
{
    ArgParser args("test");
    addSweepFlags(args);
    std::vector<std::string> storage{"prog", "--resume=true"};
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    args.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EXIT((void)sweepOptionsFromFlags(args),
                testing::ExitedWithCode(1),
                "--resume requires --checkpoint");
}

// ---------------------------------------------------------------------
// Robustness: per-point isolation, retries, deadlines, drain, resume.
// ---------------------------------------------------------------------

/** Make sure a test never leaks a pending drain into its neighbours. */
struct InterruptGuard
{
    InterruptGuard() { clearSweepInterrupt(); }
    ~InterruptGuard() { clearSweepInterrupt(); }
};

/** Options tuned for fast failure paths. */
SweepOptions
robust(unsigned jobs, unsigned maxAttempts)
{
    SweepOptions opts = quiet(jobs);
    opts.maxAttempts = maxAttempts;
    opts.backoffBaseMs = 1.0;
    opts.backoffMaxMs = 2.0;
    return opts;
}

TEST(SweepRobustness, ThrowingPointIsIsolatedAndRecorded)
{
    const auto outcome = runSweep(
        20,
        [](std::size_t i, SweepWorker &) {
            if (i == 7)
                throw VcError(
                    makeError(Errc::MalformedTrace, "bad point"));
        },
        robust(4, 1));

    EXPECT_EQ(outcome.completedOk, 19u);
    EXPECT_EQ(outcome.remaining, 0u);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].index, 7u);
    EXPECT_EQ(outcome.failures[0].error.code, Errc::MalformedTrace);
    EXPECT_EQ(outcome.failures[0].attempts, 1u);
}

TEST(SweepRobustness, NonVcExceptionsAreWrappedAsInternalInvariant)
{
    const auto outcome = runSweep(
        4,
        [](std::size_t i, SweepWorker &) {
            if (i == 2)
                throw std::runtime_error("plain exception");
        },
        robust(2, 1));
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].error.code, Errc::InternalInvariant);
    EXPECT_NE(outcome.failures[0].error.message.find("plain exception"),
              std::string::npos);
}

TEST(SweepRobustness, VcFatalInsideEvaluatorBecomesPointFailure)
{
    // Inside the sweep's throwing-errors scope, vc_fatal raises a
    // VcError instead of exiting -- the whole point of the boundary.
    const auto outcome = runSweep(
        6,
        [](std::size_t i, SweepWorker &) {
            if (i == 3)
                vc_fatal("boom at point 3");
        },
        robust(2, 1));
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].index, 3u);
    EXPECT_NE(
        outcome.failures[0].error.message.find("boom at point 3"),
        std::string::npos);
}

TEST(SweepRobustness, TransientFailureRetriesAndSucceeds)
{
    std::vector<std::atomic<unsigned>> attempts(10);
    const auto outcome = runSweep(
        10,
        [&](std::size_t i, SweepWorker &) {
            const unsigned a =
                attempts[i].fetch_add(1, std::memory_order_relaxed) + 1;
            if (i == 4 && a < 3)
                throw VcError(makeError(Errc::Io, "flaky"));
        },
        robust(4, 3));

    EXPECT_EQ(outcome.completedOk, 10u);
    EXPECT_TRUE(outcome.failures.empty());
    EXPECT_EQ(outcome.retries, 2u);
    EXPECT_EQ(attempts[4].load(), 3u);
}

TEST(SweepRobustness, ExhaustedRetriesRecordAttemptCount)
{
    const auto outcome = runSweep(
        3,
        [](std::size_t i, SweepWorker &) {
            if (i == 1)
                throw VcError(makeError(Errc::Io, "always down"));
        },
        robust(1, 3));
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].attempts, 3u);
    // Both extra attempts count as retries even though the point
    // never resolved.
    EXPECT_EQ(outcome.retries, 2u);
}

TEST(SweepRobustness, BackoffIsDeterministicJitteredAndCapped)
{
    const double a = retryBackoffMs(7, 13, 1, 100.0, 2000.0);
    EXPECT_DOUBLE_EQ(a, retryBackoffMs(7, 13, 1, 100.0, 2000.0));

    // Jitter keeps the delay within [0.5, 1.5) of nominal.
    EXPECT_GE(a, 50.0);
    EXPECT_LT(a, 150.0);
    const double second = retryBackoffMs(7, 13, 2, 100.0, 2000.0);
    EXPECT_GE(second, 100.0);
    EXPECT_LT(second, 300.0);

    // Different (seed, point, attempt) draw different jitter.
    EXPECT_NE(a, retryBackoffMs(8, 13, 1, 100.0, 2000.0));
    EXPECT_NE(a, retryBackoffMs(7, 14, 1, 100.0, 2000.0));

    // The exponential is capped at maxMs * 1.5 jitter, even for huge
    // attempt numbers (no overflow).
    const double capped = retryBackoffMs(7, 13, 64, 100.0, 2000.0);
    EXPECT_LT(capped, 3000.0);
    EXPECT_GE(capped, 1000.0);

    EXPECT_DOUBLE_EQ(retryBackoffMs(7, 13, 1, 0.0, 2000.0), 0.0);
}

TEST(SweepRobustness, WatchdogTimesOutCooperativePoint)
{
    SweepOptions opts = robust(2, 1);
    opts.pointTimeoutSeconds = 0.05;

    const auto outcome = runSweep(
        4,
        [](std::size_t i, SweepWorker &w) {
            if (i != 2)
                return;
            // A stuck point that honours the token, bounded so a
            // broken watchdog cannot hang the test suite.
            const auto give_up = std::chrono::steady_clock::now() +
                                 std::chrono::seconds(10);
            while (!w.cancel.cancelled() &&
                   std::chrono::steady_clock::now() < give_up)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            if (w.cancel.cancelled())
                throwCancelled(w.cancel);
        },
        opts);

    EXPECT_EQ(outcome.completedOk, 3u);
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].index, 2u);
    EXPECT_EQ(outcome.failures[0].error.code, Errc::Timeout);
}

TEST(SweepRobustness, InterruptDrainsInFlightAndReportsRemaining)
{
    InterruptGuard guard;
    std::atomic<std::size_t> evaluated{0};
    const auto outcome = runSweep(
        64,
        [&](std::size_t, SweepWorker &) {
            if (evaluated.fetch_add(1, std::memory_order_relaxed) == 8)
                requestSweepInterrupt();
            // Slow enough that the monitor's drain tick (100 ms) fires
            // while points are still unclaimed.
            std::this_thread::sleep_for(std::chrono::milliseconds(8));
        },
        robust(2, 1));

    EXPECT_TRUE(outcome.interrupted);
    EXPECT_GT(outcome.remaining, 0u);
    EXPECT_GT(outcome.completedOk, 0u);
    EXPECT_EQ(outcome.completedOk + outcome.failures.size() +
                  outcome.remaining,
              64u);
}

TEST(SweepRobustness, SigtermDrainsGracefully)
{
    // The real delivery path, not just the flag: with handleSignals
    // on, a raised SIGTERM must land in the sweep's own handler,
    // drain in-flight points and report the rest as remaining --
    // never kill the process.
    InterruptGuard guard;
    std::atomic<std::size_t> evaluated{0};
    SweepOptions opts = robust(2, 1);
    opts.handleSignals = true;
    const auto outcome = runSweep(
        64,
        [&](std::size_t, SweepWorker &) {
            if (evaluated.fetch_add(1, std::memory_order_relaxed) ==
                8)
                std::raise(SIGTERM);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(8));
        },
        opts);

    EXPECT_TRUE(outcome.interrupted);
    EXPECT_GT(outcome.remaining, 0u);
    EXPECT_GT(outcome.completedOk, 0u);
    EXPECT_EQ(outcome.completedOk + outcome.failures.size() +
                  outcome.remaining,
              64u);
}

TEST(SweepRobustness, InterruptSkipsFurtherRetries)
{
    InterruptGuard guard;
    std::atomic<unsigned> attempts{0};
    SweepOptions opts = robust(1, 10);
    opts.backoffBaseMs = 1.0;
    const auto outcome = runSweep(
        1,
        [&](std::size_t, SweepWorker &) {
            if (attempts.fetch_add(1, std::memory_order_relaxed) == 2)
                requestSweepInterrupt();
            throw VcError(makeError(Errc::Io, "always failing"));
        },
        opts);

    // (outcome.interrupted is racy here -- the sweep may finish
    // before the monitor's drain tick -- but the retry budget must
    // have been cut either way.)
    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].attempts, 3u);
    EXPECT_LT(attempts.load(), 10u);
}

/** Deterministic grid row for the CSV/checkpoint tests. */
CsvRow
gridRow(std::size_t i)
{
    return {std::to_string(i), std::to_string(i * i)};
}

CsvRow
failedRow(const PointFailure &f)
{
    return {std::to_string(f.index), "failed"};
}

/** Temp journal path removed on scope exit. */
class TempJournal
{
  public:
    explicit TempJournal(const std::string &name)
        : p(std::string(::testing::TempDir()) + name)
    {
        std::remove(p.c_str());
    }

    ~TempJournal() { std::remove(p.c_str()); }

    const std::string &str() const { return p; }

  private:
    std::string p;
};

TEST(CsvSweep, ResumeRequiresCheckpointAsValueError)
{
    SweepOptions opts = quiet(1);
    opts.resume = true;
    const auto result = runCsvSweep(
        4, [](std::size_t i, SweepWorker &) { return gridRow(i); },
        failedRow, opts);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, Errc::InvalidConfig);
}

TEST(CsvSweep, IncompatibleJournalIsAValueError)
{
    TempJournal journal("csv_incompat.jsonl");
    SweepOptions opts = quiet(2);
    opts.checkpointPath = journal.str();
    ASSERT_TRUE(runCsvSweep(8,
                            [](std::size_t i, SweepWorker &) {
                                return gridRow(i);
                            },
                            failedRow, opts)
                    .ok());

    // Same journal, different grid size: refused, not silently wrong.
    opts.resume = true;
    const auto result = runCsvSweep(
        9, [](std::size_t i, SweepWorker &) { return gridRow(i); },
        failedRow, opts);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, Errc::InvalidConfig);
    EXPECT_NE(result.error().message.find("points"), std::string::npos);
}

TEST(CsvSweep, ErrorRowKeepsTheGridRectangular)
{
    const auto result = runCsvSweep(
        6,
        [](std::size_t i, SweepWorker &) {
            if (i == 4)
                throw VcError(makeError(Errc::Timeout, "stuck"));
            return gridRow(i);
        },
        failedRow, robust(2, 1));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().complete());
    ASSERT_EQ(result.value().rows.size(), 6u);
    EXPECT_EQ(result.value().rows[4], (CsvRow{"4", "failed"}));
    EXPECT_EQ(result.value().rows[3], gridRow(3));
}

TEST(CsvSweep, InterruptedRunResumesToByteIdenticalRows)
{
    InterruptGuard guard;
    constexpr std::size_t kPoints = 48;

    // Reference: one uninterrupted run with no journal.
    const auto full = runCsvSweep(
        kPoints,
        [](std::size_t i, SweepWorker &) { return gridRow(i); },
        failedRow, quiet(4));
    ASSERT_TRUE(full.ok());
    ASSERT_TRUE(full.value().complete());

    TempJournal journal("csv_resume.jsonl");

    // Interrupted first run: drain after a handful of points.
    {
        SweepOptions opts = quiet(2);
        opts.checkpointPath = journal.str();
        std::atomic<std::size_t> evaluated{0};
        const auto partial = runCsvSweep(
            kPoints,
            [&](std::size_t i, SweepWorker &) {
                if (evaluated.fetch_add(1,
                                        std::memory_order_relaxed) == 6)
                    requestSweepInterrupt();
                // Outlast the monitor's 100 ms drain tick so points
                // remain unclaimed when the drain lands.
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(8));
                return gridRow(i);
            },
            failedRow, opts);
        ASSERT_TRUE(partial.ok());
        EXPECT_TRUE(partial.value().outcome.interrupted);
        EXPECT_FALSE(partial.value().complete());
        EXPECT_GT(partial.value().outcome.remaining, 0u);
    }
    clearSweepInterrupt();

    // Resume with a different worker count; rows must match the
    // uninterrupted reference exactly.
    SweepOptions opts = quiet(3);
    opts.checkpointPath = journal.str();
    opts.resume = true;
    const auto resumed = runCsvSweep(
        kPoints,
        [](std::size_t i, SweepWorker &) { return gridRow(i); },
        failedRow, opts);
    ASSERT_TRUE(resumed.ok());
    EXPECT_TRUE(resumed.value().complete());
    EXPECT_GT(resumed.value().skipped, 0u);
    EXPECT_LT(resumed.value().skipped, kPoints);
    EXPECT_EQ(resumed.value().rows, full.value().rows);
}

TEST(CsvSweep, ResumeOfCompleteJournalSkipsEverything)
{
    TempJournal journal("csv_skip_all.jsonl");
    SweepOptions opts = quiet(2);
    opts.checkpointPath = journal.str();

    const auto first = runCsvSweep(
        12, [](std::size_t i, SweepWorker &) { return gridRow(i); },
        failedRow, opts);
    ASSERT_TRUE(first.ok());

    std::atomic<std::size_t> evaluations{0};
    opts.resume = true;
    const auto second = runCsvSweep(
        12,
        [&](std::size_t i, SweepWorker &) {
            evaluations.fetch_add(1, std::memory_order_relaxed);
            return gridRow(i);
        },
        failedRow, opts);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value().skipped, 12u);
    EXPECT_EQ(evaluations.load(), 0u);
    EXPECT_EQ(second.value().rows, first.value().rows);
}

TEST(CsvSweep, ResumeReportsJournalledDuplicates)
{
    // A crash between the journal append and the checkpoint dedup can
    // leave the same point recorded twice; resume must keep the last
    // record and surface the count instead of absorbing it silently.
    TempJournal journal("csv_dup_counter.jsonl");
    SweepOptions opts = quiet(2);
    opts.checkpointPath = journal.str();

    const auto first = runCsvSweep(
        4, [](std::size_t i, SweepWorker &) { return gridRow(i); },
        failedRow, opts);
    ASSERT_TRUE(first.ok());

    // Re-journal two points by hand, as a crashed writer would have.
    {
        std::ofstream out(journal.str(), std::ios::app);
        out << "{\"point\":1,\"status\":\"ok\",\"row\":[\"1\","
               "\"1\"]}\n"
            << "{\"point\":2,\"status\":\"ok\",\"row\":[\"2\","
               "\"4\"]}\n";
    }

    ObsRegistry registry;
    opts.resume = true;
    opts.registry = &registry;
    const auto second = runCsvSweep(
        4, [](std::size_t i, SweepWorker &) { return gridRow(i); },
        failedRow, opts);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value().skipped, 4u);
    EXPECT_EQ(second.value().rows, first.value().rows);

    const Counter *dups = registry.findCounter("checkpoint.duplicates");
    ASSERT_NE(dups, nullptr);
    EXPECT_EQ(dups->value, 2u);
}

TEST(CsvSweep, FailedPointsRerunOnResume)
{
    TempJournal journal("csv_retry_failed.jsonl");
    SweepOptions opts = robust(2, 1);
    opts.checkpointPath = journal.str();

    const auto first = runCsvSweep(
        8,
        [](std::size_t i, SweepWorker &) {
            if (i == 5)
                throw VcError(makeError(Errc::Io, "transient outage"));
            return gridRow(i);
        },
        failedRow, opts);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value().rows[5], (CsvRow{"5", "failed"}));

    // The outage is over; resume re-runs only the failed point.
    std::atomic<std::size_t> evaluations{0};
    opts.resume = true;
    const auto second = runCsvSweep(
        8,
        [&](std::size_t i, SweepWorker &) {
            evaluations.fetch_add(1, std::memory_order_relaxed);
            return gridRow(i);
        },
        failedRow, opts);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(evaluations.load(), 1u);
    EXPECT_EQ(second.value().skipped, 7u);
    EXPECT_EQ(second.value().rows[5], gridRow(5));
}

// ---------------------------------------------------------------------
// Batched group attempts: shared-workload groups, fallback, identity.
// ---------------------------------------------------------------------

/** Pair every even index with its successor; odds-at-end singleton. */
SweepGroups
pairGroups(std::size_t points)
{
    SweepGroups groups;
    for (std::size_t i = 0; i < points; i += 2) {
        std::vector<std::size_t> g{i};
        if (i + 1 < points)
            g.push_back(i + 1);
        groups.push_back(std::move(g));
    }
    return groups;
}

TEST(SweepBatched, GroupsCompleteEveryPointExactlyOnce)
{
    constexpr std::size_t kPoints = 21;
    std::vector<std::atomic<int>> visits(kPoints);
    const auto outcome = runSweepBatched(
        kPoints, pairGroups(kPoints),
        [&](std::size_t i, SweepWorker &) {
            visits[i].fetch_add(1, std::memory_order_relaxed);
        },
        [&](std::span<const std::size_t> group, SweepWorker &) {
            std::vector<bool> done;
            for (std::size_t i : group) {
                visits[i].fetch_add(1, std::memory_order_relaxed);
                done.push_back(true);
            }
            return done;
        },
        quiet(4));

    EXPECT_EQ(outcome.completedOk, kPoints);
    EXPECT_TRUE(outcome.failures.empty());
    for (std::size_t i = 0; i < kPoints; ++i)
        EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    // Ten pairs batch; the trailing singleton takes the solo path.
    EXPECT_EQ(outcome.batchedGroups, 10u);
    EXPECT_EQ(outcome.batchedPoints, 20u);
}

TEST(SweepBatched, FailedBatchFallsBackToSoloWithFullRetries)
{
    constexpr std::size_t kPoints = 8;
    std::vector<std::atomic<int>> soloRuns(kPoints);
    const auto outcome = runSweepBatched(
        kPoints, pairGroups(kPoints),
        [&](std::size_t i, SweepWorker &) {
            soloRuns[i].fetch_add(1, std::memory_order_relaxed);
        },
        [](std::span<const std::size_t> group, SweepWorker &) {
            // Complete only the first member of each pair; a short
            // vector fails the remainder back to the solo path.
            return std::vector<bool>{!group.empty()};
        },
        quiet(2));

    EXPECT_EQ(outcome.completedOk, kPoints);
    EXPECT_TRUE(outcome.failures.empty());
    for (std::size_t i = 0; i < kPoints; ++i)
        EXPECT_EQ(soloRuns[i].load(), i % 2 == 0 ? 0 : 1) << i;
    EXPECT_EQ(outcome.batchedPoints, 4u);
}

TEST(SweepBatched, ThrowingBatchDoesNotConsumeSoloAttempts)
{
    std::atomic<int> soloRuns{0};
    SweepOptions opts = robust(1, 2);
    const auto outcome = runSweepBatched(
        2, {{0, 1}},
        [&](std::size_t, SweepWorker &) {
            soloRuns.fetch_add(1, std::memory_order_relaxed);
            throw VcError(makeError(Errc::Io, "down"));
        },
        [](std::span<const std::size_t>,
           SweepWorker &) -> std::vector<bool> {
            throw VcError(makeError(Errc::Io, "batch down"));
        },
        opts);

    // Every member still got its full maxAttempts solo budget.
    EXPECT_EQ(soloRuns.load(), 4);
    EXPECT_EQ(outcome.failures.size(), 2u);
    EXPECT_EQ(outcome.batchedPoints, 0u);
}

TEST(SweepBatched, DisabledBatchingNeverCallsBatchEval)
{
    std::atomic<int> batchCalls{0};
    SweepOptions opts = quiet(2);
    opts.batch = false;
    const auto outcome = runSweepBatched(
        6, pairGroups(6), [](std::size_t, SweepWorker &) {},
        [&](std::span<const std::size_t> group, SweepWorker &) {
            batchCalls.fetch_add(1, std::memory_order_relaxed);
            return std::vector<bool>(group.size(), true);
        },
        opts);
    EXPECT_EQ(outcome.completedOk, 6u);
    EXPECT_EQ(batchCalls.load(), 0);
    EXPECT_EQ(outcome.batchedPoints, 0u);
}

TEST(SweepBatched, PublishesBatchCounters)
{
    ObsRegistry registry;
    SweepOptions opts = quiet(2);
    opts.registry = &registry;
    runSweepBatched(
        4, pairGroups(4), [](std::size_t, SweepWorker &) {},
        [](std::span<const std::size_t> group, SweepWorker &) {
            return std::vector<bool>(group.size(), true);
        },
        opts);
    const Counter *points = registry.findCounter("sweep.batch_points");
    ASSERT_NE(points, nullptr);
    EXPECT_EQ(points->value, 4u);
    const Counter *groups = registry.findCounter("sweep.batch_groups");
    ASSERT_NE(groups, nullptr);
    EXPECT_EQ(groups->value, 2u);
}

/** Batched row renderer agreeing with gridRow, optionally partial. */
std::vector<std::optional<CsvRow>>
batchGridRows(std::span<const std::size_t> group, SweepWorker &)
{
    std::vector<std::optional<CsvRow>> rows;
    for (std::size_t i : group)
        rows.emplace_back(gridRow(i));
    return rows;
}

TEST(CsvSweepBatched, RowsByteIdenticalToUnbatchedRun)
{
    constexpr std::size_t kPoints = 24;
    const SweepGroups groups = pairGroups(kPoints);
    const auto solo_eval = [](std::size_t i, SweepWorker &) {
        return gridRow(i);
    };

    SweepOptions batched = quiet(4);
    const auto with = runCsvSweepBatched(
        kPoints, solo_eval, batchGridRows, failedRow, groups, batched);
    ASSERT_TRUE(with.ok());
    EXPECT_GT(with.value().outcome.batchedPoints, 0u);

    SweepOptions unbatched = quiet(1);
    unbatched.batch = false;
    const auto without = runCsvSweepBatched(
        kPoints, solo_eval, batchGridRows, failedRow, groups,
        unbatched);
    ASSERT_TRUE(without.ok());
    EXPECT_EQ(without.value().outcome.batchedPoints, 0u);

    EXPECT_EQ(with.value().rows, without.value().rows);
}

TEST(CsvSweepBatched, NulloptMembersFallBackToSoloRows)
{
    const auto result = runCsvSweepBatched(
        6, [](std::size_t i, SweepWorker &) { return gridRow(i); },
        [](std::span<const std::size_t> group, SweepWorker &) {
            // Batch completes nothing; every row must still appear.
            return std::vector<std::optional<CsvRow>>(group.size());
        },
        failedRow, pairGroups(6), quiet(2));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result.value().complete());
    for (std::size_t i = 0; i < 6; ++i)
        EXPECT_EQ(result.value().rows[i], gridRow(i));
    EXPECT_EQ(result.value().outcome.batchedPoints, 0u);
}

TEST(CsvSweepBatched, ResumeSkipsJournalledPointsInsideGroups)
{
    TempJournal journal("csv_batch_resume.jsonl");
    SweepOptions opts = quiet(2);
    opts.checkpointPath = journal.str();

    const auto first = runCsvSweepBatched(
        10, [](std::size_t i, SweepWorker &) { return gridRow(i); },
        batchGridRows, failedRow, pairGroups(10), opts);
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(first.value().complete());

    std::atomic<int> evaluations{0};
    opts.resume = true;
    const auto second = runCsvSweepBatched(
        10,
        [&](std::size_t i, SweepWorker &) {
            evaluations.fetch_add(1, std::memory_order_relaxed);
            return gridRow(i);
        },
        [&](std::span<const std::size_t> group, SweepWorker &w) {
            evaluations.fetch_add(static_cast<int>(group.size()),
                                  std::memory_order_relaxed);
            return batchGridRows(group, w);
        },
        failedRow, pairGroups(10), opts);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(evaluations.load(), 0);
    EXPECT_EQ(second.value().skipped, 10u);
    EXPECT_EQ(second.value().rows, first.value().rows);
}

} // namespace
} // namespace vcache
