/** Tests for the parallel sweep engine. */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/comparison.hh"
#include "core/defaults.hh"
#include "sim/sweep.hh"
#include "util/cli.hh"
#include "util/table.hh"

namespace vcache
{
namespace
{

SweepOptions
quiet(unsigned jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    opts.progress = false;
    return opts;
}

TEST(Sweep, ResultsIndexedByGridPosition)
{
    std::vector<int> grid;
    for (int i = 0; i < 100; ++i)
        grid.push_back(i);
    const auto results = sweepGrid(
        grid, [](const int &v, SweepWorker &) { return v * v; },
        quiet(4));
    ASSERT_EQ(results.size(), grid.size());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(results[static_cast<std::size_t>(i)], i * i);
}

TEST(Sweep, EmptyGrid)
{
    const std::vector<int> grid;
    SweepOutcome outcome;
    const auto results = sweepGrid(
        grid, [](const int &v, SweepWorker &) { return v; }, quiet(4),
        &outcome);
    EXPECT_TRUE(results.empty());
    EXPECT_EQ(outcome.points, 0u);
    EXPECT_DOUBLE_EQ(outcome.pointsPerSecond(), 0.0);
}

TEST(Sweep, JobsClampedToPoints)
{
    std::vector<int> grid{1, 2};
    SweepOutcome outcome;
    sweepGrid(grid, [](const int &v, SweepWorker &) { return v; },
              quiet(16), &outcome);
    EXPECT_EQ(outcome.jobs, 2u);
}

TEST(Sweep, MergedStatsMatchSerialAccumulation)
{
    std::vector<int> grid;
    for (int i = 1; i <= 200; ++i)
        grid.push_back(i);

    RunningStats serial;
    for (int v : grid)
        serial.add(static_cast<double>(v));

    SweepOutcome outcome;
    sweepGrid(
        grid,
        [](const int &v, SweepWorker &w) {
            w.stats.add(static_cast<double>(v));
            return v;
        },
        quiet(4), &outcome);

    EXPECT_EQ(outcome.stats.count(), serial.count());
    EXPECT_DOUBLE_EQ(outcome.stats.min(), serial.min());
    EXPECT_DOUBLE_EQ(outcome.stats.max(), serial.max());
    EXPECT_NEAR(outcome.stats.mean(), serial.mean(), 1e-9);
    EXPECT_NEAR(outcome.stats.sum(), serial.sum(), 1e-6);
    EXPECT_NEAR(outcome.stats.variance(), serial.variance(), 1e-6);
}

/** Render one model grid as CSV with the given worker count. */
std::string
modelGridCsv(unsigned jobs)
{
    struct Point
    {
        std::uint64_t tm;
        std::uint64_t b;
    };
    std::vector<Point> grid;
    for (std::uint64_t tm = 4; tm <= 32; tm += 4)
        for (std::uint64_t b : {512ull, 1024ull, 2048ull})
            grid.push_back({tm, b});

    const auto rows = sweepGrid(
        grid,
        [](const Point &g, SweepWorker &) {
            MachineParams machine = paperMachineM32();
            machine.memoryTime = g.tm;
            WorkloadParams w = paperWorkload();
            w.blockingFactor = static_cast<double>(g.b);
            const auto p = compareMachines(machine, w);
            return std::vector<std::string>{
                Table::format(g.tm), Table::format(g.b),
                Table::format(p.mm), Table::format(p.direct),
                Table::format(p.prime)};
        },
        quiet(jobs));

    Table csv({"t_m", "B", "mm", "direct", "prime"});
    for (const auto &row : rows)
        csv.addRowStrings(row);
    std::ostringstream os;
    csv.printCsv(os);
    return os.str();
}

TEST(Sweep, CsvByteIdenticalAcrossWorkerCounts)
{
    const std::string serial = modelGridCsv(1);
    EXPECT_EQ(serial, modelGridCsv(2));
    EXPECT_EQ(serial, modelGridCsv(4));
    EXPECT_EQ(serial, modelGridCsv(7));
}

TEST(Sweep, RunSweepVisitsEveryIndexOnce)
{
    constexpr std::size_t kPoints = 300;
    std::vector<int> visits(kPoints, 0);
    const auto outcome = runSweep(
        kPoints,
        [&](std::size_t i, SweepWorker &) { ++visits[i]; },
        quiet(4));
    EXPECT_EQ(outcome.points, kPoints);
    for (std::size_t i = 0; i < kPoints; ++i)
        EXPECT_EQ(visits[i], 1) << "index " << i;
}

TEST(Sweep, TelemetryReportsPerWorkerProgress)
{
    auto sink = std::make_shared<std::ostringstream>();
    SweepOptions opts = quiet(3);
    opts.label = "grid \"q\"";
    opts.telemetry = sink;

    std::vector<int> grid;
    for (int i = 0; i < 50; ++i)
        grid.push_back(i);
    sweepGrid(grid, [](const int &v, SweepWorker &) { return v; },
              opts);

    std::istringstream lines(sink->str());
    std::string first, line, last;
    std::getline(lines, first);
    while (std::getline(lines, line))
        last = line;

    EXPECT_NE(first.find("\"event\":\"sweep_start\""),
              std::string::npos);
    EXPECT_NE(first.find("\"points\":50"), std::string::npos);
    EXPECT_NE(first.find("\"jobs\":3"), std::string::npos);
    // Quotes in the label must arrive escaped (valid JSON lines).
    EXPECT_NE(first.find("\"label\":\"grid \\\"q\\\"\""),
              std::string::npos);

    ASSERT_NE(last.find("\"event\":\"sweep_end\""), std::string::npos);
    // The per-worker counts account for every point exactly once.
    const auto open = last.find("\"workers\":[");
    ASSERT_NE(open, std::string::npos);
    const auto close = last.find(']', open);
    ASSERT_NE(close, std::string::npos);
    std::istringstream counts(
        last.substr(open + 11, close - open - 11));
    std::uint64_t total = 0, value = 0;
    std::size_t workers = 0;
    char comma = 0;
    while (counts >> value) {
        total += value;
        ++workers;
        counts >> comma;
    }
    EXPECT_EQ(workers, 3u);
    EXPECT_EQ(total, 50u);
}

TEST(Sweep, NoTelemetrySinkWritesNothing)
{
    // The default options leave the sink null; this mostly checks the
    // sweep does not trip on the absent stream.
    std::vector<int> grid{1, 2, 3};
    const auto results = sweepGrid(
        grid, [](const int &v, SweepWorker &) { return v + 1; },
        quiet(2));
    EXPECT_EQ(results[2], 4);
}

TEST(SweepFlags, RoundTripThroughArgParser)
{
    ArgParser args("test");
    addSweepFlags(args);
    std::vector<std::string> storage{"prog", "--jobs=3", "--seed=99",
                                     "--progress=false"};
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    args.parse(static_cast<int>(argv.size()), argv.data());

    const SweepOptions opts = sweepOptionsFromFlags(args, "label");
    EXPECT_EQ(opts.jobs, 3u);
    EXPECT_EQ(opts.seed, 99u);
    EXPECT_FALSE(opts.progress);
    EXPECT_EQ(opts.label, "label");
}

TEST(SweepFlagsDeathTest, ImplausibleJobsCountIsFatal)
{
    ArgParser args("test");
    addSweepFlags(args);
    std::vector<std::string> storage{"prog", "--jobs=1000000"};
    std::vector<char *> argv;
    for (auto &s : storage)
        argv.push_back(s.data());
    args.parse(static_cast<int>(argv.size()), argv.data());
    EXPECT_EXIT((void)sweepOptionsFromFlags(args),
                testing::ExitedWithCode(1), "out of range");
}

} // namespace
} // namespace vcache
