/** Tests for the trace-driven CC-model simulator. */

#include <gtest/gtest.h>

#include "core/defaults.hh"
#include "sim/cc_sim.hh"
#include "sim/runner.hh"
#include "trace/multistride.hh"
#include "trace/vcm.hh"

namespace vcache
{
namespace
{

Trace
repeatedSweep(std::int64_t stride, std::uint64_t n,
              std::uint64_t repeats)
{
    Trace trace;
    for (std::uint64_t r = 0; r < repeats; ++r) {
        VectorOp op;
        op.first = VectorRef{0, stride, n};
        trace.push_back(op);
    }
    return trace;
}

TEST(CcSimulator, CacheConfigMatchesScheme)
{
    const MachineParams m = paperMachineM32();
    EXPECT_EQ(ccCacheConfig(m, CacheScheme::Direct).organization,
              Organization::DirectMapped);
    EXPECT_EQ(ccCacheConfig(m, CacheScheme::Prime).organization,
              Organization::PrimeMapped);
    CcSimulator direct(m, CacheScheme::Direct);
    EXPECT_EQ(direct.cache().numLines(), 8192u);
    CcSimulator prime(m, CacheScheme::Prime);
    EXPECT_EQ(prime.cache().numLines(), 8191u);
}

TEST(CcSimulator, FirstPassIsCompulsoryOnly)
{
    const MachineParams m = paperMachineM32();
    const auto r =
        simulateCc(m, CacheScheme::Prime, repeatedSweep(1, 1024, 1));
    EXPECT_EQ(r.misses, 1024u);
    EXPECT_EQ(r.compulsoryMisses, 1024u);
    EXPECT_EQ(r.hits, 0u);
}

TEST(CcSimulator, ReusedUnitStrideDataHits)
{
    const MachineParams m = paperMachineM32();
    const auto r =
        simulateCc(m, CacheScheme::Prime, repeatedSweep(1, 1024, 4));
    EXPECT_EQ(r.misses, 1024u);
    EXPECT_EQ(r.hits, 3u * 1024u);
}

TEST(CcSimulator, PowerOfTwoStrideThrashesDirectOnly)
{
    // Stride 2048 over the 8192-line direct cache: 4-line coverage.
    const MachineParams m = paperMachineM32();
    const auto trace = repeatedSweep(2048, 1024, 4);

    const auto direct = simulateCc(m, CacheScheme::Direct, trace);
    const auto prime = simulateCc(m, CacheScheme::Prime, trace);

    EXPECT_EQ(prime.misses, 1024u); // compulsory only
    EXPECT_GT(direct.misses, 4000u); // nearly everything
    EXPECT_LT(prime.totalCycles, direct.totalCycles / 2);
}

TEST(CcSimulator, InterferenceMissCostsMemoryTime)
{
    MachineParams m = paperMachineM32();
    m.memoryTime = 16;
    // Two lines aliasing in a direct cache, accessed alternately.
    Trace trace;
    for (int i = 0; i < 8; ++i) {
        VectorOp op;
        op.first = VectorRef{static_cast<Addr>(i % 2 ? 8192 : 0), 1, 1};
        trace.push_back(op);
    }
    const auto r = simulateCc(m, CacheScheme::Direct, trace);
    EXPECT_EQ(r.misses, 8u);
    EXPECT_EQ(r.compulsoryMisses, 2u);
    // The six interference misses stall t_m each.
    EXPECT_EQ(r.stallCycles, 6u * 16u);
}

TEST(CcSimulator, WarmStripSkipsMemoryStartup)
{
    MachineParams m = paperMachineM32();
    // Cold pass vs warm pass over one 64-element strip.
    const auto one = simulateCc(m, CacheScheme::Prime,
                                repeatedSweep(1, 64, 1));
    const auto two = simulateCc(m, CacheScheme::Prime,
                                repeatedSweep(1, 64, 2));
    // The second pass costs blockOverhead + strip(15 + 46 - 16) + 64
    // = 119 cycles.
    EXPECT_EQ(two.totalCycles - one.totalCycles, 119u);
}

TEST(CcSimulator, PrimeBeatsDirectOnRandomMultistride)
{
    const MachineParams m = paperMachineM32();
    const auto trace = generateMultistrideTrace(
        MultistrideParams{2048, 64, 0.25, 8192, 0}, 13);
    const auto direct = simulateCc(m, CacheScheme::Direct, trace);
    const auto prime = simulateCc(m, CacheScheme::Prime, trace);
    EXPECT_LT(prime.missRatio(), direct.missRatio());
    EXPECT_LT(prime.totalCycles, direct.totalCycles);
}

TEST(CcSimulator, ResetGivesRepeatableRuns)
{
    const MachineParams m = paperMachineM32();
    CcSimulator sim(m, CacheScheme::Prime);
    const auto trace = repeatedSweep(5, 300, 3);
    const auto a = sim.run(trace);
    sim.reset();
    const auto b = sim.run(trace);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.hits, b.hits);
}

TEST(CcSimulator, CustomCacheConfiguration)
{
    // The simulator accepts any cache, e.g. 2-way set-associative.
    const MachineParams m = paperMachineM32();
    CacheConfig config;
    config.organization = Organization::SetAssociative;
    config.indexBits = 13;
    config.associativity = 2;
    CcSimulator sim(m, config);
    const auto r = sim.run(repeatedSweep(1, 256, 2));
    EXPECT_EQ(r.hits, 256u);
}

TEST(CcSimulatorPrefetch, CannotFixInterference)
{
    // Stride 2048 over the direct cache collapses onto 4 frames:
    // prefetches land on the frames the demand stream is thrashing
    // and evict each other, so even deep prefetching leaves the full
    // miss penalty (the paper's argument against [8]'s schemes).
    MachineParams m = paperMachineM32();
    m.memoryTime = 16;
    const auto trace = repeatedSweep(2048, 1024, 4);

    CcSimulator bare(m, CacheScheme::Direct);
    const auto r_bare = bare.run(trace);

    for (unsigned degree : {1u, 4u, 16u}) {
        CcSimulator pf(m, CacheScheme::Direct);
        pf.enablePrefetch(PrefetchPolicy::Stride, degree);
        const auto r_pf = pf.run(trace);
        EXPECT_GT(pf.prefetchesIssued(), 0u);
        EXPECT_GT(r_pf.stallCycles, r_bare.stallCycles / 2)
            << "degree " << degree;
    }

    // The bare prime cache removes the interference instead.
    CcSimulator prime(m, CacheScheme::Prime);
    const auto r_prime = prime.run(trace);
    EXPECT_LT(r_prime.stallCycles, r_bare.stallCycles / 4);
}

TEST(CcSimulatorPrefetch, FixesCapacityStreamingNotInterference)
{
    // A 16K-word unit-stride stream re-swept through the 8K cache:
    // every re-sweep access is a *capacity* miss costing t_m, even
    // though the 32 banks could stream it.  Sequential prefetching
    // recovers almost all of it -- the one job prefetch does well.
    // (Interference misses are the CannotFixInterference test; note
    // cache-thrashing strides are multiples of 32 and therefore
    // bank-serialised too, so prefetch has no bandwidth to use
    // there.)
    MachineParams m = paperMachineM32();
    m.memoryTime = 16;
    const auto trace = repeatedSweep(1, 16384, 3);

    CcSimulator bare(m, CacheScheme::Direct);
    const auto r_bare = bare.run(trace);
    ASSERT_GT(r_bare.stallCycles, 2u * 16384u * 12u); // capacity bound

    CcSimulator pf(m, CacheScheme::Direct);
    pf.enablePrefetch(PrefetchPolicy::Sequential, 2);
    const auto r_pf = pf.run(trace);
    EXPECT_LT(r_pf.stallCycles, r_bare.stallCycles / 4);

    // The prime mapping does NOT help capacity misses: the working
    // set simply does not fit.
    CcSimulator prime(m, CacheScheme::Prime);
    const auto r_prime = prime.run(trace);
    EXPECT_GT(r_prime.stallCycles, r_bare.stallCycles / 2);
}

TEST(CcSimulatorPrefetch, SequentialHelpsUnitStrideCompulsories)
{
    MachineParams m = paperMachineM32();
    // A long unit-stride first pass is already pipelined; sequential
    // prefetch must not make it slower.
    const auto trace = repeatedSweep(1, 2048, 2);
    CcSimulator bare(m, CacheScheme::Direct);
    CcSimulator pf(m, CacheScheme::Direct);
    pf.enablePrefetch(PrefetchPolicy::Sequential, 2);
    const auto r_bare = bare.run(trace);
    const auto r_pf = pf.run(trace);
    EXPECT_LE(r_pf.totalCycles, r_bare.totalCycles * 1.1);
}

TEST(CcSimulatorPrefetch, ResetClearsPrefetchState)
{
    MachineParams m = paperMachineM32();
    CcSimulator sim(m, CacheScheme::Direct);
    sim.enablePrefetch(PrefetchPolicy::Stride, 4);
    const auto trace = repeatedSweep(512, 256, 2);
    const auto a = sim.run(trace);
    const auto issued = sim.prefetchesIssued();
    sim.reset();
    const auto b = sim.run(trace);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(sim.prefetchesIssued(), issued);
}

TEST(CcSimulatorNonBlocking, PipelinedMissesCostBankSlotsNotStalls)
{
    MachineParams m = paperMachineM32();
    m.memoryTime = 16;
    // Stride 2048 re-sweeps: all interference misses.
    const auto trace = repeatedSweep(2048, 1024, 4);

    CcSimulator blocking(m, CacheScheme::Direct);
    const auto r_block = blocking.run(trace);

    CcSimulator lockup_free(m, CacheScheme::Direct);
    lockup_free.setNonBlockingMisses(true);
    const auto r_free = lockup_free.run(trace);

    // Same misses, far fewer stalls -- but not zero: stride 2048
    // hits one bank (2048 mod 32 == 0), so the pipelined misses
    // still serialise on it.
    EXPECT_EQ(r_free.misses, r_block.misses);
    EXPECT_LT(r_free.totalCycles, r_block.totalCycles);
    EXPECT_GT(r_free.stallCycles, 0u);

    // The prime cache needs neither assumption.
    CcSimulator prime(m, CacheScheme::Prime);
    const auto r_prime = prime.run(trace);
    EXPECT_LT(r_prime.totalCycles, r_free.totalCycles);
}

TEST(CcSimulatorNonBlocking, NoEffectWhenNoInterference)
{
    MachineParams m = paperMachineM32();
    const auto trace = repeatedSweep(1, 1024, 3);
    CcSimulator a(m, CacheScheme::Prime);
    CcSimulator b(m, CacheScheme::Prime);
    b.setNonBlockingMisses(true);
    EXPECT_EQ(a.run(trace).totalCycles, b.run(trace).totalCycles);
}

TEST(SimResult, DerivedRatios)
{
    SimResult r;
    r.totalCycles = 1000;
    r.results = 250;
    r.hits = 30;
    r.misses = 10;
    EXPECT_DOUBLE_EQ(r.cyclesPerResult(), 4.0);
    EXPECT_DOUBLE_EQ(r.missRatio(), 0.25);
}

} // namespace
} // namespace vcache
