/**
 * Differential pins for the run-batched execution engines.
 *
 * SimEngine::Auto may fast-forward repeated constant-stride vector
 * operations in closed form; SimEngine::Scalar is the element-wise
 * reference.  The contract is bit-identical SimResults and cache
 * statistics for every cache organization, workload family, prefetch
 * and miss-model setting -- including cancellation behaviour and, in
 * -DVCACHE_FAULT_INJECTION=ON builds, fault-site accounting.  These
 * tests sweep that whole matrix through both engines and compare
 * field by field.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/defaults.hh"
#include "sim/cc_sim.hh"
#include "sim/mm_sim.hh"
#include "trace/loader.hh"
#include "trace/multistride.hh"
#include "trace/source.hh"
#include "trace/vcm.hh"
#include "util/faultinject.hh"

namespace vcache
{
namespace
{

void
expectSameResult(const SimResult &got, const SimResult &want,
                 const std::string &label)
{
    EXPECT_EQ(got.totalCycles, want.totalCycles) << label;
    EXPECT_EQ(got.stallCycles, want.stallCycles) << label;
    EXPECT_EQ(got.results, want.results) << label;
    EXPECT_EQ(got.hits, want.hits) << label;
    EXPECT_EQ(got.misses, want.misses) << label;
    EXPECT_EQ(got.compulsoryMisses, want.compulsoryMisses) << label;
}

void
expectSameStats(const CacheStats &got, const CacheStats &want,
                const std::string &label)
{
    EXPECT_EQ(got.accesses, want.accesses) << label;
    EXPECT_EQ(got.reads, want.reads) << label;
    EXPECT_EQ(got.writes, want.writes) << label;
    EXPECT_EQ(got.hits, want.hits) << label;
    EXPECT_EQ(got.misses, want.misses) << label;
    EXPECT_EQ(got.evictions, want.evictions) << label;
    EXPECT_EQ(got.writebacks, want.writebacks) << label;
}

/** All five cache organizations the library ships. */
std::vector<std::pair<std::string, CacheConfig>>
allSchemes()
{
    std::vector<std::pair<std::string, CacheConfig>> out;

    CacheConfig direct;
    out.emplace_back("direct", direct);

    CacheConfig prime;
    prime.organization = Organization::PrimeMapped;
    out.emplace_back("prime", prime);

    CacheConfig prime_assoc;
    prime_assoc.organization = Organization::PrimeSetAssociative;
    prime_assoc.associativity = 2;
    out.emplace_back("prime-assoc", prime_assoc);

    CacheConfig set_assoc;
    set_assoc.organization = Organization::SetAssociative;
    set_assoc.associativity = 4;
    out.emplace_back("set-assoc", set_assoc);

    CacheConfig xor_mapped;
    xor_mapped.organization = Organization::XorMapped;
    out.emplace_back("xor", xor_mapped);

    // Extra stress for the snapshot tier: random replacement (whose
    // RNG draw counter must veto extrapolation) and multi-word lines
    // (which the closed-form tier must refuse).
    CacheConfig random_assoc;
    random_assoc.organization = Organization::SetAssociative;
    random_assoc.associativity = 4;
    random_assoc.replacement = ReplacementKind::Random;
    out.emplace_back("set-assoc-random", random_assoc);

    CacheConfig wide_lines;
    wide_lines.offsetBits = 2;
    out.emplace_back("direct-4word", wide_lines);

    return out;
}

VcmParams
vcmParams()
{
    VcmParams p;
    p.blockingFactor = 512;
    p.reuseFactor = 6;
    p.blocks = 3;
    p.maxStride = 4096;
    return p;
}

MultistrideParams
multistrideParams()
{
    return MultistrideParams{1024, 12, 0.25, 8192, 0, 3};
}

/**
 * A hand-written trace covering the shapes the batched engines
 * special-case: repeated streaming ops with stores, stride zero,
 * negative strides, double streams, and engine-unfriendly length
 * edges (single element, exactly one strip, one strip plus one).
 */
const Trace &
loadedTrace()
{
    static const Trace trace = [] {
        std::istringstream in(R"(# batched-engine differential trace
L 0 2 300
S 65536 1 300
L 0 2 300
S 65536 1 300
L 0 2 300
S 65536 1 300
L 0 2 300
S 65536 1 300
L 100 0 64
L 100 0 64
L 100 0 64
L 9000 -3 500
L 9000 -3 500
L 9000 -3 500
D 0 1 256 131072 4 200
D 0 1 256 131072 4 200
L 4096 1 1
L 4096 1 1
L 4096 1 1
L 8192 7 64
L 8192 7 64
L 8192 7 65
L 8192 7 65
L 16384 8192 128
L 16384 8192 128
L 16384 8192 128
L 16384 8192 128
)");
        return loadTrace(in);
    }();
    return trace;
}

struct CcOutcome
{
    SimResult result;
    CacheStats stats;
    std::uint64_t prefetches;
};

CcOutcome
runCc(const CacheConfig &config, TraceSource &source, SimEngine engine,
      bool prefetch, bool non_blocking)
{
    CcSimulator sim(paperMachineM32(), config);
    if (prefetch)
        sim.enablePrefetch(PrefetchPolicy::Stride, 2);
    sim.setNonBlockingMisses(non_blocking);
    sim.setEngine(engine);
    source.reset();
    const SimResult result = sim.run(source);
    return {result, sim.cache().stats(), sim.prefetchesIssued()};
}

void
diffCc(const CacheConfig &config, TraceSource &source,
       const std::string &label)
{
    for (const bool prefetch : {false, true}) {
        for (const bool non_blocking : {false, true}) {
            const std::string tag = label +
                                    (prefetch ? "+prefetch" : "") +
                                    (non_blocking ? "+nonblock" : "");
            const CcOutcome scalar = runCc(config, source,
                                           SimEngine::Scalar, prefetch,
                                           non_blocking);
            const CcOutcome batched = runCc(config, source,
                                            SimEngine::Auto, prefetch,
                                            non_blocking);
            expectSameResult(batched.result, scalar.result, tag);
            expectSameStats(batched.stats, scalar.stats, tag);
            EXPECT_EQ(batched.prefetches, scalar.prefetches) << tag;
        }
    }
}

TEST(BatchedCcDifferential, VcmTrace)
{
    VcmTraceSource source(vcmParams(), 42);
    for (const auto &[name, config] : allSchemes())
        diffCc(config, source, "vcm/" + name);
}

TEST(BatchedCcDifferential, MultistrideTrace)
{
    MultistrideTraceSource source(multistrideParams(), 7);
    for (const auto &[name, config] : allSchemes())
        diffCc(config, source, "multistride/" + name);
}

TEST(BatchedCcDifferential, LoadedTrace)
{
    TraceVectorSource source(loadedTrace());
    for (const auto &[name, config] : allSchemes())
        diffCc(config, source, "loaded/" + name);
}

TEST(BatchedCcDifferential, ConstantStrideStreams)
{
    for (const std::int64_t stride : {1, 3, 33, 8192}) {
        ConstantStrideSource source(64, stride, 1000, 25, true);
        for (const auto &[name, config] : allSchemes())
            diffCc(config, source,
                   "const-stride-" + std::to_string(stride) + "/" +
                       name);
    }
}

/** Machine variants exercising every MM fast-forward eligibility arm. */
std::vector<std::pair<std::string, MachineParams>>
mmMachines()
{
    std::vector<std::pair<std::string, MachineParams>> out;

    MachineParams base = paperMachineM32();
    out.emplace_back("m32-tm16", base);

    MachineParams fast = base;
    fast.memoryTime = 4;
    out.emplace_back("m32-tm4", fast);

    MachineParams few_banks = base;
    few_banks.bankBits = 3;
    few_banks.memoryTime = 64;
    out.emplace_back("m8-tm64", few_banks);

    MachineParams prime_banks = base;
    prime_banks.bankMapping = BankMapping::PrimeModulo;
    out.emplace_back("prime-banks", prime_banks);

    MachineParams skewed = base;
    skewed.bankMapping = BankMapping::Skewed;
    out.emplace_back("skewed", skewed);

    MachineParams xor_banks = base;
    xor_banks.bankMapping = BankMapping::XorHash;
    out.emplace_back("xor-banks", xor_banks);

    return out;
}

Trace
mmTrace()
{
    Trace trace;
    const auto add = [&](Addr base, std::int64_t stride,
                         std::uint64_t length, bool store = false) {
        VectorOp op;
        op.first = VectorRef{base, stride, length};
        if (store)
            op.store = VectorRef{base + 1000000, 1, length};
        trace.push_back(op);
    };
    add(0, 1, 1000, true);
    add(0, 1, 1000, true);
    add(64, 32, 200);
    add(64, 32, 200);
    add(7, 33, 129);
    add(512, 0, 100);
    add(1000000, -5, 300);
    add(4096, 1, 1);
    add(4096, 1, 64);
    add(4096, 1, 65);
    // A double-stream op after batched ones: its element-wise issue
    // consumes the bus/bank state the fast-forwards absorbed, so any
    // absorption error shows up as a timing difference here.
    VectorOp twin;
    twin.first = VectorRef{0, 1, 256};
    twin.second = VectorRef{500000, 4, 200};
    trace.push_back(twin);
    add(0, 2, 555);
    return trace;
}

TEST(BatchedMmDifferential, MachinesByMapping)
{
    const Trace trace = mmTrace();
    for (const auto &[name, machine] : mmMachines()) {
        MmSimulator scalar(machine);
        scalar.setEngine(SimEngine::Scalar);
        const SimResult want = scalar.run(trace);

        MmSimulator batched(machine);
        batched.setEngine(SimEngine::Auto);
        const SimResult got = batched.run(trace);
        expectSameResult(got, want, name);
    }
}

TEST(BatchedMmDifferential, ConstantStrideStream)
{
    for (const std::int64_t stride : {1, 2, 32, 1023}) {
        ConstantStrideSource source(0, stride, 2048, 10, true);
        for (const auto &[name, machine] : mmMachines()) {
            source.reset();
            MmSimulator scalar(machine);
            scalar.setEngine(SimEngine::Scalar);
            const SimResult want = scalar.run(source);

            source.reset();
            MmSimulator batched(machine);
            batched.setEngine(SimEngine::Auto);
            const SimResult got = batched.run(source);
            expectSameResult(got, want,
                             name + "/stride" +
                                 std::to_string(stride));
        }
    }
}

/** Trips the cancel token just before the Nth op is produced. */
class CancellingSource final : public TraceSource
{
  public:
    CancellingSource(TraceSource &inner, CancelToken &token,
                     std::uint64_t after)
        : inner(inner), token(token), after(after)
    {
    }

    bool
    next(VectorOp &op) override
    {
        if (served == after)
            token.requestCancel(CancelToken::Reason::Cancelled);
        ++served;
        return inner.next(op);
    }

    void
    reset() override
    {
        served = 0;
        inner.reset();
    }

  private:
    TraceSource &inner;
    CancelToken &token;
    std::uint64_t after;
    std::uint64_t served = 0;
};

TEST(BatchedCancellation, CcPollsPerOpInBothEngines)
{
    // Cancel mid-run, after the batched engine has certified the op
    // and is extrapolating: the poll must still fire per op.
    ConstantStrideSource stream(0, 1, 512, 40, false);
    for (const SimEngine engine :
         {SimEngine::Scalar, SimEngine::Auto}) {
        CancelToken token;
        CancellingSource source(stream, token, 10);
        source.reset();
        CcSimulator sim(paperMachineM32(), CacheConfig{});
        sim.setEngine(engine);
        sim.setCancelToken(&token);
        EXPECT_THROW(sim.run(source), VcError)
            << simEngineName(engine);
    }
}

TEST(BatchedCancellation, MmPollsPerOpInBothEngines)
{
    ConstantStrideSource stream(0, 1, 512, 40, false);
    for (const SimEngine engine :
         {SimEngine::Scalar, SimEngine::Auto}) {
        CancelToken token;
        CancellingSource source(stream, token, 10);
        source.reset();
        MmSimulator sim(paperMachineM32());
        sim.setEngine(engine);
        sim.setCancelToken(&token);
        EXPECT_THROW(sim.run(source), VcError)
            << simEngineName(engine);
    }
}

/**
 * Fault-injection interplay (compiled-in sites only): an armed plan
 * must observe identical site traffic from both engines.  The MM
 * fast-forward would skip memory.bank.issue sites, so it falls back
 * to element-wise replay when a plan is live; the CC engine keeps
 * batching because provably-steady passes never reach those sites in
 * either engine.
 */
class BatchedFaults : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!faults::kEnabled)
            GTEST_SKIP()
                << "fault-injection sites not compiled in";
    }

    void TearDown() override { faults::clearFaults(); }

    void
    install(const std::string &spec)
    {
        const auto plan = faults::parseFaultSpec(spec, 1);
        ASSERT_TRUE(plan.ok()) << spec;
        faults::configureFaults(plan.value());
    }
};

TEST_F(BatchedFaults, MmArmedPlanFiresIdentically)
{
    const Trace trace = mmTrace();
    std::uint64_t hits[2] = {0, 0};
    int threw = 0;
    int i = 0;
    for (const SimEngine engine :
         {SimEngine::Scalar, SimEngine::Auto}) {
        // Reinstall per run: site hit counters reset on install.
        install("memory.bank.issue=throw@every:1500");
        MmSimulator sim(paperMachineM32());
        sim.setEngine(engine);
        try {
            sim.run(trace);
        } catch (const VcError &) {
            ++threw;
        }
        hits[i++] = faults::faultSiteHits("memory.bank.issue");
    }
    EXPECT_EQ(threw, 2);
    EXPECT_EQ(hits[0], hits[1]);
}

TEST_F(BatchedFaults, CcDormantRuleKeepsBatchingAndCountsMatch)
{
    ConstantStrideSource source(0, 1, 1000, 20, true);
    std::uint64_t hits[2] = {0, 0};
    SimResult results[2];
    int i = 0;
    for (const SimEngine engine :
         {SimEngine::Scalar, SimEngine::Auto}) {
        install("memory.bank.issue=throw@every:1000000000");
        source.reset();
        CcSimulator sim(paperMachineM32(), CacheConfig{});
        sim.setEngine(engine);
        results[i] = sim.run(source);
        hits[i] = faults::faultSiteHits("memory.bank.issue");
        ++i;
    }
    expectSameResult(results[1], results[0], "cc-armed-plan");
    EXPECT_EQ(hits[0], hits[1]);
}

} // namespace
} // namespace vcache
