/** Tests for the JSON-lines sweep checkpoint journal. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "sim/checkpoint.hh"

namespace vcache
{
namespace
{

/** Temp journal path removed on scope exit. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : p(std::string(::testing::TempDir()) + name)
    {
        std::remove(p.c_str());
    }

    ~TempPath() { std::remove(p.c_str()); }

    const std::string &str() const { return p; }

  private:
    std::string p;
};

CheckpointHeader
header()
{
    CheckpointHeader h;
    h.label = "grid";
    h.points = 10;
    h.seed = 7;
    return h;
}

TEST(Checkpoint, RoundTripsDoneAndFailedRecords)
{
    TempPath path("ckpt_roundtrip.jsonl");
    {
        auto writer = CheckpointWriter::open(path.str(), header(), false);
        ASSERT_TRUE(writer.ok()) << writer.error().describe();
        ASSERT_TRUE(
            writer.value()->recordDone(3, {"a", "1.5", ""}).ok());
        ASSERT_TRUE(writer.value()
                        ->recordFailed(
                            5, makeError(Errc::Timeout, "too slow"), 3)
                        .ok());
        ASSERT_TRUE(writer.value()->flush().ok());
    }

    const auto replay = readCheckpoint(path.str());
    ASSERT_TRUE(replay.ok()) << replay.error().describe();
    EXPECT_EQ(replay.value().header.label, "grid");
    EXPECT_EQ(replay.value().header.points, 10u);
    EXPECT_EQ(replay.value().header.seed, 7u);
    ASSERT_EQ(replay.value().done.size(), 1u);
    const auto &row = replay.value().done.at(3);
    EXPECT_EQ(row, (std::vector<std::string>{"a", "1.5", ""}));
    EXPECT_EQ(replay.value().failed,
              (std::set<std::uint64_t>{5}));
}

TEST(Checkpoint, EscapesQuotesBackslashesAndControlCharacters)
{
    TempPath path("ckpt_escape.jsonl");
    const std::vector<std::string> nasty{"say \"hi\"", "a\\b",
                                         "line\nbreak", "tab\there",
                                         std::string(1, '\x01')};
    {
        auto writer = CheckpointWriter::open(path.str(), header(), false);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.value()->recordDone(0, nasty).ok());
    }
    const auto replay = readCheckpoint(path.str());
    ASSERT_TRUE(replay.ok()) << replay.error().describe();
    EXPECT_EQ(replay.value().done.at(0), nasty);
}

TEST(Checkpoint, LastRecordForAPointWins)
{
    TempPath path("ckpt_lastwins.jsonl");
    {
        auto writer = CheckpointWriter::open(path.str(), header(), false);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.value()
                        ->recordFailed(
                            2, makeError(Errc::Io, "flaky"), 1)
                        .ok());
        // The point succeeded after a resume: the later "ok" record
        // must shadow the earlier failure.
        ASSERT_TRUE(writer.value()->recordDone(2, {"fine"}).ok());
    }
    const auto replay = readCheckpoint(path.str());
    ASSERT_TRUE(replay.ok());
    EXPECT_TRUE(replay.value().failed.empty());
    EXPECT_EQ(replay.value().done.at(2),
              (std::vector<std::string>{"fine"}));
}

TEST(Checkpoint, CountsDuplicatePointRecords)
{
    TempPath path("ckpt_dups.jsonl");
    {
        auto writer = CheckpointWriter::open(path.str(), header(), false);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.value()->recordDone(1, {"a"}).ok());
        ASSERT_TRUE(writer.value()->recordDone(2, {"b"}).ok());
        // Every re-journalled point counts, whatever the transition:
        // ok -> ok (a crash between append and dedup), failed -> ok
        // (retry succeeded after a resume) and ok -> failed.
        ASSERT_TRUE(writer.value()->recordDone(1, {"a2"}).ok());
        ASSERT_TRUE(writer.value()
                        ->recordFailed(
                            3, makeError(Errc::Io, "flaky"), 1)
                        .ok());
        ASSERT_TRUE(writer.value()->recordDone(3, {"c"}).ok());
        ASSERT_TRUE(writer.value()
                        ->recordFailed(
                            2, makeError(Errc::Timeout, "slow"), 2)
                        .ok());
    }
    const auto replay = readCheckpoint(path.str());
    ASSERT_TRUE(replay.ok()) << replay.error().describe();
    EXPECT_EQ(replay.value().duplicates, 3u);
    // Last-write-wins is unchanged by the counting.
    EXPECT_EQ(replay.value().done.at(1),
              (std::vector<std::string>{"a2"}));
    EXPECT_EQ(replay.value().done.at(3),
              (std::vector<std::string>{"c"}));
    EXPECT_EQ(replay.value().failed,
              (std::set<std::uint64_t>{2}));
}

TEST(Checkpoint, NoDuplicatesInACleanJournal)
{
    TempPath path("ckpt_nodups.jsonl");
    {
        auto writer = CheckpointWriter::open(path.str(), header(), false);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.value()->recordDone(0, {"a"}).ok());
        ASSERT_TRUE(writer.value()->recordDone(1, {"b"}).ok());
        ASSERT_TRUE(writer.value()
                        ->recordFailed(
                            2, makeError(Errc::Io, "x"), 1)
                        .ok());
    }
    const auto replay = readCheckpoint(path.str());
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay.value().duplicates, 0u);
}

TEST(Checkpoint, AppendModePreservesExistingRecords)
{
    TempPath path("ckpt_append.jsonl");
    {
        auto writer = CheckpointWriter::open(path.str(), header(), false);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.value()->recordDone(1, {"first"}).ok());
    }
    {
        auto writer = CheckpointWriter::open(path.str(), header(), true);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.value()->recordDone(2, {"second"}).ok());
    }
    const auto replay = readCheckpoint(path.str());
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay.value().done.size(), 2u);
}

TEST(Checkpoint, ToleratesTornFinalLine)
{
    TempPath path("ckpt_torn.jsonl");
    {
        auto writer = CheckpointWriter::open(path.str(), header(), false);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.value()->recordDone(4, {"whole"}).ok());
    }
    // Simulate a process killed mid-write: a record missing its tail.
    {
        std::ofstream out(path.str(), std::ios::app);
        out << "{\"point\":5,\"status\":\"ok\",\"row\":[\"ha";
    }
    const auto replay = readCheckpoint(path.str());
    ASSERT_TRUE(replay.ok()) << replay.error().describe();
    EXPECT_EQ(replay.value().done.size(), 1u);
    EXPECT_TRUE(replay.value().done.count(4));
}

TEST(Checkpoint, AppendAfterTornTailHealsTheJournal)
{
    // Crash -> resume -> crash -> resume: the resume append must not
    // concatenate its first record onto the previous run's torn final
    // line, or the *second* resume sees a corrupt mid-file line.
    TempPath path("ckpt_torn_append.jsonl");
    {
        auto writer = CheckpointWriter::open(path.str(), header(), false);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.value()->recordDone(1, {"one"}).ok());
    }
    {
        // First crash: SIGKILL mid-write leaves a torn record.
        std::ofstream out(path.str(), std::ios::app);
        out << "{\"point\":2,\"status\":\"ok\",\"row\":[\"tw";
    }
    auto replay = readCheckpoint(path.str());
    ASSERT_TRUE(replay.ok()) << replay.error().describe();
    {
        // First resume appends the re-run point.
        auto writer = CheckpointWriter::open(path.str(), header(), true);
        ASSERT_TRUE(writer.ok()) << writer.error().describe();
        ASSERT_TRUE(writer.value()->recordDone(2, {"two"}).ok());
    }
    {
        // Second crash.
        std::ofstream out(path.str(), std::ios::app);
        out << "{\"point\":3,\"st";
    }
    // The second resume must still parse every completed record.
    replay = readCheckpoint(path.str());
    ASSERT_TRUE(replay.ok()) << replay.error().describe();
    EXPECT_EQ(replay.value().done.size(), 2u);
    EXPECT_EQ(replay.value().done.at(1),
              (std::vector<std::string>{"one"}));
    EXPECT_EQ(replay.value().done.at(2),
              (std::vector<std::string>{"two"}));

    // And a further heal-append-read cycle stays clean.
    {
        auto writer = CheckpointWriter::open(path.str(), header(), true);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.value()->recordDone(3, {"three"}).ok());
    }
    replay = readCheckpoint(path.str());
    ASSERT_TRUE(replay.ok()) << replay.error().describe();
    EXPECT_EQ(replay.value().done.size(), 3u);
}

TEST(Checkpoint, RejectsCompleteButCorruptFinalRecord)
{
    // A record that *is* newline-terminated but fails to parse is not
    // a torn tail -- the writer always emits the newline with the
    // record -- so it must be rejected, not silently dropped.
    TempPath path("ckpt_corrupt_final.jsonl");
    {
        auto writer = CheckpointWriter::open(path.str(), header(), false);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.value()->recordDone(1, {"good"}).ok());
    }
    {
        std::ofstream out(path.str(), std::ios::app);
        out << "{\"point\":2,\"status\":\"ok\",\"row\":[\"x\"}\n";
    }
    const auto replay = readCheckpoint(path.str());
    ASSERT_FALSE(replay.ok());
    EXPECT_EQ(replay.error().code, Errc::Io);
    EXPECT_NE(replay.error().message.find("line 3"), std::string::npos);
}

TEST(Checkpoint, TornTailAfterBlankLineIsStillTolerated)
{
    // The eof()-based torn-tail test must fire on the line that
    // actually failed to parse, even when earlier blank lines were
    // skipped.
    TempPath path("ckpt_torn_blank.jsonl");
    {
        auto writer = CheckpointWriter::open(path.str(), header(), false);
        ASSERT_TRUE(writer.ok());
        ASSERT_TRUE(writer.value()->recordDone(7, {"whole"}).ok());
    }
    {
        std::ofstream out(path.str(), std::ios::app);
        out << "\n{\"point\":8,\"status\":\"ok";
    }
    const auto replay = readCheckpoint(path.str());
    ASSERT_TRUE(replay.ok()) << replay.error().describe();
    EXPECT_EQ(replay.value().done.size(), 1u);
    EXPECT_TRUE(replay.value().done.count(7));
}

TEST(Checkpoint, HealReportsTheReadFailuresErrno)
{
    // Opening a directory as a checkpoint makes every read fail with
    // EISDIR; the heal path must report *that* errno, captured before
    // fclose can clobber it.
    auto writer =
        CheckpointWriter::open(::testing::TempDir(), header(), true);
    ASSERT_FALSE(writer.ok());
    EXPECT_EQ(writer.error().code, Errc::Io);
    EXPECT_NE(writer.error().message.find("cannot read checkpoint"),
              std::string::npos);
    EXPECT_NE(writer.error().message.find("Is a directory"),
              std::string::npos);
}

TEST(Checkpoint, RejectsCorruptionBeforeTheFinalLine)
{
    TempPath path("ckpt_corrupt.jsonl");
    {
        auto writer = CheckpointWriter::open(path.str(), header(), false);
        ASSERT_TRUE(writer.ok());
    }
    {
        std::ofstream out(path.str(), std::ios::app);
        out << "garbage in the middle\n";
        out << "{\"point\":1,\"status\":\"ok\",\"row\":[\"x\"]}\n";
    }
    const auto replay = readCheckpoint(path.str());
    ASSERT_FALSE(replay.ok());
    EXPECT_EQ(replay.error().code, Errc::Io);
    EXPECT_NE(replay.error().message.find("line 2"), std::string::npos);
}

TEST(Checkpoint, RejectsMissingOrBadHeader)
{
    TempPath path("ckpt_nohdr.jsonl");
    {
        std::ofstream out(path.str());
        out << "{\"point\":1,\"status\":\"ok\",\"row\":[\"x\"]}\n";
    }
    EXPECT_FALSE(readCheckpoint(path.str()).ok());

    const auto missing = readCheckpoint(
        std::string(::testing::TempDir()) + "ckpt_never_written.jsonl");
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, Errc::Io);
}

TEST(Checkpoint, ResumeCompatibilityNamesTheMismatch)
{
    CheckpointReplay replay;
    replay.header = header();

    EXPECT_TRUE(checkResumeCompatible(replay, header()).ok());

    CheckpointHeader other = header();
    other.label = "other";
    auto bad = checkResumeCompatible(replay, other);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, Errc::InvalidConfig);
    EXPECT_NE(bad.error().message.find("label"), std::string::npos);

    other = header();
    other.points = 11;
    bad = checkResumeCompatible(replay, other);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.error().message.find("points"), std::string::npos);

    other = header();
    other.seed = 8;
    bad = checkResumeCompatible(replay, other);
    ASSERT_FALSE(bad.ok());
    EXPECT_NE(bad.error().message.find("seed"), std::string::npos);
}

TEST(Checkpoint, JsonEscapeRoundTripBasics)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
    EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
    EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
    EXPECT_EQ(jsonEscape(std::string(1, '\x02')), "\\u0002");
}

} // namespace
} // namespace vcache
