/** Tests for the trace-driven MM-model simulator. */

#include <gtest/gtest.h>

#include "analytic/mm_model.hh"
#include "core/defaults.hh"
#include "sim/mm_sim.hh"
#include "sim/runner.hh"
#include "trace/multistride.hh"
#include "trace/vcm.hh"
#include "util/stats.hh"

namespace vcache
{
namespace
{

Trace
singleSweep(std::int64_t stride, std::uint64_t n)
{
    VectorOp op;
    op.first = VectorRef{0, stride, n};
    return {op};
}

TEST(MmSimulator, UnitStrideHasNoStalls)
{
    MachineParams m = paperMachineM32(); // t_m = 16 < M = 32
    const auto r = simulateMm(m, singleSweep(1, 1024));
    EXPECT_EQ(r.stallCycles, 0u);
    EXPECT_EQ(r.results, 1024u);
}

TEST(MmSimulator, OverheadAccounting)
{
    // One 64-element strip: 10 + (15 + 46) + 64 issues = 135 cycles,
    // exactly Equation (1) with T_elem = 1.
    MachineParams m = paperMachineM32();
    const auto r = simulateMm(m, singleSweep(1, 64));
    EXPECT_EQ(r.totalCycles, 135u);
}

TEST(MmSimulator, SingleBankStrideStallsMatchModel)
{
    MachineParams m = paperMachineM32();
    m.memoryTime = 8;
    // Stride 32 = M: every element hits bank 0.
    const auto r = simulateMm(m, singleSweep(32, 512));
    // Model: (t_m - 1) per element after each strip's first access;
    // allow the per-strip boundary slack.
    const double expect = 511.0 * 7.0;
    EXPECT_NEAR(static_cast<double>(r.stallCycles), expect,
                expect * 0.15);
}

TEST(MmSimulator, StallsGrowWithMemoryTime)
{
    const auto trace = generateMultistrideTrace(
        MultistrideParams{1024, 32, 0.25, 32, 0}, 5);
    MachineParams m = paperMachineM32();
    Cycles prev = 0;
    for (std::uint64_t tm : {4ull, 8ull, 16ull, 32ull}) {
        m.memoryTime = tm;
        const auto r = simulateMm(m, trace);
        EXPECT_GE(r.stallCycles, prev) << "t_m=" << tm;
        prev = r.stallCycles;
    }
}

TEST(MmSimulator, CyclesPerResultFlatInReuse)
{
    // Re-running the same vector costs the same every time: the MM
    // machine cannot exploit reuse (Figure 5's flat MM curves).
    MachineParams m = paperMachineM32();
    VcmParams p;
    p.blockingFactor = 512;
    p.maxStride = 32;
    p.blocks = 2;
    p.pDoubleStream = 0.0;
    p.fixedStride1 = 8; // keep the workload identical across R

    p.reuseFactor = 1;
    const double once =
        simulateMm(m, generateVcmTrace(p, 3)).cyclesPerResult();
    p.reuseFactor = 16;
    const double many =
        simulateMm(m, generateVcmTrace(p, 3)).cyclesPerResult();
    EXPECT_NEAR(many, once, once * 0.05);
}

TEST(MmSimulator, TracksAnalyticModelOnRandomStrides)
{
    // The analytic MM model and the simulator must agree within ~25%
    // on the paper's random-multistride workload.
    MachineParams m = paperMachineM32();
    WorkloadParams w = paperWorkload();
    w.blockingFactor = 1024;
    w.reuseFactor = 16;
    w.pDoubleStream = 0.0; // single stream: the cleanest comparison
    w.totalData = 8192;

    VcmParams p;
    p.blockingFactor = 1024;
    p.reuseFactor = 16;
    p.pDoubleStream = 0.0;
    p.maxStride = 32;
    p.blocks = 8;

    RunningStats sim_cpr;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const auto r = simulateMm(m, generateVcmTrace(p, seed));
        sim_cpr.add(r.cyclesPerResult());
    }
    const double model = cyclesPerResultMm(m, w);
    EXPECT_NEAR(sim_cpr.mean(), model, model * 0.25);
}

TEST(MmSimulator, ResetGivesRepeatableRuns)
{
    MachineParams m = paperMachineM32();
    MmSimulator sim(m);
    const auto trace = singleSweep(3, 500);
    const auto a = sim.run(trace);
    sim.reset();
    const auto b = sim.run(trace);
    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.stallCycles, b.stallCycles);
}

} // namespace
} // namespace vcache
