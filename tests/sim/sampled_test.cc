/**
 * Differential pins for the SMARTS-style sampling engine.
 *
 * The sampled estimator is statistical, so the contract differs from
 * the batched engine's bit-identity: across the cache-organization x
 * workload matrix the reported confidence interval must cover the
 * exact (scalar, full-trace) cycles-per-element on at least 90% of
 * seeds; and for a fixed seed the estimate must be bit-identical
 * whatever the worker count (live-points make units independent and
 * the reduction runs in unit order).  Degenerate single-unit sampling
 * must reproduce the exact result, and live-points must round-trip
 * through the checkpoint journal.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "core/defaults.hh"
#include "obs/registry.hh"
#include "sim/cc_sim.hh"
#include "sim/checkpoint.hh"
#include "sim/mm_sim.hh"
#include "sim/sampling.hh"
#include "trace/multistride.hh"
#include "trace/source.hh"
#include "trace/vcm.hh"

namespace vcache
{
namespace
{

/** Self-deleting temp file path. */
class TempPath
{
  public:
    explicit TempPath(const std::string &name)
        : path_(std::string(::testing::TempDir()) + name)
    {
        std::remove(path_.c_str());
    }

    ~TempPath() { std::remove(path_.c_str()); }

    const std::string &str() const { return path_; }

  private:
    std::string path_;
};

/** The same organization matrix the batched differential sweeps. */
std::vector<std::pair<std::string, CacheConfig>>
allSchemes()
{
    std::vector<std::pair<std::string, CacheConfig>> out;

    CacheConfig direct;
    out.emplace_back("direct", direct);

    CacheConfig prime;
    prime.organization = Organization::PrimeMapped;
    out.emplace_back("prime", prime);

    CacheConfig prime_assoc;
    prime_assoc.organization = Organization::PrimeSetAssociative;
    prime_assoc.associativity = 2;
    out.emplace_back("prime-assoc", prime_assoc);

    CacheConfig set_assoc;
    set_assoc.organization = Organization::SetAssociative;
    set_assoc.associativity = 4;
    out.emplace_back("set-assoc", set_assoc);

    CacheConfig xor_mapped;
    xor_mapped.organization = Organization::XorMapped;
    out.emplace_back("xor", xor_mapped);

    CacheConfig random_assoc;
    random_assoc.organization = Organization::SetAssociative;
    random_assoc.associativity = 4;
    random_assoc.replacement = ReplacementKind::Random;
    out.emplace_back("set-assoc-random", random_assoc);

    CacheConfig wide_lines;
    wide_lines.offsetBits = 2;
    out.emplace_back("direct-4word", wide_lines);

    return out;
}

/** Workload family traces (materialized once). */
std::vector<std::pair<std::string, const Trace *>>
workloads()
{
    static const Trace vcm = [] {
        VcmParams p;
        p.blockingFactor = 512;
        p.reuseFactor = 6;
        p.blocks = 3;
        p.maxStride = 4096;
        return generateVcmTrace(p, 42);
    }();
    static const Trace multistride = generateMultistrideTrace(
        MultistrideParams{1024, 12, 0.25, 8192, 0, 3}, 7);
    static const Trace streaming = [] {
        ConstantStrideSource source(64, 33, 1000, 25, true);
        return materializeTrace(source);
    }();
    return {{"vcm", &vcm},
            {"multistride", &multistride},
            {"streaming", &streaming}};
}

double
exactCcCpe(const CacheConfig &config, const Trace &trace,
           SimResult *out = nullptr)
{
    CcSimulator sim(paperMachineM32(), config);
    sim.setEngine(SimEngine::Scalar);
    const SimResult r = sim.run(trace);
    if (out)
        *out = r;
    return static_cast<double>(r.totalCycles) /
           static_cast<double>(r.results);
}

SamplingOptions
testOptions(std::uint64_t seed)
{
    SamplingOptions opts;
    opts.unitElements = 256;
    opts.initialUnits = 8;
    opts.seed = seed;
    return opts;
}

TEST(SamplingUnits, PartitionIsContiguousAndExhaustive)
{
    const Trace &trace = *workloads()[0].second;
    const auto units = partitionUnits(trace, 256);
    ASSERT_FALSE(units.empty());
    std::size_t expect_begin = 0;
    std::uint64_t elements = 0;
    for (const SamplingUnit &u : units) {
        EXPECT_EQ(u.opBegin, expect_begin);
        EXPECT_GT(u.opEnd, u.opBegin);
        std::uint64_t have = 0;
        for (std::size_t i = u.opBegin; i < u.opEnd; ++i)
            have += trace[i].first.length;
        EXPECT_EQ(have, u.elements);
        elements += have;
        expect_begin = u.opEnd;
    }
    EXPECT_EQ(expect_begin, trace.size());
    std::uint64_t total = 0;
    for (const VectorOp &op : trace)
        total += op.first.length;
    EXPECT_EQ(elements, total);
    // Every unit but possibly the last reaches the element floor.
    for (std::size_t i = 0; i + 1 < units.size(); ++i)
        EXPECT_GE(units[i].elements, 256u);
}

TEST(SamplingCc, SingleUnitReproducesTheExactResult)
{
    const Trace &trace = *workloads()[0].second;
    for (const auto &[name, config] : allSchemes()) {
        SimResult exact;
        const double cpe = exactCcCpe(config, trace, &exact);

        SamplingOptions opts = testOptions(1);
        opts.unitElements = ~std::uint64_t{0}; // one unit: everything
        const auto est = sampleCc(paperMachineM32(), config, trace,
                                  opts);
        ASSERT_TRUE(est.ok()) << name;
        EXPECT_EQ(est.value().unitsTotal, 1u) << name;
        EXPECT_EQ(est.value().unitsMeasured, 1u) << name;
        EXPECT_DOUBLE_EQ(est.value().cyclesPerElement, cpe) << name;
        EXPECT_TRUE(est.value().ciMet) << name;
        EXPECT_EQ(est.value().detailedTotals.totalCycles,
                  exact.totalCycles)
            << name;
        EXPECT_EQ(est.value().detailedTotals.misses, exact.misses)
            << name;
        EXPECT_EQ(est.value().detailedTotals.compulsoryMisses,
                  exact.compulsoryMisses)
            << name;
    }
}

TEST(SamplingCc, CiCoversTheExactCpeAcrossTheMatrix)
{
    constexpr std::uint64_t kSeeds = 8;
    std::uint64_t covered = 0;
    std::uint64_t trials = 0;
    for (const auto &[wname, trace] : workloads()) {
        for (const auto &[cname, config] : allSchemes()) {
            const double exact = exactCcCpe(config, *trace);
            for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
                const auto est = sampleCc(paperMachineM32(), config,
                                          *trace, testOptions(seed));
                ASSERT_TRUE(est.ok()) << wname << "/" << cname;
                const SamplingEstimate &e = est.value();
                EXPECT_GT(e.unitsMeasured, 0u);
                ++trials;
                if (std::abs(e.cyclesPerElement - exact) <=
                    e.ciHalfWidth)
                    ++covered;
            }
        }
    }
    // 95% nominal coverage, 90% acceptance: slack for the floored
    // non-sampling bias allowance and the t approximation.
    EXPECT_GE(covered * 10, trials * 9)
        << covered << " of " << trials << " intervals covered";
}

TEST(SamplingCc, WorkerCountDoesNotChangeTheEstimate)
{
    const Trace &trace = *workloads()[1].second;
    for (const auto &[name, config] : allSchemes()) {
        SamplingEstimate ref;
        bool have_ref = false;
        for (const unsigned jobs : {1u, 4u, 8u}) {
            SamplingOptions opts = testOptions(3);
            opts.jobs = jobs;
            const auto est =
                sampleCc(paperMachineM32(), config, trace, opts);
            ASSERT_TRUE(est.ok()) << name;
            if (!have_ref) {
                ref = est.value();
                have_ref = true;
                continue;
            }
            const SamplingEstimate &e = est.value();
            const std::string tag =
                name + "/jobs=" + std::to_string(jobs);
            EXPECT_EQ(e.cyclesPerElement, ref.cyclesPerElement) << tag;
            EXPECT_EQ(e.ciHalfWidth, ref.ciHalfWidth) << tag;
            EXPECT_EQ(e.unitsMeasured, ref.unitsMeasured) << tag;
            EXPECT_EQ(e.rounds, ref.rounds) << tag;
            EXPECT_EQ(e.detailedTotals.totalCycles,
                      ref.detailedTotals.totalCycles)
                << tag;
            EXPECT_EQ(e.detailedTotals.misses,
                      ref.detailedTotals.misses)
                << tag;
        }
    }
}

TEST(SamplingMm, CiCoversTheExactCpeOnEveryBankMapping)
{
    constexpr std::uint64_t kSeeds = 8;
    std::vector<std::pair<std::string, MachineParams>> machines;
    machines.emplace_back("low-order", paperMachineM32());
    MachineParams skewed = paperMachineM32();
    skewed.bankMapping = BankMapping::Skewed;
    machines.emplace_back("skewed", skewed);

    std::uint64_t covered = 0;
    std::uint64_t trials = 0;
    for (const auto &[wname, trace] : workloads()) {
        for (const auto &[mname, machine] : machines) {
            MmSimulator sim(machine);
            sim.setEngine(SimEngine::Scalar);
            const SimResult r = sim.run(*trace);
            const double exact = static_cast<double>(r.totalCycles) /
                                 static_cast<double>(r.results);
            for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
                const auto est =
                    sampleMm(machine, *trace, testOptions(seed));
                ASSERT_TRUE(est.ok()) << wname << "/" << mname;
                ++trials;
                if (std::abs(est.value().cyclesPerElement - exact) <=
                    est.value().ciHalfWidth)
                    ++covered;
            }
        }
    }
    EXPECT_GE(covered * 10, trials * 9)
        << covered << " of " << trials << " intervals covered";
}

TEST(SamplingMm, WorkerCountDoesNotChangeTheEstimate)
{
    MachineParams machine = paperMachineM32();
    machine.bankMapping = BankMapping::Skewed;
    const Trace &trace = *workloads()[2].second;
    SamplingEstimate ref;
    bool have_ref = false;
    for (const unsigned jobs : {1u, 4u, 8u}) {
        SamplingOptions opts = testOptions(5);
        opts.jobs = jobs;
        const auto est = sampleMm(machine, trace, opts);
        ASSERT_TRUE(est.ok());
        if (!have_ref) {
            ref = est.value();
            have_ref = true;
            continue;
        }
        EXPECT_EQ(est.value().cyclesPerElement, ref.cyclesPerElement);
        EXPECT_EQ(est.value().ciHalfWidth, ref.ciHalfWidth);
        EXPECT_EQ(est.value().unitsMeasured, ref.unitsMeasured);
    }
}

TEST(SamplingLivePoints, EncodeDecodeRoundTrip)
{
    LivePoint lp;
    lp.unit = 9;
    lp.captureOp = 7;
    lp.unitBegin = 9;
    lp.unitEnd = 12;
    lp.cacheState = {3, 17, 0, ~std::uint64_t{0}};
    lp.prewarmedLines = {1024, 4097};

    const auto decoded = decodeLivePoint(9, encodeLivePoint(lp));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().unit, lp.unit);
    EXPECT_EQ(decoded.value().captureOp, lp.captureOp);
    EXPECT_EQ(decoded.value().unitBegin, lp.unitBegin);
    EXPECT_EQ(decoded.value().unitEnd, lp.unitEnd);
    EXPECT_EQ(decoded.value().cacheState, lp.cacheState);
    EXPECT_EQ(decoded.value().prewarmedLines, lp.prewarmedLines);
}

TEST(SamplingLivePoints, DecodeRejectsCorruptRows)
{
    EXPECT_FALSE(decodeLivePoint(0, {"1", "2"}).ok());
    EXPECT_FALSE(decodeLivePoint(0, {"1", "2", "3", "nope"}).ok());
    // Declared cache words exceed the row.
    EXPECT_FALSE(decodeLivePoint(0, {"1", "2", "3", "9", "5"}).ok());
}

TEST(SamplingLivePoints, JournalRoundTripsThroughTheCheckpoint)
{
    const Trace &trace = *workloads()[2].second;
    CacheConfig config;
    config.organization = Organization::PrimeMapped;

    TempPath journal("live_points.ckpt");
    SamplingOptions opts = testOptions(2);
    opts.livePointJournal = journal.str();
    const auto est =
        sampleCc(paperMachineM32(), config, trace, opts);
    ASSERT_TRUE(est.ok());

    const auto replay = readCheckpoint(journal.str());
    ASSERT_TRUE(replay.ok());
    EXPECT_EQ(replay.value().header.label, "live_points");
    EXPECT_EQ(replay.value().header.points, est.value().unitsTotal);
    EXPECT_EQ(replay.value().done.size(), est.value().unitsMeasured);
    for (const auto &[unit, row] : replay.value().done) {
        const auto lp = decodeLivePoint(unit, row);
        ASSERT_TRUE(lp.ok()) << "unit " << unit;
        EXPECT_LE(lp.value().captureOp, lp.value().unitBegin);
        EXPECT_LT(lp.value().unitBegin, lp.value().unitEnd);
        // The snapshot must restore into a same-geometry cache.
        const auto cache = tryMakeCache(config);
        ASSERT_TRUE(cache.ok());
        EXPECT_TRUE(cache.value()->restoreState(lp.value().cacheState))
            << "unit " << unit;
    }
}

TEST(SamplingApi, RejectsBadOptionsAndEmptyTraces)
{
    const Trace empty;
    EXPECT_FALSE(
        sampleCc(paperMachineM32(), CacheConfig{}, empty).ok());
    EXPECT_FALSE(sampleMm(paperMachineM32(), empty).ok());

    const Trace &trace = *workloads()[0].second;
    SamplingOptions opts;
    opts.unitElements = 0;
    EXPECT_FALSE(
        sampleCc(paperMachineM32(), CacheConfig{}, trace, opts).ok());
    opts = SamplingOptions{};
    opts.targetRelativeCi = 0.0;
    EXPECT_FALSE(sampleMm(paperMachineM32(), trace, opts).ok());
    opts = SamplingOptions{};
    opts.confidence = 1.5;
    EXPECT_FALSE(
        sampleCc(paperMachineM32(), CacheConfig{}, trace, opts).ok());
}

TEST(SamplingApi, PublishesCounters)
{
    const Trace &trace = *workloads()[0].second;
    ObsRegistry registry;
    SamplingOptions opts = testOptions(1);
    opts.registry = &registry;
    const auto est =
        sampleCc(paperMachineM32(), CacheConfig{}, trace, opts);
    ASSERT_TRUE(est.ok());

    const Counter *total = registry.findCounter("sampling.units_total");
    const Counter *measured =
        registry.findCounter("sampling.units_measured");
    const Counter *skipped =
        registry.findCounter("sampling.units_skipped");
    const Counter *rounds = registry.findCounter("sampling.rounds");
    ASSERT_NE(total, nullptr);
    ASSERT_NE(measured, nullptr);
    ASSERT_NE(skipped, nullptr);
    ASSERT_NE(rounds, nullptr);
    EXPECT_EQ(total->value, est.value().unitsTotal);
    EXPECT_EQ(measured->value, est.value().unitsMeasured);
    EXPECT_EQ(total->value, measured->value + skipped->value);
    EXPECT_EQ(rounds->value, est.value().rounds);
    EXPECT_NE(registry.findCounter("sampling.achieved_ci_ppm"),
              nullptr);
    EXPECT_NE(registry.findCounter("sampling.ci_met"), nullptr);
}

} // namespace
} // namespace vcache
