/** Tests for stride/divisor class counting. */

#include <gtest/gtest.h>

#include "numtheory/divisors.hh"
#include "numtheory/gcd.hh"

namespace vcache
{
namespace
{

TEST(PowerOfTwo, Classification)
{
    EXPECT_TRUE(isPowerOfTwo(1));
    EXPECT_TRUE(isPowerOfTwo(2));
    EXPECT_TRUE(isPowerOfTwo(8192));
    EXPECT_FALSE(isPowerOfTwo(0));
    EXPECT_FALSE(isPowerOfTwo(3));
    EXPECT_FALSE(isPowerOfTwo(8191));
}

TEST(Log2, FloorAndCeil)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(8), 3u);
    EXPECT_EQ(floorLog2(9), 3u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(8), 3u);
    EXPECT_EQ(ceilLog2(9), 4u);
}

TEST(StridesWithGcd, CountsMatchEnumeration)
{
    // Enumerate strides 1..2^m and bucket by gcd; the class counts
    // must match the totient formula used in Equations (5)/(I_s^M).
    for (unsigned m : {3u, 5u, 6u}) {
        const std::uint64_t big_m = std::uint64_t{1} << m;
        for (unsigned i = 0; i <= m; ++i) {
            std::uint64_t count = 0;
            for (std::uint64_t s = 1; s <= big_m; ++s)
                if (gcd(big_m, s) == (std::uint64_t{1} << i))
                    ++count;
            EXPECT_EQ(stridesWithGcdPow2(m, i), count)
                << "m=" << m << " i=" << i;
        }
    }
}

TEST(StridesWithGcd, ClassesPartitionAllStrides)
{
    for (unsigned m : {2u, 5u, 10u}) {
        std::uint64_t total = 0;
        for (unsigned i = 0; i <= m; ++i)
            total += stridesWithGcdPow2(m, i);
        EXPECT_EQ(total, std::uint64_t{1} << m);
    }
}

TEST(SweepCoverage, Values)
{
    EXPECT_EQ(sweepCoverage(64, 1), 64u);
    EXPECT_EQ(sweepCoverage(64, 2), 32u);
    EXPECT_EQ(sweepCoverage(64, 6), 32u); // gcd 2
    EXPECT_EQ(sweepCoverage(64, 64), 1u);
    EXPECT_EQ(sweepCoverage(64, 128), 1u); // stride reduced mod 64
    EXPECT_EQ(sweepCoverage(64, 96), 2u);  // 96 mod 64 = 32
    EXPECT_EQ(sweepCoverage(8191, 2), 8191u); // prime modulus
    EXPECT_EQ(sweepCoverage(8191, 8191), 1u);
}

} // namespace
} // namespace vcache
