/** Tests for Mersenne arithmetic: folding equals true modulo. */

#include <gtest/gtest.h>

#include "numtheory/mersenne.hh"
#include "util/rng.hh"

namespace vcache
{
namespace
{

TEST(Mersenne, ExponentTable)
{
    EXPECT_TRUE(isMersenneExponent(13));
    EXPECT_TRUE(isMersenneExponent(31));
    EXPECT_FALSE(isMersenneExponent(11));
    EXPECT_FALSE(isMersenneExponent(16));
    EXPECT_EQ(mersenneExponents().size(), 8u);
}

TEST(Mersenne, Values)
{
    EXPECT_EQ(mersenne(2), 3u);
    EXPECT_EQ(mersenne(13), 8191u);
    EXPECT_EQ(mersenne(31), 2147483647u);
}

TEST(Mersenne, ExponentFor)
{
    EXPECT_EQ(mersenneExponentFor(1), 2u);
    EXPECT_EQ(mersenneExponentFor(4), 3u);
    EXPECT_EQ(mersenneExponentFor(8191), 13u);
    EXPECT_EQ(mersenneExponentFor(8192), 17u);
}

TEST(ModMersenne, MatchesDivision)
{
    Rng rng(77);
    for (unsigned c : {2u, 3u, 5u, 7u, 13u, 17u, 19u, 31u}) {
        const std::uint64_t m = mersenne(c);
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t x = rng.next() >> 4; // keep < 2^60
            EXPECT_EQ(modMersenne(x, c), x % m)
                << "x=" << x << " c=" << c;
        }
    }
}

TEST(ModMersenne, AllOnesAliasOfZero)
{
    for (unsigned c : {3u, 13u}) {
        EXPECT_EQ(modMersenne(mersenne(c), c), 0u);
        EXPECT_EQ(modMersenne(2 * mersenne(c), c), 0u);
    }
}

TEST(AddMersenne, MatchesModularAddition)
{
    Rng rng(78);
    for (unsigned c : {3u, 13u, 19u}) {
        const std::uint64_t m = mersenne(c);
        for (int i = 0; i < 2000; ++i) {
            const std::uint64_t a = rng.uniformInt(0, m);
            const std::uint64_t b = rng.uniformInt(0, m);
            // Operands may include the all-ones alias m itself.
            EXPECT_EQ(addMersenne(a, b, c), (a + b) % m)
                << a << "+" << b << " mod " << m;
        }
    }
}

TEST(MersenneResidue, RingOperations)
{
    Rng rng(79);
    const unsigned c = 13;
    const std::uint64_t m = mersenne(c);
    for (int i = 0; i < 500; ++i) {
        const std::uint64_t a = rng.uniformInt(0, m - 1);
        const std::uint64_t b = rng.uniformInt(0, m - 1);
        const MersenneResidue ra(a, c), rb(b, c);
        EXPECT_EQ((ra + rb).value(), (a + b) % m);
        EXPECT_EQ((ra - rb).value(), (a + m - b) % m);
        EXPECT_EQ((ra * rb).value(), a * b % m);
    }
}

TEST(MersenneResidue, ConstructorReduces)
{
    const MersenneResidue r(8191 + 5, 13);
    EXPECT_EQ(r.value(), 5u);
    EXPECT_EQ(r.modulus(), 8191u);
    EXPECT_EQ(r.exponent(), 13u);
}

TEST(MersenneResidue, SubtractionToZero)
{
    const MersenneResidue a(123, 13);
    EXPECT_EQ((a - a).value(), 0u);
}

TEST(MersenneDeathTest, MixedModuliPanic)
{
    const MersenneResidue a(1, 13), b(1, 17);
    EXPECT_DEATH((void)(a + b), "mixed");
}

TEST(MersenneDeathTest, NoPrimeFitsPanics)
{
    EXPECT_EXIT((void)mersenneExponentFor(3000000000ull),
                testing::ExitedWithCode(1), "no Mersenne prime");
}

} // namespace
} // namespace vcache
