/** Tests for the deterministic Miller-Rabin primality test. */

#include <gtest/gtest.h>

#include "numtheory/primality.hh"

namespace vcache
{
namespace
{

TEST(IsPrime, SmallValues)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(5));
    EXPECT_FALSE(isPrime(9));
    EXPECT_TRUE(isPrime(97));
    EXPECT_FALSE(isPrime(91)); // 7 * 13
}

TEST(IsPrime, MersennePrimes)
{
    // The exponents the prime-mapped cache can use.
    for (unsigned c : {2u, 3u, 5u, 7u, 13u, 17u, 19u, 31u})
        EXPECT_TRUE(isPrime((1ull << c) - 1)) << "c=" << c;
}

TEST(IsPrime, MersenneComposites)
{
    // 2^c - 1 is composite for these c even when c is prime (c = 11,
    // 23, 29) or composite (c = 4, 6, ...).
    for (unsigned c : {4u, 6u, 8u, 9u, 10u, 11u, 12u, 23u, 29u})
        EXPECT_FALSE(isPrime((1ull << c) - 1)) << "c=" << c;
}

TEST(IsPrime, AgainstSieve)
{
    // Cross-check the first 1000 integers against trial division.
    for (std::uint64_t n = 0; n < 1000; ++n) {
        bool ref = n >= 2;
        for (std::uint64_t d = 2; d * d <= n; ++d)
            if (n % d == 0) {
                ref = false;
                break;
            }
        EXPECT_EQ(isPrime(n), ref) << n;
    }
}

TEST(IsPrime, LargeKnownValues)
{
    EXPECT_TRUE(isPrime(2305843009213693951ull)); // 2^61 - 1
    EXPECT_FALSE(isPrime(2305843009213693951ull - 2));
    EXPECT_TRUE(isPrime(18446744073709551557ull)); // largest 64-bit
    EXPECT_FALSE(isPrime(18446744073709551615ull)); // 2^64 - 1
}

TEST(NextPrime, Walks)
{
    EXPECT_EQ(nextPrime(0), 2u);
    EXPECT_EQ(nextPrime(2), 3u);
    EXPECT_EQ(nextPrime(8190), 8191u);
    EXPECT_EQ(nextPrime(8191), 8209u);
}

TEST(PrevPrime, Walks)
{
    EXPECT_EQ(prevPrime(1), 0u);
    EXPECT_EQ(prevPrime(2), 2u);
    EXPECT_EQ(prevPrime(8192), 8191u);
    EXPECT_EQ(prevPrime(8190), 8179u);
}

} // namespace
} // namespace vcache
