/** Tests for gcd/extended-gcd helpers. */

#include <gtest/gtest.h>

#include "numtheory/gcd.hh"
#include "util/rng.hh"

namespace vcache
{
namespace
{

TEST(Gcd, Basics)
{
    EXPECT_EQ(gcd(12, 18), 6u);
    EXPECT_EQ(gcd(18, 12), 6u);
    EXPECT_EQ(gcd(7, 13), 1u);
    EXPECT_EQ(gcd(0, 5), 5u);
    EXPECT_EQ(gcd(5, 0), 5u);
    EXPECT_EQ(gcd(0, 0), 0u);
    EXPECT_EQ(gcd(64, 48), 16u);
}

TEST(Gcd, PowerOfTwoStrides)
{
    // gcd(2^m, s) picks out the 2-adic valuation of s.
    EXPECT_EQ(gcd(64, 24), 8u);
    EXPECT_EQ(gcd(64, 40), 8u);
    EXPECT_EQ(gcd(64, 33), 1u);
    EXPECT_EQ(gcd(64, 64), 64u);
}

TEST(Lcm, Basics)
{
    EXPECT_EQ(lcm(4, 6), 12u);
    EXPECT_EQ(lcm(0, 6), 0u);
    EXPECT_EQ(lcm(7, 13), 91u);
}

TEST(ExtendedGcd, BezoutIdentityHolds)
{
    Rng rng(3);
    for (int i = 0; i < 500; ++i) {
        const auto a =
            static_cast<std::int64_t>(rng.uniformInt(0, 1000000)) - 500000;
        const auto b =
            static_cast<std::int64_t>(rng.uniformInt(0, 1000000)) - 500000;
        const auto r = extendedGcd(a, b);
        EXPECT_EQ(a * r.x + b * r.y, r.g);
        EXPECT_GE(r.g, 0);
        if (a != 0 || b != 0) {
            EXPECT_EQ(static_cast<std::int64_t>(
                          gcd(static_cast<std::uint64_t>(a < 0 ? -a : a),
                              static_cast<std::uint64_t>(b < 0 ? -b : b))),
                      r.g);
        }
    }
}

TEST(ModInverse, InvertsUnits)
{
    for (std::uint64_t m : {7ull, 31ull, 8191ull}) {
        for (std::uint64_t a = 1; a < std::min<std::uint64_t>(m, 50);
             ++a) {
            const auto inv = modInverse(a, m);
            EXPECT_EQ(a * inv % m, 1u) << a << " mod " << m;
        }
    }
}

TEST(ModInverseDeathTest, NonUnitPanics)
{
    EXPECT_DEATH((void)modInverse(4, 8), "not invertible");
}

TEST(FloorMod, NegativeOperands)
{
    EXPECT_EQ(floorMod(-1, 8), 7u);
    EXPECT_EQ(floorMod(-8, 8), 0u);
    EXPECT_EQ(floorMod(-9, 8), 7u);
    EXPECT_EQ(floorMod(9, 8), 1u);
    EXPECT_EQ(floorMod(0, 8), 0u);
}

} // namespace
} // namespace vcache
