/** Tests for linear-congruence solving and cross-conflict counting. */

#include <gtest/gtest.h>

#include <tuple>

#include "numtheory/congruence.hh"
#include "util/rng.hh"

namespace vcache
{
namespace
{

TEST(LinearCongruence, UniqueSolution)
{
    // 3x == 2 (mod 7): x = 3.
    const auto xs = solveLinearCongruence(3, 2, 7);
    ASSERT_EQ(xs.size(), 1u);
    EXPECT_EQ(xs[0], 3u);
}

TEST(LinearCongruence, MultipleSolutions)
{
    // 4x == 8 (mod 12): gcd 4 divides 8 -> 4 solutions {2, 5, 8, 11}.
    const auto xs = solveLinearCongruence(4, 8, 12);
    EXPECT_EQ(xs, (std::vector<std::uint64_t>{2, 5, 8, 11}));
}

TEST(LinearCongruence, NoSolution)
{
    // 4x == 6 (mod 12): gcd 4 does not divide 6.
    EXPECT_TRUE(solveLinearCongruence(4, 6, 12).empty());
}

TEST(LinearCongruence, ZeroCoefficient)
{
    EXPECT_EQ(solveLinearCongruence(0, 0, 4).size(), 4u);
    EXPECT_TRUE(solveLinearCongruence(0, 3, 4).empty());
}

TEST(LinearCongruence, AgainstBruteForce)
{
    Rng rng(101);
    for (int trial = 0; trial < 300; ++trial) {
        const std::uint64_t m = rng.uniformInt(1, 40);
        const std::uint64_t a = rng.uniformInt(0, 80);
        const std::uint64_t b = rng.uniformInt(0, 80);
        std::vector<std::uint64_t> ref;
        for (std::uint64_t x = 0; x < m; ++x)
            if (a * x % m == b % m)
                ref.push_back(x);
        EXPECT_EQ(solveLinearCongruence(a, b, m), ref)
            << a << "x=" << b << " mod " << m;
    }
}

TEST(CrossConflict, SolverMatchesBruteForce)
{
    Rng rng(103);
    for (int trial = 0; trial < 200; ++trial) {
        CrossConflictQuery q;
        q.banks = std::uint64_t{1} << rng.uniformInt(0, 6);
        q.s1 = rng.uniformInt(1, q.banks);
        q.s2 = rng.uniformInt(1, q.banks);
        q.startDistance = rng.uniformInt(1, q.banks);
        q.elements = rng.uniformInt(1, 64);
        q.busyTime = rng.uniformInt(1, 16);
        EXPECT_EQ(crossConflictStalls(q), crossConflictStallsBruteForce(q))
            << "s1=" << q.s1 << " s2=" << q.s2 << " D="
            << q.startDistance << " M=" << q.banks << " n="
            << q.elements << " tm=" << q.busyTime;
    }
}

TEST(CrossConflict, NoConflictWhenDistanceUnreachable)
{
    // Even strides modulo an even modulus cannot bridge an odd D.
    CrossConflictQuery q{2, 2, 1, 8, 16, 4};
    EXPECT_EQ(crossConflictStalls(q), 0u);
}

TEST(CrossConflict, IdenticalStreamsFullyCollide)
{
    // Same stride, D == M (alias of 0): every i == j pair collides at
    // cost t_m.
    CrossConflictQuery q{1, 1, 8, 8, 32, 4};
    EXPECT_EQ(crossConflictStalls(q),
              crossConflictStallsBruteForce(q));
    EXPECT_GT(crossConflictStalls(q), 0u);
}

TEST(CrossConflict, UniformDAverageMatchesExactEnumeration)
{
    // Average the exact solver over all D in [1, M] and compare with
    // the closed form; by the one-D-per-pair argument they are equal
    // for every (s1, s2).
    const std::uint64_t m = 16, n = 24, tm = 5;
    for (std::uint64_t s1 : {1ull, 2ull, 3ull, 8ull, 16ull}) {
        for (std::uint64_t s2 : {1ull, 4ull, 7ull, 16ull}) {
            double total = 0.0;
            for (std::uint64_t d = 1; d <= m; ++d) {
                CrossConflictQuery q{s1, s2, d, m, n, tm};
                total += static_cast<double>(crossConflictStalls(q));
            }
            EXPECT_NEAR(total / static_cast<double>(m),
                        crossConflictStallsUniformD(m, n, tm), 1e-9)
                << "s1=" << s1 << " s2=" << s2;
        }
    }
}

TEST(CrossConflict, UniformDClosedFormValue)
{
    // Hand-computed: M=4, n=2, tm=2 -> pairs (d=0):2*2=4, (|d|=1):
    // 1*1*2=2 -> 6/4 = 1.5.
    EXPECT_DOUBLE_EQ(crossConflictStallsUniformD(4, 2, 2), 1.5);
}

} // namespace
} // namespace vcache
