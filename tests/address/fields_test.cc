/** Tests for tag/index/offset address decomposition. */

#include <gtest/gtest.h>

#include "address/fields.hh"
#include "util/rng.hh"

namespace vcache
{
namespace
{

TEST(AddressLayout, PaperConfiguration)
{
    // One-word lines, 8K-line cache, 32-bit addresses: W=0, c=13,
    // tag=19 (the Alliant FX/8 example of Section 2.3 with c=14 is
    // analogous).
    const AddressLayout l(0, 13, 32);
    EXPECT_EQ(l.offsetBits(), 0u);
    EXPECT_EQ(l.indexBits(), 13u);
    EXPECT_EQ(l.tagBits(), 19u);
    EXPECT_EQ(l.lineWords(), 1u);
}

TEST(AddressLayout, FieldExtraction)
{
    const AddressLayout l(2, 4, 32);
    const Addr a = (0xABCull << 6) | (0x9ull << 2) | 0x3;
    EXPECT_EQ(l.offset(a), 0x3u);
    EXPECT_EQ(l.index(a), 0x9u);
    EXPECT_EQ(l.tag(a), 0xABCu);
    EXPECT_EQ(l.lineAddress(a), a >> 2);
}

TEST(AddressLayout, ComposeRoundTrips)
{
    const AddressLayout l(3, 7, 32);
    Rng rng(21);
    for (int i = 0; i < 1000; ++i) {
        const Addr a = rng.uniformInt(0, (1ull << 32) - 1);
        EXPECT_EQ(l.compose(l.tag(a), l.index(a), l.offset(a)), a);
    }
}

TEST(AddressLayout, ZeroOffsetLineIsAddress)
{
    const AddressLayout l(0, 13, 32);
    EXPECT_EQ(l.lineAddress(12345), 12345u);
    EXPECT_EQ(l.offset(12345), 0u);
}

TEST(AddressLayoutDeathTest, OverflowingFieldsPanic)
{
    EXPECT_DEATH(AddressLayout(20, 20, 32), "exceed");
    const AddressLayout l(2, 4, 32);
    EXPECT_DEATH((void)l.compose(0, 16, 0), "index");
    EXPECT_DEATH((void)l.compose(0, 0, 4), "offset");
}

} // namespace
} // namespace vcache
