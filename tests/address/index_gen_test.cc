/** Tests for the Figure-1 index generators. */

#include <gtest/gtest.h>

#include "address/index_gen.hh"
#include "numtheory/mersenne.hh"
#include "util/rng.hh"

namespace vcache
{
namespace
{

AddressLayout
paperLayout()
{
    return AddressLayout(0, 13, 32);
}

TEST(DirectIndexGenerator, WalksStride)
{
    DirectIndexGenerator gen(paperLayout());
    gen.setStride(3);
    EXPECT_EQ(gen.start(10), 10u);
    EXPECT_EQ(gen.step(), 13u);
    EXPECT_EQ(gen.step(), 16u);
}

TEST(DirectIndexGenerator, WrapsPowerOfTwo)
{
    DirectIndexGenerator gen(paperLayout());
    gen.setStride(1);
    gen.start(8190);
    EXPECT_EQ(gen.step(), 8191u);
    EXPECT_EQ(gen.step(), 0u); // 8192 mod 2^13
}

TEST(MersenneIndexGenerator, StartMatchesModulo)
{
    MersenneIndexGenerator gen(paperLayout());
    Rng rng(31);
    for (int i = 0; i < 2000; ++i) {
        const Addr a = rng.uniformInt(0, (1ull << 32) - 1);
        EXPECT_EQ(gen.start(a), a % 8191) << "addr " << a;
        EXPECT_EQ(gen.indexOf(a), a % 8191);
    }
}

TEST(MersenneIndexGenerator, IncrementalWalkMatchesModulo)
{
    MersenneIndexGenerator gen(paperLayout());
    Rng rng(37);
    for (int trial = 0; trial < 50; ++trial) {
        const Addr base = rng.uniformInt(0, (1ull << 31));
        const std::int64_t stride =
            static_cast<std::int64_t>(rng.uniformInt(1, 1 << 20));
        gen.setStride(stride);
        gen.start(base);
        for (std::uint64_t i = 1; i <= 200; ++i) {
            const Addr expect =
                (base + static_cast<Addr>(stride) * i) % 8191;
            EXPECT_EQ(gen.step(), expect)
                << "base=" << base << " stride=" << stride << " i=" << i;
        }
    }
}

TEST(MersenneIndexGenerator, NegativeStrides)
{
    MersenneIndexGenerator gen(paperLayout());
    gen.setStride(-5);
    const Addr base = 1u << 20;
    gen.start(base);
    for (std::uint64_t i = 1; i <= 100; ++i)
        EXPECT_EQ(gen.step(), (base - 5 * i) % 8191) << i;
}

TEST(MersenneIndexGenerator, StrideRegisterHoldsResidue)
{
    MersenneIndexGenerator gen(paperLayout());
    gen.setStride(8191 + 7);
    EXPECT_EQ(gen.strideRegister(), 7u);
    gen.setStride(8191);
    EXPECT_EQ(gen.strideRegister(), 0u);
}

TEST(MersenneIndexGenerator, PowerOfTwoStridesStayConflictFree)
{
    // The whole point: a 2^k stride visits 8191 distinct lines before
    // repeating (the direct-mapped cache would visit 2^13 / 2^k).
    MersenneIndexGenerator gen(paperLayout());
    gen.setStride(256);
    std::vector<bool> seen(8191, false);
    std::uint64_t idx = gen.start(0);
    std::uint64_t distinct = 0;
    for (int i = 0; i < 8191; ++i) {
        if (!seen[idx]) {
            seen[idx] = true;
            ++distinct;
        }
        idx = gen.step();
    }
    EXPECT_EQ(distinct, 8191u);
}

TEST(MersenneIndexGenerator, CountsHardwareActivity)
{
    MersenneIndexGenerator gen(paperLayout());
    gen.setStride(3);
    gen.start(0x12345678);
    gen.step();
    gen.step();
    const auto stats = gen.stats();
    EXPECT_GE(stats.strideConversionAdds, 0u);
    EXPECT_GE(stats.startupAdds, 1u); // 32-bit address folds its tag
    EXPECT_EQ(stats.stepAdds, 2u);
}

TEST(MersenneIndexGenerator, StartupFoldIsCheap)
{
    // With tag <= 2c the startup takes at most 2 c-bit additions --
    // the paper's "a couple of stages of c bit additions".
    MersenneIndexGenerator gen(paperLayout());
    gen.start(0xFFFFFFFF);
    EXPECT_LE(gen.stats().startupAdds, 2u);
}

TEST(MersenneIndexGenerator, HardwareCostMatchesPaper)
{
    const auto cost = MersenneIndexGenerator::hardwareCost();
    EXPECT_EQ(cost.fullAdders, 1u);
    EXPECT_EQ(cost.multiplexors, 2u);
    EXPECT_GE(cost.registers, 2u);
}

TEST(MersenneIndexGeneratorDeathTest, RejectsCompositeModulus)
{
    const AddressLayout bad(0, 11, 32); // 2047 = 23 * 89
    EXPECT_DEATH(MersenneIndexGenerator{bad}, "Mersenne");
}

TEST(MersenneIndexGenerator, CompositeAllowedWhenRelaxed)
{
    const AddressLayout l(0, 11, 32);
    MersenneIndexGenerator gen(l, false);
    EXPECT_EQ(gen.lines(), 2047u);
    EXPECT_EQ(gen.indexOf(2048), 1u);
}

TEST(MakeIndexGenerator, Factory)
{
    const auto l = paperLayout();
    EXPECT_EQ(makeIndexGenerator(Mapping::Direct, l)->lines(), 8192u);
    EXPECT_EQ(makeIndexGenerator(Mapping::Prime, l)->lines(), 8191u);
}

TEST(IndexGenerators, AgreeWithEachOtherOnSmallAddresses)
{
    // Below the cache size the two mappings coincide (indices < C-1).
    const auto l = paperLayout();
    DirectIndexGenerator direct(l);
    MersenneIndexGenerator prime(l);
    for (Addr a = 0; a < 8191; ++a)
        EXPECT_EQ(direct.indexOf(a), prime.indexOf(a));
}

} // namespace
} // namespace vcache
