/** Tests for the end-around-carry adder hardware model. */

#include <gtest/gtest.h>

#include "address/eac_adder.hh"
#include "numtheory/mersenne.hh"
#include "util/rng.hh"

namespace vcache
{
namespace
{

class EacAdderWidths : public testing::TestWithParam<unsigned>
{
};

TEST_P(EacAdderWidths, AddMatchesModularArithmetic)
{
    const unsigned c = GetParam();
    EacAdder adder(c);
    const std::uint64_t m = adder.modulus();
    Rng rng(c);
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t a = rng.uniformInt(0, m);
        const std::uint64_t b = rng.uniformInt(0, m);
        EXPECT_EQ(adder.add(a, b), (a + b) % m)
            << a << " + " << b << " (c=" << c << ")";
    }
}

TEST_P(EacAdderWidths, BitSerialMatchesWordLevel)
{
    const unsigned c = GetParam();
    EacAdder adder(c);
    Rng rng(c + 100);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t a = rng.uniformInt(0, adder.modulus());
        const std::uint64_t b = rng.uniformInt(0, adder.modulus());
        EXPECT_EQ(adder.addBitSerial(a, b), adder.add(a, b))
            << a << " + " << b << " (c=" << c << ")";
    }
}

TEST_P(EacAdderWidths, ExhaustiveForSmallWidths)
{
    const unsigned c = GetParam();
    if (c > 7)
        GTEST_SKIP() << "exhaustive check limited to small widths";
    EacAdder adder(c);
    const std::uint64_t m = adder.modulus();
    for (std::uint64_t a = 0; a <= m; ++a)
        for (std::uint64_t b = 0; b <= m; ++b) {
            EXPECT_EQ(adder.add(a, b), (a + b) % m);
            EXPECT_EQ(adder.addBitSerial(a, b), (a + b) % m);
        }
}

INSTANTIATE_TEST_SUITE_P(MersenneWidths, EacAdderWidths,
                         testing::Values(2u, 3u, 5u, 7u, 13u, 17u, 19u,
                                         31u));

TEST(EacAdder, NormalisesNegativeZero)
{
    EacAdder adder(3);
    // 3 + 4 = 7 = all-ones: the alias of 0.
    EXPECT_EQ(adder.add(3, 4), 0u);
    EXPECT_EQ(adder.addBitSerial(3, 4), 0u);
    // 7 + 7 = 14 -> fold -> 7 -> 0.
    EXPECT_EQ(adder.add(7, 7), 0u);
}

TEST(EacAdder, CountsOperations)
{
    EacAdder adder(13);
    adder.add(1, 2);
    adder.add(3, 4);
    EXPECT_EQ(adder.operations(), 2u);
    adder.resetStats();
    EXPECT_EQ(adder.operations(), 0u);
}

TEST(EacAdderDeathTest, RejectsWideOperands)
{
    EacAdder adder(5);
    EXPECT_DEATH((void)adder.add(32, 0), "wider");
}

} // namespace
} // namespace vcache
