/** Tests for vector access records and trace flattening. */

#include <gtest/gtest.h>

#include "trace/access.hh"

namespace vcache
{
namespace
{

TEST(VectorRef, ElementAddresses)
{
    const VectorRef r{100, 3, 5};
    EXPECT_EQ(r.element(0), 100u);
    EXPECT_EQ(r.element(4), 112u);
}

TEST(VectorRef, NegativeStride)
{
    const VectorRef r{100, -10, 4};
    EXPECT_EQ(r.element(0), 100u);
    EXPECT_EQ(r.element(3), 70u);
}

TEST(Expand, ProducesAllElements)
{
    const auto v = expand(VectorRef{0, 2, 4});
    EXPECT_EQ(v, (std::vector<Addr>{0, 2, 4, 6}));
}

TEST(TraceCounts, LoadsAndStores)
{
    Trace t;
    VectorOp a;
    a.first = {0, 1, 10};
    t.push_back(a);
    VectorOp b;
    b.first = {0, 1, 10};
    b.second = VectorRef{100, 1, 5};
    b.store = VectorRef{200, 1, 10};
    t.push_back(b);

    EXPECT_EQ(loadedElements(t), 25u);
    EXPECT_EQ(totalElements(t), 35u);
}

TEST(Flatten, InterleavesDoubleStreams)
{
    VectorOp op;
    op.first = {0, 1, 3};
    op.second = VectorRef{100, 1, 2};
    const auto flat = flatten({op});
    EXPECT_EQ(flat, (std::vector<Addr>{0, 100, 1, 101, 2}));
}

TEST(Flatten, AppendsStores)
{
    VectorOp op;
    op.first = {0, 1, 2};
    op.store = VectorRef{50, 1, 2};
    const auto flat = flatten({op});
    EXPECT_EQ(flat, (std::vector<Addr>{0, 1, 50, 51}));
}

TEST(VectorOp, DoubleStreamFlag)
{
    VectorOp op;
    op.first = {0, 1, 1};
    EXPECT_FALSE(op.doubleStream());
    op.second = VectorRef{1, 1, 1};
    EXPECT_TRUE(op.doubleStream());
}

} // namespace
} // namespace vcache
