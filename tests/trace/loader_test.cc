/** Tests for the text trace format. */

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "trace/loader.hh"
#include "trace/matmul.hh"

namespace vcache
{
namespace
{

TEST(TraceLoader, ParsesAllRecordKinds)
{
    std::istringstream in(
        "# a comment\n"
        "L 100 2 8\n"
        "D 0 1 4 50 -3 2\n"
        "S 200 1 4\n"
        "\n"
        "L 7 1 1   # trailing comment\n");
    const Trace trace = loadTrace(in);
    ASSERT_EQ(trace.size(), 3u);

    EXPECT_EQ(trace[0].first.base, 100u);
    EXPECT_EQ(trace[0].first.stride, 2);
    EXPECT_EQ(trace[0].first.length, 8u);
    EXPECT_FALSE(trace[0].second);
    EXPECT_FALSE(trace[0].store);

    ASSERT_TRUE(trace[1].second);
    EXPECT_EQ(trace[1].second->stride, -3);
    ASSERT_TRUE(trace[1].store);
    EXPECT_EQ(trace[1].store->base, 200u);

    EXPECT_EQ(trace[2].first.base, 7u);
}

TEST(TraceLoader, RoundTripsGeneratedTraces)
{
    const auto original = generateMatmulTrace(MatmulParams{16, 4, 0});
    std::stringstream buffer;
    saveTrace(buffer, original);
    const Trace loaded = loadTrace(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].first.base, original[i].first.base);
        EXPECT_EQ(loaded[i].first.stride, original[i].first.stride);
        EXPECT_EQ(loaded[i].first.length, original[i].first.length);
        EXPECT_EQ(loaded[i].second.has_value(),
                  original[i].second.has_value());
        EXPECT_EQ(loaded[i].store.has_value(),
                  original[i].store.has_value());
        if (loaded[i].store) {
            EXPECT_EQ(loaded[i].store->base,
                      original[i].store->base);
        }
    }
}

TEST(TraceLoader, EmptyInput)
{
    std::istringstream in("# nothing but comments\n\n");
    EXPECT_TRUE(loadTrace(in).empty());
}

TEST(TraceLoaderDeathTest, UnknownKind)
{
    std::istringstream in("X 1 2 3\n");
    EXPECT_EXIT((void)loadTrace(in), testing::ExitedWithCode(1),
                "unknown record kind");
}

TEST(TraceLoaderDeathTest, MalformedRecord)
{
    std::istringstream in("L 1 2\n");
    EXPECT_EXIT((void)loadTrace(in), testing::ExitedWithCode(1),
                "malformed");
}

TEST(TraceLoaderDeathTest, DanglingStore)
{
    std::istringstream in("S 1 1 1\n");
    EXPECT_EXIT((void)loadTrace(in), testing::ExitedWithCode(1),
                "no preceding load");
}

TEST(TraceLoaderDeathTest, DoubleStore)
{
    std::istringstream in("L 1 1 1\nS 1 1 1\nS 2 1 1\n");
    EXPECT_EXIT((void)loadTrace(in), testing::ExitedWithCode(1),
                "already has a store");
}

TEST(TraceLoaderDeathTest, TrailingJunk)
{
    std::istringstream in("L 1 1 1 junk\n");
    EXPECT_EXIT((void)loadTrace(in), testing::ExitedWithCode(1),
                "trailing junk");
}

TEST(TraceLoaderDeathTest, MissingFile)
{
    EXPECT_EXIT((void)loadTraceFile("/nonexistent/trace.txt"),
                testing::ExitedWithCode(1), "cannot open");
}

// ---------------------------------------------------------------------
// Error-as-values: tryLoadTrace reports malformed traces as structured
// Expected errors (with name and line number) instead of dying.
// ---------------------------------------------------------------------

TEST(TraceLoaderTry, SuccessMatchesFatalLoader)
{
    std::istringstream a("L 0 1 8\nS 64 1 8\nD 0 1 8 128 2 4\n");
    std::istringstream b("L 0 1 8\nS 64 1 8\nD 0 1 8 128 2 4\n");
    const auto tried = tryLoadTrace(a, "t");
    ASSERT_TRUE(tried.ok());
    const Trace loaded = loadTrace(b);
    ASSERT_EQ(tried.value().size(), loaded.size());
    EXPECT_EQ(tried.value()[1].second->base, loaded[1].second->base);
}

TEST(TraceLoaderTry, ErrorsCarryNameAndLineNumber)
{
    std::istringstream in("L 0 1 8\nL 1 2\n");
    const auto trace = tryLoadTrace(in, "fuzz.trace");
    ASSERT_FALSE(trace.ok());
    EXPECT_EQ(trace.error().code, Errc::MalformedTrace);
    EXPECT_NE(trace.error().message.find("'fuzz.trace'"),
              std::string::npos);
    EXPECT_NE(trace.error().message.find("line 2"), std::string::npos);
}

TEST(TraceLoaderTry, MissingFileIsIoError)
{
    const auto trace = tryLoadTraceFile("/nonexistent/trace.txt");
    ASSERT_FALSE(trace.ok());
    EXPECT_EQ(trace.error().code, Errc::Io);
}

TEST(TraceLoaderTry, FuzzishCorruptedLinesNeverCrash)
{
    // Every corruption the satellite cares about: wrong kinds, short
    // records, non-numeric fields, negative bases/lengths, dangling
    // and duplicate stores, junk tails, embedded NULs.  Each must come
    // back as a structured MalformedTrace error naming its line.
    const std::vector<std::string> corrupt{
        "X 0 1 8",
        "L",
        "L 0",
        "L 0 1",
        "L zero one eight",
        "L -1 1 8",
        "L 0 1 -8",
        "L 0x10 1 8 extra",
        "S 0 1 8",
        "L 0 1 8\nS 0 1 8\nS 0 1 8",
        "D 0 1 8 1 2",
        "D 0 1 8 x y z",
        "L 0 1 8 trailing",
        "L 99999999999999999999999999 1 8",
        std::string("L 0 1 8\nL 0 1 ") + '\0' + "8",
    };
    for (std::size_t i = 0; i < corrupt.size(); ++i) {
        std::istringstream in(corrupt[i]);
        const auto trace = tryLoadTrace(in, "case");
        ASSERT_FALSE(trace.ok()) << "case " << i << " parsed: "
                                 << corrupt[i];
        EXPECT_EQ(trace.error().code, Errc::MalformedTrace)
            << "case " << i;
        EXPECT_NE(trace.error().message.find("trace line"),
                  std::string::npos)
            << "case " << i;
    }
}

TEST(TraceLoaderTry, BlankAndCommentOnlyInputStaysEmpty)
{
    std::istringstream in("# nothing\n\n   \n# more\n");
    const auto trace = tryLoadTrace(in);
    ASSERT_TRUE(trace.ok());
    EXPECT_TRUE(trace.value().empty());
}

} // namespace
} // namespace vcache
