/** Tests for the text trace format. */

#include <gtest/gtest.h>

#include <sstream>

#include "trace/loader.hh"
#include "trace/matmul.hh"

namespace vcache
{
namespace
{

TEST(TraceLoader, ParsesAllRecordKinds)
{
    std::istringstream in(
        "# a comment\n"
        "L 100 2 8\n"
        "D 0 1 4 50 -3 2\n"
        "S 200 1 4\n"
        "\n"
        "L 7 1 1   # trailing comment\n");
    const Trace trace = loadTrace(in);
    ASSERT_EQ(trace.size(), 3u);

    EXPECT_EQ(trace[0].first.base, 100u);
    EXPECT_EQ(trace[0].first.stride, 2);
    EXPECT_EQ(trace[0].first.length, 8u);
    EXPECT_FALSE(trace[0].second);
    EXPECT_FALSE(trace[0].store);

    ASSERT_TRUE(trace[1].second);
    EXPECT_EQ(trace[1].second->stride, -3);
    ASSERT_TRUE(trace[1].store);
    EXPECT_EQ(trace[1].store->base, 200u);

    EXPECT_EQ(trace[2].first.base, 7u);
}

TEST(TraceLoader, RoundTripsGeneratedTraces)
{
    const auto original = generateMatmulTrace(MatmulParams{16, 4, 0});
    std::stringstream buffer;
    saveTrace(buffer, original);
    const Trace loaded = loadTrace(buffer);

    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].first.base, original[i].first.base);
        EXPECT_EQ(loaded[i].first.stride, original[i].first.stride);
        EXPECT_EQ(loaded[i].first.length, original[i].first.length);
        EXPECT_EQ(loaded[i].second.has_value(),
                  original[i].second.has_value());
        EXPECT_EQ(loaded[i].store.has_value(),
                  original[i].store.has_value());
        if (loaded[i].store) {
            EXPECT_EQ(loaded[i].store->base,
                      original[i].store->base);
        }
    }
}

TEST(TraceLoader, EmptyInput)
{
    std::istringstream in("# nothing but comments\n\n");
    EXPECT_TRUE(loadTrace(in).empty());
}

TEST(TraceLoaderDeathTest, UnknownKind)
{
    std::istringstream in("X 1 2 3\n");
    EXPECT_EXIT((void)loadTrace(in), testing::ExitedWithCode(1),
                "unknown record kind");
}

TEST(TraceLoaderDeathTest, MalformedRecord)
{
    std::istringstream in("L 1 2\n");
    EXPECT_EXIT((void)loadTrace(in), testing::ExitedWithCode(1),
                "malformed");
}

TEST(TraceLoaderDeathTest, DanglingStore)
{
    std::istringstream in("S 1 1 1\n");
    EXPECT_EXIT((void)loadTrace(in), testing::ExitedWithCode(1),
                "no preceding load");
}

TEST(TraceLoaderDeathTest, DoubleStore)
{
    std::istringstream in("L 1 1 1\nS 1 1 1\nS 2 1 1\n");
    EXPECT_EXIT((void)loadTrace(in), testing::ExitedWithCode(1),
                "already has a store");
}

TEST(TraceLoaderDeathTest, TrailingJunk)
{
    std::istringstream in("L 1 1 1 junk\n");
    EXPECT_EXIT((void)loadTrace(in), testing::ExitedWithCode(1),
                "trailing junk");
}

TEST(TraceLoaderDeathTest, MissingFile)
{
    EXPECT_EXIT((void)loadTraceFile("/nonexistent/trace.txt"),
                testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace vcache
