/** Tests for the reference FFT and trace-generator validation. */

#include <gtest/gtest.h>

#include <cmath>

#include "trace/fft.hh"
#include "trace/fft_reference.hh"
#include "util/rng.hh"

namespace vcache
{
namespace
{

std::vector<std::complex<double>>
randomSignal(std::uint64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::complex<double>> v(n);
    for (auto &x : v)
        x = {rng.uniformReal() - 0.5, rng.uniformReal() - 0.5};
    return v;
}

double
maxError(const std::vector<std::complex<double>> &a,
         const std::vector<std::complex<double>> &b)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::abs(a[i] - b[i]));
    return worst;
}

class FftSizes : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FftSizes, MatchesNaiveDft)
{
    const std::uint64_t n = GetParam();
    auto data = randomSignal(n, n);
    const auto expect = naiveDft(data);

    referenceFftDif(data);
    bitReversePermute(data);
    EXPECT_LT(maxError(data, expect), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, TraceGeneratorMatchesRealAlgorithmReads)
{
    // Record every read the real FFT performs and compare, in order,
    // with the flattened load stream of the generated trace.
    const std::uint64_t n = GetParam();
    auto data = randomSignal(n, n + 1);

    std::vector<Addr> real_reads;
    referenceFftDif(data, [&](std::uint64_t index, bool write) {
        if (!write)
            real_reads.push_back(index);
    });

    const Trace trace = generateFftButterflyTrace(0, n);
    std::vector<Addr> trace_reads;
    for (const auto &op : trace) {
        ASSERT_TRUE(op.second.has_value());
        for (std::uint64_t i = 0; i < op.first.length; ++i) {
            trace_reads.push_back(op.first.element(i));
            trace_reads.push_back(op.second->element(i));
        }
    }

    ASSERT_EQ(trace_reads.size(), real_reads.size());
    for (std::size_t i = 0; i < real_reads.size(); ++i)
        ASSERT_EQ(trace_reads[i], real_reads[i]) << "position " << i;
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, FftSizes,
                         testing::Values(2ull, 4ull, 8ull, 64ull,
                                         256ull, 1024ull));

TEST(FftReference, DeltaTransformsToConstant)
{
    std::vector<std::complex<double>> data(16, {0.0, 0.0});
    data[0] = {1.0, 0.0};
    referenceFftDif(data);
    bitReversePermute(data);
    for (const auto &x : data) {
        EXPECT_NEAR(x.real(), 1.0, 1e-12);
        EXPECT_NEAR(x.imag(), 0.0, 1e-12);
    }
}

TEST(FftReference, ConstantTransformsToDelta)
{
    std::vector<std::complex<double>> data(16, {1.0, 0.0});
    referenceFftDif(data);
    bitReversePermute(data);
    EXPECT_NEAR(data[0].real(), 16.0, 1e-12);
    for (std::size_t i = 1; i < 16; ++i)
        EXPECT_NEAR(std::abs(data[i]), 0.0, 1e-12);
}

TEST(FftReference, BitReverseIsInvolution)
{
    auto data = randomSignal(64, 3);
    const auto original = data;
    bitReversePermute(data);
    bitReversePermute(data);
    EXPECT_LT(maxError(data, original), 1e-15);
}

TEST(FftReferenceDeathTest, RejectsNonPowerOfTwo)
{
    std::vector<std::complex<double>> data(12);
    EXPECT_DEATH(referenceFftDif(data), "power of two");
}

} // namespace
} // namespace vcache
