/**
 * Tests for the streaming trace sources: each stochastic source must
 * yield exactly the operations of its batch generator, in order, and
 * reset() must restart the stream from the same RNG state.
 */

#include <gtest/gtest.h>

#include <cstddef>

#include "trace/multistride.hh"
#include "trace/source.hh"
#include "trace/vcm.hh"

namespace vcache
{
namespace
{

void
expectSameRef(const VectorRef &got, const VectorRef &want)
{
    EXPECT_EQ(got.base, want.base);
    EXPECT_EQ(got.stride, want.stride);
    EXPECT_EQ(got.length, want.length);
}

void
expectSameOps(TraceSource &source, const Trace &trace)
{
    VectorOp op;
    std::size_t i = 0;
    while (source.next(op)) {
        ASSERT_LT(i, trace.size());
        const VectorOp &want = trace[i++];
        expectSameRef(op.first, want.first);
        ASSERT_EQ(op.second.has_value(), want.second.has_value());
        if (op.second)
            expectSameRef(*op.second, *want.second);
        ASSERT_EQ(op.store.has_value(), want.store.has_value());
        if (op.store)
            expectSameRef(*op.store, *want.store);
    }
    EXPECT_EQ(i, trace.size());
    // An exhausted source stays exhausted until reset.
    EXPECT_FALSE(source.next(op));
}

TEST(VcmTraceSource, MatchesBatchGeneratorAndResets)
{
    VcmParams p;
    p.blockingFactor = 256;
    p.reuseFactor = 4;
    p.pDoubleStream = 0.5;
    p.blocks = 3;
    p.maxStride = 4096;
    const Trace trace = generateVcmTrace(p, 99);
    ASSERT_FALSE(trace.empty());

    VcmTraceSource source(p, 99);
    expectSameOps(source, trace);
    source.reset();
    expectSameOps(source, trace);
}

TEST(MultistrideTraceSource, MatchesBatchGeneratorAndResets)
{
    const MultistrideParams p{512, 6, 0.25, 8192, 0, 2};
    const Trace trace = generateMultistrideTrace(p, 5);
    ASSERT_FALSE(trace.empty());

    MultistrideTraceSource source(p, 5);
    expectSameOps(source, trace);
    source.reset();
    expectSameOps(source, trace);
}

TEST(MultistrideTraceSource, ZeroReuseIsEmpty)
{
    const MultistrideParams p{512, 6, 0.25, 8192, 0, 0};
    MultistrideTraceSource source(p, 5);
    VectorOp op;
    EXPECT_FALSE(source.next(op));
    source.reset();
    EXPECT_FALSE(source.next(op));
}

TEST(TraceVectorSource, WalksAndRewinds)
{
    Trace trace;
    VectorOp op;
    op.first = VectorRef{16, 2, 8};
    trace.push_back(op);
    op.first = VectorRef{0, 1, 4};
    op.store = VectorRef{64, 1, 4};
    trace.push_back(op);

    TraceVectorSource source(trace);
    expectSameOps(source, trace);
    source.reset();
    expectSameOps(source, trace);
}

} // namespace
} // namespace vcache
