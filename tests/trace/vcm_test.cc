/** Tests for the VCM seven-tuple trace generator. */

#include <gtest/gtest.h>

#include "trace/vcm.hh"

namespace vcache
{
namespace
{

VcmParams
smallParams()
{
    VcmParams p;
    p.blockingFactor = 64;
    p.reuseFactor = 8;
    p.pDoubleStream = 0.5;
    p.maxStride = 32;
    p.blocks = 4;
    return p;
}

TEST(VcmTrace, OpCountIsBlocksTimesReuse)
{
    const auto trace = generateVcmTrace(smallParams(), 1);
    EXPECT_EQ(trace.size(), 32u);
}

TEST(VcmTrace, Deterministic)
{
    const auto a = generateVcmTrace(smallParams(), 7);
    const auto b = generateVcmTrace(smallParams(), 7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].first.base, b[i].first.base);
        EXPECT_EQ(a[i].first.stride, b[i].first.stride);
        EXPECT_EQ(a[i].doubleStream(), b[i].doubleStream());
    }
}

TEST(VcmTrace, FirstVectorLengthIsBlockingFactor)
{
    for (const auto &op : generateVcmTrace(smallParams(), 3))
        EXPECT_EQ(op.first.length, 64u);
}

TEST(VcmTrace, SecondVectorLengthIsBTimesPds)
{
    const auto trace = generateVcmTrace(smallParams(), 3);
    bool saw_double = false;
    for (const auto &op : trace) {
        if (op.second) {
            saw_double = true;
            EXPECT_EQ(op.second->length, 32u); // 64 * 0.5
        }
    }
    EXPECT_TRUE(saw_double);
}

TEST(VcmTrace, DoubleStreamRateTracksPds)
{
    VcmParams p = smallParams();
    p.blocks = 64;
    p.reuseFactor = 64;
    p.pDoubleStream = 0.25;
    const auto trace = generateVcmTrace(p, 11);
    std::uint64_t doubles = 0;
    for (const auto &op : trace)
        doubles += op.doubleStream();
    EXPECT_NEAR(static_cast<double>(doubles) /
                    static_cast<double>(trace.size()),
                0.25, 0.03);
}

TEST(VcmTrace, PureSingleStream)
{
    VcmParams p = smallParams();
    p.pDoubleStream = 0.0;
    for (const auto &op : generateVcmTrace(p, 5))
        EXPECT_FALSE(op.doubleStream());
}

TEST(VcmTrace, FixedStridesRespected)
{
    VcmParams p = smallParams();
    p.fixedStride1 = 17;
    p.fixedStride2 = 5;
    p.pDoubleStream = 1.0;
    for (const auto &op : generateVcmTrace(p, 5)) {
        EXPECT_EQ(op.first.stride, 17);
        ASSERT_TRUE(op.second.has_value());
        EXPECT_EQ(op.second->stride, 5);
    }
}

TEST(VcmTrace, StridesWithinDistributionRange)
{
    const auto trace = generateVcmTrace(smallParams(), 13);
    for (const auto &op : trace) {
        EXPECT_GE(op.first.stride, 1);
        EXPECT_LE(op.first.stride, 32);
    }
}

TEST(VcmTrace, StrideConstantWithinBlock)
{
    // A blocked algorithm accesses one block with a consistent
    // pattern; the stride changes only between blocks.
    VcmParams p = smallParams();
    const auto trace = generateVcmTrace(p, 17);
    for (std::size_t blk = 0; blk < p.blocks; ++blk) {
        const auto s0 = trace[blk * p.reuseFactor].first.stride;
        for (std::size_t r = 1; r < p.reuseFactor; ++r)
            EXPECT_EQ(trace[blk * p.reuseFactor + r].first.stride, s0);
    }
}

TEST(VcmTrace, BlocksDoNotOverlap)
{
    const VcmParams p = smallParams();
    const auto trace = generateVcmTrace(p, 19);
    // Max extent of a block: B * maxStride; bases are spaced farther.
    for (std::size_t blk = 1; blk < p.blocks; ++blk) {
        const auto prev =
            trace[(blk - 1) * p.reuseFactor].first.base;
        const auto cur = trace[blk * p.reuseFactor].first.base;
        EXPECT_GT(cur - prev, p.blockingFactor * (p.maxStride - 1));
    }
}

TEST(VcmTrace, ResultElements)
{
    EXPECT_EQ(vcmResultElements(smallParams()), 4u * 64u * 8u);
}

} // namespace
} // namespace vcache
