/** Tests for the workload trace generators. */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "trace/fft.hh"
#include "trace/banded.hh"
#include "trace/lu.hh"
#include "trace/matmul.hh"
#include "trace/matrix_access.hh"
#include "trace/multistride.hh"
#include "trace/subblock.hh"
#include "trace/transpose.hh"

namespace vcache
{
namespace
{

TEST(MatmulTrace, TouchesAllThreeMatrices)
{
    const MatmulParams p{8, 4, 0};
    const auto trace = generateMatmulTrace(p);
    ASSERT_FALSE(trace.empty());

    std::set<Addr> touched;
    for (const Addr a : flatten(trace))
        touched.insert(a);

    // Every element of A, B and C must appear at least once.
    for (Addr a = 0; a < 3 * 64; ++a)
        EXPECT_TRUE(touched.count(a)) << "element " << a;
    // And nothing outside the three matrices.
    EXPECT_LT(*touched.rbegin(), 3u * 64u);
}

TEST(MatmulTrace, ColumnAccessesHaveUnitStride)
{
    const MatmulParams p{8, 4, 0};
    for (const auto &op : generateMatmulTrace(p)) {
        if (op.second) {
            EXPECT_EQ(op.second->stride, 1);
        }
        if (op.store) {
            EXPECT_EQ(op.store->stride, 1);
        }
    }
}

TEST(MatmulTrace, RowAccessesHaveLeadingDimensionStride)
{
    const MatmulParams p{8, 4, 0};
    bool saw_row = false;
    for (const auto &op : generateMatmulTrace(p)) {
        if (op.second) {
            EXPECT_EQ(op.first.stride, 8);
            saw_row = true;
        }
    }
    EXPECT_TRUE(saw_row);
}

TEST(MatmulTraceDeathTest, BlockMustDivide)
{
    EXPECT_DEATH((void)generateMatmulTrace(MatmulParams{10, 3, 0}),
                 "divide");
}

TEST(LuTrace, StaysInsideMatrix)
{
    const LuParams p{16, 4, 0};
    for (const Addr a : flatten(generateLuTrace(p)))
        EXPECT_LT(a, 256u);
}

TEST(LuTrace, TouchesWholeMatrix)
{
    const LuParams p{16, 4, 0};
    std::set<Addr> touched;
    for (const Addr a : flatten(generateLuTrace(p)))
        touched.insert(a);
    EXPECT_EQ(touched.size(), 256u);
}

TEST(LuTrace, ReuseGrowsWithBlockCount)
{
    // The trailing update dominates: total accesses scale ~n^3/b.
    const auto small = totalElements(generateLuTrace(LuParams{16, 4, 0}));
    const auto large = totalElements(generateLuTrace(LuParams{32, 4, 0}));
    EXPECT_GT(large, 6 * small);
}

TEST(FftButterflyTrace, StageCountAndLengths)
{
    const auto trace = generateFftButterflyTrace(0, 16);
    // Stages: dist 8,4,2,1 -> 1+2+4+8 = 15 ops.
    EXPECT_EQ(trace.size(), 15u);
    std::uint64_t loads = 0;
    for (const auto &op : trace) {
        ASSERT_TRUE(op.second.has_value());
        EXPECT_EQ(op.first.length, op.second->length);
        loads += op.first.length + op.second->length;
    }
    // Each of log2(16) = 4 stages touches all 16 points.
    EXPECT_EQ(loads, 64u);
}

TEST(FftButterflyTrace, PartnersAreDistApart)
{
    const auto trace = generateFftButterflyTrace(0, 8);
    // First op: dist 4, lower half vs upper half.
    EXPECT_EQ(trace[0].first.base, 0u);
    EXPECT_EQ(trace[0].second->base, 4u);
}

TEST(Fft2dTrace, StaysInsideArray)
{
    const Fft2dParams p{8, 16, 0}; // b2=8, b1=16 -> 128 points
    for (const Addr a : flatten(generateFft2dTrace(p)))
        EXPECT_LT(a, 128u);
}

TEST(Fft2dTrace, RowPhaseUsesB2Stride)
{
    const Fft2dParams p{8, 16, 0};
    const auto trace = generateFft2dTrace(p);
    // Row-FFT ops come first and stride by b2 = 8.
    EXPECT_EQ(trace.front().first.stride, 8);
    // Column-FFT ops close the trace with stride 1.
    EXPECT_EQ(trace.back().first.stride, 1);
}

TEST(Fft2dTrace, TouchesEveryPointInBothPhases)
{
    const Fft2dParams p{4, 8, 0};
    std::set<Addr> touched;
    for (const Addr a : flatten(generateFft2dTrace(p)))
        touched.insert(a);
    EXPECT_EQ(touched.size(), 32u);
}

TEST(FftAgarwalTrace, SameFootprintAsPlainBlocked)
{
    const FftAgarwalParams p{16, 8, 4, 0};
    std::set<Addr> touched;
    for (const Addr a : flatten(generateFftAgarwalTrace(p)))
        touched.insert(a);
    EXPECT_EQ(touched.size(), 128u); // all B1 * B2 points
    EXPECT_LT(*touched.rbegin(), 128u);
}

TEST(FftAgarwalTrace, GroupsRevisitRowsWhileResident)
{
    // With groupRows = 2 and B1 = 8, each group's rows appear in
    // log2(8) = 3 consecutive stages before the next group starts.
    const FftAgarwalParams p{4, 8, 2, 0};
    const auto trace = generateFftAgarwalTrace(p);
    // Phase 1 ops: per group, per stage, per row: B1/(2*dist) ops.
    // dist = 4: 1 op/row; 2: 2; 1: 4 -> 7 ops per row, 14 per group,
    // 2 groups = 28 ops; phase 2: B1 = 8 column FFTs of length 4:
    // dist 2: 1 op, dist 1: 2 ops -> 3 each, 24 total.
    ASSERT_EQ(trace.size(), 28u + 24u);
    // The first group's ops only touch rows 0 and 1.
    for (std::size_t i = 0; i < 14; ++i) {
        const Addr a = trace[i].first.base;
        EXPECT_LT(a % 4, 2u) << "op " << i;
    }
}

TEST(FftAgarwalTrace, RowStridesAreB2)
{
    const FftAgarwalParams p{64, 16, 8, 0};
    const auto trace = generateFftAgarwalTrace(p);
    EXPECT_EQ(trace.front().first.stride, 64);
    EXPECT_EQ(trace.back().first.stride, 1);
}

TEST(BandedMatvec, TridiagonalRanges)
{
    BandedParams p;
    p.n = 10;
    p.offsets = {-1, 0, 1};
    p.xBase = 100;
    p.yBase = 200;
    p.diagBase = 300;
    const auto trace = generateBandedMatvecTrace(p);
    ASSERT_EQ(trace.size(), 3u);

    // Sub-diagonal: rows 1..9 read x[0..8].
    EXPECT_EQ(trace[0].first.base, 301u); // diag 0 storage + lo
    EXPECT_EQ(trace[0].first.length, 9u);
    EXPECT_EQ(trace[0].second->base, 100u);
    // Main diagonal: all 10 rows.
    EXPECT_EQ(trace[1].first.base, 310u); // diag 1 at spacing n
    EXPECT_EQ(trace[1].first.length, 10u);
    EXPECT_EQ(trace[1].second->base, 100u);
    // Super-diagonal: rows 0..8 read x[1..9].
    EXPECT_EQ(trace[2].first.length, 9u);
    EXPECT_EQ(trace[2].second->base, 101u);
    // All stores accumulate into y over the valid rows.
    EXPECT_EQ(trace[1].store->base, 200u);
}

TEST(BandedMatvec, RepetitionsAndWideBands)
{
    BandedParams p;
    p.n = 64;
    p.offsets = {-8, -1, 0, 1, 8};
    p.repetitions = 3;
    const auto trace = generateBandedMatvecTrace(p);
    EXPECT_EQ(trace.size(), 15u);
    for (const auto &op : trace) {
        EXPECT_EQ(op.first.stride, 1);
        EXPECT_TRUE(op.second.has_value());
        EXPECT_TRUE(op.store.has_value());
        EXPECT_LE(op.first.length, 64u);
    }
}

TEST(BandedMatvecDeathTest, SpacingMustCoverDiagonal)
{
    BandedParams p;
    p.n = 100;
    p.diagSpacing = 50;
    EXPECT_DEATH((void)generateBandedMatvecTrace(p), "spacing");
}

TEST(FftResultElements, NLogN)
{
    EXPECT_EQ(fftResultElements(16), 64u);
    EXPECT_EQ(fftResultElements(1024), 10240u);
}

TEST(SubblockTrace, ColumnLayout)
{
    const SubblockParams p{100, 4, 3, 1000, 1};
    const auto trace = generateSubblockTrace(p);
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0].first.base, 1000u);
    EXPECT_EQ(trace[1].first.base, 1100u);
    EXPECT_EQ(trace[2].first.base, 1200u);
    for (const auto &op : trace) {
        EXPECT_EQ(op.first.stride, 1);
        EXPECT_EQ(op.first.length, 4u);
    }
}

TEST(SubblockTrace, Repetitions)
{
    const SubblockParams p{100, 4, 3, 0, 5};
    EXPECT_EQ(generateSubblockTrace(p).size(), 15u);
}

TEST(MatrixSlice, StridesMatchLayout)
{
    const MatrixShape shape{100, 50, 0};
    EXPECT_EQ(matrixSliceRef(shape, MatrixSlice::Column, 3).stride, 1);
    EXPECT_EQ(matrixSliceRef(shape, MatrixSlice::Column, 3).base, 300u);
    EXPECT_EQ(matrixSliceRef(shape, MatrixSlice::Row, 2).stride, 100);
    EXPECT_EQ(matrixSliceRef(shape, MatrixSlice::Row, 2).base, 2u);
    EXPECT_EQ(matrixSliceRef(shape, MatrixSlice::Diagonal, 0).stride,
              101);
    EXPECT_EQ(matrixSliceRef(shape, MatrixSlice::Diagonal, 0).length,
              50u);
}

TEST(RowColumnMix, FractionRespected)
{
    RowColumnMixParams p;
    p.shape = {256, 256, 0};
    p.rowFraction = 0.75;
    p.operations = 2000;
    p.length = 64;
    std::uint64_t rows = 0;
    for (const auto &op : generateRowColumnMix(p, 3))
        rows += op.first.stride == 256;
    EXPECT_NEAR(static_cast<double>(rows) / 2000.0, 0.75, 0.04);
}

TEST(TransposeTrace, CoversBothMatrices)
{
    const TransposeParams p{16, 4, 0, 0};
    const auto trace = generateTransposeTrace(p);
    std::set<Addr> read, written;
    for (const auto &op : trace) {
        for (const Addr a : expand(op.first))
            read.insert(a);
        ASSERT_TRUE(op.store.has_value());
        for (const Addr a : expand(*op.store))
            written.insert(a);
    }
    EXPECT_EQ(read.size(), 256u);    // every element of A read once
    EXPECT_EQ(written.size(), 256u); // every element of B written
    EXPECT_LT(*read.rbegin(), 256u);
    EXPECT_GE(*written.begin(), 256u);
}

TEST(TransposeTrace, ElementMappingIsTransposed)
{
    const TransposeParams p{8, 4, 0, 100};
    const auto trace = generateTransposeTrace(p);
    for (const auto &op : trace) {
        // Read element k of the column is A(r0+k, c); the store
        // element k is B(c, r0+k): addresses must satisfy the
        // transpose relation.
        for (std::uint64_t k = 0; k < op.first.length; ++k) {
            const Addr a = op.first.element(k);
            const Addr b = op.store->element(k) - 100;
            const std::uint64_t row_a = a % 8, col_a = a / 8;
            const std::uint64_t row_b = b % 8, col_b = b / 8;
            EXPECT_EQ(row_a, col_b);
            EXPECT_EQ(col_a, row_b);
        }
    }
}

TEST(TransposeTrace, StoresUseLeadingDimensionStride)
{
    const TransposeParams p{64, 16, 0, 0};
    for (const auto &op : generateTransposeTrace(p)) {
        EXPECT_EQ(op.first.stride, 1);
        EXPECT_EQ(op.store->stride, 64);
    }
}

TEST(MultistrideTrace, SweepsAndLengths)
{
    const MultistrideParams p{128, 10, 0.25, 64, 0, 1};
    const auto trace = generateMultistrideTrace(p, 21);
    EXPECT_EQ(trace.size(), 10u);
    for (const auto &op : trace) {
        EXPECT_EQ(op.first.length, 128u);
        EXPECT_GE(op.first.stride, 1);
        EXPECT_LE(op.first.stride, 64);
    }
}

TEST(MultistrideTrace, ReuseRepeatsEachStride)
{
    const MultistrideParams p{128, 10, 0.25, 64, 0, 3};
    const auto trace = generateMultistrideTrace(p, 21);
    ASSERT_EQ(trace.size(), 30u);
    for (std::size_t s = 0; s < 10; ++s)
        for (std::size_t r = 1; r < 3; ++r)
            EXPECT_EQ(trace[3 * s + r].first.stride,
                      trace[3 * s].first.stride);
}

} // namespace
} // namespace vcache
