#include "util/flat_hash.hh"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/rng.hh"

namespace
{

using namespace vcache;

TEST(FlatSet, InsertFindErase)
{
    FlatSet<std::uint64_t> set;
    EXPECT_TRUE(set.empty());
    EXPECT_TRUE(set.insert(7));
    EXPECT_FALSE(set.insert(7));
    EXPECT_TRUE(set.contains(7));
    EXPECT_FALSE(set.contains(8));
    EXPECT_EQ(set.size(), 1u);
    EXPECT_TRUE(set.erase(7));
    EXPECT_FALSE(set.erase(7));
    EXPECT_TRUE(set.empty());
}

TEST(FlatSet, ClearKeepsWorking)
{
    FlatSet<std::uint64_t> set;
    for (std::uint64_t i = 0; i < 100; ++i)
        set.insert(i);
    set.clear();
    EXPECT_EQ(set.size(), 0u);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_FALSE(set.contains(i));
    EXPECT_TRUE(set.insert(3));
    EXPECT_EQ(set.size(), 1u);
}

TEST(FlatSet, GrowsAcrossRehash)
{
    FlatSet<std::uint64_t> set;
    constexpr std::uint64_t kN = 10000;
    for (std::uint64_t i = 0; i < kN; ++i)
        EXPECT_TRUE(set.insert(i * 0x10001));
    EXPECT_EQ(set.size(), kN);
    for (std::uint64_t i = 0; i < kN; ++i)
        EXPECT_TRUE(set.contains(i * 0x10001));
    EXPECT_FALSE(set.contains(1));
}

TEST(FlatMap, OperatorIndexAndFind)
{
    FlatMap<std::uint64_t, int> map;
    map[5] = 50;
    map[6] = 60;
    ASSERT_NE(map.find(5), nullptr);
    EXPECT_EQ(*map.find(5), 50);
    EXPECT_EQ(map.find(7), nullptr);
    map[5] = 51;
    EXPECT_EQ(*map.find(5), 51);
    EXPECT_EQ(map.size(), 2u);
}

TEST(FlatMap, InsertOrAssignReportsFreshness)
{
    FlatMap<std::uint64_t, int> map;
    EXPECT_TRUE(map.insertOrAssign(1, 10));
    EXPECT_FALSE(map.insertOrAssign(1, 11));
    EXPECT_EQ(*map.find(1), 11);
}

/** Colliding hash: every key lands on one bucket, so every probe
 *  chain is maximal and erase's backward shift is fully exercised. */
struct CollidingHash
{
    std::size_t operator()(std::uint64_t) const { return 0; }
};

TEST(FlatMap, EraseBackwardShiftUnderFullCollision)
{
    FlatMap<std::uint64_t, std::uint64_t, CollidingHash> map;
    for (std::uint64_t k = 0; k < 8; ++k)
        map.insertOrAssign(k, k * 10);
    // Remove from the middle of the single chain, then verify every
    // survivor is still reachable.
    EXPECT_TRUE(map.erase(3));
    EXPECT_TRUE(map.erase(0));
    for (std::uint64_t k = 0; k < 8; ++k) {
        if (k == 3 || k == 0) {
            EXPECT_EQ(map.find(k), nullptr) << k;
        } else {
            ASSERT_NE(map.find(k), nullptr) << k;
            EXPECT_EQ(*map.find(k), k * 10);
        }
    }
    // Reinsertion after the shift keeps the chain consistent.
    EXPECT_TRUE(map.insertOrAssign(3, 33));
    EXPECT_EQ(*map.find(3), 33u);
}

/** Identity hash: key == bucket, so tests can place chains exactly. */
struct IdentityHash
{
    std::size_t
    operator()(std::uint64_t x) const
    {
        return static_cast<std::size_t>(x);
    }
};

/**
 * UB-audit regression (hot-path vectorization review): the erase
 * backward shift compares probe distances with wraparound arithmetic
 * (`(j - home) & mask`).  Pin the case where the probe chain crosses
 * the table-end boundary -- home slots near capacity-1, displaced
 * entries at indices 0 and 1 -- and erase from every position in the
 * wrapped chain.  The probe loop itself is a linear scan with no
 * match masks, so there is no __builtin_ctz-on-zero to misfire; this
 * pins the one place the index arithmetic wraps.
 */
TEST(FlatMap, EraseBackwardShiftAcrossWraparound)
{
    // Table stays at kMinCapacity = 16 below 14 entries; keys 15, 31
    // and 47 all land on bucket 15 (key & 15), so with 14 occupying
    // slot 14 the chain wraps into slots 0 and 1.
    for (std::uint64_t victim : {14ull, 15ull, 31ull, 47ull}) {
        FlatMap<std::uint64_t, std::uint64_t, IdentityHash> map;
        const std::uint64_t keys[] = {14, 15, 31, 47};
        for (const std::uint64_t k : keys)
            map.insertOrAssign(k, k + 1000);
        EXPECT_TRUE(map.erase(victim));
        EXPECT_FALSE(map.erase(victim));
        for (const std::uint64_t k : keys) {
            if (k == victim) {
                EXPECT_EQ(map.find(k), nullptr) << k;
            } else {
                ASSERT_NE(map.find(k), nullptr)
                    << "lost key " << k << " erasing " << victim;
                EXPECT_EQ(*map.find(k), k + 1000);
            }
        }
        // The survivors' chain still accepts reinsertion and lookup
        // across the boundary.
        EXPECT_TRUE(map.insertOrAssign(victim, 7));
        EXPECT_EQ(*map.find(victim), 7u);
    }
}

/**
 * An entry whose home slot follows the gap around the wrap boundary
 * must NOT be shifted back (its probe distance does not reach the
 * gap); erasing slot 15 with an independent chain at 0 must leave
 * that chain alone.
 */
TEST(FlatMap, EraseAtBoundaryLeavesIndependentChain)
{
    FlatMap<std::uint64_t, std::uint64_t, IdentityHash> map;
    map.insertOrAssign(15, 150);
    map.insertOrAssign(0, 100);
    map.insertOrAssign(16, 200); // 16 & 15 == 0: same home as key 0
    EXPECT_TRUE(map.erase(15));
    ASSERT_NE(map.find(0), nullptr);
    EXPECT_EQ(*map.find(0), 100u);
    ASSERT_NE(map.find(16), nullptr);
    EXPECT_EQ(*map.find(16), 200u);
    EXPECT_EQ(map.find(15), nullptr);
}

/**
 * The satellite differential test: random interleavings of
 * insert/erase/find/clear against the std containers, with a key
 * range small enough that erases hit and chains overlap, across
 * enough operations to cross several growth rehashes.
 */
TEST(FlatHashDifferential, SetMatchesUnorderedSet)
{
    Rng rng(2024);
    FlatSet<std::uint64_t> flat;
    std::unordered_set<std::uint64_t> ref;

    for (int op = 0; op < 200000; ++op) {
        const std::uint64_t key = rng.uniformInt(0, 4095);
        const std::uint64_t what = rng.uniformInt(0, 99);
        if (what < 55) {
            EXPECT_EQ(flat.insert(key), ref.insert(key).second);
        } else if (what < 85) {
            EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
        } else if (what < 99) {
            EXPECT_EQ(flat.contains(key), ref.count(key) > 0);
        } else {
            flat.clear();
            ref.clear();
        }
        ASSERT_EQ(flat.size(), ref.size());
    }

    // Full-content sweep at the end.
    for (std::uint64_t key = 0; key < 4096; ++key)
        EXPECT_EQ(flat.contains(key), ref.count(key) > 0);
    std::uint64_t seen = 0;
    flat.forEach([&](std::uint64_t key) {
        ++seen;
        EXPECT_TRUE(ref.count(key)) << key;
    });
    EXPECT_EQ(seen, ref.size());
}

TEST(FlatHashDifferential, MapMatchesUnorderedMap)
{
    Rng rng(77);
    FlatMap<std::uint64_t, std::uint64_t> flat;
    std::unordered_map<std::uint64_t, std::uint64_t> ref;

    for (int op = 0; op < 200000; ++op) {
        const std::uint64_t key = rng.uniformInt(0, 2047);
        const std::uint64_t what = rng.uniformInt(0, 99);
        if (what < 35) {
            const std::uint64_t value = rng.next();
            EXPECT_EQ(flat.insertOrAssign(key, value),
                      ref.insert_or_assign(key, value).second);
        } else if (what < 55) {
            // operator[] default-constructs on first touch, like std.
            EXPECT_EQ(flat[key], ref[key]);
            const std::uint64_t value = rng.next();
            flat[key] = value;
            ref[key] = value;
        } else if (what < 85) {
            EXPECT_EQ(flat.erase(key), ref.erase(key) > 0);
        } else if (what < 99) {
            const auto *hit = flat.find(key);
            const auto it = ref.find(key);
            ASSERT_EQ(hit != nullptr, it != ref.end());
            if (hit) {
                EXPECT_EQ(*hit, it->second);
            }
        } else {
            flat.clear();
            ref.clear();
        }
        ASSERT_EQ(flat.size(), ref.size());
    }

    std::uint64_t seen = 0;
    flat.forEach([&](std::uint64_t key, std::uint64_t value) {
        ++seen;
        const auto it = ref.find(key);
        ASSERT_NE(it, ref.end()) << key;
        EXPECT_EQ(value, it->second);
    });
    EXPECT_EQ(seen, ref.size());
}

} // namespace
