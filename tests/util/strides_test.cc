/** Tests for the paper's stride distribution. */

#include <gtest/gtest.h>

#include <map>

#include "util/strides.hh"

namespace vcache
{
namespace
{

TEST(StrideDistribution, ProbabilityMassSumsToOne)
{
    const StrideDistribution d(0.25, 64);
    double total = 0.0;
    for (std::uint64_t s = 1; s <= 64; ++s)
        total += d.probability(s);
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(StrideDistribution, Stride1Mass)
{
    const StrideDistribution d(0.25, 64);
    EXPECT_DOUBLE_EQ(d.probability(1), 0.25);
    EXPECT_DOUBLE_EQ(d.probability(2), 0.75 / 63.0);
    EXPECT_DOUBLE_EQ(d.probability(65), 0.0);
    EXPECT_DOUBLE_EQ(d.probability(0), 0.0);
}

TEST(StrideDistribution, SamplesWithinRange)
{
    const StrideDistribution d(0.25, 32);
    Rng rng(5);
    for (int i = 0; i < 2000; ++i) {
        const auto s = d.sample(rng);
        EXPECT_GE(s, 1u);
        EXPECT_LE(s, 32u);
    }
}

TEST(StrideDistribution, EmpiricalStride1Rate)
{
    const StrideDistribution d(0.4, 128);
    Rng rng(9);
    int unit = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        unit += d.sample(rng) == 1;
    EXPECT_NEAR(static_cast<double>(unit) / n, 0.4, 0.02);
}

TEST(StrideDistribution, NonUnitRoughlyUniform)
{
    const StrideDistribution d(0.0, 8);
    Rng rng(13);
    std::map<std::uint64_t, int> counts;
    const int n = 70000;
    for (int i = 0; i < n; ++i)
        ++counts[d.sample(rng)];
    EXPECT_EQ(counts.count(1), 0u);
    for (std::uint64_t s = 2; s <= 8; ++s)
        EXPECT_NEAR(counts[s] / static_cast<double>(n), 1.0 / 7.0, 0.01)
            << "stride " << s;
}

TEST(StrideDistributionDeathTest, RejectsBadProbability)
{
    EXPECT_DEATH(StrideDistribution(1.5, 8), "probability");
}

TEST(StrideDistributionDeathTest, RejectsTinyMax)
{
    EXPECT_DEATH(StrideDistribution(0.5, 1), "at least 2");
}

} // namespace
} // namespace vcache
