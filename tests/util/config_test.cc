/** Tests for the INI-style configuration parser. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/config.hh"

namespace vcache
{
namespace
{

KeyValueConfig
parseText(const std::string &text)
{
    std::istringstream in(text);
    return KeyValueConfig::parse(in);
}

TEST(KeyValueConfig, SectionsPrefixKeys)
{
    const auto c = parseText(
        "top = 1\n"
        "[machine]\n"
        "mvl = 64\n"
        "memory_time = 32\n"
        "[cache]\n"
        "organization = prime\n");
    EXPECT_TRUE(c.has("top"));
    EXPECT_TRUE(c.has("machine.mvl"));
    EXPECT_TRUE(c.has("cache.organization"));
    EXPECT_FALSE(c.has("mvl"));
    EXPECT_EQ(c.getUint("machine.mvl", 0), 64u);
    EXPECT_EQ(c.getString("cache.organization", "?"), "prime");
}

TEST(KeyValueConfig, CommentsAndWhitespace)
{
    const auto c = parseText(
        "# full-line comment\n"
        "  key  =  spaced value  # trailing comment\n"
        "\n"
        "   \t \n");
    EXPECT_EQ(c.getString("key", "?"), "spaced value");
    EXPECT_EQ(c.keys().size(), 1u);
}

TEST(KeyValueConfig, TypedGettersAndDefaults)
{
    const auto c = parseText(
        "n = 42\n"
        "x = 2.5\n"
        "flag = yes\n"
        "off = false\n");
    EXPECT_EQ(c.getUint("n", 0), 42u);
    EXPECT_DOUBLE_EQ(c.getDouble("x", 0.0), 2.5);
    EXPECT_TRUE(c.getBool("flag", false));
    EXPECT_FALSE(c.getBool("off", true));
    EXPECT_EQ(c.getUint("absent", 7), 7u);
    EXPECT_DOUBLE_EQ(c.getDouble("absent", 1.5), 1.5);
    EXPECT_TRUE(c.getBool("absent", true));
}

TEST(KeyValueConfig, UnusedKeyTracking)
{
    const auto c = parseText("used = 1\ntypo = 2\n");
    (void)c.getUint("used", 0);
    const auto unused = c.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo");
}

TEST(KeyValueConfigDeathTest, MalformedInput)
{
    EXPECT_EXIT((void)parseText("no equals sign\n"),
                testing::ExitedWithCode(1), "expected");
    EXPECT_EXIT((void)parseText("[unclosed\n"),
                testing::ExitedWithCode(1), "section");
    EXPECT_EXIT((void)parseText("= value\n"),
                testing::ExitedWithCode(1), "empty key");
    EXPECT_EXIT((void)parseText("a = 1\na = 2\n"),
                testing::ExitedWithCode(1), "duplicate");
}

TEST(KeyValueConfigDeathTest, BadTypedValues)
{
    const auto c = parseText("n = -3\nx = abc\nb = maybe\n");
    EXPECT_EXIT((void)c.getUint("n", 0), testing::ExitedWithCode(1),
                "non-negative");
    EXPECT_EXIT((void)c.getDouble("x", 0.0),
                testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT((void)c.getBool("b", false),
                testing::ExitedWithCode(1), "not a boolean");
}

TEST(KeyValueConfigDeathTest, MissingFile)
{
    EXPECT_EXIT((void)KeyValueConfig::parseFile("/nonexistent.ini"),
                testing::ExitedWithCode(1), "cannot open");
}

// ---------------------------------------------------------------------
// Error-as-values: tryParse/tryGet* diagnostics with line numbers.
// ---------------------------------------------------------------------

Expected<KeyValueConfig>
tryParseText(const std::string &text, const std::string &name = "")
{
    std::istringstream in(text);
    return KeyValueConfig::tryParse(in, name);
}

TEST(KeyValueConfigTry, ParseErrorsCarryLineNumbers)
{
    const auto c = tryParseText("good = 1\nno equals sign\n");
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.error().code, Errc::InvalidConfig);
    EXPECT_NE(c.error().message.find("line 2"), std::string::npos);
}

TEST(KeyValueConfigTry, DuplicateKeyNamesBothLines)
{
    const auto c = tryParseText("a = 1\nb = 2\na = 3\n");
    ASSERT_FALSE(c.ok());
    EXPECT_NE(c.error().message.find("line 3"), std::string::npos);
    EXPECT_NE(c.error().message.find("first defined at line 1"),
              std::string::npos);
}

TEST(KeyValueConfigTry, DuplicateDetectionSpansSections)
{
    // The same key name in different sections is fine...
    EXPECT_TRUE(tryParseText("[a]\nk = 1\n[b]\nk = 2\n").ok());
    // ...the same full key twice is not.
    EXPECT_FALSE(tryParseText("[a]\nk = 1\n[a]\nk = 2\n").ok());
}

TEST(KeyValueConfigTry, RejectsGarbageAfterSectionHeader)
{
    // Used to be half-accepted: "[sec]extra" silently became section
    // "sec" with the garbage dropped.
    const auto c = tryParseText("[sec]extra\nk = 1\n");
    ASSERT_FALSE(c.ok());
    EXPECT_NE(c.error().message.find("trailing garbage"),
              std::string::npos);
}

TEST(KeyValueConfigTry, RejectsEmptySectionName)
{
    const auto c = tryParseText("[]\nk = 1\n");
    ASSERT_FALSE(c.ok());
    EXPECT_NE(c.error().message.find("empty section"),
              std::string::npos);
}

TEST(KeyValueConfigTry, TypedGetterErrorsNameKeyAndDefinitionLine)
{
    const auto c = tryParseText("\n\nn = -3\n", "exp.ini");
    ASSERT_TRUE(c.ok());
    const auto n = c.value().tryGetUint("n", 0);
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.error().code, Errc::InvalidConfig);
    EXPECT_NE(n.error().message.find("'n'"), std::string::npos);
    EXPECT_NE(n.error().message.find("line 3"), std::string::npos);
    EXPECT_NE(n.error().message.find("exp.ini"), std::string::npos);

    EXPECT_EQ(c.value().tryGetUint("absent", 9).valueOr(0), 9u);
    EXPECT_EQ(c.value().lineOf("n"), 3u);
    EXPECT_EQ(c.value().lineOf("absent"), 0u);
}

TEST(KeyValueConfigTry, TryGetDoubleAndBool)
{
    const auto c = tryParseText("x = 2.5\nb = yes\nbad = maybe\n");
    ASSERT_TRUE(c.ok());
    EXPECT_DOUBLE_EQ(c.value().tryGetDouble("x", 0.0).value(), 2.5);
    EXPECT_TRUE(c.value().tryGetBool("b", false).value());
    EXPECT_FALSE(c.value().tryGetBool("bad", false).ok());
}

TEST(KeyValueConfigTry, RejectUnknownListsUntouchedKeysWithLines)
{
    const auto c = tryParseText("used = 1\ntypo = 2\nslip = 3\n");
    ASSERT_TRUE(c.ok());
    (void)c.value().tryGetUint("used", 0);
    const auto verdict = c.value().rejectUnknown();
    ASSERT_FALSE(verdict.ok());
    EXPECT_NE(verdict.error().message.find("typo"), std::string::npos);
    EXPECT_NE(verdict.error().message.find("slip"), std::string::npos);
    EXPECT_NE(verdict.error().message.find("line 2"),
              std::string::npos);

    (void)c.value().tryGetUint("typo", 0);
    (void)c.value().tryGetUint("slip", 0);
    EXPECT_TRUE(c.value().rejectUnknown().ok());
}

TEST(KeyValueConfigTry, MissingFileIsIoError)
{
    const auto c = KeyValueConfig::tryParseFile("/nonexistent.ini");
    ASSERT_FALSE(c.ok());
    EXPECT_EQ(c.error().code, Errc::Io);
}

} // namespace
} // namespace vcache
