/** Tests for the INI-style configuration parser. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/config.hh"

namespace vcache
{
namespace
{

KeyValueConfig
parseText(const std::string &text)
{
    std::istringstream in(text);
    return KeyValueConfig::parse(in);
}

TEST(KeyValueConfig, SectionsPrefixKeys)
{
    const auto c = parseText(
        "top = 1\n"
        "[machine]\n"
        "mvl = 64\n"
        "memory_time = 32\n"
        "[cache]\n"
        "organization = prime\n");
    EXPECT_TRUE(c.has("top"));
    EXPECT_TRUE(c.has("machine.mvl"));
    EXPECT_TRUE(c.has("cache.organization"));
    EXPECT_FALSE(c.has("mvl"));
    EXPECT_EQ(c.getUint("machine.mvl", 0), 64u);
    EXPECT_EQ(c.getString("cache.organization", "?"), "prime");
}

TEST(KeyValueConfig, CommentsAndWhitespace)
{
    const auto c = parseText(
        "# full-line comment\n"
        "  key  =  spaced value  # trailing comment\n"
        "\n"
        "   \t \n");
    EXPECT_EQ(c.getString("key", "?"), "spaced value");
    EXPECT_EQ(c.keys().size(), 1u);
}

TEST(KeyValueConfig, TypedGettersAndDefaults)
{
    const auto c = parseText(
        "n = 42\n"
        "x = 2.5\n"
        "flag = yes\n"
        "off = false\n");
    EXPECT_EQ(c.getUint("n", 0), 42u);
    EXPECT_DOUBLE_EQ(c.getDouble("x", 0.0), 2.5);
    EXPECT_TRUE(c.getBool("flag", false));
    EXPECT_FALSE(c.getBool("off", true));
    EXPECT_EQ(c.getUint("absent", 7), 7u);
    EXPECT_DOUBLE_EQ(c.getDouble("absent", 1.5), 1.5);
    EXPECT_TRUE(c.getBool("absent", true));
}

TEST(KeyValueConfig, UnusedKeyTracking)
{
    const auto c = parseText("used = 1\ntypo = 2\n");
    (void)c.getUint("used", 0);
    const auto unused = c.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo");
}

TEST(KeyValueConfigDeathTest, MalformedInput)
{
    EXPECT_EXIT((void)parseText("no equals sign\n"),
                testing::ExitedWithCode(1), "expected");
    EXPECT_EXIT((void)parseText("[unclosed\n"),
                testing::ExitedWithCode(1), "section");
    EXPECT_EXIT((void)parseText("= value\n"),
                testing::ExitedWithCode(1), "empty key");
    EXPECT_EXIT((void)parseText("a = 1\na = 2\n"),
                testing::ExitedWithCode(1), "duplicate");
}

TEST(KeyValueConfigDeathTest, BadTypedValues)
{
    const auto c = parseText("n = -3\nx = abc\nb = maybe\n");
    EXPECT_EXIT((void)c.getUint("n", 0), testing::ExitedWithCode(1),
                "non-negative");
    EXPECT_EXIT((void)c.getDouble("x", 0.0),
                testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT((void)c.getBool("b", false),
                testing::ExitedWithCode(1), "not a boolean");
}

TEST(KeyValueConfigDeathTest, MissingFile)
{
    EXPECT_EXIT((void)KeyValueConfig::parseFile("/nonexistent.ini"),
                testing::ExitedWithCode(1), "cannot open");
}

} // namespace
} // namespace vcache
