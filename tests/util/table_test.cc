/** Tests for the aligned/CSV table writer. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace vcache
{
namespace
{

TEST(Table, AlignedOutput)
{
    Table t({"name", "value"});
    t.addRow("alpha", 1);
    t.addRow("b", 22);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    // Four lines: header, rule, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(Table, RowCount)
{
    Table t({"a"});
    EXPECT_EQ(t.rows(), 0u);
    t.addRow(1);
    t.addRow(2);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, DoubleFormatting)
{
    EXPECT_EQ(Table::format(1.0), "1.000");
    EXPECT_EQ(Table::format(2.3456), "2.346");
}

TEST(Table, CsvEscaping)
{
    Table t({"x", "y"});
    t.addRow("has,comma", "has\"quote");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"has,comma\""), std::string::npos);
    EXPECT_NE(os.str().find("\"has\"\"quote\""), std::string::npos);
}

TEST(Table, CsvQuotesLineBreaks)
{
    // RFC 4180: LF and CR both force quoting, or downstream parsers
    // silently split the row.
    Table t({"x", "y"});
    t.addRow("has\nnewline", "has\rreturn");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_NE(os.str().find("\"has\nnewline\""), std::string::npos);
    EXPECT_NE(os.str().find("\"has\rreturn\""), std::string::npos);
}

TEST(Table, CsvQuotedHeaderCells)
{
    Table t({"plain", "with,comma"});
    t.addRow(1, 2);
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "plain,\"with,comma\"\n1,2\n");
}

TEST(Table, CsvPlainValuesUnquoted)
{
    Table t({"x"});
    t.addRow("plain");
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x\nplain\n");
}

TEST(TableDeathTest, WrongArity)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow(1), "cells");
}

} // namespace
} // namespace vcache
