/** Tests for the xorshift64* RNG and its distributions. */

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hh"

namespace vcache
{
namespace
{

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, ZeroSeedIsUsable)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

TEST(Rng, UniformIntInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = r.uniformInt(5, 17);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 17u);
    }
}

TEST(Rng, UniformIntSingleton)
{
    Rng r(7);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(r.uniformInt(9, 9), 9u);
}

TEST(Rng, UniformIntCoversRange)
{
    Rng r(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(r.uniformInt(0, 7));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformRealInUnitInterval)
{
    Rng r(13);
    for (int i = 0; i < 1000; ++i) {
        const double v = r.uniformReal();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, UniformRealMeanNearHalf)
{
    Rng r(17);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        sum += r.uniformReal();
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(19);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.bernoulli(0.0));
        EXPECT_TRUE(r.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliRate)
{
    Rng r(23);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, ReseedRepeatsSequence)
{
    Rng r(31);
    const auto a = r.next();
    const auto b = r.next();
    r.seed(31);
    EXPECT_EQ(r.next(), a);
    EXPECT_EQ(r.next(), b);
}

} // namespace
} // namespace vcache
