/** Tests for the error-as-values plumbing (Expected, Error, VcError). */

#include <gtest/gtest.h>

#include <string>

#include "util/result.hh"

namespace vcache
{
namespace
{

Expected<int>
parsePositive(int v)
{
    if (v <= 0)
        return makeError(Errc::InvalidConfig, "not positive");
    return v;
}

TEST(Expected, HoldsValue)
{
    const Expected<int> e = parsePositive(7);
    ASSERT_TRUE(e.ok());
    EXPECT_TRUE(static_cast<bool>(e));
    EXPECT_EQ(e.value(), 7);
    EXPECT_EQ(e.valueOr(-1), 7);
}

TEST(Expected, HoldsError)
{
    const Expected<int> e = parsePositive(-3);
    ASSERT_FALSE(e.ok());
    EXPECT_EQ(e.error().code, Errc::InvalidConfig);
    EXPECT_EQ(e.error().message, "not positive");
    EXPECT_EQ(e.valueOr(-1), -1);
}

TEST(Expected, ValueThrowsVcErrorOnError)
{
    const Expected<int> e = parsePositive(0);
    try {
        (void)e.value();
        FAIL() << "value() should have thrown";
    } catch (const VcError &err) {
        EXPECT_EQ(err.error().code, Errc::InvalidConfig);
        // what() carries the described error for generic handlers.
        EXPECT_NE(std::string(err.what()).find("not positive"),
                  std::string::npos);
    }
}

TEST(Expected, VoidSpecialisation)
{
    Expected<void> ok;
    EXPECT_TRUE(ok.ok());
    EXPECT_NO_THROW(ok.value());

    Expected<void> bad = makeError(Errc::Io, "cannot open");
    EXPECT_FALSE(bad.ok());
    EXPECT_THROW(bad.value(), VcError);
    EXPECT_EQ(bad.error().code, Errc::Io);
}

TEST(ErrorStruct, CapturesCallSiteLocation)
{
    const Error e = makeError(Errc::MalformedTrace, "bad record");
    // The file is the *basename* of this test file and the line is
    // the makeError call above -- close enough to assert on the name.
    EXPECT_EQ(e.file, "result_test.cc");
    EXPECT_GT(e.line, 0u);
}

TEST(ErrorStruct, DescribeIncludesCodeMessageAndNotes)
{
    Error e = makeError(Errc::Timeout, "deadline expired");
    e.note("grid point 42").note("while sweeping");
    const std::string text = e.describe();
    EXPECT_NE(text.find("Timeout"), std::string::npos);
    EXPECT_NE(text.find("deadline expired"), std::string::npos);
    EXPECT_NE(text.find("result_test.cc"), std::string::npos);
    EXPECT_NE(text.find("grid point 42"), std::string::npos);
    EXPECT_NE(text.find("while sweeping"), std::string::npos);
    // Innermost note first.
    EXPECT_LT(text.find("grid point 42"), text.find("while sweeping"));
}

TEST(ErrorStruct, ErrcNamesAreStable)
{
    EXPECT_STREQ(errcName(Errc::InvalidConfig), "InvalidConfig");
    EXPECT_STREQ(errcName(Errc::MalformedTrace), "MalformedTrace");
    EXPECT_STREQ(errcName(Errc::Io), "Io");
    EXPECT_STREQ(errcName(Errc::Timeout), "Timeout");
    EXPECT_STREQ(errcName(Errc::Cancelled), "Cancelled");
    EXPECT_STREQ(errcName(Errc::InternalInvariant),
                 "InternalInvariant");
}

} // namespace
} // namespace vcache
