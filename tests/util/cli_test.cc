/** Tests for the command-line flag parser. */

#include <gtest/gtest.h>

#include <vector>

#include "util/cli.hh"

namespace vcache
{
namespace
{

/** Build a mutable argv from string literals. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : storage(std::move(args))
    {
        for (auto &s : storage)
            pointers.push_back(s.data());
    }

    int argc() const { return static_cast<int>(pointers.size()); }
    char **argv() { return pointers.data(); }

  private:
    std::vector<std::string> storage;
    std::vector<char *> pointers;
};

TEST(ArgParser, DefaultsApply)
{
    ArgParser p("test");
    p.addFlag("count", "5", "a count");
    Argv a({"prog"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("count"), 5);
}

TEST(ArgParser, EqualsForm)
{
    ArgParser p("test");
    p.addFlag("count", "5", "a count");
    Argv a({"prog", "--count=9"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("count"), 9);
}

TEST(ArgParser, SpaceForm)
{
    ArgParser p("test");
    p.addFlag("name", "x", "a name");
    Argv a({"prog", "--name", "hello"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getString("name"), "hello");
}

TEST(ArgParser, Types)
{
    ArgParser p("test");
    p.addFlag("i", "-3", "int");
    p.addFlag("u", "7", "uint");
    p.addFlag("d", "2.5", "double");
    p.addFlag("b", "true", "bool");
    Argv a({"prog"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("i"), -3);
    EXPECT_EQ(p.getUint("u"), 7u);
    EXPECT_DOUBLE_EQ(p.getDouble("d"), 2.5);
    EXPECT_TRUE(p.getBool("b"));
}

TEST(ArgParser, WasSetDistinguishesDefaults)
{
    ArgParser p("test");
    p.addFlag("given", "1", "set on the command line");
    p.addFlag("defaulted", "2", "left at its default");
    Argv a({"prog", "--given=5"});
    p.parse(a.argc(), a.argv());
    EXPECT_TRUE(p.wasSet("given"));
    EXPECT_FALSE(p.wasSet("defaulted"));
    EXPECT_EQ(p.getInt("defaulted"), 2);
}

TEST(ArgParser, UsageListsFlags)
{
    ArgParser p("my tool");
    p.addFlag("alpha", "1", "the alpha flag");
    const std::string u = p.usage();
    EXPECT_NE(u.find("my tool"), std::string::npos);
    EXPECT_NE(u.find("--alpha"), std::string::npos);
    EXPECT_NE(u.find("the alpha flag"), std::string::npos);
}

TEST(ArgParserDeathTest, UnknownFlag)
{
    ArgParser p("test");
    p.addFlag("known", "1", "known");
    Argv a({"prog", "--unknown=2"});
    EXPECT_EXIT(p.parse(a.argc(), a.argv()),
                testing::ExitedWithCode(1), "unknown flag");
}

TEST(ArgParserDeathTest, BadInteger)
{
    ArgParser p("test");
    p.addFlag("n", "1", "n");
    Argv a({"prog", "--n=abc"});
    p.parse(a.argc(), a.argv());
    EXPECT_EXIT((void)p.getInt("n"), testing::ExitedWithCode(1),
                "not an integer");
}

TEST(ArgParserDeathTest, NegativeUint)
{
    ArgParser p("test");
    p.addFlag("n", "1", "n");
    Argv a({"prog", "--n=-4"});
    p.parse(a.argc(), a.argv());
    EXPECT_EXIT((void)p.getUint("n"), testing::ExitedWithCode(1),
                "non-negative");
}

} // namespace
} // namespace vcache
