/** Tests for the command-line flag parser. */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "simd/kernels.hh"
#include "util/buildinfo.hh"
#include "util/cli.hh"

namespace vcache
{
namespace
{

/** Build a mutable argv from string literals. */
class Argv
{
  public:
    explicit Argv(std::vector<std::string> args) : storage(std::move(args))
    {
        for (auto &s : storage)
            pointers.push_back(s.data());
    }

    int argc() const { return static_cast<int>(pointers.size()); }
    char **argv() { return pointers.data(); }

  private:
    std::vector<std::string> storage;
    std::vector<char *> pointers;
};

TEST(ArgParser, DefaultsApply)
{
    ArgParser p("test");
    p.addFlag("count", "5", "a count");
    Argv a({"prog"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("count"), 5);
}

TEST(ArgParser, EqualsForm)
{
    ArgParser p("test");
    p.addFlag("count", "5", "a count");
    Argv a({"prog", "--count=9"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("count"), 9);
}

TEST(ArgParser, SpaceForm)
{
    ArgParser p("test");
    p.addFlag("name", "x", "a name");
    Argv a({"prog", "--name", "hello"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getString("name"), "hello");
}

TEST(ArgParser, Types)
{
    ArgParser p("test");
    p.addFlag("i", "-3", "int");
    p.addFlag("u", "7", "uint");
    p.addFlag("d", "2.5", "double");
    p.addFlag("b", "true", "bool");
    Argv a({"prog"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("i"), -3);
    EXPECT_EQ(p.getUint("u"), 7u);
    EXPECT_DOUBLE_EQ(p.getDouble("d"), 2.5);
    EXPECT_TRUE(p.getBool("b"));
}

TEST(ArgParser, WasSetDistinguishesDefaults)
{
    ArgParser p("test");
    p.addFlag("given", "1", "set on the command line");
    p.addFlag("defaulted", "2", "left at its default");
    Argv a({"prog", "--given=5"});
    p.parse(a.argc(), a.argv());
    EXPECT_TRUE(p.wasSet("given"));
    EXPECT_FALSE(p.wasSet("defaulted"));
    EXPECT_EQ(p.getInt("defaulted"), 2);
}

TEST(ArgParser, UsageListsFlags)
{
    ArgParser p("my tool");
    p.addFlag("alpha", "1", "the alpha flag");
    const std::string u = p.usage();
    EXPECT_NE(u.find("my tool"), std::string::npos);
    EXPECT_NE(u.find("--alpha"), std::string::npos);
    EXPECT_NE(u.find("the alpha flag"), std::string::npos);
}

TEST(ArgParserDeathTest, UnknownFlag)
{
    ArgParser p("test");
    p.addFlag("known", "1", "known");
    Argv a({"prog", "--unknown=2"});
    EXPECT_EXIT(p.parse(a.argc(), a.argv()),
                testing::ExitedWithCode(1), "unknown flag");
}

TEST(ArgParserDeathTest, BadInteger)
{
    ArgParser p("test");
    p.addFlag("n", "1", "n");
    Argv a({"prog", "--n=abc"});
    p.parse(a.argc(), a.argv());
    EXPECT_EXIT((void)p.getInt("n"), testing::ExitedWithCode(1),
                "not an integer");
}

TEST(ArgParserDeathTest, NegativeUint)
{
    ArgParser p("test");
    p.addFlag("n", "1", "n");
    Argv a({"prog", "--n=-4"});
    p.parse(a.argc(), a.argv());
    EXPECT_EXIT((void)p.getUint("n"), testing::ExitedWithCode(1),
                "non-negative");
}

TEST(ArgParserDeathTest, TrailingGarbageInt)
{
    // std::stoll would have silently parsed "4x" as 4; the whole
    // string must now be numeric.
    ArgParser p("test");
    p.addFlag("jobs", "1", "jobs");
    Argv a({"prog", "--jobs=4x"});
    p.parse(a.argc(), a.argv());
    EXPECT_EXIT((void)p.getInt("jobs"), testing::ExitedWithCode(1),
                "not an integer");
}

TEST(ArgParserDeathTest, FractionalJobsRejected)
{
    ArgParser p("test");
    p.addFlag("jobs", "1", "jobs");
    Argv a({"prog", "--jobs=4.5"});
    p.parse(a.argc(), a.argv());
    EXPECT_EXIT((void)p.getUint("jobs"), testing::ExitedWithCode(1),
                "non-negative integer");
}

TEST(ArgParserDeathTest, HexNotSilentlyTruncated)
{
    // "0x10" used to parse as 0; it must be an error.
    ArgParser p("test");
    p.addFlag("n", "1", "n");
    Argv a({"prog", "--n=0x10"});
    p.parse(a.argc(), a.argv());
    EXPECT_EXIT((void)p.getInt("n"), testing::ExitedWithCode(1),
                "not an integer");
}

TEST(ArgParserDeathTest, IntOverflowIsFatal)
{
    ArgParser p("test");
    p.addFlag("n", "1", "n");
    Argv a({"prog", "--n=9223372036854775808"}); // INT64_MAX + 1
    p.parse(a.argc(), a.argv());
    EXPECT_EXIT((void)p.getInt("n"), testing::ExitedWithCode(1),
                "out of range");
}

TEST(ArgParserDeathTest, UintOverflowIsFatal)
{
    ArgParser p("test");
    p.addFlag("n", "1", "n");
    Argv a({"prog", "--n=18446744073709551616"}); // UINT64_MAX + 1
    p.parse(a.argc(), a.argv());
    EXPECT_EXIT((void)p.getUint("n"), testing::ExitedWithCode(1),
                "out of range");
}

TEST(ArgParserDeathTest, TrailingGarbageDouble)
{
    ArgParser p("test");
    p.addFlag("d", "1.0", "d");
    Argv a({"prog", "--d=2.5abc"});
    p.parse(a.argc(), a.argv());
    EXPECT_EXIT((void)p.getDouble("d"), testing::ExitedWithCode(1),
                "not a number");
}

TEST(ArgParser, ExtremeButValidValuesParse)
{
    ArgParser p("test");
    p.addFlag("lo", "0", "lo");
    p.addFlag("hi", "0", "hi");
    p.addFlag("uhi", "0", "uhi");
    Argv a({"prog", "--lo=-9223372036854775808",
            "--hi=9223372036854775807",
            "--uhi=18446744073709551615"});
    p.parse(a.argc(), a.argv());
    EXPECT_EQ(p.getInt("lo"), std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(p.getInt("hi"), std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(p.getUint("uhi"),
              std::numeric_limits<std::uint64_t>::max());
}

// ---------------------------------------------------------------------
// Error-as-values: tryParse/tryGet* for embedding in the sweep's
// recoverable paths.
// ---------------------------------------------------------------------

TEST(ArgParserTry, UnknownFlagIsAValueError)
{
    ArgParser p("test");
    p.addFlag("known", "1", "known");
    Argv a({"prog", "--unknown=2"});
    const auto parsed = p.tryParse(a.argc(), a.argv());
    ASSERT_FALSE(parsed.ok());
    EXPECT_EQ(parsed.error().code, Errc::InvalidConfig);
    EXPECT_NE(parsed.error().message.find("unknown"),
              std::string::npos);
}

TEST(ArgParserTry, MissingValueIsAValueError)
{
    ArgParser p("test");
    p.addFlag("n", "1", "n");
    Argv a({"prog", "--n"});
    EXPECT_FALSE(p.tryParse(a.argc(), a.argv()).ok());
}

TEST(ArgParserTry, SuccessfulParseReadsTypedValues)
{
    ArgParser p("test");
    p.addFlag("n", "1", "n");
    p.addFlag("x", "0.5", "x");
    p.addFlag("b", "false", "b");
    Argv a({"prog", "--n=42", "--x=2.5", "--b=true"});
    ASSERT_TRUE(p.tryParse(a.argc(), a.argv()).ok());
    EXPECT_EQ(p.tryGetInt("n").value(), 42);
    EXPECT_EQ(p.tryGetUint("n").value(), 42u);
    EXPECT_DOUBLE_EQ(p.tryGetDouble("x").value(), 2.5);
    EXPECT_TRUE(p.tryGetBool("b").value());
}

TEST(ArgParserTry, BadTypedValuesAreValueErrors)
{
    ArgParser p("test");
    p.addFlag("n", "0", "n");
    p.addFlag("x", "0", "x");
    p.addFlag("b", "false", "b");
    Argv a({"prog", "--n=12abc", "--x=nanx", "--b=maybe"});
    ASSERT_TRUE(p.tryParse(a.argc(), a.argv()).ok());

    const auto n = p.tryGetInt("n");
    ASSERT_FALSE(n.ok());
    EXPECT_EQ(n.error().code, Errc::InvalidConfig);
    EXPECT_NE(n.error().message.find("--n"), std::string::npos);
    EXPECT_FALSE(p.tryGetDouble("x").ok());
    EXPECT_FALSE(p.tryGetBool("b").ok());
}

TEST(ArgParserTry, NegativeValueForUintIsAValueError)
{
    ArgParser p("test");
    p.addFlag("n", "0", "n");
    Argv a({"prog", "--n=-3"});
    ASSERT_TRUE(p.tryParse(a.argc(), a.argv()).ok());
    EXPECT_FALSE(p.tryGetUint("n").ok());
    EXPECT_EQ(p.tryGetInt("n").value(), -3);
}

TEST(BuildInfo, IdentityFieldsAreNonEmpty)
{
    EXPECT_STRNE(buildGitHash(), "");
    EXPECT_STRNE(buildTypeName(), "");
    const std::string info = buildInfoString();
    EXPECT_NE(info.find("vcache "), std::string::npos);
    EXPECT_NE(info.find(buildGitHash()), std::string::npos);
    EXPECT_NE(info.find(buildTypeName()), std::string::npos);
    EXPECT_NE(info.find("simd="), std::string::npos);
}

TEST(BuildInfo, ResultIdentityExcludesSimdBackend)
{
    // The memo-store label must not depend on the dispatched backend
    // (results are pinned bit-identical across backends), only on
    // what can change them: the code and the build type.
    const std::string id = buildResultIdentity();
    EXPECT_EQ(id, std::string(buildGitHash()) + ":" + buildTypeName());
    EXPECT_EQ(id.find("simd"), std::string::npos);
}

TEST(BuildInfo, SimdProviderIsRegisteredByDispatcher)
{
    // Referencing the dispatcher (as every simulator-carrying tool
    // does) pulls its TU into the binary, whose static init registers
    // the provider; the reported backend must then be the dispatched
    // one, never the "unknown" fallback.
    EXPECT_STREQ(buildInfoSimdBackend(),
                 simd::backendName(simd::activeBackend()));
    const std::string backend = buildInfoSimdBackend();
    EXPECT_TRUE(backend == "scalar" || backend == "avx2" ||
                backend == "neon")
        << backend;
}

TEST(ArgParserDeathTest, VersionPrintsBuildInfoAndExits)
{
    ArgParser p("test");
    Argv a({"prog", "--version"});
    EXPECT_EXIT(p.parse(a.argc(), a.argv()),
                testing::ExitedWithCode(0), "");
}

TEST(ArgParser, UsageMentionsVersion)
{
    ArgParser p("test");
    EXPECT_NE(p.usage().find("--version"), std::string::npos);
}

} // namespace
} // namespace vcache
