/** Tests for RunningStats and Histogram. */

#include <gtest/gtest.h>

#include <cstdint>

#include "util/stats.hh"

namespace vcache
{
namespace
{

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(3.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 3.5);
    EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Population variance is 4; the unbiased sample variance is
    // 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    RunningStats whole, a, b;
    for (int i = 0; i < 50; ++i) {
        const double v = i * 0.37 - 3.0;
        whole.add(v);
        (i % 2 ? a : b).add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-10);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, empty;
    a.add(1.0);
    a.add(2.0);
    const double mean = a.mean();
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), mean);
    empty.merge(a);
    EXPECT_DOUBLE_EQ(empty.mean(), mean);
}

TEST(RunningStats, MergeTwoEmpties)
{
    RunningStats a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(RunningStats, MergeOneSidedPreservesAllMoments)
{
    RunningStats full, empty_side;
    for (double v : {3.0, 1.0, 4.0, 1.0, 5.0})
        full.add(v);
    empty_side.merge(full);
    EXPECT_EQ(empty_side.count(), full.count());
    EXPECT_DOUBLE_EQ(empty_side.mean(), full.mean());
    EXPECT_DOUBLE_EQ(empty_side.variance(), full.variance());
    EXPECT_DOUBLE_EQ(empty_side.min(), full.min());
    EXPECT_DOUBLE_EQ(empty_side.max(), full.max());
    EXPECT_DOUBLE_EQ(empty_side.sum(), full.sum());
}

TEST(RunningStats, MergeOfManySplitsMatchesSinglePass)
{
    // Split 1000 samples into 7 uneven chunks; merging the chunk
    // accumulators must reproduce the single-pass moments.  This is
    // the exact shape of the parallel sweep's per-worker merge.
    RunningStats whole;
    RunningStats chunks[7];
    for (int i = 0; i < 1000; ++i) {
        const double v = (i % 13) * 1.7 - (i % 5) * 0.3 + i * 1e-3;
        whole.add(v);
        chunks[(i * i) % 7].add(v);
    }
    RunningStats merged;
    for (const auto &c : chunks)
        merged.merge(c);
    EXPECT_EQ(merged.count(), whole.count());
    EXPECT_NEAR(merged.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(merged.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(merged.min(), whole.min());
    EXPECT_DOUBLE_EQ(merged.max(), whole.max());
    EXPECT_NEAR(merged.sum(), whole.sum(), 1e-9);
}

TEST(RunningStats, MergeUnevenSizes)
{
    RunningStats big, small, whole;
    for (int i = 0; i < 99; ++i) {
        big.add(static_cast<double>(i));
        whole.add(static_cast<double>(i));
    }
    small.add(1000.0);
    whole.add(1000.0);
    big.merge(small);
    EXPECT_EQ(big.count(), whole.count());
    EXPECT_NEAR(big.mean(), whole.mean(), 1e-12);
    EXPECT_NEAR(big.variance(), whole.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(big.max(), 1000.0);
}

TEST(Histogram, BucketEdges)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), 0.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(0), 2.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(4), 8.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(4), 10.0);
}

TEST(Histogram, Placement)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.0);
    h.add(1.99);
    h.add(2.0);
    h.add(9.99);
    h.add(-1.0);
    h.add(10.0);
    EXPECT_EQ(h.bucket(0), 2u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Quantiles, NormalMatchesTabulatedValues)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normalQuantile(0.975), 1.959963985, 1e-6);
    EXPECT_NEAR(normalQuantile(0.995), 2.575829304, 1e-6);
    EXPECT_NEAR(normalQuantile(0.025), -normalQuantile(0.975), 1e-9);
}

TEST(Quantiles, StudentTMatchesTabulatedValues)
{
    // Classic two-sided 95% critical values: t_{0.975, df}.
    EXPECT_NEAR(studentTQuantile(0.975, 1), 12.7062, 1e-3);
    EXPECT_NEAR(studentTQuantile(0.975, 2), 4.3027, 1e-3);
    EXPECT_NEAR(studentTQuantile(0.975, 3), 3.1824, 5e-3);
    EXPECT_NEAR(studentTQuantile(0.975, 10), 2.2281, 5e-3);
    EXPECT_NEAR(studentTQuantile(0.975, 30), 2.0423, 5e-3);
    EXPECT_NEAR(studentTQuantile(0.975, 1000), 1.9623, 5e-3);
}

TEST(Quantiles, StudentTIsSymmetricAndMonotoneInDf)
{
    EXPECT_NEAR(studentTQuantile(0.025, 5),
                -studentTQuantile(0.975, 5), 1e-9);
    // More degrees of freedom shrink the tail toward the normal.
    double prev = studentTQuantile(0.975, 1);
    for (std::uint64_t df : {2u, 3u, 5u, 10u, 100u}) {
        const double q = studentTQuantile(0.975, df);
        EXPECT_LT(q, prev) << "df " << df;
        EXPECT_GT(q, normalQuantile(0.975)) << "df " << df;
        prev = q;
    }
}

TEST(Histogram, RenderMentionsCounts)
{
    Histogram h(0.0, 4.0, 2);
    h.add(1.0);
    h.add(1.5);
    h.add(3.0);
    const std::string out = h.render(10);
    EXPECT_NE(out.find("2"), std::string::npos);
    EXPECT_NE(out.find("#"), std::string::npos);
}

} // namespace
} // namespace vcache
