/** Tests for the fixed-size thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <vector>

#include "util/threadpool.hh"

namespace vcache
{
namespace
{

TEST(ThreadPool, DefaultWorkersIsAtLeastOne)
{
    EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
    ThreadPool pool;
    EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, RunsEveryJobExactlyOnce)
{
    constexpr int kJobs = 500;
    std::atomic<int> ran{0};
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    for (int i = 0; i < kJobs; ++i)
        pool.submit([&ran](unsigned) {
            ran.fetch_add(1, std::memory_order_relaxed);
        });
    pool.wait();
    EXPECT_EQ(ran.load(), kJobs);
    EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, WorkerIdsAreInRange)
{
    ThreadPool pool(3);
    std::mutex mtx;
    std::set<unsigned> seen;
    for (int i = 0; i < 200; ++i)
        pool.submit([&](unsigned w) {
            std::lock_guard<std::mutex> lock(mtx);
            seen.insert(w);
        });
    pool.wait();
    ASSERT_FALSE(seen.empty());
    for (unsigned w : seen)
        EXPECT_LT(w, 3u);
}

TEST(ThreadPool, ReusableAfterWait)
{
    std::atomic<int> ran{0};
    ThreadPool pool(2);
    pool.submit([&](unsigned) { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 1);
    pool.submit([&](unsigned) { ++ran; });
    pool.submit([&](unsigned) { ++ran; });
    pool.wait();
    EXPECT_EQ(ran.load(), 3);
}

TEST(ThreadPool, DestructorDrainsQueuedJobs)
{
    std::atomic<int> ran{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 100; ++i)
            pool.submit([&ran](unsigned) {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        // No wait(): destruction itself must not drop work.
    }
    EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WaitWithNoJobsReturnsImmediately)
{
    ThreadPool pool(2);
    pool.wait();
    EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPool, ConcurrentWritersDisjointSlots)
{
    constexpr int kJobs = 256;
    std::vector<int> slots(kJobs, 0);
    ThreadPool pool(4);
    for (int i = 0; i < kJobs; ++i)
        pool.submit([&slots, i](unsigned) { slots[i] = i + 1; });
    pool.wait();
    for (int i = 0; i < kJobs; ++i)
        EXPECT_EQ(slots[i], i + 1);
}

} // namespace
} // namespace vcache
