/** Tests for the logging/assertion helpers. */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace vcache
{
namespace
{

TEST(Logging, InformAndWarnDoNotTerminate)
{
    testing::internal::CaptureStderr();
    inform("status ", 42);
    warn("odd but fine: ", 3.5);
    const std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("info: status 42"), std::string::npos);
    EXPECT_NE(out.find("warn: odd but fine: 3.5"), std::string::npos);
}

TEST(Logging, ConcatFormatsMixedTypes)
{
    EXPECT_EQ(detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::concat(), "");
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(vc_fatal("bad config ", 7),
                testing::ExitedWithCode(1), "fatal: bad config 7");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(vc_panic("broken invariant"),
                 "panic: broken invariant");
}

TEST(LoggingDeathTest, AssertMessageNamesCondition)
{
    const int x = 3;
    EXPECT_DEATH(vc_assert(x == 4, "x was ", x), "x == 4");
}

TEST(Logging, AssertPassesSilently)
{
    vc_assert(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

} // namespace
} // namespace vcache
