/** Tests for the logging/assertion helpers. */

#include <gtest/gtest.h>

#include "util/logging.hh"

namespace vcache
{
namespace
{

TEST(Logging, InformAndWarnDoNotTerminate)
{
    testing::internal::CaptureStderr();
    inform("status ", 42);
    warn("odd but fine: ", 3.5);
    const std::string out = testing::internal::GetCapturedStderr();
    EXPECT_NE(out.find("info: status 42"), std::string::npos);
    EXPECT_NE(out.find("warn: odd but fine: 3.5"), std::string::npos);
}

TEST(Logging, ConcatFormatsMixedTypes)
{
    EXPECT_EQ(detail::concat("a", 1, "b", 2.5), "a1b2.5");
    EXPECT_EQ(detail::concat(), "");
}

/** Restores threshold/timestamp settings when a test exits. */
class LogSettingsGuard
{
  public:
    ~LogSettingsGuard()
    {
        setLogThreshold(LogLevel::Info);
        setLogTimestamps(false);
    }
};

TEST(Logging, ThresholdFiltersBySeverity)
{
    LogSettingsGuard guard;

    setLogThreshold(LogLevel::Warning);
    testing::internal::CaptureStderr();
    inform("hidden status");
    warn("still visible");
    std::string out = testing::internal::GetCapturedStderr();
    EXPECT_EQ(out.find("hidden status"), std::string::npos);
    EXPECT_NE(out.find("warn: still visible"), std::string::npos);

    setLogThreshold(LogLevel::Fatal);
    testing::internal::CaptureStderr();
    inform("hidden status");
    warn("hidden warning");
    out = testing::internal::GetCapturedStderr();
    EXPECT_EQ(out, "");
}

TEST(Logging, ApplyLogSpecParsesLevelAndTimestamps)
{
    LogSettingsGuard guard;

    EXPECT_TRUE(applyLogSpec("warn"));
    EXPECT_EQ(logThreshold(), LogLevel::Warning);
    EXPECT_FALSE(logTimestamps());

    EXPECT_TRUE(applyLogSpec("info,ts"));
    EXPECT_EQ(logThreshold(), LogLevel::Info);
    EXPECT_TRUE(logTimestamps());

    // Aliases map onto the three levels.
    EXPECT_TRUE(applyLogSpec("quiet"));
    EXPECT_EQ(logThreshold(), LogLevel::Fatal);
}

TEST(Logging, ApplyLogSpecRejectsUnknownTokensAtomically)
{
    LogSettingsGuard guard;
    setLogThreshold(LogLevel::Warning);
    // The bad token must leave the previous settings untouched even
    // though "ts" parsed before it.
    EXPECT_FALSE(applyLogSpec("ts,verbose"));
    EXPECT_EQ(logThreshold(), LogLevel::Warning);
    EXPECT_FALSE(logTimestamps());
}

TEST(Logging, TimestampPrefixesMessages)
{
    LogSettingsGuard guard;
    setLogTimestamps(true);
    testing::internal::CaptureStderr();
    inform("stamped");
    const std::string out = testing::internal::GetCapturedStderr();
    ASSERT_FALSE(out.empty());
    EXPECT_EQ(out.front(), '[');
    EXPECT_NE(out.find("s] info: stamped"), std::string::npos);
}

TEST(LoggingDeathTest, FatalExitsWithOne)
{
    EXPECT_EXIT(vc_fatal("bad config ", 7),
                testing::ExitedWithCode(1), "fatal: bad config 7");
}

TEST(LoggingDeathTest, PanicAborts)
{
    EXPECT_DEATH(vc_panic("broken invariant"),
                 "panic: broken invariant");
}

TEST(LoggingDeathTest, AssertMessageNamesCondition)
{
    const int x = 3;
    EXPECT_DEATH(vc_assert(x == 4, "x was ", x), "x == 4");
}

TEST(Logging, AssertPassesSilently)
{
    vc_assert(1 + 1 == 2, "arithmetic broke");
    SUCCEED();
}

} // namespace
} // namespace vcache
