/** Tests for the gem5-style statistics dump. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/statdump.hh"

namespace vcache
{
namespace
{

TEST(StatDump, GroupsPrefixNames)
{
    StatDump dump;
    dump.beginGroup("system");
    dump.beginGroup("cache");
    dump.scalar("hits", std::uint64_t{10}, "demand hits");
    dump.endGroup();
    dump.scalar("cycles", std::uint64_t{99}, "");
    dump.endGroup();
    dump.scalar("top", 1.5, "top-level");

    std::ostringstream os;
    dump.print(os);
    const auto out = os.str();
    EXPECT_NE(out.find("system.cache.hits"), std::string::npos);
    EXPECT_NE(out.find("system.cycles"), std::string::npos);
    EXPECT_NE(out.find("# demand hits"), std::string::npos);
    // "top" appears unprefixed at the line start.
    EXPECT_EQ(out.find("top"), out.rfind("\ntop") + 1);
}

TEST(StatDump, RaiiGroup)
{
    StatDump dump;
    {
        StatDump::Group g(dump, "inner");
        dump.scalar("x", std::uint64_t{1}, "");
    }
    dump.scalar("y", std::uint64_t{2}, "");
    std::ostringstream os;
    dump.print(os);
    EXPECT_NE(os.str().find("inner.x"), std::string::npos);
    EXPECT_EQ(os.str().find("inner.y"), std::string::npos);
}

TEST(StatDump, AlignsValues)
{
    StatDump dump;
    dump.scalar("short", std::uint64_t{1}, "a");
    dump.scalar("much_longer_name", std::uint64_t{123456}, "b");
    std::ostringstream os;
    dump.print(os);
    // Both '#' comment markers line up column-wise.
    std::istringstream lines(os.str());
    std::string l1, l2;
    std::getline(lines, l1);
    std::getline(lines, l2);
    EXPECT_NE(l1.find('#'), std::string::npos);
    EXPECT_EQ(l1.find('#'), l2.find('#'));
    EXPECT_EQ(dump.size(), 2u);
}

TEST(StatDump, EmptyDescriptionLeavesNoTrailingComment)
{
    StatDump dump;
    dump.scalar("plain", std::uint64_t{7}, "");
    dump.scalar("described", std::uint64_t{8}, "has one");
    std::ostringstream os;
    dump.print(os);
    std::istringstream lines(os.str());
    std::string l1, l2;
    std::getline(lines, l1);
    std::getline(lines, l2);
    // The undescribed line ends at its value: no padding, no "# ".
    EXPECT_EQ(l1.back(), '7');
    EXPECT_EQ(l1.find('#'), std::string::npos);
    EXPECT_NE(l2.find("# has one"), std::string::npos);
}

TEST(StatDump, JsonFlattensGroupsInInsertionOrder)
{
    StatDump dump;
    dump.scalar("zeta", std::uint64_t{1}, "registered first");
    {
        StatDump::Group g(dump, "grp");
        dump.scalar("inner", std::uint64_t{2}, "");
    }
    dump.scalar("ratio", 0.25, "");
    std::ostringstream os;
    dump.printJson(os);
    const auto out = os.str();
    EXPECT_NE(out.find("\"zeta\": 1"), std::string::npos);
    EXPECT_NE(out.find("\"grp.inner\": 2"), std::string::npos);
    EXPECT_NE(out.find("\"ratio\": 0.25"), std::string::npos);
    EXPECT_LT(out.find("zeta"), out.find("grp.inner"));
    EXPECT_LT(out.find("grp.inner"), out.find("ratio"));
    // Descriptions are a text-renderer feature; JSON is values only.
    EXPECT_EQ(out.find("registered first"), std::string::npos);
}

TEST(StatDump, JsonNumbersAreExact)
{
    StatDump dump;
    // Large integers must not pass through a double.
    const std::uint64_t big = 9007199254740993ull; // 2^53 + 1
    dump.scalar("big", big, "");
    dump.scalar("third", 1.0 / 3.0, "");
    std::ostringstream os;
    dump.printJson(os);
    const auto out = os.str();
    EXPECT_NE(out.find("\"big\": 9007199254740993"), std::string::npos);
    // max_digits10 round-trips the double exactly.
    EXPECT_NE(out.find("0.33333333333333331"), std::string::npos);
}

TEST(StatDump, JsonNonFiniteBecomesNull)
{
    StatDump dump;
    dump.scalar("nan", std::nan(""), "");
    dump.scalar("inf", std::numeric_limits<double>::infinity(), "");
    std::ostringstream os;
    dump.printJson(os);
    EXPECT_NE(os.str().find("\"nan\": null"), std::string::npos);
    EXPECT_NE(os.str().find("\"inf\": null"), std::string::npos);
}

TEST(StatDump, JsonEscapesNames)
{
    StatDump dump;
    dump.scalar("we\"ird\\name", std::uint64_t{1}, "");
    std::ostringstream os;
    dump.printJson(os);
    EXPECT_NE(os.str().find("\"we\\\"ird\\\\name\": 1"),
              std::string::npos);
}

TEST(StatDump, JsonEmptyDumpIsAnObject)
{
    StatDump dump;
    std::ostringstream os;
    dump.printJson(os);
    EXPECT_EQ(os.str(), "{}\n");
}

TEST(StatDumpDeathTest, UnbalancedEndGroup)
{
    StatDump dump;
    EXPECT_DEATH(dump.endGroup(), "endGroup");
}

} // namespace
} // namespace vcache
