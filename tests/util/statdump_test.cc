/** Tests for the gem5-style statistics dump. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/statdump.hh"

namespace vcache
{
namespace
{

TEST(StatDump, GroupsPrefixNames)
{
    StatDump dump;
    dump.beginGroup("system");
    dump.beginGroup("cache");
    dump.scalar("hits", std::uint64_t{10}, "demand hits");
    dump.endGroup();
    dump.scalar("cycles", std::uint64_t{99}, "");
    dump.endGroup();
    dump.scalar("top", 1.5, "top-level");

    std::ostringstream os;
    dump.print(os);
    const auto out = os.str();
    EXPECT_NE(out.find("system.cache.hits"), std::string::npos);
    EXPECT_NE(out.find("system.cycles"), std::string::npos);
    EXPECT_NE(out.find("# demand hits"), std::string::npos);
    // "top" appears unprefixed at the line start.
    EXPECT_EQ(out.find("top"), out.rfind("\ntop") + 1);
}

TEST(StatDump, RaiiGroup)
{
    StatDump dump;
    {
        StatDump::Group g(dump, "inner");
        dump.scalar("x", std::uint64_t{1}, "");
    }
    dump.scalar("y", std::uint64_t{2}, "");
    std::ostringstream os;
    dump.print(os);
    EXPECT_NE(os.str().find("inner.x"), std::string::npos);
    EXPECT_EQ(os.str().find("inner.y"), std::string::npos);
}

TEST(StatDump, AlignsValues)
{
    StatDump dump;
    dump.scalar("short", std::uint64_t{1}, "a");
    dump.scalar("much_longer_name", std::uint64_t{123456}, "b");
    std::ostringstream os;
    dump.print(os);
    // Both '#' comment markers line up column-wise.
    std::istringstream lines(os.str());
    std::string l1, l2;
    std::getline(lines, l1);
    std::getline(lines, l2);
    EXPECT_NE(l1.find('#'), std::string::npos);
    EXPECT_EQ(l1.find('#'), l2.find('#'));
    EXPECT_EQ(dump.size(), 2u);
}

TEST(StatDumpDeathTest, UnbalancedEndGroup)
{
    StatDump dump;
    EXPECT_DEATH(dump.endGroup(), "endGroup");
}

} // namespace
} // namespace vcache
