/**
 * Tests for the deterministic fault-injection engine.  The decision
 * engine (parse/configure/pollSite) is compiled in every build; only
 * the macro *sites* in the library are gated behind
 * VCACHE_FAULT_INJECTION, so these tests drive pollSite directly.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "util/faultinject.hh"

namespace vcache
{
namespace faults
{
namespace
{

/** RAII plan install so a failing test cannot leak live faults. */
struct ScopedPlan
{
    explicit ScopedPlan(const FaultPlan &plan) { configureFaults(plan); }
    ~ScopedPlan() { clearFaults(); }
};

TEST(FaultSpec, ParsesEveryRule)
{
    const auto plan =
        parseFaultSpec("trace.loader.read=throw@every:7", 1);
    ASSERT_TRUE(plan.ok());
    ASSERT_EQ(plan.value().rules.size(), 1u);
    const Rule &rule = plan.value().rules.at("trace.loader.read");
    EXPECT_EQ(rule.action, Action::Throw);
    EXPECT_EQ(rule.every, 7u);
    EXPECT_LT(rule.probability, 0.0);
}

TEST(FaultSpec, ParsesStallAndProbability)
{
    const auto plan =
        parseFaultSpec("memory.bank.issue=stall:50@prob:0.25", 9);
    ASSERT_TRUE(plan.ok());
    const Rule &rule = plan.value().rules.at("memory.bank.issue");
    EXPECT_EQ(rule.action, Action::Stall);
    EXPECT_EQ(rule.stallMillis, 50u);
    EXPECT_DOUBLE_EQ(rule.probability, 0.25);
    EXPECT_EQ(plan.value().seed, 9u);
}

TEST(FaultSpec, ParsesMultipleSemicolonSeparatedRules)
{
    const auto plan = parseFaultSpec(
        "a=throw@every:2;b=corrupt@prob:0.5;c=stall:10@every:3", 1);
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan.value().rules.size(), 3u);
    EXPECT_EQ(plan.value().rules.at("b").action, Action::Corrupt);
}

TEST(FaultSpec, EmptySpecIsAnEmptyPlan)
{
    const auto plan = parseFaultSpec("", 1);
    ASSERT_TRUE(plan.ok());
    EXPECT_TRUE(plan.value().empty());
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    // Each spec is wrong in a different clause of the grammar.
    const std::vector<std::string> bad{
        "noequals",
        "site=@every:2",
        "site=throw",
        "site=throw@",
        "site=throw@sometimes",
        "site=throw@every:0",
        "site=throw@every:x",
        "site=throw@prob:1.5",
        "site=throw@prob:-0.5",
        "site=stall@every:2",
        "site=stall:x@every:2",
        "site=explode@every:2",
        "=throw@every:2",
    };
    for (const auto &spec : bad) {
        const auto plan = parseFaultSpec(spec, 1);
        EXPECT_FALSE(plan.ok()) << "accepted: " << spec;
        if (!plan.ok()) {
            EXPECT_EQ(plan.error().code, Errc::InvalidConfig) << spec;
        }
    }
}

TEST(FaultEngine, DormantWithoutPlan)
{
    clearFaults();
    EXPECT_FALSE(faultsConfigured());
    EXPECT_FALSE(activeCheap());
    EXPECT_EQ(pollSite("anything"), Fire::None);
}

TEST(FaultEngine, EveryNFiresOnExactSchedule)
{
    auto plan = parseFaultSpec("site.a=throw@every:3", 1);
    ASSERT_TRUE(plan.ok());
    ScopedPlan installed(plan.value());
    EXPECT_TRUE(faultsConfigured());
    EXPECT_TRUE(activeCheap());

    std::vector<Fire> fires;
    for (int i = 0; i < 9; ++i)
        fires.push_back(pollSite("site.a"));
    const std::vector<Fire> want{
        Fire::None, Fire::None, Fire::Throw, Fire::None, Fire::None,
        Fire::Throw, Fire::None, Fire::None, Fire::Throw};
    EXPECT_EQ(fires, want);
    EXPECT_EQ(faultSiteHits("site.a"), 9u);
    EXPECT_EQ(faultSiteFires("site.a"), 3u);
    // Unarmed sites pass through untouched but are not counted.
    EXPECT_EQ(pollSite("site.unarmed"), Fire::None);
}

TEST(FaultEngine, ProbabilityScheduleIsDeterministicPerSeed)
{
    const auto schedule = [](std::uint64_t seed) {
        auto plan = parseFaultSpec("site.p=corrupt@prob:0.5", seed);
        EXPECT_TRUE(plan.ok());
        ScopedPlan installed(plan.value());
        std::vector<Fire> fires;
        for (int i = 0; i < 64; ++i)
            fires.push_back(pollSite("site.p"));
        return fires;
    };

    const auto a = schedule(42);
    EXPECT_EQ(a, schedule(42)) << "same seed, same schedule";
    EXPECT_NE(a, schedule(43)) << "different seed, different schedule";

    int fired = 0;
    for (const Fire f : a)
        fired += f == Fire::Corrupt;
    // Loose sanity bounds: p=0.5 over 64 draws.
    EXPECT_GT(fired, 8);
    EXPECT_LT(fired, 56);
}

TEST(FaultEngine, ReinstallResetsCounters)
{
    auto plan = parseFaultSpec("site.r=throw@every:2", 1);
    ASSERT_TRUE(plan.ok());
    {
        ScopedPlan installed(plan.value());
        (void)pollSite("site.r");
        (void)pollSite("site.r");
        EXPECT_EQ(faultSiteHits("site.r"), 2u);
    }
    EXPECT_EQ(faultSiteHits("site.r"), 0u);
    {
        ScopedPlan installed(plan.value());
        EXPECT_EQ(pollSite("site.r"), Fire::None) << "hit 1 of 2";
    }
}

TEST(FaultEngine, ThrowInjectedCarriesSiteName)
{
    try {
        throwInjected("trace.loader.read");
        FAIL() << "should have thrown";
    } catch (const VcError &e) {
        EXPECT_EQ(e.error().code, Errc::Io);
        EXPECT_NE(e.error().message.find("trace.loader.read"),
                  std::string::npos);
    }
}

TEST(FaultEngine, CorruptValueIsAnInvolution)
{
    const std::uint64_t v = 0x0123456789abcdefull;
    EXPECT_NE(corruptValue(v), v);
    EXPECT_EQ(corruptValue(corruptValue(v)), v);
}

} // namespace
} // namespace faults
} // namespace vcache
