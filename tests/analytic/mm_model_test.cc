/** Tests for the MM-model equations (Section 3.2). */

#include <gtest/gtest.h>

#include "analytic/mm_model.hh"
#include "core/defaults.hh"
#include "numtheory/congruence.hh"

namespace vcache
{
namespace
{

TEST(SelfInterferenceMm, ClosedFormMatchesSumForPow2BusyTimes)
{
    for (unsigned bank_bits : {4u, 5u, 6u}) {
        for (std::uint64_t tm : {1ull, 2ull, 4ull, 8ull, 16ull}) {
            if (tm >= (1ull << bank_bits))
                continue; // the derivation assumes t_m < M
            MachineParams m = paperMachineM32();
            m.bankBits = bank_bits;
            m.memoryTime = tm;
            EXPECT_NEAR(selfInterferenceMmSum(m, 0.25),
                        selfInterferenceMmClosed(m, 0.25), 1e-9)
                << "m=" << bank_bits << " tm=" << tm;
        }
    }
}

TEST(SelfInterferenceMm, HandComputedValue)
{
    // M = 32, t_m = 8, MVL = 64, P1 = 0: bracket = 128 + 192 + 448
    // = 768 (see the derivation in the paper); / (M-1) = 24.77...
    MachineParams m = paperMachineM32();
    m.memoryTime = 8;
    EXPECT_NEAR(selfInterferenceMmSum(m, 0.0), 768.0 / 31.0, 1e-9);
}

TEST(SelfInterferenceMm, UnitStrideProbabilityScalesLinearly)
{
    const MachineParams m = paperMachineM32();
    const double at0 = selfInterferenceMmSum(m, 0.0);
    EXPECT_NEAR(selfInterferenceMmSum(m, 0.5), at0 * 0.5, 1e-9);
    EXPECT_NEAR(selfInterferenceMmSum(m, 1.0), 0.0, 1e-12);
}

TEST(SelfInterferenceMm, GrowsWithMemoryTime)
{
    MachineParams m = paperMachineM32();
    double prev = -1.0;
    for (std::uint64_t tm : {2ull, 4ull, 8ull, 16ull, 32ull}) {
        m.memoryTime = tm;
        const double v = selfInterferenceMmSum(m, 0.25);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(CrossInterferenceMm, MatchesUniformDClosedForm)
{
    const MachineParams m = paperMachineM32();
    EXPECT_DOUBLE_EQ(crossInterferenceMm(m),
                     crossConflictStallsUniformD(32, 64, 16));
}

TEST(ElementTimeMm, AtLeastOneCyclePerElement)
{
    const MachineParams m = paperMachineM32();
    const WorkloadParams w = paperWorkload();
    EXPECT_GE(elementTimeMm(m, w), 1.0);
}

TEST(ElementTimeMm, PureUnitStrideSingleStreamIsIdeal)
{
    MachineParams m = paperMachineM32();
    WorkloadParams w = paperWorkload();
    w.pDoubleStream = 0.0;
    w.pStride1First = 1.0;
    EXPECT_DOUBLE_EQ(elementTimeMm(m, w), 1.0);
}

TEST(BlockTime, Equation1Structure)
{
    MachineParams m = paperMachineM32();
    m.memoryTime = 16; // T_start = 46
    // B = 64 (one strip), T_elem = 1: 10 + 1*(15 + 46) + 64.
    EXPECT_DOUBLE_EQ(blockTime(m, 64.0, 1.0), 135.0);
    // B = 65: two strips.
    EXPECT_DOUBLE_EQ(blockTime(m, 65.0, 1.0), 10 + 2 * 61 + 65);
}

TEST(TotalTimeMm, ScalesWithBlocksAndReuse)
{
    const MachineParams m = paperMachineM32();
    WorkloadParams w = paperWorkload();
    w.blockingFactor = 1024;
    w.totalData = 4096;
    w.reuseFactor = 8;
    const double t_elem = elementTimeMm(m, w);
    const double expect =
        blockTime(m, 1024.0, t_elem) * 8.0 * 4.0; // 4 blocks
    EXPECT_DOUBLE_EQ(totalTimeMm(m, w), expect);
}

TEST(CyclesPerResultMm, IndependentOfReuse)
{
    // Without a cache, every pass re-pays memory: cycles/result is
    // flat in R (the Figure-5 MM curves).
    const MachineParams m = paperMachineM32();
    WorkloadParams w = paperWorkload();
    w.reuseFactor = 1;
    const double r1 = cyclesPerResultMm(m, w);
    w.reuseFactor = 64;
    EXPECT_NEAR(cyclesPerResultMm(m, w), r1, 1e-9);
}

} // namespace
} // namespace vcache
