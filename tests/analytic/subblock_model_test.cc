/** Tests for the conflict-free sub-block blocking rule. */

#include <gtest/gtest.h>

#include "analytic/subblock_model.hh"
#include "core/defaults.hh"

namespace vcache
{
namespace
{

MachineParams
primeMachine()
{
    return paperMachineM32(); // prime cache: 8191 lines
}

class LeadingDimensions : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LeadingDimensions, ChosenBlockingIsActuallyConflictFree)
{
    const std::uint64_t p = GetParam();
    const MachineParams m = primeMachine();
    const auto choice = chooseConflictFreeBlocking(p, 8191);
    ASSERT_GT(choice.b1, 0u);
    ASSERT_GT(choice.b2, 0u);
    EXPECT_TRUE(satisfiesConflictFreeRule(p, choice.b1, choice.b2,
                                          8191));
    EXPECT_EQ(countSubblockConflicts(p, choice.b1, choice.b2, m,
                                     CacheScheme::Prime),
              0u)
        << "P=" << p;
}

TEST_P(LeadingDimensions, UtilizationIsHigh)
{
    // "conflict free access is possible to the submatrix even with
    // the cache utilization approaching 1."
    const std::uint64_t p = GetParam();
    const auto choice = chooseConflictFreeBlocking(p, 8191);
    EXPECT_GT(choice.utilization(8191), 0.5) << "P=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    MatrixShapes, LeadingDimensions,
    testing::Values(100ull, 500ull, 1000ull, 1024ull, 4096ull,
                    5000ull, 8192ull, 10000ull, 123456ull));

TEST(SubblockRule, RejectsOversizedBlocks)
{
    EXPECT_FALSE(satisfiesConflictFreeRule(1000, 8191, 2, 8191));
    EXPECT_FALSE(satisfiesConflictFreeRule(1000, 0, 2, 8191));
    EXPECT_FALSE(satisfiesConflictFreeRule(8191, 10, 10, 8191));
}

TEST(SubblockRule, MultipleOfCacheHasNoBlocking)
{
    const auto choice = chooseConflictFreeBlocking(2 * 8191, 8191);
    EXPECT_EQ(choice.b1, 0u);
    EXPECT_EQ(choice.b2, 0u);
}

TEST(SubblockConflicts, DirectMappedFailsWherePrimeSucceeds)
{
    // P = 8192 = C_direct: every column starts on the same direct-
    // mapped line, so any multi-column block thrashes; the prime
    // cache (P mod 8191 = 1) walks the columns one line apart and
    // holds a block of 8191 elements conflict-free.
    const MachineParams m = primeMachine();
    const std::uint64_t p = 8192;

    const auto choice = chooseConflictFreeBlocking(p, 8191);
    EXPECT_EQ(choice.b1, 1u);
    EXPECT_EQ(choice.b2, 8191u);
    EXPECT_EQ(countSubblockConflicts(p, choice.b1, choice.b2, m,
                                     CacheScheme::Prime),
              0u);
    EXPECT_NEAR(choice.utilization(8191), 1.0, 1e-9);

    // The same shape in the direct-mapped cache: all on line 0.
    EXPECT_EQ(countSubblockConflicts(p, choice.b1, choice.b2, m,
                                     CacheScheme::Direct),
              8190u);
}

TEST(SubblockConflicts, PaperRuleAsStatedIsNotSufficient)
{
    // Reproduction finding (DESIGN.md): the paper's two conditions
    // admit b1 < min(P mod C, C - P mod C) with b2 up to
    // floor(C/b1), but then non-consecutive columns can wrap around
    // the modulus and collide.  P = 1024, b1 = 64, b2 = 64 satisfies
    // the stated rule yet column 8 (8 * 1024 mod 8191 = 1) overlaps
    // column 0.  The paper's *maximal* choice is immune (tested
    // above); submaximal b1 requires b2 <= floor(C / (P mod C)).
    const MachineParams m = primeMachine();
    EXPECT_TRUE(satisfiesConflictFreeRule(1024, 64, 64, 8191));
    EXPECT_GT(countSubblockConflicts(1024, 64, 64, m,
                                     CacheScheme::Prime),
              0u);
    // Shrinking b2 below the wraparound point restores the property.
    EXPECT_EQ(countSubblockConflicts(1024, 64, 7, m,
                                     CacheScheme::Prime),
              0u);
}

TEST(SubblockConflicts, ExactCountForTinyExample)
{
    // C = 8 direct: P = 8, b1 = 2, b2 = 4: every column starts at
    // line 0 -- columns collide pairwise: 3 columns * 2 elements.
    MachineParams m = primeMachine();
    m.cacheIndexBits = 3;
    EXPECT_EQ(countSubblockConflicts(8, 2, 4, m, CacheScheme::Direct),
              6u);
    // Prime C = 7: P mod 7 = 1, so b1 = 2 violates the rule
    // (b1 > min(1, 6)); consecutive columns overlap by one line each:
    // cols {0,1}, {1,2}, {2,3}, {3,4} -> 3 collisions.
    EXPECT_EQ(countSubblockConflicts(8, 2, 4, m, CacheScheme::Prime),
              3u);
}

TEST(SubblockChoice, Utilization)
{
    const SubblockChoice c{100, 80};
    EXPECT_DOUBLE_EQ(c.utilization(8191), 8000.0 / 8191.0);
    EXPECT_EQ(c.elements(), 8000u);
}

} // namespace
} // namespace vcache
