/** Tests for the model facade and paper-level claims. */

#include <gtest/gtest.h>

#include "analytic/model.hh"
#include "core/comparison.hh"
#include "core/defaults.hh"

namespace vcache
{
namespace
{

TEST(ModelFacade, NamesAndDispatch)
{
    EXPECT_EQ(machineName(MachineKind::MemoryOnly), "MM");
    EXPECT_EQ(machineName(MachineKind::DirectCache), "CC-direct");
    EXPECT_EQ(machineName(MachineKind::PrimeCache), "CC-prime");

    const MachineParams m = paperMachineM64();
    const WorkloadParams w = paperWorkload();
    for (auto kind : {MachineKind::MemoryOnly, MachineKind::DirectCache,
                      MachineKind::PrimeCache}) {
        const auto r = evaluate(kind, m, w);
        EXPECT_EQ(r.kind, kind);
        EXPECT_GT(r.cyclesPerResult, 0.99);
        EXPECT_GT(r.totalCycles, 0.0);
        EXPECT_GE(r.elementTime, 1.0);
    }
}

TEST(ModelFacade, ComparisonMatchesIndividualCalls)
{
    const MachineParams m = paperMachineM64();
    const WorkloadParams w = paperWorkload();
    const auto p = compareMachines(m, w);
    EXPECT_DOUBLE_EQ(
        p.mm, evaluate(MachineKind::MemoryOnly, m, w).cyclesPerResult);
    EXPECT_DOUBLE_EQ(
        p.direct,
        evaluate(MachineKind::DirectCache, m, w).cyclesPerResult);
    EXPECT_DOUBLE_EQ(
        p.prime,
        evaluate(MachineKind::PrimeCache, m, w).cyclesPerResult);
}

TEST(PaperClaims, Figure7PrimeWinsEverywhere)
{
    MachineParams m = paperMachineM64();
    WorkloadParams w = paperWorkload();
    w.blockingFactor = 4096;
    w.reuseFactor = 4096;
    for (std::uint64_t tm = 4; tm <= 64; tm += 4) {
        m.memoryTime = tm;
        const auto p = compareMachines(m, w);
        EXPECT_LT(p.prime, p.direct) << "t_m=" << tm;
        EXPECT_LT(p.prime, p.mm) << "t_m=" << tm;
    }
}

TEST(PaperClaims, Figure7MagnitudesAtTmEqualsM)
{
    // "When the memory access time matches the number of memory
    // modules (64), the prime-mapped CC-model runs three times faster
    // than the direct-mapped CC-model and almost five times faster
    // than the MM-model."
    MachineParams m = paperMachineM64();
    m.memoryTime = 64;
    WorkloadParams w = paperWorkload();
    w.blockingFactor = 4096;
    w.reuseFactor = 4096;
    const auto p = compareMachines(m, w);
    EXPECT_GT(p.primeOverDirect(), 2.5);
    EXPECT_LT(p.primeOverDirect(), 5.0);
    EXPECT_GT(p.primeOverMm(), 3.5);
    EXPECT_LT(p.primeOverMm(), 6.5);
}

TEST(PaperClaims, Figure4DirectCrossoverMovesWithBlockingFactor)
{
    // The direct-mapped cache overtakes MM beyond some t_m; the
    // crossover comes *earlier* for the smaller blocking factor.
    MachineParams m = paperMachineM32();
    WorkloadParams w = paperWorkload();

    auto crossover = [&](double b) {
        w.blockingFactor = b;
        w.reuseFactor = b;
        for (std::uint64_t tm = 1; tm <= 64; ++tm) {
            m.memoryTime = tm;
            const auto p = compareMachines(m, w);
            if (p.direct < p.mm)
                return tm;
        }
        return std::uint64_t{65};
    };

    const auto cross2k = crossover(2048);
    const auto cross4k = crossover(4096);
    EXPECT_LT(cross2k, cross4k);
    EXPECT_LE(cross2k, 20u);
    EXPECT_LE(cross4k, 40u);
}

TEST(PaperClaims, Figure8PrimeFlatInBlockingFactor)
{
    // "the average cycles per result for the prime-mapped cache
    // remains flat" while direct crosses over MM.
    MachineParams m = paperMachineM64();
    m.memoryTime = 32; // t_m = M / 2
    WorkloadParams w = paperWorkload();

    double prime_min = 1e18, prime_max = 0.0;
    double direct_min = 1e18, direct_max = 0.0;
    bool direct_crossed = false;
    for (double b = 256; b <= 8192; b *= 2) {
        w.blockingFactor = b;
        w.reuseFactor = b;
        const auto p = compareMachines(m, w);
        prime_min = std::min(prime_min, p.prime);
        prime_max = std::max(prime_max, p.prime);
        direct_min = std::min(direct_min, p.direct);
        direct_max = std::max(direct_max, p.direct);
        direct_crossed = direct_crossed || p.direct > p.mm;
    }
    // "Flat" relative to the direct-mapped blow-up: the prime curve
    // moves a fraction as much.
    EXPECT_LT(prime_max / prime_min, 2.0);
    EXPECT_GT(direct_max / direct_min,
              2.0 * prime_max / prime_min);
    EXPECT_TRUE(direct_crossed);
}

TEST(PaperClaims, Figure9SchemesConvergeAsPStride1GoesToOne)
{
    MachineParams m = paperMachineM64();
    WorkloadParams w = paperWorkload();
    w.blockingFactor = 4096;
    w.reuseFactor = 4096;

    double prev_gap = 1e18;
    for (double p1 : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        w.pStride1First = p1;
        w.pStride1Second = p1;
        const auto p = compareMachines(m, w);
        // The one-line capacity difference (8191 vs 8192) leaves a
        // ~1e-4 wobble at P1 = 1.
        const double gap = p.direct - p.prime;
        EXPECT_GE(gap, -1e-3) << "P1=" << p1;
        EXPECT_LE(gap, prev_gap + 1e-3) << "P1=" << p1;
        prev_gap = gap;
    }
    // Identical at P1 = 1 (no random strides left).
    w.pStride1First = w.pStride1Second = 1.0;
    const auto p = compareMachines(m, w);
    EXPECT_NEAR(p.direct, p.prime, 0.02);
}

TEST(PaperClaims, Figure10PrimeWinsForAllPds)
{
    MachineParams m = paperMachineM64();
    m.memoryTime = 32;
    WorkloadParams w = paperWorkload();
    w.blockingFactor = 4096;
    w.reuseFactor = 4096;
    for (double pds = 0.0; pds <= 1.0; pds += 0.1) {
        w.pDoubleStream = pds;
        const auto p = compareMachines(m, w);
        EXPECT_LT(p.prime, p.direct * 1.0 + 1e-9) << "P_ds=" << pds;
    }
}

} // namespace
} // namespace vcache
