/** Tests for the Section 3.1 algorithm-to-VCM presets. */

#include <gtest/gtest.h>

#include "analytic/cc_model.hh"
#include "analytic/presets.hh"
#include "core/comparison.hh"
#include "core/defaults.hh"

namespace vcache
{
namespace
{

TEST(Presets, MatmulTupleMatchesSection31)
{
    // "the blocked matrix multiply algorithm ... has the blocking
    // factor of b^2 ... reuse factor of each block is b ... the
    // fraction of double stream accesses is 1/b."
    const auto w = matmulWorkload(16, 256);
    EXPECT_DOUBLE_EQ(w.blockingFactor, 256.0);
    EXPECT_DOUBLE_EQ(w.reuseFactor, 16.0);
    EXPECT_DOUBLE_EQ(w.pDoubleStream, 1.0 / 16.0);
    EXPECT_DOUBLE_EQ(w.totalData, 65536.0);
}

TEST(Presets, LuTupleMatchesSection31)
{
    // "blocked LU decomposition ... has an average reuse factor of
    // 3b/2."
    const auto w = luWorkload(16, 256);
    EXPECT_DOUBLE_EQ(w.blockingFactor, 256.0);
    EXPECT_DOUBLE_EQ(w.reuseFactor, 24.0);
}

TEST(Presets, FftTupleMatchesSection31)
{
    // "the blocked FFT algorithm ... with a blocking factor of b has
    // a reuse factor of log2(b)."
    const auto w = fftWorkload(1024, 65536);
    EXPECT_DOUBLE_EQ(w.blockingFactor, 1024.0);
    EXPECT_DOUBLE_EQ(w.reuseFactor, 10.0);
    EXPECT_DOUBLE_EQ(w.pDoubleStream, 0.0);
}

TEST(Presets, RowColumnTupleMatchesSection31)
{
    // "if we set VCM = [b, r, 1, 1, P, 1, 1/C], we have double
    // stream vector accesses to columns and rows."
    const auto w = rowColumnWorkload(512, 8, 65536);
    EXPECT_DOUBLE_EQ(w.pDoubleStream, 1.0);
    EXPECT_DOUBLE_EQ(w.pStride1First, 1.0);
    EXPECT_DOUBLE_EQ(w.pStride1Second, 0.0);
}

TEST(Presets, PrimeWinsOnEveryNamedAlgorithm)
{
    MachineParams m = paperMachineM64();
    m.memoryTime = 32;
    const WorkloadParams workloads[] = {
        matmulWorkload(32, 1024),
        luWorkload(32, 1024),
        fftWorkload(4096, 65536),
        rowColumnWorkload(4096, 64, 65536),
    };
    for (const auto &w : workloads) {
        const auto p = compareMachines(m, w);
        EXPECT_LE(p.prime, p.direct + 1e-9);
    }
    // Against the cacheless machine the cache wins whenever the
    // workload is not pure double-stream; at P_ds = 1 (the row/col
    // preset) cross-interference brings CC and MM together -- the
    // right-hand edge of Figure 10.
    for (const auto &w : {matmulWorkload(32, 1024),
                          luWorkload(32, 1024),
                          fftWorkload(4096, 65536)}) {
        EXPECT_LT(compareMachines(m, w).prime,
                  compareMachines(m, w).mm);
    }
    const auto rc =
        compareMachines(m, rowColumnWorkload(4096, 64, 65536));
    EXPECT_LT(rc.prime, rc.mm * 1.1);
}

TEST(Presets, LargerMatmulBlocksHurtDirectNotPrime)
{
    MachineParams m = paperMachineM64();
    m.memoryTime = 32;
    const auto small = compareMachines(m, matmulWorkload(16, 1024));
    const auto large = compareMachines(m, matmulWorkload(64, 1024));
    EXPECT_GT(large.direct, small.direct);
    EXPECT_LT(large.prime, small.prime * 1.25);
}

TEST(PresetsDeathTest, RejectsBadShapes)
{
    EXPECT_DEATH((void)matmulWorkload(32, 16), "b <= n");
    EXPECT_DEATH((void)fftWorkload(100, 1024), "power of two");
}

// ---------------------------------------------------------------------
// Error-as-values: the try* variants fail one sweep point instead of
// the process, and presetWorkload resolves algorithm names.
// ---------------------------------------------------------------------

TEST(PresetsTry, SuccessMatchesFatalHelpers)
{
    const auto m = tryMatmulWorkload(32, 1024);
    ASSERT_TRUE(m.ok());
    EXPECT_DOUBLE_EQ(m.value().blockingFactor,
                     matmulWorkload(32, 1024).blockingFactor);

    const auto f = tryFftWorkload(4096, 65536);
    ASSERT_TRUE(f.ok());
    EXPECT_DOUBLE_EQ(f.value().reuseFactor,
                     fftWorkload(4096, 65536).reuseFactor);
}

TEST(PresetsTry, BadShapesAreValueErrors)
{
    const auto m = tryMatmulWorkload(32, 16);
    ASSERT_FALSE(m.ok());
    EXPECT_EQ(m.error().code, Errc::InvalidConfig);
    EXPECT_NE(m.error().message.find("b <= n"), std::string::npos);

    EXPECT_FALSE(tryMatmulWorkload(0, 16).ok());
    EXPECT_FALSE(tryLuWorkload(64, 8).ok());

    const auto f = tryFftWorkload(100, 1024);
    ASSERT_FALSE(f.ok());
    EXPECT_NE(f.error().message.find("power of two"),
              std::string::npos);
    EXPECT_FALSE(tryFftWorkload(1, 1024).ok());
}

TEST(PresetsTry, PresetWorkloadResolvesNames)
{
    const auto matmul = presetWorkload("matmul", 32, 1024, 0.25);
    ASSERT_TRUE(matmul.ok());
    EXPECT_DOUBLE_EQ(matmul.value().reuseFactor, 32.0);

    const auto lu = presetWorkload("lu", 32, 1024, 0.25);
    ASSERT_TRUE(lu.ok());
    EXPECT_DOUBLE_EQ(lu.value().reuseFactor, 48.0); // 3b/2

    const auto fft = presetWorkload("fft", 4096, 65536, 0.9);
    ASSERT_TRUE(fft.ok());
    EXPECT_DOUBLE_EQ(fft.value().reuseFactor, 12.0); // log2(4096)
}

TEST(PresetsTry, UnknownPresetListsTheValidNames)
{
    const auto w = presetWorkload("cholesky", 32, 1024, 0.25);
    ASSERT_FALSE(w.ok());
    EXPECT_EQ(w.error().code, Errc::InvalidConfig);
    EXPECT_NE(w.error().message.find("'cholesky'"), std::string::npos);
    EXPECT_NE(w.error().message.find("matmul, lu or fft"),
              std::string::npos);
}

TEST(PresetsTry, PresetErrorsPropagateShapeChecks)
{
    const auto w = presetWorkload("lu", 64, 8, 0.25);
    ASSERT_FALSE(w.ok());
    EXPECT_NE(w.error().message.find("lu preset"), std::string::npos);
}

} // namespace
} // namespace vcache
