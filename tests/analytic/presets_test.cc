/** Tests for the Section 3.1 algorithm-to-VCM presets. */

#include <gtest/gtest.h>

#include "analytic/cc_model.hh"
#include "analytic/presets.hh"
#include "core/comparison.hh"
#include "core/defaults.hh"

namespace vcache
{
namespace
{

TEST(Presets, MatmulTupleMatchesSection31)
{
    // "the blocked matrix multiply algorithm ... has the blocking
    // factor of b^2 ... reuse factor of each block is b ... the
    // fraction of double stream accesses is 1/b."
    const auto w = matmulWorkload(16, 256);
    EXPECT_DOUBLE_EQ(w.blockingFactor, 256.0);
    EXPECT_DOUBLE_EQ(w.reuseFactor, 16.0);
    EXPECT_DOUBLE_EQ(w.pDoubleStream, 1.0 / 16.0);
    EXPECT_DOUBLE_EQ(w.totalData, 65536.0);
}

TEST(Presets, LuTupleMatchesSection31)
{
    // "blocked LU decomposition ... has an average reuse factor of
    // 3b/2."
    const auto w = luWorkload(16, 256);
    EXPECT_DOUBLE_EQ(w.blockingFactor, 256.0);
    EXPECT_DOUBLE_EQ(w.reuseFactor, 24.0);
}

TEST(Presets, FftTupleMatchesSection31)
{
    // "the blocked FFT algorithm ... with a blocking factor of b has
    // a reuse factor of log2(b)."
    const auto w = fftWorkload(1024, 65536);
    EXPECT_DOUBLE_EQ(w.blockingFactor, 1024.0);
    EXPECT_DOUBLE_EQ(w.reuseFactor, 10.0);
    EXPECT_DOUBLE_EQ(w.pDoubleStream, 0.0);
}

TEST(Presets, RowColumnTupleMatchesSection31)
{
    // "if we set VCM = [b, r, 1, 1, P, 1, 1/C], we have double
    // stream vector accesses to columns and rows."
    const auto w = rowColumnWorkload(512, 8, 65536);
    EXPECT_DOUBLE_EQ(w.pDoubleStream, 1.0);
    EXPECT_DOUBLE_EQ(w.pStride1First, 1.0);
    EXPECT_DOUBLE_EQ(w.pStride1Second, 0.0);
}

TEST(Presets, PrimeWinsOnEveryNamedAlgorithm)
{
    MachineParams m = paperMachineM64();
    m.memoryTime = 32;
    const WorkloadParams workloads[] = {
        matmulWorkload(32, 1024),
        luWorkload(32, 1024),
        fftWorkload(4096, 65536),
        rowColumnWorkload(4096, 64, 65536),
    };
    for (const auto &w : workloads) {
        const auto p = compareMachines(m, w);
        EXPECT_LE(p.prime, p.direct + 1e-9);
    }
    // Against the cacheless machine the cache wins whenever the
    // workload is not pure double-stream; at P_ds = 1 (the row/col
    // preset) cross-interference brings CC and MM together -- the
    // right-hand edge of Figure 10.
    for (const auto &w : {matmulWorkload(32, 1024),
                          luWorkload(32, 1024),
                          fftWorkload(4096, 65536)}) {
        EXPECT_LT(compareMachines(m, w).prime,
                  compareMachines(m, w).mm);
    }
    const auto rc =
        compareMachines(m, rowColumnWorkload(4096, 64, 65536));
    EXPECT_LT(rc.prime, rc.mm * 1.1);
}

TEST(Presets, LargerMatmulBlocksHurtDirectNotPrime)
{
    MachineParams m = paperMachineM64();
    m.memoryTime = 32;
    const auto small = compareMachines(m, matmulWorkload(16, 1024));
    const auto large = compareMachines(m, matmulWorkload(64, 1024));
    EXPECT_GT(large.direct, small.direct);
    EXPECT_LT(large.prime, small.prime * 1.25);
}

TEST(PresetsDeathTest, RejectsBadShapes)
{
    EXPECT_DEATH((void)matmulWorkload(32, 16), "b <= n");
    EXPECT_DEATH((void)fftWorkload(100, 1024), "power of two");
}

} // namespace
} // namespace vcache
