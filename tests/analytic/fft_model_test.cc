/** Tests for the blocked-FFT analytic model. */

#include <gtest/gtest.h>

#include "analytic/fft_model.hh"
#include "core/defaults.hh"

namespace vcache
{
namespace
{

TEST(FftRowConflicts, DirectMappedPowerOfTwoRows)
{
    // C = 8192, B2 = 64: gcd = 64, coverage 128.  A 256-point row FFT
    // overflows by 128.
    EXPECT_DOUBLE_EQ(fftRowConflicts(256, 64, 8192), 128.0);
    // Short rows fit.
    EXPECT_DOUBLE_EQ(fftRowConflicts(64, 64, 8192), 0.0);
}

TEST(FftRowConflicts, PrimeCacheConflictFree)
{
    // gcd(2^k, 8191) = 1 for every power-of-two row count: full
    // coverage, no conflicts for any B1 <= 8191.
    for (std::uint64_t b2 : {2ull, 64ull, 1024ull, 8192ull})
        EXPECT_DOUBLE_EQ(fftRowConflicts(8191, b2, 8191), 0.0)
            << "B2=" << b2;
}

TEST(FftModel, PrimeBeatsDirectAcrossB2)
{
    const MachineParams m = paperMachineM64();
    for (std::uint64_t b2 = 64; b2 <= 4096; b2 *= 2) {
        const FftShape shape{512, b2};
        const double direct =
            fftCyclesPerPointCc(m, CacheScheme::Direct, shape);
        const double prime =
            fftCyclesPerPointCc(m, CacheScheme::Prime, shape);
        EXPECT_LT(prime, direct) << "B2=" << b2;
    }
}

TEST(FftModel, PaperClaimFactorOfTwo)
{
    // "the prime-mapped cache outperforms the direct-mapped cache by
    // a factor of more than 2" for conflicting shapes.
    const MachineParams m = paperMachineM64();
    const FftShape shape{4096, 1024};
    const double direct =
        fftCyclesPerPointCc(m, CacheScheme::Direct, shape);
    const double prime =
        fftCyclesPerPointCc(m, CacheScheme::Prime, shape);
    EXPECT_GT(direct / prime, 2.0);
}

TEST(FftModel, SchemesAgreeWhenNoConflictsPossible)
{
    // Tiny transform entirely inside both caches: identical model
    // output up to the one-line capacity difference.
    const MachineParams m = paperMachineM64();
    const FftShape shape{64, 64};
    EXPECT_NEAR(fftCyclesPerPointCc(m, CacheScheme::Direct, shape),
                fftCyclesPerPointCc(m, CacheScheme::Prime, shape),
                1e-6);
}

TEST(FftModel, CacheBeatsMmWhenReuseIsHigh)
{
    const MachineParams m = paperMachineM64();
    const FftShape shape{4096, 1024};
    EXPECT_LT(fftCyclesPerPointCc(m, CacheScheme::Prime, shape),
              fftCyclesPerPointMm(m, shape));
}

TEST(FftModel, TotalIsPerPointTimesN)
{
    const MachineParams m = paperMachineM64();
    const FftShape shape{256, 128};
    EXPECT_NEAR(fftCyclesPerPointCc(m, CacheScheme::Prime, shape) *
                    32768.0,
                fftTotalTimeCc(m, CacheScheme::Prime, shape), 1e-6);
}

} // namespace
} // namespace vcache
