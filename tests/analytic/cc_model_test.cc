/** Tests for the CC-model equations (Sections 3.3 and 4). */

#include <gtest/gtest.h>

#include "analytic/cc_model.hh"
#include "analytic/mm_model.hh"
#include "core/defaults.hh"

namespace vcache
{
namespace
{

class DirectSelfInterference
    : public testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DirectSelfInterference, ClosedFormMatchesSum)
{
    // Equation (6) is exact for any B <= C, power of two or not.
    const double b = static_cast<double>(GetParam());
    const MachineParams m = paperMachineM32();
    EXPECT_NEAR(selfInterferenceDirectSum(m, b, 0.25),
                selfInterferenceDirectClosed(m, b, 0.25),
                1e-7 * (1.0 + selfInterferenceDirectSum(m, b, 0.25)))
        << "B=" << b;
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, DirectSelfInterference,
                         testing::Values(1ull, 2ull, 3ull, 5ull, 64ull,
                                         100ull, 1000ull, 1024ull,
                                         4095ull, 4096ull, 8191ull,
                                         8192ull));

TEST(DirectSelfInterference, HandComputedTinyCache)
{
    // C = 8 (c = 3), B = 4, t_m arbitrary: bracket = 2 + 0 + 3 = 5
    // (worked in DESIGN.md note 3's verification).
    MachineParams m = paperMachineM32();
    m.cacheIndexBits = 3;
    m.memoryTime = 1;
    EXPECT_NEAR(selfInterferenceDirectSum(m, 4.0, 0.0), 5.0 / 7.0,
                1e-12);
}

TEST(DirectSelfInterference, PowerOfTwoSpecialCase)
{
    // For B a power of two the closed form reduces to
    // (1-P1)(B^2-1)/(3(C-1)) * t_m.
    const MachineParams m = paperMachineM32(); // C=8192, tm=16
    const double b = 1024.0;
    EXPECT_NEAR(selfInterferenceDirectClosed(m, b, 0.25),
                0.75 * (b * b - 1.0) / (3.0 * 8191.0) * 16.0, 1e-6);
}

TEST(PrimeSelfInterference, Equation8)
{
    const MachineParams m = paperMachineM32(); // prime C = 8191
    EXPECT_NEAR(selfInterferencePrime(m, 1024.0, 0.25),
                0.75 * 1023.0 / 8190.0 * 16.0, 1e-9);
}

TEST(PrimeSelfInterference, VastlySmallerThanDirect)
{
    const MachineParams m = paperMachineM32();
    for (double b : {512.0, 1024.0, 4096.0}) {
        EXPECT_LT(selfInterferencePrime(m, b, 0.25) * 50.0,
                  selfInterferenceDirectSum(m, b, 0.25))
            << "B=" << b;
    }
}

TEST(Footprint, PrimeLargerThanDirect)
{
    const MachineParams m = paperMachineM32();
    for (double b : {256.0, 1024.0, 4096.0}) {
        EXPECT_GT(footprintCc(m, CacheScheme::Prime, b, 0.25),
                  footprintCc(m, CacheScheme::Direct, b, 0.25));
    }
}

TEST(Footprint, BoundedByVectorAndCache)
{
    const MachineParams m = paperMachineM32();
    for (double b : {16.0, 8191.0, 20000.0}) {
        for (auto s : {CacheScheme::Direct, CacheScheme::Prime}) {
            const double fp = footprintCc(m, s, b, 0.25);
            EXPECT_LE(fp, std::min(b, 8192.0) + 1e-9);
            EXPECT_GE(fp, 1.0);
        }
    }
}

TEST(Footprint, UnitStrideOnlyIsWholeVector)
{
    const MachineParams m = paperMachineM32();
    EXPECT_NEAR(footprintCc(m, CacheScheme::Direct, 500.0, 1.0), 500.0,
                1e-9);
    EXPECT_NEAR(footprintCc(m, CacheScheme::Prime, 500.0, 1.0), 500.0,
                1e-9);
}

TEST(CrossInterference, ScalesWithPds)
{
    const MachineParams m = paperMachineM32();
    WorkloadParams w = paperWorkload();
    w.pDoubleStream = 0.1;
    const double lo = crossInterferenceCc(m, CacheScheme::Prime, w);
    w.pDoubleStream = 0.4;
    const double hi = crossInterferenceCc(m, CacheScheme::Prime, w);
    EXPECT_GT(hi, lo * 3.0);
}

TEST(ElementTimeCc, UnitStrideSingleStreamIsIdeal)
{
    const MachineParams m = paperMachineM32();
    WorkloadParams w = paperWorkload();
    w.pDoubleStream = 0.0;
    w.pStride1First = 1.0;
    EXPECT_DOUBLE_EQ(elementTimeCc(m, CacheScheme::Direct, w), 1.0);
    EXPECT_DOUBLE_EQ(elementTimeCc(m, CacheScheme::Prime, w), 1.0);
}

TEST(ElementTimeCc, PrimeBelowDirect)
{
    const MachineParams m = paperMachineM32();
    const WorkloadParams w = paperWorkload();
    EXPECT_LT(elementTimeCc(m, CacheScheme::Prime, w),
              elementTimeCc(m, CacheScheme::Direct, w));
}

TEST(TotalTimeCc, ReuseOneEqualsMmTime)
{
    // With R = 1 only the initial (pipelined) load happens: the CC
    // machine degenerates to the MM machine, matching the R = 1
    // equality in Figure 5.
    const MachineParams m = paperMachineM32();
    WorkloadParams w = paperWorkload();
    w.reuseFactor = 1.0;
    EXPECT_NEAR(cyclesPerResultCc(m, CacheScheme::Direct, w),
                cyclesPerResultMm(m, w), 1e-9);
}

TEST(CyclesPerResultCc, ImprovesWithReuse)
{
    const MachineParams m = paperMachineM32();
    WorkloadParams w = paperWorkload();
    double prev = 1e18;
    for (double r : {1.0, 2.0, 4.0, 16.0, 64.0}) {
        w.reuseFactor = r;
        const double v = cyclesPerResultCc(m, CacheScheme::Prime, w);
        EXPECT_LT(v, prev);
        prev = v;
    }
}

TEST(CyclesPerResultCc, PrimeBeatsDirectAtPaperDefaults)
{
    const MachineParams m = paperMachineM64();
    const WorkloadParams w = paperWorkload();
    EXPECT_LT(cyclesPerResultCc(m, CacheScheme::Prime, w),
              cyclesPerResultCc(m, CacheScheme::Direct, w));
}

} // namespace
} // namespace vcache
