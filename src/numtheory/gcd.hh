/**
 * @file
 * Greatest-common-divisor helpers.
 *
 * gcd(M, s) determines how many banks (or cache lines) a stride-s sweep
 * visits: M / gcd(M, s).  The extended form underlies the linear
 * congruence solver used for cross-interference analysis.
 */

#ifndef VCACHE_NUMTHEORY_GCD_HH
#define VCACHE_NUMTHEORY_GCD_HH

#include <cstdint>

namespace vcache
{

/** Greatest common divisor; gcd(0, 0) == 0 by convention. */
std::uint64_t gcd(std::uint64_t a, std::uint64_t b);

/** Least common multiple; 0 if either argument is 0. */
std::uint64_t lcm(std::uint64_t a, std::uint64_t b);

/** Result of the extended Euclidean algorithm. */
struct ExtGcd
{
    /** gcd(a, b). */
    std::int64_t g;
    /** Bezout coefficients: a*x + b*y == g. */
    std::int64_t x;
    std::int64_t y;
};

/** Extended Euclidean algorithm over signed integers. */
ExtGcd extendedGcd(std::int64_t a, std::int64_t b);

/**
 * Modular inverse of a modulo m.
 *
 * @pre gcd(a, m) == 1 and m >= 1 (panics otherwise)
 * @return x in [0, m) with a*x == 1 (mod m)
 */
std::uint64_t modInverse(std::uint64_t a, std::uint64_t m);

/** Non-negative remainder of a modulo m (m >= 1). */
std::uint64_t floorMod(std::int64_t a, std::uint64_t m);

} // namespace vcache

#endif // VCACHE_NUMTHEORY_GCD_HH
