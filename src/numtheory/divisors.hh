/**
 * @file
 * Stride/divisor structure of power-of-two moduli.
 *
 * Both machine models need the count of strides s in [1, 2^m] whose
 * gcd with 2^m equals 2^i: a sweep with such a stride visits exactly
 * 2^(m-i) banks (or cache lines).  The paper quotes these counts as
 * "the divisor function"; they are Euler totients of 2^(m-i).
 */

#ifndef VCACHE_NUMTHEORY_DIVISORS_HH
#define VCACHE_NUMTHEORY_DIVISORS_HH

#include <cstdint>

namespace vcache
{

/** True if n is a power of two (n >= 1). */
bool isPowerOfTwo(std::uint64_t n);

/** floor(log2(n)); panics for n == 0. */
unsigned floorLog2(std::uint64_t n);

/** ceil(log2(n)); panics for n == 0. */
unsigned ceilLog2(std::uint64_t n);

/**
 * Number of strides s in [1, 2^m] with gcd(2^m, s) == 2^i.
 *
 * For i < m this is phi(2^(m-i)) = 2^(m-i-1); for i == m the only
 * such stride is s = 2^m itself.
 *
 * @param m log2 of the modulus
 * @param i log2 of the required gcd (0 <= i <= m)
 */
std::uint64_t stridesWithGcdPow2(unsigned m, unsigned i);

/**
 * Number of distinct residues visited by a stride-s sweep over a
 * modulus of n positions: n / gcd(n, s).
 */
std::uint64_t sweepCoverage(std::uint64_t n, std::uint64_t s);

} // namespace vcache

#endif // VCACHE_NUMTHEORY_DIVISORS_HH
