#include "numtheory/mersenne.hh"

#include <array>

#include "util/logging.hh"

namespace vcache
{

namespace
{

// 2^c - 1 is prime exactly for these c below 32.
constexpr std::array<unsigned, 8> exponents{2, 3, 5, 7, 13, 17, 19, 31};

} // namespace

std::span<const unsigned>
mersenneExponents()
{
    return {exponents.data(), exponents.size()};
}

bool
isMersenneExponent(unsigned c)
{
    for (unsigned e : exponents)
        if (e == c)
            return true;
    return false;
}

std::uint64_t
mersenne(unsigned c)
{
    vc_assert(c >= 1 && c <= 63, "mersenne exponent out of range: ", c);
    return (std::uint64_t{1} << c) - 1;
}

unsigned
mersenneExponentFor(std::uint64_t lines)
{
    for (unsigned e : exponents) {
        if (mersenne(e) >= lines)
            return e;
    }
    vc_fatal("no Mersenne prime cache can hold ", lines, " lines");
}

std::uint64_t
addMersenne(std::uint64_t a, std::uint64_t b, unsigned c)
{
    const std::uint64_t m = mersenne(c);
    vc_assert(a <= m && b <= m,
              "addMersenne operands must fit in ", c, " bits");
    std::uint64_t s = a + b;
    // End-around carry: fold bit c back into bit 0.
    s = (s & m) + (s >> c);
    // One fold suffices: (m) + (m) = 2m -> (m - 1) + 1 = m at most,
    // but the result can still be the all-ones alias of zero.
    s = (s & m) + (s >> c);
    return s == m ? 0 : s;
}

MersenneResidue::MersenneResidue(std::uint64_t value, unsigned c)
    : v(modMersenne(value, c)), c_(c)
{
}

MersenneResidue
MersenneResidue::operator+(const MersenneResidue &o) const
{
    vc_assert(c_ == o.c_, "mixed Mersenne moduli: ", c_, " vs ", o.c_);
    return {addMersenne(v, o.v, c_), c_};
}

MersenneResidue
MersenneResidue::operator-(const MersenneResidue &o) const
{
    vc_assert(c_ == o.c_, "mixed Mersenne moduli: ", c_, " vs ", o.c_);
    // -x == m - x; the one's-complement negation is just bitwise NOT
    // restricted to c bits.
    const std::uint64_t neg = o.v == 0 ? 0 : modulus() - o.v;
    return {addMersenne(v, neg, c_), c_};
}

MersenneResidue
MersenneResidue::operator*(const MersenneResidue &o) const
{
    vc_assert(c_ == o.c_, "mixed Mersenne moduli: ", c_, " vs ", o.c_);
    // Products can exceed 64 bits for c > 32, so reduce the wide value
    // directly; for the cache-sized exponents (c <= 31) this is exact
    // 64-bit folding.
    const auto wide = static_cast<unsigned __int128>(v) * o.v;
    const auto folded = static_cast<std::uint64_t>(wide % modulus());
    return {folded, c_};
}

} // namespace vcache
