#include "numtheory/primality.hh"

#include "util/logging.hh"

namespace vcache
{

namespace
{

/** (a * b) mod m without overflow, using unsigned 128-bit arithmetic. */
std::uint64_t
mulMod(std::uint64_t a, std::uint64_t b, std::uint64_t m)
{
    return static_cast<std::uint64_t>(
        static_cast<unsigned __int128>(a) * b % m);
}

/** (a ^ e) mod m by square and multiply. */
std::uint64_t
powMod(std::uint64_t a, std::uint64_t e, std::uint64_t m)
{
    std::uint64_t result = 1 % m;
    a %= m;
    while (e > 0) {
        if (e & 1)
            result = mulMod(result, a, m);
        a = mulMod(a, a, m);
        e >>= 1;
    }
    return result;
}

/** One Miller-Rabin round; true if n passes for witness a. */
bool
millerRabinRound(std::uint64_t n, std::uint64_t a, std::uint64_t d,
                 unsigned r)
{
    std::uint64_t x = powMod(a, d, n);
    if (x == 1 || x == n - 1)
        return true;
    for (unsigned i = 1; i < r; ++i) {
        x = mulMod(x, x, n);
        if (x == n - 1)
            return true;
    }
    return false;
}

} // namespace

bool
isPrime(std::uint64_t n)
{
    if (n < 2)
        return false;
    for (std::uint64_t p : {2ull, 3ull, 5ull, 7ull, 11ull, 13ull, 17ull,
                            19ull, 23ull, 29ull, 31ull, 37ull}) {
        if (n % p == 0)
            return n == p;
    }

    // n - 1 == d * 2^r with d odd.
    std::uint64_t d = n - 1;
    unsigned r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }

    // This witness set is deterministic for all 64-bit integers
    // (Sinclair, 2011).
    for (std::uint64_t a : {2ull, 325ull, 9375ull, 28178ull, 450775ull,
                            9780504ull, 1795265022ull}) {
        if (a % n == 0)
            continue;
        if (!millerRabinRound(n, a, d, r))
            return false;
    }
    return true;
}

std::uint64_t
nextPrime(std::uint64_t n)
{
    vc_assert(n < 18446744073709551557ull,
              "nextPrime: no 64-bit prime above ", n);
    std::uint64_t c = n + 1;
    while (!isPrime(c))
        ++c;
    return c;
}

std::uint64_t
prevPrime(std::uint64_t n)
{
    for (std::uint64_t c = n; c >= 2; --c) {
        if (isPrime(c))
            return c;
    }
    return 0;
}

} // namespace vcache
