/**
 * @file
 * Primality testing.
 *
 * The prime-mapped cache only works because 2^c - 1 is prime for the
 * supported exponents; these helpers verify that property in tests and
 * at configuration time.
 */

#ifndef VCACHE_NUMTHEORY_PRIMALITY_HH
#define VCACHE_NUMTHEORY_PRIMALITY_HH

#include <cstdint>

namespace vcache
{

/** Deterministic primality test for any 64-bit value (Miller-Rabin). */
bool isPrime(std::uint64_t n);

/** Smallest prime strictly greater than n (panics on overflow). */
std::uint64_t nextPrime(std::uint64_t n);

/** Largest prime less than or equal to n; 0 if none exists (n < 2). */
std::uint64_t prevPrime(std::uint64_t n);

} // namespace vcache

#endif // VCACHE_NUMTHEORY_PRIMALITY_HH
