#include "numtheory/congruence.hh"

#include <cstdlib>

#include "numtheory/gcd.hh"
#include "util/logging.hh"

namespace vcache
{

std::vector<std::uint64_t>
solveLinearCongruence(std::uint64_t a, std::uint64_t b, std::uint64_t m)
{
    vc_assert(m >= 1, "congruence modulus must be positive");
    a %= m;
    b %= m;

    const std::uint64_t g = gcd(a, m);
    std::vector<std::uint64_t> xs;
    if (g == 0) {
        // a == 0 (mod m): either every x works (b == 0) or none does.
        if (b == 0)
            for (std::uint64_t x = 0; x < m; ++x)
                xs.push_back(x);
        return xs;
    }
    if (b % g != 0)
        return xs;

    // Reduce to (a/g) x == (b/g) (mod m/g) with a/g invertible.
    const std::uint64_t m_r = m / g;
    const std::uint64_t a_r = a / g;
    const std::uint64_t b_r = (b / g) % m_r;
    const std::uint64_t x0 =
        m_r == 1 ? 0 : (modInverse(a_r, m_r) * b_r) % m_r;

    xs.reserve(g);
    for (std::uint64_t k = 0; k < g; ++k)
        xs.push_back(x0 + k * m_r);
    return xs;
}

std::uint64_t
crossConflictStalls(const CrossConflictQuery &q)
{
    vc_assert(q.banks >= 1, "need at least one bank");
    const std::uint64_t m = q.banks;
    std::uint64_t stalls = 0;

    // For each element j of the second stream, the colliding elements i
    // of the first stream satisfy s1*i == s2*j + D (mod M): an
    // arithmetic progression with period M / gcd(s1, M).
    const std::uint64_t g = gcd(q.s1 % m, m);
    const std::uint64_t period = g == 0 ? 1 : m / g;

    for (std::uint64_t j = 0; j < q.elements; ++j) {
        const std::uint64_t rhs = (q.s2 % m * (j % m) + q.startDistance) % m;
        const auto sols = solveLinearCongruence(q.s1, rhs, m);
        if (sols.empty())
            continue;
        // Enumerate i = x0 + k*period (all solution classes share the
        // same period; iterate each base solution).
        for (std::uint64_t base : sols) {
            if (base >= period)
                continue; // progressions repeat with period `period`
            for (std::uint64_t i = base; i < q.elements; i += period) {
                const auto d = i > j ? i - j : j - i;
                if (d < q.busyTime)
                    stalls += q.busyTime - d;
            }
        }
    }
    return stalls;
}

std::uint64_t
crossConflictStallsBruteForce(const CrossConflictQuery &q)
{
    const std::uint64_t m = q.banks;
    std::uint64_t stalls = 0;
    for (std::uint64_t i = 0; i < q.elements; ++i) {
        for (std::uint64_t j = 0; j < q.elements; ++j) {
            const std::uint64_t lhs = q.s1 % m * (i % m) % m;
            const std::uint64_t rhs =
                (q.s2 % m * (j % m) + q.startDistance) % m;
            if (lhs != rhs)
                continue;
            const auto d = i > j ? i - j : j - i;
            if (d < q.busyTime)
                stalls += q.busyTime - d;
        }
    }
    return stalls;
}

double
crossConflictStallsUniformD(std::uint64_t banks, std::uint64_t elements,
                            std::uint64_t busyTime)
{
    vc_assert(banks >= 1, "need at least one bank");
    // Each (i, j) pair collides for exactly one D residue, so the
    // expectation over uniform D counts every nearby pair with weight
    // 1/M.
    double sum = 0.0;
    const auto n = static_cast<std::int64_t>(elements);
    const auto tm = static_cast<std::int64_t>(busyTime);
    for (std::int64_t d = -(tm - 1); d <= tm - 1; ++d) {
        const std::int64_t pairs = n - std::llabs(d);
        if (pairs <= 0)
            continue;
        sum += static_cast<double>((tm - std::llabs(d)) * pairs);
    }
    return sum / static_cast<double>(banks);
}

} // namespace vcache
