#include "numtheory/gcd.hh"

#include "util/logging.hh"

namespace vcache
{

std::uint64_t
gcd(std::uint64_t a, std::uint64_t b)
{
    while (b != 0) {
        const std::uint64_t t = a % b;
        a = b;
        b = t;
    }
    return a;
}

std::uint64_t
lcm(std::uint64_t a, std::uint64_t b)
{
    if (a == 0 || b == 0)
        return 0;
    return a / gcd(a, b) * b;
}

ExtGcd
extendedGcd(std::int64_t a, std::int64_t b)
{
    // Iterative extended Euclid maintaining r = a*x + b*y invariants.
    std::int64_t old_r = a, r = b;
    std::int64_t old_x = 1, x = 0;
    std::int64_t old_y = 0, y = 1;
    while (r != 0) {
        const std::int64_t q = old_r / r;
        std::int64_t t;
        t = old_r - q * r; old_r = r; r = t;
        t = old_x - q * x; old_x = x; x = t;
        t = old_y - q * y; old_y = y; y = t;
    }
    if (old_r < 0) {
        old_r = -old_r;
        old_x = -old_x;
        old_y = -old_y;
    }
    return ExtGcd{old_r, old_x, old_y};
}

std::uint64_t
modInverse(std::uint64_t a, std::uint64_t m)
{
    vc_assert(m >= 1, "modInverse: modulus must be positive");
    const auto r = extendedGcd(static_cast<std::int64_t>(a % m),
                               static_cast<std::int64_t>(m));
    vc_assert(r.g == 1, "modInverse: ", a, " is not invertible mod ", m);
    return floorMod(r.x, m);
}

std::uint64_t
floorMod(std::int64_t a, std::uint64_t m)
{
    vc_assert(m >= 1, "floorMod: modulus must be positive");
    const auto sm = static_cast<std::int64_t>(m);
    std::int64_t r = a % sm;
    if (r < 0)
        r += sm;
    return static_cast<std::uint64_t>(r);
}

} // namespace vcache
