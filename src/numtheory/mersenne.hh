/**
 * @file
 * Mersenne-number arithmetic.
 *
 * The prime-mapped cache holds 2^c - 1 lines where 2^c - 1 is a
 * Mersenne prime.  Reduction modulo 2^c - 1 needs only c-bit additions
 * because 2^c == 1 (mod 2^c - 1); this file provides the arithmetic
 * used both by the hardware model (src/address) and by the analytic
 * model, plus the table of usable exponents.
 */

#ifndef VCACHE_NUMTHEORY_MERSENNE_HH
#define VCACHE_NUMTHEORY_MERSENNE_HH

#include <cstdint>
#include <span>

namespace vcache
{

/** Mersenne exponents c <= 31 for which 2^c - 1 is prime. */
std::span<const unsigned> mersenneExponents();

/** True if 2^c - 1 is a Mersenne prime for this c (c <= 31). */
bool isMersenneExponent(unsigned c);

/** The Mersenne number 2^c - 1 (c <= 63). */
std::uint64_t mersenne(unsigned c);

/**
 * Smallest Mersenne-prime exponent whose cache (2^c - 1 lines) holds at
 * least `lines` lines; panics if none fits below 2^31.
 */
unsigned mersenneExponentFor(std::uint64_t lines);

/**
 * x mod (2^c - 1) computed by c-bit folding, never by division.
 *
 * This mirrors exactly what the paper's adder tree does: split x into
 * c-bit digits, sum them, fold the carries back in, and normalise the
 * all-ones pattern ("negative zero") to 0.  Inline because it is the
 * prime-mapped cache's index function, executed once per tag probe on
 * the simulator hot path.
 */
inline std::uint64_t
modMersenne(std::uint64_t x, unsigned c)
{
    const std::uint64_t m = (std::uint64_t{1} << c) - 1;
    // Fold c-bit digits until the value fits in c bits.  Each pass adds
    // the high digits into the low digit; since 2^c == 1 (mod m) every
    // digit has weight 1.
    while (x >> c)
        x = (x & m) + (x >> c);
    // All-ones is the one's-complement "negative zero": 2^c - 1 == 0.
    return x == m ? 0 : x;
}

/**
 * Addition modulo 2^c - 1 via a single end-around-carry step,
 * matching a one's-complement adder.
 *
 * @pre a, b < 2^c
 */
std::uint64_t addMersenne(std::uint64_t a, std::uint64_t b, unsigned c);

/**
 * Value in the Mersenne residue ring Z/(2^c - 1).
 *
 * A thin typed wrapper so model code cannot accidentally mix residues
 * with full addresses.  All operations reduce by folding.
 */
class MersenneResidue
{
  public:
    /** Residue of value modulo 2^c - 1. */
    MersenneResidue(std::uint64_t value, unsigned c);

    /** The canonical residue in [0, 2^c - 1). */
    std::uint64_t value() const { return v; }

    /** The exponent c of the modulus 2^c - 1. */
    unsigned exponent() const { return c_; }

    /** The modulus 2^c - 1. */
    std::uint64_t modulus() const { return mersenne(c_); }

    MersenneResidue operator+(const MersenneResidue &o) const;
    MersenneResidue operator-(const MersenneResidue &o) const;
    MersenneResidue operator*(const MersenneResidue &o) const;
    bool operator==(const MersenneResidue &o) const = default;

  private:
    std::uint64_t v;
    unsigned c_;
};

} // namespace vcache

#endif // VCACHE_NUMTHEORY_MERSENNE_HH
