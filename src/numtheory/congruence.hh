/**
 * @file
 * Linear-congruence solving and the paper's cross-interference count.
 *
 * Section 3.2 computes memory stalls caused by two concurrent vector
 * streams: whenever s1*i == s2*j + D (mod M) has a solution with
 * |i - j| < t_m, the streams collide in a bank and the pipeline stalls
 * t_m - |i - j| cycles.  The paper solves this congruence numerically;
 * we provide an extended-gcd solver plus the closed form obtained by
 * averaging over a uniformly distributed starting distance D.
 */

#ifndef VCACHE_NUMTHEORY_CONGRUENCE_HH
#define VCACHE_NUMTHEORY_CONGRUENCE_HH

#include <cstdint>
#include <vector>

namespace vcache
{

/**
 * All x in [0, m) with a*x == b (mod m), in increasing order.
 *
 * There are gcd(a, m) solutions when gcd(a, m) divides b, none
 * otherwise.
 */
std::vector<std::uint64_t> solveLinearCongruence(std::uint64_t a,
                                                 std::uint64_t b,
                                                 std::uint64_t m);

/** Parameters of one cross-interference evaluation. */
struct CrossConflictQuery
{
    /** Stride of the first vector stream. */
    std::uint64_t s1;
    /** Stride of the second vector stream. */
    std::uint64_t s2;
    /** Bank distance between the two starting addresses. */
    std::uint64_t startDistance;
    /** Number of memory banks (any modulus >= 1). */
    std::uint64_t banks;
    /** Elements per stream (the paper uses MVL). */
    std::uint64_t elements;
    /** Bank busy time t_m in cycles. */
    std::uint64_t busyTime;
};

/**
 * Total stall cycles sum(t_m - |i - j|) over all solution pairs of
 * s1*i == s2*j + D (mod M) with i, j in [0, elements) and
 * |i - j| < t_m, following the paper's accumulation rule.
 *
 * Solved per-j with the arithmetic-progression structure of the
 * solutions, so cost is O(elements * elements/ (M/g)) not O(elements^2).
 */
std::uint64_t crossConflictStalls(const CrossConflictQuery &q);

/** Brute-force reference for crossConflictStalls (used by tests). */
std::uint64_t crossConflictStallsBruteForce(const CrossConflictQuery &q);

/**
 * Expected stalls when D is uniform over [1, M].
 *
 * Every (i, j) pair determines exactly one D (mod M), so the average
 * collapses to (1/M) * sum_{|d| < t_m} (t_m - |d|) * (elements - |d|),
 * independent of s1 and s2.  Tested against the exact solver.
 */
double crossConflictStallsUniformD(std::uint64_t banks,
                                   std::uint64_t elements,
                                   std::uint64_t busyTime);

} // namespace vcache

#endif // VCACHE_NUMTHEORY_CONGRUENCE_HH
