#include "numtheory/divisors.hh"

#include "numtheory/gcd.hh"
#include "util/logging.hh"

namespace vcache
{

bool
isPowerOfTwo(std::uint64_t n)
{
    return n >= 1 && (n & (n - 1)) == 0;
}

unsigned
floorLog2(std::uint64_t n)
{
    vc_assert(n >= 1, "floorLog2(0) is undefined");
    unsigned r = 0;
    while (n >>= 1)
        ++r;
    return r;
}

unsigned
ceilLog2(std::uint64_t n)
{
    vc_assert(n >= 1, "ceilLog2(0) is undefined");
    const unsigned f = floorLog2(n);
    return isPowerOfTwo(n) ? f : f + 1;
}

std::uint64_t
stridesWithGcdPow2(unsigned m, unsigned i)
{
    vc_assert(i <= m, "gcd exponent ", i, " exceeds modulus exponent ", m);
    if (i == m)
        return 1; // only s == 2^m itself
    // phi(2^(m-i)) counts odd multiples of 2^i in range.
    return std::uint64_t{1} << (m - i - 1);
}

std::uint64_t
sweepCoverage(std::uint64_t n, std::uint64_t s)
{
    vc_assert(n >= 1, "sweepCoverage needs a positive modulus");
    const std::uint64_t g = gcd(n, s % n == 0 ? n : s % n);
    return n / g;
}

} // namespace vcache
