/**
 * @file
 * Content-addressed memo store for evaluated points.
 *
 * Keys are the FNV-1a hash of a request's canonical form
 * (sim/evaluate.hh); values are the pre-rendered "result" JSON
 * fragment, so a hit returns bytes identical to the original
 * computation.  The store is an in-memory sharded LRU in front of the
 * sweep's append-only checkpoint journal (sim/checkpoint.hh): every
 * insert appends one record, startup replays the journal (healing a
 * torn tail from a kill -9 exactly like --resume does), and the
 * journal is compacted in place once dead records outnumber live
 * entries.
 *
 * Two robustness details:
 *
 *  - The journal header's label carries the build's result identity
 *    (git hash + build type).  A journal written by a different build
 *    is discarded on startup rather than replayed: a code change may
 *    legitimately change results, and serving stale bytes as "hits"
 *    would hide it.
 *
 *  - Entries store the full canonical string, not just its hash, and
 *    every lookup compares it.  A 64-bit FNV collision is a
 *    birthday-paradox event (~billions of distinct points), but if
 *    one ever occurs the store counts it and refuses to serve the
 *    wrong entry instead of silently doing so.
 */

#ifndef VCACHE_SERVE_MEMO_HH
#define VCACHE_SERVE_MEMO_HH

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/checkpoint.hh"
#include "util/result.hh"

namespace vcache::serve
{

/** Memo-store tuning. */
struct MemoOptions
{
    /** Journal path; empty = in-memory only (no persistence). */
    std::string journalPath;
    /** LRU capacity across all shards (0 = unbounded). */
    std::size_t maxEntries = 65536;
    /** Shard count (power of two); bounds lock contention. */
    std::size_t shards = 16;
    /**
     * Compact once journal records exceed this multiple of the live
     * entry count (and some records are actually dead).
     */
    std::size_t compactionSlack = 4;
    /**
     * Journal identity label; a persisted journal whose label
     * differs is discarded on open.  Defaults (empty) to
     * "memo:" + buildResultIdentity().
     */
    std::string label;
};

/** Monotonic counters exported through the server's stats. */
struct MemoStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    std::uint64_t collisions = 0;
    /** Entries replayed from the journal at open. */
    std::uint64_t journalLoaded = 0;
    /** Journal records dropped at open (duplicates, over-capacity). */
    std::uint64_t journalDropped = 0;
    /** Journals discarded because their label mismatched. */
    std::uint64_t journalInvalidated = 0;
    std::uint64_t compactions = 0;
};

/** Sharded, journal-backed, collision-checked LRU memo. */
class MemoStore
{
  public:
    /**
     * Open the store, replaying (or discarding) any existing journal.
     * Irrecoverable journal I/O errors fail the open; a torn tail or
     * a stale label do not.
     */
    static Expected<std::unique_ptr<MemoStore>>
    open(const MemoOptions &options);

    ~MemoStore();

    MemoStore(const MemoStore &) = delete;
    MemoStore &operator=(const MemoStore &) = delete;

    /**
     * Look up a key, verifying the canonical form.  A hash match with
     * a different canonical string counts a collision and misses.
     */
    std::optional<std::string> lookup(std::uint64_t key,
                                      const std::string &canonical);

    /**
     * Insert (or refresh) an entry and append it to the journal.
     * Journal append failures degrade to in-memory-only operation
     * (counted, warned once) rather than failing the request.
     */
    void insert(std::uint64_t key, const std::string &canonical,
                const std::string &payload);

    /** Flush the journal to disk (graceful-drain path). */
    Expected<void> flush();

    /** Counter snapshot (consistent per counter, not across them). */
    MemoStats stats() const;

    /** Live entries across all shards. */
    std::size_t size() const;

    /** The label this store stamps into its journal. */
    const std::string &label() const { return identity; }

  private:
    explicit MemoStore(const MemoOptions &options);

    struct Entry
    {
        std::uint64_t key;
        std::string canonical;
        std::string payload;
    };

    struct Shard
    {
        mutable std::mutex mtx;
        /** Front = most recently used. */
        std::list<Entry> lru;
        std::unordered_map<std::uint64_t, std::list<Entry>::iterator>
            byKey;
    };

    Shard &shardFor(std::uint64_t key);
    Expected<void> openJournal();
    void journalAppend(const Entry &entry);
    void maybeCompact();

    MemoOptions opts;
    std::string identity;
    std::vector<Shard> shards;
    std::atomic<std::size_t> entries{0};

    /** Journal state, all under journal_mtx. */
    std::mutex journal_mtx;
    std::unique_ptr<CheckpointWriter> journal;
    /** Records in the journal file (live + superseded). */
    std::uint64_t journalRecords = 0;
    bool journalDegraded = false;

    mutable std::mutex stats_mtx;
    MemoStats counters;
};

} // namespace vcache::serve

#endif // VCACHE_SERVE_MEMO_HH
