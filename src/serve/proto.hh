/**
 * @file
 * Wire protocol of the evaluation server: one JSON object per line in
 * each direction, no external dependencies.
 *
 * Requests ({"op":...}):
 *
 *   {"op":"hello"}
 *   {"op":"eval","id":"r1","m":6,"tm":16,"B":1024,"pds":0.2,
 *    "seed":1,"sim":true,"engine":"auto","ci":0.03,
 *    "deadline_ms":500}
 *   {"op":"stats"}
 *   {"op":"metrics"}
 *   {"op":"shutdown"}
 *
 * Every eval field is optional and defaults to the paper point (see
 * sim/evaluate.hh); "id" is echoed verbatim in the response so a
 * pipelining client can match answers to questions.  Unknown keys are
 * malformed-request errors, the same contract as the CLI's unknown
 * flags: a typo must never silently change an experiment.
 *
 * Responses:
 *
 *   {"ok":true,"op":"hello","proto":1,"build":"...","identity":"..."}
 *   {"ok":true,"id":"r1","cached":false,"coalesced":false,
 *    "key":"679ca003c2a5ecdb","result":{...}}
 *   {"ok":false,"id":"r1","error":"InvalidConfig","message":"..."}
 *   {"ok":false,"error":"Overloaded","message":"...",
 *    "retry_after_ms":50}
 *
 * The "result" fragment is rendered exactly once per distinct point
 * and stored verbatim in the memo, so a cache hit is byte-identical
 * to the original computation by construction.
 */

#ifndef VCACHE_SERVE_PROTO_HH
#define VCACHE_SERVE_PROTO_HH

#include <cstdint>
#include <map>
#include <string>

#include "sim/evaluate.hh"
#include "util/result.hh"

namespace vcache::serve
{

/** Protocol revision spoken by this server. */
inline constexpr unsigned kProtoVersion = 1;

/** What one request line asks for. */
enum class Verb
{
    Hello,
    Eval,
    Stats,
    Metrics,
    Shutdown,
};

/** One parsed request line. */
struct Request
{
    Verb verb = Verb::Eval;
    /** Client correlation id, echoed verbatim; empty when absent. */
    std::string id;
    /** Point to evaluate (Verb::Eval only). */
    EvalRequest eval;
    /** Per-request deadline in ms; 0 = use the server default. */
    std::uint64_t deadlineMs = 0;
};

/**
 * Parse one request line.  Every failure is a structured
 * Errc::InvalidConfig naming what was wrong -- a malformed line must
 * produce an error *response*, never take the server down.
 */
Expected<Request> parseRequest(const std::string &line);

/** 16-digit lower-case hex form of a memo key. */
std::string formatKey(std::uint64_t key);

/**
 * Render the memoized "result" JSON fragment for one evaluated
 * point.  Deterministic: doubles in shortest round-trip form, field
 * order fixed.
 */
std::string renderResultPayload(const EvalRequest &req,
                                const EvalResult &result);

/** Successful eval response around a (possibly memoized) payload. */
std::string renderEvalOk(const std::string &id, std::uint64_t key,
                         const std::string &payload, bool cached,
                         bool coalesced);

/** Error response; `error` is the Errc name of err.code. */
std::string renderError(const std::string &id, const Error &err);

/** Load-shed response with a client back-off hint. */
std::string renderOverloaded(const std::string &id,
                             std::uint64_t retryAfterMs);

/** Handshake response carrying the build identity. */
std::string renderHello();

/** Stats response from a name -> value snapshot. */
std::string
renderStats(const std::map<std::string, std::uint64_t> &counters);

/**
 * Prometheus text exposition (version 0.0.4) of a counter snapshot:
 * one "# TYPE <name> counter" line and one sample per counter, names
 * prefixed "vcache_" with '.' replaced by '_' (Prometheus metric
 * names reject dots).  The trailing newline the format requires is
 * included.
 */
std::string renderPrometheusText(
    const std::map<std::string, std::uint64_t> &counters);

/**
 * "metrics" response: the Prometheus text carried in a JSON envelope
 * ({"ok":true,"op":"metrics","format":"prometheus","text":"..."}),
 * so the wire stays one JSON object per line.  Scrapers unwrap the
 * "text" field; tools/vcache_serve --metrics-out writes it raw.
 */
std::string renderMetrics(
    const std::map<std::string, std::uint64_t> &counters);

/** Acknowledgement of an admin shutdown request. */
std::string renderShutdownAck();

} // namespace vcache::serve

#endif // VCACHE_SERVE_PROTO_HH
