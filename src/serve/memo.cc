#include "serve/memo.hh"

#include <cstdio>
#include <fstream>
#include <utility>

#include "util/buildinfo.hh"
#include "util/faultinject.hh"
#include "util/logging.hh"

namespace vcache::serve
{

namespace
{

/** Per-shard LRU capacity for a global budget. */
std::size_t
shardCapacity(std::size_t maxEntries, std::size_t shards)
{
    if (maxEntries == 0)
        return 0; // unbounded
    const std::size_t per = maxEntries / shards;
    return per > 0 ? per : 1;
}

} // namespace

MemoStore::MemoStore(const MemoOptions &options)
    : opts(options),
      identity(options.label.empty()
                   ? "memo:" + buildResultIdentity()
                   : options.label),
      shards(options.shards > 0 ? options.shards : 1)
{
}

MemoStore::~MemoStore()
{
    (void)flush();
}

Expected<std::unique_ptr<MemoStore>>
MemoStore::open(const MemoOptions &options)
{
    std::unique_ptr<MemoStore> store(new MemoStore(options));
    if (!options.journalPath.empty()) {
        auto opened = store->openJournal();
        if (!opened.ok())
            return opened.error();
    }
    return store;
}

MemoStore::Shard &
MemoStore::shardFor(std::uint64_t key)
{
    // High bits: the low bits already picked FNV's avalanche, and
    // this keeps shard choice independent of any map implementation.
    return shards[(key >> 48) % shards.size()];
}

Expected<void>
MemoStore::openJournal()
{
    bool append = false;
    if (std::ifstream(opts.journalPath).good()) {
        auto replay = readCheckpoint(opts.journalPath);
        if (!replay.ok()) {
            // The journal is a cache, not ground truth: anything the
            // resume-grade reader cannot salvage is discarded rather
            // than refusing to serve.
            warn("memo journal '", opts.journalPath,
                 "': unreadable (", replay.error().message,
                 "); starting cold");
            counters.journalInvalidated += 1;
        } else if (replay.value().header.label != identity) {
            warn("memo journal '", opts.journalPath,
                 "': written by '", replay.value().header.label,
                 "', this build is '", identity,
                 "'; results may differ -- starting cold");
            counters.journalInvalidated += 1;
        } else {
            const std::size_t cap =
                shardCapacity(opts.maxEntries, shards.size());
            counters.journalDropped += replay.value().duplicates;
            journalRecords = replay.value().duplicates;
            for (auto &[key, row] : replay.value().done) {
                ++journalRecords;
                if (row.size() != 2) {
                    counters.journalDropped += 1;
                    continue;
                }
                Shard &shard = shardFor(key);
                if (cap != 0 && shard.lru.size() >= cap) {
                    counters.journalDropped += 1;
                    continue;
                }
                shard.lru.push_front(Entry{key, std::move(row[0]),
                                           std::move(row[1])});
                shard.byKey[key] = shard.lru.begin();
                entries.fetch_add(1, std::memory_order_relaxed);
                counters.journalLoaded += 1;
            }
            append = true;
        }
    }

    const CheckpointHeader header{identity, 0, 0};
    auto writer =
        CheckpointWriter::open(opts.journalPath, header, append);
    if (!writer.ok())
        return writer.error();
    journal = std::move(writer.value());
    if (!append)
        journalRecords = 0;
    return {};
}

std::optional<std::string>
MemoStore::lookup(std::uint64_t key, const std::string &canonical)
{
    Shard &shard = shardFor(key);
    std::optional<std::string> payload;
    bool collision = false;
    {
        std::lock_guard<std::mutex> lock(shard.mtx);
        const auto it = shard.byKey.find(key);
        if (it != shard.byKey.end()) {
            if (it->second->canonical == canonical) {
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second);
                payload = it->second->payload;
            } else {
                collision = true;
            }
        }
    }
    {
        std::lock_guard<std::mutex> lock(stats_mtx);
        if (payload)
            counters.hits += 1;
        else
            counters.misses += 1;
        if (collision)
            counters.collisions += 1;
    }
    return payload;
}

void
MemoStore::insert(std::uint64_t key, const std::string &canonical,
                  const std::string &payload)
{
    Shard &shard = shardFor(key);
    const std::size_t cap =
        shardCapacity(opts.maxEntries, shards.size());
    bool inserted = false;
    bool evicted = false;
    bool collision = false;
    {
        std::lock_guard<std::mutex> lock(shard.mtx);
        const auto it = shard.byKey.find(key);
        if (it != shard.byKey.end()) {
            if (it->second->canonical == canonical) {
                // Coalescing makes duplicate computes rare but not
                // impossible; refresh recency and move on.
                shard.lru.splice(shard.lru.begin(), shard.lru,
                                 it->second);
            } else {
                // A genuine 64-bit collision: keep the incumbent --
                // serving either entry under the other's key would
                // be wrong, and the loser simply stays uncached.
                collision = true;
            }
        } else {
            if (cap != 0 && shard.lru.size() >= cap) {
                shard.byKey.erase(shard.lru.back().key);
                shard.lru.pop_back();
                entries.fetch_sub(1, std::memory_order_relaxed);
                evicted = true;
            }
            shard.lru.push_front(Entry{key, canonical, payload});
            shard.byKey[key] = shard.lru.begin();
            entries.fetch_add(1, std::memory_order_relaxed);
            inserted = true;
        }
    }
    {
        std::lock_guard<std::mutex> lock(stats_mtx);
        if (inserted)
            counters.inserts += 1;
        if (evicted)
            counters.evictions += 1;
        if (collision)
            counters.collisions += 1;
    }
    if (inserted && journal)
        journalAppend(Entry{key, canonical, payload});
}

void
MemoStore::journalAppend(const Entry &entry)
{
    std::lock_guard<std::mutex> lock(journal_mtx);
    if (journalDegraded)
        return;
    Expected<void> wrote = {};
    try {
        VCACHE_FAULT_POINT("serve.journal.append");
        wrote = journal->recordDone(
            entry.key, {entry.canonical, entry.payload});
    } catch (const VcError &e) {
        wrote = e.error();
    }
    if (!wrote.ok()) {
        // Persistence is best-effort: losing the journal degrades a
        // future restart to a cold cache, never a failed request.
        warn("memo journal '", opts.journalPath, "': append failed (",
             wrote.error().message,
             "); continuing without persistence");
        journalDegraded = true;
        return;
    }
    ++journalRecords;
    maybeCompact();
}

void
MemoStore::maybeCompact()
{
    // Caller holds journal_mtx.
    const std::size_t live =
        entries.load(std::memory_order_relaxed);
    if (opts.compactionSlack == 0 || journalRecords <= live ||
        journalRecords < opts.compactionSlack * (live > 0 ? live : 1))
        return;

    // Snapshot every shard (one lock at a time; inserts racing the
    // snapshot just land in the next compaction) and rewrite the
    // journal atomically: tmp file, fsync, rename over.
    const std::string tmp = opts.journalPath + ".compact";
    const CheckpointHeader header{identity, 0, 0};
    auto writer = CheckpointWriter::open(tmp, header, false);
    if (!writer.ok()) {
        warn("memo journal '", opts.journalPath,
             "': compaction failed to open '", tmp, "'");
        return;
    }
    std::uint64_t written = 0;
    for (Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mtx);
        for (const Entry &entry : shard.lru) {
            auto rec = writer.value()->recordDone(
                entry.key, {entry.canonical, entry.payload});
            if (!rec.ok()) {
                warn("memo journal compaction write failed: ",
                     rec.error().message);
                std::remove(tmp.c_str());
                return;
            }
            ++written;
        }
    }
    if (!writer.value()->flush().ok()) {
        std::remove(tmp.c_str());
        return;
    }
    writer.value().reset(); // close before the rename
    journal.reset();
    if (std::rename(tmp.c_str(), opts.journalPath.c_str()) != 0) {
        warn("memo journal '", opts.journalPath,
             "': compaction rename failed");
        std::remove(tmp.c_str());
    }
    auto reopened =
        CheckpointWriter::open(opts.journalPath, header, true);
    if (!reopened.ok()) {
        warn("memo journal '", opts.journalPath,
             "': reopen after compaction failed; continuing without "
             "persistence");
        journalDegraded = true;
        return;
    }
    journal = std::move(reopened.value());
    journalRecords = written;
    {
        std::lock_guard<std::mutex> lock(stats_mtx);
        counters.compactions += 1;
    }
}

Expected<void>
MemoStore::flush()
{
    std::lock_guard<std::mutex> lock(journal_mtx);
    if (!journal || journalDegraded)
        return {};
    return journal->flush();
}

MemoStats
MemoStore::stats() const
{
    std::lock_guard<std::mutex> lock(stats_mtx);
    return counters;
}

std::size_t
MemoStore::size() const
{
    return entries.load(std::memory_order_relaxed);
}

} // namespace vcache::serve
