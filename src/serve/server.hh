/**
 * @file
 * Resident evaluation server: sweep points as a service.
 *
 * A plain TCP server speaking the newline-delimited JSON protocol of
 * serve/proto.hh.  One accept thread hands each connection to a
 * reader thread; eval requests pass through a bounded admission
 * queue into a worker pool that shares the sweep CLI's evaluation
 * kernel (sim/evaluate.hh), fronted by the content-addressed memo
 * store (serve/memo.hh).
 *
 * Robustness contract (the reason this file exists):
 *
 *  - Malformed requests, invalid configs and tripped fault sites
 *    produce error *responses*; nothing a client sends terminates
 *    the process.
 *  - The admission queue is bounded; past capacity the server sheds
 *    load with an "Overloaded" response carrying a retry hint
 *    instead of queueing unboundedly.
 *  - Per-request deadlines ride the sweep's epoch-tagged CancelToken:
 *    a watchdog cancels only the epoch it measured, so a deadline
 *    that races a completing point can never kill the next one.
 *  - In-flight identical requests coalesce: N clients asking for the
 *    same key while it computes cost one evaluation.
 *  - Distinct queued requests that share a workload key drain into
 *    one batched evaluation (sim/evaluate.hh evaluateBatch): one
 *    trace pass feeds up to batchMax configs, with responses
 *    byte-identical to solo evaluation.
 *  - SIGTERM/SIGINT (or an admin "shutdown" request) drain
 *    gracefully: stop accepting, finish in-flight work, flush the
 *    memo journal, then exit.
 *
 * Fault-injection sites (VCACHE_FAULT_INJECTION builds):
 * serve.accept, serve.queue, serve.evaluate, serve.journal.append.
 */

#ifndef VCACHE_SERVE_SERVER_HH
#define VCACHE_SERVE_SERVER_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "serve/memo.hh"
#include "util/result.hh"

namespace vcache
{
class ObsRegistry;
}

namespace vcache::serve
{

/** Server tuning; defaults suit a local replay client. */
struct ServerOptions
{
    /** Bind address. */
    std::string host = "127.0.0.1";
    /** Bind port; 0 picks an ephemeral port (see EvalServer::port). */
    std::uint16_t port = 0;
    /** Worker threads; 0 = hardware concurrency. */
    unsigned threads = 0;
    /** Admission-queue capacity; past it the server sheds load. */
    std::size_t queueDepth = 256;
    /**
     * Most queued requests one worker wakeup drains into a single
     * evaluateBatch() call.  Only requests with the same workload key
     * (sim/evaluate.hh workloadKey) batch together -- they share one
     * trace pass -- and every request keeps its own deadline, fault
     * point and memo/coalescing treatment.  1 disables batching.
     */
    std::size_t batchMax = 8;
    /** Deadline applied when a request carries none; 0 = none. */
    std::uint64_t defaultDeadlineMs = 0;
    /** Back-off hint sent with "Overloaded" responses. */
    std::uint64_t retryAfterMs = 50;
    /** Honour {"op":"shutdown"} from clients (tests, local use). */
    bool allowRemoteShutdown = true;
    /** Install SIGINT/SIGTERM handlers that drain gracefully. */
    bool handleSignals = false;
    /** Memo-store configuration (journal path, capacity, ...). */
    MemoOptions memo;
};

/** The resident evaluation server. */
class EvalServer
{
  public:
    /**
     * Bind, listen and start the thread pool.  Returns a running
     * server or a structured error (address in use, bad host, memo
     * journal unusable, ...).
     */
    static Expected<std::unique_ptr<EvalServer>>
    start(const ServerOptions &options);

    /** Blocks until fully drained (and drains if still running). */
    ~EvalServer();

    EvalServer(const EvalServer &) = delete;
    EvalServer &operator=(const EvalServer &) = delete;

    /** Port actually bound (resolves port = 0). */
    std::uint16_t port() const;

    /** Begin a graceful drain; returns immediately. */
    void requestShutdown();

    /** Block until the drain completes. */
    void wait();

    /** True once a drain has been requested. */
    bool draining() const;

    /**
     * Counter snapshot: serve.* plus the memo store's memo.*.  Also
     * the payload of the "stats" protocol verb.
     */
    std::map<std::string, std::uint64_t> statsSnapshot() const;

    /** Publish the snapshot into an ObsRegistry (--stats-out lane). */
    void publishStats(ObsRegistry &registry) const;

    /** The memo store (test introspection). */
    const MemoStore &memo() const;

  private:
    class Impl;
    explicit EvalServer(std::unique_ptr<Impl> impl);
    std::unique_ptr<Impl> impl;
};

} // namespace vcache::serve

#endif // VCACHE_SERVE_SERVER_HH
