#include "serve/proto.hh"

#include <charconv>
#include <cstdio>

#include "sim/checkpoint.hh"
#include "util/buildinfo.hh"

namespace vcache::serve
{

namespace
{

/** One parsed JSON scalar. */
struct Value
{
    enum class Kind
    {
        String,
        Number,
        Bool,
        Null,
    };
    Kind kind = Kind::Null;
    /** Decoded text (String) or the raw numeric token (Number). */
    std::string text;
    bool boolean = false;
};

Error
malformed(const std::string &what)
{
    return makeError(Errc::InvalidConfig,
                     "malformed request: " + what);
}

/**
 * Scanner for one flat JSON object.  Deliberately minimal: the
 * protocol never nests, so arrays and sub-objects are malformed
 * input, and numbers keep their raw token so 64-bit seeds survive
 * without a round-trip through double.
 */
class ObjectScanner
{
  public:
    explicit ObjectScanner(const std::string &line) : s(line) {}

    Expected<std::map<std::string, Value>>
    parse()
    {
        std::map<std::string, Value> out;
        skipWs();
        if (!consume('{'))
            return malformed("expected '{'");
        skipWs();
        if (consume('}'))
            return finish(out);
        for (;;) {
            skipWs();
            std::string key;
            if (!string(key))
                return malformed("expected a string key");
            skipWs();
            if (!consume(':'))
                return malformed("expected ':' after key \"" + key +
                                 "\"");
            skipWs();
            Value v;
            if (!value(v))
                return malformed("bad value for key \"" + key + "\"");
            out[key] = std::move(v); // duplicate keys: last one wins
            skipWs();
            if (consume(','))
                continue;
            if (consume('}'))
                return finish(out);
            return malformed("expected ',' or '}'");
        }
    }

  private:
    Expected<std::map<std::string, Value>>
    finish(std::map<std::string, Value> &out)
    {
        skipWs();
        if (pos != s.size())
            return malformed("trailing bytes after the object");
        return std::move(out);
    }

    void
    skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        std::size_t i = 0;
        while (word[i] != '\0') {
            if (pos + i >= s.size() || s[pos + i] != word[i])
                return false;
            ++i;
        }
        pos += i;
        return true;
    }

    /** JSON string with escapes; \uXXXX outside surrogates only. */
    bool
    string(std::string &out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (pos < s.size()) {
            const char c = s[pos++];
            if (c == '"')
                return true;
            if (static_cast<unsigned char>(c) < 0x20)
                return false; // raw control characters are invalid
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos >= s.size())
                return false;
            const char e = s[pos++];
            switch (e) {
              case '"':
              case '\\':
              case '/':
                out.push_back(e);
                break;
              case 'b':
                out.push_back('\b');
                break;
              case 'f':
                out.push_back('\f');
                break;
              case 'n':
                out.push_back('\n');
                break;
              case 'r':
                out.push_back('\r');
                break;
              case 't':
                out.push_back('\t');
                break;
              case 'u': {
                unsigned cp = 0;
                if (pos + 4 > s.size())
                    return false;
                const auto res = std::from_chars(
                    s.data() + pos, s.data() + pos + 4, cp, 16);
                if (res.ec != std::errc() ||
                    res.ptr != s.data() + pos + 4)
                    return false;
                pos += 4;
                if (cp >= 0xd800 && cp <= 0xdfff)
                    return false; // no surrogate pairs
                // UTF-8 encode (cp <= 0xffff here).
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (cp >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (cp >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((cp >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
              }
              default:
                return false;
            }
        }
        return false; // ran out of line inside the string
    }

    bool
    number(Value &v)
    {
        const std::size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        bool digits = false;
        while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
            ++pos;
            digits = true;
        }
        if (pos < s.size() && s[pos] == '.') {
            ++pos;
            while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9')
                ++pos;
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9')
                ++pos;
        }
        if (!digits)
            return false;
        v.kind = Value::Kind::Number;
        v.text = s.substr(start, pos - start);
        return true;
    }

    bool
    value(Value &v)
    {
        if (pos >= s.size())
            return false;
        const char c = s[pos];
        if (c == '"') {
            v.kind = Value::Kind::String;
            return string(v.text);
        }
        if (c == 't') {
            v.kind = Value::Kind::Bool;
            v.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            v.kind = Value::Kind::Bool;
            v.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            v.kind = Value::Kind::Null;
            return literal("null");
        }
        if (c == '-' || (c >= '0' && c <= '9'))
            return number(v);
        return false; // arrays / objects never appear in requests
    }

    const std::string &s;
    std::size_t pos = 0;
};

Expected<std::uint64_t>
asUint(const std::string &key, const Value &v)
{
    if (v.kind != Value::Kind::Number || v.text.empty() ||
        v.text[0] == '-')
        return malformed("\"" + key +
                         "\" must be a non-negative integer");
    std::uint64_t out = 0;
    const char *last = v.text.data() + v.text.size();
    const auto res = std::from_chars(v.text.data(), last, out);
    if (res.ec != std::errc() || res.ptr != last)
        return malformed("\"" + key +
                         "\" must be a non-negative integer");
    return out;
}

Expected<double>
asDouble(const std::string &key, const Value &v)
{
    if (v.kind != Value::Kind::Number)
        return malformed("\"" + key + "\" must be a number");
    double out = 0.0;
    const char *last = v.text.data() + v.text.size();
    const auto res = std::from_chars(v.text.data(), last, out);
    if (res.ec != std::errc() || res.ptr != last)
        return malformed("\"" + key + "\" must be a number");
    return out;
}

Expected<bool>
asBool(const std::string &key, const Value &v)
{
    if (v.kind != Value::Kind::Bool)
        return malformed("\"" + key + "\" must be true or false");
    return v.boolean;
}

Expected<std::string>
asString(const std::string &key, const Value &v)
{
    if (v.kind != Value::Kind::String)
        return malformed("\"" + key + "\" must be a string");
    return v.text;
}

} // namespace

Expected<Request>
parseRequest(const std::string &line)
{
    auto fields = ObjectScanner(line).parse();
    if (!fields.ok())
        return fields.error();

    Request req;
    auto &map = fields.value();

    const auto op = map.find("op");
    if (op == map.end())
        return malformed("missing \"op\"");
    auto op_name = asString("op", op->second);
    if (!op_name.ok())
        return op_name.error();
    map.erase(op);

    if (const auto id = map.find("id"); id != map.end()) {
        auto text = asString("id", id->second);
        if (!text.ok())
            return text.error();
        req.id = std::move(text.value());
        map.erase(id);
    }

    if (op_name.value() == "hello") {
        req.verb = Verb::Hello;
    } else if (op_name.value() == "stats") {
        req.verb = Verb::Stats;
    } else if (op_name.value() == "metrics") {
        req.verb = Verb::Metrics;
    } else if (op_name.value() == "shutdown") {
        req.verb = Verb::Shutdown;
    } else if (op_name.value() == "eval") {
        req.verb = Verb::Eval;
        for (auto &[key, value] : map) {
            if (key == "m") {
                auto v = asUint(key, value);
                if (!v.ok())
                    return v.error();
                if (v.value() > 64)
                    return malformed("\"m\" is implausibly large");
                req.eval.bankBits =
                    static_cast<unsigned>(v.value());
            } else if (key == "tm") {
                auto v = asUint(key, value);
                if (!v.ok())
                    return v.error();
                req.eval.memoryTime = v.value();
            } else if (key == "B") {
                auto v = asUint(key, value);
                if (!v.ok())
                    return v.error();
                req.eval.blockingFactor = v.value();
            } else if (key == "pds") {
                auto v = asDouble(key, value);
                if (!v.ok())
                    return v.error();
                req.eval.pDoubleStream = v.value();
            } else if (key == "seed") {
                auto v = asUint(key, value);
                if (!v.ok())
                    return v.error();
                req.eval.seed = v.value();
            } else if (key == "sim") {
                auto v = asBool(key, value);
                if (!v.ok())
                    return v.error();
                req.eval.sim = v.value();
            } else if (key == "engine") {
                auto v = asString(key, value);
                if (!v.ok())
                    return v.error();
                const auto engine = parseSimEngine(v.value());
                if (!engine)
                    return malformed(
                        "\"engine\" must be auto, scalar or "
                        "sampled");
                req.eval.engine = *engine;
            } else if (key == "ci") {
                auto v = asDouble(key, value);
                if (!v.ok())
                    return v.error();
                req.eval.targetCi = v.value();
            } else if (key == "deadline_ms") {
                auto v = asUint(key, value);
                if (!v.ok())
                    return v.error();
                req.deadlineMs = v.value();
            } else {
                return malformed("unknown key \"" + key + "\"");
            }
        }
        return req;
    } else {
        return malformed("unknown op \"" + op_name.value() + "\"");
    }

    // Non-eval verbs accept no further keys.
    if (!map.empty())
        return malformed("unknown key \"" + map.begin()->first +
                         "\" for op \"" + op_name.value() + "\"");
    return req;
}

std::string
formatKey(std::uint64_t key)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(key));
    return buf;
}

std::string
renderResultPayload(const EvalRequest &req, const EvalResult &result)
{
    std::string out = "{\"model\":{\"mm\":";
    out += canonicalDouble(result.modelMm);
    out += ",\"direct\":" + canonicalDouble(result.modelDirect);
    out += ",\"prime\":" + canonicalDouble(result.modelPrime);
    out += "}";
    if (req.sim) {
        out += ",\"sim\":{\"mm\":" + canonicalDouble(result.simMm);
        out += ",\"direct\":" + canonicalDouble(result.simDirect);
        out += ",\"prime\":" + canonicalDouble(result.simPrime);
        out += "}";
        if (req.engine == SimEngine::Sampled) {
            out += ",\"ci\":{\"mm\":" + canonicalDouble(result.mmCi);
            out += ",\"direct\":" + canonicalDouble(result.directCi);
            out += ",\"prime\":" + canonicalDouble(result.primeCi);
            out += "}";
        } else {
            // Full counters only exist for the exact engines.
            auto machine = [](const SimResult &r, bool cache) {
                std::string m =
                    "{\"cycles\":" + std::to_string(r.totalCycles);
                m += ",\"stalls\":" + std::to_string(r.stallCycles);
                m += ",\"results\":" + std::to_string(r.results);
                if (cache) {
                    m += ",\"hits\":" + std::to_string(r.hits);
                    m += ",\"misses\":" + std::to_string(r.misses);
                }
                return m + "}";
            };
            out += ",\"counters\":{\"mm\":" +
                   machine(result.mm, false);
            out += ",\"direct\":" + machine(result.direct, true);
            out += ",\"prime\":" + machine(result.prime, true);
            out += "}";
        }
    }
    return out + "}";
}

namespace
{

/** Shared "ok/id" response prefix. */
std::string
envelope(bool ok, const std::string &id)
{
    std::string out = ok ? "{\"ok\":true" : "{\"ok\":false";
    if (!id.empty())
        out += ",\"id\":\"" + jsonEscape(id) + "\"";
    return out;
}

} // namespace

std::string
renderEvalOk(const std::string &id, std::uint64_t key,
             const std::string &payload, bool cached, bool coalesced)
{
    std::string out = envelope(true, id);
    out += cached ? ",\"cached\":true" : ",\"cached\":false";
    out += coalesced ? ",\"coalesced\":true" : ",\"coalesced\":false";
    out += ",\"key\":\"" + formatKey(key) + "\"";
    out += ",\"result\":" + payload;
    return out + "}";
}

std::string
renderError(const std::string &id, const Error &err)
{
    std::string out = envelope(false, id);
    out += ",\"error\":\"";
    out += errcName(err.code);
    out += "\",\"message\":\"" + jsonEscape(err.message) + "\"";
    return out + "}";
}

std::string
renderOverloaded(const std::string &id, std::uint64_t retryAfterMs)
{
    std::string out = envelope(false, id);
    out += ",\"error\":\"Overloaded\",\"message\":\"admission queue "
           "is full; retry later\",\"retry_after_ms\":";
    out += std::to_string(retryAfterMs);
    return out + "}";
}

std::string
renderHello()
{
    std::string out = "{\"ok\":true,\"op\":\"hello\",\"proto\":";
    out += std::to_string(kProtoVersion);
    out += ",\"build\":\"" + jsonEscape(buildInfoString()) + "\"";
    out += ",\"identity\":\"" + jsonEscape(buildResultIdentity()) +
           "\"";
    return out + "}";
}

std::string
renderStats(const std::map<std::string, std::uint64_t> &counters)
{
    std::string out = "{\"ok\":true,\"op\":\"stats\",\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters) {
        if (!first)
            out += ",";
        first = false;
        out += "\"" + jsonEscape(name) +
               "\":" + std::to_string(value);
    }
    return out + "}}";
}

std::string
renderPrometheusText(
    const std::map<std::string, std::uint64_t> &counters)
{
    std::string out;
    for (const auto &[name, value] : counters) {
        std::string metric = "vcache_";
        for (const char c : name)
            metric.push_back(c == '.' ? '_' : c);
        out += "# TYPE " + metric + " counter\n";
        out += metric + " " + std::to_string(value) + "\n";
    }
    return out;
}

std::string
renderMetrics(const std::map<std::string, std::uint64_t> &counters)
{
    std::string out = "{\"ok\":true,\"op\":\"metrics\","
                      "\"format\":\"prometheus\",\"text\":\"";
    out += jsonEscape(renderPrometheusText(counters));
    return out + "\"}";
}

std::string
renderShutdownAck()
{
    return "{\"ok\":true,\"op\":\"shutdown\",\"draining\":true}";
}

} // namespace vcache::serve
