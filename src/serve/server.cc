#include "serve/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <thread>
#include <unordered_map>
#include <vector>

#include "obs/histogram.hh"
#include "obs/registry.hh"
#include "serve/proto.hh"
#include "sim/cancel.hh"
#include "util/faultinject.hh"
#include "util/logging.hh"

namespace vcache::serve
{

namespace
{

using Clock = std::chrono::steady_clock;

/** Reject a single request line larger than this: nothing in the
 * protocol is remotely this big, so it is garbage or abuse. */
constexpr std::size_t kMaxLineBytes = 1 << 20;

/**
 * SIGINT/SIGTERM latch for the graceful drain.  The handler only
 * sets the flag (async-signal-safe); a monitor thread turns it into
 * requestShutdown().  A lock-free atomic rather than volatile
 * sig_atomic_t because the reader is a *different thread*, not the
 * interrupted one — volatile alone is a cross-thread data race.
 */
std::atomic<int> g_serve_signal{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free flag");

void
serveSignalHandler(int)
{
    g_serve_signal.store(1, std::memory_order_relaxed);
}

/** One client connection; writers serialize on write_mtx. */
struct Connection
{
    explicit Connection(int fd) : fd(fd) {}

    int fd;
    std::mutex write_mtx;
    std::atomic<bool> dead{false};
};

using ConnPtr = std::shared_ptr<Connection>;

/** One admitted eval request. */
struct Job
{
    ConnPtr conn;
    std::string id;
    EvalRequest eval;
    /**
     * Workload identity (sim/evaluate.hh workloadKey), computed once
     * at admission: a worker wakeup drains only same-key neighbours
     * into its batch, because only they share a trace pass.
     */
    std::string wkey;
    bool hasDeadline = false;
    Clock::time_point deadline{};
};

/**
 * Per-request cancellation state, scanned by the deadline watchdog.
 * Epoch-tagged exactly like the sweep's: the watchdog cancels only
 * the epoch it snapshotted, so a deadline firing as a point
 * completes can never leak into the worker's next point.
 */
struct WorkerEntry
{
    CancelToken token;
    /** Deadline as ns since the clock epoch; 0 = none armed. */
    std::atomic<std::int64_t> deadlineNs{0};
    std::atomic<std::uint64_t> snapshot{0};
};

/**
 * One worker's cancellation entries: entry k guards the k-th request
 * of the batch the worker is evaluating (a solo request uses entry
 * 0), so each request in a batch keeps its own deadline.
 */
struct WorkerSlot
{
    std::vector<WorkerEntry> entries;
};

std::int64_t
toNs(Clock::time_point t)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               t.time_since_epoch())
        .count();
}

} // namespace

class EvalServer::Impl
{
  public:
    explicit Impl(const ServerOptions &options) : opts(options) {}

    ~Impl()
    {
        requestShutdown();
        wait();
        if (accept_thread.joinable())
            accept_thread.join();
        if (lifecycle_thread.joinable())
            lifecycle_thread.join();
        if (signal_thread.joinable())
            signal_thread.join();
        if (listen_fd >= 0)
            ::close(listen_fd);
    }

    Expected<void>
    start()
    {
        auto memo_opened = MemoStore::open(opts.memo);
        if (!memo_opened.ok())
            return memo_opened.error();
        memo_store = std::move(memo_opened.value());

        auto bound = bindAndListen();
        if (!bound.ok())
            return bound.error();

        const unsigned workers =
            opts.threads > 0
                ? opts.threads
                : std::max(1u, std::thread::hardware_concurrency());
        slots = std::make_unique<WorkerSlot[]>(workers);
        const std::size_t batch_max = std::max<std::size_t>(
            1, opts.batchMax);
        for (unsigned i = 0; i < workers; ++i)
            slots[i].entries =
                std::vector<WorkerEntry>(batch_max);
        worker_threads.reserve(workers);
        for (unsigned i = 0; i < workers; ++i)
            worker_threads.emplace_back(
                [this, i] { workerLoop(slots[i]); });
        watchdog_thread =
            std::thread([this, workers] { watchdogLoop(workers); });
        accept_thread = std::thread([this] { acceptLoop(); });
        lifecycle_thread = std::thread([this] { lifecycleLoop(); });
        if (opts.handleSignals) {
            g_serve_signal = 0;
            std::signal(SIGINT, serveSignalHandler);
            std::signal(SIGTERM, serveSignalHandler);
            signal_thread = std::thread([this] { signalLoop(); });
        }
        return {};
    }

    std::uint16_t port() const { return bound_port; }

    void
    requestShutdown()
    {
        {
            std::lock_guard<std::mutex> lock(lifecycle_mtx);
            if (drain)
                return;
            drain = true;
        }
        lifecycle_cv.notify_all();
        queue_cv.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(lifecycle_mtx);
        done_cv.wait(lock, [this] { return done; });
    }

    bool
    draining() const
    {
        std::lock_guard<std::mutex> lock(lifecycle_mtx);
        return drain;
    }

    std::map<std::string, std::uint64_t>
    statsSnapshot() const
    {
        std::map<std::string, std::uint64_t> out;
        out["serve.requests"] = requests.load();
        out["serve.malformed"] = malformed_count.load();
        out["serve.eval_ok"] = eval_ok.load();
        out["serve.eval_error"] = eval_error.load();
        out["serve.shed"] = shed.load();
        out["serve.deadline_exceeded"] = deadline_exceeded.load();
        out["serve.coalesced"] = coalesced.load();
        out["serve.connections"] = connections.load();
        out["serve.accept_faults"] = accept_faults.load();
        out["serve.queue_peak"] = queue_peak.load();
        out["serve.batched"] = batched.load();
        out["serve.batches"] = batches.load();
        {
            std::lock_guard<std::mutex> lock(batch_hist_mtx);
            out["serve.batch_size_max"] = batch_hist.max();
        }
        {
            std::lock_guard<std::mutex> lock(queue_mtx);
            out["serve.queue_depth"] = queue.size();
        }
        const MemoStats m = memo_store->stats();
        out["memo.hits"] = m.hits;
        out["memo.misses"] = m.misses;
        out["memo.inserts"] = m.inserts;
        out["memo.evictions"] = m.evictions;
        out["memo.collisions"] = m.collisions;
        out["memo.journal_loaded"] = m.journalLoaded;
        out["memo.journal_dropped"] = m.journalDropped;
        out["memo.journal_invalidated"] = m.journalInvalidated;
        out["memo.compactions"] = m.compactions;
        out["memo.entries"] = memo_store->size();
        return out;
    }

    const MemoStore &memo() const { return *memo_store; }

    void
    publishBatchHistogram(ObsRegistry &registry) const
    {
        std::lock_guard<std::mutex> lock(batch_hist_mtx);
        registry
            .histogram("serve.batch_size",
                       "requests per multi-request batched "
                       "evaluation")
            .merge(batch_hist);
    }

  private:
    // -----------------------------------------------------------------
    // Socket plumbing.
    // -----------------------------------------------------------------

    Expected<void>
    bindAndListen()
    {
        listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd < 0)
            return makeError(Errc::Io, "socket: " +
                                           std::string(
                                               std::strerror(errno)));
        const int one = 1;
        ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one,
                     sizeof one);

        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(opts.port);
        if (::inet_pton(AF_INET, opts.host.c_str(), &addr.sin_addr) !=
            1)
            return makeError(Errc::InvalidConfig,
                             "bad bind address '" + opts.host + "'");
        if (::bind(listen_fd, reinterpret_cast<sockaddr *>(&addr),
                   sizeof addr) != 0)
            return makeError(Errc::Io,
                             "bind " + opts.host + ":" +
                                 std::to_string(opts.port) + ": " +
                                 std::strerror(errno));
        if (::listen(listen_fd, 128) != 0)
            return makeError(Errc::Io, "listen: " +
                                           std::string(
                                               std::strerror(errno)));
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        if (::getsockname(listen_fd,
                          reinterpret_cast<sockaddr *>(&bound),
                          &len) != 0)
            return makeError(Errc::Io, "getsockname: " +
                                           std::string(
                                               std::strerror(errno)));
        bound_port = ntohs(bound.sin_port);
        return {};
    }

    void
    writeLine(const ConnPtr &conn, const std::string &line)
    {
        if (conn->dead.load(std::memory_order_relaxed))
            return;
        std::string framed = line;
        framed.push_back('\n');
        std::lock_guard<std::mutex> lock(conn->write_mtx);
        std::size_t sent = 0;
        while (sent < framed.size()) {
            const ssize_t n =
                ::send(conn->fd, framed.data() + sent,
                       framed.size() - sent, MSG_NOSIGNAL);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                // A vanished client is its own problem; evaluation
                // results it abandoned still landed in the memo.
                conn->dead.store(true, std::memory_order_relaxed);
                return;
            }
            sent += static_cast<std::size_t>(n);
        }
    }

    // -----------------------------------------------------------------
    // Accept / read / per-line dispatch.
    // -----------------------------------------------------------------

    void
    acceptLoop()
    {
        for (;;) {
            const int fd = ::accept(listen_fd, nullptr, nullptr);
            if (fd < 0) {
                if (errno == EINTR)
                    continue;
                // shutdown() of the listen socket during drain lands
                // here; so would a transient accept failure under
                // fd exhaustion, which must not end the loop.
                if (draining())
                    return;
                continue;
            }
            if (draining()) {
                ::close(fd);
                continue;
            }
            try {
                VCACHE_FAULT_POINT("serve.accept");
            } catch (const VcError &) {
                // An injected accept fault costs one connection,
                // never the server.
                accept_faults.fetch_add(1);
                ::close(fd);
                continue;
            }
            auto conn = std::make_shared<Connection>(fd);
            connections.fetch_add(1);
            {
                std::lock_guard<std::mutex> lock(conns_mtx);
                conns.push_back(conn);
                reader_threads.emplace_back(
                    [this, conn] { readerLoop(conn); });
            }
        }
    }

    void
    readerLoop(const ConnPtr &conn)
    {
        std::string buffer;
        char chunk[4096];
        for (;;) {
            const ssize_t n =
                ::recv(conn->fd, chunk, sizeof chunk, 0);
            if (n <= 0) {
                if (n < 0 && errno == EINTR)
                    continue;
                break;
            }
            buffer.append(chunk, static_cast<std::size_t>(n));
            std::size_t start = 0;
            for (;;) {
                const auto nl = buffer.find('\n', start);
                if (nl == std::string::npos)
                    break;
                // Per-connection isolation: a throwing handler must
                // not take down the reader, let alone the server.
                try {
                    handleLine(conn,
                               buffer.substr(start, nl - start));
                } catch (const std::exception &e) {
                    warn("serve: request handler error: ", e.what());
                }
                start = nl + 1;
            }
            buffer.erase(0, start);
            if (buffer.size() > kMaxLineBytes) {
                writeLine(conn,
                          renderError(
                              "", makeError(Errc::InvalidConfig,
                                            "request line exceeds " +
                                                std::to_string(
                                                    kMaxLineBytes) +
                                                " bytes")));
                break;
            }
        }
        conn->dead.store(true, std::memory_order_relaxed);
        ::shutdown(conn->fd, SHUT_RDWR);
    }

    void
    handleLine(const ConnPtr &conn, const std::string &line)
    {
        if (line.empty() ||
            line.find_first_not_of(" \t\r") == std::string::npos)
            return;
        requests.fetch_add(1);

        auto parsed = parseRequest(line);
        if (!parsed.ok()) {
            malformed_count.fetch_add(1);
            writeLine(conn, renderError("", parsed.error()));
            return;
        }
        Request &req = parsed.value();
        switch (req.verb) {
          case Verb::Hello:
            writeLine(conn, renderHello());
            return;
          case Verb::Stats:
            writeLine(conn, renderStats(statsSnapshot()));
            return;
          case Verb::Metrics:
            writeLine(conn, renderMetrics(statsSnapshot()));
            return;
          case Verb::Shutdown:
            if (!opts.allowRemoteShutdown) {
                writeLine(conn,
                          renderError(req.id,
                                      makeError(Errc::InvalidConfig,
                                                "remote shutdown is "
                                                "disabled")));
                return;
            }
            writeLine(conn, renderShutdownAck());
            requestShutdown();
            return;
          case Verb::Eval:
            admit(conn, req);
            return;
        }
    }

    void
    admit(const ConnPtr &conn, Request &req)
    {
        // Reject before admission: a malformed point must not spend
        // queue capacity or a worker wakeup.
        if (auto valid = validateEvalRequest(req.eval); !valid.ok()) {
            eval_error.fetch_add(1);
            writeLine(conn, renderError(req.id, valid.error()));
            return;
        }

        Job job;
        job.conn = conn;
        job.id = std::move(req.id);
        job.eval = req.eval;
        job.wkey = workloadKey(req.eval);
        const std::uint64_t deadline_ms =
            req.deadlineMs > 0 ? req.deadlineMs
                               : opts.defaultDeadlineMs;
        if (deadline_ms > 0) {
            job.hasDeadline = true;
            job.deadline = Clock::now() +
                           std::chrono::milliseconds(deadline_ms);
        }

        bool admitted = false;
        try {
            VCACHE_FAULT_POINT("serve.queue");
            std::lock_guard<std::mutex> lock(queue_mtx);
            if (!drainingRelaxed() &&
                queue.size() < opts.queueDepth) {
                queue.push_back(std::move(job));
                admitted = true;
                // Monotone-max update.  The CAS loop is the standard
                // fetch-max: a failed compare_exchange_weak reloads
                // `peak`, and the loop exits as soon as another
                // admitter has published an equal-or-higher peak, so
                // the counter can only grow and never regresses
                // under concurrent admits.  Admission itself holds
                // queue_mtx, but statsSnapshot reads queue_peak
                // without it -- the atomic is for that reader, and
                // the loop stays correct even if admission ever
                // stops serializing.
                const std::uint64_t depth = queue.size();
                std::uint64_t peak = queue_peak.load();
                while (depth > peak &&
                       !queue_peak.compare_exchange_weak(peak,
                                                         depth)) {
                }
            }
        } catch (const VcError &) {
            // An injected queue fault sheds this request, nothing
            // else.
            admitted = false;
        }
        if (!admitted) {
            if (drainingRelaxed()) {
                eval_error.fetch_add(1);
                writeLine(conn,
                          renderError(job.id,
                                      makeError(Errc::Cancelled,
                                                "server is "
                                                "draining")));
            } else {
                shed.fetch_add(1);
                writeLine(conn, renderOverloaded(job.id,
                                                 opts.retryAfterMs));
            }
            return;
        }
        queue_cv.notify_one();
    }

    // -----------------------------------------------------------------
    // Worker pool, coalescing and deadlines.
    // -----------------------------------------------------------------

    void
    workerLoop(WorkerSlot &slot)
    {
        for (;;) {
            std::vector<Job> jobs;
            {
                std::unique_lock<std::mutex> lock(queue_mtx);
                queue_cv.wait(lock, [this] {
                    return !queue.empty() || drainingRelaxed();
                });
                if (queue.empty())
                    return; // draining and nothing left: exit
                jobs.push_back(std::move(queue.front()));
                queue.pop_front();
                // Drain queued neighbours with the same workload key
                // into this wakeup: they share one trace pass.  The
                // scan keeps relative queue order for both the taken
                // and the left-behind jobs, so no request is
                // reordered past a compatible one.
                const std::size_t batch_max = slot.entries.size();
                for (auto it = queue.begin();
                     it != queue.end() &&
                     jobs.size() < batch_max;) {
                    if (it->wkey == jobs.front().wkey) {
                        jobs.push_back(std::move(*it));
                        it = queue.erase(it);
                    } else {
                        ++it;
                    }
                }
            }
            process(std::move(jobs), slot);
        }
    }

    void
    process(std::vector<Job> jobs, WorkerSlot &slot)
    {
        // Per-request admission-era treatment, exactly as a solo
        // wakeup would apply it: queued-deadline expiry, memo hits
        // and in-flight coalescing each retire a request before it
        // costs any evaluation.  Survivors carry their memo key.
        std::vector<Job> live;
        std::vector<std::uint64_t> keys;
        live.reserve(jobs.size());
        keys.reserve(jobs.size());
        for (Job &job : jobs) {
            if (job.hasDeadline && Clock::now() >= job.deadline) {
                deadline_exceeded.fetch_add(1);
                eval_error.fetch_add(1);
                writeLine(job.conn,
                          renderError(job.id,
                                      makeError(
                                          Errc::Timeout,
                                          "deadline expired while "
                                          "queued")));
                continue;
            }

            const std::string canonical =
                canonicalEvalRequest(job.eval);
            const std::uint64_t key = fnv1a64(canonical);

            if (auto hit = memo_store->lookup(key, canonical)) {
                eval_ok.fetch_add(1);
                writeLine(job.conn,
                          renderEvalOk(job.id, key, *hit,
                                       /*cached=*/true,
                                       /*coalesced=*/false));
                continue;
            }

            {
                // Coalesce with an identical in-flight computation:
                // the first requester computes, the rest wait for
                // its bytes.  Two identical requests in this very
                // batch coalesce the same way -- the first one
                // registers, the second parks behind it.
                std::lock_guard<std::mutex> lock(inflight_mtx);
                const auto it = inflight.find(key);
                if (it != inflight.end()) {
                    it->second.push_back(std::move(job));
                    continue;
                }
                inflight.emplace(key, std::vector<Job>{});
            }
            live.push_back(std::move(job));
            keys.push_back(key);
        }
        if (live.empty())
            return;

        if (live.size() > 1) {
            batched.fetch_add(live.size());
            batches.fetch_add(1);
            std::lock_guard<std::mutex> lock(batch_hist_mtx);
            batch_hist.add(live.size());
        }

        // The serve.evaluate fault site fires once per request,
        // before the batch runs, so an armed plan's hit counts stay
        // per-request; a tripped site costs that request alone.
        std::vector<Expected<EvalResult>> results;
        results.reserve(live.size());
        std::vector<const EvalRequest *> surviving;
        std::vector<const CancelToken *> cancels;
        std::vector<std::size_t> survivor_of;
        for (std::size_t k = 0; k < live.size(); ++k) {
            results.emplace_back(
                makeError(Errc::InternalInvariant,
                          "request never evaluated"));
            try {
                VCACHE_FAULT_POINT("serve.evaluate");
            } catch (const VcError &e) {
                results[k] = e.error();
                continue;
            }
            // Arm this request's own deadline watchdog entry.
            WorkerEntry &entry = slot.entries[k];
            entry.token.beginEpoch();
            entry.snapshot.store(entry.token.snapshot(),
                                 std::memory_order_release);
            entry.deadlineNs.store(
                live[k].hasDeadline ? toNs(live[k].deadline) : 0,
                std::memory_order_release);
            surviving.push_back(&live[k].eval);
            cancels.push_back(&entry.token);
            survivor_of.push_back(k);
        }

        if (!surviving.empty()) {
            std::vector<EvalRequest> reqs;
            reqs.reserve(surviving.size());
            for (const EvalRequest *req : surviving)
                reqs.push_back(*req);
            auto evaluated = [&] {
                try {
                    return evaluateBatch(reqs, cancels);
                } catch (const std::exception &e) {
                    const Error err = makeError(
                        Errc::InternalInvariant,
                        std::string("evaluator: ") + e.what());
                    return std::vector<Expected<EvalResult>>(
                        reqs.size(), Expected<EvalResult>(err));
                }
            }();
            for (std::size_t n = 0; n < survivor_of.size(); ++n) {
                slot.entries[survivor_of[n]].deadlineNs.store(
                    0, std::memory_order_release);
                if (n < evaluated.size())
                    results[survivor_of[n]] =
                        std::move(evaluated[n]);
            }
        }

        for (std::size_t k = 0; k < live.size(); ++k) {
            const Job &job = live[k];
            const std::uint64_t key = keys[k];
            const Expected<EvalResult> &result = results[k];

            std::string payload;
            if (result.ok()) {
                payload =
                    renderResultPayload(job.eval, result.value());
                memo_store->insert(key, canonicalEvalRequest(job.eval),
                                   payload);
            }

            std::vector<Job> waiters;
            {
                std::lock_guard<std::mutex> lock(inflight_mtx);
                const auto it = inflight.find(key);
                if (it != inflight.end()) {
                    waiters = std::move(it->second);
                    inflight.erase(it);
                }
            }

            auto respond = [&](const Job &j, bool was_coalesced) {
                if (result.ok()) {
                    eval_ok.fetch_add(1);
                    writeLine(j.conn,
                              renderEvalOk(j.id, key, payload,
                                           /*cached=*/false,
                                           was_coalesced));
                } else {
                    if (result.error().code == Errc::Timeout)
                        deadline_exceeded.fetch_add(1);
                    eval_error.fetch_add(1);
                    writeLine(j.conn,
                              renderError(j.id, result.error()));
                }
            };
            respond(job, false);
            for (const Job &waiter : waiters) {
                coalesced.fetch_add(1);
                respond(waiter, true);
            }
        }
    }

    void
    watchdogLoop(unsigned workers)
    {
        while (!watchdog_stop.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
            const std::int64_t now = toNs(Clock::now());
            for (unsigned i = 0; i < workers; ++i) {
                for (WorkerEntry &entry : slots[i].entries) {
                    const std::int64_t dl = entry.deadlineNs.load(
                        std::memory_order_acquire);
                    if (dl != 0 && now >= dl) {
                        // Epoch-checked: if the worker finished and
                        // moved on between our load and this call,
                        // the stale snapshot makes it a no-op.
                        entry.token.requestCancelIf(
                            entry.snapshot.load(
                                std::memory_order_acquire),
                            CancelToken::Reason::Timeout);
                    }
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Lifecycle: drain, flush, join.
    // -----------------------------------------------------------------

    bool
    drainingRelaxed() const
    {
        std::lock_guard<std::mutex> lock(lifecycle_mtx);
        return drain;
    }

    void
    signalLoop()
    {
        for (;;) {
            {
                std::lock_guard<std::mutex> lock(lifecycle_mtx);
                if (done || drain)
                    return;
            }
            if (g_serve_signal.load(std::memory_order_relaxed)) {
                inform("serve: signal received; draining");
                requestShutdown();
                return;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
    }

    void
    lifecycleLoop()
    {
        {
            std::unique_lock<std::mutex> lock(lifecycle_mtx);
            lifecycle_cv.wait(lock, [this] { return drain; });
        }
        // 1. Stop accepting (wakes a blocked accept()).
        ::shutdown(listen_fd, SHUT_RDWR);
        if (accept_thread.joinable())
            accept_thread.join();
        // 2. Let the workers finish everything already admitted.
        queue_cv.notify_all();
        for (auto &t : worker_threads)
            t.join();
        // 3. Watchdog has nothing left to watch.
        watchdog_stop.store(true, std::memory_order_release);
        if (watchdog_thread.joinable())
            watchdog_thread.join();
        // 4. Persist what we computed.
        if (auto flushed = memo_store->flush(); !flushed.ok())
            warn("serve: memo flush on drain failed: ",
                 flushed.error().message);
        // 5. Hang up on clients; readers unblock and exit.
        std::vector<std::thread> readers;
        {
            std::lock_guard<std::mutex> lock(conns_mtx);
            for (const ConnPtr &conn : conns) {
                conn->dead.store(true, std::memory_order_relaxed);
                ::shutdown(conn->fd, SHUT_RDWR);
            }
            readers.swap(reader_threads);
        }
        for (auto &t : readers)
            t.join();
        {
            std::lock_guard<std::mutex> lock(conns_mtx);
            for (const ConnPtr &conn : conns)
                ::close(conn->fd);
            conns.clear();
        }
        {
            std::lock_guard<std::mutex> lock(lifecycle_mtx);
            done = true;
        }
        done_cv.notify_all();
    }

    friend class EvalServer;

    ServerOptions opts;
    int listen_fd = -1;
    std::uint16_t bound_port = 0;
    std::unique_ptr<MemoStore> memo_store;

    std::unique_ptr<WorkerSlot[]> slots;
    std::vector<std::thread> worker_threads;
    std::thread accept_thread;
    std::thread watchdog_thread;
    std::thread lifecycle_thread;
    std::thread signal_thread;
    std::atomic<bool> watchdog_stop{false};

    mutable std::mutex queue_mtx;
    std::condition_variable queue_cv;
    std::deque<Job> queue;

    std::mutex inflight_mtx;
    std::unordered_map<std::uint64_t, std::vector<Job>> inflight;

    std::mutex conns_mtx;
    std::vector<ConnPtr> conns;
    std::vector<std::thread> reader_threads;

    mutable std::mutex lifecycle_mtx;
    std::condition_variable lifecycle_cv;
    std::condition_variable done_cv;
    bool drain = false;
    bool done = false;

    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> malformed_count{0};
    std::atomic<std::uint64_t> eval_ok{0};
    std::atomic<std::uint64_t> eval_error{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> deadline_exceeded{0};
    std::atomic<std::uint64_t> coalesced{0};
    std::atomic<std::uint64_t> connections{0};
    std::atomic<std::uint64_t> accept_faults{0};
    std::atomic<std::uint64_t> queue_peak{0};
    /** Requests evaluated as part of a multi-request batch. */
    std::atomic<std::uint64_t> batched{0};
    /** Multi-request evaluateBatch calls issued. */
    std::atomic<std::uint64_t> batches{0};
    /** Batch-size distribution (multi-request drains only). */
    mutable std::mutex batch_hist_mtx;
    Log2Histogram batch_hist;
};

EvalServer::EvalServer(std::unique_ptr<Impl> impl)
    : impl(std::move(impl))
{
}

EvalServer::~EvalServer() = default;

Expected<std::unique_ptr<EvalServer>>
EvalServer::start(const ServerOptions &options)
{
    auto impl = std::make_unique<Impl>(options);
    auto started = impl->start();
    if (!started.ok())
        return started.error();
    return std::unique_ptr<EvalServer>(
        new EvalServer(std::move(impl)));
}

std::uint16_t
EvalServer::port() const
{
    return impl->port();
}

void
EvalServer::requestShutdown()
{
    impl->requestShutdown();
}

void
EvalServer::wait()
{
    impl->wait();
}

bool
EvalServer::draining() const
{
    return impl->draining();
}

std::map<std::string, std::uint64_t>
EvalServer::statsSnapshot() const
{
    return impl->statsSnapshot();
}

void
EvalServer::publishStats(ObsRegistry &registry) const
{
    for (const auto &[name, value] : impl->statsSnapshot())
        registry.counter(name, "serve counter (see serve/server.hh)") +=
            value;
    impl->publishBatchHistogram(registry);
}

const MemoStore &
EvalServer::memo() const
{
    return impl->memo();
}

} // namespace vcache::serve
