/**
 * @file
 * A minimal register-register vector instruction set, modelled on the
 * machines of Figures 2/3 (vector registers of MVL double words,
 * strided vector load/store, vector-vector and scalar-vector
 * arithmetic).
 *
 * The functional machine in machine.hh executes these instructions on
 * real data AND emits the corresponding access trace, so timing runs
 * are driven by the same instruction stream that produces verifiable
 * numerical results -- the closest thing to "collecting experimental
 * data" for the paper's machines.
 */

#ifndef VCACHE_VPU_ISA_HH
#define VCACHE_VPU_ISA_HH

#include <cstdint>
#include <string>

#include "util/types.hh"

namespace vcache
{

/** Vector opcodes. */
enum class VOp
{
    /** vd <- memory[base + i*stride], i in [0, vl). */
    LoadV,
    /**
     * vd <- memory[base + i*stride1] while vs1 streams in from
     * memory[base2 + i*stride2]: the paper's double-stream load.
     */
    LoadPairV,
    /** memory[base + i*stride] <- vs1. */
    StoreV,
    /** vd <- vs1 + vs2. */
    AddVV,
    /** vd <- vs1 * vs2. */
    MulVV,
    /** vd <- scalar + vs1. */
    AddSV,
    /** vd <- scalar * vs1. */
    MulSV,
    /** vd <- scalar * vs1 + vs2 (fused multiply-add, SAXPY core). */
    MulAddSV,
    /** scalar <- scalar + sum(vs1): horizontal reduction (dot/norm). */
    SumV,
    /** set the vector length register (<= MVL). */
    SetVl,
    /** load the scalar register with an immediate. */
    LoadS,
    /** load the scalar register from memory[base] (scalar unit). */
    LoadSMem,
    /** memory[base] <- scalar (scalar unit). */
    StoreSMem,
    /** scalar <- 1 / scalar (the scalar divide unit). */
    RecipS,
    /** scalar <- -scalar. */
    NegS,
};

/** One decoded instruction. */
struct VInstr
{
    VOp op;
    /** Destination vector register. */
    unsigned vd = 0;
    /** Source vector registers. */
    unsigned vs1 = 0;
    unsigned vs2 = 0;
    /** Memory operands (LoadV/LoadPairV/StoreV). */
    Addr base = 0;
    std::int64_t stride = 1;
    Addr base2 = 0;
    std::int64_t stride2 = 1;
    /** Immediate for SetVl / LoadS. */
    double imm = 0.0;
};

/** Disassemble one instruction (debugging / program dumps). */
std::string disassemble(const VInstr &instr);

} // namespace vcache

#endif // VCACHE_VPU_ISA_HH
