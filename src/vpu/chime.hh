/**
 * @file
 * Convoy/chime analysis of vector programs (Hennessy & Patterson's
 * first-order vector timing model, the framework Equation (1)'s
 * constants come from).
 *
 * Instructions are packed into *convoys*: groups that could begin
 * execution in the same cycle because they share no functional unit
 * and no register dependence.  The machine modelled here has one
 * load/store unit that serves one memory instruction per convoy
 * (a LoadPairV counts once: the two streams ride the two read buses)
 * and one arithmetic unit.  Each convoy takes one *chime* ~ vl
 * cycles, so a program of c convoys over n elements runs in about
 * c * n cycles plus start-up -- the "B * T_elem" term of Equation (1)
 * with T_elem = chimes per element.
 */

#ifndef VCACHE_VPU_CHIME_HH
#define VCACHE_VPU_CHIME_HH

#include <cstdint>
#include <vector>

#include "vpu/program.hh"

namespace vcache
{

/** Result of packing one program into convoys. */
struct ChimeAnalysis
{
    /** Number of convoys (chimes) across the whole program. */
    std::uint64_t convoys = 0;
    /** Total element slots executed (sum of vl per vector instr). */
    std::uint64_t elementOps = 0;
    /** Memory instructions (loads + stores). */
    std::uint64_t memoryOps = 0;
    /** Arithmetic vector instructions. */
    std::uint64_t arithmeticOps = 0;
    /**
     * First-order execution time: sum over convoys of the vector
     * length in force, ignoring start-up (the B * T_elem term).
     */
    std::uint64_t chimeCycles = 0;

    /** Average chimes per vector instruction. */
    double
    chimesPerInstruction() const
    {
        const auto instrs = memoryOps + arithmeticOps;
        return instrs ? static_cast<double>(convoys) /
                            static_cast<double>(instrs)
                      : 0.0;
    }
};

/** Functional-unit complement available to one convoy. */
struct ChimeUnits
{
    /** Concurrent memory (load/store) pipes. */
    unsigned memory = 1;
    /** Concurrent arithmetic pipes. */
    unsigned arithmetic = 1;
};

/**
 * Pack a program into convoys and estimate its chime time.
 *
 * @param program the instruction sequence (SetVl instructions are
 *                honoured; the initial vector length is `mvl`)
 * @param mvl the machine's maximum vector length
 * @param units functional units available per convoy (default: the
 *              paper's one load/store pipe and one arithmetic pipe)
 */
ChimeAnalysis analyzeChimes(const VectorProgram &program,
                            std::uint64_t mvl,
                            const ChimeUnits &units = {});

} // namespace vcache

#endif // VCACHE_VPU_CHIME_HH
