/**
 * @file
 * Functional vector machine: executes VectorPrograms on real data and
 * records the access trace the timing simulators replay.
 *
 * Numerics and timing come from the *same* instruction stream: run()
 * computes the answers (verifiable against scalar references) while
 * building a Trace; feed that trace to MmSimulator / CcSimulator for
 * cycle counts on any of the paper's machines.
 */

#ifndef VCACHE_VPU_MACHINE_HH
#define VCACHE_VPU_MACHINE_HH

#include <cstdint>
#include <vector>

#include "trace/access.hh"
#include "vpu/program.hh"

namespace vcache
{

/** Architectural state plus flat word-addressed data memory. */
class VectorMachine
{
  public:
    /**
     * @param mvl maximum vector length (words per vector register)
     * @param memory_words size of the data memory
     * @param vector_registers register-file size (the paper's
     *        machines have "a set of vector registers")
     */
    VectorMachine(std::uint64_t mvl, std::uint64_t memory_words,
                  unsigned vector_registers = 8);

    /** Execute a whole program; trace records are appended. */
    void run(const VectorProgram &program);

    // --- memory access for setup and verification ----------------
    double readMem(Addr addr) const;
    void writeMem(Addr addr, double value);
    std::uint64_t memoryWords() const { return memory.size(); }

    // --- architectural state --------------------------------------
    std::uint64_t maxVectorLength() const { return mvl; }
    std::uint64_t vectorLength() const { return vl; }
    double scalarRegister() const { return scalar; }
    const std::vector<double> &vectorRegister(unsigned index) const;

    // --- trace ----------------------------------------------------
    const Trace &trace() const { return trace_; }
    void clearTrace() { trace_.clear(); }

    /**
     * Whether scalar-unit loads (LoadSMem) appear in the vector
     * trace.  Off by default: the paper's machines give scalar data
     * its own cache ("we assume that scalar data have a separate
     * cache", Section 2), so scalar traffic does not occupy the
     * vector cache or its buses.
     */
    void traceScalarLoads(bool enable) { traceScalar = enable; }

    /** Scalar-unit loads executed (whether traced or not). */
    std::uint64_t scalarLoads() const { return scalarLoadCount; }

    /** Executed instruction count (SetVl/LoadS included). */
    std::uint64_t instructionsExecuted() const { return executed; }

  private:
    void exec(const VInstr &instr);
    std::vector<double> &vreg(unsigned index);
    void checkRange(Addr base, std::int64_t stride,
                    std::uint64_t n) const;

    std::uint64_t mvl;
    std::uint64_t vl;
    double scalar = 0.0;
    std::vector<std::vector<double>> vregs;
    std::vector<double> memory;
    Trace trace_;
    std::uint64_t executed = 0;
    bool traceScalar = false;
    std::uint64_t scalarLoadCount = 0;
};

} // namespace vcache

#endif // VCACHE_VPU_MACHINE_HH
