#include "vpu/machine.hh"

#include "util/logging.hh"

namespace vcache
{

VectorMachine::VectorMachine(std::uint64_t mvl_value,
                             std::uint64_t memory_words,
                             unsigned vector_registers)
    : mvl(mvl_value), vl(mvl_value),
      vregs(vector_registers, std::vector<double>(mvl_value, 0.0)),
      memory(memory_words, 0.0)
{
    vc_assert(mvl >= 1, "MVL must be at least 1");
    vc_assert(vector_registers >= 1, "need at least one register");
}

double
VectorMachine::readMem(Addr addr) const
{
    vc_assert(addr < memory.size(), "memory read out of range: ",
              addr, " >= ", memory.size());
    return memory[addr];
}

void
VectorMachine::writeMem(Addr addr, double value)
{
    vc_assert(addr < memory.size(), "memory write out of range: ",
              addr, " >= ", memory.size());
    memory[addr] = value;
}

const std::vector<double> &
VectorMachine::vectorRegister(unsigned index) const
{
    vc_assert(index < vregs.size(), "vector register v", index,
              " does not exist");
    return vregs[index];
}

std::vector<double> &
VectorMachine::vreg(unsigned index)
{
    vc_assert(index < vregs.size(), "vector register v", index,
              " does not exist");
    return vregs[index];
}

void
VectorMachine::checkRange(Addr base, std::int64_t stride,
                          std::uint64_t n) const
{
    if (n == 0)
        return;
    const auto last = static_cast<std::int64_t>(base) +
                      stride * static_cast<std::int64_t>(n - 1);
    vc_assert(base < memory.size() && last >= 0 &&
              static_cast<std::uint64_t>(last) < memory.size(),
              "vector access [", base, " stride ", stride, " x ", n,
              "] leaves the ", memory.size(), "-word memory");
}

void
VectorMachine::run(const VectorProgram &program)
{
    for (const auto &instr : program.code())
        exec(instr);
}

void
VectorMachine::exec(const VInstr &i)
{
    ++executed;
    switch (i.op) {
      case VOp::SetVl: {
        const auto requested = static_cast<std::uint64_t>(i.imm);
        vc_assert(requested >= 1 && requested <= mvl,
                  "setvl ", requested, " outside [1, ", mvl, "]");
        vl = requested;
        return;
      }
      case VOp::LoadS:
        scalar = i.imm;
        return;
      case VOp::LoadSMem: {
        scalar = readMem(i.base);
        ++scalarLoadCount;
        if (traceScalar) {
            VectorOp op;
            op.first = VectorRef{i.base, 1, 1};
            trace_.push_back(op);
        }
        return;
      }
      case VOp::LoadV: {
        checkRange(i.base, i.stride, vl);
        auto &dst = vreg(i.vd);
        const VectorRef ref{i.base, i.stride, vl};
        for (std::uint64_t e = 0; e < vl; ++e)
            dst[e] = memory[ref.element(e)];
        VectorOp op;
        op.first = ref;
        trace_.push_back(op);
        return;
      }
      case VOp::LoadPairV: {
        checkRange(i.base, i.stride, vl);
        checkRange(i.base2, i.stride2, vl);
        auto &dst = vreg(i.vd);
        auto &dst2 = vreg(i.vs1);
        const VectorRef ref{i.base, i.stride, vl};
        const VectorRef ref2{i.base2, i.stride2, vl};
        for (std::uint64_t e = 0; e < vl; ++e) {
            dst[e] = memory[ref.element(e)];
            dst2[e] = memory[ref2.element(e)];
        }
        VectorOp op;
        op.first = ref;
        op.second = ref2;
        trace_.push_back(op);
        return;
      }
      case VOp::StoreV: {
        checkRange(i.base, i.stride, vl);
        const auto &src = vreg(i.vs1);
        const VectorRef ref{i.base, i.stride, vl};
        for (std::uint64_t e = 0; e < vl; ++e)
            memory[ref.element(e)] = src[e];
        // Stores ride the write bus alongside the producing op when
        // possible (the paper's write-buffer assumption).
        if (!trace_.empty() && !trace_.back().store) {
            trace_.back().store = ref;
        } else {
            VectorOp op;
            op.first = VectorRef{ref.base, ref.stride, 0};
            op.store = ref;
            trace_.push_back(op);
        }
        return;
      }
      case VOp::AddVV: {
        auto &dst = vreg(i.vd);
        const auto &a = vreg(i.vs1);
        const auto &b = vreg(i.vs2);
        for (std::uint64_t e = 0; e < vl; ++e)
            dst[e] = a[e] + b[e];
        return;
      }
      case VOp::MulVV: {
        auto &dst = vreg(i.vd);
        const auto &a = vreg(i.vs1);
        const auto &b = vreg(i.vs2);
        for (std::uint64_t e = 0; e < vl; ++e)
            dst[e] = a[e] * b[e];
        return;
      }
      case VOp::AddSV: {
        auto &dst = vreg(i.vd);
        const auto &a = vreg(i.vs1);
        for (std::uint64_t e = 0; e < vl; ++e)
            dst[e] = scalar + a[e];
        return;
      }
      case VOp::MulSV: {
        auto &dst = vreg(i.vd);
        const auto &a = vreg(i.vs1);
        for (std::uint64_t e = 0; e < vl; ++e)
            dst[e] = scalar * a[e];
        return;
      }
      case VOp::MulAddSV: {
        auto &dst = vreg(i.vd);
        const auto &a = vreg(i.vs1);
        const auto &b = vreg(i.vs2);
        for (std::uint64_t e = 0; e < vl; ++e)
            dst[e] = scalar * a[e] + b[e];
        return;
      }
      case VOp::SumV: {
        const auto &a = vreg(i.vs1);
        for (std::uint64_t e = 0; e < vl; ++e)
            scalar += a[e];
        return;
      }
      case VOp::StoreSMem: {
        writeMem(i.base, scalar);
        ++scalarLoadCount;
        if (traceScalar) {
            VectorOp op;
            op.first = VectorRef{i.base, 1, 0};
            op.store = VectorRef{i.base, 1, 1};
            trace_.push_back(op);
        }
        return;
      }
      case VOp::RecipS:
        vc_assert(scalar != 0.0, "scalar reciprocal of zero");
        scalar = 1.0 / scalar;
        return;
      case VOp::NegS:
        scalar = -scalar;
        return;
    }
    vc_panic("unknown vector opcode");
}

} // namespace vcache
