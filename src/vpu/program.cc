#include "vpu/program.hh"

#include <algorithm>
#include <sstream>

#include "util/logging.hh"

namespace vcache
{

std::string
disassemble(const VInstr &i)
{
    std::ostringstream os;
    switch (i.op) {
      case VOp::LoadV:
        os << "vload   v" << i.vd << ", [" << i.base << " +"
           << i.stride << "]";
        break;
      case VOp::LoadPairV:
        os << "vloadp  v" << i.vd << ", [" << i.base << " +"
           << i.stride << "], v" << i.vs1 << ", [" << i.base2 << " +"
           << i.stride2 << "]";
        break;
      case VOp::StoreV:
        os << "vstore  v" << i.vs1 << ", [" << i.base << " +"
           << i.stride << "]";
        break;
      case VOp::AddVV:
        os << "vadd    v" << i.vd << ", v" << i.vs1 << ", v" << i.vs2;
        break;
      case VOp::MulVV:
        os << "vmul    v" << i.vd << ", v" << i.vs1 << ", v" << i.vs2;
        break;
      case VOp::AddSV:
        os << "vadds   v" << i.vd << ", s, v" << i.vs1;
        break;
      case VOp::MulSV:
        os << "vmuls   v" << i.vd << ", s, v" << i.vs1;
        break;
      case VOp::MulAddSV:
        os << "vmadds  v" << i.vd << ", s, v" << i.vs1 << ", v"
           << i.vs2;
        break;
      case VOp::SumV:
        os << "vsum    s, v" << i.vs1;
        break;
      case VOp::SetVl:
        os << "setvl   " << static_cast<std::uint64_t>(i.imm);
        break;
      case VOp::LoadS:
        os << "loads   " << i.imm;
        break;
      case VOp::LoadSMem:
        os << "loadsm  [" << i.base << "]";
        break;
      case VOp::StoreSMem:
        os << "storesm [" << i.base << "]";
        break;
      case VOp::RecipS:
        os << "recips";
        break;
      case VOp::NegS:
        os << "negs";
        break;
    }
    return os.str();
}

void
VectorProgram::setVl(std::uint64_t vl)
{
    VInstr i{};
    i.op = VOp::SetVl;
    i.imm = static_cast<double>(vl);
    push(i);
}

void
VectorProgram::loadScalar(double value)
{
    VInstr i{};
    i.op = VOp::LoadS;
    i.imm = value;
    push(i);
}

void
VectorProgram::loadScalarFromMem(Addr base)
{
    VInstr i{};
    i.op = VOp::LoadSMem;
    i.base = base;
    push(i);
}

void
VectorProgram::storeScalarToMem(Addr base)
{
    VInstr i{};
    i.op = VOp::StoreSMem;
    i.base = base;
    push(i);
}

void
VectorProgram::recipScalar()
{
    VInstr i{};
    i.op = VOp::RecipS;
    push(i);
}

void
VectorProgram::negScalar()
{
    VInstr i{};
    i.op = VOp::NegS;
    push(i);
}

void
VectorProgram::loadV(unsigned vd, Addr base, std::int64_t stride)
{
    VInstr i{};
    i.op = VOp::LoadV;
    i.vd = vd;
    i.base = base;
    i.stride = stride;
    push(i);
}

void
VectorProgram::loadPairV(unsigned vd, Addr base, std::int64_t stride,
                         unsigned vs1, Addr base2,
                         std::int64_t stride2)
{
    VInstr i{};
    i.op = VOp::LoadPairV;
    i.vd = vd;
    i.vs1 = vs1;
    i.base = base;
    i.stride = stride;
    i.base2 = base2;
    i.stride2 = stride2;
    push(i);
}

void
VectorProgram::storeV(unsigned vs, Addr base, std::int64_t stride)
{
    VInstr i{};
    i.op = VOp::StoreV;
    i.vs1 = vs;
    i.base = base;
    i.stride = stride;
    push(i);
}

namespace
{

VInstr
arith(VOp op, unsigned vd, unsigned vs1, unsigned vs2 = 0)
{
    VInstr i{};
    i.op = op;
    i.vd = vd;
    i.vs1 = vs1;
    i.vs2 = vs2;
    return i;
}

} // namespace

void
VectorProgram::addVV(unsigned vd, unsigned vs1, unsigned vs2)
{
    push(arith(VOp::AddVV, vd, vs1, vs2));
}

void
VectorProgram::mulVV(unsigned vd, unsigned vs1, unsigned vs2)
{
    push(arith(VOp::MulVV, vd, vs1, vs2));
}

void
VectorProgram::addSV(unsigned vd, unsigned vs1)
{
    push(arith(VOp::AddSV, vd, vs1));
}

void
VectorProgram::mulSV(unsigned vd, unsigned vs1)
{
    push(arith(VOp::MulSV, vd, vs1));
}

void
VectorProgram::mulAddSV(unsigned vd, unsigned vs1, unsigned vs2)
{
    push(arith(VOp::MulAddSV, vd, vs1, vs2));
}

void
VectorProgram::sumV(unsigned vs1)
{
    push(arith(VOp::SumV, 0, vs1));
}

std::string
VectorProgram::disassemble() const
{
    std::ostringstream os;
    for (const auto &i : code_)
        os << vcache::disassemble(i) << "\n";
    return os.str();
}

void
emitSaxpy(VectorProgram &prog, std::uint64_t mvl, double a,
          Addr x_base, std::int64_t x_stride, Addr y_base,
          std::int64_t y_stride, std::uint64_t n)
{
    vc_assert(mvl >= 1, "MVL must be positive");
    prog.loadScalar(a);
    for (std::uint64_t done = 0; done < n; done += mvl) {
        const std::uint64_t vl = std::min(mvl, n - done);
        prog.setVl(vl);
        const Addr xb = static_cast<Addr>(
            static_cast<std::int64_t>(x_base) +
            x_stride * static_cast<std::int64_t>(done));
        const Addr yb = static_cast<Addr>(
            static_cast<std::int64_t>(y_base) +
            y_stride * static_cast<std::int64_t>(done));
        // v0 <- x, v1 <- y as one double-stream load.
        prog.loadPairV(0, xb, x_stride, 1, yb, y_stride);
        // v2 <- a*x + y.
        prog.mulAddSV(2, 0, 1);
        prog.storeV(2, yb, y_stride);
    }
}

void
emitDot(VectorProgram &prog, std::uint64_t mvl, Addr x_base,
        std::int64_t x_stride, Addr y_base, std::int64_t y_stride,
        std::uint64_t n)
{
    vc_assert(mvl >= 1, "MVL must be positive");
    prog.loadScalar(0.0);
    for (std::uint64_t done = 0; done < n; done += mvl) {
        const std::uint64_t vl = std::min(mvl, n - done);
        prog.setVl(vl);
        const Addr xb = static_cast<Addr>(
            static_cast<std::int64_t>(x_base) +
            x_stride * static_cast<std::int64_t>(done));
        const Addr yb = static_cast<Addr>(
            static_cast<std::int64_t>(y_base) +
            y_stride * static_cast<std::int64_t>(done));
        prog.loadPairV(0, xb, x_stride, 1, yb, y_stride);
        prog.mulVV(2, 0, 1);
        prog.sumV(2); // scalar accumulates across strips
    }
}

void
emitLuFactor(VectorProgram &prog, std::uint64_t mvl, Addr base,
             std::uint64_t n, std::uint64_t lda)
{
    vc_assert(n >= 1 && lda >= n, "need n >= 1 and lda >= n");
    vc_assert(mvl >= 1, "MVL must be positive");

    auto elem = [&](std::uint64_t row, std::uint64_t col) {
        return base + row + col * lda;
    };

    // Strip-mined op over the column segment rows [k+1, n) of `col`.
    auto for_strips = [&](std::uint64_t k, auto &&body) {
        const std::uint64_t len = n - (k + 1);
        for (std::uint64_t done = 0; done < len; done += mvl) {
            const std::uint64_t vl = std::min(mvl, len - done);
            prog.setVl(vl);
            body(k + 1 + done);
        }
    };

    for (std::uint64_t k = 0; k + 1 < n; ++k) {
        // Multipliers: column k below the pivot, scaled by 1/pivot.
        prog.loadScalarFromMem(elem(k, k));
        prog.recipScalar();
        for_strips(k, [&](std::uint64_t row0) {
            prog.loadV(0, elem(row0, k), 1);
            prog.mulSV(1, 0);
            prog.storeV(1, elem(row0, k), 1);
        });

        // Trailing update: col_j -= A[k, j] * col_k for j > k.
        for (std::uint64_t j = k + 1; j < n; ++j) {
            prog.loadScalarFromMem(elem(k, j));
            prog.negScalar();
            for_strips(k, [&](std::uint64_t row0) {
                prog.loadPairV(0, elem(row0, k), 1, 1,
                               elem(row0, j), 1);
                prog.mulAddSV(2, 0, 1); // -A[k,j]*L(:,k) + A(:,j)
                prog.storeV(2, elem(row0, j), 1);
            });
        }
    }
}

void
emitForwardSolveUnitLower(VectorProgram &prog, std::uint64_t mvl,
                          Addr matrix, std::uint64_t n,
                          std::uint64_t lda, Addr rhs)
{
    vc_assert(n >= 1 && lda >= n, "need n >= 1 and lda >= n");
    auto elem = [&](std::uint64_t row, std::uint64_t col) {
        return matrix + row + col * lda;
    };

    for (std::uint64_t k = 0; k + 1 < n; ++k) {
        // y[k] is already final (unit diagonal); eliminate it from
        // the rows below: b[i] -= L[i, k] * y[k].
        prog.loadScalarFromMem(rhs + k);
        prog.negScalar();
        const std::uint64_t len = n - (k + 1);
        for (std::uint64_t done = 0; done < len; done += mvl) {
            const std::uint64_t vl = std::min(mvl, len - done);
            prog.setVl(vl);
            const std::uint64_t row0 = k + 1 + done;
            prog.loadPairV(0, elem(row0, k), 1, 1, rhs + row0, 1);
            prog.mulAddSV(2, 0, 1); // -y[k]*L(:,k) + b
            prog.storeV(2, rhs + row0, 1);
        }
    }
}

void
emitBackSolveUpper(VectorProgram &prog, std::uint64_t mvl, Addr matrix,
                   std::uint64_t n, std::uint64_t lda, Addr rhs)
{
    vc_assert(n >= 1 && lda >= n, "need n >= 1 and lda >= n");
    auto elem = [&](std::uint64_t row, std::uint64_t col) {
        return matrix + row + col * lda;
    };

    for (std::uint64_t kk = n; kk-- > 0;) {
        // x[k] = b[k] / U[k, k]: the scalar unit holds 1/U[k,k] and
        // a one-element vector op applies it to b[k].
        prog.loadScalarFromMem(elem(kk, kk));
        prog.recipScalar();
        prog.setVl(1);
        prog.loadV(0, rhs + kk, 1);
        prog.mulSV(1, 0);
        prog.storeV(1, rhs + kk, 1);

        if (kk == 0)
            break;
        // Eliminate x[k] from the rows above.
        prog.loadScalarFromMem(rhs + kk);
        prog.negScalar();
        for (std::uint64_t done = 0; done < kk; done += mvl) {
            const std::uint64_t vl = std::min(mvl, kk - done);
            prog.setVl(vl);
            prog.loadPairV(0, elem(done, kk), 1, 1, rhs + done, 1);
            prog.mulAddSV(2, 0, 1); // -x[k]*U(:,k) + b
            prog.storeV(2, rhs + done, 1);
        }
    }
}

void
emitBlockedMatmul(VectorProgram &prog, std::uint64_t mvl, Addr a_base,
                  Addr b_base, Addr c_base, std::uint64_t n,
                  std::uint64_t b)
{
    vc_assert(b >= 1 && n % b == 0, "block must divide n");
    vc_assert(b <= mvl, "block column must fit one vector register");

    const std::uint64_t blocks = n / b;
    prog.setVl(b);

    // C(I,J) += A(I,K) * B(K,J), one column of C at a time, with the
    // inner product over the K block expressed column-wise (the
    // classic vectorised GAXPY): c_col += A(:,k) * b[k].  A-block
    // columns are re-read every (j, k) step -- reuse is exactly what
    // the vector cache must provide -- and the scalar operand b[k]
    // goes through the scalar unit.
    for (std::uint64_t bj = 0; bj < blocks; ++bj) {
        for (std::uint64_t bi = 0; bi < blocks; ++bi) {
            for (std::uint64_t bk = 0; bk < blocks; ++bk) {
                for (std::uint64_t j = 0; j < b; ++j) {
                    const Addr c_col =
                        c_base + bi * b + (bj * b + j) * n;
                    // v1 <- C column (accumulator).
                    prog.loadV(1, c_col, 1);
                    for (std::uint64_t k = 0; k < b; ++k) {
                        const Addr a_col =
                            a_base + bi * b + (bk * b + k) * n;
                        const Addr b_elem =
                            b_base + (bk * b + k) + (bj * b + j) * n;
                        prog.loadScalarFromMem(b_elem);
                        prog.loadV(0, a_col, 1);
                        // v1 <- s * v0 + v1.
                        prog.mulAddSV(1, 0, 1);
                    }
                    prog.storeV(1, c_col, 1);
                }
            }
        }
    }
}

} // namespace vcache
