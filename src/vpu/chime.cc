#include "vpu/chime.hh"

#include "util/logging.hh"

namespace vcache
{

namespace
{

/** Resources and register sets one convoy has committed. */
struct ConvoyState
{
    unsigned memoryUsed = 0;
    unsigned arithUsed = 0;
    /** Vector registers written by instructions in this convoy. */
    std::uint64_t writtenMask = 0;

    void
    clear()
    {
        memoryUsed = 0;
        arithUsed = 0;
        writtenMask = 0;
    }
};

bool
isMemory(VOp op)
{
    return op == VOp::LoadV || op == VOp::LoadPairV ||
           op == VOp::StoreV || op == VOp::LoadSMem ||
           op == VOp::StoreSMem;
}

bool
isArithmetic(VOp op)
{
    return op == VOp::AddVV || op == VOp::MulVV || op == VOp::AddSV ||
           op == VOp::MulSV || op == VOp::MulAddSV ||
           op == VOp::SumV;
}

/** Vector registers an instruction reads, as a bit mask. */
std::uint64_t
readMask(const VInstr &i)
{
    switch (i.op) {
      case VOp::StoreV:
        return std::uint64_t{1} << i.vs1;
      case VOp::AddVV:
      case VOp::MulVV:
      case VOp::MulAddSV:
        return (std::uint64_t{1} << i.vs1) |
               (std::uint64_t{1} << i.vs2);
      case VOp::AddSV:
      case VOp::MulSV:
      case VOp::SumV:
        return std::uint64_t{1} << i.vs1;
      default:
        return 0;
    }
}

/** Vector registers an instruction writes, as a bit mask. */
std::uint64_t
writeMask(const VInstr &i)
{
    switch (i.op) {
      case VOp::LoadV:
        return std::uint64_t{1} << i.vd;
      case VOp::LoadPairV:
        return (std::uint64_t{1} << i.vd) |
               (std::uint64_t{1} << i.vs1);
      case VOp::AddVV:
      case VOp::MulVV:
      case VOp::AddSV:
      case VOp::MulSV:
      case VOp::MulAddSV:
        return std::uint64_t{1} << i.vd;
      default:
        return 0;
    }
}

} // namespace

ChimeAnalysis
analyzeChimes(const VectorProgram &program, std::uint64_t mvl,
              const ChimeUnits &units)
{
    vc_assert(mvl >= 1, "MVL must be positive");
    vc_assert(units.memory >= 1 && units.arithmetic >= 1,
              "need at least one unit of each kind");

    ChimeAnalysis result;
    ConvoyState convoy;
    bool convoy_open = false;
    std::uint64_t vl = mvl;

    auto close_convoy = [&](std::uint64_t length) {
        if (!convoy_open)
            return;
        ++result.convoys;
        result.chimeCycles += length;
        convoy.clear();
        convoy_open = false;
    };

    std::uint64_t convoy_vl = mvl;
    for (const auto &i : program.code()) {
        if (i.op == VOp::SetVl) {
            vl = static_cast<std::uint64_t>(i.imm);
            continue;
        }
        if (i.op == VOp::LoadS || i.op == VOp::RecipS ||
            i.op == VOp::NegS) {
            continue; // scalar-unit register ops: no vector convoy
        }

        const bool mem = isMemory(i.op);
        const bool arith = isArithmetic(i.op);
        if (mem)
            ++result.memoryOps;
        if (arith)
            ++result.arithmeticOps;
        const std::uint64_t effective_vl =
            i.op == VOp::LoadSMem || i.op == VOp::StoreSMem ? 1 : vl;
        result.elementOps += effective_vl;

        // Structural hazard: limited memory and arithmetic pipes.
        // Data hazard: no reading a register written in this convoy
        // (chaining is not modelled at this level).
        const bool structural =
            (mem && convoy.memoryUsed >= units.memory) ||
            (arith && convoy.arithUsed >= units.arithmetic);
        const bool data = (readMask(i) & convoy.writtenMask) != 0;
        if (convoy_open && (structural || data))
            close_convoy(convoy_vl);

        if (!convoy_open) {
            convoy_open = true;
            convoy_vl = effective_vl;
        } else {
            convoy_vl = std::max(convoy_vl, effective_vl);
        }
        convoy.memoryUsed += mem;
        convoy.arithUsed += arith;
        convoy.writtenMask |= writeMask(i);
    }
    close_convoy(convoy_vl);
    return result;
}

} // namespace vcache
