/**
 * @file
 * Vector programs: instruction sequences with builder helpers that
 * handle strip-mining (splitting arbitrary-length vector work into
 * MVL-sized strips, Equation (1)'s inner loops).
 */

#ifndef VCACHE_VPU_PROGRAM_HH
#define VCACHE_VPU_PROGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "vpu/isa.hh"

namespace vcache
{

/** An executable sequence of vector instructions. */
class VectorProgram
{
  public:
    /** Raw instruction append. */
    void push(const VInstr &instr) { code_.push_back(instr); }

    // Convenience emitters (one instruction each).
    void setVl(std::uint64_t vl);
    void loadScalar(double value);
    void loadScalarFromMem(Addr base);
    void storeScalarToMem(Addr base);
    void recipScalar();
    void negScalar();
    void loadV(unsigned vd, Addr base, std::int64_t stride);
    void loadPairV(unsigned vd, Addr base, std::int64_t stride,
                   unsigned vs1, Addr base2, std::int64_t stride2);
    void storeV(unsigned vs, Addr base, std::int64_t stride);
    void addVV(unsigned vd, unsigned vs1, unsigned vs2);
    void mulVV(unsigned vd, unsigned vs1, unsigned vs2);
    void addSV(unsigned vd, unsigned vs1);
    void mulSV(unsigned vd, unsigned vs1);
    void mulAddSV(unsigned vd, unsigned vs1, unsigned vs2);
    void sumV(unsigned vs1);

    const std::vector<VInstr> &code() const { return code_; }
    std::size_t size() const { return code_.size(); }

    /** Multi-line disassembly. */
    std::string disassemble() const;

  private:
    std::vector<VInstr> code_;
};

/**
 * Emit a strip-mined SAXPY: y[i] = a * x[i] + y[i] for n elements,
 * with the given strides.  Each strip loads x and y as a double
 * stream, fuses the multiply-add, and stores y.
 */
void emitSaxpy(VectorProgram &prog, std::uint64_t mvl, double a,
               Addr x_base, std::int64_t x_stride, Addr y_base,
               std::int64_t y_stride, std::uint64_t n);

/**
 * Emit a strip-mined dot product: leaves sum(x[i] * y[i]) for n
 * elements in the scalar register.  Per strip: a double-stream load,
 * a vector multiply, and a horizontal reduction.
 */
void emitDot(VectorProgram &prog, std::uint64_t mvl, Addr x_base,
             std::int64_t x_stride, Addr y_base,
             std::int64_t y_stride, std::uint64_t n);

/**
 * Emit an in-place right-looking LU factorisation (no pivoting) of a
 * column-major n x n matrix: on completion the strict lower triangle
 * holds L (unit diagonal implicit) and the upper triangle holds U.
 * Column segments are strip-mined; the pivot reciprocal and the
 * update multipliers flow through the scalar unit (LoadSMem /
 * RecipS / NegS).  The caller must ensure the matrix needs no
 * pivoting (e.g. diagonally dominant).
 */
void emitLuFactor(VectorProgram &prog, std::uint64_t mvl, Addr base,
                  std::uint64_t n, std::uint64_t lda);

/**
 * Emit a forward substitution with the unit lower triangle of a
 * factored matrix (as left by emitLuFactor): solves L y = b in
 * place, overwriting b with y.  Column-oriented: once y[k] is final,
 * the remaining right-hand side is updated with column k of L.
 */
void emitForwardSolveUnitLower(VectorProgram &prog, std::uint64_t mvl,
                               Addr matrix, std::uint64_t n,
                               std::uint64_t lda, Addr rhs);

/**
 * Emit a back substitution with the upper triangle of a factored
 * matrix: solves U x = y in place, overwriting the right-hand side
 * with x.
 */
void emitBackSolveUpper(VectorProgram &prog, std::uint64_t mvl,
                        Addr matrix, std::uint64_t n,
                        std::uint64_t lda, Addr rhs);

/**
 * Emit a blocked matrix multiply C += A * B for column-major n x n
 * matrices with b x b blocks (b <= MVL), the Section 3.1 flagship
 * workload: per block-column update, the A-block column is reused
 * while B/C columns stream.
 */
void emitBlockedMatmul(VectorProgram &prog, std::uint64_t mvl,
                       Addr a_base, Addr b_base, Addr c_base,
                       std::uint64_t n, std::uint64_t b);

} // namespace vcache

#endif // VCACHE_VPU_PROGRAM_HH
