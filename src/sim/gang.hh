/**
 * @file
 * Shared-trace gang simulation: one functional pass over a workload
 * feeds many CC-machine timing lanes at once.
 *
 * Every figure in the paper sweeps many cache organizations over the
 * *same* workload, and for lanes that differ only in the memory time
 * t_m the expensive half of a CC run is completely shared: with
 * prefetching off, no observer attached and blocking misses (the
 * paper's model), the cache never reads the clock, so the functional
 * stream -- probe outcomes, evictions, the compulsory first-touch
 * set, LRU/recency updates -- is identical for every t_m.  What
 * differs per lane is pure timing arithmetic:
 *
 *   - hit:              clock += 1
 *   - blocking miss:    clock += 1 + t_m, stall += t_m
 *   - strip start-up:   clock += T_start(t_m) (warm strips credit t_m
 *                       back, Equation (4))
 *   - compulsory miss:  a bus grant + bank issue against the lane's
 *                       own clock (the only place absolute time
 *                       enters)
 *   - store drain:      a write-bus reservation at the lane's clock
 *
 * The gang runner walks the op stream once, probing one shared cache,
 * and accumulates the shared events (ops, strips, hits, blocking
 * misses) as plain counts.  Lane clocks only materialize at the rare
 * clock-coupled events -- compulsory misses and stores -- where the
 * pending counts are flushed into every lane and each lane's own
 * BusSet / InterleavedMemory replica is driven exactly as the
 * element-wise simulator would drive it.  Each lane's SimResult is
 * therefore bit-identical to a solo CcSimulator run of that t_m
 * (Auto, Scalar and the gang all pin to the same element-wise
 * semantics; tests/sim/gang_test.cc holds the line), at roughly the
 * cost of one run instead of N.
 *
 * Restrictions (callers fall back to per-lane simulation otherwise):
 * no prefetching, no observer, blocking misses only -- exactly the
 * configuration evaluatePoint() uses.  The runner is also not a
 * fault-injection boundary: lane bank issues interleave inside one
 * pass, so armed fault plans must use per-point evaluation to keep
 * site hit sequences attributable (the same rule the batched MM
 * engine applies; see sim/evaluate.cc).
 */

#ifndef VCACHE_SIM_GANG_HH
#define VCACHE_SIM_GANG_HH

#include <span>
#include <vector>

#include "analytic/machine.hh"
#include "cache/factory.hh"
#include "sim/cancel.hh"
#include "sim/result.hh"
#include "trace/source.hh"
#include "util/result.hh"

namespace vcache
{

/** One timing lane of a shared-trace gang run. */
struct GangLane
{
    /** Bank busy / memory access time t_m for this lane. */
    std::uint64_t memoryTime = 16;
    /**
     * Optional per-lane cancellation, polled once per vector op like
     * the solo simulator's token.  A tripped lane comes back as
     * Errc::Timeout/Cancelled without disturbing the other lanes.
     */
    const CancelToken *cancel = nullptr;
};

/**
 * Run `source` once against a single cache of `config` geometry and
 * return, for each lane, the SimResult a solo CcSimulator with
 * machine {base with memoryTime = lane.memoryTime} would produce on
 * the same op stream.  `base.memoryTime` itself is ignored.  An empty
 * lane list returns an empty vector without touching the source.
 */
std::vector<Expected<SimResult>>
simulateCcGang(const MachineParams &base, const CacheConfig &config,
               TraceSource &source, std::span<const GangLane> lanes);

/** Scheme convenience: the paper's direct or prime cache. */
std::vector<Expected<SimResult>>
simulateCcGang(const MachineParams &base, CacheScheme scheme,
               TraceSource &source, std::span<const GangLane> lanes);

} // namespace vcache

#endif // VCACHE_SIM_GANG_HH
