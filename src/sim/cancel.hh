/**
 * @file
 * Cooperative cancellation for long-running simulations.
 *
 * A CancelToken is owned by one worker thread and watched by others
 * (the sweep watchdog, a signal drain).  The owner starts a new
 * *epoch* for every unit of work; a watcher cancels the epoch it
 * snapshotted, so a stale deadline can never kill the point that
 * started after the measurement was taken (the classic watchdog
 * race).  Everything lives in one atomic word:
 *
 *   word = (epoch << 2) | reason
 *
 * The simulators poll cancelled() in their outer (per-vector-op)
 * loop -- one relaxed load per vector operation, invisible next to
 * the thousands of element accesses each op performs -- and raise
 * VcError(Timeout|Cancelled) when it trips.
 */

#ifndef VCACHE_SIM_CANCEL_HH
#define VCACHE_SIM_CANCEL_HH

#include <atomic>
#include <cstdint>

#include "util/result.hh"

namespace vcache
{

/** Epoch-tagged cancellation flag; see the file comment. */
class CancelToken
{
  public:
    /** Why the current epoch was cancelled. */
    enum class Reason : std::uint8_t
    {
        None = 0,
        Cancelled = 1,
        Timeout = 2,
    };

    /**
     * Owner only: begin a new unit of work, clearing any pending
     * cancellation and invalidating outstanding snapshots.
     */
    void
    beginEpoch()
    {
        const std::uint64_t w = word.load(std::memory_order_relaxed);
        word.store(((w >> 2) + 1) << 2, std::memory_order_release);
    }

    /** Watcher: opaque state to pass to requestCancelIf later. */
    std::uint64_t
    snapshot() const
    {
        return word.load(std::memory_order_acquire);
    }

    /**
     * Watcher: cancel the epoch captured in `snap`.  Fails (returns
     * false) when the owner has since begun a new epoch or another
     * watcher already cancelled this one.
     */
    bool
    requestCancelIf(std::uint64_t snap, Reason reason)
    {
        if (snap & 3u)
            return false; // that epoch was already cancelled
        return word.compare_exchange_strong(
            snap, snap | static_cast<std::uint64_t>(reason),
            std::memory_order_acq_rel, std::memory_order_relaxed);
    }

    /** Cancel the *current* epoch unconditionally. */
    void
    requestCancel(Reason reason)
    {
        std::uint64_t w = word.load(std::memory_order_relaxed);
        for (;;) {
            if (w & 3u)
                return; // already cancelled
            if (word.compare_exchange_weak(
                    w, w | static_cast<std::uint64_t>(reason),
                    std::memory_order_acq_rel,
                    std::memory_order_relaxed))
                return;
        }
    }

    /** Polled by the simulation loop: is the current epoch cancelled? */
    bool
    cancelled() const
    {
        return (word.load(std::memory_order_relaxed) & 3u) != 0;
    }

    /** Reason of the current epoch's cancellation (None if live). */
    Reason
    reason() const
    {
        return static_cast<Reason>(
            word.load(std::memory_order_acquire) & 3u);
    }

  private:
    std::atomic<std::uint64_t> word{0};
};

/**
 * Raise the structured error for a tripped token: Errc::Timeout for a
 * watchdog deadline, Errc::Cancelled otherwise.  The simulators call
 * this from their polling loop; the sweep's per-point boundary
 * catches it.
 */
[[noreturn]] inline void
throwCancelled(const CancelToken &token)
{
    if (token.reason() == CancelToken::Reason::Timeout)
        throw VcError(makeError(Errc::Timeout,
                                "simulation exceeded the per-point "
                                "deadline"));
    throw VcError(makeError(Errc::Cancelled, "simulation cancelled"));
}

} // namespace vcache

#endif // VCACHE_SIM_CANCEL_HH
