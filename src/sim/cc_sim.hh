/**
 * @file
 * Trace-driven simulator of the CC-model machine (Figure 3): the MM
 * machine plus a vector data cache in front of the banks.
 *
 * Timing follows the paper's assumptions:
 *
 *   - a cache hit sustains one element per cycle;
 *   - a *first-touch* (compulsory) miss is pipelined through the
 *     interleaved banks like an MM-model access (the initial loading
 *     of each block, Equation (1));
 *   - any other miss -- interference or capacity -- stalls the
 *     pipeline for the full t_m memory time ("cache misses may not be
 *     easily pipelined", Section 3.3);
 *   - a strip whose leading element hits starts up t_m cycles faster
 *     (the "- t_m" in Equation (4));
 *   - writes drain through the write bus without stalling.
 *
 * The per-element loop is a member template over the concrete cache
 * type *and* an Observer policy: run() dispatches once per run on the
 * paper's two mapping schemes (direct and prime), whose accesses then
 * compile to direct, inlinable calls, with the virtual interface as
 * the fallback for every other organization.  Every instrumentation
 * hook sits behind `if constexpr (Observer::kEnabled)`, so the
 * NullObserver instantiations (the plain run() overloads) are exactly
 * the uninstrumented loops, while run(source, obs) with a
 * TracingObserver sees every hit, miss, bank conflict, bus wait and
 * prefetch with cycle stamps and set indices.  runVirtual() forces
 * the virtual fallback so tests can pin the fast paths against it.
 *
 * Run batching (SimEngine::Auto, the default for uninstrumented
 * runs): vector workloads repeat the same constant-stride operation
 * over and over, and after the first pass the cache settles into the
 * run's canonical end state, making every later pass a replay with
 * byte-identical deltas.  The batched loop memoizes the last vector
 * op and fast-forwards repeats through two certificate tiers:
 *
 *   - Tier 1 (direct and prime mappings, single stream): the modulo
 *     mapping makes the frame sequence periodic, so probeSteadyRun()
 *     gives the pass's hits/misses/warm-strip interval in closed form
 *     and verifySteadyRun() checks, in O(distinct frames), that the
 *     cache actually holds the canonical state the formula assumes.
 *   - Tier 2 (any organization): serialize everything the run can
 *     consult or mutate (appendRunState()) before and after an
 *     element-wise pass; equal snapshots plus no compulsory misses
 *     plus (no misses at all, or blocking-miss mode, which never
 *     touches buses or banks) prove the pass is a fixed point, so its
 *     measured deltas replay exactly.
 *
 * Extrapolated passes credit result, clock and cache counters in
 * O(strips) or O(1) and re-reserve the write bus live (its wait
 * accounting evolves across passes); everything else is provably
 * unchanged.  Prefetch-enabled runs, instrumented runs and
 * SimEngine::Scalar always take the element-wise loop; equivalence is
 * pinned by tests/sim/batched_test.cc.
 */

#ifndef VCACHE_SIM_CC_SIM_HH
#define VCACHE_SIM_CC_SIM_HH

#include <algorithm>
#include <memory>

#include "analytic/machine.hh"
#include "cache/cache.hh"
#include "cache/direct.hh"
#include "cache/factory.hh"
#include "cache/prefetch.hh"
#include "cache/prime.hh"
#include "memory/bus.hh"
#include "memory/interleaved.hh"
#include "sim/cancel.hh"
#include "sim/engine.hh"
#include "sim/observe.hh"
#include "sim/result.hh"
#include "simd/kernels.hh"
#include "trace/access.hh"
#include "trace/source.hh"
#include "util/flat_hash.hh"

namespace vcache
{

/** Cycle-level CC-model machine with a pluggable cache. */
class CcSimulator
{
  public:
    /**
     * @param params machine parameters (cache geometry comes from
     *               cache_config, which should agree with
     *               params.cacheIndexBits for like-for-like runs)
     * @param cache_config vector-cache configuration
     */
    CcSimulator(const MachineParams &params,
                const CacheConfig &cache_config);

    /** Convenience: direct- or prime-mapped cache per the scheme. */
    CcSimulator(const MachineParams &params, CacheScheme scheme);

    /**
     * Enable hardware prefetching with timing: a prefetch issues
     * through a read bus and its bank, and its line arrives one
     * memory time later.  The vector pipeline absorbs up to t_m
     * cycles of that flight (the same start-up credit the pipelined
     * compulsory loads enjoy), so what remains visible is bank
     * contention -- and, crucially, *interference*: prefetches into
     * frames the demand stream is thrashing evict each other and
     * leave the full t_m miss penalty in place.  That is the paper's
     * argument for removing conflicts (prime mapping) rather than
     * hiding latency (prefetch).
     *
     * @param policy sequential or stride scheme
     * @param degree lines prefetched per trigger
     */
    void enablePrefetch(PrefetchPolicy policy, unsigned degree);

    /**
     * Robustness knob: let interference/capacity misses stream
     * through the banks like the pipelined compulsory loads instead
     * of stalling the full t_m ("cache misses may not be easily
     * pipelined", Section 3.3, is the paper's assumption -- this
     * switch quantifies how much of the prime advantage rests on
     * it).  A lockup-free cache with enough MSHRs would approximate
     * this behaviour.
     */
    void setNonBlockingMisses(bool enable) { nonBlocking = enable; }

    /**
     * Select the execution engine for uninstrumented runs: Auto (the
     * default) fast-forwards provably-steady repeated vector ops in
     * closed form; Scalar forces element-wise replay.  Both produce
     * bit-identical SimResults and cache statistics.  Instrumented
     * runs always replay element-wise regardless.
     */
    void setEngine(SimEngine engine) { engineKind = engine; }
    SimEngine engine() const { return engineKind; }

    /** Run a whole trace from a cold start. */
    SimResult run(const Trace &trace);

    /** Run a streamed workload (no materialized trace needed). */
    SimResult run(TraceSource &source);

    /**
     * Instrumented run: identical timing, every Observer hook fired.
     * The observer must satisfy the contract in src/obs/observer.hh.
     */
    template <typename Observer>
    SimResult run(const Trace &trace, Observer &obs);

    /** Instrumented streamed run. */
    template <typename Observer>
    SimResult run(TraceSource &source, Observer &obs);

    /**
     * Run through the generic virtual-dispatch path regardless of the
     * cache's concrete type.  Exists so equivalence tests can pin the
     * devirtualized fast paths against the reference behaviour; it is
     * not meant for production use.
     */
    SimResult runVirtual(const Trace &trace);

    /** Prefetches issued by the timed prefetcher. */
    std::uint64_t prefetchesIssued() const { return prefetchCount; }

    /**
     * Cooperative cancellation: polled once per vector operation (one
     * relaxed load next to thousands of element accesses).  A tripped
     * token raises VcError(Timeout|Cancelled) out of run().  Null
     * (the default) disables the poll; the token must outlive the
     * simulator or be cleared first.
     */
    void setCancelToken(const CancelToken *token) { cancel = token; }

    /** Reset cache, banks and buses between runs. */
    void reset();

    /**
     * Restore a Cache::captureState() live-point snapshot into this
     * simulator's cache (sampling-engine resume; see sim/sampling.hh).
     * Bank and bus timing state is *not* part of a live-point -- the
     * caller re-warms it with a detailed-warming prefix.
     *
     * @return false on a geometry mismatch (cache unchanged)
     */
    bool
    restoreCacheState(const std::vector<std::uint64_t> &blob)
    {
        return vectorCache->restoreState(blob);
    }

    /**
     * Pre-populate the first-touch set that classifies compulsory
     * misses.  A live-point resume starts from a warmed cache, so the
     * lines the warming pass already brought in must not be counted
     * compulsory again when the measurement window re-misses them.
     */
    void
    seedTouchedLines(const std::vector<Addr> &lines)
    {
        for (Addr line : lines)
            touchedLines.insert(line);
    }

    const Cache &cache() const { return *vectorCache; }
    const MachineParams &params() const { return machine; }

  private:
    /** How far the per-op fast-forward memo has been proven. */
    enum class BatchPhase
    {
        /** No op memoized yet. */
        None,
        /** One full element-wise pass of this op has completed. */
        Armed,
        /** A certificate held; the recorded deltas replay exactly. */
        Verified,
        /** Certification failed repeatedly; replay element-wise. */
        Refused,
    };

    /** Verification attempts before an op is refused for good. */
    static constexpr unsigned kBatchVerifyAttempts = 3;

    /**
     * Fast-forward memo for the most recent vector operation: the op
     * itself (the match key), the certification phase, and -- once
     * Verified -- the per-pass deltas to replay.  `before`/`after`
     * are the tier-2 snapshot scratch buffers, kept here so repeated
     * verification attempts reuse their capacity.
     */
    struct BatchMemo
    {
        VectorOp op;
        BatchPhase phase = BatchPhase::None;
        unsigned attempts = 0;
        /** Per-pass SimResult increments (totalCycles unused). */
        SimResult delta;
        /** Per-pass pipeline-clock advance. */
        Cycles clockDelta = 0;
        /** Per-pass cache-counter increments. */
        CacheStats stats;
        std::vector<std::uint64_t> before;
        std::vector<std::uint64_t> after;
    };

    /** Pick the Prefetching instantiation and run (see runImpl). */
    template <typename CacheT, typename Observer>
    SimResult dispatchRun(CacheT &cache, TraceSource &source,
                          Observer &obs);

    /**
     * The whole-run loop, monomorphized per concrete cache type and,
     * via `Prefetching`, per prefetch mode: a run that starts with no
     * prefetch state and a None policy can never grow any, so its
     * per-element path drops the in-flight and tag-flag checks.
     */
    template <typename CacheT, bool Prefetching, typename Observer>
    SimResult runImpl(CacheT &cache, TraceSource &source, Observer &obs);

    /** One vector op's strip-mined element loop (store excluded). */
    template <typename CacheT, bool Prefetching, typename Observer>
    void stripLoop(CacheT &cache, const VectorOp &op, SimResult &result,
                   Observer &obs);

    /** The run-batched whole-run loop (uninstrumented only). */
    template <typename CacheT, typename Observer>
    SimResult runBatched(CacheT &cache, TraceSource &source,
                         Observer &obs);

    /**
     * Certify an Armed repeat of `op`, trying tier 1 then tier 2 (see
     * the file comment).  Tier 1 certifies without executing the op
     * (the memo turns Verified and the caller applies it); tier 2
     * executes the op element-wise as its measurement pass, so on
     * return from tier 2 the op has already run.
     *
     * @return true when the op still needs applyBatch()
     */
    template <typename CacheT, typename Observer>
    bool attemptVerify(CacheT &cache, const VectorOp &op,
                       BatchMemo &memo, SimResult &result,
                       Observer &obs);

    /**
     * Tier-1 certificate: closed-form steady-state replay for the
     * modulo-mapped (direct/prime) schemes, single stream.
     */
    template <typename CacheT>
    bool trySteadyFastForward(CacheT &cache, const VectorOp &op,
                              BatchMemo &memo);

    /** Serialize all cache state the op's streams can touch. */
    bool appendOpState(const VectorOp &op,
                       std::vector<std::uint64_t> &out) const;

    /** Replay a Verified memo's deltas in O(1). */
    void applyBatch(const BatchMemo &memo, SimResult &result);

    /** Access one element, advancing the pipeline clock. */
    template <typename CacheT, bool Prefetching, typename Observer>
    void accessElement(CacheT &cache, const AddressLayout &layout,
                       Addr addr, SimResult &result, Observer &obs,
                       StreamOperand operand = StreamOperand::First);

    /** Launch the prefetches triggered at `addr` (timed). */
    template <typename CacheT, typename Observer>
    void issuePrefetches(CacheT &cache, const AddressLayout &layout,
                         Addr addr, Observer &obs);

  public:
    /**
     * Gang-probe replay (default on; VCACHE_GANG=off reverts):
     * uninstrumented, prefetch-free strips over a cache whose read
     * hits are inert probe a whole gang of upcoming lines through
     * the dispatched SIMD kernels, bulk-credit all-hit gangs, and
     * drop to the element-at-a-time loop on any miss mask.  Results
     * are bit-identical either way (the probe is side-effect-free);
     * tests/sim pins it.
     */
    void setGangReplay(bool on) { gangReplay = on; }
    bool gangReplayEnabled() const { return gangReplay; }

  private:
    /** Elements probed per gang (split across both streams when
     *  double-stream; simd::kMaxGang bounds the total). */
    static constexpr unsigned kGang = 32;

    MachineParams machine;
    std::unique_ptr<Cache> vectorCache;
    InterleavedMemory memory;
    BusSet buses;
    /** Every line ever brought in (first touch => compulsory). */
    FlatSet<Addr> touchedLines;
    Cycles clock = 0;
    bool nonBlocking = false;
    bool gangReplay = simd::gangReplayDefault();
    SimEngine engineKind = SimEngine::Auto;
    const CancelToken *cancel = nullptr;

    // Timed prefetch state.  The prefetched-but-untouched marks live
    // as kPrefetchedFlag bits on the cache's tag array.
    PrefetchPolicy prefetchPolicy = PrefetchPolicy::None;
    unsigned prefetchDegree = 1;
    std::int64_t streamStride = 1;
    /** Lines prefetched but still in flight: line -> arrival cycle. */
    FlatMap<Addr, Cycles> inFlight;
    std::uint64_t prefetchCount = 0;
};

/** Cache configuration matching the analytic machine and scheme. */
CacheConfig ccCacheConfig(const MachineParams &params,
                          CacheScheme scheme);

template <typename CacheT, typename Observer>
void
CcSimulator::issuePrefetches(CacheT &cache, const AddressLayout &layout,
                             Addr addr, Observer &obs)
{
    const std::int64_t step =
        prefetchPolicy == PrefetchPolicy::Stride
            ? (streamStride == 0 ? 1 : streamStride)
            : static_cast<std::int64_t>(layout.lineWords());

    Addr next = addr;
    for (unsigned d = 0; d < prefetchDegree; ++d) {
        next = static_cast<Addr>(static_cast<std::int64_t>(next) +
                                 step);
        const Addr line = layout.lineAddress(next);
        // One tag probe decides both "already resident?" and the
        // fill; its hit answer replaces the old contains() pre-check.
        if (!fillLine(cache, line))
            continue;
        // The prefetch streams through a read bus and its bank; the
        // data is usable one memory time after issue.
        const Cycles bus = buses.reserveReadObserved(clock, obs);
        const Cycles when = memory.issueObserved(next, bus, obs);
        if constexpr (Observer::kEnabled)
            obs.onPrefetchIssue(clock, line);
        inFlight.insertOrAssign(line, when + machine.memoryTime);
        setFrameFlag(cache, line, Cache::kPrefetchedFlag);
        touchedLines.insert(line);
        ++prefetchCount;
    }
}

template <typename CacheT, bool Prefetching, typename Observer>
VCACHE_ALWAYS_INLINE void
CcSimulator::accessElement(CacheT &cache, const AddressLayout &layout,
                           Addr addr, SimResult &result, Observer &obs,
                           StreamOperand operand)
{
    const Addr line = layout.lineAddress(addr);
    const AccessOutcome outcome = probeLine(cache, line);
    cache.recordAccess(outcome, AccessType::Read);

    if (outcome.hit) {
        ++result.hits;
        clock += 1;
        if constexpr (Observer::kEnabled)
            obs.onHit(clock, line, frameIndexOf(cache, line), operand);
        if constexpr (Prefetching) {
            // A hit on a line still in flight waits for whatever part
            // of the flight the vector pipeline cannot absorb.  The
            // strip start-up (T_start = 30 + t_m) already hides one
            // memory time of an in-order stream -- the same credit
            // the compulsory path gets -- so only bank-contention
            // delays beyond that are exposed.
            if (const Cycles *arrival = inFlight.find(line)) {
                const Cycles visible = clock + machine.memoryTime;
                Cycles late = 0;
                if (*arrival > visible) {
                    late = *arrival - visible;
                    result.stallCycles += late;
                    clock = *arrival - machine.memoryTime;
                }
                if constexpr (Observer::kEnabled)
                    obs.onPrefetchHit(clock, line, late);
                inFlight.erase(line);
            }
            // Tagged retrigger: first demand use of a prefetched line
            // launches the next prefetch.  No flag can be set before
            // the first prefetch issues, so runs without prefetching
            // skip the extra tag probe entirely.
            if (prefetchCount != 0 &&
                clearFrameFlag(cache, line, Cache::kPrefetchedFlag) &&
                prefetchPolicy != PrefetchPolicy::None) {
                issuePrefetches(cache, layout, addr, obs);
            }
        }
        return;
    }

    ++result.misses;
    const bool first_touch = touchedLines.insert(line);
    if (first_touch || nonBlocking) {
        // Compulsory miss (or any miss of a lockup-free cache): part
        // of the pipelined load stream; it flows through bus and
        // banks at streaming rate.
        if (first_touch)
            ++result.compulsoryMisses;
        const Cycles bus = buses.reserveReadObserved(clock, obs);
        const Cycles when = memory.issueObserved(addr, bus, obs);
        if constexpr (Observer::kEnabled)
            obs.onMiss(clock, line, frameIndexOf(cache, line),
                       first_touch ? MissKind::Compulsory
                                   : MissKind::NonBlocking,
                       when - clock, operand);
        result.stallCycles += when - clock;
        clock = when + 1;
    } else {
        // Interference/capacity miss: full memory round trip exposed.
        if constexpr (Observer::kEnabled)
            obs.onMiss(clock, line, frameIndexOf(cache, line),
                       MissKind::Blocking, machine.memoryTime, operand);
        result.stallCycles += machine.memoryTime;
        clock += 1 + machine.memoryTime;
    }
    if constexpr (Observer::kEnabled) {
        if (outcome.evicted)
            obs.onEviction(clock, line, outcome.evictedLine,
                           frameIndexOf(cache, line));
    }
    if constexpr (Prefetching) {
        if (prefetchPolicy != PrefetchPolicy::None)
            issuePrefetches(cache, layout, addr, obs);
    }
}

template <typename CacheT, typename Observer>
SimResult
CcSimulator::dispatchRun(CacheT &cache, TraceSource &source,
                         Observer &obs)
{
    // A run beginning with a None policy and no live prefetch state
    // (no lines in flight, no tag flags -- both imply prefetchCount
    // == 0) can never acquire any, so the specialized loop omits the
    // prefetch bookkeeping from the per-element path altogether.
    if (prefetchPolicy == PrefetchPolicy::None && prefetchCount == 0)
        return runImpl<CacheT, false>(cache, source, obs);
    return runImpl<CacheT, true>(cache, source, obs);
}

template <typename CacheT, bool Prefetching, typename Observer>
void
CcSimulator::stripLoop(CacheT &cache, const VectorOp &op,
                       SimResult &result, Observer &obs)
{
    const AddressLayout &layout = cache.addressLayout();

    // The strip start-up only takes two values per op -- cold head,
    // or warm head with the memory-latency credit of Equation (4) --
    // so the floating-point math happens once, not once per strip.
    const double base_startup =
        machine.stripOverhead + machine.startupTime();
    const Cycles cold_startup = static_cast<Cycles>(base_startup);
    const Cycles warm_startup = static_cast<Cycles>(
        base_startup - static_cast<double>(machine.memoryTime));

    const VectorRef *second = op.second ? &op.second.value() : nullptr;
    const std::int64_t s1 = op.first.stride;
    const std::int64_t s2 = second ? second->stride : 0;

    for (std::uint64_t done = 0; done < op.first.length;
         done += machine.mvl) {
        // Strips whose head is already cached skip the memory
        // latency component of the start-up (Equation (4)).
        Addr a1 = op.first.element(done);
        const bool warm = containsWord(cache, a1);
        clock += warm ? warm_startup : cold_startup;

        const std::uint64_t count =
            std::min<std::uint64_t>(machine.mvl,
                                    op.first.length - done);

        // Gang-probe replay: probe a vector of upcoming lines in one
        // SIMD pass and bulk-credit gangs that hit throughout.  The
        // probe is side-effect-free and hits are inert on these
        // mappings, so an all-hit gang of k read accesses is exactly
        // k scalar hit iterations (clock += k, hits += k, the same
        // recordAccess totals); any miss bit drops the whole gang to
        // the element loop, which replays it in true issue order from
        // unchanged cache state.  Instrumented and prefetching runs
        // keep the scalar loop: their per-element hooks observe every
        // access.
        if constexpr (!Prefetching && !Observer::kEnabled) {
            if (gangReplay && cache.readHitsAreInert()) {
                // Double-stream gangs interleave two streams into one
                // mask, so halve the stream-1 gang to keep the total
                // inside one mask.
                const unsigned max_g = second ? kGang / 2 : kGang;
                for (std::uint64_t i = 0; i < count;) {
                    const unsigned g = static_cast<unsigned>(
                        std::min<std::uint64_t>(max_g, count - i));
                    std::uint32_t hits =
                        probeStrideGang(cache, a1, s1, g);
                    unsigned g2 = 0;
                    Addr a2 = 0;
                    if (second) {
                        const std::uint64_t left =
                            second->length > done + i
                                ? second->length - (done + i)
                                : 0;
                        g2 = static_cast<unsigned>(
                            std::min<std::uint64_t>(g, left));
                        a2 = second->element(done + i);
                        hits |= probeStrideGang(cache, a2, s2, g2)
                                << g;
                    }
                    const unsigned total = g + g2;
                    if (hits == simd::fullMask(total)) {
                        cache.recordReadHits(total);
                        result.hits += total;
                        result.results += g;
                        clock += total;
                        i += g;
                        a1 = static_cast<Addr>(
                            static_cast<std::int64_t>(a1) + s1 * g);
                        continue;
                    }
                    // Scalar replay of this gang, exactly the
                    // element-at-a-time interleaving.
                    for (unsigned j = 0; j < g; ++j) {
                        accessElement<CacheT, Prefetching>(
                            cache, layout, a1, result, obs,
                            StreamOperand::First);
                        if (second && done + i < second->length)
                            accessElement<CacheT, Prefetching>(
                                cache, layout, a2, result, obs,
                                StreamOperand::Second);
                        ++result.results;
                        ++i;
                        a1 = static_cast<Addr>(
                            static_cast<std::int64_t>(a1) + s1);
                        a2 = static_cast<Addr>(
                            static_cast<std::int64_t>(a2) + s2);
                    }
                }
                continue;
            }
        }

        if (second) {
            Addr a2 = second->element(done);
            for (std::uint64_t i = 0; i < count; ++i) {
                accessElement<CacheT, Prefetching>(cache, layout, a1,
                                               result, obs,
                                               StreamOperand::First);
                if (done + i < second->length)
                    accessElement<CacheT, Prefetching>(cache, layout, a2,
                                                   result, obs,
                                                   StreamOperand::Second);
                ++result.results;
                a1 = static_cast<Addr>(
                    static_cast<std::int64_t>(a1) + s1);
                a2 = static_cast<Addr>(
                    static_cast<std::int64_t>(a2) + s2);
            }
        } else {
            for (std::uint64_t i = 0; i < count; ++i) {
                accessElement<CacheT, Prefetching>(cache, layout, a1,
                                               result, obs);
                ++result.results;
                a1 = static_cast<Addr>(
                    static_cast<std::int64_t>(a1) + s1);
            }
        }
    }
}

template <typename CacheT, bool Prefetching, typename Observer>
SimResult
CcSimulator::runImpl(CacheT &cache, TraceSource &source, Observer &obs)
{
    SimResult result;

    if constexpr (Observer::kEnabled)
        obs.onRunBegin(cache.numSets(), cache.numLines());

    VectorOp op;
    while (source.next(op)) {
        if (cancel && cancel->cancelled())
            throwCancelled(*cancel);
        clock += static_cast<Cycles>(machine.blockOverhead);
        if constexpr (Observer::kEnabled)
            obs.onVectorOpBegin(clock, op);
        streamStride = op.first.stride; // the stride register value

        stripLoop<CacheT, Prefetching>(cache, op, result, obs);

        if (op.store)
            buses.reserveWrites(clock, op.store->length);
        if constexpr (Observer::kEnabled)
            obs.onVectorOpEnd(clock);
    }

    result.totalCycles = clock;
    if constexpr (Observer::kEnabled)
        obs.onRunEnd(clock, result);
    return result;
}

template <typename CacheT>
bool
CcSimulator::trySteadyFastForward(CacheT &cache, const VectorOp &op,
                                  BatchMemo &memo)
{
    const VectorRef &ref = op.first;
    const SteadyRunProbe probe =
        cache.probeSteadyRun(ref.stride, ref.length);
    // A lockup-free cache pipelines non-compulsory misses through bus
    // and banks, mutating shared state every pass; only the blocking
    // stall-t_m model leaves them untouched and extrapolates.
    if (probe.misses != 0 && nonBlocking)
        return false;
    if (!cache.verifySteadyRun(ref.base, ref.stride, ref.length))
        return false;

    const double base_startup =
        machine.stripOverhead + machine.startupTime();
    const Cycles cold_startup = static_cast<Cycles>(base_startup);
    const Cycles warm_startup = static_cast<Cycles>(
        base_startup - static_cast<double>(machine.memoryTime));

    memo.delta = SimResult{};
    memo.stats = CacheStats{};
    memo.clockDelta = 0;
    for (std::uint64_t done = 0; done < ref.length;
         done += machine.mvl) {
        const std::uint64_t count =
            std::min<std::uint64_t>(machine.mvl, ref.length - done);
        // Elements inside [warmLo, warmHi) hit; the rest pay the
        // blocking-miss stall.  The strip head's residency decides
        // the Equation-4 start-up credit, exactly as containsWord()
        // would at this point of the replay.
        const std::uint64_t lo = std::max(done, probe.warmLo);
        const std::uint64_t hi = std::min(done + count, probe.warmHi);
        const std::uint64_t strip_hits = hi > lo ? hi - lo : 0;
        const std::uint64_t strip_misses = count - strip_hits;
        const bool warm =
            done >= probe.warmLo && done < probe.warmHi;
        memo.clockDelta += (warm ? warm_startup : cold_startup) +
                           count + machine.memoryTime * strip_misses;
        memo.delta.stallCycles += machine.memoryTime * strip_misses;
        memo.delta.hits += strip_hits;
        memo.delta.misses += strip_misses;
        memo.delta.results += count;
    }
    // Every steady-pass miss displaces a valid line (the class's
    // previous occupant) whose flags verifySteadyRun() proved clear:
    // evictions match misses, write-backs stay zero.
    memo.stats.accesses = ref.length;
    memo.stats.reads = ref.length;
    memo.stats.hits = probe.hits;
    memo.stats.misses = probe.misses;
    memo.stats.evictions = probe.misses;
    memo.phase = BatchPhase::Verified;
    return true;
}

template <typename CacheT, typename Observer>
bool
CcSimulator::attemptVerify(CacheT &cache, const VectorOp &op,
                           BatchMemo &memo, SimResult &result,
                           Observer &obs)
{
    constexpr bool kSteadyMapped =
        std::is_same_v<CacheT, DirectMappedCache> ||
        std::is_same_v<CacheT, PrimeMappedCache>;
    if constexpr (kSteadyMapped) {
        if (!op.second && trySteadyFastForward(cache, op, memo))
            return true;
    }

    // Tier 2: snapshot, element-wise measurement pass, snapshot.
    memo.before.clear();
    memo.after.clear();
    bool state_ok = appendOpState(op, memo.before);

    const SimResult r0 = result;
    const Cycles c0 = clock;
    const CacheStats s0 = cache.stats();
    stripLoop<CacheT, false>(cache, op, result, obs);

    state_ok = state_ok && appendOpState(op, memo.after) &&
               memo.before == memo.after;
    const std::uint64_t d_misses = result.misses - r0.misses;
    const std::uint64_t d_compulsory =
        result.compulsoryMisses - r0.compulsoryMisses;
    // Equal snapshots prove the pass was a fixed point of the cache
    // state; no compulsory misses and (no misses, or blocking-miss
    // mode) prove it never touched buses, banks or the touched-line
    // set either.  Then any identical op from here replays these
    // exact deltas.
    if (state_ok && d_compulsory == 0 &&
        (d_misses == 0 || !nonBlocking)) {
        memo.delta = SimResult{};
        memo.delta.results = result.results - r0.results;
        memo.delta.hits = result.hits - r0.hits;
        memo.delta.misses = d_misses;
        memo.delta.stallCycles = result.stallCycles - r0.stallCycles;
        memo.clockDelta = clock - c0;
        const CacheStats &s1 = cache.stats();
        memo.stats = CacheStats{};
        memo.stats.accesses = s1.accesses - s0.accesses;
        memo.stats.hits = s1.hits - s0.hits;
        memo.stats.misses = s1.misses - s0.misses;
        memo.stats.reads = s1.reads - s0.reads;
        memo.stats.writes = s1.writes - s0.writes;
        memo.stats.evictions = s1.evictions - s0.evictions;
        memo.stats.writebacks = s1.writebacks - s0.writebacks;
        memo.phase = BatchPhase::Verified;
    } else if (++memo.attempts >= kBatchVerifyAttempts) {
        memo.phase = BatchPhase::Refused;
    }
    return false; // the measurement pass already executed the op
}

template <typename CacheT, typename Observer>
SimResult
CcSimulator::runBatched(CacheT &cache, TraceSource &source,
                        Observer &obs)
{
    static_assert(!Observer::kEnabled,
                  "batched passes resolve accesses without visiting "
                  "them; instrumented runs must replay element-wise");
    SimResult result;
    BatchMemo memo;

    VectorOp op;
    while (source.next(op)) {
        if (cancel && cancel->cancelled())
            throwCancelled(*cancel);
        clock += static_cast<Cycles>(machine.blockOverhead);
        streamStride = op.first.stride; // the stride register value

        const bool repeat =
            memo.phase != BatchPhase::None && op == memo.op;
        if (!repeat) {
            memo.op = op;
            memo.phase = BatchPhase::Armed;
            memo.attempts = 0;
            stripLoop<CacheT, false>(cache, op, result, obs);
        } else if (memo.phase == BatchPhase::Verified) {
            applyBatch(memo, result);
        } else if (memo.phase == BatchPhase::Refused) {
            stripLoop<CacheT, false>(cache, op, result, obs);
        } else if (attemptVerify(cache, op, memo, result, obs)) {
            applyBatch(memo, result);
        }

        // The write bus is re-reserved live even on extrapolated
        // passes: its wait accounting depends on absolute time and
        // evolves across passes, unlike everything the memo records.
        if (op.store)
            buses.reserveWrites(clock, op.store->length);
    }

    result.totalCycles = clock;
    return result;
}

template <typename Observer>
SimResult
CcSimulator::run(TraceSource &source, Observer &obs)
{
    Cache *base = vectorCache.get();
    if (auto *direct = dynamic_cast<DirectMappedCache *>(base))
        return dispatchRun(*direct, source, obs);
    if (auto *prime = dynamic_cast<PrimeMappedCache *>(base))
        return dispatchRun(*prime, source, obs);
    return dispatchRun(*base, source, obs);
}

template <typename Observer>
SimResult
CcSimulator::run(const Trace &trace, Observer &obs)
{
    TraceVectorSource source(trace);
    return run(source, obs);
}

} // namespace vcache

#endif // VCACHE_SIM_CC_SIM_HH
