/**
 * @file
 * Trace-driven simulator of the CC-model machine (Figure 3): the MM
 * machine plus a vector data cache in front of the banks.
 *
 * Timing follows the paper's assumptions:
 *
 *   - a cache hit sustains one element per cycle;
 *   - a *first-touch* (compulsory) miss is pipelined through the
 *     interleaved banks like an MM-model access (the initial loading
 *     of each block, Equation (1));
 *   - any other miss -- interference or capacity -- stalls the
 *     pipeline for the full t_m memory time ("cache misses may not be
 *     easily pipelined", Section 3.3);
 *   - a strip whose leading element hits starts up t_m cycles faster
 *     (the "- t_m" in Equation (4));
 *   - writes drain through the write bus without stalling.
 *
 * The per-element loop is a member template over the concrete cache
 * type: run() dispatches once per run on the paper's two mapping
 * schemes (direct and prime), whose accesses then compile to direct,
 * inlinable calls, with the virtual interface as the fallback for
 * every other organization.  runVirtual() forces that fallback so
 * tests can pin the fast paths against it.
 */

#ifndef VCACHE_SIM_CC_SIM_HH
#define VCACHE_SIM_CC_SIM_HH

#include <memory>

#include "analytic/machine.hh"
#include "cache/cache.hh"
#include "cache/factory.hh"
#include "cache/prefetch.hh"
#include "memory/bus.hh"
#include "memory/interleaved.hh"
#include "sim/result.hh"
#include "trace/access.hh"
#include "trace/source.hh"
#include "util/flat_hash.hh"

namespace vcache
{

/** Cycle-level CC-model machine with a pluggable cache. */
class CcSimulator
{
  public:
    /**
     * @param params machine parameters (cache geometry comes from
     *               cache_config, which should agree with
     *               params.cacheIndexBits for like-for-like runs)
     * @param cache_config vector-cache configuration
     */
    CcSimulator(const MachineParams &params,
                const CacheConfig &cache_config);

    /** Convenience: direct- or prime-mapped cache per the scheme. */
    CcSimulator(const MachineParams &params, CacheScheme scheme);

    /**
     * Enable hardware prefetching with timing: a prefetch issues
     * through a read bus and its bank, and its line arrives one
     * memory time later.  The vector pipeline absorbs up to t_m
     * cycles of that flight (the same start-up credit the pipelined
     * compulsory loads enjoy), so what remains visible is bank
     * contention -- and, crucially, *interference*: prefetches into
     * frames the demand stream is thrashing evict each other and
     * leave the full t_m miss penalty in place.  That is the paper's
     * argument for removing conflicts (prime mapping) rather than
     * hiding latency (prefetch).
     *
     * @param policy sequential or stride scheme
     * @param degree lines prefetched per trigger
     */
    void enablePrefetch(PrefetchPolicy policy, unsigned degree);

    /**
     * Robustness knob: let interference/capacity misses stream
     * through the banks like the pipelined compulsory loads instead
     * of stalling the full t_m ("cache misses may not be easily
     * pipelined", Section 3.3, is the paper's assumption -- this
     * switch quantifies how much of the prime advantage rests on
     * it).  A lockup-free cache with enough MSHRs would approximate
     * this behaviour.
     */
    void setNonBlockingMisses(bool enable) { nonBlocking = enable; }

    /** Run a whole trace from a cold start. */
    SimResult run(const Trace &trace);

    /** Run a streamed workload (no materialized trace needed). */
    SimResult run(TraceSource &source);

    /**
     * Run through the generic virtual-dispatch path regardless of the
     * cache's concrete type.  Exists so equivalence tests can pin the
     * devirtualized fast paths against the reference behaviour; it is
     * not meant for production use.
     */
    SimResult runVirtual(const Trace &trace);

    /** Prefetches issued by the timed prefetcher. */
    std::uint64_t prefetchesIssued() const { return prefetchCount; }

    /** Reset cache, banks and buses between runs. */
    void reset();

    const Cache &cache() const { return *vectorCache; }
    const MachineParams &params() const { return machine; }

  private:
    /** Pick the Prefetching instantiation and run (see runImpl). */
    template <typename CacheT>
    SimResult dispatchRun(CacheT &cache, TraceSource &source);

    /**
     * The whole-run loop, monomorphized per concrete cache type and,
     * via `Prefetching`, per prefetch mode: a run that starts with no
     * prefetch state and a None policy can never grow any, so its
     * per-element path drops the in-flight and tag-flag checks.
     */
    template <typename CacheT, bool Prefetching>
    SimResult runImpl(CacheT &cache, TraceSource &source);

    /** Access one element, advancing the pipeline clock. */
    template <typename CacheT, bool Prefetching>
    void accessElement(CacheT &cache, const AddressLayout &layout,
                       Addr addr, SimResult &result);

    /** Launch the prefetches triggered at `addr` (timed). */
    template <typename CacheT>
    void issuePrefetches(CacheT &cache, const AddressLayout &layout,
                         Addr addr);

    MachineParams machine;
    std::unique_ptr<Cache> vectorCache;
    InterleavedMemory memory;
    BusSet buses;
    /** Every line ever brought in (first touch => compulsory). */
    FlatSet<Addr> touchedLines;
    Cycles clock = 0;
    bool nonBlocking = false;

    // Timed prefetch state.  The prefetched-but-untouched marks live
    // as kPrefetchedFlag bits on the cache's tag array.
    PrefetchPolicy prefetchPolicy = PrefetchPolicy::None;
    unsigned prefetchDegree = 1;
    std::int64_t streamStride = 1;
    /** Lines prefetched but still in flight: line -> arrival cycle. */
    FlatMap<Addr, Cycles> inFlight;
    std::uint64_t prefetchCount = 0;
};

/** Cache configuration matching the analytic machine and scheme. */
CacheConfig ccCacheConfig(const MachineParams &params,
                          CacheScheme scheme);

} // namespace vcache

#endif // VCACHE_SIM_CC_SIM_HH
