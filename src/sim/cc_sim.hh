/**
 * @file
 * Trace-driven simulator of the CC-model machine (Figure 3): the MM
 * machine plus a vector data cache in front of the banks.
 *
 * Timing follows the paper's assumptions:
 *
 *   - a cache hit sustains one element per cycle;
 *   - a *first-touch* (compulsory) miss is pipelined through the
 *     interleaved banks like an MM-model access (the initial loading
 *     of each block, Equation (1));
 *   - any other miss -- interference or capacity -- stalls the
 *     pipeline for the full t_m memory time ("cache misses may not be
 *     easily pipelined", Section 3.3);
 *   - a strip whose leading element hits starts up t_m cycles faster
 *     (the "- t_m" in Equation (4));
 *   - writes drain through the write bus without stalling.
 *
 * The per-element loop is a member template over the concrete cache
 * type *and* an Observer policy: run() dispatches once per run on the
 * paper's two mapping schemes (direct and prime), whose accesses then
 * compile to direct, inlinable calls, with the virtual interface as
 * the fallback for every other organization.  Every instrumentation
 * hook sits behind `if constexpr (Observer::kEnabled)`, so the
 * NullObserver instantiations (the plain run() overloads) are exactly
 * the uninstrumented loops, while run(source, obs) with a
 * TracingObserver sees every hit, miss, bank conflict, bus wait and
 * prefetch with cycle stamps and set indices.  runVirtual() forces
 * the virtual fallback so tests can pin the fast paths against it.
 */

#ifndef VCACHE_SIM_CC_SIM_HH
#define VCACHE_SIM_CC_SIM_HH

#include <algorithm>
#include <memory>

#include "analytic/machine.hh"
#include "cache/cache.hh"
#include "cache/direct.hh"
#include "cache/factory.hh"
#include "cache/prefetch.hh"
#include "cache/prime.hh"
#include "memory/bus.hh"
#include "memory/interleaved.hh"
#include "sim/cancel.hh"
#include "sim/observe.hh"
#include "sim/result.hh"
#include "trace/access.hh"
#include "trace/source.hh"
#include "util/flat_hash.hh"

namespace vcache
{

/** Cycle-level CC-model machine with a pluggable cache. */
class CcSimulator
{
  public:
    /**
     * @param params machine parameters (cache geometry comes from
     *               cache_config, which should agree with
     *               params.cacheIndexBits for like-for-like runs)
     * @param cache_config vector-cache configuration
     */
    CcSimulator(const MachineParams &params,
                const CacheConfig &cache_config);

    /** Convenience: direct- or prime-mapped cache per the scheme. */
    CcSimulator(const MachineParams &params, CacheScheme scheme);

    /**
     * Enable hardware prefetching with timing: a prefetch issues
     * through a read bus and its bank, and its line arrives one
     * memory time later.  The vector pipeline absorbs up to t_m
     * cycles of that flight (the same start-up credit the pipelined
     * compulsory loads enjoy), so what remains visible is bank
     * contention -- and, crucially, *interference*: prefetches into
     * frames the demand stream is thrashing evict each other and
     * leave the full t_m miss penalty in place.  That is the paper's
     * argument for removing conflicts (prime mapping) rather than
     * hiding latency (prefetch).
     *
     * @param policy sequential or stride scheme
     * @param degree lines prefetched per trigger
     */
    void enablePrefetch(PrefetchPolicy policy, unsigned degree);

    /**
     * Robustness knob: let interference/capacity misses stream
     * through the banks like the pipelined compulsory loads instead
     * of stalling the full t_m ("cache misses may not be easily
     * pipelined", Section 3.3, is the paper's assumption -- this
     * switch quantifies how much of the prime advantage rests on
     * it).  A lockup-free cache with enough MSHRs would approximate
     * this behaviour.
     */
    void setNonBlockingMisses(bool enable) { nonBlocking = enable; }

    /** Run a whole trace from a cold start. */
    SimResult run(const Trace &trace);

    /** Run a streamed workload (no materialized trace needed). */
    SimResult run(TraceSource &source);

    /**
     * Instrumented run: identical timing, every Observer hook fired.
     * The observer must satisfy the contract in src/obs/observer.hh.
     */
    template <typename Observer>
    SimResult run(const Trace &trace, Observer &obs);

    /** Instrumented streamed run. */
    template <typename Observer>
    SimResult run(TraceSource &source, Observer &obs);

    /**
     * Run through the generic virtual-dispatch path regardless of the
     * cache's concrete type.  Exists so equivalence tests can pin the
     * devirtualized fast paths against the reference behaviour; it is
     * not meant for production use.
     */
    SimResult runVirtual(const Trace &trace);

    /** Prefetches issued by the timed prefetcher. */
    std::uint64_t prefetchesIssued() const { return prefetchCount; }

    /**
     * Cooperative cancellation: polled once per vector operation (one
     * relaxed load next to thousands of element accesses).  A tripped
     * token raises VcError(Timeout|Cancelled) out of run().  Null
     * (the default) disables the poll; the token must outlive the
     * simulator or be cleared first.
     */
    void setCancelToken(const CancelToken *token) { cancel = token; }

    /** Reset cache, banks and buses between runs. */
    void reset();

    const Cache &cache() const { return *vectorCache; }
    const MachineParams &params() const { return machine; }

  private:
    /** Pick the Prefetching instantiation and run (see runImpl). */
    template <typename CacheT, typename Observer>
    SimResult dispatchRun(CacheT &cache, TraceSource &source,
                          Observer &obs);

    /**
     * The whole-run loop, monomorphized per concrete cache type and,
     * via `Prefetching`, per prefetch mode: a run that starts with no
     * prefetch state and a None policy can never grow any, so its
     * per-element path drops the in-flight and tag-flag checks.
     */
    template <typename CacheT, bool Prefetching, typename Observer>
    SimResult runImpl(CacheT &cache, TraceSource &source, Observer &obs);

    /** Access one element, advancing the pipeline clock. */
    template <typename CacheT, bool Prefetching, typename Observer>
    void accessElement(CacheT &cache, const AddressLayout &layout,
                       Addr addr, SimResult &result, Observer &obs);

    /** Launch the prefetches triggered at `addr` (timed). */
    template <typename CacheT, typename Observer>
    void issuePrefetches(CacheT &cache, const AddressLayout &layout,
                         Addr addr, Observer &obs);

    MachineParams machine;
    std::unique_ptr<Cache> vectorCache;
    InterleavedMemory memory;
    BusSet buses;
    /** Every line ever brought in (first touch => compulsory). */
    FlatSet<Addr> touchedLines;
    Cycles clock = 0;
    bool nonBlocking = false;
    const CancelToken *cancel = nullptr;

    // Timed prefetch state.  The prefetched-but-untouched marks live
    // as kPrefetchedFlag bits on the cache's tag array.
    PrefetchPolicy prefetchPolicy = PrefetchPolicy::None;
    unsigned prefetchDegree = 1;
    std::int64_t streamStride = 1;
    /** Lines prefetched but still in flight: line -> arrival cycle. */
    FlatMap<Addr, Cycles> inFlight;
    std::uint64_t prefetchCount = 0;
};

/** Cache configuration matching the analytic machine and scheme. */
CacheConfig ccCacheConfig(const MachineParams &params,
                          CacheScheme scheme);

template <typename CacheT, typename Observer>
void
CcSimulator::issuePrefetches(CacheT &cache, const AddressLayout &layout,
                             Addr addr, Observer &obs)
{
    const std::int64_t step =
        prefetchPolicy == PrefetchPolicy::Stride
            ? (streamStride == 0 ? 1 : streamStride)
            : static_cast<std::int64_t>(layout.lineWords());

    Addr next = addr;
    for (unsigned d = 0; d < prefetchDegree; ++d) {
        next = static_cast<Addr>(static_cast<std::int64_t>(next) +
                                 step);
        const Addr line = layout.lineAddress(next);
        // One tag probe decides both "already resident?" and the
        // fill; its hit answer replaces the old contains() pre-check.
        if (!fillLine(cache, line))
            continue;
        // The prefetch streams through a read bus and its bank; the
        // data is usable one memory time after issue.
        const Cycles bus = buses.reserveReadObserved(clock, obs);
        const Cycles when = memory.issueObserved(next, bus, obs);
        if constexpr (Observer::kEnabled)
            obs.onPrefetchIssue(clock, line);
        inFlight.insertOrAssign(line, when + machine.memoryTime);
        setFrameFlag(cache, line, Cache::kPrefetchedFlag);
        touchedLines.insert(line);
        ++prefetchCount;
    }
}

template <typename CacheT, bool Prefetching, typename Observer>
VCACHE_ALWAYS_INLINE void
CcSimulator::accessElement(CacheT &cache, const AddressLayout &layout,
                           Addr addr, SimResult &result, Observer &obs)
{
    const Addr line = layout.lineAddress(addr);
    const AccessOutcome outcome = probeLine(cache, line);
    cache.recordAccess(outcome, AccessType::Read);

    if (outcome.hit) {
        ++result.hits;
        clock += 1;
        if constexpr (Observer::kEnabled)
            obs.onHit(clock, line, frameIndexOf(cache, line));
        if constexpr (Prefetching) {
            // A hit on a line still in flight waits for whatever part
            // of the flight the vector pipeline cannot absorb.  The
            // strip start-up (T_start = 30 + t_m) already hides one
            // memory time of an in-order stream -- the same credit
            // the compulsory path gets -- so only bank-contention
            // delays beyond that are exposed.
            if (const Cycles *arrival = inFlight.find(line)) {
                const Cycles visible = clock + machine.memoryTime;
                Cycles late = 0;
                if (*arrival > visible) {
                    late = *arrival - visible;
                    result.stallCycles += late;
                    clock = *arrival - machine.memoryTime;
                }
                if constexpr (Observer::kEnabled)
                    obs.onPrefetchHit(clock, line, late);
                inFlight.erase(line);
            }
            // Tagged retrigger: first demand use of a prefetched line
            // launches the next prefetch.  No flag can be set before
            // the first prefetch issues, so runs without prefetching
            // skip the extra tag probe entirely.
            if (prefetchCount != 0 &&
                clearFrameFlag(cache, line, Cache::kPrefetchedFlag) &&
                prefetchPolicy != PrefetchPolicy::None) {
                issuePrefetches(cache, layout, addr, obs);
            }
        }
        return;
    }

    ++result.misses;
    const bool first_touch = touchedLines.insert(line);
    if (first_touch || nonBlocking) {
        // Compulsory miss (or any miss of a lockup-free cache): part
        // of the pipelined load stream; it flows through bus and
        // banks at streaming rate.
        if (first_touch)
            ++result.compulsoryMisses;
        const Cycles bus = buses.reserveReadObserved(clock, obs);
        const Cycles when = memory.issueObserved(addr, bus, obs);
        if constexpr (Observer::kEnabled)
            obs.onMiss(clock, line, frameIndexOf(cache, line),
                       first_touch ? MissKind::Compulsory
                                   : MissKind::NonBlocking,
                       when - clock);
        result.stallCycles += when - clock;
        clock = when + 1;
    } else {
        // Interference/capacity miss: full memory round trip exposed.
        if constexpr (Observer::kEnabled)
            obs.onMiss(clock, line, frameIndexOf(cache, line),
                       MissKind::Blocking, machine.memoryTime);
        result.stallCycles += machine.memoryTime;
        clock += 1 + machine.memoryTime;
    }
    if constexpr (Prefetching) {
        if (prefetchPolicy != PrefetchPolicy::None)
            issuePrefetches(cache, layout, addr, obs);
    }
}

template <typename CacheT, typename Observer>
SimResult
CcSimulator::dispatchRun(CacheT &cache, TraceSource &source,
                         Observer &obs)
{
    // A run beginning with a None policy and no live prefetch state
    // (no lines in flight, no tag flags -- both imply prefetchCount
    // == 0) can never acquire any, so the specialized loop omits the
    // prefetch bookkeeping from the per-element path altogether.
    if (prefetchPolicy == PrefetchPolicy::None && prefetchCount == 0)
        return runImpl<CacheT, false>(cache, source, obs);
    return runImpl<CacheT, true>(cache, source, obs);
}

template <typename CacheT, bool Prefetching, typename Observer>
SimResult
CcSimulator::runImpl(CacheT &cache, TraceSource &source, Observer &obs)
{
    SimResult result;
    const AddressLayout &layout = cache.addressLayout();

    if constexpr (Observer::kEnabled)
        obs.onRunBegin(cache.numSets());

    // The strip start-up only takes two values per run -- cold head,
    // or warm head with the memory-latency credit of Equation (4) --
    // so the floating-point math happens once, not once per strip.
    const double base_startup =
        machine.stripOverhead + machine.startupTime();
    const Cycles cold_startup = static_cast<Cycles>(base_startup);
    const Cycles warm_startup = static_cast<Cycles>(
        base_startup - static_cast<double>(machine.memoryTime));

    VectorOp op;
    while (source.next(op)) {
        if (cancel && cancel->cancelled())
            throwCancelled(*cancel);
        clock += static_cast<Cycles>(machine.blockOverhead);
        if constexpr (Observer::kEnabled)
            obs.onVectorOpBegin(clock, op);
        streamStride = op.first.stride; // the stride register value

        const VectorRef *second =
            op.second ? &op.second.value() : nullptr;
        const std::int64_t s1 = op.first.stride;
        const std::int64_t s2 = second ? second->stride : 0;

        for (std::uint64_t done = 0; done < op.first.length;
             done += machine.mvl) {
            // Strips whose head is already cached skip the memory
            // latency component of the start-up (Equation (4)).
            Addr a1 = op.first.element(done);
            const bool warm = containsWord(cache, a1);
            clock += warm ? warm_startup : cold_startup;

            const std::uint64_t count =
                std::min<std::uint64_t>(machine.mvl,
                                        op.first.length - done);
            if (second) {
                Addr a2 = second->element(done);
                for (std::uint64_t i = 0; i < count; ++i) {
                    accessElement<CacheT, Prefetching>(cache, layout, a1,
                                                   result, obs);
                    if (done + i < second->length)
                        accessElement<CacheT, Prefetching>(cache, layout, a2,
                                                       result, obs);
                    ++result.results;
                    a1 = static_cast<Addr>(
                        static_cast<std::int64_t>(a1) + s1);
                    a2 = static_cast<Addr>(
                        static_cast<std::int64_t>(a2) + s2);
                }
            } else {
                for (std::uint64_t i = 0; i < count; ++i) {
                    accessElement<CacheT, Prefetching>(cache, layout, a1,
                                                   result, obs);
                    ++result.results;
                    a1 = static_cast<Addr>(
                        static_cast<std::int64_t>(a1) + s1);
                }
            }
        }

        if (op.store)
            buses.reserveWrites(clock, op.store->length);
        if constexpr (Observer::kEnabled)
            obs.onVectorOpEnd(clock);
    }

    result.totalCycles = clock;
    if constexpr (Observer::kEnabled)
        obs.onRunEnd(clock, result);
    return result;
}

template <typename Observer>
SimResult
CcSimulator::run(TraceSource &source, Observer &obs)
{
    Cache *base = vectorCache.get();
    if (auto *direct = dynamic_cast<DirectMappedCache *>(base))
        return dispatchRun(*direct, source, obs);
    if (auto *prime = dynamic_cast<PrimeMappedCache *>(base))
        return dispatchRun(*prime, source, obs);
    return dispatchRun(*base, source, obs);
}

template <typename Observer>
SimResult
CcSimulator::run(const Trace &trace, Observer &obs)
{
    TraceVectorSource source(trace);
    return run(source, obs);
}

} // namespace vcache

#endif // VCACHE_SIM_CC_SIM_HH
