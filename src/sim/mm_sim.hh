/**
 * @file
 * Trace-driven simulator of the MM-model machine (Figure 2): vector
 * registers fed straight from interleaved banks over pipelined buses.
 *
 * Every vector operation strip-mines into MVL-element chunks; each
 * chunk pays the start-up and loop overheads of Equation (1), then
 * issues one element per cycle per stream, stalling in-order when a
 * bank is still busy.  This is the machine the analytic I_s^M / I_c^M
 * formulas approximate, so the two are cross-checked in tests and in
 * the validation bench.
 *
 * The run loop is a member template over an Observer policy (the same
 * split as CcSimulator): the plain run() overloads instantiate it
 * with the zero-cost NullObserver, while run(source, obs) with a
 * TracingObserver sees every vector op, bank issue/conflict and bus
 * wait with cycle stamps.
 *
 * Run batching (SimEngine::Auto, the default for uninstrumented
 * runs): for a single constant-stride stream the whole conflict
 * pattern is linear-congruence structure.  The bank sequence (base +
 * i*stride) mod M repeats with period Q = M / gcd(|stride| mod M, M),
 * so within a strip element i issues at the strip start plus
 * (i mod Q) + floor(i / Q) * t_m when t_m > Q (each bank revisit
 * waits out the remaining busy time) and plus i otherwise (revisits
 * come Q >= t_m cycles apart, so no request ever waits) -- giving
 * per-strip stall floor((count-1)/Q) * (t_m - Q) in closed form.
 * The batched path computes the whole op in O(1) plus O(Q) exact
 * end-state absorption (bus counters/frontiers via
 * BusSet::absorbReadRun, per-bank busy horizons via
 * InterleavedMemory::noteRunIssue), valid whenever banks are
 * provably free at every strip start (strip start-up >= t_m - 1) and
 * the mapping is residue-periodic (LowOrder always; PrimeModulo for
 * non-wrapping runs).  Everything else -- double streams, skewed or
 * XOR-hashed mappings, armed fault-injection plans (the batched path
 * would skip the per-element memory.bank.issue sites), or
 * SimEngine::Scalar -- replays element-wise.  Equivalence is pinned
 * by tests/sim/batched_test.cc.
 */

#ifndef VCACHE_SIM_MM_SIM_HH
#define VCACHE_SIM_MM_SIM_HH

#include <algorithm>

#include "analytic/machine.hh"
#include "memory/bus.hh"
#include "memory/interleaved.hh"
#include "sim/cancel.hh"
#include "sim/engine.hh"
#include "sim/result.hh"
#include "trace/access.hh"
#include "trace/source.hh"

namespace vcache
{

/** Cycle-level MM-model machine. */
class MmSimulator
{
  public:
    explicit MmSimulator(const MachineParams &params);

    /** Run a whole trace from a cold start. */
    SimResult run(const Trace &trace);

    /** Run a streamed workload (no materialized trace needed). */
    SimResult run(TraceSource &source);

    /**
     * Instrumented run: identical timing, every Observer hook fired.
     * The observer must satisfy the contract in src/obs/observer.hh.
     */
    template <typename Observer>
    SimResult run(const Trace &trace, Observer &obs);

    /** Instrumented streamed run. */
    template <typename Observer>
    SimResult run(TraceSource &source, Observer &obs);

    /**
     * Select the execution engine for uninstrumented runs: Auto (the
     * default) fast-forwards eligible constant-stride ops in closed
     * form; Scalar forces element-wise replay.  Both produce
     * bit-identical SimResults and memory/bus state.  Instrumented
     * runs always replay element-wise regardless.
     */
    void setEngine(SimEngine engine) { engineKind = engine; }
    SimEngine engine() const { return engineKind; }

    /** Reset banks/buses between runs. */
    void reset();

    /**
     * Gang address generation (default on; VCACHE_GANG=off reverts):
     * uninstrumented strips precompute each gang's element addresses
     * and bank indices through the dispatched SIMD kernels, then
     * drive the (inherently serial) per-element bank/bus issue from
     * the precomputed arrays.  Timing, bank state and fault-injection
     * site counts are identical either way.
     */
    void setGangReplay(bool on) { gangReplay = on; }
    bool gangReplayEnabled() const { return gangReplay; }

    /**
     * Cooperative cancellation: polled once per vector operation; a
     * tripped token raises VcError(Timeout|Cancelled) out of run().
     */
    void setCancelToken(const CancelToken *token) { cancel = token; }

    const MachineParams &params() const { return machine; }

  private:
    /** Bank-issue addresses precomputed per gang (see setGangReplay). */
    static constexpr unsigned kGang = 16;

    /** Issue one strip of up to MVL elements from one or two streams. */
    template <typename Observer>
    void issueStrip(const VectorRef &first, const VectorRef *second,
                    std::uint64_t offset, std::uint64_t count,
                    SimResult &result, Observer &obs);

    /** The gang-precomputed issueStrip (uninstrumented only). */
    void issueStripGang(const VectorRef &first,
                        const VectorRef *second, std::uint64_t offset,
                        std::uint64_t count, SimResult &result);

    /** The run-batched whole-run loop (uninstrumented only). */
    SimResult runBatched(TraceSource &source);

    /**
     * Fast-forward one vector op in closed form when its conflict
     * structure is provable (see the file comment); updates result,
     * clock, bus and bank state exactly as element-wise issue would.
     * The op's store, if any, is the caller's job either way.
     *
     * @return false when the op must replay element-wise
     */
    bool tryFastForwardOp(const VectorOp &op, SimResult &result);

    MachineParams machine;
    InterleavedMemory memory;
    BusSet buses;
    Cycles clock = 0;
    bool gangReplay = simd::gangReplayDefault();
    SimEngine engineKind = SimEngine::Auto;
    const CancelToken *cancel = nullptr;
};

inline void
MmSimulator::issueStripGang(const VectorRef &first,
                            const VectorRef *second,
                            std::uint64_t offset, std::uint64_t count,
                            SimResult &result)
{
    const simd::Kernels &k = simd::kernels();
    std::uint64_t banks1[kGang];
    std::uint64_t banks2[kGang];
    std::uint64_t addrs[kGang];

    for (std::uint64_t i = 0; i < count;) {
        const unsigned g = static_cast<unsigned>(
            std::min<std::uint64_t>(kGang, count - i));
        // Address generation and bank mapping for the whole gang in
        // one SIMD pass each; the serial part below only walks
        // per-bank busy horizons and the bus rotors.
        k.strideLines(first.element(offset + i), first.stride, g, 0,
                      addrs);
        memory.bankOfN(addrs, g, banks1);
        unsigned g2 = 0;
        if (second && offset + i < second->length) {
            const std::uint64_t left = second->length - (offset + i);
            g2 = static_cast<unsigned>(
                std::min<std::uint64_t>(g, left));
            k.strideLines(second->element(offset + i), second->stride,
                          g2, 0, addrs);
            memory.bankOfN(addrs, g2, banks2);
        }

        for (unsigned j = 0; j < g; ++j) {
            Cycles ready = clock;
            {
                const Cycles bus = buses.reserveRead(ready);
                const Cycles when = memory.issueAtBank(banks1[j], bus);
                ready = std::max(ready, when);
            }
            if (j < g2) {
                const Cycles bus = buses.reserveRead(clock);
                const Cycles when = memory.issueAtBank(banks2[j], bus);
                ready = std::max(ready, when);
            }
            result.stallCycles += ready - clock;
            clock = ready + 1; // in-order pipeline: next issue slot
            ++result.results;
        }
        i += g;
    }
}

template <typename Observer>
void
MmSimulator::issueStrip(const VectorRef &first, const VectorRef *second,
                        std::uint64_t offset, std::uint64_t count,
                        SimResult &result, Observer &obs)
{
    if constexpr (!Observer::kEnabled) {
        if (gangReplay) {
            issueStripGang(first, second, offset, count, result);
            return;
        }
    }

    for (std::uint64_t i = 0; i < count; ++i) {
        Cycles ready = clock;

        // Stream 1 element.
        {
            const Addr a = first.element(offset + i);
            const Cycles bus = buses.reserveReadObserved(ready, obs);
            const Cycles when = memory.issueObserved(a, bus, obs);
            ready = std::max(ready, when);
        }
        // Stream 2 element, if this strip belongs to a double-stream
        // op and the second (shorter) vector still has elements.
        if (second && offset + i < second->length) {
            const Addr a = second->element(offset + i);
            const Cycles bus = buses.reserveReadObserved(clock, obs);
            const Cycles when = memory.issueObserved(a, bus, obs);
            ready = std::max(ready, when);
        }

        result.stallCycles += ready - clock;
        clock = ready + 1; // in-order pipeline: next issue slot
        ++result.results;
    }
}

template <typename Observer>
SimResult
MmSimulator::run(TraceSource &source, Observer &obs)
{
    SimResult result;

    // The MM machine has no cache: observers see a zero-set domain.
    if constexpr (Observer::kEnabled)
        obs.onRunBegin(0, 0);

    VectorOp op;
    while (source.next(op)) {
        if (cancel && cancel->cancelled())
            throwCancelled(*cancel);
        clock += static_cast<Cycles>(machine.blockOverhead);
        if constexpr (Observer::kEnabled)
            obs.onVectorOpBegin(clock, op);

        const VectorRef *second =
            op.second ? &op.second.value() : nullptr;

        for (std::uint64_t done = 0; done < op.first.length;
             done += machine.mvl) {
            clock += static_cast<Cycles>(machine.stripOverhead +
                                         machine.startupTime());
            const std::uint64_t count =
                std::min<std::uint64_t>(machine.mvl,
                                        op.first.length - done);
            issueStrip(op.first, second, done, count, result, obs);
        }

        // Stores drain through the write bus without stalling the
        // pipeline (the paper's write-buffer assumption).
        if (op.store)
            buses.reserveWrites(clock, op.store->length);
        if constexpr (Observer::kEnabled)
            obs.onVectorOpEnd(clock);
    }

    result.totalCycles = clock;
    if constexpr (Observer::kEnabled)
        obs.onRunEnd(clock, result);
    return result;
}

template <typename Observer>
SimResult
MmSimulator::run(const Trace &trace, Observer &obs)
{
    TraceVectorSource source(trace);
    return run(source, obs);
}

} // namespace vcache

#endif // VCACHE_SIM_MM_SIM_HH
