/**
 * @file
 * Trace-driven simulator of the MM-model machine (Figure 2): vector
 * registers fed straight from interleaved banks over pipelined buses.
 *
 * Every vector operation strip-mines into MVL-element chunks; each
 * chunk pays the start-up and loop overheads of Equation (1), then
 * issues one element per cycle per stream, stalling in-order when a
 * bank is still busy.  This is the machine the analytic I_s^M / I_c^M
 * formulas approximate, so the two are cross-checked in tests and in
 * the validation bench.
 */

#ifndef VCACHE_SIM_MM_SIM_HH
#define VCACHE_SIM_MM_SIM_HH

#include "analytic/machine.hh"
#include "memory/bus.hh"
#include "memory/interleaved.hh"
#include "sim/result.hh"
#include "trace/access.hh"
#include "trace/source.hh"

namespace vcache
{

/** Cycle-level MM-model machine. */
class MmSimulator
{
  public:
    explicit MmSimulator(const MachineParams &params);

    /** Run a whole trace from a cold start. */
    SimResult run(const Trace &trace);

    /** Run a streamed workload (no materialized trace needed). */
    SimResult run(TraceSource &source);

    /** Reset banks/buses between runs. */
    void reset();

    const MachineParams &params() const { return machine; }

  private:
    /** Issue one strip of up to MVL elements from one or two streams. */
    void issueStrip(const VectorRef &first, const VectorRef *second,
                    std::uint64_t offset, std::uint64_t count,
                    SimResult &result);

    MachineParams machine;
    InterleavedMemory memory;
    BusSet buses;
    Cycles clock = 0;
};

} // namespace vcache

#endif // VCACHE_SIM_MM_SIM_HH
