#include "sim/runner.hh"

#include "sim/cc_sim.hh"
#include "sim/mm_sim.hh"

namespace vcache
{

SimResult
simulateMm(const MachineParams &params, const Trace &trace)
{
    MmSimulator sim(params);
    return sim.run(trace);
}

SimResult
simulateMm(const MachineParams &params, TraceSource &source,
           const CancelToken *cancel, SimEngine engine)
{
    MmSimulator sim(params);
    sim.setCancelToken(cancel);
    sim.setEngine(engine);
    return sim.run(source);
}

SimResult
simulateCc(const MachineParams &params, CacheScheme scheme,
           const Trace &trace)
{
    CcSimulator sim(params, scheme);
    return sim.run(trace);
}

SimResult
simulateCc(const MachineParams &params, CacheScheme scheme,
           TraceSource &source, const CancelToken *cancel,
           SimEngine engine)
{
    CcSimulator sim(params, scheme);
    sim.setCancelToken(cancel);
    sim.setEngine(engine);
    return sim.run(source);
}

MissBreakdown
classifyTrace(Cache &cache, const Trace &trace)
{
    MissClassifier classifier(cache);
    detail::walkTrace(
        trace, [&](Addr a, AccessType t) { classifier.access(a, t); });
    return classifier.breakdown();
}

CacheStats
runTraceWithPrefetch(PrefetchingCache &front, const Trace &trace)
{
    for (const auto &op : trace) {
        front.beginStream(op.first.stride);
        const std::uint64_t n =
            op.second ? std::max(op.first.length, op.second->length)
                      : op.first.length;
        for (std::uint64_t i = 0; i < n; ++i) {
            if (i < op.first.length)
                front.access(op.first.element(i), AccessType::Read);
            if (op.second && i < op.second->length)
                front.access(op.second->element(i), AccessType::Read);
        }
        if (op.store)
            for (std::uint64_t i = 0; i < op.store->length; ++i)
                front.access(op.store->element(i), AccessType::Write);
    }
    return front.cache().stats();
}

} // namespace vcache
