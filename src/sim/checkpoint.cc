#include "sim/checkpoint.hh"

#include <cctype>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/faultinject.hh"
#include "util/logging.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define VCACHE_HAVE_FSYNC 1
#endif

namespace vcache
{

namespace
{

/** Records between fsyncs: bounded loss without per-record fsync cost. */
constexpr unsigned kSyncBatch = 32;

std::string
hexByte(unsigned char c)
{
    static const char digits[] = "0123456789abcdef";
    std::string out = "\\u00";
    out += digits[(c >> 4) & 0xf];
    out += digits[c & 0xf];
    return out;
}

/**
 * A process killed mid-write leaves a torn final line (no trailing
 * newline).  readCheckpoint tolerates that on replay, but appending
 * after it would concatenate the next record onto the fragment,
 * turning it into a mid-file line that a *second* resume rejects as
 * corruption.  Heal the journal before appending by truncating back
 * to the end of the last complete line.  Returns whether any complete
 * lines remain.
 */
Expected<bool>
healTornTail(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        // Nothing on disk yet; the append will create the file.
        return false;
    }
    long size = 0;
    long keep = 0; // bytes up to and including the last '\n'
    int c;
    while ((c = std::fgetc(f)) != EOF) {
        ++size;
        if (c == '\n')
            keep = size;
    }
    const bool read_err = std::ferror(f) != 0;
    // fclose can clobber errno (it flushes and closes the underlying
    // descriptor), so latch the read failure's code before closing.
    const int read_errno = errno;
    std::fclose(f);
    if (read_err)
        return makeError(Errc::Io, "cannot read checkpoint '" + path +
                                       "': " +
                                       std::strerror(read_errno));
    if (keep == size)
        return size > 0;

    warn("checkpoint '", path, "': dropping torn final line before "
         "appending");
#if defined(VCACHE_HAVE_FSYNC)
    if (::truncate(path.c_str(), static_cast<off_t>(keep)) != 0)
        return makeError(Errc::Io, "cannot truncate torn checkpoint '" +
                                       path +
                                       "': " + std::strerror(errno));
#else
    // Portable fallback: rewrite the intact prefix.
    std::string prefix(static_cast<std::size_t>(keep), '\0');
    std::FILE *in = std::fopen(path.c_str(), "rb");
    if (!in || std::fread(prefix.data(), 1, prefix.size(), in) !=
                   prefix.size()) {
        if (in)
            std::fclose(in);
        return makeError(Errc::Io, "cannot re-read checkpoint '" +
                                       path + "'");
    }
    std::fclose(in);
    std::FILE *out = std::fopen(path.c_str(), "wb");
    if (!out || std::fwrite(prefix.data(), 1, prefix.size(), out) !=
                    prefix.size()) {
        if (out)
            std::fclose(out);
        return makeError(Errc::Io, "cannot rewrite checkpoint '" +
                                       path + "'");
    }
    std::fclose(out);
#endif
    return keep > 0;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                out += hexByte(static_cast<unsigned char>(c));
            else
                out += c;
        }
    }
    return out;
}

CheckpointWriter::CheckpointWriter(std::FILE *f, std::string path)
    : file(f), file_path(std::move(path))
{
}

CheckpointWriter::~CheckpointWriter()
{
    if (!file)
        return;
    (void)flush();
    std::fclose(file);
}

Expected<std::unique_ptr<CheckpointWriter>>
CheckpointWriter::open(const std::string &path,
                       const CheckpointHeader &header, bool append)
{
    if (append) {
        auto healed = healTornTail(path);
        if (!healed.ok())
            return healed.error();
        // Healing can leave an empty file (nothing but a torn line);
        // fall back to writing a fresh header.
        if (!healed.value())
            append = false;
    }
    std::FILE *f = std::fopen(path.c_str(), append ? "ab" : "wb");
    if (!f)
        return makeError(Errc::Io, "cannot open checkpoint '" + path +
                                       "': " + std::strerror(errno));
    auto writer = std::unique_ptr<CheckpointWriter>(
        new CheckpointWriter(f, path));
    if (!append) {
        std::ostringstream os;
        os << "{\"vcache_checkpoint\":1,\"label\":\""
           << jsonEscape(header.label) << "\",\"points\":"
           << header.points << ",\"seed\":" << header.seed << "}";
        auto wrote = writer->writeLine(os.str());
        if (!wrote.ok())
            return wrote.error();
        auto synced = writer->flush();
        if (!synced.ok())
            return synced.error();
    }
    return writer;
}

Expected<void>
CheckpointWriter::writeLine(const std::string &line)
{
    std::lock_guard<std::mutex> lock(mtx);
    VCACHE_FAULT_POINT("checkpoint.write");
    if (std::fwrite(line.data(), 1, line.size(), file) != line.size() ||
        std::fputc('\n', file) == EOF)
        return makeError(Errc::Io, "short write to checkpoint '" +
                                       file_path + "'");
    if (++unsynced >= kSyncBatch) {
        unsynced = 0;
        if (std::fflush(file) != 0)
            return makeError(Errc::Io, "cannot flush checkpoint '" +
                                           file_path + "'");
#if defined(VCACHE_HAVE_FSYNC)
        (void)::fsync(fileno(file));
#endif
    }
    return {};
}

Expected<void>
CheckpointWriter::recordDone(std::uint64_t point,
                             const std::vector<std::string> &row)
{
    std::ostringstream os;
    os << "{\"point\":" << point << ",\"status\":\"ok\",\"row\":[";
    for (std::size_t i = 0; i < row.size(); ++i) {
        if (i)
            os << ',';
        os << '"' << jsonEscape(row[i]) << '"';
    }
    os << "]}";
    return writeLine(os.str());
}

Expected<void>
CheckpointWriter::recordFailed(std::uint64_t point, const Error &err,
                               unsigned attempts)
{
    std::ostringstream os;
    os << "{\"point\":" << point << ",\"status\":\"failed\",\"code\":\""
       << errcName(err.code) << "\",\"attempts\":" << attempts
       << ",\"error\":\"" << jsonEscape(err.describe()) << "\"}";
    return writeLine(os.str());
}

Expected<void>
CheckpointWriter::flush()
{
    std::lock_guard<std::mutex> lock(mtx);
    unsynced = 0;
    if (std::fflush(file) != 0)
        return makeError(Errc::Io, "cannot flush checkpoint '" +
                                       file_path + "'");
#if defined(VCACHE_HAVE_FSYNC)
    (void)::fsync(fileno(file));
#endif
    return {};
}

namespace
{

/**
 * Tiny scanner over exactly the JSON this file writes.  Not a general
 * parser: objects with known member names, string/integer values, and
 * one string array.
 */
class LineScanner
{
  public:
    explicit LineScanner(const std::string &line) : s(line) {}

    bool
    literal(const char *text)
    {
        skipSpace();
        const std::size_t n = std::strlen(text);
        if (s.compare(pos, n, text) != 0)
            return false;
        pos += n;
        return true;
    }

    bool
    uint(std::uint64_t &out)
    {
        skipSpace();
        if (pos >= s.size() || !std::isdigit(
                static_cast<unsigned char>(s[pos])))
            return false;
        out = 0;
        while (pos < s.size() &&
               std::isdigit(static_cast<unsigned char>(s[pos])))
            out = out * 10 + static_cast<std::uint64_t>(s[pos++] - '0');
        return true;
    }

    bool
    quotedString(std::string &out)
    {
        skipSpace();
        if (pos >= s.size() || s[pos] != '"')
            return false;
        ++pos;
        out.clear();
        while (pos < s.size()) {
            const char c = s[pos++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= s.size())
                return false;
            const char esc = s[pos++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos + 4 > s.size())
                    return false;
                unsigned value = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s[pos++];
                    value <<= 4;
                    if (h >= '0' && h <= '9')
                        value |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        value |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        value |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                out += static_cast<char>(value & 0xff);
                break;
              }
              default:
                return false;
            }
        }
        return false;
    }

    bool
    stringArray(std::vector<std::string> &out)
    {
        skipSpace();
        if (!literal("["))
            return false;
        out.clear();
        skipSpace();
        if (literal("]"))
            return true;
        for (;;) {
            std::string item;
            if (!quotedString(item))
                return false;
            out.push_back(std::move(item));
            skipSpace();
            if (literal("]"))
                return true;
            if (!literal(","))
                return false;
        }
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos == s.size();
    }

  private:
    void
    skipSpace()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t'))
            ++pos;
    }

    const std::string &s;
    std::size_t pos = 0;
};

/** Skip past one "name":value member we do not care about. */
bool
skipMember(LineScanner &in, const char *name)
{
    std::ostringstream key;
    key << "\"" << name << "\"";
    if (!in.literal(key.str().c_str()) || !in.literal(":"))
        return false;
    std::string str;
    std::uint64_t n = 0;
    return in.quotedString(str) || in.uint(n);
}

} // namespace

Expected<CheckpointReplay>
readCheckpoint(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return makeError(Errc::Io, "cannot open checkpoint '" + path +
                                       "' for resume");

    CheckpointReplay replay;
    std::string line;
    std::size_t line_no = 0;
    bool saw_header = false;

    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty())
            continue;

        LineScanner scan(line);
        bool parsed = false;
        if (line_no == 1) {
            std::uint64_t version = 0;
            parsed = scan.literal("{") &&
                     scan.literal("\"vcache_checkpoint\"") &&
                     scan.literal(":") && scan.uint(version) &&
                     version == 1 && scan.literal(",") &&
                     scan.literal("\"label\"") && scan.literal(":") &&
                     scan.quotedString(replay.header.label) &&
                     scan.literal(",") && scan.literal("\"points\"") &&
                     scan.literal(":") &&
                     scan.uint(replay.header.points) &&
                     scan.literal(",") && scan.literal("\"seed\"") &&
                     scan.literal(":") &&
                     scan.uint(replay.header.seed) &&
                     scan.literal("}") && scan.atEnd();
            saw_header = parsed;
        } else {
            std::uint64_t point = 0;
            if (scan.literal("{") && scan.literal("\"point\"") &&
                scan.literal(":") && scan.uint(point) &&
                scan.literal(",") && scan.literal("\"status\"") &&
                scan.literal(":")) {
                std::string status;
                if (scan.quotedString(status)) {
                    if (status == "ok") {
                        std::vector<std::string> row;
                        parsed = scan.literal(",") &&
                                 scan.literal("\"row\"") &&
                                 scan.literal(":") &&
                                 scan.stringArray(row) &&
                                 scan.literal("}") && scan.atEnd();
                        if (parsed) {
                            if (replay.done.count(point) ||
                                replay.failed.count(point))
                                ++replay.duplicates;
                            replay.done[point] = std::move(row);
                            replay.failed.erase(point);
                        }
                    } else if (status == "failed") {
                        std::uint64_t attempts = 0;
                        std::string text;
                        parsed = scan.literal(",") &&
                                 skipMember(scan, "code") &&
                                 scan.literal(",") &&
                                 scan.literal("\"attempts\"") &&
                                 scan.literal(":") &&
                                 scan.uint(attempts) &&
                                 scan.literal(",") &&
                                 scan.literal("\"error\"") &&
                                 scan.literal(":") &&
                                 scan.quotedString(text) &&
                                 scan.literal("}") && scan.atEnd();
                        if (parsed) {
                            if (replay.done.count(point) ||
                                replay.failed.count(point))
                                ++replay.duplicates;
                            replay.failed.insert(point);
                            replay.done.erase(point);
                        }
                    }
                }
            }
        }

        if (!parsed) {
            // A torn final line is the expected signature of a killed
            // process; anything earlier is real corruption.  getline
            // sets eofbit only when the line ran out of file before a
            // terminating '\n', so a complete (newline-terminated)
            // final record that fails to parse is corruption too --
            // the writer never emits a record without its newline.
            if (in.eof()) {
                warn("checkpoint '", path, "': ignoring torn final "
                     "line ", line_no);
                break;
            }
            return makeError(Errc::Io,
                             "checkpoint '" + path + "' line " +
                                 std::to_string(line_no) +
                                 " is corrupt");
        }
    }

    if (!saw_header)
        return makeError(Errc::Io, "checkpoint '" + path +
                                       "' has no valid header");
    return replay;
}

Expected<void>
checkResumeCompatible(const CheckpointReplay &replay,
                      const CheckpointHeader &expected)
{
    const CheckpointHeader &h = replay.header;
    if (h.label != expected.label)
        return makeError(Errc::InvalidConfig,
                         "checkpoint label '" + h.label +
                             "' does not match sweep '" +
                             expected.label + "'");
    if (h.points != expected.points)
        return makeError(Errc::InvalidConfig,
                         "checkpoint has " + std::to_string(h.points) +
                             " points but the sweep has " +
                             std::to_string(expected.points) +
                             " (grid changed?)");
    if (h.seed != expected.seed)
        return makeError(Errc::InvalidConfig,
                         "checkpoint seed " + std::to_string(h.seed) +
                             " does not match --seed " +
                             std::to_string(expected.seed));
    return {};
}

} // namespace vcache
