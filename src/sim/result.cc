#include "sim/result.hh"

namespace vcache
{

double
SimResult::cyclesPerResult() const
{
    return results ? static_cast<double>(totalCycles) /
                         static_cast<double>(results)
                   : 0.0;
}

double
SimResult::missRatio() const
{
    const auto accesses = hits + misses;
    return accesses ? static_cast<double>(misses) /
                          static_cast<double>(accesses)
                    : 0.0;
}

} // namespace vcache
