/**
 * @file
 * SMARTS-style systematic sampling for the trace-driven simulators.
 *
 * A long trace is split into contiguous *measurement units* of (at
 * least) a configurable number of vector elements.  Detailed timing
 * simulation runs only on a systematically sampled subset of units;
 * everything between them is *functionally warmed*: the vector cache
 * sees every access (hits, misses, replacement updates) but no clock,
 * bank or bus state is modelled.  Each sampled unit is entered
 * through a short *detailed-warming prefix* of the ops immediately
 * before it, which re-warms the (short-horizon) bank and bus timing
 * state that functional warming cannot carry.
 *
 * The state a sampled unit starts from is captured as a *live-point*:
 * the cache's complete tag/replacement snapshot
 * (Cache::captureState()) plus every already-touched line the unit's
 * window can re-touch (so compulsory-miss classification survives the
 * jump).  Live-points make units independent -- each is measured on
 * a freshly reset scratch simulator -- so they shard across a thread
 * pool with bit-identical results whatever the worker count, and can
 * be
 * serialized through the sim/checkpoint journal for inspection or
 * offline replay.
 *
 * The estimator is the ratio estimator of cluster sampling: with
 * per-unit cycles y_j and elements x_j over n of N units,
 * R = sum(y)/sum(x) estimates cycles-per-element, and the Student-t
 * confidence interval uses the residuals d_j = y_j - R x_j with a
 * finite-population correction.  Sampling starts at a rate of about
 * `initialUnits` units and doubles (halving the systematic stride,
 * which keeps earlier measurements valid -- the sample sets nest)
 * until the target relative half-width is met or the trace is
 * exhausted.  Because a periodic trace can alias with the systematic
 * stride (the sample looks uniform while the skipped phase differs),
 * an early stop additionally requires the previous, coarser round's
 * estimate to fall inside the current interval -- stride-k aliasing
 * is exposed at stride k/2, so at least two rounds always run.
 * The reported half-width is floored at `minRelativeCi`
 * as an allowance for non-sampling bias (the cold bank/bus horizon at
 * each live-point that the detailed prefix re-warms only after ~t_m
 * cycles).
 *
 * The MM-model machine carries no functional state at all, so its
 * sampler simply skips unsampled units; its speedup is the sampling
 * factor itself.  The CC sampler's functional walk additionally
 * memo-skips repeated identical ops once a zero-miss pass provably
 * left the cache unchanged -- valid for every cache organization,
 * including those the run-batched engine refuses.
 */

#ifndef VCACHE_SIM_SAMPLING_HH
#define VCACHE_SIM_SAMPLING_HH

#include <cstdint>
#include <string>
#include <vector>

#include "analytic/machine.hh"
#include "cache/factory.hh"
#include "obs/registry.hh"
#include "sim/cancel.hh"
#include "simd/kernels.hh"
#include "sim/result.hh"
#include "trace/access.hh"
#include "util/result.hh"

namespace vcache
{

/** Knobs of the sampling engine. */
struct SamplingOptions
{
    /** Minimum vector elements per measurement unit. */
    std::uint64_t unitElements = 4096;

    /**
     * Detailed-warming prefix, in vector ops, before each unit.  One
     * op suffices for the paper machines: banks and buses stay busy
     * at most ~t_m cycles, far less than one vector op.
     */
    std::uint64_t warmupOps = 1;

    /** Stop once the CI half-width is within this fraction of R. */
    double targetRelativeCi = 0.03;

    /** Two-sided confidence level of the interval. */
    double confidence = 0.95;

    /** First round samples about this many units. */
    std::uint64_t initialUnits = 30;

    /**
     * Floor on the reported relative half-width: the allowance for
     * non-sampling bias (cold bank/bus horizons at live-points).
     */
    double minRelativeCi = 0.01;

    /** Worker threads for unit measurement; <= 1 runs inline. */
    unsigned jobs = 1;

    /** Seed of the systematic sample offset. */
    std::uint64_t seed = 1;

    /** CcSimulator::setNonBlockingMisses for the measured units. */
    bool nonBlocking = false;

    /**
     * Gang-probe the warming walk on mappings whose read hits are
     * inert (see simd::Kernels::strideProbe), skipping all-hit gangs
     * wholesale.  Defaults to the VCACHE_GANG setting; the
     * differential tests pin both values to identical estimates.
     */
    bool gangWarm = simd::gangReplayDefault();

    /**
     * When non-empty, serialize every captured live-point into this
     * sim/checkpoint journal (one recordDone per unit).
     */
    std::string livePointJournal;

    /** Optional cooperative cancellation. */
    const CancelToken *cancel = nullptr;

    /** Optional sampling.* counter sink. */
    ObsRegistry *registry = nullptr;
};

/** What the sampling engine reports. */
struct SamplingEstimate
{
    /** Ratio estimate R of cycles per vector element. */
    double cyclesPerElement = 0.0;

    /** Student-t CI half-width (cycles per element). */
    double ciHalfWidth = 0.0;

    /** ciHalfWidth / cyclesPerElement. */
    double relativeCi = 0.0;

    /** relativeCi <= the target when sampling stopped. */
    bool ciMet = false;

    std::uint64_t unitsTotal = 0;
    std::uint64_t unitsMeasured = 0;
    std::uint64_t elementsTotal = 0;
    std::uint64_t elementsMeasured = 0;

    /**
     * Elements walked element-wise by the functional warmer, as a
     * fraction of the trace (0 for the MM machine; the memo-skipped
     * remainder cost nothing).
     */
    double warmingFraction = 0.0;

    /** Auto-tune rounds run (1 = first rate sufficed). */
    std::uint64_t rounds = 0;

    /** Summed detailed results of the measurement windows. */
    SimResult detailedTotals;
};

/** One measurement unit: ops [opBegin, opEnd) of the trace. */
struct SamplingUnit
{
    std::size_t opBegin = 0;
    std::size_t opEnd = 0;
    std::uint64_t elements = 0;
};

/**
 * Split a trace into contiguous units of at least `unit_elements`
 * vector elements (one op never splits; the tail unit may be short).
 */
std::vector<SamplingUnit> partitionUnits(const Trace &trace,
                                         std::uint64_t unit_elements);

/**
 * The serialized start state of one sampled unit: where the detailed
 * prefix begins (captureOp), the unit window, the cache snapshot at
 * captureOp, and the already-touched lines the prefix or window can
 * re-touch (compulsory-miss seeding; a superset of the actual
 * re-touches is harmless).  Bank and bus timing state is
 * intentionally absent -- the functional warmer cannot know it; the
 * detailed prefix re-warms it.
 */
struct LivePoint
{
    std::uint64_t unit = 0;
    std::size_t captureOp = 0;
    std::size_t unitBegin = 0;
    std::size_t unitEnd = 0;
    std::vector<std::uint64_t> cacheState;
    std::vector<Addr> prewarmedLines;
};

/** Encode a live-point as a checkpoint-journal row. */
std::vector<std::string> encodeLivePoint(const LivePoint &lp);

/** Decode a checkpoint-journal row (unit comes from the record key). */
Expected<LivePoint> decodeLivePoint(std::uint64_t unit,
                                    const std::vector<std::string> &row);

/**
 * Sampled estimate of the CC-model machine's cycles-per-element on
 * `trace`.  Fails with InvalidConfig on an empty trace or bad knobs;
 * Cancelled/Timeout propagate from the cancel token.
 */
Expected<SamplingEstimate> sampleCc(const MachineParams &machine,
                                    const CacheConfig &cache_config,
                                    const Trace &trace,
                                    const SamplingOptions &opts = {});

/** Sampled estimate for the cacheless MM-model machine. */
Expected<SamplingEstimate> sampleMm(const MachineParams &machine,
                                    const Trace &trace,
                                    const SamplingOptions &opts = {});

} // namespace vcache

#endif // VCACHE_SIM_SAMPLING_HH
