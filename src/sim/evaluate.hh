/**
 * @file
 * Pure single-point evaluation: one (config, workload, seed) tuple in,
 * one model + simulator measurement out.
 *
 * This is the shared kernel behind bench/sweep_grid and the serving
 * layer (src/serve): both hand their points to evaluatePoint() so a
 * row computed by the CLI and a response computed by the server are
 * byte-identical by construction.  The request carries everything
 * that can change the answer -- machine knobs, workload knobs, seed,
 * engine -- and canonicalEvalRequest() renders it into a canonical
 * string whose FNV-1a hash keys the content-addressed memo store.
 *
 * Layering: this lives in vcache_sim and deliberately re-derives the
 * paper defaults instead of calling core/defaults (vcache_core links
 * vcache_sim; using it here would cycle).  EvaluateDefaults tests pin
 * the two sets of defaults against each other.
 */

#ifndef VCACHE_SIM_EVALUATE_HH
#define VCACHE_SIM_EVALUATE_HH

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "analytic/machine.hh"
#include "sim/cancel.hh"
#include "sim/engine.hh"
#include "sim/result.hh"
#include "trace/access.hh"
#include "util/result.hh"

namespace vcache
{

/** One point of the evaluated surface, with paper defaults. */
struct EvalRequest
{
    /** log2 of the number of memory banks (paper M64 default). */
    unsigned bankBits = 6;
    /** Bank busy time t_m, in cycles. */
    std::uint64_t memoryTime = 16;
    /** Blocking factor B; the model workload uses R = B. */
    std::uint64_t blockingFactor = 1024;
    /** Probability of a double-stream operation, P_ds. */
    double pDoubleStream = 0.2;
    /** Trace RNG seed. */
    std::uint64_t seed = 1;
    /** Also run the trace-driven simulators (model-only if false). */
    bool sim = true;
    /** Simulator execution engine. */
    SimEngine engine = SimEngine::Auto;
    /** Sampled engine only: target relative 95% CI half-width. */
    double targetCi = 0.03;
};

/** Model + simulator measurements at one point. */
struct EvalResult
{
    /** Analytic cycles/result for the three paper machines. */
    double modelMm = 0.0;
    double modelDirect = 0.0;
    double modelPrime = 0.0;

    /** Simulated cycles/result (all engines; 0 when !sim). */
    double simMm = 0.0;
    double simDirect = 0.0;
    double simPrime = 0.0;

    /** Full simulator counters (exact engines only). */
    SimResult mm;
    SimResult direct;
    SimResult prime;

    /** 95% CI half-widths (sampled engine only). */
    double mmCi = 0.0;
    double directCi = 0.0;
    double primeCi = 0.0;
};

/**
 * Reject requests whose evaluation would be meaningless or unbounded:
 * probabilities outside [0, 1], zero-sized workloads, machines larger
 * than any the model targets.  Every failure is Errc::InvalidConfig
 * with a message naming the field, so a serving layer can echo it to
 * the client verbatim.
 */
Expected<void> validateEvalRequest(const EvalRequest &req);

/** Machine implied by the request: paper defaults plus its knobs. */
MachineParams evalMachine(const EvalRequest &req);

/** Model workload implied by the request (R = B, paper defaults). */
WorkloadParams evalWorkload(const EvalRequest &req);

/**
 * Canonical one-line rendering of a request, the unit of content
 * addressing.  Two requests share a canonical form iff evaluatePoint
 * is pinned to return bit-identical results for them; in particular
 * Auto and Scalar both canonicalize to "exact" (their equivalence is
 * differentially tested), and targetCi appears only for the sampled
 * engine, which is the only one that reads it.  Doubles render in
 * shortest round-trip form, so distinct values never collide.
 */
std::string canonicalEvalRequest(const EvalRequest &req);

/** FNV-1a 64-bit hash (memo keys; collision-checked by the store). */
std::uint64_t fnv1a64(std::string_view text);

/**
 * Shortest round-trip decimal rendering of a double.  Canonical forms
 * and served payloads both use it so equal values always render to
 * equal bytes and distinct values never collide (unlike the CSV's
 * fixed 3-decimal Table::format).
 */
std::string canonicalDouble(double v);

/** Hash of the canonical form: the memo-store key of the request. */
std::uint64_t evalRequestKey(const EvalRequest &req);

/**
 * Evaluate one point: analytic model always, simulators per
 * req.engine.  Pure apart from the cost: no global state, no output;
 * equal requests yield bit-identical results.  Invalid requests,
 * cancellation/deadline (via `cancel`) and sampling failures come
 * back as errors, never as process exits.
 */
Expected<EvalResult> evaluatePoint(const EvalRequest &req,
                                   const CancelToken *cancel = nullptr);

/**
 * Workload identity of a request: every field that shapes the op
 * stream the simulators replay -- trace kind, VCM tuple, seed, and
 * the bank count (the MM workload's max stride is the bank count, so
 * m is part of the *workload*, not just the machine).  t_m, engine
 * and targetCi are deliberately absent: requests differing only in
 * those replay the same ops, which is what batched evaluation
 * amortizes.  Model-only requests read no trace and all share one
 * key.
 */
std::string workloadKey(const EvalRequest &req);

/**
 * The materialized op streams of one workload key, built once and
 * shared read-only by every request in a batch.  generateVcmTrace()
 * drains the same VcmTraceSource the streaming path replays, so
 * arena-fed evaluation is bit-identical to streamed evaluation by
 * construction.
 */
struct TraceArena
{
    /** MM-machine workload (maxStride = banks). */
    Trace mm;
    /** CC-machine workload (maxStride = 8192). */
    Trace cc;
};

/** Materialize the arena for a validated sim request's workload. */
TraceArena buildTraceArena(const EvalRequest &req);

/**
 * evaluatePoint() against a pre-built arena.  `arena` must be
 * buildTraceArena(req) of the same workload key; results are
 * bit-identical to the streaming overload.
 */
Expected<EvalResult> evaluatePoint(const EvalRequest &req,
                                   const TraceArena &arena,
                                   const CancelToken *cancel = nullptr);

/**
 * Evaluate many points, materializing each distinct workload once and
 * fanning the shared op stream out to every config that wants it: the
 * CC simulations of an exact-engine group run as one gang pass
 * (sim/gang.hh) instead of once per request.  Results come back in
 * input order and are pinned bit-identical to per-point
 * evaluatePoint() -- tests/sim/gang_test.cc holds the line.
 *
 * Per-request isolation: an invalid request, a tripped per-request
 * token or a per-request failure yields an error at that index only.
 * `cancels` is either empty or one (possibly null) token per request;
 * `cancel` is a batch-wide fallback for requests without their own.
 * When a fault-injection plan is armed the group falls back to
 * per-point evaluation over the shared arena so every
 * memory.bank.issue site hit stays attributable to one request (the
 * same rule the batched MM engine applies).
 */
std::vector<Expected<EvalResult>>
evaluateBatch(std::span<const EvalRequest> reqs,
              std::span<const CancelToken *const> cancels = {},
              const CancelToken *cancel = nullptr);

} // namespace vcache

#endif // VCACHE_SIM_EVALUATE_HH
