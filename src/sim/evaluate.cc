#include "sim/evaluate.hh"

#include <charconv>
#include <map>

#include "analytic/model.hh"
#include "sim/cc_sim.hh"
#include "sim/gang.hh"
#include "sim/runner.hh"
#include "sim/sampling.hh"
#include "trace/source.hh"
#include "trace/vcm.hh"
#include "util/faultinject.hh"

namespace vcache
{

namespace
{

// Bounds that keep a single point's cost finite without cutting into
// anything the paper sweeps: the figures stop at M = 64 banks,
// t_m = 64 and B = 8K, all far inside these.
constexpr unsigned kMaxBankBits = 12;
constexpr std::uint64_t kMaxMemoryTime = 4096;
constexpr std::uint64_t kMaxBlockingFactor = std::uint64_t{1} << 20;

/** VCM workload of one grid point (matches the historical sweep). */
VcmParams
vcmPoint(const EvalRequest &req)
{
    VcmParams p;
    p.blockingFactor = req.blockingFactor;
    p.reuseFactor = 8;
    p.pDoubleStream = req.pDoubleStream;
    p.blocks = 2;
    return p;
}

/** Sampled-engine path: materialized traces, CI-targeted estimates. */
Expected<void>
runSampled(const EvalRequest &req, const MachineParams &machine,
           const Trace &mm_trace, const Trace &cc_trace,
           const CancelToken *cancel, EvalResult &out)
{
    SamplingOptions opts;
    opts.targetRelativeCi = req.targetCi;
    opts.seed = req.seed;
    opts.cancel = cancel;

    const auto mm = sampleMm(machine, mm_trace, opts);
    if (!mm.ok())
        return mm.error();
    out.simMm = mm.value().cyclesPerElement;
    out.mmCi = mm.value().ciHalfWidth;

    const auto direct = sampleCc(
        machine, ccCacheConfig(machine, CacheScheme::Direct), cc_trace,
        opts);
    if (!direct.ok())
        return direct.error();
    out.simDirect = direct.value().cyclesPerElement;
    out.directCi = direct.value().ciHalfWidth;

    const auto prime = sampleCc(
        machine, ccCacheConfig(machine, CacheScheme::Prime), cc_trace,
        opts);
    if (!prime.ok())
        return prime.error();
    out.simPrime = prime.value().cyclesPerElement;
    out.primeCi = prime.value().ciHalfWidth;
    return {};
}

/** Exact engines: stream the traces, keep the full counters. */
Expected<void>
runExact(const EvalRequest &req, const MachineParams &machine,
         const CancelToken *cancel, EvalResult &out)
{
    // Stream the workloads straight from the generators' RNG: a solo
    // point never materializes its trace.  Batches *do* materialize
    // (once per workload, into a TraceArena); generateVcmTrace()
    // drains this same source, so the two forms replay identical op
    // streams by construction.
    try {
        VcmParams p = vcmPoint(req);
        p.maxStride = machine.banks();
        VcmTraceSource mm_source(p, req.seed);
        out.mm = simulateMm(machine, mm_source, cancel, req.engine);
        p.maxStride = 8192;
        VcmTraceSource cc_source(p, req.seed);
        out.direct = simulateCc(machine, CacheScheme::Direct,
                                cc_source, cancel, req.engine);
        cc_source.reset();
        out.prime = simulateCc(machine, CacheScheme::Prime, cc_source,
                               cancel, req.engine);
    } catch (const VcError &e) {
        return Expected<void>(e.error());
    }
    out.simMm = out.mm.cyclesPerResult();
    out.simDirect = out.direct.cyclesPerResult();
    out.simPrime = out.prime.cyclesPerResult();
    return {};
}

/** runExact over a materialized arena: same sims, same order. */
Expected<void>
runExactArena(const EvalRequest &req, const MachineParams &machine,
              const TraceArena &arena, const CancelToken *cancel,
              EvalResult &out)
{
    try {
        TraceVectorSource mm_source(arena.mm);
        out.mm = simulateMm(machine, mm_source, cancel, req.engine);
        TraceVectorSource cc_source(arena.cc);
        out.direct = simulateCc(machine, CacheScheme::Direct,
                                cc_source, cancel, req.engine);
        cc_source.reset();
        out.prime = simulateCc(machine, CacheScheme::Prime, cc_source,
                               cancel, req.engine);
    } catch (const VcError &e) {
        return Expected<void>(e.error());
    }
    out.simMm = out.mm.cyclesPerResult();
    out.simDirect = out.direct.cyclesPerResult();
    out.simPrime = out.prime.cyclesPerResult();
    return {};
}

/** The analytic third of a result (always computed, sim or not). */
void
fillModels(const EvalRequest &req, const MachineParams &machine,
           EvalResult &out)
{
    const WorkloadParams workload = evalWorkload(req);
    out.modelMm = evaluate(MachineKind::MemoryOnly, machine, workload)
                      .cyclesPerResult;
    out.modelDirect =
        evaluate(MachineKind::DirectCache, machine, workload)
            .cyclesPerResult;
    out.modelPrime =
        evaluate(MachineKind::PrimeCache, machine, workload)
            .cyclesPerResult;
}

} // namespace

std::string
canonicalDouble(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

Expected<void>
validateEvalRequest(const EvalRequest &req)
{
    auto reject = [](std::string message) {
        return Expected<void>(
            makeError(Errc::InvalidConfig, std::move(message)));
    };
    if (req.bankBits < 1 || req.bankBits > kMaxBankBits)
        return reject("bank_bits " + std::to_string(req.bankBits) +
                      " outside [1, " + std::to_string(kMaxBankBits) +
                      "]");
    if (req.memoryTime < 1 || req.memoryTime > kMaxMemoryTime)
        return reject("t_m " + std::to_string(req.memoryTime) +
                      " outside [1, " + std::to_string(kMaxMemoryTime) +
                      "]");
    if (req.blockingFactor < 1 ||
        req.blockingFactor > kMaxBlockingFactor)
        return reject("B " + std::to_string(req.blockingFactor) +
                      " outside [1, " +
                      std::to_string(kMaxBlockingFactor) + "]");
    if (!(req.pDoubleStream >= 0.0) || !(req.pDoubleStream <= 1.0))
        return reject("p_ds " + canonicalDouble(req.pDoubleStream) +
                      " outside [0, 1]");
    if (req.engine == SimEngine::Sampled &&
        (!(req.targetCi > 0.0) || !(req.targetCi < 1.0)))
        return reject("target_ci " + canonicalDouble(req.targetCi) +
                      " outside (0, 1)");
    return {};
}

MachineParams
evalMachine(const EvalRequest &req)
{
    MachineParams machine;
    machine.mvl = 64;
    machine.cacheIndexBits = 13; // 8K-word cache
    machine.bankBits = req.bankBits;
    machine.memoryTime = req.memoryTime;
    return machine;
}

WorkloadParams
evalWorkload(const EvalRequest &req)
{
    WorkloadParams workload;
    workload.blockingFactor = static_cast<double>(req.blockingFactor);
    workload.reuseFactor = static_cast<double>(req.blockingFactor);
    workload.pDoubleStream = req.pDoubleStream;
    workload.pStride1First = 0.25;
    workload.pStride1Second = 0.25;
    workload.totalData = 65536.0;
    return workload;
}

std::string
canonicalEvalRequest(const EvalRequest &req)
{
    std::string out = "vc-eval/1";
    out += " m=" + std::to_string(req.bankBits);
    out += " tm=" + std::to_string(req.memoryTime);
    out += " B=" + std::to_string(req.blockingFactor);
    out += " pds=" + canonicalDouble(req.pDoubleStream);
    if (!req.sim) {
        // The analytic model reads no randomness: model-only requests
        // with different seeds share one cache entry.
        out += " engine=none";
        return out;
    }
    out += " seed=" + std::to_string(req.seed);
    if (req.engine == SimEngine::Sampled) {
        // Only the sampled engine reads targetCi, so only its key
        // carries it; Auto and Scalar are pinned bit-identical and
        // share one cache entry.
        out += " engine=sampled ci=" + canonicalDouble(req.targetCi);
    } else {
        out += " engine=exact";
    }
    return out;
}

std::uint64_t
fnv1a64(std::string_view text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
evalRequestKey(const EvalRequest &req)
{
    return fnv1a64(canonicalEvalRequest(req));
}

Expected<EvalResult>
evaluatePoint(const EvalRequest &req, const CancelToken *cancel)
{
    if (auto valid = validateEvalRequest(req); !valid.ok())
        return valid.error();

    const MachineParams machine = evalMachine(req);
    EvalResult out;
    fillModels(req, machine, out);
    if (!req.sim)
        return out;

    if (req.engine == SimEngine::Sampled) {
        // The sampled engine needs materialized traces anyway; build
        // this point's private arena.
        const TraceArena arena = buildTraceArena(req);
        if (auto ran = runSampled(req, machine, arena.mm, arena.cc,
                                  cancel, out);
            !ran.ok())
            return ran.error();
        return out;
    }
    if (auto ran = runExact(req, machine, cancel, out); !ran.ok())
        return ran.error();
    return out;
}

std::string
workloadKey(const EvalRequest &req)
{
    if (!req.sim)
        return "vc-wl/1 model";
    std::string out = "vc-wl/1 vcm";
    out += " m=" + std::to_string(req.bankBits);
    out += " B=" + std::to_string(req.blockingFactor);
    out += " pds=" + canonicalDouble(req.pDoubleStream);
    out += " seed=" + std::to_string(req.seed);
    return out;
}

TraceArena
buildTraceArena(const EvalRequest &req)
{
    const MachineParams machine = evalMachine(req);
    VcmParams p = vcmPoint(req);
    TraceArena arena;
    p.maxStride = machine.banks();
    arena.mm = generateVcmTrace(p, req.seed);
    p.maxStride = 8192;
    arena.cc = generateVcmTrace(p, req.seed);
    return arena;
}

Expected<EvalResult>
evaluatePoint(const EvalRequest &req, const TraceArena &arena,
              const CancelToken *cancel)
{
    if (auto valid = validateEvalRequest(req); !valid.ok())
        return valid.error();

    const MachineParams machine = evalMachine(req);
    EvalResult out;
    fillModels(req, machine, out);
    if (!req.sim)
        return out;

    const auto ran =
        req.engine == SimEngine::Sampled
            ? runSampled(req, machine, arena.mm, arena.cc, cancel,
                         out)
            : runExactArena(req, machine, arena, cancel, out);
    if (!ran.ok())
        return ran.error();
    return out;
}

std::vector<Expected<EvalResult>>
evaluateBatch(std::span<const EvalRequest> reqs,
              std::span<const CancelToken *const> cancels,
              const CancelToken *cancel)
{
    std::vector<Expected<EvalResult>> out;
    out.reserve(reqs.size());
    for (std::size_t i = 0; i < reqs.size(); ++i)
        out.emplace_back(makeError(Errc::InternalInvariant,
                                   "batch slot never evaluated"));

    auto tokenOf = [&](std::size_t i) {
        const CancelToken *own =
            cancels.empty() ? nullptr : cancels[i];
        return own ? own : cancel;
    };

    // Group valid requests by workload key, input order preserved
    // within each group (results land by index, so group order never
    // shows in the output).
    std::map<std::string, std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < reqs.size(); ++i) {
        if (auto valid = validateEvalRequest(reqs[i]); !valid.ok()) {
            out[i] = valid.error();
            continue;
        }
        groups[workloadKey(reqs[i])].push_back(i);
    }

    for (const auto &[key, members] : groups) {
        const EvalRequest &first = reqs[members.front()];
        if (!first.sim) {
            // Model-only: no trace, nothing to share.
            for (const std::size_t i : members)
                out[i] = evaluatePoint(reqs[i], tokenOf(i));
            continue;
        }

        const TraceArena arena = buildTraceArena(first);

        // The sampled engine drives its own unit scheduler; it shares
        // the arena but not the gang pass.
        std::vector<std::size_t> exact;
        exact.reserve(members.size());
        for (const std::size_t i : members) {
            if (reqs[i].engine == SimEngine::Sampled)
                out[i] = evaluatePoint(reqs[i], arena, tokenOf(i));
            else
                exact.push_back(i);
        }

        // An armed fault plan needs every memory.bank.issue hit
        // attributable to one request: gang lanes interleave their
        // issues inside one pass, so fall back to per-point order
        // (the batched MM engine's own rule).
        const bool faulted = faults::kEnabled && faults::activeCheap();
        if (exact.size() < 2 || faulted) {
            for (const std::size_t i : exact)
                out[i] = evaluatePoint(reqs[i], arena, tokenOf(i));
            continue;
        }

        // Gang path: models and the MM machine per request (t_m is
        // woven through every MM bank horizon), then one shared
        // functional pass per CC scheme.
        std::vector<EvalResult> partial(exact.size());
        std::vector<bool> failed(exact.size(), false);
        std::vector<GangLane> lanes;
        std::vector<std::size_t> laneIdx;
        lanes.reserve(exact.size());
        laneIdx.reserve(exact.size());
        for (std::size_t k = 0; k < exact.size(); ++k) {
            const std::size_t i = exact[k];
            const MachineParams machine = evalMachine(reqs[i]);
            fillModels(reqs[i], machine, partial[k]);
            try {
                TraceVectorSource mm_source(arena.mm);
                partial[k].mm = simulateMm(machine, mm_source,
                                           tokenOf(i),
                                           reqs[i].engine);
                partial[k].simMm = partial[k].mm.cyclesPerResult();
            } catch (const VcError &e) {
                out[i] = e.error();
                failed[k] = true;
                continue;
            }
            lanes.push_back(GangLane{reqs[i].memoryTime, tokenOf(i)});
            laneIdx.push_back(k);
        }

        if (lanes.empty())
            continue;
        const MachineParams base = evalMachine(first);
        TraceVectorSource cc_source(arena.cc);
        const auto direct = simulateCcGang(base, CacheScheme::Direct,
                                           cc_source, lanes);
        cc_source.reset();
        const auto prime = simulateCcGang(base, CacheScheme::Prime,
                                          cc_source, lanes);

        for (std::size_t n = 0; n < lanes.size(); ++n) {
            const std::size_t k = laneIdx[n];
            const std::size_t i = exact[k];
            if (!direct[n].ok()) {
                out[i] = direct[n].error();
                continue;
            }
            if (!prime[n].ok()) {
                out[i] = prime[n].error();
                continue;
            }
            EvalResult r = partial[k];
            r.direct = direct[n].value();
            r.prime = prime[n].value();
            r.simDirect = r.direct.cyclesPerResult();
            r.simPrime = r.prime.cyclesPerResult();
            out[i] = r;
        }
    }
    return out;
}

} // namespace vcache
