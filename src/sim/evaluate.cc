#include "sim/evaluate.hh"

#include <charconv>

#include "analytic/model.hh"
#include "sim/cc_sim.hh"
#include "sim/runner.hh"
#include "sim/sampling.hh"
#include "trace/source.hh"
#include "trace/vcm.hh"

namespace vcache
{

namespace
{

// Bounds that keep a single point's cost finite without cutting into
// anything the paper sweeps: the figures stop at M = 64 banks,
// t_m = 64 and B = 8K, all far inside these.
constexpr unsigned kMaxBankBits = 12;
constexpr std::uint64_t kMaxMemoryTime = 4096;
constexpr std::uint64_t kMaxBlockingFactor = std::uint64_t{1} << 20;

/** VCM workload of one grid point (matches the historical sweep). */
VcmParams
vcmPoint(const EvalRequest &req)
{
    VcmParams p;
    p.blockingFactor = req.blockingFactor;
    p.reuseFactor = 8;
    p.pDoubleStream = req.pDoubleStream;
    p.blocks = 2;
    return p;
}

/** Sampled-engine path: materialized traces, CI-targeted estimates. */
Expected<void>
runSampled(const EvalRequest &req, const MachineParams &machine,
           const CancelToken *cancel, EvalResult &out)
{
    SamplingOptions opts;
    opts.targetRelativeCi = req.targetCi;
    opts.seed = req.seed;
    opts.cancel = cancel;

    VcmParams p = vcmPoint(req);
    p.maxStride = machine.banks();
    const Trace mm_trace = generateVcmTrace(p, req.seed);
    const auto mm = sampleMm(machine, mm_trace, opts);
    if (!mm.ok())
        return mm.error();
    out.simMm = mm.value().cyclesPerElement;
    out.mmCi = mm.value().ciHalfWidth;

    p.maxStride = 8192;
    const Trace cc_trace = generateVcmTrace(p, req.seed);
    const auto direct = sampleCc(
        machine, ccCacheConfig(machine, CacheScheme::Direct), cc_trace,
        opts);
    if (!direct.ok())
        return direct.error();
    out.simDirect = direct.value().cyclesPerElement;
    out.directCi = direct.value().ciHalfWidth;

    const auto prime = sampleCc(
        machine, ccCacheConfig(machine, CacheScheme::Prime), cc_trace,
        opts);
    if (!prime.ok())
        return prime.error();
    out.simPrime = prime.value().cyclesPerElement;
    out.primeCi = prime.value().ciHalfWidth;
    return {};
}

/** Exact engines: stream the traces, keep the full counters. */
Expected<void>
runExact(const EvalRequest &req, const MachineParams &machine,
         const CancelToken *cancel, EvalResult &out)
{
    // Stream the workloads straight from the generators' RNG: no
    // point ever materializes its trace (large-B points would
    // otherwise allocate multi-megabyte vectors per evaluation).
    try {
        VcmParams p = vcmPoint(req);
        p.maxStride = machine.banks();
        VcmTraceSource mm_source(p, req.seed);
        out.mm = simulateMm(machine, mm_source, cancel, req.engine);
        p.maxStride = 8192;
        VcmTraceSource cc_source(p, req.seed);
        out.direct = simulateCc(machine, CacheScheme::Direct,
                                cc_source, cancel, req.engine);
        cc_source.reset();
        out.prime = simulateCc(machine, CacheScheme::Prime, cc_source,
                               cancel, req.engine);
    } catch (const VcError &e) {
        return Expected<void>(e.error());
    }
    out.simMm = out.mm.cyclesPerResult();
    out.simDirect = out.direct.cyclesPerResult();
    out.simPrime = out.prime.cyclesPerResult();
    return {};
}

} // namespace

std::string
canonicalDouble(double v)
{
    char buf[64];
    const auto res = std::to_chars(buf, buf + sizeof buf, v);
    return std::string(buf, res.ptr);
}

Expected<void>
validateEvalRequest(const EvalRequest &req)
{
    auto reject = [](std::string message) {
        return Expected<void>(
            makeError(Errc::InvalidConfig, std::move(message)));
    };
    if (req.bankBits < 1 || req.bankBits > kMaxBankBits)
        return reject("bank_bits " + std::to_string(req.bankBits) +
                      " outside [1, " + std::to_string(kMaxBankBits) +
                      "]");
    if (req.memoryTime < 1 || req.memoryTime > kMaxMemoryTime)
        return reject("t_m " + std::to_string(req.memoryTime) +
                      " outside [1, " + std::to_string(kMaxMemoryTime) +
                      "]");
    if (req.blockingFactor < 1 ||
        req.blockingFactor > kMaxBlockingFactor)
        return reject("B " + std::to_string(req.blockingFactor) +
                      " outside [1, " +
                      std::to_string(kMaxBlockingFactor) + "]");
    if (!(req.pDoubleStream >= 0.0) || !(req.pDoubleStream <= 1.0))
        return reject("p_ds " + canonicalDouble(req.pDoubleStream) +
                      " outside [0, 1]");
    if (req.engine == SimEngine::Sampled &&
        (!(req.targetCi > 0.0) || !(req.targetCi < 1.0)))
        return reject("target_ci " + canonicalDouble(req.targetCi) +
                      " outside (0, 1)");
    return {};
}

MachineParams
evalMachine(const EvalRequest &req)
{
    MachineParams machine;
    machine.mvl = 64;
    machine.cacheIndexBits = 13; // 8K-word cache
    machine.bankBits = req.bankBits;
    machine.memoryTime = req.memoryTime;
    return machine;
}

WorkloadParams
evalWorkload(const EvalRequest &req)
{
    WorkloadParams workload;
    workload.blockingFactor = static_cast<double>(req.blockingFactor);
    workload.reuseFactor = static_cast<double>(req.blockingFactor);
    workload.pDoubleStream = req.pDoubleStream;
    workload.pStride1First = 0.25;
    workload.pStride1Second = 0.25;
    workload.totalData = 65536.0;
    return workload;
}

std::string
canonicalEvalRequest(const EvalRequest &req)
{
    std::string out = "vc-eval/1";
    out += " m=" + std::to_string(req.bankBits);
    out += " tm=" + std::to_string(req.memoryTime);
    out += " B=" + std::to_string(req.blockingFactor);
    out += " pds=" + canonicalDouble(req.pDoubleStream);
    if (!req.sim) {
        // The analytic model reads no randomness: model-only requests
        // with different seeds share one cache entry.
        out += " engine=none";
        return out;
    }
    out += " seed=" + std::to_string(req.seed);
    if (req.engine == SimEngine::Sampled) {
        // Only the sampled engine reads targetCi, so only its key
        // carries it; Auto and Scalar are pinned bit-identical and
        // share one cache entry.
        out += " engine=sampled ci=" + canonicalDouble(req.targetCi);
    } else {
        out += " engine=exact";
    }
    return out;
}

std::uint64_t
fnv1a64(std::string_view text)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : text) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

std::uint64_t
evalRequestKey(const EvalRequest &req)
{
    return fnv1a64(canonicalEvalRequest(req));
}

Expected<EvalResult>
evaluatePoint(const EvalRequest &req, const CancelToken *cancel)
{
    if (auto valid = validateEvalRequest(req); !valid.ok())
        return valid.error();

    const MachineParams machine = evalMachine(req);
    const WorkloadParams workload = evalWorkload(req);

    EvalResult out;
    out.modelMm = evaluate(MachineKind::MemoryOnly, machine, workload)
                      .cyclesPerResult;
    out.modelDirect =
        evaluate(MachineKind::DirectCache, machine, workload)
            .cyclesPerResult;
    out.modelPrime =
        evaluate(MachineKind::PrimeCache, machine, workload)
            .cyclesPerResult;
    if (!req.sim)
        return out;

    const auto ran = req.engine == SimEngine::Sampled
                         ? runSampled(req, machine, cancel, out)
                         : runExact(req, machine, cancel, out);
    if (!ran.ok())
        return ran.error();
    return out;
}

} // namespace vcache
