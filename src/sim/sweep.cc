#include "sim/sweep.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>

#include "util/logging.hh"
#include "util/threadpool.hh"

namespace vcache
{

namespace
{

/** Largest --jobs value that is plausibly a thread count. */
constexpr std::uint64_t kMaxJobs = 1024;

/** Seconds between progress lines. */
constexpr double kProgressPeriod = 2.0;

/** Fixed one-decimal rendering for rates and ETAs. */
std::string
fmt1(double v)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << v;
    return os.str();
}

/** Minimal JSON string escaping for sweep labels. */
std::string
jsonLabel(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Append the per-worker pointsDone array as a JSON list. */
void
appendWorkerCounts(std::ostream &os,
                   const std::vector<SweepWorker> &workers)
{
    os << "\"workers\":[";
    for (std::size_t w = 0; w < workers.size(); ++w) {
        if (w)
            os << ',';
        os << workers[w].pointsDone.load(std::memory_order_relaxed);
    }
    os << ']';
}

} // namespace

double
SweepOutcome::pointsPerSecond() const
{
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(points) / seconds;
}

SweepOutcome
runSweep(std::size_t points,
         const std::function<void(std::size_t, SweepWorker &)> &eval,
         const SweepOptions &opts)
{
    vc_assert(eval, "sweep needs a point evaluator");

    unsigned jobs = opts.jobs ? opts.jobs : ThreadPool::defaultWorkers();
    if (points > 0 && jobs > points)
        jobs = static_cast<unsigned>(points);

    SweepOutcome outcome;
    outcome.points = points;
    outcome.jobs = jobs;
    if (points == 0)
        return outcome;

    std::vector<SweepWorker> workers(jobs);
    for (unsigned w = 0; w < jobs; ++w)
        workers[w].id = w;

    // Dynamic point distribution: each runner pulls the next unclaimed
    // index, so slow points do not stall a statically partitioned
    // neighbour.  Result placement stays deterministic because the
    // caller indexes by grid position.
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex done_mtx;
    std::condition_variable done_cv;

    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&start] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    std::ostream *telemetry = opts.telemetry.get();
    if (telemetry) {
        *telemetry << "{\"event\":\"sweep_start\",\"label\":\""
                   << jsonLabel(opts.label) << "\",\"points\":"
                   << points << ",\"jobs\":" << jobs << "}\n"
                   << std::flush;
    }

    {
        ThreadPool pool(jobs);
        for (unsigned w = 0; w < jobs; ++w) {
            pool.submit([&](unsigned worker) {
                for (;;) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= points)
                        return;
                    eval(i, workers[worker]);
                    workers[worker].pointsDone.fetch_add(
                        1, std::memory_order_relaxed);
                    if (done.fetch_add(1, std::memory_order_release) + 1 ==
                        points) {
                        std::lock_guard<std::mutex> lock(done_mtx);
                        done_cv.notify_all();
                    }
                }
            });
        }

        std::unique_lock<std::mutex> lock(done_mtx);
        double next_report = kProgressPeriod;
        while (done.load(std::memory_order_acquire) < points) {
            done_cv.wait_for(lock,
                             std::chrono::milliseconds(100));
            const double t = elapsed();
            if (t < next_report)
                continue;
            next_report = t + kProgressPeriod;
            const auto d = done.load(std::memory_order_acquire);
            if (d == 0 || d >= points)
                continue;
            const double rate = static_cast<double>(d) / t;
            const double eta =
                static_cast<double>(points - d) / rate;
            if (opts.progress) {
                inform(opts.label, ": ", d, "/", points, " points, ",
                       fmt1(rate), " points/s, ETA ", fmt1(eta), " s");
            }
            if (telemetry) {
                *telemetry << "{\"event\":\"sweep_progress\","
                           << "\"label\":\"" << jsonLabel(opts.label)
                           << "\",\"done\":" << d << ",\"points\":"
                           << points << ",\"elapsed_s\":" << fmt1(t)
                           << ",\"points_per_s\":" << fmt1(rate)
                           << ",\"eta_s\":" << fmt1(eta) << ',';
                appendWorkerCounts(*telemetry, workers);
                *telemetry << "}\n" << std::flush;
            }
        }
        lock.unlock();
        pool.wait();
    }

    outcome.seconds = elapsed();
    // Merge in worker-id order so the accumulation order never
    // depends on which worker finished last.
    for (const auto &w : workers)
        outcome.stats.merge(w.stats);

    if (opts.progress) {
        inform(opts.label, ": ", points, " points in ",
               fmt1(outcome.seconds), " s (",
               fmt1(outcome.pointsPerSecond()),
               " points/s, jobs=", jobs, ")");
    }
    if (telemetry) {
        *telemetry << "{\"event\":\"sweep_end\",\"label\":\""
                   << jsonLabel(opts.label) << "\",\"points\":"
                   << points << ",\"jobs\":" << jobs
                   << ",\"seconds\":" << fmt1(outcome.seconds)
                   << ",\"points_per_s\":"
                   << fmt1(outcome.pointsPerSecond()) << ',';
        appendWorkerCounts(*telemetry, workers);
        *telemetry << "}\n" << std::flush;
    }
    return outcome;
}

void
addSweepFlags(ArgParser &args)
{
    args.addFlag("jobs", "0",
                 "worker threads for grid sweeps; 0 = one per "
                 "hardware thread");
    args.addFlag("seed", "1",
                 "base seed folded into every per-point trace seed");
    args.addFlag("progress", "true",
                 "print progress/throughput lines on stderr");
    args.addFlag("telemetry", "",
                 "emit machine-readable JSON-lines sweep progress "
                 "(per-worker point counts) to this file; "
                 "\"-\" = stderr");
}

SweepOptions
sweepOptionsFromFlags(const ArgParser &args, const std::string &label)
{
    SweepOptions opts;
    const std::uint64_t jobs = args.getUint("jobs");
    if (jobs > kMaxJobs)
        vc_fatal("--jobs ", jobs, " is out of range (max ", kMaxJobs,
                 ")");
    opts.jobs = static_cast<unsigned>(jobs);
    opts.seed = args.getUint("seed");
    opts.progress = args.getBool("progress");
    opts.label = label;
    const std::string telemetry = args.getString("telemetry");
    if (telemetry == "-") {
        // Non-owning alias: stderr outlives every sweep.
        opts.telemetry =
            std::shared_ptr<std::ostream>(std::shared_ptr<void>(),
                                          &std::cerr);
    } else if (!telemetry.empty()) {
        auto file = std::make_shared<std::ofstream>(telemetry);
        if (!*file)
            vc_fatal("cannot open --telemetry destination '",
                     telemetry, "'");
        opts.telemetry = file;
    }
    return opts;
}

} // namespace vcache
