#include "sim/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <mutex>
#include <sstream>
#include <thread>

#include "obs/registry.hh"
#include "sim/checkpoint.hh"
#include "util/faultinject.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/threadpool.hh"

namespace vcache
{

namespace
{

/** Largest --jobs value that is plausibly a thread count. */
constexpr std::uint64_t kMaxJobs = 1024;

/** Largest --retries value that is plausibly intentional. */
constexpr std::uint64_t kMaxRetries = 100;

/** Seconds between progress lines. */
constexpr double kProgressPeriod = 2.0;

/** Watchdog poll period. */
constexpr auto kWatchdogTick = std::chrono::milliseconds(20);

/**
 * Monitor ticks (~100 ms each) of runner-healing with zero completed
 * points before the sweep concludes the pool is unrecoverable (an
 * injected dispatch fault firing on every submission) and drains.
 */
constexpr unsigned kMaxBarrenHeals = 20;

/** Backoff sleeps are sliced this fine so a drain is not kept waiting. */
constexpr auto kBackoffSlice = std::chrono::milliseconds(25);

/**
 * Interrupt request shared between the signal handler and the sweep.
 * The handler writes nothing but this flag -- no locks, no I/O, no
 * allocation -- which is the whole async-signal-safety contract; the
 * monitor thread polls it on its normal tick.  A lock-free atomic
 * (asserted below) is async-signal-safe like sig_atomic_t but also
 * race-free for the worker threads and requestSweepInterrupt(),
 * which read and write it off the signal path.
 */
std::atomic<int> g_sweep_interrupt{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler needs a lock-free interrupt flag");

void
sweepSignalHandler(int)
{
    g_sweep_interrupt.store(1, std::memory_order_relaxed);
}

/** Poll the drain flag (signal handler or cross-thread request). */
bool
interruptPending()
{
    return g_sweep_interrupt.load(std::memory_order_relaxed) != 0;
}

/** Install SIGINT/SIGTERM drain handlers for one sweep's lifetime. */
class ScopedSignalHandlers
{
  public:
    explicit ScopedSignalHandlers(bool install) : installed(install)
    {
        if (!installed)
            return;
        prev_int = std::signal(SIGINT, sweepSignalHandler);
        prev_term = std::signal(SIGTERM, sweepSignalHandler);
    }

    ~ScopedSignalHandlers()
    {
        if (!installed)
            return;
        std::signal(SIGINT, prev_int);
        std::signal(SIGTERM, prev_term);
    }

    ScopedSignalHandlers(const ScopedSignalHandlers &) = delete;
    ScopedSignalHandlers &operator=(const ScopedSignalHandlers &) =
        delete;

  private:
    bool installed;
    void (*prev_int)(int) = SIG_DFL;
    void (*prev_term)(int) = SIG_DFL;
};

/** Fixed one-decimal rendering for rates and ETAs. */
std::string
fmt1(double v)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(1) << v;
    return os.str();
}

/** Minimal JSON string escaping for sweep labels. */
std::string
jsonLabel(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

/** Append the per-worker pointsDone array as a JSON list. */
void
appendWorkerCounts(std::ostream &os,
                   const std::vector<SweepWorker> &workers)
{
    os << "\"workers\":[";
    for (std::size_t w = 0; w < workers.size(); ++w) {
        if (w)
            os << ',';
        os << workers[w].pointsDone.load(std::memory_order_relaxed);
    }
    os << ']';
}

/** Normalise whatever an evaluator threw into a structured Error. */
Error
errorFromCurrentException()
{
    try {
        throw;
    } catch (const VcError &e) {
        return e.error();
    } catch (const std::exception &e) {
        return makeError(Errc::InternalInvariant,
                         std::string("unexpected exception: ") +
                             e.what());
    } catch (...) {
        return makeError(Errc::InternalInvariant,
                         "unknown exception from point evaluator");
    }
}

} // namespace

double
SweepOutcome::pointsPerSecond() const
{
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(points) / seconds;
}

double
retryBackoffMs(std::uint64_t seed, std::size_t point, unsigned attempt,
               double baseMs, double maxMs)
{
    if (baseMs <= 0.0)
        return 0.0;
    const unsigned exponent = std::min(attempt > 0 ? attempt - 1 : 0u,
                                       30u);
    double nominal = baseMs * static_cast<double>(1ull << exponent);
    nominal = std::min(nominal, std::max(maxMs, baseMs));
    // Jitter from (seed, point, attempt) only: reruns under the same
    // --seed reproduce the exact same retry schedule.
    Rng rng(seed ^ (0x9e3779b97f4a7c15ull * (point + 1)) ^
            (0x517cc1b727220a95ull * (attempt + 1)));
    return nominal * (0.5 + rng.uniformReal());
}

void
requestSweepInterrupt()
{
    g_sweep_interrupt.store(1, std::memory_order_relaxed);
}

bool
sweepInterruptRequested()
{
    return interruptPending();
}

void
clearSweepInterrupt()
{
    g_sweep_interrupt.store(0, std::memory_order_relaxed);
}

namespace
{

using BatchEval = std::function<std::vector<bool>(
    std::span<const std::size_t>, SweepWorker &)>;

/**
 * Shared engine behind runSweep and runSweepBatched.  `groups` is
 * null for the classic per-point sweep; otherwise it partitions
 * [0, points) and workers claim whole groups, attempting multi-point
 * ones through `batchEval` first.
 */
SweepOutcome
runSweepImpl(std::size_t points, const SweepGroups *groups,
             const std::function<void(std::size_t, SweepWorker &)> &eval,
             const BatchEval &batchEval, const SweepOptions &opts)
{
    vc_assert(eval, "sweep needs a point evaluator");
    vc_assert(opts.maxAttempts > 0, "sweep needs at least one attempt");
    if (groups && (!opts.batch || !batchEval))
        groups = nullptr;

    unsigned jobs = opts.jobs ? opts.jobs : ThreadPool::defaultWorkers();
    if (points > 0 && jobs > points)
        jobs = static_cast<unsigned>(points);

    SweepOutcome outcome;
    outcome.points = points;
    outcome.jobs = jobs;
    if (points == 0)
        return outcome;

    ScopedSignalHandlers signals(opts.handleSignals);

    std::vector<SweepWorker> workers(jobs);
    for (unsigned w = 0; w < jobs; ++w)
        workers[w].id = w;

    // Dynamic point distribution: each runner pulls the next unclaimed
    // unit (a point, or a whole group when batching), so slow points
    // do not stall a statically partitioned neighbour.  Result
    // placement stays deterministic because the caller indexes by
    // grid position.
    const std::size_t units = groups ? groups->size() : points;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<std::size_t> ok_count{0};
    std::atomic<std::uint64_t> retry_count{0};
    std::atomic<std::uint64_t> batched_points{0};
    std::atomic<std::uint64_t> batched_groups{0};
    std::mutex done_mtx;
    std::condition_variable done_cv;

    std::mutex failures_mtx;
    std::vector<PointFailure> failures;

    const auto start = std::chrono::steady_clock::now();
    auto elapsed = [&start] {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };
    auto elapsedMs = [&start] {
        return std::chrono::duration_cast<std::chrono::milliseconds>(
                   std::chrono::steady_clock::now() - start)
            .count();
    };

    std::ostream *telemetry = opts.telemetry.get();
    if (telemetry) {
        *telemetry << "{\"event\":\"sweep_start\",\"label\":\""
                   << jsonLabel(opts.label) << "\",\"points\":"
                   << points << ",\"jobs\":" << jobs << "}\n"
                   << std::flush;
    }

    // Inside the sweep, vc_fatal/vc_panic become VcError so one bad
    // grid point cannot take the run down; the per-attempt catch
    // below is the matching boundary.
    ScopedThrowingErrors throwing_scope;

    /** Evaluate one point with retry/backoff; never throws. */
    auto runPoint = [&](std::size_t i, SweepWorker &w) {
        const auto point_start = std::chrono::steady_clock::now();
        auto recordFailure = [&](Error e, unsigned attempts) {
            const double spent =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - point_start)
                    .count();
            std::lock_guard<std::mutex> lock(failures_mtx);
            failures.push_back({i, std::move(e), attempts, spent});
        };
        for (unsigned attempt = 1;; ++attempt) {
            w.cancel.beginEpoch();
            w.activeSinceMs.store(elapsedMs(),
                                  std::memory_order_release);
            bool point_ok = false;
            Error err;
            try {
                eval(i, w);
                point_ok = true;
            } catch (...) {
                err = errorFromCurrentException();
            }
            w.activeSinceMs.store(-1, std::memory_order_release);

            if (point_ok) {
                // Retries were already counted as they were
                // scheduled, below.
                ok_count.fetch_add(1, std::memory_order_relaxed);
                return;
            }

            const bool last = attempt >= opts.maxAttempts ||
                              interruptPending();
            warn(opts.label, ": point ", i, " failed (attempt ",
                 attempt, "/", opts.maxAttempts, "): ",
                 err.describe(), last && attempt < opts.maxAttempts
                                     ? " -- drain requested, not "
                                       "retrying"
                                     : "");
            if (last) {
                recordFailure(std::move(err), attempt);
                return;
            }

            // Deterministic backoff, sliced so a drain interrupts it.
            double wait_ms = retryBackoffMs(opts.seed, i, attempt,
                                            opts.backoffBaseMs,
                                            opts.backoffMaxMs);
            while (wait_ms > 0.0 && !interruptPending()) {
                const auto slice = std::min<double>(
                    wait_ms,
                    static_cast<double>(kBackoffSlice.count()));
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(slice));
                wait_ms -= slice;
            }
            // A drain that arrived mid-backoff must not burn a whole
            // extra attempt; record the failure and let the worker
            // exit.
            if (interruptPending()) {
                warn(opts.label, ": point ", i, " -- drain requested "
                     "during backoff, not retrying");
                recordFailure(std::move(err), attempt);
                return;
            }
            retry_count.fetch_add(1, std::memory_order_relaxed);
        }
    };

    /** Bump the per-worker and global completion counts for a point. */
    auto completePoint = [&](SweepWorker &w) {
        w.pointsDone.fetch_add(1, std::memory_order_relaxed);
        if (done.fetch_add(1, std::memory_order_release) + 1 ==
            points) {
            std::lock_guard<std::mutex> lock(done_mtx);
            done_cv.notify_all();
        }
    };

    /**
     * One shared attempt for a whole group; members it completes are
     * done, the rest take the solo path (runPoint) with the full
     * retry budget, so a failing batch costs one extra attempt and
     * nothing else.
     */
    auto runGroup = [&](const std::vector<std::size_t> &members,
                        SweepWorker &w) {
        std::vector<bool> ok_flags;
        if (members.size() > 1 && !interruptPending()) {
            batched_groups.fetch_add(1, std::memory_order_relaxed);
            w.cancel.beginEpoch();
            w.activePoints.store(members.size(),
                                 std::memory_order_release);
            w.activeSinceMs.store(elapsedMs(),
                                  std::memory_order_release);
            try {
                ok_flags = batchEval(members, w);
            } catch (...) {
                const Error err = errorFromCurrentException();
                warn(opts.label, ": batched attempt over ",
                     members.size(), " points failed (",
                     err.describe(), "); falling back per point");
                ok_flags.clear();
            }
            w.activeSinceMs.store(-1, std::memory_order_release);
            w.activePoints.store(1, std::memory_order_release);
        }
        for (std::size_t k = 0; k < members.size(); ++k) {
            if (k < ok_flags.size() && ok_flags[k]) {
                ok_count.fetch_add(1, std::memory_order_relaxed);
                batched_points.fetch_add(1,
                                         std::memory_order_relaxed);
            } else {
                runPoint(members[k], w);
            }
            completePoint(w);
        }
    };

    auto runner = [&](unsigned worker) {
        for (;;) {
            const std::size_t u =
                next.fetch_add(1, std::memory_order_relaxed);
            if (u >= units)
                return;
            SweepWorker &w = workers[worker];
            if (!groups) {
                runPoint(u, w);
                completePoint(w);
                continue;
            }
            runGroup((*groups)[u], w);
        }
    };

    {
        ThreadPool pool(jobs);
        for (unsigned w = 0; w < jobs; ++w)
            pool.submit(runner);

        // Watchdog: cancels points that blow the per-point deadline.
        // The double read of activeSinceMs around the snapshot makes
        // sure the epoch we cancel is the epoch we timed; a worker
        // that moved on wins the race and keeps its fresh point.
        std::atomic<bool> watchdog_stop{false};
        std::thread watchdog;
        if (opts.pointTimeoutSeconds > 0.0) {
            const auto timeout_ms = static_cast<std::int64_t>(
                opts.pointTimeoutSeconds * 1000.0);
            watchdog = std::thread([&, timeout_ms] {
                while (!watchdog_stop.load(std::memory_order_acquire)) {
                    std::this_thread::sleep_for(kWatchdogTick);
                    const std::int64_t now_ms = elapsedMs();
                    for (auto &w : workers) {
                        const std::int64_t since =
                            w.activeSinceMs.load(
                                std::memory_order_acquire);
                        // A batched attempt covers activePoints
                        // points, so it gets that many single-point
                        // deadlines before the watchdog fires.
                        const auto budget =
                            timeout_ms *
                            static_cast<std::int64_t>(
                                w.activePoints.load(
                                    std::memory_order_acquire));
                        if (since < 0 || now_ms - since < budget)
                            continue;
                        const std::uint64_t snap = w.cancel.snapshot();
                        if (w.activeSinceMs.load(
                                std::memory_order_acquire) != since)
                            continue;
                        w.cancel.requestCancelIf(
                            snap, CancelToken::Reason::Timeout);
                    }
                }
            });
        }

        bool draining = false;
        std::size_t last_heal_done = 0;
        unsigned heals_without_progress = 0;
        std::unique_lock<std::mutex> lock(done_mtx);
        double next_report = kProgressPeriod;
        while (done.load(std::memory_order_acquire) < points) {
            done_cv.wait_for(lock, std::chrono::milliseconds(100));
            if (interruptPending() && !draining) {
                draining = true;
                // Stop claims; in-flight points finish (or skip their
                // remaining retries) and the journal flushes.
                next.store(units, std::memory_order_relaxed);
                if (opts.progress)
                    inform(opts.label,
                           ": interrupt -- draining in-flight "
                           "points");
            }
            const auto d = done.load(std::memory_order_acquire);
            if (d >= points)
                break;
            lock.unlock();
            const std::size_t in_pool = pool.pending();
            lock.lock();
            if (in_pool == 0) {
                if (draining)
                    break;
                // Every runner died before draining the grid -- only
                // possible when injected threadpool.dispatch faults
                // swallowed the jobs.  Resubmit one; claims were not
                // lost (a dispatch fault fires before the first
                // claim), so the sweep heals.  A plan that kills
                // *every* dispatch would livelock here, so give up
                // once healing repeatedly makes no progress and
                // drain like an interrupt instead.
                if (d > last_heal_done) {
                    last_heal_done = d;
                    heals_without_progress = 0;
                }
                if (++heals_without_progress > kMaxBarrenHeals) {
                    draining = true;
                    next.store(units, std::memory_order_relaxed);
                    warn(opts.label,
                         ": workers keep dying before claiming "
                         "points; giving up on the remaining grid");
                    break;
                }
                pool.submit(runner);
                continue;
            }
            const double t = elapsed();
            if (t < next_report)
                continue;
            next_report = t + kProgressPeriod;
            if (d == 0)
                continue;
            std::size_t failed_now;
            {
                std::lock_guard<std::mutex> flock(failures_mtx);
                failed_now = failures.size();
            }
            const double rate = static_cast<double>(d) / t;
            const double eta =
                static_cast<double>(points - d) / rate;
            if (opts.progress) {
                inform(opts.label, ": ", d, "/", points, " points, ",
                       fmt1(rate), " points/s, ETA ", fmt1(eta), " s",
                       failed_now ? detail::concat(", ", failed_now,
                                                   " failed")
                                  : "");
            }
            if (telemetry) {
                *telemetry << "{\"event\":\"sweep_progress\","
                           << "\"label\":\"" << jsonLabel(opts.label)
                           << "\",\"done\":" << d << ",\"points\":"
                           << points << ",\"failed\":" << failed_now
                           << ",\"elapsed_s\":" << fmt1(t)
                           << ",\"points_per_s\":" << fmt1(rate)
                           << ",\"eta_s\":" << fmt1(eta) << ',';
                appendWorkerCounts(*telemetry, workers);
                *telemetry << "}\n" << std::flush;
            }
        }
        outcome.interrupted = draining;
        lock.unlock();
        pool.wait();
        watchdog_stop.store(true, std::memory_order_release);
        if (watchdog.joinable())
            watchdog.join();
    }

    outcome.seconds = elapsed();
    // Merge in worker-id order so the accumulation order never
    // depends on which worker finished last.
    for (const auto &w : workers)
        outcome.stats.merge(w.stats);

    outcome.completedOk = ok_count.load(std::memory_order_relaxed);
    outcome.retries = retry_count.load(std::memory_order_relaxed);
    outcome.batchedPoints =
        batched_points.load(std::memory_order_relaxed);
    outcome.batchedGroups =
        batched_groups.load(std::memory_order_relaxed);
    outcome.failures = std::move(failures);
    std::sort(outcome.failures.begin(), outcome.failures.end(),
              [](const PointFailure &a, const PointFailure &b) {
                  return a.index < b.index;
              });
    outcome.remaining =
        points - outcome.completedOk - outcome.failures.size();

    if (opts.registry) {
        // Aggregated once, after the pool has drained, so the
        // registry needs no locking of its own.
        opts.registry->counter("sweep.points_ok",
                               "grid points completed successfully") +=
            outcome.completedOk;
        opts.registry->counter("sweep.points_failed",
                               "grid points failed after retries") +=
            outcome.failures.size();
        opts.registry->counter("sweep.point_retries",
                               "extra attempts spent on grid points") +=
            outcome.retries;
        opts.registry->counter(
            "sweep.interrupted",
            "sweeps ended early by SIGINT/SIGTERM drain") +=
            outcome.interrupted ? 1 : 0;
        opts.registry->counter(
            "sweep.batch_points",
            "grid points completed by a batched group attempt") +=
            outcome.batchedPoints;
        opts.registry->counter(
            "sweep.batch_groups",
            "shared-workload groups given a batched attempt") +=
            outcome.batchedGroups;
    }

    if (opts.progress) {
        if (outcome.interrupted) {
            inform(opts.label, ": interrupted -- ",
                   outcome.completedOk, " ok, ",
                   outcome.failures.size(), " failed, ",
                   outcome.remaining, " remaining (",
                   fmt1(outcome.seconds), " s)");
        } else {
            inform(opts.label, ": ", points, " points in ",
                   fmt1(outcome.seconds), " s (",
                   fmt1(outcome.pointsPerSecond()),
                   " points/s, jobs=", jobs,
                   outcome.failures.empty()
                       ? std::string()
                       : detail::concat(", ",
                                        outcome.failures.size(),
                                        " failed"),
                   ")");
        }
    }
    if (telemetry) {
        *telemetry << "{\"event\":\"sweep_end\",\"label\":\""
                   << jsonLabel(opts.label) << "\",\"points\":"
                   << points << ",\"jobs\":" << jobs
                   << ",\"seconds\":" << fmt1(outcome.seconds)
                   << ",\"points_per_s\":"
                   << fmt1(outcome.pointsPerSecond())
                   << ",\"ok\":" << outcome.completedOk
                   << ",\"failed\":" << outcome.failures.size()
                   << ",\"retries\":" << outcome.retries
                   << ",\"interrupted\":"
                   << (outcome.interrupted ? "true" : "false") << ',';
        appendWorkerCounts(*telemetry, workers);
        *telemetry << "}\n" << std::flush;
    }
    return outcome;
}

} // namespace

SweepOutcome
runSweep(std::size_t points,
         const std::function<void(std::size_t, SweepWorker &)> &eval,
         const SweepOptions &opts)
{
    return runSweepImpl(points, nullptr, eval, {}, opts);
}

SweepOutcome
runSweepBatched(
    std::size_t points, const SweepGroups &groups,
    const std::function<void(std::size_t, SweepWorker &)> &eval,
    const std::function<std::vector<bool>(std::span<const std::size_t>,
                                          SweepWorker &)> &batchEval,
    const SweepOptions &opts)
{
    // A grouping that drops or repeats a point would silently corrupt
    // result placement; fail loudly instead.
    std::vector<char> seen(points, 0);
    std::size_t covered = 0;
    for (const auto &members : groups) {
        for (const std::size_t i : members) {
            vc_assert(i < points, "sweep group index out of range");
            vc_assert(!seen[i], "sweep group repeats a point");
            seen[i] = 1;
            ++covered;
        }
    }
    vc_assert(covered == points,
              "sweep groups must cover every point");
    return runSweepImpl(points, &groups, eval, batchEval, opts);
}

namespace
{

/** Shared body of runCsvSweep and runCsvSweepBatched. */
Expected<CsvSweepResult>
runCsvSweepImpl(
    std::size_t points,
    const std::function<CsvRow(std::size_t, SweepWorker &)> &eval,
    const std::function<std::vector<std::optional<CsvRow>>(
        std::span<const std::size_t>, SweepWorker &)> &batchRows,
    const std::function<CsvRow(const PointFailure &)> &errorRow,
    const SweepGroups *groups, const SweepOptions &opts)
{
    vc_assert(eval, "csv sweep needs a point evaluator");
    vc_assert(errorRow, "csv sweep needs an error-row renderer");

    CsvSweepResult result;
    result.rows.assign(points, {});
    std::vector<char> have(points, 0);

    if (opts.resume && opts.checkpointPath.empty())
        return makeError(Errc::InvalidConfig,
                         "--resume requires --checkpoint");

    std::unique_ptr<CheckpointWriter> writer;
    if (!opts.checkpointPath.empty()) {
        const CheckpointHeader header{opts.label, points, opts.seed};
        bool append = false;
        if (opts.resume) {
            if (std::ifstream(opts.checkpointPath).good()) {
                auto replay = readCheckpoint(opts.checkpointPath);
                if (!replay.ok())
                    return replay.error();
                auto compat =
                    checkResumeCompatible(replay.value(), header);
                if (!compat.ok())
                    return compat.error();
                if (opts.registry) {
                    opts.registry->counter(
                        "checkpoint.duplicates",
                        "journal records that re-wrote an "
                        "already-seen point (last record won)") +=
                        replay.value().duplicates;
                }
                if (replay.value().duplicates) {
                    warn(opts.label, ": checkpoint replayed ",
                         replay.value().duplicates,
                         " duplicate point record(s); kept the "
                         "latest of each");
                }
                for (const auto &[pt, row] : replay.value().done) {
                    if (pt >= points)
                        return makeError(
                            Errc::Io,
                            "checkpoint row for point " +
                                std::to_string(pt) +
                                " is outside the grid");
                    result.rows[pt] = row;
                    have[pt] = 1;
                    ++result.skipped;
                }
                append = true;
            } else {
                warn("--resume: checkpoint '", opts.checkpointPath,
                     "' not found; starting fresh");
            }
        }
        auto opened =
            CheckpointWriter::open(opts.checkpointPath, header, append);
        if (!opened.ok())
            return opened.error();
        writer = std::move(opened.value());
    }

    std::vector<std::size_t> todo;
    todo.reserve(points - result.skipped);
    for (std::size_t i = 0; i < points; ++i)
        if (!have[i])
            todo.push_back(i);

    if (opts.progress && result.skipped) {
        inform(opts.label, ": resume skips ", result.skipped, "/",
               points, " journalled points");
    }

    CheckpointWriter *journal = writer.get();
    auto journalRow = [&](std::size_t i, CsvRow row) {
        if (journal) {
            auto rec = journal->recordDone(i, row);
            if (!rec.ok())
                warn(opts.label, ": ", rec.error().describe());
        }
        // Distinct grid indices -> distinct rows; no lock needed.
        result.rows[i] = std::move(row);
    };
    auto evalTodo = [&](std::size_t j, SweepWorker &w) {
        const std::size_t i = todo[j];
        journalRow(i, eval(i, w));
    };

    if (groups && batchRows) {
        // The caller grouped grid indices; the sweep runs over todo
        // positions, so remap (dropping resume-journalled members).
        std::vector<std::size_t> pos(points, points);
        for (std::size_t j = 0; j < todo.size(); ++j)
            pos[todo[j]] = j;
        SweepGroups todo_groups;
        todo_groups.reserve(groups->size());
        for (const auto &members : *groups) {
            std::vector<std::size_t> alive;
            alive.reserve(members.size());
            for (const std::size_t i : members) {
                vc_assert(i < points,
                          "sweep group index out of range");
                if (pos[i] < points)
                    alive.push_back(pos[i]);
            }
            if (!alive.empty())
                todo_groups.push_back(std::move(alive));
        }
        result.outcome = runSweepBatched(
            todo.size(), todo_groups, evalTodo,
            [&](std::span<const std::size_t> js, SweepWorker &w) {
                std::vector<std::size_t> idx;
                idx.reserve(js.size());
                for (const std::size_t j : js)
                    idx.push_back(todo[j]);
                auto rows = batchRows(idx, w);
                std::vector<bool> ok(js.size(), false);
                for (std::size_t k = 0;
                     k < js.size() && k < rows.size(); ++k) {
                    if (!rows[k])
                        continue;
                    journalRow(idx[k], std::move(*rows[k]));
                    ok[k] = true;
                }
                return ok;
            },
            opts);
    } else {
        result.outcome = runSweep(todo.size(), evalTodo, opts);
    }

    // runSweep numbered failures by todo position; translate back to
    // grid indices (monotone, so the sort order survives).
    for (auto &f : result.outcome.failures) {
        f.index = todo[f.index];
        if (journal) {
            auto rec =
                journal->recordFailed(f.index, f.error, f.attempts);
            if (!rec.ok())
                warn(opts.label, ": ", rec.error().describe());
        }
        result.rows[f.index] = errorRow(f);
    }
    if (journal) {
        auto flushed = journal->flush();
        if (!flushed.ok())
            warn(opts.label, ": ", flushed.error().describe());
    }
    return result;
}

} // namespace

Expected<CsvSweepResult>
runCsvSweep(std::size_t points,
            const std::function<CsvRow(std::size_t, SweepWorker &)> &eval,
            const std::function<CsvRow(const PointFailure &)> &errorRow,
            const SweepOptions &opts)
{
    return runCsvSweepImpl(points, eval, {}, errorRow, nullptr, opts);
}

Expected<CsvSweepResult>
runCsvSweepBatched(
    std::size_t points,
    const std::function<CsvRow(std::size_t, SweepWorker &)> &eval,
    const std::function<std::vector<std::optional<CsvRow>>(
        std::span<const std::size_t>, SweepWorker &)> &batchRows,
    const std::function<CsvRow(const PointFailure &)> &errorRow,
    const SweepGroups &groups, const SweepOptions &opts)
{
    return runCsvSweepImpl(points, eval, batchRows, errorRow, &groups,
                           opts);
}

void
addSweepFlags(ArgParser &args)
{
    args.addFlag("jobs", "0",
                 "worker threads for grid sweeps; 0 = one per "
                 "hardware thread");
    args.addFlag("seed", "1",
                 "base seed folded into every per-point trace seed");
    args.addFlag("progress", "true",
                 "print progress/throughput lines on stderr");
    args.addFlag("telemetry", "",
                 "emit machine-readable JSON-lines sweep progress "
                 "(per-worker point counts) to this file; "
                 "\"-\" = stderr");
    args.addFlag("retries", "2",
                 "retry attempts per failed grid point (0 = fail "
                 "fast)");
    args.addFlag("backoff-ms", "100",
                 "base retry backoff in milliseconds; doubles per "
                 "attempt with deterministic jitter");
    args.addFlag("point-timeout", "0",
                 "per-point deadline in seconds; 0 = no deadline");
    args.addFlag("checkpoint", "",
                 "journal completed points to this JSON-lines file "
                 "for --resume");
    args.addFlag("resume", "false",
                 "replay --checkpoint and skip completed points");
    args.addFlag("batch", "true",
                 "evaluate shared-workload point groups as one "
                 "batched pass (false = per point; the CSV is "
                 "byte-identical either way)");
    args.addFlag("faults", "",
                 "fault-injection plan 'site=action@trigger[;...]' "
                 "(see docs/ROBUSTNESS.md); needs a "
                 "-DVCACHE_FAULT_INJECTION=ON build");
}

SweepOptions
sweepOptionsFromFlags(const ArgParser &args, const std::string &label)
{
    SweepOptions opts;
    const std::uint64_t jobs = args.getUint("jobs");
    if (jobs > kMaxJobs)
        vc_fatal("--jobs ", jobs, " is out of range (max ", kMaxJobs,
                 ")");
    opts.jobs = static_cast<unsigned>(jobs);
    opts.seed = args.getUint("seed");
    opts.progress = args.getBool("progress");
    opts.label = label;

    const std::string telemetry = args.getString("telemetry");
    if (telemetry == "-") {
        // Non-owning alias: stderr outlives every sweep.
        opts.telemetry =
            std::shared_ptr<std::ostream>(std::shared_ptr<void>(),
                                          &std::cerr);
    } else if (!telemetry.empty()) {
        auto file = std::make_shared<std::ofstream>(telemetry);
        if (!*file)
            vc_fatal("cannot open --telemetry destination '",
                     telemetry, "'");
        opts.telemetry = file;
    }

    const std::uint64_t retries = args.getUint("retries");
    if (retries > kMaxRetries)
        vc_fatal("--retries ", retries, " is out of range (max ",
                 kMaxRetries, ")");
    opts.maxAttempts = static_cast<unsigned>(retries) + 1;

    opts.backoffBaseMs = args.getDouble("backoff-ms");
    if (opts.backoffBaseMs < 0.0)
        vc_fatal("--backoff-ms must be non-negative");
    opts.backoffMaxMs = std::max(opts.backoffMaxMs, opts.backoffBaseMs);

    opts.pointTimeoutSeconds = args.getDouble("point-timeout");
    if (opts.pointTimeoutSeconds < 0.0)
        vc_fatal("--point-timeout must be non-negative");

    opts.checkpointPath = args.getString("checkpoint");
    opts.resume = args.getBool("resume");
    opts.batch = args.getBool("batch");
    if (opts.resume && opts.checkpointPath.empty())
        vc_fatal("--resume requires --checkpoint");

    const std::string fault_spec = args.getString("faults");
    if (!fault_spec.empty()) {
        auto plan = faults::parseFaultSpec(fault_spec, opts.seed);
        if (!plan.ok())
            vc_fatal(plan.error().describe());
        faults::configureFaults(plan.value());
        if (!faults::kEnabled)
            warn("--faults: fault-injection sites are compiled out; "
                 "rebuild with -DVCACHE_FAULT_INJECTION=ON for the "
                 "plan to fire");
    }

    // CLI-driven sweeps drain gracefully on ^C; embedded/test sweeps
    // opt in explicitly.
    opts.handleSignals = true;
    return opts;
}

} // namespace vcache
