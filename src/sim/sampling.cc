#include "sim/sampling.hh"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <optional>

#include "sim/cc_sim.hh"
#include "sim/checkpoint.hh"
#include "sim/mm_sim.hh"
#include "simd/kernels.hh"
#include "trace/source.hh"
#include "util/flat_hash.hh"
#include "util/logging.hh"
#include "util/stats.hh"
#include "util/threadpool.hh"

namespace vcache
{

namespace
{

/** Live-points measured per thread-pool flush (bounds blob memory). */
constexpr std::size_t kMeasureChunk = 64;

/** What one measured unit contributes to the estimator. */
struct UnitResult
{
    /** Elements produced by the measurement window. */
    std::uint64_t x = 0;
    /** Cycles from unit begin to unit end (warming prefix excluded). */
    std::uint64_t y = 0;
    /** The window's detailed results (totalCycles rewritten to y). */
    SimResult window;
};

/** Throw the error out of a `try` region (caught at the API edge). */
void
require(const Expected<void> &e)
{
    if (!e.ok())
        throw VcError(e.error());
}

Expected<void>
validateOptions(const SamplingOptions &opts)
{
    if (opts.unitElements == 0)
        return makeError(Errc::InvalidConfig,
                         "sampling unitElements must be at least 1");
    if (opts.initialUnits == 0)
        return makeError(Errc::InvalidConfig,
                         "sampling initialUnits must be at least 1");
    if (!(opts.targetRelativeCi > 0.0))
        return makeError(Errc::InvalidConfig,
                         "sampling targetRelativeCi must be positive");
    if (!(opts.confidence > 0.0 && opts.confidence < 1.0))
        return makeError(Errc::InvalidConfig,
                         "sampling confidence must be in (0, 1)");
    if (opts.minRelativeCi < 0.0)
        return makeError(Errc::InvalidConfig,
                         "sampling minRelativeCi must be >= 0");
    return Expected<void>{};
}

/**
 * Largest power-of-two systematic stride that still samples about
 * `initial_units` of the `total` units.  Powers of two keep the
 * sample sets nested across auto-tune halvings.
 */
std::uint64_t
initialStride(std::uint64_t total, std::uint64_t initial_units)
{
    const std::uint64_t budget =
        total >= initial_units ? total / initial_units : 1;
    std::uint64_t k = 1;
    while (k * 2 <= budget)
        k *= 2;
    return k;
}

/**
 * Ratio-estimator confidence interval over the measured units (in
 * unit order, so the arithmetic is identical whatever worker count
 * produced them).  Finite-population-corrected Student-t half-width,
 * floored at minRelativeCi as the non-sampling-bias allowance.
 */
void
computeCi(const std::vector<std::optional<UnitResult>> &results,
          const SamplingOptions &opts, SamplingEstimate &est)
{
    double sum_x = 0.0;
    double sum_y = 0.0;
    std::uint64_t n = 0;
    for (const auto &r : results) {
        if (!r)
            continue;
        sum_x += static_cast<double>(r->x);
        sum_y += static_cast<double>(r->y);
        ++n;
    }
    const std::uint64_t big_n = results.size();
    est.unitsMeasured = n;
    est.elementsMeasured = static_cast<std::uint64_t>(sum_x);
    if (n == 0 || sum_x <= 0.0)
        return;

    const double ratio = sum_y / sum_x;
    est.cyclesPerElement = ratio;

    double half = 0.0;
    // One lone unit says nothing about spread -- unless it was the
    // whole population.
    const bool enough = n >= 2 || n == big_n;
    if (n >= 2 && n < big_n) {
        double ss = 0.0;
        for (const auto &r : results) {
            if (!r)
                continue;
            const double d = static_cast<double>(r->y) -
                             ratio * static_cast<double>(r->x);
            ss += d * d;
        }
        const double nn = static_cast<double>(n);
        const double s2 = ss / (nn - 1.0);
        const double fpc = 1.0 - nn / static_cast<double>(big_n);
        const double xbar = sum_x / nn;
        const double se = std::sqrt(fpc * s2 / nn) / xbar;
        half =
            studentTQuantile(0.5 + opts.confidence / 2.0, n - 1) * se;
    }
    half = std::max(half, opts.minRelativeCi * ratio);
    est.ciHalfWidth = half;
    est.relativeCi = ratio > 0.0 ? half / ratio : 0.0;
    est.ciMet = enough && est.relativeCi <= opts.targetRelativeCi;
}

/**
 * Run `measure` over every pending live-point, inline for jobs <= 1
 * or sharded over a worker pool.  `measure(lp, worker)` gets the
 * executing worker's index so the caller can keep per-worker scratch
 * simulators; each measurement is a pure function of its live-point
 * (the scratch simulator is reset first), and results land in
 * per-unit slots, so the estimate is bit-identical whatever the
 * worker count; the first error in submission (unit) order wins for
 * the same reason.
 */
template <typename Measure>
Expected<void>
measurePoints(std::vector<LivePoint> &points, unsigned jobs,
              std::vector<std::optional<UnitResult>> &results,
              const Measure &measure)
{
    if (points.empty())
        return Expected<void>{};
    if (jobs <= 1 || points.size() == 1) {
        for (const LivePoint &lp : points) {
            try {
                results[lp.unit] = measure(lp, 0);
            } catch (const VcError &e) {
                points.clear();
                return e.error();
            }
        }
        points.clear();
        return Expected<void>{};
    }

    std::vector<std::optional<Error>> errors(points.size());
    {
        ThreadPool pool(jobs);
        for (std::size_t i = 0; i < points.size(); ++i) {
            pool.submit([&, i](unsigned worker) {
                // The pool has no exception transport; errors come
                // back as values, like the sweep workers'.
                try {
                    results[points[i].unit] =
                        measure(points[i], worker);
                } catch (const VcError &e) {
                    errors[i] = e.error();
                }
            });
        }
        pool.wait();
    }
    points.clear();
    for (auto &err : errors)
        if (err)
            return *err;
    return Expected<void>{};
}

/** CcSimulator::appendOpState's twin for the functional warmer. */
bool
appendOpState(const Cache &cache, const VectorOp &op,
              std::vector<std::uint64_t> &out)
{
    if (!cache.appendRunState(op.first.base, op.first.stride,
                              op.first.length, out))
        return false;
    if (op.second) {
        const std::uint64_t length =
            std::min(op.second->length, op.first.length);
        return cache.appendRunState(op.second->base,
                                    op.second->stride, length, out);
    }
    return true;
}

/**
 * Functionally walk one op: every load element probes the cache
 * (misses fill and update replacement exactly as the detailed
 * simulator would).  Stores never probe the cache (the write buffer
 * bypasses it), matching CcSimulator::stripLoop; strip boundaries do
 * not reorder accesses, so the flat element loop reproduces the
 * detailed access order.
 *
 * @return misses this op caused
 */
std::uint64_t
walkOp(Cache &cache, const VectorOp &op, FlatSet<Addr> &touched,
       bool gang_warm)
{
    const AddressLayout &layout = cache.addressLayout();
    const VectorRef *second = op.second ? &op.second.value() : nullptr;
    std::uint64_t misses = 0;

    const auto touch = [&](Addr word) {
        const Addr line = layout.lineAddress(word);
        if (!cache.lookupAndFill(line).hit) {
            touched.insert(line);
            ++misses;
        }
    };

    // Gang warming: on mappings whose read hits are inert, a gang
    // whose probeHitMask() is all-ones needs no fills, no touched
    // inserts and no miss counts -- skip it wholesale and only
    // element-walk gangs containing at least one miss.  This is the
    // sampling engine's dominant cost when live-points land in
    // already-warmed windows.
    if (gang_warm && cache.readHitsAreInert()) {
        constexpr unsigned kGang = 16;
        for (std::uint64_t i = 0; i < op.first.length;) {
            const unsigned g = static_cast<unsigned>(
                std::min<std::uint64_t>(kGang, op.first.length - i));
            std::uint32_t hits = cache.probeStrideHitMask(
                op.first.element(i), op.first.stride, g);
            unsigned g2 = 0;
            if (second && i < second->length) {
                g2 = static_cast<unsigned>(std::min<std::uint64_t>(
                    g, second->length - i));
                hits |= cache.probeStrideHitMask(
                            second->element(i), second->stride, g2)
                        << g;
            }
            const unsigned total = g + g2;
            if (hits == simd::fullMask(total)) {
                i += g;
                continue;
            }
            for (unsigned j = 0; j < g; ++j, ++i) {
                touch(op.first.element(i));
                if (second && i < second->length)
                    touch(second->element(i));
            }
        }
        return misses;
    }

    for (std::uint64_t i = 0; i < op.first.length; ++i) {
        touch(op.first.element(i));
        if (second && i < second->length)
            touch(second->element(i));
    }
    return misses;
}

/** Inclusive line-address interval one vector stream covers. */
struct LineRange
{
    Addr lo;
    Addr hi;
};

void
appendStreamRange(const AddressLayout &layout, const VectorRef &ref,
                  std::uint64_t length, std::vector<LineRange> &out)
{
    if (length == 0)
        return;
    const Addr first = ref.element(0);
    const Addr last = ref.element(length - 1);
    out.push_back({layout.lineAddress(std::min(first, last)),
                   layout.lineAddress(std::max(first, last))});
}

/** Line intervals the loads of ops [begin, end) can touch. */
std::vector<LineRange>
windowLineRanges(const AddressLayout &layout, const Trace &trace,
                 std::size_t begin, std::size_t end)
{
    std::vector<LineRange> ranges;
    for (std::size_t i = begin; i < end; ++i) {
        const VectorOp &op = trace[i];
        appendStreamRange(layout, op.first, op.first.length, ranges);
        if (op.second)
            appendStreamRange(
                layout, *op.second,
                std::min(op.second->length, op.first.length), ranges);
    }
    return ranges;
}

/**
 * Detailed measurement of one CC live-point.  The simulator is a
 * per-worker scratch object (constructing one per unit would allocate
 * a cache-sized frame vector per unit); reset() restores it to the
 * fresh state, so the result is a pure function of the live-point.
 */
UnitResult
measureCcPoint(CcSimulator &sim, const Trace &trace,
               const LivePoint &lp)
{
    sim.reset();
    vc_assert(sim.restoreCacheState(lp.cacheState),
              "live-point cache snapshot does not fit the configured "
              "cache");
    sim.seedTouchedLines(lp.prewarmedLines);

    Cycles warmed = 0;
    if (lp.captureOp < lp.unitBegin) {
        TraceSliceSource prefix(trace, lp.captureOp, lp.unitBegin);
        warmed = sim.run(prefix).totalCycles;
    }
    TraceSliceSource window(trace, lp.unitBegin, lp.unitEnd);
    const SimResult r = sim.run(window);

    UnitResult out;
    out.x = r.results;
    out.y = r.totalCycles - warmed; // the clock persists across runs
    out.window = r;
    out.window.totalCycles = out.y;
    return out;
}

/** Detailed measurement of one MM unit (no cache state to restore). */
UnitResult
measureMmPoint(MmSimulator &sim, const Trace &trace,
               const LivePoint &lp)
{
    sim.reset();

    Cycles warmed = 0;
    if (lp.captureOp < lp.unitBegin) {
        TraceSliceSource prefix(trace, lp.captureOp, lp.unitBegin);
        warmed = sim.run(prefix).totalCycles;
    }
    TraceSliceSource window(trace, lp.unitBegin, lp.unitEnd);
    const SimResult r = sim.run(window);

    UnitResult out;
    out.x = r.results;
    out.y = r.totalCycles - warmed;
    out.window = r;
    out.window.totalCycles = out.y;
    return out;
}

void
sumWindow(const UnitResult &r, SimResult &total)
{
    total.totalCycles += r.window.totalCycles;
    total.stallCycles += r.window.stallCycles;
    total.results += r.window.results;
    total.hits += r.window.hits;
    total.misses += r.window.misses;
    total.compulsoryMisses += r.window.compulsoryMisses;
}

void
publishCounters(const SamplingEstimate &est, ObsRegistry *registry)
{
    if (!registry)
        return;
    registry->counter("sampling.units_total",
                      "measurement units the trace splits into") +=
        est.unitsTotal;
    registry->counter("sampling.units_measured",
                      "units simulated in detail") += est.unitsMeasured;
    registry->counter("sampling.units_skipped",
                      "units never simulated in detail") +=
        est.unitsTotal - est.unitsMeasured;
    registry->counter("sampling.rounds",
                      "auto-tune rounds until the CI target or trace "
                      "exhaustion") += est.rounds;
    registry->counter("sampling.warming_ppm",
                      "elements walked element-wise by the functional "
                      "warmer, ppm of the trace") +=
        static_cast<std::uint64_t>(est.warmingFraction * 1e6);
    registry->counter("sampling.achieved_ci_ppm",
                      "final relative CI half-width, ppm") +=
        static_cast<std::uint64_t>(est.relativeCi * 1e6);
    registry->counter("sampling.ci_met",
                      "1 when the target relative CI was reached") +=
        est.ciMet ? 1 : 0;
}

std::size_t
captureOpOf(const SamplingUnit &unit, std::uint64_t warmup_ops)
{
    return unit.opBegin -
           std::min<std::size_t>(unit.opBegin, warmup_ops);
}

/** Units of the stride-k systematic sample not yet measured. */
std::vector<std::uint64_t>
newSampleUnits(std::uint64_t total, std::uint64_t k,
               std::uint64_t offset,
               const std::vector<std::optional<UnitResult>> &results)
{
    std::vector<std::uint64_t> fresh;
    for (std::uint64_t u = offset % k; u < total; u += k)
        if (!results[u])
            fresh.push_back(u);
    return fresh;
}

Expected<std::uint64_t>
parseWord(const std::string &text)
{
    const char *begin = text.c_str();
    char *end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(begin, &end, 10);
    if (end == begin || *end != '\0' || errno != 0)
        return makeError(Errc::MalformedTrace,
                         "live-point field '" + text +
                             "' is not an unsigned integer");
    return static_cast<std::uint64_t>(value);
}

} // namespace

std::vector<SamplingUnit>
partitionUnits(const Trace &trace, std::uint64_t unit_elements)
{
    std::vector<SamplingUnit> units;
    SamplingUnit current;
    for (std::size_t i = 0; i < trace.size(); ++i) {
        current.elements += trace[i].first.length;
        current.opEnd = i + 1;
        if (current.elements >= unit_elements) {
            units.push_back(current);
            current = SamplingUnit{i + 1, i + 1, 0};
        }
    }
    if (current.opEnd > current.opBegin)
        units.push_back(current);
    return units;
}

std::vector<std::string>
encodeLivePoint(const LivePoint &lp)
{
    std::vector<std::string> row;
    row.reserve(4 + lp.cacheState.size() + lp.prewarmedLines.size());
    row.push_back(std::to_string(lp.captureOp));
    row.push_back(std::to_string(lp.unitBegin));
    row.push_back(std::to_string(lp.unitEnd));
    row.push_back(std::to_string(lp.cacheState.size()));
    for (std::uint64_t w : lp.cacheState)
        row.push_back(std::to_string(w));
    for (Addr line : lp.prewarmedLines)
        row.push_back(std::to_string(line));
    return row;
}

Expected<LivePoint>
decodeLivePoint(std::uint64_t unit, const std::vector<std::string> &row)
{
    if (row.size() < 4)
        return makeError(Errc::MalformedTrace,
                         "live-point row needs at least 4 fields, "
                         "got " + std::to_string(row.size()));
    LivePoint lp;
    lp.unit = unit;
    std::uint64_t head[4];
    for (std::size_t i = 0; i < 4; ++i) {
        const Expected<std::uint64_t> v = parseWord(row[i]);
        if (!v.ok())
            return v.error();
        head[i] = v.value();
    }
    lp.captureOp = head[0];
    lp.unitBegin = head[1];
    lp.unitEnd = head[2];
    const std::uint64_t words = head[3];
    if (row.size() < 4 + words)
        return makeError(Errc::MalformedTrace,
                         "live-point row truncated: expected " +
                             std::to_string(words) +
                             " cache words, row has " +
                             std::to_string(row.size() - 4) +
                             " fields left");
    lp.cacheState.reserve(words);
    lp.prewarmedLines.reserve(row.size() - 4 - words);
    for (std::size_t i = 4; i < row.size(); ++i) {
        const Expected<std::uint64_t> v = parseWord(row[i]);
        if (!v.ok())
            return v.error();
        if (i < 4 + words)
            lp.cacheState.push_back(v.value());
        else
            lp.prewarmedLines.push_back(static_cast<Addr>(v.value()));
    }
    return lp;
}

Expected<SamplingEstimate>
sampleCc(const MachineParams &machine, const CacheConfig &cache_config,
         const Trace &trace, const SamplingOptions &opts)
{
    if (const Expected<void> v = validateOptions(opts); !v.ok())
        return v.error();
    if (trace.empty())
        return makeError(Errc::InvalidConfig,
                         "cannot sample an empty trace");

    const std::vector<SamplingUnit> units =
        partitionUnits(trace, opts.unitElements);
    const std::uint64_t total = units.size();

    SamplingEstimate est;
    est.unitsTotal = total;
    for (const SamplingUnit &u : units)
        est.elementsTotal += u.elements;

    std::unique_ptr<CheckpointWriter> journal;
    if (!opts.livePointJournal.empty()) {
        auto opened = CheckpointWriter::open(
            opts.livePointJournal, {"live_points", total, opts.seed},
            false);
        if (!opened.ok())
            return opened.error();
        journal = std::move(opened.value());
    }

    std::uint64_t k = initialStride(total, opts.initialUnits);
    const std::uint64_t offset = opts.seed % k;
    std::vector<std::optional<UnitResult>> results(total);
    double prev_ratio = 0.0;
    bool have_prev = false;

    // The functional warmer's cache and the per-worker scratch
    // simulators live across rounds and units: both are cache-sized
    // allocations, far too heavy to recreate per unit.  The cache
    // config is validated here because the simulator constructor
    // (deliberately) fatals on a bad one.
    Expected<std::unique_ptr<Cache>> cache_or =
        tryMakeCache(cache_config);
    if (!cache_or.ok())
        return cache_or.error();
    const std::unique_ptr<Cache> cache = std::move(cache_or.value());
    const AddressLayout &layout = cache->addressLayout();
    FlatSet<Addr> touched;

    std::vector<std::unique_ptr<CcSimulator>> sims;
    for (unsigned w = 0; w < std::max(opts.jobs, 1u); ++w) {
        auto sim = std::make_unique<CcSimulator>(machine, cache_config);
        // Scalar replay: measurement windows are a few ops, too
        // short for the run-batched engine's per-op certification to
        // amortize (the results are bit-identical either way).
        sim->setEngine(SimEngine::Scalar);
        sim->setNonBlockingMisses(opts.nonBlocking);
        sim->setCancelToken(opts.cancel);
        sims.push_back(std::move(sim));
    }
    const auto measure = [&](const LivePoint &lp, unsigned worker) {
        return measureCcPoint(*sims[worker], trace, lp);
    };

    try {
        for (;;) {
            ++est.rounds;
            const std::vector<std::uint64_t> fresh =
                newSampleUnits(total, k, offset, results);

            // One functional pass over the whole trace, capturing a
            // live-point for every fresh unit.  The pass is
            // deterministic, so units captured in earlier rounds are
            // simply not re-captured.
            cache->reset();
            touched.clear();
            std::vector<LivePoint> pending;
            std::size_t next_fresh = 0;
            std::uint64_t walked = 0;

            // Fixed-point memo: once a repeat of `memo_op` with zero
            // misses provably left the cache untouched, later repeats
            // are skipped outright.
            VectorOp memo_op;
            bool memo_valid = false;
            bool memo_fixed = false;
            std::uint64_t memo_misses = 1;
            std::vector<std::uint64_t> before;
            std::vector<std::uint64_t> after;

            for (std::size_t op_idx = 0; op_idx < trace.size();
                 ++op_idx) {
                if (opts.cancel && opts.cancel->cancelled())
                    throwCancelled(*opts.cancel);

                while (next_fresh < fresh.size() &&
                       captureOpOf(units[fresh[next_fresh]],
                                   opts.warmupOps) == op_idx) {
                    const std::uint64_t u = fresh[next_fresh++];
                    LivePoint lp;
                    lp.unit = u;
                    lp.captureOp = op_idx;
                    lp.unitBegin = units[u].opBegin;
                    lp.unitEnd = units[u].opEnd;
                    cache->captureState(lp.cacheState);
                    // Seed the measurement's compulsory-miss
                    // classification with every already-touched line
                    // the warming prefix or window can re-touch.  A
                    // superset of the actual re-touches is harmless
                    // (the simulator only consults the set for lines
                    // it accesses), and the interval filter is a
                    // per-capture set scan instead of per-element
                    // bookkeeping on the walk's hot path.
                    const std::vector<LineRange> ranges =
                        windowLineRanges(layout, trace, op_idx,
                                         lp.unitEnd);
                    touched.forEach([&](Addr line) {
                        for (const LineRange &r : ranges) {
                            if (line >= r.lo && line <= r.hi) {
                                lp.prewarmedLines.push_back(line);
                                return;
                            }
                        }
                    });
                    // Hash-order iteration is deterministic, but
                    // sorted lines make the journal rows canonical.
                    std::sort(lp.prewarmedLines.begin(),
                              lp.prewarmedLines.end());
                    if (journal)
                        require(journal->recordDone(
                            u, encodeLivePoint(lp)));
                    pending.push_back(std::move(lp));
                }

                const VectorOp &op = trace[op_idx];
                if (!memo_valid || !memo_fixed || !(op == memo_op)) {
                    const bool certify = memo_valid && !memo_fixed &&
                                         memo_misses == 0 &&
                                         op == memo_op;
                    bool state_ok = false;
                    if (certify) {
                        before.clear();
                        state_ok = appendOpState(*cache, op, before);
                    }
                    const std::uint64_t misses =
                        walkOp(*cache, op, touched, opts.gangWarm);
                    walked += op.first.length;
                    if (!memo_valid || !(op == memo_op)) {
                        memo_op = op;
                        memo_valid = true;
                        memo_fixed = false;
                    } else if (certify && state_ok && misses == 0) {
                        after.clear();
                        memo_fixed = appendOpState(*cache, op, after) &&
                                     before == after;
                    }
                    memo_misses = misses;
                }

                if (pending.size() >= kMeasureChunk)
                    require(measurePoints(pending, opts.jobs, results,
                                          measure));
            }
            vc_assert(next_fresh == fresh.size(),
                      "sampling walk missed a capture point");
            require(
                measurePoints(pending, opts.jobs, results, measure));
            est.warmingFraction =
                est.elementsTotal
                    ? static_cast<double>(walked) /
                          static_cast<double>(est.elementsTotal)
                    : 0.0;

            computeCi(results, opts, est);
            // A periodic trace can alias with the systematic stride:
            // the sample then looks uniform (CI collapses) while the
            // skipped phase differs.  Stride-k aliasing is exposed at
            // stride k/2, so an early stop additionally requires the
            // previous (coarser) round's estimate to fall inside the
            // current interval.
            const bool consistent =
                have_prev && std::abs(est.cyclesPerElement -
                                      prev_ratio) <= est.ciHalfWidth;
            if ((est.ciMet && consistent) || k == 1)
                break;
            prev_ratio = est.cyclesPerElement;
            have_prev = true;
            k /= 2;
        }
        if (journal)
            require(journal->flush());
    } catch (const VcError &e) {
        return e.error();
    }

    est.detailedTotals = SimResult{};
    for (const auto &r : results)
        if (r)
            sumWindow(*r, est.detailedTotals);
    publishCounters(est, opts.registry);
    return est;
}

Expected<SamplingEstimate>
sampleMm(const MachineParams &machine, const Trace &trace,
         const SamplingOptions &opts)
{
    if (const Expected<void> v = validateOptions(opts); !v.ok())
        return v.error();
    if (trace.empty())
        return makeError(Errc::InvalidConfig,
                         "cannot sample an empty trace");

    const std::vector<SamplingUnit> units =
        partitionUnits(trace, opts.unitElements);
    const std::uint64_t total = units.size();

    SamplingEstimate est;
    est.unitsTotal = total;
    for (const SamplingUnit &u : units)
        est.elementsTotal += u.elements;

    std::uint64_t k = initialStride(total, opts.initialUnits);
    const std::uint64_t offset = opts.seed % k;
    std::vector<std::optional<UnitResult>> results(total);
    double prev_ratio = 0.0;
    bool have_prev = false;

    std::vector<std::unique_ptr<MmSimulator>> sims;
    for (unsigned w = 0; w < std::max(opts.jobs, 1u); ++w) {
        auto sim = std::make_unique<MmSimulator>(machine);
        sim->setEngine(SimEngine::Scalar); // see measureCcPoint
        sim->setCancelToken(opts.cancel);
        sims.push_back(std::move(sim));
    }
    const auto measure = [&](const LivePoint &lp, unsigned worker) {
        return measureMmPoint(*sims[worker], trace, lp);
    };

    for (;;) {
        ++est.rounds;
        // The MM machine carries no state between units, so a
        // live-point is just the window bounds; unsampled units are
        // skipped without any walk at all.
        std::vector<LivePoint> pending;
        for (std::uint64_t u :
             newSampleUnits(total, k, offset, results)) {
            LivePoint lp;
            lp.unit = u;
            lp.captureOp = captureOpOf(units[u], opts.warmupOps);
            lp.unitBegin = units[u].opBegin;
            lp.unitEnd = units[u].opEnd;
            pending.push_back(std::move(lp));
            if (pending.size() >= kMeasureChunk) {
                const Expected<void> m =
                    measurePoints(pending, opts.jobs, results, measure);
                if (!m.ok())
                    return m.error();
            }
        }
        const Expected<void> m =
            measurePoints(pending, opts.jobs, results, measure);
        if (!m.ok())
            return m.error();

        computeCi(results, opts, est);
        // Same anti-aliasing stop rule as sampleCc: the coarser
        // round's estimate must fall inside the current interval.
        const bool consistent =
            have_prev && std::abs(est.cyclesPerElement - prev_ratio) <=
                             est.ciHalfWidth;
        if ((est.ciMet && consistent) || k == 1)
            break;
        prev_ratio = est.cyclesPerElement;
        have_prev = true;
        k /= 2;
    }

    est.detailedTotals = SimResult{};
    for (const auto &r : results)
        if (r)
            sumWindow(*r, est.detailedTotals);
    publishCounters(est, opts.registry);
    return est;
}

} // namespace vcache
