/**
 * @file
 * One-call helpers tying traces, machines and caches together.
 */

#ifndef VCACHE_SIM_RUNNER_HH
#define VCACHE_SIM_RUNNER_HH

#include "analytic/machine.hh"
#include "cache/cache.hh"
#include "cache/classify.hh"
#include "cache/prefetch.hh"
#include "sim/result.hh"
#include "trace/access.hh"

namespace vcache
{

/** Simulate a trace on the cacheless MM machine. */
SimResult simulateMm(const MachineParams &params, const Trace &trace);

/** Simulate a trace on the CC machine with the given mapping. */
SimResult simulateCc(const MachineParams &params, CacheScheme scheme,
                     const Trace &trace);

/**
 * Functional run: push every load of a trace through a cache and
 * return its stats (no timing).  Stores are treated as allocating
 * accesses too, matching the write-allocate vector cache.
 */
CacheStats runTraceThroughCache(Cache &cache, const Trace &trace);

/** Functional run with 3C classification. */
MissBreakdown classifyTrace(Cache &cache, const Trace &trace);

/**
 * Functional run through a prefetching front end.  Each vector
 * operation announces its first stream's stride (the Figure-1 stride
 * register contents) before its elements issue.
 */
CacheStats runTraceWithPrefetch(PrefetchingCache &front,
                                const Trace &trace);

} // namespace vcache

#endif // VCACHE_SIM_RUNNER_HH
