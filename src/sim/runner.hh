/**
 * @file
 * One-call helpers tying traces, machines and caches together.
 */

#ifndef VCACHE_SIM_RUNNER_HH
#define VCACHE_SIM_RUNNER_HH

#include <algorithm>

#include "analytic/machine.hh"
#include "cache/cache.hh"
#include "cache/classify.hh"
#include "cache/prefetch.hh"
#include "sim/cancel.hh"
#include "sim/cc_sim.hh"
#include "sim/mm_sim.hh"
#include "sim/result.hh"
#include "trace/access.hh"
#include "trace/source.hh"

namespace vcache
{

namespace detail
{

/** Visit every element access of a trace in machine issue order. */
template <typename AccessFn>
void
walkTrace(const Trace &trace, AccessFn &&access)
{
    for (const auto &op : trace) {
        const std::uint64_t n =
            op.second ? std::max(op.first.length, op.second->length)
                      : op.first.length;
        for (std::uint64_t i = 0; i < n; ++i) {
            if (i < op.first.length)
                access(op.first.element(i), AccessType::Read);
            if (op.second && i < op.second->length)
                access(op.second->element(i), AccessType::Read);
        }
        if (op.store)
            for (std::uint64_t i = 0; i < op.store->length; ++i)
                access(op.store->element(i), AccessType::Write);
    }
}

} // namespace detail

/** Simulate a trace on the cacheless MM machine. */
SimResult simulateMm(const MachineParams &params, const Trace &trace);

/**
 * Simulate a streamed workload on the cacheless MM machine.  A
 * non-null `cancel` token is polled once per vector op; when tripped
 * the run raises VcError(Timeout|Cancelled) -- how sweep deadlines
 * preempt a stuck point.  `engine` selects run batching (Auto, the
 * default) or forced element-wise replay; results are bit-identical.
 */
SimResult simulateMm(const MachineParams &params, TraceSource &source,
                     const CancelToken *cancel = nullptr,
                     SimEngine engine = SimEngine::Auto);

/** Simulate a trace on the CC machine with the given mapping. */
SimResult simulateCc(const MachineParams &params, CacheScheme scheme,
                     const Trace &trace);

/** Simulate a streamed workload on the CC machine (cancellable,
 *  engine-selectable -- see the streamed simulateMm). */
SimResult simulateCc(const MachineParams &params, CacheScheme scheme,
                     TraceSource &source,
                     const CancelToken *cancel = nullptr,
                     SimEngine engine = SimEngine::Auto);

/** Instrumented MM run (see the Observer contract in src/obs). */
template <typename Observer>
SimResult
simulateMm(const MachineParams &params, const Trace &trace,
           Observer &obs)
{
    MmSimulator sim(params);
    return sim.run(trace, obs);
}

/** Instrumented CC run (see the Observer contract in src/obs). */
template <typename Observer>
SimResult
simulateCc(const MachineParams &params, CacheScheme scheme,
           const Trace &trace, Observer &obs)
{
    CcSimulator sim(params, scheme);
    return sim.run(trace, obs);
}

/** Instrumented CC run with an explicit cache configuration. */
template <typename Observer>
SimResult
simulateCc(const MachineParams &params, const CacheConfig &config,
           const Trace &trace, Observer &obs)
{
    CcSimulator sim(params, config);
    return sim.run(trace, obs);
}

/**
 * Functional run: push every load of a trace through a cache and
 * return its stats (no timing).  Stores are treated as allocating
 * accesses too, matching the write-allocate vector cache.
 *
 * A template so callers holding a concrete `final` cache type get the
 * devirtualized access path; passing a plain Cache& (or any
 * polymorphic reference) falls back to virtual dispatch.
 */
template <typename CacheT>
CacheStats
runTraceThroughCache(CacheT &cache, const Trace &trace)
{
    detail::walkTrace(
        trace, [&](Addr a, AccessType t) { accessCache(cache, a, t); });
    return cache.stats();
}

/** Functional run with 3C classification. */
MissBreakdown classifyTrace(Cache &cache, const Trace &trace);

/**
 * Functional run through a prefetching front end.  Each vector
 * operation announces its first stream's stride (the Figure-1 stride
 * register contents) before its elements issue.
 */
CacheStats runTraceWithPrefetch(PrefetchingCache &front,
                                const Trace &trace);

} // namespace vcache

#endif // VCACHE_SIM_RUNNER_HH
