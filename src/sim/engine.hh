/**
 * @file
 * Execution-engine selector for the trace-driven simulators.
 *
 * Auto lets a simulator fast-forward repeated constant-stride vector
 * operations in closed form (run batching) whenever it can prove the
 * result is bit-identical to element-wise replay; Scalar forces the
 * element-wise reference loop unconditionally.  Instrumented runs
 * (any observer with kEnabled == true) always replay element-wise
 * regardless of this knob: a batched pass resolves thousands of
 * accesses without visiting them, so there would be no per-element
 * events to report.
 */

#ifndef VCACHE_SIM_ENGINE_HH
#define VCACHE_SIM_ENGINE_HH

#include <optional>
#include <string_view>

namespace vcache
{

/** How a simulator executes vector operations. */
enum class SimEngine
{
    /** Batch provably-steady runs; replay the rest element-wise. */
    Auto,
    /** Element-wise replay only (the reference behaviour). */
    Scalar,
};

/** Stable lower-case name, for CLI flags and report labels. */
constexpr std::string_view
simEngineName(SimEngine engine)
{
    return engine == SimEngine::Scalar ? "scalar" : "auto";
}

/** Parse a CLI spelling; nullopt when unrecognized. */
inline std::optional<SimEngine>
parseSimEngine(std::string_view text)
{
    if (text == "auto")
        return SimEngine::Auto;
    if (text == "scalar")
        return SimEngine::Scalar;
    return std::nullopt;
}

} // namespace vcache

#endif // VCACHE_SIM_ENGINE_HH
