/**
 * @file
 * Execution-engine selector for the trace-driven simulators.
 *
 * Auto lets a simulator fast-forward repeated constant-stride vector
 * operations in closed form (run batching) whenever it can prove the
 * result is bit-identical to element-wise replay; Scalar forces the
 * element-wise reference loop unconditionally.  Instrumented runs
 * (any observer with kEnabled == true) always replay element-wise
 * regardless of this knob: a batched pass resolves thousands of
 * accesses without visiting them, so there would be no per-element
 * events to report.
 */

#ifndef VCACHE_SIM_ENGINE_HH
#define VCACHE_SIM_ENGINE_HH

#include <optional>
#include <string_view>

namespace vcache
{

/** How a simulator executes vector operations. */
enum class SimEngine
{
    /** Batch provably-steady runs; replay the rest element-wise. */
    Auto,
    /** Element-wise replay only (the reference behaviour). */
    Scalar,
    /**
     * SMARTS-style systematic sampling: simulate detailed timing only
     * on sampled measurement units, functionally warm the cache
     * between them, and report cycles-per-element with a confidence
     * interval.  Handled by sim/sampling.hh, which drives the
     * simulators (in Auto mode) over per-unit trace slices; the
     * simulators themselves treat Sampled like Auto.
     */
    Sampled,
};

/** Stable lower-case name, for CLI flags and report labels. */
constexpr std::string_view
simEngineName(SimEngine engine)
{
    switch (engine) {
      case SimEngine::Scalar:
        return "scalar";
      case SimEngine::Sampled:
        return "sampled";
      default:
        return "auto";
    }
}

/** Parse a CLI spelling; nullopt when unrecognized. */
inline std::optional<SimEngine>
parseSimEngine(std::string_view text)
{
    if (text == "auto")
        return SimEngine::Auto;
    if (text == "scalar")
        return SimEngine::Scalar;
    if (text == "sampled")
        return SimEngine::Sampled;
    return std::nullopt;
}

} // namespace vcache

#endif // VCACHE_SIM_ENGINE_HH
