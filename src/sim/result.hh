/**
 * @file
 * Result of one trace-driven simulation run.
 */

#ifndef VCACHE_SIM_RESULT_HH
#define VCACHE_SIM_RESULT_HH

#include <cstdint>

#include "util/types.hh"

namespace vcache
{

/** Counters produced by the MM and CC trace-driven simulators. */
struct SimResult
{
    /** Total simulated cycles. */
    Cycles totalCycles = 0;
    /** Cycles lost to busy banks (MM) or non-pipelined misses (CC). */
    Cycles stallCycles = 0;
    /** Result elements produced (first-stream loads). */
    std::uint64_t results = 0;
    /** Cache hits (CC only). */
    std::uint64_t hits = 0;
    /** Cache misses (CC only). */
    std::uint64_t misses = 0;
    /** Misses that were first touches (pipelined initial loads). */
    std::uint64_t compulsoryMisses = 0;

    /** The paper's figure-of-merit. */
    double cyclesPerResult() const;

    /** Miss ratio over all cache accesses (0 for the MM machine). */
    double missRatio() const;
};

} // namespace vcache

#endif // VCACHE_SIM_RESULT_HH
