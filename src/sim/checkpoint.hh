/**
 * @file
 * Append-only JSON-lines checkpoint journal for sweeps.
 *
 * A multi-hour grid sweep must survive being killed: every completed
 * point is journalled as one self-contained line, fsync'd in batches,
 * so a crashed or interrupted run can --resume, replay the journal,
 * skip what is done and still emit a final CSV byte-identical to an
 * uninterrupted run.
 *
 * Format (one JSON object per line):
 *
 *   {"vcache_checkpoint":1,"label":"sweep_grid","points":160,"seed":1}
 *   {"point":3,"status":"ok","row":["32","4","256","..."]}
 *   {"point":7,"status":"failed","code":"Timeout","attempts":3,
 *    "error":"..."}
 *
 * The header pins the sweep identity; resuming against a journal
 * whose label/points/seed differ is an InvalidConfig error rather
 * than a silently-wrong CSV.  A torn final line (the process died
 * mid-write) is ignored on replay and truncated away before a resume
 * appends, so repeated crash/resume cycles never leave mid-file
 * corruption; corruption anywhere else is an error.  The last record
 * for a point wins, so a point that failed in
 * one run and succeeded after a resume replays as done.
 */

#ifndef VCACHE_SIM_CHECKPOINT_HH
#define VCACHE_SIM_CHECKPOINT_HH

#include <cstdint>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "util/result.hh"

namespace vcache
{

/** Identity of the sweep a journal belongs to. */
struct CheckpointHeader
{
    std::string label;
    std::uint64_t points = 0;
    std::uint64_t seed = 0;
};

/** Append-only journal writer; safe to call from sweep workers. */
class CheckpointWriter
{
  public:
    /**
     * Open a journal.  With `append` false the file is truncated and
     * a fresh header written; with true (resume) records append after
     * the existing content, first truncating away any torn final line
     * a killed run left behind.
     */
    static Expected<std::unique_ptr<CheckpointWriter>>
    open(const std::string &path, const CheckpointHeader &header,
         bool append);

    ~CheckpointWriter();

    CheckpointWriter(const CheckpointWriter &) = delete;
    CheckpointWriter &operator=(const CheckpointWriter &) = delete;

    /** Journal one completed point with its CSV row. */
    Expected<void> recordDone(std::uint64_t point,
                              const std::vector<std::string> &row);

    /** Journal one permanently failed point. */
    Expected<void> recordFailed(std::uint64_t point, const Error &err,
                                unsigned attempts);

    /** Flush buffered records and fsync the journal. */
    Expected<void> flush();

    const std::string &path() const { return file_path; }

  private:
    CheckpointWriter(std::FILE *f, std::string path);

    Expected<void> writeLine(const std::string &line);

    std::FILE *file;
    std::string file_path;
    std::mutex mtx;
    /** Records since the last fsync; batched for throughput. */
    unsigned unsynced = 0;
};

/** Everything a --resume replay learns from a journal. */
struct CheckpointReplay
{
    CheckpointHeader header;
    /** point -> CSV row of every point whose last record is "ok". */
    std::map<std::uint64_t, std::vector<std::string>> done;
    /** Points whose last record is "failed" (they re-run on resume). */
    std::set<std::uint64_t> failed;
    /**
     * Records that re-journalled an already-seen point (later record
     * wins).  A handful is normal -- a point that failed and then
     * succeeded after a resume, or a crash between journal append and
     * the dedup of a re-run -- but a large count means the journal
     * and the sweep disagree about identity, so the sweep surfaces it
     * as a checkpoint.duplicates counter instead of absorbing it
     * silently.
     */
    std::uint64_t duplicates = 0;
};

/** Parse a journal; torn final lines are tolerated (see file doc). */
Expected<CheckpointReplay> readCheckpoint(const std::string &path);

/**
 * Validate a replay against the resuming sweep's identity; the error
 * names the first mismatching field.
 */
Expected<void> checkResumeCompatible(const CheckpointReplay &replay,
                                     const CheckpointHeader &expected);

/** Minimal JSON string escaping shared by journal and telemetry. */
std::string jsonEscape(const std::string &s);

} // namespace vcache

#endif // VCACHE_SIM_CHECKPOINT_HH
