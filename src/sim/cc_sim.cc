#include "sim/cc_sim.hh"

#include "obs/observer.hh"
#include "util/logging.hh"

namespace vcache
{

CacheConfig
ccCacheConfig(const MachineParams &params, CacheScheme scheme)
{
    CacheConfig config;
    config.organization = scheme == CacheScheme::Prime
                              ? Organization::PrimeMapped
                              : Organization::DirectMapped;
    config.indexBits = params.cacheIndexBits;
    config.offsetBits = 0; // the paper's one-word lines
    return config;
}

CcSimulator::CcSimulator(const MachineParams &params,
                         const CacheConfig &cache_config)
    : machine(params), vectorCache(makeCache(cache_config)),
      memory(params.bankBits, params.memoryTime, params.bankMapping)
{
}

CcSimulator::CcSimulator(const MachineParams &params, CacheScheme scheme)
    : CcSimulator(params, ccCacheConfig(params, scheme))
{
}

void
CcSimulator::enablePrefetch(PrefetchPolicy policy, unsigned degree)
{
    vc_assert(degree >= 1 || policy == PrefetchPolicy::None,
              "prefetch degree must be at least 1");
    prefetchPolicy = policy;
    prefetchDegree = degree;
}

void
CcSimulator::reset()
{
    vectorCache->reset();
    memory.reset();
    buses.reset();
    touchedLines.clear();
    clock = 0;
    inFlight.clear();
    prefetchCount = 0;
}

SimResult
CcSimulator::run(const Trace &trace)
{
    TraceVectorSource source(trace);
    return run(source);
}

SimResult
CcSimulator::run(TraceSource &source)
{
    // The NullObserver instantiations ARE the production fast paths:
    // every hook vanishes under `if constexpr`, leaving exactly the
    // uninstrumented loops.
    NullObserver obs;
    return run(source, obs);
}

SimResult
CcSimulator::runVirtual(const Trace &trace)
{
    TraceVectorSource source(trace);
    NullObserver obs;
    return dispatchRun(*vectorCache, source, obs);
}

} // namespace vcache
