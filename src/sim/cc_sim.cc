#include "sim/cc_sim.hh"

#include <algorithm>

#include "cache/direct.hh"
#include "cache/prime.hh"
#include "util/logging.hh"

namespace vcache
{

CacheConfig
ccCacheConfig(const MachineParams &params, CacheScheme scheme)
{
    CacheConfig config;
    config.organization = scheme == CacheScheme::Prime
                              ? Organization::PrimeMapped
                              : Organization::DirectMapped;
    config.indexBits = params.cacheIndexBits;
    config.offsetBits = 0; // the paper's one-word lines
    return config;
}

CcSimulator::CcSimulator(const MachineParams &params,
                         const CacheConfig &cache_config)
    : machine(params), vectorCache(makeCache(cache_config)),
      memory(params.bankBits, params.memoryTime, params.bankMapping)
{
}

CcSimulator::CcSimulator(const MachineParams &params, CacheScheme scheme)
    : CcSimulator(params, ccCacheConfig(params, scheme))
{
}

void
CcSimulator::enablePrefetch(PrefetchPolicy policy, unsigned degree)
{
    vc_assert(degree >= 1 || policy == PrefetchPolicy::None,
              "prefetch degree must be at least 1");
    prefetchPolicy = policy;
    prefetchDegree = degree;
}

void
CcSimulator::reset()
{
    vectorCache->reset();
    memory.reset();
    buses.reset();
    touchedLines.clear();
    clock = 0;
    inFlight.clear();
    prefetchCount = 0;
}

template <typename CacheT>
void
CcSimulator::issuePrefetches(CacheT &cache, const AddressLayout &layout,
                             Addr addr)
{
    const std::int64_t step =
        prefetchPolicy == PrefetchPolicy::Stride
            ? (streamStride == 0 ? 1 : streamStride)
            : static_cast<std::int64_t>(layout.lineWords());

    Addr next = addr;
    for (unsigned d = 0; d < prefetchDegree; ++d) {
        next = static_cast<Addr>(static_cast<std::int64_t>(next) +
                                 step);
        const Addr line = layout.lineAddress(next);
        // One tag probe decides both "already resident?" and the
        // fill; its hit answer replaces the old contains() pre-check.
        if (!fillLine(cache, line))
            continue;
        // The prefetch streams through a read bus and its bank; the
        // data is usable one memory time after issue.
        const Cycles bus = buses.reserveRead(clock);
        const Cycles when = memory.issue(next, bus);
        inFlight.insertOrAssign(line, when + machine.memoryTime);
        setFrameFlag(cache, line, Cache::kPrefetchedFlag);
        touchedLines.insert(line);
        ++prefetchCount;
    }
}

template <typename CacheT, bool Prefetching>
VCACHE_ALWAYS_INLINE void
CcSimulator::accessElement(CacheT &cache, const AddressLayout &layout,
                           Addr addr, SimResult &result)
{
    const Addr line = layout.lineAddress(addr);
    const AccessOutcome outcome = probeLine(cache, line);
    cache.recordAccess(outcome, AccessType::Read);

    if (outcome.hit) {
        ++result.hits;
        clock += 1;
        if constexpr (Prefetching) {
            // A hit on a line still in flight waits for whatever part
            // of the flight the vector pipeline cannot absorb.  The
            // strip start-up (T_start = 30 + t_m) already hides one
            // memory time of an in-order stream -- the same credit
            // the compulsory path gets -- so only bank-contention
            // delays beyond that are exposed.
            if (const Cycles *arrival = inFlight.find(line)) {
                const Cycles visible = clock + machine.memoryTime;
                if (*arrival > visible) {
                    result.stallCycles += *arrival - visible;
                    clock = *arrival - machine.memoryTime;
                }
                inFlight.erase(line);
            }
            // Tagged retrigger: first demand use of a prefetched line
            // launches the next prefetch.  No flag can be set before
            // the first prefetch issues, so runs without prefetching
            // skip the extra tag probe entirely.
            if (prefetchCount != 0 &&
                clearFrameFlag(cache, line, Cache::kPrefetchedFlag) &&
                prefetchPolicy != PrefetchPolicy::None) {
                issuePrefetches(cache, layout, addr);
            }
        }
        return;
    }

    ++result.misses;
    const bool first_touch = touchedLines.insert(line);
    if (first_touch || nonBlocking) {
        // Compulsory miss (or any miss of a lockup-free cache): part
        // of the pipelined load stream; it flows through bus and
        // banks at streaming rate.
        if (first_touch)
            ++result.compulsoryMisses;
        const Cycles bus = buses.reserveRead(clock);
        const Cycles when = memory.issue(addr, bus);
        result.stallCycles += when - clock;
        clock = when + 1;
    } else {
        // Interference/capacity miss: full memory round trip exposed.
        result.stallCycles += machine.memoryTime;
        clock += 1 + machine.memoryTime;
    }
    if constexpr (Prefetching) {
        if (prefetchPolicy != PrefetchPolicy::None)
            issuePrefetches(cache, layout, addr);
    }
}

template <typename CacheT>
SimResult
CcSimulator::dispatchRun(CacheT &cache, TraceSource &source)
{
    // A run beginning with a None policy and no live prefetch state
    // (no lines in flight, no tag flags -- both imply prefetchCount
    // == 0) can never acquire any, so the specialized loop omits the
    // prefetch bookkeeping from the per-element path altogether.
    if (prefetchPolicy == PrefetchPolicy::None && prefetchCount == 0)
        return runImpl<CacheT, false>(cache, source);
    return runImpl<CacheT, true>(cache, source);
}

template <typename CacheT, bool Prefetching>
SimResult
CcSimulator::runImpl(CacheT &cache, TraceSource &source)
{
    SimResult result;
    const AddressLayout &layout = cache.addressLayout();

    // The strip start-up only takes two values per run -- cold head,
    // or warm head with the memory-latency credit of Equation (4) --
    // so the floating-point math happens once, not once per strip.
    const double base_startup =
        machine.stripOverhead + machine.startupTime();
    const Cycles cold_startup = static_cast<Cycles>(base_startup);
    const Cycles warm_startup = static_cast<Cycles>(
        base_startup - static_cast<double>(machine.memoryTime));

    VectorOp op;
    while (source.next(op)) {
        clock += static_cast<Cycles>(machine.blockOverhead);
        streamStride = op.first.stride; // the stride register value

        const VectorRef *second =
            op.second ? &op.second.value() : nullptr;
        const std::int64_t s1 = op.first.stride;
        const std::int64_t s2 = second ? second->stride : 0;

        for (std::uint64_t done = 0; done < op.first.length;
             done += machine.mvl) {
            // Strips whose head is already cached skip the memory
            // latency component of the start-up (Equation (4)).
            Addr a1 = op.first.element(done);
            const bool warm = containsWord(cache, a1);
            clock += warm ? warm_startup : cold_startup;

            const std::uint64_t count =
                std::min<std::uint64_t>(machine.mvl,
                                        op.first.length - done);
            if (second) {
                Addr a2 = second->element(done);
                for (std::uint64_t i = 0; i < count; ++i) {
                    accessElement<CacheT, Prefetching>(cache, layout, a1,
                                                   result);
                    if (done + i < second->length)
                        accessElement<CacheT, Prefetching>(cache, layout, a2,
                                                       result);
                    ++result.results;
                    a1 = static_cast<Addr>(
                        static_cast<std::int64_t>(a1) + s1);
                    a2 = static_cast<Addr>(
                        static_cast<std::int64_t>(a2) + s2);
                }
            } else {
                for (std::uint64_t i = 0; i < count; ++i) {
                    accessElement<CacheT, Prefetching>(cache, layout, a1,
                                                   result);
                    ++result.results;
                    a1 = static_cast<Addr>(
                        static_cast<std::int64_t>(a1) + s1);
                }
            }
        }

        if (op.store)
            buses.reserveWrites(clock, op.store->length);
    }

    result.totalCycles = clock;
    return result;
}

SimResult
CcSimulator::run(const Trace &trace)
{
    TraceVectorSource source(trace);
    return run(source);
}

SimResult
CcSimulator::run(TraceSource &source)
{
    Cache *base = vectorCache.get();
    if (auto *direct = dynamic_cast<DirectMappedCache *>(base))
        return dispatchRun(*direct, source);
    if (auto *prime = dynamic_cast<PrimeMappedCache *>(base))
        return dispatchRun(*prime, source);
    return dispatchRun(*base, source);
}

SimResult
CcSimulator::runVirtual(const Trace &trace)
{
    TraceVectorSource source(trace);
    return dispatchRun(*vectorCache, source);
}

} // namespace vcache
