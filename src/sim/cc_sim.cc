#include "sim/cc_sim.hh"

#include "obs/observer.hh"
#include "util/logging.hh"

namespace vcache
{

CacheConfig
ccCacheConfig(const MachineParams &params, CacheScheme scheme)
{
    CacheConfig config;
    config.organization = scheme == CacheScheme::Prime
                              ? Organization::PrimeMapped
                              : Organization::DirectMapped;
    config.indexBits = params.cacheIndexBits;
    config.offsetBits = 0; // the paper's one-word lines
    return config;
}

CcSimulator::CcSimulator(const MachineParams &params,
                         const CacheConfig &cache_config)
    : machine(params), vectorCache(makeCache(cache_config)),
      memory(params.bankBits, params.memoryTime, params.bankMapping)
{
}

CcSimulator::CcSimulator(const MachineParams &params, CacheScheme scheme)
    : CcSimulator(params, ccCacheConfig(params, scheme))
{
}

void
CcSimulator::enablePrefetch(PrefetchPolicy policy, unsigned degree)
{
    vc_assert(degree >= 1 || policy == PrefetchPolicy::None,
              "prefetch degree must be at least 1");
    prefetchPolicy = policy;
    prefetchDegree = degree;
}

void
CcSimulator::reset()
{
    vectorCache->reset();
    memory.reset();
    buses.reset();
    touchedLines.clear();
    clock = 0;
    inFlight.clear();
    prefetchCount = 0;
}

SimResult
CcSimulator::run(const Trace &trace)
{
    TraceVectorSource source(trace);
    return run(source);
}

SimResult
CcSimulator::run(TraceSource &source)
{
    // The NullObserver instantiations ARE the production fast paths:
    // every hook vanishes under `if constexpr`, leaving exactly the
    // uninstrumented loops.
    NullObserver obs;
    // Run batching only engages on the uninstrumented overloads, and
    // only in the no-prefetch instantiation: prefetch timing depends
    // on absolute bank/bus state, which extrapolated passes skip.
    // Sampled is driven from sim/sampling.hh, which feeds this
    // simulator per-unit trace slices; inside a unit it behaves like
    // Auto.
    if (engineKind != SimEngine::Scalar &&
        prefetchPolicy == PrefetchPolicy::None && prefetchCount == 0) {
        Cache *base = vectorCache.get();
        if (auto *direct = dynamic_cast<DirectMappedCache *>(base))
            return runBatched(*direct, source, obs);
        if (auto *prime = dynamic_cast<PrimeMappedCache *>(base))
            return runBatched(*prime, source, obs);
        return runBatched(*base, source, obs);
    }
    return run(source, obs);
}

bool
CcSimulator::appendOpState(const VectorOp &op,
                           std::vector<std::uint64_t> &out) const
{
    if (!vectorCache->appendRunState(op.first.base, op.first.stride,
                                     op.first.length, out))
        return false;
    if (op.second) {
        // The element loop reads the second stream only while the
        // first still has elements, so its reach truncates there.
        const std::uint64_t length =
            std::min(op.second->length, op.first.length);
        return vectorCache->appendRunState(op.second->base,
                                           op.second->stride, length,
                                           out);
    }
    return true;
}

void
CcSimulator::applyBatch(const BatchMemo &memo, SimResult &result)
{
    result.results += memo.delta.results;
    result.hits += memo.delta.hits;
    result.misses += memo.delta.misses;
    result.compulsoryMisses += memo.delta.compulsoryMisses;
    result.stallCycles += memo.delta.stallCycles;
    clock += memo.clockDelta;
    vectorCache->applyStatsDelta(memo.stats);
}

SimResult
CcSimulator::runVirtual(const Trace &trace)
{
    TraceVectorSource source(trace);
    NullObserver obs;
    return dispatchRun(*vectorCache, source, obs);
}

} // namespace vcache
