#include "sim/cc_sim.hh"

#include <algorithm>

#include "util/logging.hh"

namespace vcache
{

CacheConfig
ccCacheConfig(const MachineParams &params, CacheScheme scheme)
{
    CacheConfig config;
    config.organization = scheme == CacheScheme::Prime
                              ? Organization::PrimeMapped
                              : Organization::DirectMapped;
    config.indexBits = params.cacheIndexBits;
    config.offsetBits = 0; // the paper's one-word lines
    return config;
}

CcSimulator::CcSimulator(const MachineParams &params,
                         const CacheConfig &cache_config)
    : machine(params), vectorCache(makeCache(cache_config)),
      memory(params.bankBits, params.memoryTime, params.bankMapping)
{
}

CcSimulator::CcSimulator(const MachineParams &params, CacheScheme scheme)
    : CcSimulator(params, ccCacheConfig(params, scheme))
{
}

void
CcSimulator::enablePrefetch(PrefetchPolicy policy, unsigned degree)
{
    vc_assert(degree >= 1 || policy == PrefetchPolicy::None,
              "prefetch degree must be at least 1");
    prefetchPolicy = policy;
    prefetchDegree = degree;
}

void
CcSimulator::reset()
{
    vectorCache->reset();
    memory.reset();
    buses.reset();
    touchedLines.clear();
    clock = 0;
    inFlight.clear();
    untouchedPrefetches.clear();
    prefetchCount = 0;
}

void
CcSimulator::issuePrefetches(Addr addr)
{
    const auto &layout = vectorCache->addressLayout();
    const std::int64_t step =
        prefetchPolicy == PrefetchPolicy::Stride
            ? (streamStride == 0 ? 1 : streamStride)
            : static_cast<std::int64_t>(layout.lineWords());

    Addr next = addr;
    for (unsigned d = 0; d < prefetchDegree; ++d) {
        next = static_cast<Addr>(static_cast<std::int64_t>(next) +
                                 step);
        if (vectorCache->contains(next))
            continue;
        const Addr line = layout.lineAddress(next);
        if (!vectorCache->insert(next))
            continue;
        // The prefetch streams through a read bus and its bank; the
        // data is usable one memory time after issue.
        const Cycles bus = buses.reserveRead(clock);
        const Cycles when = memory.issue(next, bus);
        inFlight[line] = when + machine.memoryTime;
        untouchedPrefetches.insert(line);
        touchedLines.insert(line);
        ++prefetchCount;
    }
}

void
CcSimulator::accessElement(Addr addr, SimResult &result)
{
    const Addr line = vectorCache->addressLayout().lineAddress(addr);
    const AccessOutcome outcome = vectorCache->access(addr);

    if (outcome.hit) {
        ++result.hits;
        touchedLines.insert(line);
        clock += 1;
        // A hit on a line still in flight waits for whatever part of
        // the flight the vector pipeline cannot absorb.  The strip
        // start-up (T_start = 30 + t_m) already hides one memory
        // time of an in-order stream -- the same credit the
        // compulsory path gets -- so only bank-contention delays
        // beyond that are exposed.
        if (auto it = inFlight.find(line); it != inFlight.end()) {
            const Cycles visible = clock + machine.memoryTime;
            if (it->second > visible) {
                result.stallCycles += it->second - visible;
                clock = it->second - machine.memoryTime;
            }
            inFlight.erase(it);
        }
        // Tagged retrigger: first demand use of a prefetched line
        // launches the next prefetch.
        if (untouchedPrefetches.erase(line) &&
            prefetchPolicy != PrefetchPolicy::None) {
            issuePrefetches(addr);
        }
        return;
    }

    ++result.misses;
    untouchedPrefetches.erase(line);
    const bool first_touch = touchedLines.insert(line).second;
    if (first_touch || nonBlocking) {
        // Compulsory miss (or any miss of a lockup-free cache): part
        // of the pipelined load stream; it flows through bus and
        // banks at streaming rate.
        if (first_touch)
            ++result.compulsoryMisses;
        const Cycles bus = buses.reserveRead(clock);
        const Cycles when = memory.issue(addr, bus);
        result.stallCycles += when - clock;
        clock = when + 1;
    } else {
        // Interference/capacity miss: full memory round trip exposed.
        result.stallCycles += machine.memoryTime;
        clock += 1 + machine.memoryTime;
    }
    if (prefetchPolicy != PrefetchPolicy::None)
        issuePrefetches(addr);
}

SimResult
CcSimulator::run(const Trace &trace)
{
    SimResult result;

    for (const auto &op : trace) {
        clock += static_cast<Cycles>(machine.blockOverhead);
        streamStride = op.first.stride; // the stride register value

        const VectorRef *second =
            op.second ? &op.second.value() : nullptr;

        for (std::uint64_t done = 0; done < op.first.length;
             done += machine.mvl) {
            // Strips whose head is already cached skip the memory
            // latency component of the start-up (Equation (4)).
            const bool warm =
                vectorCache->contains(op.first.element(done));
            const double startup =
                machine.stripOverhead + machine.startupTime() -
                (warm ? static_cast<double>(machine.memoryTime) : 0.0);
            clock += static_cast<Cycles>(startup);

            const std::uint64_t count =
                std::min<std::uint64_t>(machine.mvl,
                                        op.first.length - done);
            for (std::uint64_t i = 0; i < count; ++i) {
                accessElement(op.first.element(done + i), result);
                if (second && done + i < second->length)
                    accessElement(second->element(done + i), result);
                ++result.results;
            }
        }

        if (op.store)
            for (std::uint64_t i = 0; i < op.store->length; ++i)
                buses.reserveWrite(clock);
    }

    result.totalCycles = clock;
    return result;
}

} // namespace vcache
