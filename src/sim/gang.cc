#include "sim/gang.hh"

#include <algorithm>

#include "cache/cache.hh"
#include "cache/direct.hh"
#include "cache/prime.hh"
#include "memory/bus.hh"
#include "memory/interleaved.hh"
#include "sim/cc_sim.hh"
#include "util/flat_hash.hh"

namespace vcache
{

namespace
{

/** Per-lane timing state: everything a t_m can change. */
struct LaneState
{
    LaneState(const MachineParams &base, const GangLane &lane)
        : tm(lane.memoryTime),
          memory(base.bankBits, lane.memoryTime, base.bankMapping),
          cancel(lane.cancel)
    {
        // Exactly stripLoop's start-up arithmetic for this t_m: the
        // float math happens once per lane, not once per strip.
        MachineParams m = base;
        m.memoryTime = lane.memoryTime;
        const double base_startup =
            m.stripOverhead + m.startupTime();
        cold = static_cast<Cycles>(base_startup);
        warm = static_cast<Cycles>(
            base_startup - static_cast<double>(m.memoryTime));
    }

    Cycles clock = 0;
    Cycles stall = 0;
    Cycles cold = 0;
    Cycles warm = 0;
    std::uint64_t tm;
    BusSet buses;
    InterleavedMemory memory;
    const CancelToken *cancel;
    bool dead = false;
    Errc errc = Errc::Cancelled;
};

/**
 * Shared events since the last clock-coupled one.  Every entry
 * advances each lane's clock by a per-lane constant, so the counts
 * flush into a lane as one multiply-add chain that lands on exactly
 * the value element-wise replay would have reached.
 */
struct PendingCounts
{
    std::uint64_t ops = 0;
    std::uint64_t coldStrips = 0;
    std::uint64_t warmStrips = 0;
    std::uint64_t hits = 0;
    std::uint64_t blocking = 0;

    bool
    any() const
    {
        return (ops | coldStrips | warmStrips | hits | blocking) != 0;
    }
};

template <typename CacheT>
std::vector<Expected<SimResult>>
runGang(const MachineParams &base, CacheT &cache, TraceSource &source,
        std::span<const GangLane> lanes)
{
    const Cycles block_overhead =
        static_cast<Cycles>(base.blockOverhead);

    std::vector<LaneState> states;
    states.reserve(lanes.size());
    for (const GangLane &lane : lanes)
        states.emplace_back(base, lane);
    std::size_t live = states.size();

    // Functional state, shared across every lane (see gang.hh).
    const AddressLayout &layout = cache.addressLayout();
    FlatSet<Addr> touched;
    SimResult shared;
    PendingCounts pend;

    auto flushAll = [&] {
        if (!pend.any())
            return;
        for (LaneState &l : states) {
            if (l.dead)
                continue;
            l.clock += pend.ops * block_overhead +
                       pend.coldStrips * l.cold +
                       pend.warmStrips * l.warm + pend.hits +
                       pend.blocking * (1 + l.tm);
            l.stall += pend.blocking * l.tm;
        }
        pend = PendingCounts{};
    };

    // One element, mirroring CcSimulator::accessElement for the
    // no-prefetch, blocking-miss, uninstrumented configuration.
    auto access = [&](Addr addr) {
        const Addr line = layout.lineAddress(addr);
        const AccessOutcome outcome = probeLine(cache, line);
        cache.recordAccess(outcome, AccessType::Read);
        if (outcome.hit) {
            ++shared.hits;
            ++pend.hits;
            return;
        }
        ++shared.misses;
        if (touched.insert(line)) {
            // Compulsory: the pipelined load consults each lane's bus
            // and bank horizons at that lane's own clock.
            ++shared.compulsoryMisses;
            flushAll();
            for (LaneState &l : states) {
                if (l.dead)
                    continue;
                const Cycles bus = l.buses.reserveRead(l.clock);
                const Cycles when = l.memory.issue(addr, bus);
                l.stall += when - l.clock;
                l.clock = when + 1;
            }
        } else {
            // Interference/capacity: a pure t_m stall, countable.
            ++pend.blocking;
        }
    };

    VectorOp op;
    while (live != 0 && source.next(op)) {
        for (LaneState &l : states) {
            if (l.dead || !l.cancel || !l.cancel->cancelled())
                continue;
            l.dead = true;
            l.errc = l.cancel->reason() == CancelToken::Reason::Timeout
                         ? Errc::Timeout
                         : Errc::Cancelled;
            --live;
        }
        if (live == 0)
            break;

        ++pend.ops;
        const VectorRef *second =
            op.second ? &op.second.value() : nullptr;
        const std::int64_t s1 = op.first.stride;
        const std::int64_t s2 = second ? second->stride : 0;

        for (std::uint64_t done = 0; done < op.first.length;
             done += base.mvl) {
            Addr a1 = op.first.element(done);
            if (containsWord(cache, a1))
                ++pend.warmStrips;
            else
                ++pend.coldStrips;
            const std::uint64_t count = std::min<std::uint64_t>(
                base.mvl, op.first.length - done);

            if (second) {
                Addr a2 = second->element(done);
                for (std::uint64_t i = 0; i < count; ++i) {
                    access(a1);
                    if (done + i < second->length)
                        access(a2);
                    ++shared.results;
                    a1 = static_cast<Addr>(
                        static_cast<std::int64_t>(a1) + s1);
                    a2 = static_cast<Addr>(
                        static_cast<std::int64_t>(a2) + s2);
                }
            } else {
                for (std::uint64_t i = 0; i < count; ++i) {
                    access(a1);
                    ++shared.results;
                    a1 = static_cast<Addr>(
                        static_cast<std::int64_t>(a1) + s1);
                }
            }
        }

        if (op.store) {
            flushAll();
            for (LaneState &l : states)
                if (!l.dead)
                    l.buses.reserveWrites(l.clock,
                                          op.store->length);
        }
    }
    flushAll();

    std::vector<Expected<SimResult>> out;
    out.reserve(states.size());
    for (const LaneState &l : states) {
        if (l.dead) {
            out.emplace_back(makeError(
                l.errc, l.errc == Errc::Timeout
                            ? "simulation exceeded the per-point "
                              "deadline"
                            : "simulation cancelled"));
            continue;
        }
        SimResult r = shared;
        r.stallCycles = l.stall;
        r.totalCycles = l.clock;
        out.emplace_back(r);
    }
    return out;
}

} // namespace

std::vector<Expected<SimResult>>
simulateCcGang(const MachineParams &base, const CacheConfig &config,
               TraceSource &source, std::span<const GangLane> lanes)
{
    if (lanes.empty())
        return {};
    const auto cache = makeCache(config);
    // The same devirtualization split as CcSimulator::run(): the
    // paper's two mappings compile to direct calls, everything else
    // probes through the virtual interface.
    Cache *ptr = cache.get();
    if (auto *direct = dynamic_cast<DirectMappedCache *>(ptr))
        return runGang(base, *direct, source, lanes);
    if (auto *prime = dynamic_cast<PrimeMappedCache *>(ptr))
        return runGang(base, *prime, source, lanes);
    return runGang(base, *ptr, source, lanes);
}

std::vector<Expected<SimResult>>
simulateCcGang(const MachineParams &base, CacheScheme scheme,
               TraceSource &source, std::span<const GangLane> lanes)
{
    return simulateCcGang(base, ccCacheConfig(base, scheme), source,
                          lanes);
}

} // namespace vcache
