#include "sim/mm_sim.hh"

#include "obs/observer.hh"

namespace vcache
{

MmSimulator::MmSimulator(const MachineParams &params)
    : machine(params),
      memory(params.bankBits, params.memoryTime, params.bankMapping)
{
}

void
MmSimulator::reset()
{
    memory.reset();
    buses.reset();
    clock = 0;
}

SimResult
MmSimulator::run(const Trace &trace)
{
    TraceVectorSource source(trace);
    return run(source);
}

SimResult
MmSimulator::run(TraceSource &source)
{
    // The NullObserver instantiation IS the production fast path.
    NullObserver obs;
    return run(source, obs);
}

} // namespace vcache
