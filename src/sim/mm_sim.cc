#include "sim/mm_sim.hh"

#include <algorithm>

#include "util/logging.hh"

namespace vcache
{

MmSimulator::MmSimulator(const MachineParams &params)
    : machine(params),
      memory(params.bankBits, params.memoryTime, params.bankMapping)
{
}

void
MmSimulator::reset()
{
    memory.reset();
    buses.reset();
    clock = 0;
}

void
MmSimulator::issueStrip(const VectorRef &first, const VectorRef *second,
                        std::uint64_t offset, std::uint64_t count,
                        SimResult &result)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        Cycles ready = clock;

        // Stream 1 element.
        {
            const Addr a = first.element(offset + i);
            const Cycles bus = buses.reserveRead(ready);
            const Cycles when = memory.issue(a, bus);
            ready = std::max(ready, when);
        }
        // Stream 2 element, if this strip belongs to a double-stream
        // op and the second (shorter) vector still has elements.
        if (second && offset + i < second->length) {
            const Addr a = second->element(offset + i);
            const Cycles bus = buses.reserveRead(clock);
            const Cycles when = memory.issue(a, bus);
            ready = std::max(ready, when);
        }

        result.stallCycles += ready - clock;
        clock = ready + 1; // in-order pipeline: next issue slot
        ++result.results;
    }
}

SimResult
MmSimulator::run(const Trace &trace)
{
    TraceVectorSource source(trace);
    return run(source);
}

SimResult
MmSimulator::run(TraceSource &source)
{
    SimResult result;

    VectorOp op;
    while (source.next(op)) {
        clock += static_cast<Cycles>(machine.blockOverhead);

        const VectorRef *second =
            op.second ? &op.second.value() : nullptr;

        for (std::uint64_t done = 0; done < op.first.length;
             done += machine.mvl) {
            clock += static_cast<Cycles>(machine.stripOverhead +
                                         machine.startupTime());
            const std::uint64_t count =
                std::min<std::uint64_t>(machine.mvl,
                                        op.first.length - done);
            issueStrip(op.first, second, done, count, result);
        }

        // Stores drain through the write bus without stalling the
        // pipeline (the paper's write-buffer assumption).
        if (op.store)
            buses.reserveWrites(clock, op.store->length);
    }

    result.totalCycles = clock;
    return result;
}

} // namespace vcache
