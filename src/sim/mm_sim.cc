#include "sim/mm_sim.hh"

#include "numtheory/gcd.hh"
#include "obs/observer.hh"
#include "util/faultinject.hh"

namespace vcache
{

MmSimulator::MmSimulator(const MachineParams &params)
    : machine(params),
      memory(params.bankBits, params.memoryTime, params.bankMapping)
{
}

void
MmSimulator::reset()
{
    memory.reset();
    buses.reset();
    clock = 0;
}

SimResult
MmSimulator::run(const Trace &trace)
{
    TraceVectorSource source(trace);
    return run(source);
}

SimResult
MmSimulator::run(TraceSource &source)
{
    // Sampled is driven from sim/sampling.hh; per-unit slices run
    // through the batched engine like Auto.
    if (engineKind != SimEngine::Scalar)
        return runBatched(source);
    // The NullObserver instantiation IS the production fast path.
    NullObserver obs;
    return run(source, obs);
}

SimResult
MmSimulator::runBatched(TraceSource &source)
{
    SimResult result;
    NullObserver obs;

    VectorOp op;
    while (source.next(op)) {
        if (cancel && cancel->cancelled())
            throwCancelled(*cancel);
        clock += static_cast<Cycles>(machine.blockOverhead);

        if (!tryFastForwardOp(op, result)) {
            const VectorRef *second =
                op.second ? &op.second.value() : nullptr;
            for (std::uint64_t done = 0; done < op.first.length;
                 done += machine.mvl) {
                clock += static_cast<Cycles>(machine.stripOverhead +
                                             machine.startupTime());
                const std::uint64_t count =
                    std::min<std::uint64_t>(machine.mvl,
                                            op.first.length - done);
                issueStrip(op.first, second, done, count, result,
                           obs);
            }
        }

        // Stores drain through the write bus without stalling the
        // pipeline; the write bus is reserved live even on
        // fast-forwarded ops (its wait accounting depends on
        // absolute time).
        if (op.store)
            buses.reserveWrites(clock, op.store->length);
    }

    result.totalCycles = clock;
    return result;
}

bool
MmSimulator::tryFastForwardOp(const VectorOp &op, SimResult &result)
{
    // Double streams interleave two progressions on the buses; their
    // tie-breaking is cheap to replay but fiddly to prove, so they
    // stay element-wise.
    if (op.second)
        return false;
    // An armed fault plan must see every memory.bank.issue site hit;
    // the closed form never visits them.
    if (faults::kEnabled && faults::activeCheap())
        return false;
    const BankMapping mapping = memory.bankMapping();
    if (mapping != BankMapping::LowOrder &&
        mapping != BankMapping::PrimeModulo)
        return false;
    const VectorRef &ref = op.first;
    // LowOrder is wrap-safe (2^b divides 2^64); the prime modulus
    // needs the true integer progression.
    if (mapping == BankMapping::PrimeModulo &&
        !spansWithoutWrap(ref.base, ref.stride, ref.length))
        return false;
    const Cycles gap = static_cast<Cycles>(machine.stripOverhead +
                                           machine.startupTime());
    const Cycles tm = memory.busyTime();
    // Every bank goes idle again within t_m - 1 cycles of its strip's
    // last issue, so this start-up guarantees all banks are free at
    // every strip start -- the base case of the closed form.
    if (gap + 1 < tm)
        return false;
    if (ref.length == 0)
        return true;

    const std::uint64_t banks = memory.banks();
    const std::uint64_t q =
        banks / gcd(floorMod(ref.stride, banks), banks);
    const bool conflicted = tm > q;
    // Cycle offset of within-strip element i from its strip's start:
    // banks repeat every q elements, so with t_m > q each revisit
    // waits out the tail of the previous access to the same bank.
    const auto issueOffset = [&](std::uint64_t i) -> Cycles {
        return conflicted ? (i % q) + (i / q) * tm : i;
    };

    const std::uint64_t mvl = machine.mvl;
    const std::uint64_t strips = (ref.length + mvl - 1) / mvl;
    const std::uint64_t last_count =
        ref.length - (strips - 1) * mvl;
    // All strips but the last are full, so strip starts form an
    // arithmetic progression.
    const Cycles full_span = gap + issueOffset(mvl - 1) + 1;
    const Cycles first_start = clock + gap;
    const Cycles last_start =
        first_start + (strips - 1) * full_span;

    if (conflicted) {
        const Cycles per_revisit = tm - q;
        result.stallCycles +=
            (strips - 1) * ((mvl - 1) / q) * per_revisit +
            ((last_count - 1) / q) * per_revisit;
    }
    result.results += ref.length;

    // Bus end state needs the grant cycles of the last two requests
    // (see BusSet::absorbReadRun).  Within a strip starting at S,
    // request 0 is granted at S and request i at the previous issue
    // time plus one.
    const auto grantInStrip = [&](Cycles start, std::uint64_t i) {
        return i == 0 ? start : start + issueOffset(i - 1) + 1;
    };
    const Cycles last_grant =
        grantInStrip(last_start, last_count - 1);
    Cycles prev_grant = last_grant; // unused when length == 1
    if (ref.length >= 2) {
        if (last_count >= 2) {
            prev_grant = grantInStrip(last_start, last_count - 2);
        } else {
            const Cycles prev_start = last_start - full_span;
            prev_grant = grantInStrip(prev_start, mvl - 1);
        }
    }
    buses.absorbReadRun(ref.length, last_grant, prev_grant);

    // Bank end state: the run touches min(q, length) distinct banks,
    // one per residue class of the element index; each bank's busy
    // horizon comes from its class's highest-index element.
    const std::uint64_t touched =
        q < ref.length ? q : ref.length;
    for (std::uint64_t r = 0; r < touched; ++r) {
        const std::uint64_t k =
            r + ((ref.length - 1 - r) / q) * q;
        const Cycles start = first_start + (k / mvl) * full_span;
        memory.noteRunIssue(ref.element(k),
                            start + issueOffset(k % mvl));
    }

    clock = last_start + issueOffset(last_count - 1) + 1;
    return true;
}

} // namespace vcache
