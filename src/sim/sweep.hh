/**
 * @file
 * Parallel sweep engine for the model/sim parameter grids.
 *
 * Every figure in the paper's evaluation is a grid walk: evaluate a
 * pure function of (t_m, B, stride, mapping, ...) at each point and
 * print one row per point.  Points are independent, so the driver
 * here fans them out across a fixed-size ThreadPool while keeping the
 * output *byte-identical* to a serial run:
 *
 *  - results land in a pre-sized vector indexed by grid position, so
 *    row order never depends on scheduling;
 *  - per-worker RunningStats are merged in worker-id order via
 *    RunningStats::merge.
 *
 * Determinism contract: anything printed per point must derive from
 * that point's result (seed every RNG from the point index, never
 * from the worker).  The merged SweepOutcome::stats are deterministic
 * in count/min/max/sum-of-samples but, because which worker ran which
 * point is scheduling-dependent, their floating-point accumulation
 * order is not -- use them for stderr summaries, not for table cells.
 */

#ifndef VCACHE_SIM_SWEEP_HH
#define VCACHE_SIM_SWEEP_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/cli.hh"
#include "util/stats.hh"

namespace vcache
{

/** Per-worker scratch state; never shared between live jobs. */
struct SweepWorker
{
    /** Worker index, 0 <= id < jobs. */
    unsigned id = 0;
    /** Point-evaluator accumulator; merged into SweepOutcome::stats. */
    RunningStats stats;
    /**
     * Points this worker has finished, bumped by the sweep engine
     * after every evaluation.  Read concurrently (relaxed) by the
     * telemetry monitor, so it is atomic -- which also makes
     * SweepWorker non-copyable; the engine only ever hands out
     * references.
     */
    std::atomic<std::uint64_t> pointsDone{0};
};

/** Knobs shared by every sweep-driven bench. */
struct SweepOptions
{
    /** Worker threads; 0 means ThreadPool::defaultWorkers(). */
    unsigned jobs = 0;
    /** Base seed benches fold into per-point trace seeds. */
    std::uint64_t seed = 1;
    /** Emit progress/throughput lines on stderr while running. */
    bool progress = true;
    /** Name used in the progress lines. */
    std::string label = "sweep";
    /**
     * Machine-readable progress sink: one JSON object per line
     * (sweep_start, periodic sweep_progress with per-worker point
     * counts, sweep_end).  Null disables telemetry.  The stream is
     * only written from the monitor thread.
     */
    std::shared_ptr<std::ostream> telemetry;
};

/** What one sweep did, for throughput reporting. */
struct SweepOutcome
{
    /** Grid points evaluated. */
    std::size_t points = 0;
    /** Worker threads actually used. */
    unsigned jobs = 1;
    /** Wall-clock seconds for the whole sweep. */
    double seconds = 0.0;
    /** Per-worker accumulators merged in worker-id order. */
    RunningStats stats;

    /** Points evaluated per wall-clock second. */
    double pointsPerSecond() const;
};

/**
 * Evaluate points [0, n) across the pool.
 *
 * The evaluator must be safe to call concurrently for *distinct*
 * indices; the SweepWorker reference it receives is exclusive to the
 * calling thread for the duration of the call.
 */
SweepOutcome
runSweep(std::size_t points,
         const std::function<void(std::size_t, SweepWorker &)> &eval,
         const SweepOptions &opts = {});

/**
 * Grid convenience wrapper: results[i] = eval(grid[i], worker), with
 * the results vector pre-sized and indexed by grid position so output
 * ordering matches the serial walk exactly.
 */
template <typename Point, typename F>
auto
sweepGrid(const std::vector<Point> &grid, F &&eval,
          const SweepOptions &opts = {}, SweepOutcome *outcome = nullptr)
{
    using Result =
        std::invoke_result_t<F &, const Point &, SweepWorker &>;
    static_assert(!std::is_void_v<Result>,
                  "use runSweep for evaluators without results");
    std::vector<Result> results(grid.size());
    const auto ran = runSweep(
        grid.size(),
        [&](std::size_t i, SweepWorker &w) { results[i] = eval(grid[i], w); },
        opts);
    if (outcome)
        *outcome = ran;
    return results;
}

/** Register the shared --jobs/--seed/--progress/--telemetry flags. */
void addSweepFlags(ArgParser &args);

/**
 * Read the shared flags back.  Rejects implausible --jobs values
 * outright instead of truncating them into a small integer.
 */
SweepOptions sweepOptionsFromFlags(const ArgParser &args,
                                   const std::string &label = "sweep");

} // namespace vcache

#endif // VCACHE_SIM_SWEEP_HH
