/**
 * @file
 * Parallel, fault-tolerant sweep engine for the model/sim grids.
 *
 * Every figure in the paper's evaluation is a grid walk: evaluate a
 * pure function of (t_m, B, stride, mapping, ...) at each point and
 * print one row per point.  Points are independent, so the driver
 * here fans them out across a fixed-size ThreadPool while keeping the
 * output *byte-identical* to a serial run:
 *
 *  - results land in a pre-sized vector indexed by grid position, so
 *    row order never depends on scheduling;
 *  - per-worker RunningStats are merged in worker-id order via
 *    RunningStats::merge.
 *
 * On top of that, the engine is a *robustness boundary*: a multi-hour
 * sweep must not lose ten thousand completed points to one bad one.
 *
 *  - Each point runs under an error boundary (vc_fatal/vc_panic throw
 *    inside the sweep -- see ScopedThrowingErrors); a failing point
 *    becomes a structured PointFailure and the sweep continues.
 *  - Failed points retry with exponential backoff and deterministic
 *    jitter (retryBackoffMs, seeded from --seed and the point index).
 *  - --point-timeout arms a watchdog thread that cancels a stuck
 *    point through its worker's epoch-tagged CancelToken; simulators
 *    poll the token in their outer loop.
 *  - SIGINT/SIGTERM request a graceful drain (the handler only sets a
 *    volatile sig_atomic_t; all I/O happens on the monitor thread):
 *    in-flight points finish, the checkpoint journal flushes, and a
 *    done/failed/remaining summary prints.
 *  - runCsvSweep journals completed rows to an append-only JSON-lines
 *    checkpoint (--checkpoint) and can --resume, replaying the
 *    journal and skipping completed points; the final CSV is
 *    byte-identical to an uninterrupted run.
 *
 * Determinism contract: anything printed per point must derive from
 * that point's result (seed every RNG from the point index, never
 * from the worker).  The merged SweepOutcome::stats are deterministic
 * in count/min/max/sum-of-samples but, because which worker ran which
 * point is scheduling-dependent, their floating-point accumulation
 * order is not -- use them for stderr summaries, not for table cells.
 */

#ifndef VCACHE_SIM_SWEEP_HH
#define VCACHE_SIM_SWEEP_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "sim/cancel.hh"
#include "util/cli.hh"
#include "util/result.hh"
#include "util/stats.hh"

namespace vcache
{

class ObsRegistry;

/** Per-worker scratch state; never shared between live jobs. */
struct SweepWorker
{
    /** Worker index, 0 <= id < jobs. */
    unsigned id = 0;
    /** Point-evaluator accumulator; merged into SweepOutcome::stats. */
    RunningStats stats;
    /**
     * Points this worker has finished, bumped by the sweep engine
     * after every evaluation.  Read concurrently (relaxed) by the
     * telemetry monitor, so it is atomic -- which also makes
     * SweepWorker non-copyable; the engine only ever hands out
     * references.
     */
    std::atomic<std::uint64_t> pointsDone{0};
    /**
     * Cancellation token for the point this worker is evaluating.
     * Evaluators that run long simulations should wire it into the
     * simulator (setCancelToken / the runner helpers) so a
     * --point-timeout can actually preempt them; evaluators that
     * ignore it simply cannot be timed out mid-point.
     */
    CancelToken cancel;
    /**
     * Milliseconds (since sweep start) at which the current point
     * began, or -1 when idle; published for the watchdog.
     */
    std::atomic<std::int64_t> activeSinceMs{-1};
    /**
     * Points covered by the current evaluation: 1 for a solo point, a
     * group's size during a batched attempt.  The watchdog scales the
     * per-point deadline by it, so a batch gets the same total budget
     * its members would have had individually; any member the batch
     * leaves unfinished falls back to a solo run under the single-
     * point deadline.
     */
    std::atomic<std::uint64_t> activePoints{1};
};

/** Knobs shared by every sweep-driven bench. */
struct SweepOptions
{
    /** Worker threads; 0 means ThreadPool::defaultWorkers(). */
    unsigned jobs = 0;
    /** Base seed benches fold into per-point trace seeds. */
    std::uint64_t seed = 1;
    /** Emit progress/throughput lines on stderr while running. */
    bool progress = true;
    /** Name used in the progress lines. */
    std::string label = "sweep";
    /**
     * Machine-readable progress sink: one JSON object per line
     * (sweep_start, periodic sweep_progress with per-worker point
     * counts, sweep_end).  Null disables telemetry.  The stream is
     * only written from the monitor thread.
     */
    std::shared_ptr<std::ostream> telemetry;

    /**
     * Attempts per point (1 = no retry).  Only the attempt that
     * exhausts this budget records a PointFailure.
     */
    unsigned maxAttempts = 3;
    /** First retry backoff; doubles per attempt (plus jitter). */
    double backoffBaseMs = 100.0;
    /** Backoff ceiling. */
    double backoffMaxMs = 2000.0;
    /**
     * Per-point deadline in seconds; 0 disables the watchdog.  Fires
     * through SweepWorker::cancel, so only evaluators that honour the
     * token are actually preempted.
     */
    double pointTimeoutSeconds = 0.0;
    /** Install SIGINT/SIGTERM graceful-drain handlers for the run. */
    bool handleSignals = false;
    /**
     * Optional instrument sink: the engine publishes sweep.points_ok,
     * sweep.points_failed, sweep.point_retries and sweep.interrupted
     * counters here after the run (see docs/OBSERVABILITY.md).
     */
    ObsRegistry *registry = nullptr;

    /** JSON-lines journal path for runCsvSweep ("" = off). */
    std::string checkpointPath;
    /** Replay checkpointPath and skip completed points. */
    bool resume = false;
    /**
     * Attempt shared-workload groups as one batched evaluation before
     * falling back per point (runSweepBatched callers only; the
     * per-point engine ignores it).  Off forces the solo path, which
     * CI diffs against the batched one byte for byte.
     */
    bool batch = true;
};

/** One permanently failed grid point, after all retries. */
struct PointFailure
{
    /** Grid index of the point. */
    std::size_t index = 0;
    /** The error of the final attempt. */
    Error error;
    /** Attempts made (== SweepOptions::maxAttempts unless cancelled). */
    unsigned attempts = 0;
    /** Wall-clock seconds spent across every attempt. */
    double elapsedSeconds = 0.0;
};

/** What one sweep did, for throughput and robustness reporting. */
struct SweepOutcome
{
    /** Grid points the sweep was asked to evaluate. */
    std::size_t points = 0;
    /** Worker threads actually used. */
    unsigned jobs = 1;
    /** Wall-clock seconds for the whole sweep. */
    double seconds = 0.0;
    /** Per-worker accumulators merged in worker-id order. */
    RunningStats stats;

    /** Points that completed successfully. */
    std::size_t completedOk = 0;
    /** Permanently failed points, sorted by grid index. */
    std::vector<PointFailure> failures;
    /** Extra attempts spent retrying points (resolved or not). */
    std::uint64_t retries = 0;
    /** Points completed by a batched group attempt (runSweepBatched). */
    std::uint64_t batchedPoints = 0;
    /** Multi-point groups that got a batched attempt. */
    std::uint64_t batchedGroups = 0;
    /** True when a SIGINT/SIGTERM drain ended the sweep early. */
    bool interrupted = false;
    /** Points never claimed because of the drain. */
    std::size_t remaining = 0;

    /** Points evaluated per wall-clock second. */
    double pointsPerSecond() const;
};

/**
 * Deterministic retry backoff: exponential in `attempt` (the 1-based
 * attempt that just failed), jittered into [0.5, 1.5) of the nominal
 * delay by a xorshift draw seeded from (seed, point, attempt) only --
 * never from the worker or the clock -- so a run's retry schedule is
 * reproducible under --seed.
 */
double retryBackoffMs(std::uint64_t seed, std::size_t point,
                      unsigned attempt, double baseMs, double maxMs);

/**
 * Request a graceful drain of any running sweep, exactly as SIGINT
 * does (tests use this to exercise the drain without signals).
 */
void requestSweepInterrupt();

/** True once an interrupt/drain has been requested. */
bool sweepInterruptRequested();

/** Re-arm after a drained sweep (drivers that sweep repeatedly). */
void clearSweepInterrupt();

/**
 * Evaluate points [0, n) across the pool.
 *
 * The evaluator must be safe to call concurrently for *distinct*
 * indices; the SweepWorker reference it receives is exclusive to the
 * calling thread for the duration of the call.  An evaluator that
 * throws (VcError, any std::exception, or a vc_fatal/vc_panic inside
 * the sweep's throwing-errors scope) fails the point, which retries
 * per SweepOptions and is recorded in SweepOutcome::failures when it
 * never succeeds.
 */
SweepOutcome
runSweep(std::size_t points,
         const std::function<void(std::size_t, SweepWorker &)> &eval,
         const SweepOptions &opts = {});

/**
 * A partition of the grid into shared-workload groups: every index in
 * [0, points) appears in exactly one group.  Group order and member
 * order never affect output (results land by index), only scheduling.
 */
using SweepGroups = std::vector<std::vector<std::size_t>>;

/**
 * runSweep with batched group attempts: workers claim whole groups;
 * a multi-point group first runs through `batchEval`, which returns
 * one success flag per member (in member order -- a short vector or a
 * throw fails the remainder).  Members the batch did not complete
 * fall back to the per-point evaluator with the full retry/backoff/
 * timeout budget, so batching can only add one cheap shared attempt,
 * never weaken per-point isolation.  Failed batches are not retried
 * as batches.  With opts.batch false (or a null batchEval) every
 * group member takes the solo path, in group order.
 *
 * The batch attempt runs under the worker's epoch-tagged token like
 * any point; the watchdog scales the per-point deadline by the group
 * size (see SweepWorker::activePoints).
 */
SweepOutcome runSweepBatched(
    std::size_t points, const SweepGroups &groups,
    const std::function<void(std::size_t, SweepWorker &)> &eval,
    const std::function<std::vector<bool>(std::span<const std::size_t>,
                                          SweepWorker &)> &batchEval,
    const SweepOptions &opts = {});

/**
 * Grid convenience wrapper: results[i] = eval(grid[i], worker), with
 * the results vector pre-sized and indexed by grid position so output
 * ordering matches the serial walk exactly.  Failed points leave
 * their result default-constructed; consult outcome->failures.
 */
template <typename Point, typename F>
auto
sweepGrid(const std::vector<Point> &grid, F &&eval,
          const SweepOptions &opts = {}, SweepOutcome *outcome = nullptr)
{
    using Result =
        std::invoke_result_t<F &, const Point &, SweepWorker &>;
    static_assert(!std::is_void_v<Result>,
                  "use runSweep for evaluators without results");
    std::vector<Result> results(grid.size());
    const auto ran = runSweep(
        grid.size(),
        [&](std::size_t i, SweepWorker &w) { results[i] = eval(grid[i], w); },
        opts);
    if (outcome)
        *outcome = ran;
    return results;
}

/** One CSV row of a checkpointed sweep. */
using CsvRow = std::vector<std::string>;

/** Result of a checkpoint-aware CSV sweep. */
struct CsvSweepResult
{
    /** One row per grid point (failures get the error row). */
    std::vector<CsvRow> rows;
    SweepOutcome outcome;
    /** Points replayed from the journal instead of re-evaluated. */
    std::size_t skipped = 0;

    /** True when every point has a row (nothing left to resume). */
    bool
    complete() const
    {
        return !outcome.interrupted && outcome.remaining == 0;
    }
};

/**
 * Checkpoint-aware sweep for CSV-producing grids: rows journal to
 * opts.checkpointPath as they complete, opts.resume replays the
 * journal and skips finished points, and `errorRow` renders a
 * placeholder row for permanently failed points so the CSV stays
 * rectangular.  Returns an error (not a crash) for an unusable or
 * incompatible journal.
 */
Expected<CsvSweepResult> runCsvSweep(
    std::size_t points,
    const std::function<CsvRow(std::size_t, SweepWorker &)> &eval,
    const std::function<CsvRow(const PointFailure &)> &errorRow,
    const SweepOptions &opts);

/**
 * runCsvSweep over runSweepBatched: `groups` partitions the grid in
 * *grid-index* space (resume-skipped points are filtered out
 * internally), and `batchRows` returns one row per group member --
 * nullopt for members the batch could not complete, which fall back
 * to the per-point evaluator.  Batched rows journal to the checkpoint
 * exactly like solo rows, and because both evaluators must render
 * identical rows for identical results, the CSV is byte-identical to
 * an unbatched run (opts.batch = false) -- CI diffs the two.
 */
Expected<CsvSweepResult> runCsvSweepBatched(
    std::size_t points,
    const std::function<CsvRow(std::size_t, SweepWorker &)> &eval,
    const std::function<std::vector<std::optional<CsvRow>>(
        std::span<const std::size_t>, SweepWorker &)> &batchRows,
    const std::function<CsvRow(const PointFailure &)> &errorRow,
    const SweepGroups &groups, const SweepOptions &opts);

/**
 * Register the shared sweep flags: --jobs/--seed/--progress/
 * --telemetry plus the robustness set (--retries, --backoff-ms,
 * --point-timeout, --checkpoint, --resume, --faults).
 */
void addSweepFlags(ArgParser &args);

/**
 * Read the shared flags back.  Rejects implausible --jobs values
 * outright instead of truncating them into a small integer, and
 * installs the --faults plan (warning when fault-injection sites are
 * compiled out).
 */
SweepOptions sweepOptionsFromFlags(const ArgParser &args,
                                   const std::string &label = "sweep");

} // namespace vcache

#endif // VCACHE_SIM_SWEEP_HH
