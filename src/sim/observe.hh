/**
 * @file
 * Shared vocabulary between the simulators and their observers.
 *
 * The run loops are member templates over an Observer policy (see
 * src/obs/observer.hh for the hook contract and the zero-cost
 * NullObserver); the types the hooks speak -- beyond plain cycles and
 * addresses -- live here so the sim layer never includes obs headers.
 */

#ifndef VCACHE_SIM_OBSERVE_HH
#define VCACHE_SIM_OBSERVE_HH

namespace vcache
{

/** How a demand miss was serviced by the CC machine. */
enum class MissKind
{
    /** First touch: pipelined through the banks (Equation (1)). */
    Compulsory,
    /** Interference/capacity miss paying the full t_m stall. */
    Blocking,
    /** Interference/capacity miss streamed by a lockup-free cache. */
    NonBlocking,
};

/**
 * Which operand stream of a vector op an access belongs to.  Double
 * streams carry two strides; forensics attributes misses per stream.
 */
enum class StreamOperand
{
    First,
    Second,
};

} // namespace vcache

#endif // VCACHE_SIM_OBSERVE_HH
