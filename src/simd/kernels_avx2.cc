/**
 * The AVX2 backend: 4 x 64-bit lanes per instruction, with the
 * gathered tag probe (vpgatherqq) the generic form cannot express.
 *
 * This translation unit is compiled with -mavx2 (see
 * src/simd/CMakeLists.txt) in otherwise-portable builds, so nothing
 * here may run before the dispatcher's __builtin_cpu_supports check
 * passes: no global constructors, no calls from other TUs except
 * through the kernel table.  VCACHE_SIMD_BUILD_AVX2 is defined by the
 * build system only when the compiler accepts the flag on an x86-64
 * target; elsewhere this backend reports unavailable.
 */

#include "simd/kernels.hh"

#if defined(VCACHE_SIMD_BUILD_AVX2)

#include <immintrin.h>

#include "simd/kernels_generic.hh"

namespace vcache::simd
{

namespace
{

inline __m256i
load4(const std::uint64_t *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
store4(std::uint64_t *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

/** Per-lane logical right shift by a runtime count. */
inline __m256i
srlVar(__m256i v, unsigned s)
{
    return _mm256_srl_epi64(v, _mm_cvtsi32_si128(static_cast<int>(s)));
}

void
strideLinesAvx2(std::uint64_t base, std::int64_t stride, unsigned n,
                unsigned shift, std::uint64_t *lines)
{
    const std::uint64_t s = static_cast<std::uint64_t>(stride);
    unsigned i = 0;
    if (n >= 4) {
        __m256i addr = _mm256_setr_epi64x(
            static_cast<long long>(base),
            static_cast<long long>(base + s),
            static_cast<long long>(base + 2 * s),
            static_cast<long long>(base + 3 * s));
        const __m256i step = _mm256_set1_epi64x(
            static_cast<long long>(4 * s));
        for (; i + 4 <= n; i += 4) {
            store4(lines + i, srlVar(addr, shift));
            addr = _mm256_add_epi64(addr, step);
        }
    }
    for (; i < n; ++i)
        lines[i] = (base + s * i) >> shift;
}

void
maskFramesAvx2(const std::uint64_t *x, unsigned n,
               std::uint64_t mask, std::uint64_t *out)
{
    const __m256i m = _mm256_set1_epi64x(static_cast<long long>(mask));
    unsigned i = 0;
    for (; i + 4 <= n; i += 4)
        store4(out + i, _mm256_and_si256(load4(x + i), m));
    for (; i < n; ++i)
        out[i] = x[i] & mask;
}

void
modMersenneNAvx2(const std::uint64_t *x, unsigned n, unsigned c,
                 std::uint64_t *out)
{
    const std::uint64_t m = (std::uint64_t{1} << c) - 1;
    const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i v = load4(x + i);
        // End-around-carry folds, one per pass over the whole pack,
        // until every lane fits in c bits.
        for (;;) {
            const __m256i hi = srlVar(v, c);
            if (_mm256_testz_si256(hi, hi))
                break;
            v = _mm256_add_epi64(_mm256_and_si256(v, vm), hi);
        }
        // Normalise the all-ones "negative zero" lanes to 0.
        v = _mm256_andnot_si256(_mm256_cmpeq_epi64(v, vm), v);
        store4(out + i, v);
    }
    for (; i < n; ++i)
        out[i] = modMersenne(x[i], c);
}

void
xorFoldNAvx2(const std::uint64_t *x, unsigned n, unsigned c,
             std::uint64_t *out)
{
    const std::uint64_t m = (std::uint64_t{1} << c) - 1;
    const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i v = load4(x + i);
        __m256i h = _mm256_setzero_si256();
        for (;;) {
            h = _mm256_xor_si256(h, _mm256_and_si256(v, vm));
            v = srlVar(v, c);
            if (_mm256_testz_si256(v, v))
                break;
        }
        store4(out + i, h);
    }
    for (; i < n; ++i) {
        std::uint64_t h = 0;
        for (std::uint64_t v = x[i]; v != 0; v >>= c)
            h ^= v & m;
        out[i] = h;
    }
}

void
skewFoldNAvx2(const std::uint64_t *x, unsigned n, unsigned bits,
              std::uint64_t *out)
{
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    const __m256i vm =
        _mm256_set1_epi64x(static_cast<long long>(mask));
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i v = load4(x + i);
        store4(out + i,
               _mm256_and_si256(
                   _mm256_add_epi64(v, srlVar(v, bits)), vm));
    }
    for (; i < n; ++i)
        out[i] = (x[i] + (x[i] >> bits)) & mask;
}

std::uint32_t
gangProbeAvx2(const std::uint64_t *tags, const std::uint64_t *frames,
              const std::uint64_t *lines, unsigned n,
              std::uint64_t empty_tag)
{
    std::uint32_t hits = 0;
    const __m256i sentinel =
        _mm256_set1_epi64x(static_cast<long long>(empty_tag));
    unsigned i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256i idx = load4(frames + i);
        const __m256i got = _mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(tags), idx, 8);
        const __m256i want = load4(lines + i);
        const __m256i eq = _mm256_cmpeq_epi64(got, want);
        const __m256i sent = _mm256_cmpeq_epi64(want, sentinel);
        const __m256i hit = _mm256_andnot_si256(sent, eq);
        hits |= static_cast<std::uint32_t>(
                    _mm256_movemask_pd(_mm256_castsi256_pd(hit)))
                << i;
    }
    for (; i < n; ++i) {
        const bool hit = tags[frames[i]] == lines[i] &&
                         lines[i] != empty_tag;
        hits |= static_cast<std::uint32_t>(hit) << i;
    }
    return hits;
}

/**
 * One pack of the fused stride probe: map 4 line addresses to frames
 * (template-specialised per index function so the fold bodies inline
 * without a per-pack branch), gather their tags and fold the hit
 * bits into `hits`.  `rounds` is the fold/digit count precomputed by
 * the caller from the gang's largest line, so the per-pack loops are
 * counted -- no data-dependent testz branch in the pipeline.
 */
template <IndexMap Map>
inline void
strideProbePack(const std::uint64_t *tags, __m256i lines,
                __m256i vm, unsigned bits, unsigned rounds,
                std::uint32_t &hits, unsigned i)
{
    __m256i fr;
    if constexpr (Map == IndexMap::Mask) {
        fr = _mm256_and_si256(lines, vm);
    } else if constexpr (Map == IndexMap::Mersenne) {
        __m256i v = lines;
        for (unsigned r = 0; r < rounds; ++r)
            v = _mm256_add_epi64(_mm256_and_si256(v, vm),
                                 srlVar(v, bits));
        fr = _mm256_andnot_si256(_mm256_cmpeq_epi64(v, vm), v);
    } else {
        __m256i v = lines;
        __m256i h = _mm256_and_si256(v, vm);
        for (unsigned r = 1; r < rounds; ++r) {
            v = srlVar(v, bits);
            h = _mm256_xor_si256(h, _mm256_and_si256(v, vm));
        }
        fr = h;
    }
    const __m256i got = _mm256_i64gather_epi64(
        reinterpret_cast<const long long *>(tags), fr, 8);
    hits |= static_cast<std::uint32_t>(_mm256_movemask_pd(
                _mm256_castsi256_pd(_mm256_cmpeq_epi64(got, lines))))
            << i;
}

/**
 * Fold rounds that provably reduce any `width`-bit value below 2^bits
 * + (all-ones residue): each end-around-carry fold takes a b-bit
 * value to at most max(bits, b - bits) + 1 bits.
 */
inline unsigned
mersenneRounds(unsigned width, unsigned bits)
{
    unsigned rounds = 0;
    while (width > bits + 1) {
        width = (width - bits > bits ? width - bits : bits) + 1;
        ++rounds;
    }
    // From width <= bits+1 at most two more folds land in
    // [0, 2^bits-1]: one fold reaches <= 2^bits, a second clears the
    // exact-2^bits case.  Overshooting is safe -- the fold is the
    // identity on values below 2^bits.
    return rounds + (width > bits ? 2 : 0);
}

inline unsigned
bitWidth(std::uint64_t v)
{
    return v == 0 ? 0 : 64 - static_cast<unsigned>(__builtin_clzll(v));
}

template <IndexMap Map>
std::uint32_t
strideProbeLoop(const std::uint64_t *tags, std::uint64_t base,
                std::int64_t stride, unsigned n, unsigned shift,
                unsigned bits, std::uint64_t empty_tag)
{
    const std::uint64_t s = static_cast<std::uint64_t>(stride);
    const std::uint64_t m = (std::uint64_t{1} << bits) - 1;

    // Lines are monotonic over the gang unless the address arithmetic
    // wraps; the max line's bit width bounds the fold rounds, and a
    // non-sentinel max proves no lane needs the sentinel disambiguation
    // (~0 is the largest 64-bit value).  On wrap, assume the worst on
    // both counts.
    const std::uint64_t last = base + s * (n - 1);
    const bool wraps =
        n > 1 && (stride >= 0 ? last < base : last > base);
    const std::uint64_t max_line =
        wraps ? ~std::uint64_t{0}
              : (stride >= 0 ? last : base) >> shift;
    std::uint32_t sentinel_lanes = 0;
    if (max_line == empty_tag) {
        for (unsigned i = 0; i < n; ++i)
            sentinel_lanes |=
                static_cast<std::uint32_t>(
                    ((base + s * i) >> shift) == empty_tag)
                << i;
    }
    const unsigned rounds =
        Map == IndexMap::Mersenne
            ? mersenneRounds(bitWidth(max_line), bits)
            : (bitWidth(max_line) + bits - 1) / bits;

    const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(m));
    std::uint32_t hits = 0;
    unsigned i = 0;
    if (n >= 4) {
        __m256i addr = _mm256_setr_epi64x(
            static_cast<long long>(base),
            static_cast<long long>(base + s),
            static_cast<long long>(base + 2 * s),
            static_cast<long long>(base + 3 * s));
        const __m256i step =
            _mm256_set1_epi64x(static_cast<long long>(4 * s));
        for (; i + 4 <= n; i += 4) {
            strideProbePack<Map>(tags, srlVar(addr, shift), vm, bits,
                                 rounds, hits, i);
            addr = _mm256_add_epi64(addr, step);
        }
    }
    for (; i < n; ++i) {
        const std::uint64_t line = (base + s * i) >> shift;
        std::uint64_t fr;
        if constexpr (Map == IndexMap::Mask) {
            fr = line & m;
        } else if constexpr (Map == IndexMap::Mersenne) {
            fr = modMersenne(line, bits);
        } else {
            fr = 0;
            for (std::uint64_t v = line; v != 0; v >>= bits)
                fr ^= v & m;
        }
        hits |= static_cast<std::uint32_t>(tags[fr] == line) << i;
    }
    // A lane probing for the sentinel value matched an *invalid*
    // frame above; mask those false hits out.
    return hits & ~sentinel_lanes;
}

std::uint32_t
strideProbeAvx2(const std::uint64_t *tags, std::uint64_t base,
                std::int64_t stride, unsigned n, unsigned shift,
                IndexMap map, unsigned bits, std::uint64_t empty_tag)
{
    switch (map) {
      case IndexMap::Mask:
        return strideProbeLoop<IndexMap::Mask>(
            tags, base, stride, n, shift, bits, empty_tag);
      case IndexMap::Mersenne:
        return strideProbeLoop<IndexMap::Mersenne>(
            tags, base, stride, n, shift, bits, empty_tag);
      case IndexMap::XorFold:
        break;
    }
    return strideProbeLoop<IndexMap::XorFold>(
        tags, base, stride, n, shift, bits, empty_tag);
}

} // namespace

const Kernels *
avx2Kernels()
{
    static constexpr Kernels k = {
        Backend::Avx2,   "avx2",          &strideLinesAvx2,
        &maskFramesAvx2, &modMersenneNAvx2, &xorFoldNAvx2,
        &skewFoldNAvx2,  &gangProbeAvx2,  &strideProbeAvx2,
    };
    return &k;
}

} // namespace vcache::simd

#else // !VCACHE_SIMD_BUILD_AVX2

namespace vcache::simd
{

const Kernels *
avx2Kernels()
{
    return nullptr;
}

} // namespace vcache::simd

#endif
