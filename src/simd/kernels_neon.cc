/**
 * The NEON backend (AArch64).  NEON is architecturally mandatory on
 * AArch64, so no per-file ISA flags or runtime feature probe are
 * needed: the width-2 generic kernels lower straight to 128-bit
 * vector code under the baseline target.  On every other
 * architecture this backend reports unavailable.
 */

#include "simd/kernels.hh"

#if defined(__aarch64__)
#include "simd/kernels_generic.hh"
#endif

namespace vcache::simd
{

const Kernels *
neonKernels()
{
#if defined(__aarch64__)
    static constexpr Kernels k =
        generic::makeKernels<2>(Backend::Neon, "neon");
    return &k;
#else
    return nullptr;
#endif
}

} // namespace vcache::simd
