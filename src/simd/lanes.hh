/**
 * @file
 * Width-agnostic vector abstraction: a fixed pack of W unsigned
 * 64-bit lanes with elementwise operators.
 *
 * Lanes<W> is deliberately plain C++ -- a `std::uint64_t v[W]` with
 * loops -- so that every backend can share one kernel implementation
 * (src/simd/kernels_generic.hh) and differ only in how the compiler
 * lowers it: the portable backend compiles it with the build's
 * baseline flags, the NEON backend relies on AArch64's mandatory
 * vector unit, and the AVX2 backend replaces the hot kernels with
 * intrinsics where the generic form cannot reach the hardware (the
 * gathered tag probe).  Loop bodies avoid early exits and lane-
 * dependent control flow so auto-vectorizers can keep the pack in one
 * register.
 *
 * Only the operations the kernels need are provided; this is not a
 * general SIMD library.
 */

#ifndef VCACHE_SIMD_LANES_HH
#define VCACHE_SIMD_LANES_HH

#include <cstdint>

#include "util/types.hh"

namespace vcache::simd
{

template <unsigned W>
struct Lanes
{
    static_assert(W >= 1 && W <= 16, "unreasonable lane count");

    std::uint64_t v[W];

    static Lanes
    broadcast(std::uint64_t x)
    {
        Lanes r;
        for (unsigned i = 0; i < W; ++i)
            r.v[i] = x;
        return r;
    }

    static Lanes
    load(const std::uint64_t *p)
    {
        Lanes r;
        for (unsigned i = 0; i < W; ++i)
            r.v[i] = p[i];
        return r;
    }

    /** {0, 1, ..., W-1} -- the per-lane element offsets. */
    static Lanes
    iota()
    {
        Lanes r;
        for (unsigned i = 0; i < W; ++i)
            r.v[i] = i;
        return r;
    }

    void
    store(std::uint64_t *p) const
    {
        for (unsigned i = 0; i < W; ++i)
            p[i] = v[i];
    }

    friend Lanes
    operator+(Lanes a, Lanes b)
    {
        Lanes r;
        for (unsigned i = 0; i < W; ++i)
            r.v[i] = a.v[i] + b.v[i];
        return r;
    }

    friend Lanes
    operator*(Lanes a, Lanes b)
    {
        Lanes r;
        for (unsigned i = 0; i < W; ++i)
            r.v[i] = a.v[i] * b.v[i];
        return r;
    }

    friend Lanes
    operator&(Lanes a, Lanes b)
    {
        Lanes r;
        for (unsigned i = 0; i < W; ++i)
            r.v[i] = a.v[i] & b.v[i];
        return r;
    }

    friend Lanes
    operator^(Lanes a, Lanes b)
    {
        Lanes r;
        for (unsigned i = 0; i < W; ++i)
            r.v[i] = a.v[i] ^ b.v[i];
        return r;
    }

    friend Lanes
    operator>>(Lanes a, unsigned s)
    {
        Lanes r;
        for (unsigned i = 0; i < W; ++i)
            r.v[i] = a.v[i] >> s;
        return r;
    }

    /** OR of all lanes: the branch-free "any lane nonzero?" probe. */
    std::uint64_t
    reduceOr() const
    {
        std::uint64_t r = 0;
        for (unsigned i = 0; i < W; ++i)
            r |= v[i];
        return r;
    }

    /** Per-lane x == m ? 0 : x (the Mersenne negative-zero fix-up). */
    Lanes
    zeroWhereEqual(std::uint64_t m) const
    {
        Lanes r;
        for (unsigned i = 0; i < W; ++i)
            r.v[i] = v[i] == m ? 0 : v[i];
        return r;
    }

    /** Bit i of the result is set iff lane i equals lane i of b. */
    std::uint32_t
    eqMask(Lanes b) const
    {
        std::uint32_t m = 0;
        for (unsigned i = 0; i < W; ++i)
            m |= static_cast<std::uint32_t>(v[i] == b.v[i]) << i;
        return m;
    }

    /** Gather: lane i = base[index lane i]. */
    static Lanes
    gather(const std::uint64_t *base, Lanes idx)
    {
        Lanes r;
        for (unsigned i = 0; i < W; ++i)
            r.v[i] = base[idx.v[i]];
        return r;
    }
};

} // namespace vcache::simd

#endif // VCACHE_SIMD_LANES_HH
