/**
 * @file
 * Width-generic kernel bodies over simd::Lanes<W>, shared by the
 * portable-scalar and NEON backends (and the AVX2 backend's tails).
 *
 * Each kernel processes full W-lane packs then a scalar tail, with
 * no lane-dependent control flow inside a pack, so the compiler can
 * lower a pack to one vector register at whatever width the target
 * supports.  Correctness never depends on that lowering: Lanes<1>
 * is the plain scalar loop.
 */

#ifndef VCACHE_SIMD_KERNELS_GENERIC_HH
#define VCACHE_SIMD_KERNELS_GENERIC_HH

#include "numtheory/mersenne.hh"
#include "simd/kernels.hh"
#include "simd/lanes.hh"

namespace vcache::simd::generic
{

template <unsigned W>
inline void
strideLines(std::uint64_t base, std::int64_t stride, unsigned n,
            unsigned shift, std::uint64_t *lines)
{
    const std::uint64_t s = static_cast<std::uint64_t>(stride);
    unsigned i = 0;
    if (n >= W) {
        Lanes<W> addr = Lanes<W>::broadcast(base) +
                        Lanes<W>::iota() * Lanes<W>::broadcast(s);
        const Lanes<W> step = Lanes<W>::broadcast(s * W);
        for (; i + W <= n; i += W) {
            (addr >> shift).store(lines + i);
            addr = addr + step;
        }
    }
    for (; i < n; ++i)
        lines[i] = (base + s * i) >> shift;
}

template <unsigned W>
inline void
maskFrames(const std::uint64_t *x, unsigned n, std::uint64_t mask,
           std::uint64_t *out)
{
    unsigned i = 0;
    const Lanes<W> m = Lanes<W>::broadcast(mask);
    for (; i + W <= n; i += W)
        (Lanes<W>::load(x + i) & m).store(out + i);
    for (; i < n; ++i)
        out[i] = x[i] & mask;
}

template <unsigned W>
inline void
modMersenneN(const std::uint64_t *x, unsigned n, unsigned c,
             std::uint64_t *out)
{
    const std::uint64_t m = (std::uint64_t{1} << c) - 1;
    const Lanes<W> vm = Lanes<W>::broadcast(m);
    unsigned i = 0;
    for (; i + W <= n; i += W) {
        Lanes<W> v = Lanes<W>::load(x + i);
        // One fold per pass across the whole pack; lanes already
        // reduced fold in zeros and stay put.
        for (;;) {
            const Lanes<W> hi = v >> c;
            if (hi.reduceOr() == 0)
                break;
            v = (v & vm) + hi;
        }
        v.zeroWhereEqual(m).store(out + i);
    }
    for (; i < n; ++i)
        out[i] = modMersenne(x[i], c);
}

template <unsigned W>
inline void
xorFoldN(const std::uint64_t *x, unsigned n, unsigned c,
         std::uint64_t *out)
{
    const Lanes<W> vm =
        Lanes<W>::broadcast((std::uint64_t{1} << c) - 1);
    unsigned i = 0;
    for (; i + W <= n; i += W) {
        Lanes<W> v = Lanes<W>::load(x + i);
        Lanes<W> h = Lanes<W>::broadcast(0);
        for (;;) {
            h = h ^ (v & vm);
            v = v >> c;
            if (v.reduceOr() == 0)
                break;
        }
        h.store(out + i);
    }
    const std::uint64_t m = (std::uint64_t{1} << c) - 1;
    for (; i < n; ++i) {
        std::uint64_t h = 0;
        for (std::uint64_t v = x[i]; v != 0; v >>= c)
            h ^= v & m;
        out[i] = h;
    }
}

template <unsigned W>
inline void
skewFoldN(const std::uint64_t *x, unsigned n, unsigned bits,
          std::uint64_t *out)
{
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    unsigned i = 0;
    const Lanes<W> vm = Lanes<W>::broadcast(mask);
    for (; i + W <= n; i += W) {
        const Lanes<W> v = Lanes<W>::load(x + i);
        ((v + (v >> bits)) & vm).store(out + i);
    }
    for (; i < n; ++i)
        out[i] = (x[i] + (x[i] >> bits)) & mask;
}

template <unsigned W>
inline std::uint32_t
gangProbe(const std::uint64_t *tags, const std::uint64_t *frames,
          const std::uint64_t *lines, unsigned n,
          std::uint64_t empty_tag)
{
    std::uint32_t hits = 0;
    unsigned i = 0;
    const Lanes<W> sentinel = Lanes<W>::broadcast(empty_tag);
    for (; i + W <= n; i += W) {
        const Lanes<W> idx = Lanes<W>::load(frames + i);
        const Lanes<W> got = Lanes<W>::gather(tags, idx);
        const Lanes<W> want = Lanes<W>::load(lines + i);
        const std::uint32_t eq = got.eqMask(want);
        const std::uint32_t is_sentinel = want.eqMask(sentinel);
        hits |= (eq & ~is_sentinel) << i;
    }
    for (; i < n; ++i) {
        const bool hit = tags[frames[i]] == lines[i] &&
                         lines[i] != empty_tag;
        hits |= static_cast<std::uint32_t>(hit) << i;
    }
    return hits;
}

template <unsigned W>
inline std::uint32_t
strideProbe(const std::uint64_t *tags, std::uint64_t base,
            std::int64_t stride, unsigned n, unsigned shift,
            IndexMap map, unsigned bits, std::uint64_t empty_tag)
{
    std::uint64_t lines[kMaxGang];
    std::uint64_t frames[kMaxGang];
    strideLines<W>(base, stride, n, shift, lines);
    switch (map) {
      case IndexMap::Mask:
        maskFrames<W>(lines, n, (std::uint64_t{1} << bits) - 1,
                      frames);
        break;
      case IndexMap::Mersenne:
        modMersenneN<W>(lines, n, bits, frames);
        break;
      case IndexMap::XorFold:
        xorFoldN<W>(lines, n, bits, frames);
        break;
    }
    return gangProbe<W>(tags, frames, lines, n, empty_tag);
}

/** Build a full kernel table from the W-lane generic bodies. */
template <unsigned W>
constexpr Kernels
makeKernels(Backend backend, const char *name)
{
    return Kernels{
        backend,
        name,
        &strideLines<W>,
        &maskFrames<W>,
        &modMersenneN<W>,
        &xorFoldN<W>,
        &skewFoldN<W>,
        &gangProbe<W>,
        &strideProbe<W>,
    };
}

} // namespace vcache::simd::generic

#endif // VCACHE_SIMD_KERNELS_GENERIC_HH
