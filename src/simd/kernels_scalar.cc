/**
 * The portable backend: the width-4 generic kernels compiled with the
 * build's baseline flags.  Always available, always the differential
 * reference the wider backends are pinned against; also the forced
 * fallback of the VCACHE_SIMD=scalar CI job.
 */

#include "simd/kernels_generic.hh"

namespace vcache::simd
{

const Kernels &
scalarKernels()
{
    static constexpr Kernels k =
        generic::makeKernels<4>(Backend::Scalar, "scalar");
    return k;
}

} // namespace vcache::simd
