/**
 * @file
 * Data-parallel hot-path kernels with runtime backend dispatch.
 *
 * Every backend compiles into every build (the AVX2 translation unit
 * gets its own -mavx2 flag and is only *called* after a CPUID check),
 * and one is selected at startup -- the best the host supports, or
 * whatever the VCACHE_SIMD environment variable / setActiveBackend()
 * override names.  Callers fetch the active table per probe group, so
 * one virtual-call-sized indirection is amortized over a whole gang
 * of elements.
 *
 * Kernel contracts are purely elementwise and bit-exact against the
 * scalar reference (numtheory::modMersenne, Cache::frameIndex,
 * InterleavedMemory::bankOf); tests/simd pins every backend to the
 * scalar forms.  `n` is capped at kMaxGang so callers can use fixed
 * stack buffers and mask arithmetic stays inside 32 bits.
 */

#ifndef VCACHE_SIMD_KERNELS_HH
#define VCACHE_SIMD_KERNELS_HH

#include <cstdint>
#include <vector>

namespace vcache::simd
{

/** Largest element group any kernel accepts per call. */
inline constexpr unsigned kMaxGang = 32;

/** All hit/miss masks are dense low bits: bit i is element i. */
inline constexpr std::uint32_t
fullMask(unsigned n)
{
    return n >= 32 ? ~std::uint32_t{0}
                   : (std::uint32_t{1} << n) - 1;
}

enum class Backend
{
    Scalar,
    Avx2,
    Neon,
};

/** Line-to-frame index function selector for the fused strideProbe. */
enum class IndexMap
{
    /** frame = line & (2^bits - 1): direct-mapped. */
    Mask,
    /** frame = line mod (2^bits - 1): prime-mapped. */
    Mersenne,
    /** frame = XOR-fold of bits-wide digits: hash-mapped. */
    XorFold,
};

/**
 * The dispatched kernel table.  All pointers are always non-null.
 */
struct Kernels
{
    Backend backend;
    const char *name;

    /**
     * lines[i] = (Addr)(base + i*stride) >> shift for i < n: the
     * element-address generation plus line extraction of one probe
     * gang.  Address arithmetic wraps mod 2^64 exactly like
     * VectorRef::element.
     */
    void (*strideLines)(std::uint64_t base, std::int64_t stride,
                        unsigned n, unsigned shift,
                        std::uint64_t *lines);

    /** out[i] = x[i] & mask (direct-mapped frame extraction). */
    void (*maskFrames)(const std::uint64_t *x, unsigned n,
                       std::uint64_t mask, std::uint64_t *out);

    /**
     * out[i] = x[i] mod (2^c - 1) by end-around-carry folding, with
     * the all-ones "negative zero" normalised to 0 -- bit-identical
     * to numtheory::modMersenne (the prime mapping's index function,
     * ISCA 1992 Figure 1, widened to one fold per lane per pass).
     */
    void (*modMersenneN)(const std::uint64_t *x, unsigned n,
                         unsigned c, std::uint64_t *out);

    /** out[i] = XOR-fold of x[i] in c-bit digits (hash mappings). */
    void (*xorFoldN)(const std::uint64_t *x, unsigned n, unsigned c,
                     std::uint64_t *out);

    /**
     * out[i] = (x[i] + (x[i] >> bits)) & (2^bits - 1): the skewed
     * (row-rotation) bank mapping.
     */
    void (*skewFoldN)(const std::uint64_t *x, unsigned n,
                      unsigned bits, std::uint64_t *out);

    /**
     * Gang tag probe against a structure-of-arrays tag plane: bit i
     * of the result is set iff tags[frames[i]] == lines[i] and
     * lines[i] != empty_tag.
     *
     * The second clause is the sentinel rule of cache::TagArray:
     * invalid frames hold empty_tag, so a tag match on any *other*
     * line value proves residency without touching the metadata
     * plane.  Callers own the one edge case (a genuinely resident
     * line equal to the sentinel) via TagArray::sentinelResident().
     */
    std::uint32_t (*gangProbe)(const std::uint64_t *tags,
                               const std::uint64_t *frames,
                               const std::uint64_t *lines,
                               unsigned n, std::uint64_t empty_tag);

    /**
     * The fused hot path: strideLines + the selected index map +
     * gangProbe in one pass, with every intermediate kept in
     * registers instead of bounced through stack buffers.  Bit i of
     * the result is set iff line i = (base + i*stride) >> shift is
     * resident under the gangProbe sentinel rule.  Semantically
     * identical to composing the three discrete kernels; the
     * differential tests pin both forms.
     */
    std::uint32_t (*strideProbe)(const std::uint64_t *tags,
                                 std::uint64_t base,
                                 std::int64_t stride, unsigned n,
                                 unsigned shift, IndexMap map,
                                 unsigned bits,
                                 std::uint64_t empty_tag);
};

/** The active table (atomic snapshot; safe to cache per gang). */
const Kernels &kernels();

/** The active backend. */
Backend activeBackend();

/** Human-readable backend name ("scalar", "avx2", "neon"). */
const char *backendName(Backend b);

/**
 * Backends compiled in *and* runnable on this host, best first.
 * Scalar is always present.
 */
std::vector<Backend> availableBackends();

/**
 * Force a backend (test hook and the VCACHE_SIMD override target).
 * @return false (active backend unchanged) if it is not available
 */
bool setActiveBackend(Backend b);

/** Parse a backend name; returns false on unknown names. */
bool parseBackend(const char *name, Backend &out);

/**
 * Default for the simulators' gang-probe replay paths: true unless
 * VCACHE_GANG=off|0 is set.  Turning it off recovers the pre-gang
 * element-at-a-time loops exactly -- the differential tests' oracle
 * and the benchmark's before/after ratio denominator.
 */
bool gangReplayDefault();

// Per-backend tables (internal; exposed for the dispatcher and the
// differential tests).  avx2Kernels() returns nullptr when the build
// or the host cannot run AVX2; neonKernels() likewise for NEON.
const Kernels &scalarKernels();
const Kernels *avx2Kernels();
const Kernels *neonKernels();

} // namespace vcache::simd

#endif // VCACHE_SIMD_KERNELS_HH
