/**
 * Runtime backend selection.  All backends are compiled into every
 * build; exactly one is active at a time.  Selection order:
 *
 *   1. VCACHE_SIMD=scalar|avx2|neon in the environment (startup);
 *   2. setActiveBackend() (tests and tools, any time);
 *   3. otherwise the best backend the host can actually run,
 *      probed via __builtin_cpu_supports -- never the build flags.
 *
 * An unknown or unavailable VCACHE_SIMD value falls back to the probe
 * with a one-line warning rather than dying: a pinned environment
 * must not make the simulator unrunnable on a lesser host.
 */

#include "simd/kernels.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/buildinfo.hh"

namespace vcache::simd
{

namespace
{

/**
 * Tell util/buildinfo how to name the active backend.  util sits
 * below simd and cannot call the dispatcher directly; registering a
 * lazy provider here (any binary that links the dispatcher pulls this
 * TU, running the registration before main) keeps the dependency
 * one-way while --version and the serve handshake still report the
 * backend the process actually dispatches to.
 */
[[maybe_unused]] const bool g_build_info_registered = [] {
    setBuildInfoSimdProvider(
        +[]() { return backendName(activeBackend()); });
    return true;
}();

bool
hostRunsAvx2()
{
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
}

const Kernels *
tableFor(Backend b)
{
    switch (b) {
      case Backend::Scalar:
        return &scalarKernels();
      case Backend::Avx2:
        return hostRunsAvx2() ? avx2Kernels() : nullptr;
      case Backend::Neon:
        return neonKernels();
    }
    return nullptr;
}

const Kernels *
probeBest()
{
    if (const Kernels *k = tableFor(Backend::Avx2))
        return k;
    if (const Kernels *k = tableFor(Backend::Neon))
        return k;
    return &scalarKernels();
}

const Kernels *
initialTable()
{
    if (const char *env = std::getenv("VCACHE_SIMD")) {
        Backend want;
        if (parseBackend(env, want)) {
            if (const Kernels *k = tableFor(want))
                return k;
            std::fprintf(stderr,
                         "vcache: VCACHE_SIMD=%s unavailable on this "
                         "host/build; using %s\n",
                         env, probeBest()->name);
        } else if (*env != '\0') {
            std::fprintf(stderr,
                         "vcache: unknown VCACHE_SIMD=%s (expected "
                         "scalar|avx2|neon); using %s\n",
                         env, probeBest()->name);
        }
    }
    return probeBest();
}

std::atomic<const Kernels *> &
activeTable()
{
    static std::atomic<const Kernels *> table{initialTable()};
    return table;
}

} // namespace

const Kernels &
kernels()
{
    return *activeTable().load(std::memory_order_acquire);
}

Backend
activeBackend()
{
    return kernels().backend;
}

const char *
backendName(Backend b)
{
    switch (b) {
      case Backend::Scalar:
        return "scalar";
      case Backend::Avx2:
        return "avx2";
      case Backend::Neon:
        return "neon";
    }
    return "unknown";
}

std::vector<Backend>
availableBackends()
{
    std::vector<Backend> out;
    for (Backend b : {Backend::Avx2, Backend::Neon}) {
        if (tableFor(b) != nullptr)
            out.push_back(b);
    }
    out.push_back(Backend::Scalar);
    return out;
}

bool
setActiveBackend(Backend b)
{
    const Kernels *k = tableFor(b);
    if (k == nullptr)
        return false;
    activeTable().store(k, std::memory_order_release);
    return true;
}

bool
gangReplayDefault()
{
    static const bool enabled = [] {
        const char *env = std::getenv("VCACHE_GANG");
        return env == nullptr || (std::strcmp(env, "off") != 0 &&
                                  std::strcmp(env, "0") != 0);
    }();
    return enabled;
}

bool
parseBackend(const char *name, Backend &out)
{
    if (name == nullptr)
        return false;
    if (std::strcmp(name, "scalar") == 0) {
        out = Backend::Scalar;
        return true;
    }
    if (std::strcmp(name, "avx2") == 0) {
        out = Backend::Avx2;
        return true;
    }
    if (std::strcmp(name, "neon") == 0) {
        out = Backend::Neon;
        return true;
    }
    return false;
}

} // namespace vcache::simd
