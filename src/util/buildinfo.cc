#include "util/buildinfo.hh"

#include <atomic>

#include "util/buildinfo_gen.hh"

namespace vcache
{

namespace
{

std::atomic<const char *(*)()> g_simd_provider{nullptr};

} // namespace

const char *
buildGitHash()
{
    return VCACHE_BUILD_GIT_HASH[0] != '\0' ? VCACHE_BUILD_GIT_HASH
                                            : "unknown";
}

const char *
buildTypeName()
{
    return VCACHE_BUILD_TYPE[0] != '\0' ? VCACHE_BUILD_TYPE : "unknown";
}

void
setBuildInfoSimdProvider(const char *(*provider)())
{
    g_simd_provider.store(provider, std::memory_order_release);
}

const char *
buildInfoSimdBackend()
{
    if (const auto provider =
            g_simd_provider.load(std::memory_order_acquire))
        return provider();
    return "unknown";
}

std::string
buildInfoString()
{
    std::string out = "vcache ";
    out += buildGitHash();
    out += " (";
    out += buildTypeName();
    out += ", simd=";
    out += buildInfoSimdBackend();
    out += ")";
    return out;
}

std::string
buildResultIdentity()
{
    std::string out = buildGitHash();
    out += ":";
    out += buildTypeName();
    return out;
}

} // namespace vcache
