#include "util/faultinject.hh"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.hh"

namespace vcache
{
namespace faults
{

namespace detail
{
std::atomic<bool> active{false};
} // namespace detail

namespace
{

/** Live state of one armed site. */
struct SiteState
{
    Rule rule;
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> fires{0};
    /** Probability stream; drawn under `mtx` (cold path only). */
    Rng rng{1};
    std::mutex mtx;
};

struct Engine
{
    std::map<std::string, std::unique_ptr<SiteState>> sites;
};

/** Installed plan; replaced wholesale under g_engine_mtx. */
std::shared_ptr<const Engine> g_engine;
std::mutex g_engine_mtx;

std::shared_ptr<const Engine>
currentEngine()
{
    std::lock_guard<std::mutex> lock(g_engine_mtx);
    return g_engine;
}

/** FNV-1a, to give each site its own probability stream. */
std::uint64_t
hashSite(const std::string &site)
{
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : site) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    return h;
}

/** One-shot VCACHE_FAULTS pickup, so any binary can inject faults. */
struct EnvInit
{
    EnvInit()
    {
        const char *spec = std::getenv("VCACHE_FAULTS");
        if (!spec || !*spec)
            return;
        auto plan = parseFaultSpec(spec, 1);
        if (!plan.ok()) {
            // Too early for the logging config; stderr directly.
            std::fprintf(stderr,
                         "warn: ignoring VCACHE_FAULTS: %s\n",
                         plan.error().describe().c_str());
            return;
        }
        configureFaults(plan.value());
    }
};
const EnvInit g_env_init;

} // namespace

Expected<FaultPlan>
parseFaultSpec(const std::string &spec, std::uint64_t seed)
{
    FaultPlan plan;
    plan.seed = seed;

    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(';', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string rule_text = spec.substr(pos, end - pos);
        pos = end + 1;
        if (rule_text.empty())
            continue;

        const auto eq = rule_text.find('=');
        if (eq == std::string::npos || eq == 0)
            return makeError(Errc::InvalidConfig,
                             "fault rule '" + rule_text +
                                 "' is not site=action@trigger");
        const std::string site = rule_text.substr(0, eq);
        const std::string rest = rule_text.substr(eq + 1);
        const auto at = rest.find('@');
        if (at == std::string::npos)
            return makeError(Errc::InvalidConfig,
                             "fault rule for '" + site +
                                 "' is missing an @trigger");
        const std::string action = rest.substr(0, at);
        const std::string trigger = rest.substr(at + 1);

        Rule rule;
        if (action == "throw") {
            rule.action = Action::Throw;
        } else if (action == "corrupt") {
            rule.action = Action::Corrupt;
        } else if (action.rfind("stall:", 0) == 0) {
            rule.action = Action::Stall;
            const std::string ms = action.substr(6);
            char *parse_end = nullptr;
            rule.stallMillis = std::strtoull(ms.c_str(), &parse_end, 10);
            if (ms.empty() || *parse_end != '\0')
                return makeError(Errc::InvalidConfig,
                                 "bad stall duration '" + ms +
                                     "' in fault rule for '" + site +
                                     "'");
        } else {
            return makeError(Errc::InvalidConfig,
                             "unknown fault action '" + action +
                                 "' (expected throw, stall:<ms> or "
                                 "corrupt)");
        }

        if (trigger.rfind("every:", 0) == 0) {
            const std::string n = trigger.substr(6);
            char *parse_end = nullptr;
            rule.every = std::strtoull(n.c_str(), &parse_end, 10);
            if (n.empty() || *parse_end != '\0' || rule.every == 0)
                return makeError(Errc::InvalidConfig,
                                 "bad every:<N> trigger '" + trigger +
                                     "' in fault rule for '" + site +
                                     "'");
        } else if (trigger.rfind("prob:", 0) == 0) {
            const std::string p = trigger.substr(5);
            char *parse_end = nullptr;
            rule.probability = std::strtod(p.c_str(), &parse_end);
            if (p.empty() || *parse_end != '\0' ||
                rule.probability < 0.0 || rule.probability > 1.0)
                return makeError(Errc::InvalidConfig,
                                 "bad prob:<P> trigger '" + trigger +
                                     "' in fault rule for '" + site +
                                     "' (need 0 <= P <= 1)");
        } else {
            return makeError(Errc::InvalidConfig,
                             "unknown fault trigger '" + trigger +
                                 "' (expected every:<N> or prob:<P>)");
        }

        if (plan.rules.count(site))
            return makeError(Errc::InvalidConfig,
                             "duplicate fault rule for site '" + site +
                                 "'");
        plan.rules[site] = rule;
    }
    return plan;
}

void
configureFaults(const FaultPlan &plan)
{
    auto engine = std::make_shared<Engine>();
    for (const auto &[site, rule] : plan.rules) {
        auto state = std::make_unique<SiteState>();
        state->rule = rule;
        state->rng.seed(plan.seed ^ hashSite(site));
        engine->sites[site] = std::move(state);
    }
    {
        std::lock_guard<std::mutex> lock(g_engine_mtx);
        g_engine = std::move(engine);
    }
    detail::active.store(!plan.rules.empty(),
                         std::memory_order_relaxed);
}

void
clearFaults()
{
    detail::active.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(g_engine_mtx);
    g_engine.reset();
}

bool
faultsConfigured()
{
    return detail::active.load(std::memory_order_relaxed);
}

std::uint64_t
faultSiteHits(const std::string &site)
{
    const auto engine = currentEngine();
    if (!engine)
        return 0;
    const auto it = engine->sites.find(site);
    return it == engine->sites.end()
               ? 0
               : it->second->hits.load(std::memory_order_relaxed);
}

std::uint64_t
faultSiteFires(const std::string &site)
{
    const auto engine = currentEngine();
    if (!engine)
        return 0;
    const auto it = engine->sites.find(site);
    return it == engine->sites.end()
               ? 0
               : it->second->fires.load(std::memory_order_relaxed);
}

Fire
pollSite(const char *site)
{
    const auto engine = currentEngine();
    if (!engine)
        return Fire::None;
    const auto it = engine->sites.find(site);
    if (it == engine->sites.end())
        return Fire::None;
    SiteState &state = *it->second;

    const std::uint64_t hit =
        state.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    bool fire = false;
    if (state.rule.every != 0) {
        fire = hit % state.rule.every == 0;
    } else if (state.rule.probability >= 0.0) {
        std::lock_guard<std::mutex> lock(state.mtx);
        fire = state.rng.bernoulli(state.rule.probability);
    }
    if (!fire)
        return Fire::None;

    state.fires.fetch_add(1, std::memory_order_relaxed);
    switch (state.rule.action) {
      case Action::Throw:
        return Fire::Throw;
      case Action::Corrupt:
        return Fire::Corrupt;
      case Action::Stall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(state.rule.stallMillis));
        return Fire::None;
    }
    return Fire::None;
}

void
throwInjected(const char *site)
{
    throw VcError(makeError(Errc::Io, std::string("injected fault at "
                                                  "site '") +
                                          site + "'"));
}

} // namespace faults
} // namespace vcache
