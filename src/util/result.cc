#include "util/result.hh"

#include <cstring>
#include <sstream>

namespace vcache
{

const char *
errcName(Errc code)
{
    switch (code) {
      case Errc::InvalidConfig:
        return "InvalidConfig";
      case Errc::MalformedTrace:
        return "MalformedTrace";
      case Errc::Io:
        return "Io";
      case Errc::Timeout:
        return "Timeout";
      case Errc::Cancelled:
        return "Cancelled";
      case Errc::InternalInvariant:
        return "InternalInvariant";
    }
    return "UnknownErrc";
}

std::string
Error::describe() const
{
    std::ostringstream os;
    os << errcName(code) << ": " << message;
    if (!file.empty())
        os << " (" << file << ":" << line << ")";
    for (const auto &n : notes)
        os << " [" << n << "]";
    return os.str();
}

namespace
{

/** Basename of a __FILE__-style path (keeps messages short). */
const char *
basenameOf(const char *path)
{
    const char *slash = std::strrchr(path, '/');
    return slash ? slash + 1 : path;
}

} // namespace

Error
makeError(Errc code, std::string message, std::source_location loc)
{
    Error e;
    e.code = code;
    e.message = std::move(message);
    e.file = basenameOf(loc.file_name());
    e.line = static_cast<unsigned>(loc.line());
    return e;
}

} // namespace vcache
