/**
 * @file
 * The paper's vector-stride distribution.
 *
 * Section 3.1: a vector access has stride 1 with probability P_stride1;
 * otherwise the stride is uniform over {2, ..., max}, where max is the
 * number of memory banks M for the MM-model and the number of cache
 * lines C for the CC-model ("due to modular operations").
 */

#ifndef VCACHE_UTIL_STRIDES_HH
#define VCACHE_UTIL_STRIDES_HH

#include <cstdint>

#include "util/rng.hh"

namespace vcache
{

/** Random stride source following the paper's distribution. */
class StrideDistribution
{
  public:
    /**
     * @param p_stride1 probability of stride 1
     * @param max_stride largest stride value (inclusive); must be >= 2
     */
    StrideDistribution(double p_stride1, std::uint64_t max_stride);

    /** Draw one stride. */
    std::uint64_t sample(Rng &rng) const;

    /** Probability of a specific stride value under this distribution. */
    double probability(std::uint64_t stride) const;

    double pStride1() const { return p1; }
    std::uint64_t maxStride() const { return max; }

  private:
    double p1;
    std::uint64_t max;
};

} // namespace vcache

#endif // VCACHE_UTIL_STRIDES_HH
